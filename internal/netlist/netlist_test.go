package netlist

import (
	"strings"
	"testing"
)

// buildChain constructs in -> u0 -> u1 -> ... -> u(n-1) -> out.
func buildChain(t testing.TB, n int) *Design {
	t.Helper()
	d := New("chain")
	if _, err := d.AddPort("in", In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("out", Out); err != nil {
		t.Fatal(err)
	}
	prev := "in"
	for i := 0; i < n; i++ {
		name := "u" + string(rune('0'+i))
		if _, err := d.AddInst(name, "INV"); err != nil {
			t.Fatal(err)
		}
		next := "n" + string(rune('0'+i))
		if i == n-1 {
			next = "out"
		}
		if err := d.Connect(name, "A", prev, In); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(name, "Y", next, Out); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	return d
}

func TestBuilderAndAccessors(t *testing.T) {
	d := buildChain(t, 3)
	if d.NumInsts() != 3 || d.NumPorts() != 2 || d.NumNets() != 4 {
		t.Fatalf("sizes: insts=%d ports=%d nets=%d", d.NumInsts(), d.NumPorts(), d.NumNets())
	}
	u1 := d.FindInst("u1")
	if u1 == nil || u1.Cell != "INV" {
		t.Fatalf("u1 = %+v", u1)
	}
	if got := len(u1.Inputs()); got != 1 {
		t.Fatalf("u1 inputs = %d", got)
	}
	if got := u1.Outputs()[0].Net.Name; got != "n1" {
		t.Fatalf("u1 output net = %s", got)
	}
	if d.FindPort("in") == nil || d.FindPort("zz") != nil {
		t.Fatal("FindPort misbehaves")
	}
	if d.FindNet("n0") == nil {
		t.Fatal("FindNet misses n0")
	}
}

func TestDuplicateErrors(t *testing.T) {
	d := New("t")
	if _, err := d.AddPort("p", In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("p", In); err == nil {
		t.Fatal("duplicate port accepted")
	}
	if _, err := d.AddInst("i", "INV"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddInst("i", "INV"); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	if err := d.Connect("i", "A", "p", In); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("i", "A", "p", In); err == nil {
		t.Fatal("duplicate pin connection accepted")
	}
	if err := d.Connect("nope", "A", "p", In); err == nil {
		t.Fatal("connect to unknown instance accepted")
	}
}

func TestNetDriverAndLoads(t *testing.T) {
	d := buildChain(t, 2)
	n0 := d.FindNet("n0")
	drv := n0.Driver()
	if drv == nil || drv.Inst.Name != "u0" || drv.Pin != "Y" {
		t.Fatalf("driver = %+v", drv)
	}
	loads := n0.Loads()
	if len(loads) != 1 || loads[0].Inst.Name != "u1" {
		t.Fatalf("loads = %+v", loads)
	}
	// Input port drives its net.
	in := d.FindNet("in")
	if got := in.Driver(); got == nil || got.Inst != nil || got.Port != "in" {
		t.Fatalf("port driver = %+v", got)
	}
	// Output port is a load on its net.
	out := d.FindNet("out")
	if got := out.Driver(); got == nil || got.Inst == nil {
		t.Fatalf("out net driver = %+v", got)
	}
}

func TestConnName(t *testing.T) {
	d := buildChain(t, 1)
	if got := d.FindNet("in").Driver().Name(); got != "port in" {
		t.Fatalf("port conn name = %q", got)
	}
	if got := d.FindNet("out").Driver().Name(); got != "u0.Y" {
		t.Fatalf("inst conn name = %q", got)
	}
}

func TestValidateClean(t *testing.T) {
	d := buildChain(t, 3)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateNoDriver(t *testing.T) {
	d := New("t")
	if _, err := d.AddInst("i", "INV"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("i", "A", "floating", In); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("i", "Y", "y", Out); err != nil {
		t.Fatal(err)
	}
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "no driver") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateMultiDriver(t *testing.T) {
	d := New("t")
	for _, n := range []string{"a", "b"} {
		if _, err := d.AddInst(n, "INV"); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(n, "Y", "shared", Out); err != nil {
			t.Fatal(err)
		}
		if err := d.Connect(n, "A", "in_"+n, In); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AddPort("in_a", In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPort("in_b", In); err != nil {
		t.Fatal(err)
	}
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "2 drivers") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestValidateUnconnectedInst(t *testing.T) {
	d := New("t")
	if _, err := d.AddInst("lonely", "INV"); err != nil {
		t.Fatal(err)
	}
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "no connections") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestLevelizeChain(t *testing.T) {
	d := buildChain(t, 4)
	lev := d.Levelize()
	if len(lev.Feedback) != 0 {
		t.Fatalf("feedback = %v", lev.Feedback)
	}
	if len(lev.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(lev.Levels))
	}
	for i, want := range []string{"u0", "u1", "u2", "u3"} {
		if lev.Levels[i][0].Name != want || lev.Levels[i][0].Level != i {
			t.Fatalf("level %d = %v", i, lev.Levels[i][0])
		}
	}
	if lev.NumLeveled() != 4 {
		t.Fatalf("NumLeveled = %d", lev.NumLeveled())
	}
	if got := lev.Ordered(); len(got) != 4 || got[0].Name != "u0" {
		t.Fatalf("Ordered = %v", got)
	}
}

func TestLevelizeDiamond(t *testing.T) {
	// in -> a; a -> b, c; b,c -> d
	d := New("diamond")
	mustPort(t, d, "in", In)
	mustInst(t, d, "a", "INV")
	mustConn(t, d, "a", "A", "in", In)
	mustConn(t, d, "a", "Y", "na", Out)
	for _, n := range []string{"b", "c"} {
		mustInst(t, d, n, "INV")
		mustConn(t, d, n, "A", "na", In)
		mustConn(t, d, n, "Y", "n"+n, Out)
	}
	mustInst(t, d, "d", "NAND2")
	mustConn(t, d, "d", "A", "nb", In)
	mustConn(t, d, "d", "B", "nc", In)
	mustConn(t, d, "d", "Y", "out", Out)
	lev := d.Levelize()
	if len(lev.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(lev.Levels))
	}
	if len(lev.Levels[1]) != 2 {
		t.Fatalf("level 1 size = %d", len(lev.Levels[1]))
	}
	if d.FindInst("d").Level != 2 {
		t.Fatalf("d level = %d", d.FindInst("d").Level)
	}
}

func TestLevelizeLoop(t *testing.T) {
	// Cross-coupled pair: a.Y -> b.A, b.Y -> a.A, plus an acyclic tail.
	d := New("loop")
	mustPort(t, d, "in", In)
	mustInst(t, d, "a", "NAND2")
	mustInst(t, d, "b", "NAND2")
	mustConn(t, d, "a", "A", "in", In)
	mustConn(t, d, "a", "B", "q", In)
	mustConn(t, d, "a", "Y", "p", Out)
	mustConn(t, d, "b", "A", "p", In)
	mustConn(t, d, "b", "Y", "q", Out)
	mustInst(t, d, "tail", "INV")
	mustConn(t, d, "tail", "A", "q", In)
	mustConn(t, d, "tail", "Y", "out", Out)
	lev := d.Levelize()
	if len(lev.Feedback) != 3 {
		t.Fatalf("feedback count = %d, want 3 (a, b, and downstream tail)", len(lev.Feedback))
	}
	for _, i := range lev.Feedback {
		if i.Level != -1 {
			t.Fatalf("feedback inst %s has level %d", i.Name, i.Level)
		}
	}
	// tail reads the loop, so it is blocked too.
	if d.FindInst("tail").Level != -1 {
		t.Fatalf("tail level = %d, want -1 (downstream of loop)", d.FindInst("tail").Level)
	}
}

func TestLevelizeSelfLoop(t *testing.T) {
	// An instance driving its own input is a one-gate combinational cycle:
	// it must land in Feedback, not get a finite level. (A previous version
	// skipped self-edges in the indegree count, which leveled the instance
	// at the depth of its other fanins.) A downstream reader is dragged
	// into Feedback with it; an independent gate still levels normally.
	d := New("self")
	mustPort(t, d, "in", In)
	mustInst(t, d, "a", "BUF")
	mustConn(t, d, "a", "A", "x", In)
	mustConn(t, d, "a", "Y", "x", Out)
	mustInst(t, d, "tail", "INV")
	mustConn(t, d, "tail", "A", "x", In)
	mustConn(t, d, "tail", "Y", "out", Out)
	mustInst(t, d, "free", "INV")
	mustConn(t, d, "free", "A", "in", In)
	mustConn(t, d, "free", "Y", "q", Out)
	lev := d.Levelize()
	if len(lev.Feedback) != 2 {
		t.Fatalf("feedback = %v, want [a tail]", lev.Feedback)
	}
	for _, name := range []string{"a", "tail"} {
		if got := d.FindInst(name).Level; got != -1 {
			t.Fatalf("%s level = %d, want -1", name, got)
		}
	}
	if got := d.FindInst("free").Level; got != 0 {
		t.Fatalf("free level = %d, want 0", got)
	}
	if lev.NumLeveled() != 1 {
		t.Fatalf("NumLeveled = %d, want 1", lev.NumLeveled())
	}
}

func TestLevelizeMultiDriver(t *testing.T) {
	// Two outputs on one net is an NL001 lint error, but Levelize must
	// still terminate and produce a sane order: Net.Driver() returns the
	// first driver connection, so the reader levels after that driver.
	d := New("multidrv")
	mustPort(t, d, "in", In)
	mustInst(t, d, "a", "INV")
	mustConn(t, d, "a", "A", "in", In)
	mustConn(t, d, "a", "Y", "x", Out)
	mustInst(t, d, "b", "INV")
	mustConn(t, d, "b", "A", "in", In)
	mustConn(t, d, "b", "Y", "x", Out)
	mustInst(t, d, "sink", "INV")
	mustConn(t, d, "sink", "A", "x", In)
	mustConn(t, d, "sink", "Y", "out", Out)
	lev := d.Levelize()
	if len(lev.Feedback) != 0 {
		t.Fatalf("feedback = %v, want none", lev.Feedback)
	}
	if got := d.FindInst("sink").Level; got != 1 {
		t.Fatalf("sink level = %d, want 1", got)
	}
	if d.FindInst("a").Level != 0 || d.FindInst("b").Level != 0 {
		t.Fatalf("driver levels = %d, %d, want 0, 0",
			d.FindInst("a").Level, d.FindInst("b").Level)
	}
}

func TestLevelizeMultiEdge(t *testing.T) {
	// One driver feeding two pins of the same sink contributes two
	// parallel edges; the indegree increments and decrements must agree so
	// the sink levels exactly one step after the driver.
	d := New("multiedge")
	mustPort(t, d, "in", In)
	mustInst(t, d, "a", "INV")
	mustConn(t, d, "a", "A", "in", In)
	mustConn(t, d, "a", "Y", "x", Out)
	mustInst(t, d, "g", "NAND2")
	mustConn(t, d, "g", "A", "x", In)
	mustConn(t, d, "g", "B", "x", In)
	mustConn(t, d, "g", "Y", "out", Out)
	lev := d.Levelize()
	if len(lev.Feedback) != 0 {
		t.Fatalf("feedback = %v, want none", lev.Feedback)
	}
	if got := d.FindInst("g").Level; got != 1 {
		t.Fatalf("g level = %d, want 1", got)
	}
	if len(lev.Levels) != 2 {
		t.Fatalf("levels = %d, want 2", len(lev.Levels))
	}
}

func TestFanoutInsts(t *testing.T) {
	d := buildChain(t, 3)
	fo := d.FanoutInsts(d.FindInst("u0"))
	if len(fo) != 1 || fo[0].Name != "u1" {
		t.Fatalf("fanout = %v", fo)
	}
	if fo := d.FanoutInsts(d.FindInst("u2")); len(fo) != 0 {
		t.Fatalf("sink fanout = %v", fo)
	}
}

func mustPort(t *testing.T, d *Design, name string, dir Dir) {
	t.Helper()
	if _, err := d.AddPort(name, dir); err != nil {
		t.Fatal(err)
	}
}

func mustInst(t *testing.T, d *Design, name, cell string) {
	t.Helper()
	if _, err := d.AddInst(name, cell); err != nil {
		t.Fatal(err)
	}
}

func mustConn(t *testing.T, d *Design, inst, pin, net string, dir Dir) {
	t.Helper()
	if err := d.Connect(inst, pin, net, dir); err != nil {
		t.Fatal(err)
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	src := `# a tiny design
design top
port in in
port out out
inst u0 INV
conn u0 A in in
conn u0 Y mid out
inst u1 BUF
conn u1 A mid in
conn u1 Y out out
`
	d, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" || d.NumInsts() != 2 {
		t.Fatalf("parsed: %s insts=%d", d.Name, d.NumInsts())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if d2.NumInsts() != d.NumInsts() || d2.NumNets() != d.NumNets() || d2.NumPorts() != d.NumPorts() {
		t.Fatal("round trip changed design size")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"port p in",                        // before design
		"design a\ndesign b",               // duplicate design
		"design a\nport p sideways",        // bad dir
		"design a\nconn i A n in",          // unknown inst
		"design a\nfrobnicate x",           // unknown keyword
		"design a\nport p",                 // arity
		"design a\ninst i",                 // arity
		"design a\ninst i INV\nconn i A n", // arity
		"",                                 // no design
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func BenchmarkLevelizeChain100(b *testing.B) {
	d := New("chain")
	if _, err := d.AddPort("in", In); err != nil {
		b.Fatal(err)
	}
	prev := "in"
	for i := 0; i < 100; i++ {
		name := "u" + itoa(i)
		if _, err := d.AddInst(name, "INV"); err != nil {
			b.Fatal(err)
		}
		next := "n" + itoa(i)
		if err := d.Connect(name, "A", prev, In); err != nil {
			b.Fatal(err)
		}
		if err := d.Connect(name, "Y", next, Out); err != nil {
			b.Fatal(err)
		}
		prev = next
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Levelize()
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
