package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The .net text format is a minimal line-oriented netlist interchange
// format used by cmd/netgen and cmd/sna:
//
//	# comment
//	design NAME
//	port NAME in|out
//	inst NAME CELLNAME
//	conn INST PIN NET in|out
//
// Lines may appear in any order except that `design` must come first and
// `conn` must follow its `inst`. Blank lines and #-comments are ignored.

// Parse reads a design in .net format.
func Parse(r io.Reader) (*Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var d *Design
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("netlist: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "design":
			if len(f) != 2 {
				return nil, fail("design wants 1 argument")
			}
			if d != nil {
				return nil, fail("duplicate design line")
			}
			d = New(f[1])
		case "port":
			if d == nil {
				return nil, fail("port before design")
			}
			if len(f) != 3 {
				return nil, fail("port wants NAME in|out")
			}
			dir, err := parseDir(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			if _, err := d.AddPort(f[1], dir); err != nil {
				return nil, fail("%v", err)
			}
		case "inst":
			if d == nil {
				return nil, fail("inst before design")
			}
			if len(f) != 3 {
				return nil, fail("inst wants NAME CELL")
			}
			if _, err := d.AddInst(f[1], f[2]); err != nil {
				return nil, fail("%v", err)
			}
		case "conn":
			if d == nil {
				return nil, fail("conn before design")
			}
			if len(f) != 5 {
				return nil, fail("conn wants INST PIN NET in|out")
			}
			dir, err := parseDir(f[4])
			if err != nil {
				return nil, fail("%v", err)
			}
			if err := d.Connect(f[1], f[2], f[3], dir); err != nil {
				return nil, fail("%v", err)
			}
		default:
			return nil, fail("unknown keyword %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: %w", err)
	}
	if d == nil {
		return nil, fmt.Errorf("netlist: no design line")
	}
	d.Compact()
	return d, nil
}

func parseDir(s string) (Dir, error) {
	switch s {
	case "in":
		return In, nil
	case "out":
		return Out, nil
	}
	return In, fmt.Errorf("bad direction %q (want in|out)", s)
}

// Write renders the design in .net format, deterministically sorted.
func Write(w io.Writer, d *Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\n", d.Name)
	for _, p := range d.Ports() {
		fmt.Fprintf(bw, "port %s %s\n", p.Name, p.Dir)
	}
	for _, i := range d.Insts() {
		fmt.Fprintf(bw, "inst %s %s\n", i.Name, i.Cell)
		for _, c := range i.Inputs() {
			fmt.Fprintf(bw, "conn %s %s %s %s\n", i.Name, c.Pin, c.Net.Name, c.Dir)
		}
		for _, c := range i.Outputs() {
			fmt.Fprintf(bw, "conn %s %s %s %s\n", i.Name, c.Pin, c.Net.Name, c.Dir)
		}
	}
	return bw.Flush()
}
