package netlist

import (
	"unsafe"

	"repro/internal/intern"
)

// MemBytes estimates the resident heap footprint of the design database
// in bytes: the object arenas at chunk granularity, the name indexes,
// the dense ID views, and the per-object variable parts (connection
// slices, pin maps, name strings). It is an estimator, not an
// accounting of every allocation — map bucket overhead is approximated
// and shared interned string backing may be counted once per design —
// but it is deterministic, cheap (one pass over the dense views, no
// allocation), and tracks the real footprint closely enough to budget
// a shared design cache against.
func (d *Design) MemBytes() int64 {
	b := int64(unsafe.Sizeof(*d))
	b += arenaBytes(&d.netArena)
	b += arenaBytes(&d.instArena)
	b += arenaBytes(&d.connArena)
	b += arenaBytes(&d.portArena)
	symBytes := int64(unsafe.Sizeof(intern.Sym(0)))
	b += mapBytes(len(d.ports), symBytes)
	b += mapBytes(len(d.nets), symBytes)
	b += mapBytes(len(d.insts), symBytes)
	b += int64(cap(d.netsByID)+cap(d.instsByID)+cap(d.portsByID)) * ptrBytes
	for _, n := range d.netsByID {
		b += int64(cap(n.Conns)+cap(n.loads)) * ptrBytes
		b += strBytes(n.Name)
	}
	for _, i := range d.instsByID {
		b += mapBytes(len(i.Conns), strHeaderBytes)
		b += int64(cap(i.ins)+cap(i.outs)) * ptrBytes
		b += strBytes(i.Name) + strBytes(i.Cell)
		for pin := range i.Conns {
			b += int64(len(pin))
		}
	}
	for _, p := range d.portsByID {
		b += strBytes(p.Name)
	}
	// Conn.Port/Pin strings share backing with the pin-map keys and port
	// names counted above; only the headers (already inside the arena
	// element size) remain.
	return b
}

const (
	ptrBytes       = int64(unsafe.Sizeof(uintptr(0)))
	strHeaderBytes = int64(unsafe.Sizeof(""))
	// mapEntryOverhead approximates Go map bucket cost beyond key+value:
	// tophash bytes, overflow pointers, and load-factor slack.
	mapEntryOverhead = 16
)

func strBytes(s string) int64 { return strHeaderBytes + int64(len(s)) }

func mapBytes(n int, keySize int64) int64 {
	if n == 0 {
		return 0
	}
	return int64(n) * (keySize + ptrBytes + mapEntryOverhead)
}

func arenaBytes[T any](a *arena[T]) int64 {
	var elem T
	var b int64
	for _, c := range a.chunks {
		b += int64(cap(c)) * int64(unsafe.Sizeof(elem))
	}
	return b
}
