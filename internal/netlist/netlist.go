// Package netlist implements the gate-level design database: cells
// referenced by name, instances, pins, nets, and top-level ports, plus the
// graph algorithms the analyses need (levelization, combinational-loop
// detection, fanin/fanout traversal).
//
// The package is deliberately independent of the cell library: pin
// directions are recorded at connect time, and cell names are resolved
// against a liberty.Library only by the analysis layers. This keeps the
// design database usable for structural tooling (generators, format
// conversion) without library bindings.
//
// Storage is struct-of-arrays at heart: Net/Inst/Conn/Port objects live
// in chunked arenas (pointer-stable, one allocation per chunk), carry
// dense creation-order int32 IDs for slice-indexed side tables, and are
// looked up by interned name symbols (internal/intern) rather than raw
// strings. Driver, load, and pin-direction views are maintained
// incrementally at build time instead of being recomputed per call, so
// the analysis layers can traverse the graph allocation-free and — once
// construction is done — concurrently. The mutating builder methods
// (AddPort, AddInst, Connect) are not safe for concurrent use; all
// read-side accessors, including the cached Levelize, are.
package netlist

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/intern"
)

// Dir is the direction of a pin or port from the perspective of the
// instance (an Output pin drives its net) or of the design (an In port
// drives its net from outside).
type Dir int

const (
	// In marks a pin that reads its net, or a port through which the
	// outside drives the design.
	In Dir = iota
	// Out marks a pin that drives its net, or a port through which the
	// design drives the outside.
	Out
)

// String returns "in" or "out".
func (d Dir) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// Conn is one connection of an instance pin (or design port) to a net.
// Inst is nil for port connections.
type Conn struct {
	Inst *Inst  // nil for a top-level port connection
	Port string // port name when Inst is nil
	Pin  string // pin name when Inst is non-nil
	Dir  Dir
	Net  *Net

	id int32 // dense creation-order ID within the design
}

// ID returns the connection's dense creation-order index, in
// [0, Design.NumConns). IDs are stable for the life of the design and
// suitable for slice-indexed side tables.
func (c *Conn) ID() int32 { return c.id }

// Driver reports whether this connection drives the net: an instance
// output pin, or a design input port.
func (c *Conn) Driver() bool {
	if c.Inst == nil {
		return c.Dir == In // input port drives the net from outside
	}
	return c.Dir == Out
}

// Name identifies the connection for messages, e.g. "u3.Y" or "port clk".
func (c *Conn) Name() string {
	if c.Inst == nil {
		return "port " + c.Port
	}
	return c.Inst.Name + "." + c.Pin
}

// Net is a single electrical node at the logical level. Physically it may
// be an RC network (bound by name through the parasitics database).
type Net struct {
	Name  string
	Conns []*Conn

	id    int32
	drv   *Conn   // first driving connection, maintained by addConn
	loads []*Conn // non-driving connections in insertion order
}

// ID returns the net's dense creation-order index, in
// [0, Design.NumNets). IDs are stable for the life of the design.
func (n *Net) ID() int32 { return n.id }

// Driver returns the unique driving connection, or nil if the net is
// undriven. Validate enforces uniqueness.
func (n *Net) Driver() *Conn { return n.drv }

// Loads returns the non-driving connections in insertion order. The
// returned slice is shared with the net; callers must not modify it.
func (n *Net) Loads() []*Conn { return n.loads }

func (n *Net) addConn(c *Conn) {
	n.Conns = append(n.Conns, c)
	if c.Driver() {
		if n.drv == nil {
			n.drv = c
		}
	} else {
		n.loads = append(n.loads, c)
	}
}

// Inst is a placed occurrence of a library cell.
type Inst struct {
	Name string
	Cell string // library cell name, resolved by the analysis layers
	// Conns maps pin name to its connection.
	Conns map[string]*Conn
	// Level is filled in by Levelize: topological depth from primary
	// inputs, or -1 for instances on combinational loops.
	Level int

	id   int32
	ins  []*Conn // input connections sorted by pin name
	outs []*Conn // output connections sorted by pin name
}

// ID returns the instance's dense creation-order index, in
// [0, Design.NumInsts). IDs are stable for the life of the design.
func (i *Inst) ID() int32 { return i.id }

// Inputs returns the instance's input connections sorted by pin name.
// The returned slice is shared with the instance; callers must not
// modify it.
func (i *Inst) Inputs() []*Conn { return i.ins }

// Outputs returns the instance's output connections sorted by pin name.
// The returned slice is shared with the instance; callers must not
// modify it.
func (i *Inst) Outputs() []*Conn { return i.outs }

func (i *Inst) addConn(c *Conn) {
	into := &i.ins
	if c.Dir == Out {
		into = &i.outs
	}
	// Insertion sort by pin name: pin counts are tiny and this keeps the
	// sorted views always valid instead of rebuilding them per call.
	s := *into
	k := sort.Search(len(s), func(j int) bool { return s[j].Pin > c.Pin })
	s = append(s, nil)
	copy(s[k+1:], s[k:])
	s[k] = c
	*into = s
}

// Port is a top-level design port.
type Port struct {
	Name string
	Dir  Dir
	Conn *Conn
}

// arena is a chunked, pointer-stable allocator: one heap allocation per
// chunk instead of one per object. Pointers into earlier chunks are
// never invalidated by growth.
type arena[T any] struct {
	chunks [][]T
}

const arenaChunk = 4096

func (a *arena[T]) alloc() *T {
	n := len(a.chunks)
	if n == 0 || len(a.chunks[n-1]) == cap(a.chunks[n-1]) {
		a.chunks = append(a.chunks, make([]T, 0, arenaChunk))
		n++
	}
	c := &a.chunks[n-1]
	*c = append(*c, *new(T))
	return &(*c)[len(*c)-1]
}

// Design is the netlist database. Construct with New and the Add/Connect
// builder methods, then call Validate before analysis.
type Design struct {
	Name string

	ports map[intern.Sym]*Port
	nets  map[intern.Sym]*Net
	insts map[intern.Sym]*Inst

	// Dense creation-order views; index == ID.
	netsByID  []*Net
	instsByID []*Inst
	portsByID []*Port
	numConns  int

	netArena  arena[Net]
	instArena arena[Inst]
	connArena arena[Conn]
	portArena arena[Port]

	// version counts builder mutations; the lazy caches below are keyed
	// on it.
	version uint64

	cache struct {
		sync.Mutex
		sortedVer uint64
		ports     []*Port
		nets      []*Net
		insts     []*Inst
		levVer    uint64
		lev       *Levelization
	}
}

// New returns an empty design.
func New(name string) *Design {
	return &Design{
		Name:  name,
		ports: make(map[intern.Sym]*Port),
		nets:  make(map[intern.Sym]*Net),
		insts: make(map[intern.Sym]*Inst),
	}
}

// Grow pre-sizes the name indexes for a design of about nets nets and
// insts instances, so bulk loaders avoid incremental map growth.
func (d *Design) Grow(nets, insts int) {
	if nets > len(d.nets) {
		m := make(map[intern.Sym]*Net, nets)
		for k, v := range d.nets {
			m[k] = v
		}
		d.nets = m
		d.netsByID = append(make([]*Net, 0, nets), d.netsByID...)
	}
	if insts > len(d.insts) {
		m := make(map[intern.Sym]*Inst, insts)
		for k, v := range d.insts {
			m[k] = v
		}
		d.insts = m
		d.instsByID = append(make([]*Inst, 0, insts), d.instsByID...)
	}
}

// AddPort declares a top-level port and connects it to the net of the same
// name (created if needed). It errors on duplicates.
func (d *Design) AddPort(name string, dir Dir) (*Port, error) {
	return d.AddPortSym(intern.Intern(name), dir)
}

// AddPortSym is AddPort keyed by an interned name symbol; bulk loaders
// use it to skip re-hashing names they interned during parsing.
func (d *Design) AddPortSym(sym intern.Sym, dir Dir) (*Port, error) {
	if _, dup := d.ports[sym]; dup {
		return nil, fmt.Errorf("netlist: duplicate port %q", sym.String())
	}
	d.version++
	name := sym.String()
	net := d.NetSym(sym)
	c := d.connArena.alloc()
	*c = Conn{Port: name, Dir: dir, Net: net, id: int32(d.numConns)}
	d.numConns++
	net.addConn(c)
	p := d.portArena.alloc()
	*p = Port{Name: name, Dir: dir, Conn: c}
	d.ports[sym] = p
	d.portsByID = append(d.portsByID, p)
	return p, nil
}

// AddInst declares an instance of the named cell. It errors on duplicates.
func (d *Design) AddInst(name, cell string) (*Inst, error) {
	return d.AddInstSym(intern.Intern(name), intern.Intern(cell))
}

// AddInstSym is AddInst keyed by interned name symbols.
func (d *Design) AddInstSym(sym, cell intern.Sym) (*Inst, error) {
	if _, dup := d.insts[sym]; dup {
		return nil, fmt.Errorf("netlist: duplicate instance %q", sym.String())
	}
	d.version++
	i := d.instArena.alloc()
	*i = Inst{Name: sym.String(), Cell: cell.String(), Conns: make(map[string]*Conn), Level: -1, id: int32(len(d.instsByID))}
	d.insts[sym] = i
	d.instsByID = append(d.instsByID, i)
	return i, nil
}

// Net returns the net with the given name, creating it on first use.
func (d *Design) Net(name string) *Net {
	return d.NetSym(intern.Intern(name))
}

// NetSym is Net keyed by an interned name symbol.
func (d *Design) NetSym(sym intern.Sym) *Net {
	if n, ok := d.nets[sym]; ok {
		return n
	}
	d.version++
	n := d.netArena.alloc()
	*n = Net{Name: sym.String(), id: int32(len(d.netsByID))}
	d.nets[sym] = n
	d.netsByID = append(d.netsByID, n)
	return n
}

// FindNet returns the named net or nil.
func (d *Design) FindNet(name string) *Net {
	sym, ok := intern.Lookup(name)
	if !ok {
		return nil
	}
	return d.nets[sym]
}

// FindInst returns the named instance or nil.
func (d *Design) FindInst(name string) *Inst {
	sym, ok := intern.Lookup(name)
	if !ok {
		return nil
	}
	return d.insts[sym]
}

// FindPort returns the named port or nil.
func (d *Design) FindPort(name string) *Port {
	sym, ok := intern.Lookup(name)
	if !ok {
		return nil
	}
	return d.ports[sym]
}

// NetByID, InstByID, PortByID return objects by dense ID. They panic on
// out-of-range IDs, like a slice index.
func (d *Design) NetByID(id int32) *Net   { return d.netsByID[id] }
func (d *Design) InstByID(id int32) *Inst { return d.instsByID[id] }
func (d *Design) PortByID(id int32) *Port { return d.portsByID[id] }

// Connect attaches pin pin of instance inst to net net with direction dir.
// The net is created if needed. It errors if the instance is unknown or the
// pin is already connected.
func (d *Design) Connect(inst, pin, net string, dir Dir) error {
	i, ok := d.insts[intern.Intern(inst)]
	if !ok {
		return fmt.Errorf("netlist: connect to unknown instance %q", inst)
	}
	return d.connect(i, intern.Canon(pin), d.Net(net), dir)
}

// ConnectSym is Connect keyed by interned symbols.
func (d *Design) ConnectSym(inst, pin, net intern.Sym, dir Dir) error {
	i, ok := d.insts[inst]
	if !ok {
		return fmt.Errorf("netlist: connect to unknown instance %q", inst.String())
	}
	return d.connect(i, pin.String(), d.NetSym(net), dir)
}

func (d *Design) connect(i *Inst, pin string, n *Net, dir Dir) error {
	if _, dup := i.Conns[pin]; dup {
		return fmt.Errorf("netlist: pin %s.%s already connected", i.Name, pin)
	}
	d.version++
	c := d.connArena.alloc()
	*c = Conn{Inst: i, Pin: pin, Dir: dir, Net: n, id: int32(d.numConns)}
	d.numConns++
	i.Conns[pin] = c
	i.addConn(c)
	n.addConn(c)
	return nil
}

// Ports returns the ports sorted by name. The returned slice is a shared
// cache; callers must not modify it.
func (d *Design) Ports() []*Port {
	d.refreshSorted()
	return d.cache.ports
}

// Nets returns the nets sorted by name. The returned slice is a shared
// cache; callers must not modify it.
func (d *Design) Nets() []*Net {
	d.refreshSorted()
	return d.cache.nets
}

// Insts returns the instances sorted by name. The returned slice is a
// shared cache; callers must not modify it.
func (d *Design) Insts() []*Inst {
	d.refreshSorted()
	return d.cache.insts
}

func (d *Design) refreshSorted() {
	d.cache.Lock()
	defer d.cache.Unlock()
	if d.cache.sortedVer == d.version && d.cache.nets != nil {
		return
	}
	d.cache.ports = append(make([]*Port, 0, len(d.portsByID)), d.portsByID...)
	sort.Slice(d.cache.ports, func(a, b int) bool { return d.cache.ports[a].Name < d.cache.ports[b].Name })
	d.cache.nets = append(make([]*Net, 0, len(d.netsByID)), d.netsByID...)
	sort.Slice(d.cache.nets, func(a, b int) bool { return d.cache.nets[a].Name < d.cache.nets[b].Name })
	d.cache.insts = append(make([]*Inst, 0, len(d.instsByID)), d.instsByID...)
	sort.Slice(d.cache.insts, func(a, b int) bool { return d.cache.insts[a].Name < d.cache.insts[b].Name })
	d.cache.sortedVer = d.version
}

// NumNets, NumInsts, NumPorts, NumConns report database sizes.
func (d *Design) NumNets() int  { return len(d.netsByID) }
func (d *Design) NumInsts() int { return len(d.instsByID) }
func (d *Design) NumPorts() int { return len(d.portsByID) }
func (d *Design) NumConns() int { return d.numConns }

// Compact repacks every net's connection lists into shared CSR-style
// backing arrays in net-ID order. Bulk loaders call it once after
// construction: the per-net slices grown incrementally during parsing
// are replaced by three contiguous arrays (conns, loads) that the
// garbage collector scans as single objects. Slices are full-capacity
// clipped, so a later Connect still works (append copies out instead of
// clobbering a neighbor's storage).
func (d *Design) Compact() {
	total := 0
	for _, n := range d.netsByID {
		total += len(n.Conns)
	}
	conns := make([]*Conn, 0, total)
	loads := make([]*Conn, 0, total)
	for _, n := range d.netsByID {
		c0 := len(conns)
		conns = append(conns, n.Conns...)
		n.Conns = conns[c0:len(conns):len(conns)]
		l0 := len(loads)
		loads = append(loads, n.loads...)
		n.loads = loads[l0:len(loads):len(loads)]
	}
}

// Validate checks structural sanity: every net has exactly one driver,
// every instance pin is connected to a net that knows about it, and every
// port net exists. It returns all problems found, or nil.
func (d *Design) Validate() error {
	var errs []error
	for _, n := range d.Nets() {
		drivers := 0
		for _, c := range n.Conns {
			if c.Driver() {
				drivers++
			}
		}
		switch {
		case drivers == 0 && len(n.Conns) > 0:
			errs = append(errs, fmt.Errorf("net %q has no driver", n.Name))
		case drivers > 1:
			errs = append(errs, fmt.Errorf("net %q has %d drivers", n.Name, drivers))
		}
	}
	for _, i := range d.Insts() {
		if len(i.Conns) == 0 {
			errs = append(errs, fmt.Errorf("instance %q has no connections", i.Name))
		}
		// Iterate pins in sorted order so the problem report is
		// byte-stable across runs.
		pins := make([]string, 0, len(i.Conns))
		for pin := range i.Conns {
			pins = append(pins, pin)
		}
		sort.Strings(pins)
		for _, pin := range pins {
			if i.Conns[pin].Net == nil {
				errs = append(errs, fmt.Errorf("pin %s.%s connected to nil net", i.Name, pin))
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("netlist: %d problems:", len(errs))
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// FanoutInsts returns the instances that read any output net of i, sorted
// by name, without duplicates.
func (d *Design) FanoutInsts(i *Inst) []*Inst {
	var out []*Inst
	for _, oc := range i.Outputs() {
		for _, lc := range oc.Net.Loads() {
			if lc.Inst != nil {
				out = append(out, lc.Inst)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	// Dedup after the sort; fanout lists are small.
	k := 0
	for _, inst := range out {
		if k == 0 || out[k-1] != inst {
			out[k] = inst
			k++
		}
	}
	return out[:k]
}
