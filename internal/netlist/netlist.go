// Package netlist implements the gate-level design database: cells
// referenced by name, instances, pins, nets, and top-level ports, plus the
// graph algorithms the analyses need (levelization, combinational-loop
// detection, fanin/fanout traversal).
//
// The package is deliberately independent of the cell library: pin
// directions are recorded at connect time, and cell names are resolved
// against a liberty.Library only by the analysis layers. This keeps the
// design database usable for structural tooling (generators, format
// conversion) without library bindings.
package netlist

import (
	"fmt"
	"sort"
)

// Dir is the direction of a pin or port from the perspective of the
// instance (an Output pin drives its net) or of the design (an In port
// drives its net from outside).
type Dir int

const (
	// In marks a pin that reads its net, or a port through which the
	// outside drives the design.
	In Dir = iota
	// Out marks a pin that drives its net, or a port through which the
	// design drives the outside.
	Out
)

// String returns "in" or "out".
func (d Dir) String() string {
	if d == Out {
		return "out"
	}
	return "in"
}

// Conn is one connection of an instance pin (or design port) to a net.
// Inst is nil for port connections.
type Conn struct {
	Inst *Inst  // nil for a top-level port connection
	Port string // port name when Inst is nil
	Pin  string // pin name when Inst is non-nil
	Dir  Dir
	Net  *Net
}

// Driver reports whether this connection drives the net: an instance
// output pin, or a design input port.
func (c *Conn) Driver() bool {
	if c.Inst == nil {
		return c.Dir == In // input port drives the net from outside
	}
	return c.Dir == Out
}

// Name identifies the connection for messages, e.g. "u3.Y" or "port clk".
func (c *Conn) Name() string {
	if c.Inst == nil {
		return "port " + c.Port
	}
	return c.Inst.Name + "." + c.Pin
}

// Net is a single electrical node at the logical level. Physically it may
// be an RC network (bound by name through the parasitics database).
type Net struct {
	Name  string
	Conns []*Conn
}

// Driver returns the unique driving connection, or nil if the net is
// undriven. Validate enforces uniqueness.
func (n *Net) Driver() *Conn {
	for _, c := range n.Conns {
		if c.Driver() {
			return c
		}
	}
	return nil
}

// Loads returns the non-driving connections in insertion order.
func (n *Net) Loads() []*Conn {
	out := make([]*Conn, 0, len(n.Conns))
	for _, c := range n.Conns {
		if !c.Driver() {
			out = append(out, c)
		}
	}
	return out
}

// Inst is a placed occurrence of a library cell.
type Inst struct {
	Name string
	Cell string // library cell name, resolved by the analysis layers
	// Conns maps pin name to its connection.
	Conns map[string]*Conn
	// Level is filled in by Levelize: topological depth from primary
	// inputs, or -1 for instances on combinational loops.
	Level int
}

// Inputs returns the instance's input connections sorted by pin name.
func (i *Inst) Inputs() []*Conn {
	return i.connsByDir(In)
}

// Outputs returns the instance's output connections sorted by pin name.
func (i *Inst) Outputs() []*Conn {
	return i.connsByDir(Out)
}

func (i *Inst) connsByDir(d Dir) []*Conn {
	names := make([]string, 0, len(i.Conns))
	for name, c := range i.Conns {
		if c.Dir == d {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]*Conn, len(names))
	for k, name := range names {
		out[k] = i.Conns[name]
	}
	return out
}

// Port is a top-level design port.
type Port struct {
	Name string
	Dir  Dir
	Conn *Conn
}

// Design is the netlist database. Construct with New and the Add/Connect
// builder methods, then call Validate before analysis.
type Design struct {
	Name  string
	ports map[string]*Port
	nets  map[string]*Net
	insts map[string]*Inst
}

// New returns an empty design.
func New(name string) *Design {
	return &Design{
		Name:  name,
		ports: make(map[string]*Port),
		nets:  make(map[string]*Net),
		insts: make(map[string]*Inst),
	}
}

// AddPort declares a top-level port and connects it to the net of the same
// name (created if needed). It errors on duplicates.
func (d *Design) AddPort(name string, dir Dir) (*Port, error) {
	if _, dup := d.ports[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate port %q", name)
	}
	net := d.Net(name)
	c := &Conn{Port: name, Dir: dir, Net: net}
	net.Conns = append(net.Conns, c)
	p := &Port{Name: name, Dir: dir, Conn: c}
	d.ports[name] = p
	return p, nil
}

// AddInst declares an instance of the named cell. It errors on duplicates.
func (d *Design) AddInst(name, cell string) (*Inst, error) {
	if _, dup := d.insts[name]; dup {
		return nil, fmt.Errorf("netlist: duplicate instance %q", name)
	}
	i := &Inst{Name: name, Cell: cell, Conns: make(map[string]*Conn), Level: -1}
	d.insts[name] = i
	return i, nil
}

// Net returns the net with the given name, creating it on first use.
func (d *Design) Net(name string) *Net {
	if n, ok := d.nets[name]; ok {
		return n
	}
	n := &Net{Name: name}
	d.nets[name] = n
	return n
}

// FindNet returns the named net or nil.
func (d *Design) FindNet(name string) *Net { return d.nets[name] }

// FindInst returns the named instance or nil.
func (d *Design) FindInst(name string) *Inst { return d.insts[name] }

// FindPort returns the named port or nil.
func (d *Design) FindPort(name string) *Port { return d.ports[name] }

// Connect attaches pin pin of instance inst to net net with direction dir.
// The net is created if needed. It errors if the instance is unknown or the
// pin is already connected.
func (d *Design) Connect(inst, pin, net string, dir Dir) error {
	i, ok := d.insts[inst]
	if !ok {
		return fmt.Errorf("netlist: connect to unknown instance %q", inst)
	}
	if _, dup := i.Conns[pin]; dup {
		return fmt.Errorf("netlist: pin %s.%s already connected", inst, pin)
	}
	n := d.Net(net)
	c := &Conn{Inst: i, Pin: pin, Dir: dir, Net: n}
	i.Conns[pin] = c
	n.Conns = append(n.Conns, c)
	return nil
}

// Ports returns the ports sorted by name.
func (d *Design) Ports() []*Port {
	names := make([]string, 0, len(d.ports))
	for n := range d.ports {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Port, len(names))
	for i, n := range names {
		out[i] = d.ports[n]
	}
	return out
}

// Nets returns the nets sorted by name.
func (d *Design) Nets() []*Net {
	names := make([]string, 0, len(d.nets))
	for n := range d.nets {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Net, len(names))
	for i, n := range names {
		out[i] = d.nets[n]
	}
	return out
}

// Insts returns the instances sorted by name.
func (d *Design) Insts() []*Inst {
	names := make([]string, 0, len(d.insts))
	for n := range d.insts {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Inst, len(names))
	for i, n := range names {
		out[i] = d.insts[n]
	}
	return out
}

// NumNets, NumInsts, NumPorts report database sizes.
func (d *Design) NumNets() int  { return len(d.nets) }
func (d *Design) NumInsts() int { return len(d.insts) }
func (d *Design) NumPorts() int { return len(d.ports) }

// Validate checks structural sanity: every net has exactly one driver,
// every instance pin is connected to a net that knows about it, and every
// port net exists. It returns all problems found, or nil.
func (d *Design) Validate() error {
	var errs []error
	for _, n := range d.Nets() {
		drivers := 0
		for _, c := range n.Conns {
			if c.Driver() {
				drivers++
			}
		}
		switch {
		case drivers == 0 && len(n.Conns) > 0:
			errs = append(errs, fmt.Errorf("net %q has no driver", n.Name))
		case drivers > 1:
			errs = append(errs, fmt.Errorf("net %q has %d drivers", n.Name, drivers))
		}
	}
	for _, i := range d.Insts() {
		if len(i.Conns) == 0 {
			errs = append(errs, fmt.Errorf("instance %q has no connections", i.Name))
		}
		// Iterate pins in sorted order so the problem report is
		// byte-stable across runs.
		pins := make([]string, 0, len(i.Conns))
		for pin := range i.Conns {
			pins = append(pins, pin)
		}
		sort.Strings(pins)
		for _, pin := range pins {
			if i.Conns[pin].Net == nil {
				errs = append(errs, fmt.Errorf("pin %s.%s connected to nil net", i.Name, pin))
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("netlist: %d problems:", len(errs))
	for _, e := range errs {
		msg += "\n  " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// FanoutInsts returns the instances that read any output net of i, sorted
// by name, without duplicates.
func (d *Design) FanoutInsts(i *Inst) []*Inst {
	seen := make(map[string]*Inst)
	for _, oc := range i.Outputs() {
		for _, lc := range oc.Net.Loads() {
			if lc.Inst != nil {
				seen[lc.Inst.Name] = lc.Inst
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Inst, len(names))
	for k, n := range names {
		out[k] = seen[n]
	}
	return out
}
