package netlist

import "sort"

// Levelization is the topological structure of the combinational netlist.
type Levelization struct {
	// Levels[k] holds the instances at topological depth k (all of whose
	// fanin instances are at depths < k), sorted by name within a level.
	Levels [][]*Inst
	// Feedback holds the instances that could not be assigned a finite
	// level: those on combinational cycles and everything downstream of
	// one. The noise and timing engines handle these by fixpoint
	// iteration.
	Feedback []*Inst
}

// NumLeveled returns the count of acyclic (leveled) instances.
func (l *Levelization) NumLeveled() int {
	n := 0
	for _, lv := range l.Levels {
		n += len(lv)
	}
	return n
}

// Ordered returns every leveled instance in a valid topological order.
func (l *Levelization) Ordered() []*Inst {
	out := make([]*Inst, 0, l.NumLeveled())
	for _, lv := range l.Levels {
		out = append(out, lv...)
	}
	return out
}

// Levelize computes the topological levels of the design's instances using
// Kahn's algorithm over the instance graph (edge A→B when A drives a net B
// reads). Instances left over after the peel are on combinational cycles
// and are reported in Feedback with Level == -1. Each instance's Level
// field is updated in place.
//
// The result is cached: repeated calls on an unmodified design return
// the same Levelization without recomputing, which also makes a bound
// design safe to share across concurrent engines (the first Levelize
// wins; later calls are read-only). Callers must treat the returned
// structure as immutable. Any builder mutation invalidates the cache.
func (d *Design) Levelize() *Levelization {
	d.cache.Lock()
	defer d.cache.Unlock()
	if d.cache.lev != nil && d.cache.levVer == d.version {
		return d.cache.lev
	}
	lev := d.levelize()
	d.cache.lev, d.cache.levVer = lev, d.version
	return lev
}

// levelize is the uncached Kahn peel over dense instance IDs: indegrees
// live in one int32 slice indexed by Inst.ID, and fanout traversal goes
// straight through the maintained output/load connection views, so the
// peel allocates only the level slices themselves.
func (d *Design) levelize() *Levelization {
	insts := d.instsByID
	indeg := make([]int32, len(insts))
	for _, i := range insts {
		i.Level = -1
	}
	// Count fanin edges: one per (driving instance, reading input conn)
	// pair, with multiplicity — multiplicity is harmless for Kahn as long
	// as decrements match. Self-edges count too: an instance driving its
	// own input is a one-gate combinational cycle, and its indegree can
	// never reach zero (the decrement below only runs when the driver is
	// leveled), so it correctly lands in Feedback rather than getting a
	// bogus finite level.
	for _, i := range insts {
		for _, c := range i.ins {
			if drv := c.Net.Driver(); drv != nil && drv.Inst != nil {
				indeg[i.id]++
			}
		}
	}
	frontier := make([]*Inst, 0, len(insts))
	for _, i := range insts {
		if indeg[i.id] == 0 {
			frontier = append(frontier, i)
		}
	}
	var lev Levelization
	level := 0
	for len(frontier) > 0 {
		sort.Slice(frontier, func(a, b int) bool { return frontier[a].Name < frontier[b].Name })
		for _, i := range frontier {
			i.Level = level
		}
		lev.Levels = append(lev.Levels, frontier)
		var next []*Inst
		for _, i := range frontier {
			for _, oc := range i.outs {
				for _, lc := range oc.Net.Loads() {
					fo := lc.Inst
					if fo == nil || fo.Level >= 0 {
						continue
					}
					// One decrement per (i → input conn of fo) edge,
					// matching the count above.
					indeg[fo.id]--
					if indeg[fo.id] == 0 {
						next = append(next, fo)
					}
				}
			}
		}
		frontier = next
		level++
	}
	for _, i := range insts {
		if i.Level < 0 {
			lev.Feedback = append(lev.Feedback, i)
		}
	}
	sort.Slice(lev.Feedback, func(a, b int) bool { return lev.Feedback[a].Name < lev.Feedback[b].Name })
	return &lev
}
