package liberty

import (
	"fmt"
	"math"
	"sort"
)

// ImmunityCurve is a cell input's noise-rejection characteristic: the
// maximum glitch peak (volts) the input tolerates without causing a
// functional failure, as a function of the glitch width (seconds). Narrow
// glitches are filtered by the gate's inertia, so the allowed peak falls
// monotonically from near the supply at zero width toward the DC noise
// margin at infinite width.
type ImmunityCurve struct {
	Widths []float64 // ascending glitch widths, seconds
	Peaks  []float64 // allowed peak at each width, volts (non-increasing)
}

// NewImmunityCurve validates and returns an immunity curve.
func NewImmunityCurve(widths, peaks []float64) (*ImmunityCurve, error) {
	if len(widths) == 0 || len(widths) != len(peaks) {
		return nil, fmt.Errorf("liberty: immunity curve wants equal non-empty widths and peaks")
	}
	if !sort.Float64sAreSorted(widths) {
		return nil, fmt.Errorf("liberty: immunity widths must be ascending")
	}
	for i := 1; i < len(peaks); i++ {
		if peaks[i] > peaks[i-1] {
			return nil, fmt.Errorf("liberty: immunity peaks must be non-increasing (entry %d)", i)
		}
	}
	return &ImmunityCurve{Widths: widths, Peaks: peaks}, nil
}

// MaxPeak returns the maximum tolerable glitch peak for a glitch of the
// given width, by linear interpolation; outside the characterized range the
// curve is clamped (wide glitches use the final, DC-like entry).
func (c *ImmunityCurve) MaxPeak(width float64) float64 {
	lo, hi, f := locate(c.Widths, width)
	return c.Peaks[lo]*(1-f) + c.Peaks[hi]*f
}

// Slack returns the noise slack for a glitch: MaxPeak(width) − |peak|.
// Negative slack is a violation.
func (c *ImmunityCurve) Slack(peak, width float64) float64 {
	return c.MaxPeak(width) - math.Abs(peak)
}

// DefaultImmunity builds the canonical rejection curve used by the generic
// library: allowed peak decays from nearly vdd at zero width to the DC
// margin dcMargin with characteristic width tChar:
//
//	maxPeak(w) = dcMargin + (vdd − dcMargin) · tChar/(tChar + w)
func DefaultImmunity(vdd, dcMargin, tChar float64) *ImmunityCurve {
	widths := []float64{0, tChar / 2, tChar, 2 * tChar, 4 * tChar, 8 * tChar, 16 * tChar}
	peaks := make([]float64, len(widths))
	for i, w := range widths {
		peaks[i] = dcMargin + (vdd-dcMargin)*tChar/(tChar+w)
	}
	return &ImmunityCurve{Widths: widths, Peaks: peaks}
}

// TransferCurve is a cell's noise-transfer (noise propagation)
// characteristic from an input to an output: given an input glitch below
// the failure threshold, the output glitch peak is
//
//	outPeak = gain(width) · max(0, inPeak − Threshold)
//
// where gain grows with input glitch width (wide glitches approach the DC
// voltage gain of the cell, narrow glitches are attenuated by inertia):
//
//	gain(w) = DCGain · w/(w + TChar)
//
// For well-behaved static CMOS cells operating below the failure threshold
// the effective gain is below one, which makes windowed noise propagation a
// contraction and guarantees fixpoint convergence on loops.
type TransferCurve struct {
	Threshold float64 // input peak below which nothing propagates, volts
	DCGain    float64 // asymptotic gain for very wide glitches
	TChar     float64 // characteristic width, seconds
}

// NewTransferCurve validates parameters.
func NewTransferCurve(threshold, dcGain, tChar float64) (*TransferCurve, error) {
	if threshold < 0 || dcGain < 0 || tChar <= 0 {
		return nil, fmt.Errorf("liberty: invalid transfer curve (%g, %g, %g)", threshold, dcGain, tChar)
	}
	return &TransferCurve{Threshold: threshold, DCGain: dcGain, TChar: tChar}, nil
}

// Gain returns the width-dependent small-glitch gain.
func (tc *TransferCurve) Gain(width float64) float64 {
	if width <= 0 {
		return 0
	}
	return tc.DCGain * width / (width + tc.TChar)
}

// OutputPeak returns the propagated glitch peak magnitude for an input
// glitch of the given peak magnitude and width.
func (tc *TransferCurve) OutputPeak(inPeak, width float64) float64 {
	excess := math.Abs(inPeak) - tc.Threshold
	if excess <= 0 {
		return 0
	}
	return tc.Gain(width) * excess
}
