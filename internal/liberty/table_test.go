package liberty

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkTable(t *testing.T) *Table2D {
	t.Helper()
	tbl, err := NewTable2D(
		[]float64{1, 2, 4},
		[]float64{10, 20},
		[][]float64{{1, 2}, {3, 4}, {5, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewTable2DValidation(t *testing.T) {
	if _, err := NewTable2D(nil, []float64{1}, nil); err == nil {
		t.Error("empty slews accepted")
	}
	if _, err := NewTable2D([]float64{2, 1}, []float64{1}, [][]float64{{1}, {2}}); err == nil {
		t.Error("descending slews accepted")
	}
	if _, err := NewTable2D([]float64{1}, []float64{1}, [][]float64{{1}, {2}}); err == nil {
		t.Error("row count mismatch accepted")
	}
	if _, err := NewTable2D([]float64{1}, []float64{1, 2}, [][]float64{{1}}); err == nil {
		t.Error("col count mismatch accepted")
	}
}

func TestTableEvalCorners(t *testing.T) {
	tbl := mkTable(t)
	cases := []struct{ s, l, want float64 }{
		{1, 10, 1}, {1, 20, 2}, {2, 10, 3}, {4, 20, 6},
	}
	for _, c := range cases {
		if got := tbl.Eval(c.s, c.l); got != c.want {
			t.Errorf("Eval(%g,%g) = %g, want %g", c.s, c.l, got, c.want)
		}
	}
}

func TestTableEvalInterpolates(t *testing.T) {
	tbl := mkTable(t)
	// Midpoint of slews 1..2 at load 10: between 1 and 3 -> 2.
	if got := tbl.Eval(1.5, 10); got != 2 {
		t.Fatalf("Eval(1.5,10) = %g", got)
	}
	// Bilinear center of the (1..2)x(10..20) cell: mean of 1,2,3,4 = 2.5.
	if got := tbl.Eval(1.5, 15); got != 2.5 {
		t.Fatalf("Eval(1.5,15) = %g", got)
	}
}

func TestTableEvalClamps(t *testing.T) {
	tbl := mkTable(t)
	if got := tbl.Eval(0.1, 5); got != 1 {
		t.Fatalf("below-range Eval = %g", got)
	}
	if got := tbl.Eval(100, 100); got != 6 {
		t.Fatalf("above-range Eval = %g", got)
	}
}

func TestTableConstant(t *testing.T) {
	c := Constant(7)
	if got := c.Eval(123, -5); got != 7 {
		t.Fatalf("Constant Eval = %g", got)
	}
}

func TestTableMinMax(t *testing.T) {
	tbl := mkTable(t)
	if tbl.MaxVal() != 6 || tbl.MinVal() != 1 {
		t.Fatalf("min/max = %g/%g", tbl.MinVal(), tbl.MaxVal())
	}
}

func TestQuickTableEvalWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl, err := NewTable2D(
			[]float64{0, 1, 3},
			[]float64{0, 2},
			[][]float64{
				{r.Float64(), r.Float64()},
				{r.Float64(), r.Float64()},
				{r.Float64(), r.Float64()},
			},
		)
		if err != nil {
			return false
		}
		for k := 0; k < 30; k++ {
			v := tbl.Eval(r.Float64()*5-1, r.Float64()*4-1)
			if v < tbl.MinVal()-1e-12 || v > tbl.MaxVal()+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTableEvalMonotoneForMonotoneData(t *testing.T) {
	// For a table monotone in load, Eval must be monotone in load too.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := mustTable(t)
		l1 := r.Float64() * 30
		l2 := l1 + r.Float64()*10
		s := r.Float64() * 5
		return tbl.Eval(s, l1) <= tbl.Eval(s, l2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func mustTable(t *testing.T) *Table2D {
	tbl, err := NewTable2D(
		[]float64{1, 2, 4},
		[]float64{10, 20},
		[][]float64{{1, 2}, {3, 4}, {5, 6}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestImmunityCurve(t *testing.T) {
	ic, err := NewImmunityCurve(
		[]float64{0, 10e-12, 40e-12},
		[]float64{1.1, 0.8, 0.5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := ic.MaxPeak(0); got != 1.1 {
		t.Fatalf("MaxPeak(0) = %g", got)
	}
	if got := ic.MaxPeak(5e-12); math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("MaxPeak(5ps) = %g", got)
	}
	if got := ic.MaxPeak(1); got != 0.5 {
		t.Fatalf("MaxPeak(huge) = %g (clamp)", got)
	}
	if got := ic.Slack(0.3, 5e-12); math.Abs(got-0.65) > 1e-12 {
		t.Fatalf("Slack = %g", got)
	}
	if got := ic.Slack(-1.0, 5e-12); math.Abs(got-(-0.05)) > 1e-12 {
		t.Fatalf("negative-glitch Slack = %g", got)
	}
}

func TestImmunityCurveValidation(t *testing.T) {
	if _, err := NewImmunityCurve([]float64{0, 1}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewImmunityCurve([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("descending widths accepted")
	}
	if _, err := NewImmunityCurve([]float64{0, 1}, []float64{0.5, 0.9}); err == nil {
		t.Error("increasing peaks accepted")
	}
	if _, err := NewImmunityCurve(nil, nil); err == nil {
		t.Error("empty curve accepted")
	}
}

func TestDefaultImmunityShape(t *testing.T) {
	ic := DefaultImmunity(1.2, 0.48, 30e-12)
	if got := ic.MaxPeak(0); math.Abs(got-1.2) > 1e-9 {
		t.Fatalf("zero-width peak = %g, want vdd", got)
	}
	// Asymptotically approaches the DC margin.
	wide := ic.MaxPeak(16 * 30e-12)
	if wide < 0.48 || wide > 0.55 {
		t.Fatalf("wide-glitch peak = %g, want near 0.48", wide)
	}
	// Monotone non-increasing across the characterized range.
	for i := 1; i < len(ic.Widths); i++ {
		if ic.Peaks[i] > ic.Peaks[i-1] {
			t.Fatalf("peaks not monotone at %d", i)
		}
	}
}

func TestTransferCurve(t *testing.T) {
	tc, err := NewTransferCurve(0.4, 0.8, 20e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got := tc.OutputPeak(0.3, 100e-12); got != 0 {
		t.Fatalf("sub-threshold output = %g", got)
	}
	// Wide glitch: gain -> DCGain.
	got := tc.OutputPeak(0.9, 2000e-12)
	want := 0.8 * (0.9 - 0.4) * (2000.0 / 2020.0)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("OutputPeak = %g, want %g", got, want)
	}
	// Negative glitch magnitude handled.
	if got := tc.OutputPeak(-0.9, 2000e-12); math.Abs(got-want) > 1e-12 {
		t.Fatalf("negative glitch OutputPeak = %g", got)
	}
	if got := tc.Gain(0); got != 0 {
		t.Fatalf("Gain(0) = %g", got)
	}
	if tc.Gain(1) >= 0.8+1e-12 {
		t.Fatalf("Gain exceeds DCGain")
	}
}

func TestTransferCurveValidation(t *testing.T) {
	if _, err := NewTransferCurve(-0.1, 0.8, 1e-12); err == nil {
		t.Error("negative threshold accepted")
	}
	if _, err := NewTransferCurve(0.1, -0.8, 1e-12); err == nil {
		t.Error("negative gain accepted")
	}
	if _, err := NewTransferCurve(0.1, 0.8, 0); err == nil {
		t.Error("zero tchar accepted")
	}
}
