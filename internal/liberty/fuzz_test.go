package liberty

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse asserts two invariants over arbitrary .nlib input: Parse
// never panics (it returns a positioned "liberty:" error instead), and
// any library it accepts survives a Write/Parse round-trip. Seeds cover
// the generic library, a minimal hand-written cell, and past crashers
// (table dimensions whose product overflows int).
func FuzzParse(f *testing.F) {
	var generic bytes.Buffer
	if err := Write(&generic, Generic()); err != nil {
		f.Fatal(err)
	}
	f.Add(generic.String())
	f.Add("library l\nvdd 1.2\ncell c\npin a in 1e-15\npin z out\ndrive 100\nhold 200\narc a z pos\ntable delay_rise 2 2 1e-12 2e-12 1e-15 2e-15 1 2 3 4\nend\n")
	f.Add("library l\ncell c\narc a z pos\ntable delay_rise 274177 67280421310721 1\nend\n")
	f.Add("library l\ndefault_immunity 2 1 2 3 4\n")
	f.Add("# comment\n\nlibrary l\n")
	f.Fuzz(func(t *testing.T, src string) {
		lib, err := Parse(strings.NewReader(src))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "liberty:") {
				t.Fatalf("unpositioned error: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := Write(&out, lib); err != nil {
			t.Fatalf("rendering an accepted library: %v", err)
		}
		if _, err := Parse(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("accepted library failed the round-trip: %v\nrendered:\n%s", err, out.Bytes())
		}
	})
}
