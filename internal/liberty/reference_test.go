package liberty

// This file preserves the original sequential .nlib parser as a
// test-only reference implementation for the golden equivalence tests.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

func parseReference(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var lib *Library
	var cell *Cell
	var arc *Arc
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("liberty: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "library":
			if len(f) != 2 || lib != nil {
				return nil, fail("bad or duplicate library line")
			}
			lib = NewLibrary(f[1], 0)
		case "vdd":
			if lib == nil || len(f) != 2 {
				return nil, fail("bad vdd line")
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad vdd: %v", err)
			}
			lib.Vdd = v
		case "default_immunity":
			if lib == nil {
				return nil, fail("default_immunity before library")
			}
			ic, err := parseImmunity(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			lib.DefaultImmunity = ic
		case "cell":
			if lib == nil || len(f) != 2 {
				return nil, fail("bad cell line")
			}
			if cell != nil {
				return nil, fail("cell %q not closed with end", cell.Name)
			}
			cell = &Cell{Name: f[1], Pins: make(map[string]*Pin)}
			arc = nil
		case "pin":
			if cell == nil {
				return nil, fail("pin outside cell")
			}
			switch {
			case len(f) == 4 && f[2] == "in":
				c, err := strconv.ParseFloat(f[3], 64)
				if err != nil {
					return nil, fail("bad pin cap: %v", err)
				}
				cell.Pins[f[1]] = &Pin{Name: f[1], Dir: Input, Cap: c}
			case len(f) == 3 && f[2] == "out":
				cell.Pins[f[1]] = &Pin{Name: f[1], Dir: Output}
			default:
				return nil, fail("pin wants NAME in CAP or NAME out")
			}
		case "drive", "hold":
			if cell == nil || len(f) != 2 {
				return nil, fail("bad %s line", f[0])
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad %s: %v", f[0], err)
			}
			if f[0] == "drive" {
				cell.DriveRes = v
			} else {
				cell.HoldRes = v
			}
		case "immunity":
			if cell == nil || len(f) < 3 {
				return nil, fail("bad immunity line")
			}
			pin := cell.Pins[f[1]]
			if pin == nil || pin.Dir != Input {
				return nil, fail("immunity for unknown input pin %q", f[1])
			}
			ic, err := parseImmunity(f[2:])
			if err != nil {
				return nil, fail("%v", err)
			}
			pin.Immunity = ic
		case "arc":
			if cell == nil || len(f) != 4 {
				return nil, fail("arc wants FROM TO pos|neg|both")
			}
			var u Unateness
			switch f[3] {
			case "pos":
				u = PositiveUnate
			case "neg":
				u = NegativeUnate
			case "both":
				u = NonUnate
			default:
				return nil, fail("bad unateness %q", f[3])
			}
			arc = &Arc{From: f[1], To: f[2], Unate: u}
			cell.Arcs = append(cell.Arcs, arc)
		case "transfer":
			if arc == nil || len(f) != 4 {
				return nil, fail("transfer wants THRESHOLD DCGAIN TCHAR after an arc")
			}
			nums, err := parseFloats(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			tc, err := NewTransferCurve(nums[0], nums[1], nums[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			arc.Transfer = tc
		case "table":
			if arc == nil || len(f) < 4 {
				return nil, fail("table outside arc")
			}
			tbl, err := parseTable(f[2:])
			if err != nil {
				return nil, fail("%v", err)
			}
			switch f[1] {
			case "delay_rise":
				arc.DelayRise = tbl
			case "delay_fall":
				arc.DelayFall = tbl
			case "slew_rise":
				arc.SlewRise = tbl
			case "slew_fall":
				arc.SlewFall = tbl
			default:
				return nil, fail("unknown table kind %q", f[1])
			}
		case "end":
			if cell == nil {
				return nil, fail("end outside cell")
			}
			if err := lib.AddCell(cell); err != nil {
				return nil, fail("%v", err)
			}
			cell, arc = nil, nil
		default:
			return nil, fail("unknown keyword %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("liberty: line %d: %w", lineNo+1, err)
	}
	if lib == nil {
		return nil, fmt.Errorf("liberty: no library line")
	}
	if cell != nil {
		return nil, fmt.Errorf("liberty: cell %q not closed with end", cell.Name)
	}
	return lib, nil
}
