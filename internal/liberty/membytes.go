package liberty

import "unsafe"

// MemBytes estimates the library's heap footprint in bytes: every cell
// with its pin map, immunity curves, and characterized arc tables. The
// dominant term for real libraries is the NLDM surfaces (four Table2D
// per arc); strings and map buckets are approximated. Deterministic
// and allocation-free.
func (l *Library) MemBytes() int64 {
	const (
		ptr       = int64(unsafe.Sizeof(uintptr(0)))
		strHeader = int64(unsafe.Sizeof(""))
	)
	b := int64(unsafe.Sizeof(*l)) + strHeader + int64(len(l.Name))
	b += l.DefaultImmunity.memBytes()
	b += int64(len(l.cells)) * (strHeader + ptr + 16)
	for _, c := range l.cells {
		b += int64(unsafe.Sizeof(*c)) + int64(len(c.Name))
		b += int64(len(c.Pins)) * (strHeader + ptr + 16)
		for name, p := range c.Pins {
			b += int64(len(name)) + int64(unsafe.Sizeof(*p)) + int64(len(p.Name))
			b += p.Immunity.memBytes()
		}
		b += int64(cap(c.Arcs)) * ptr
		for _, a := range c.Arcs {
			b += int64(unsafe.Sizeof(*a)) + int64(len(a.From)+len(a.To))
			b += a.DelayRise.memBytes() + a.DelayFall.memBytes()
			b += a.SlewRise.memBytes() + a.SlewFall.memBytes()
			if a.Transfer != nil {
				b += int64(unsafe.Sizeof(*a.Transfer))
			}
		}
	}
	return b
}

func (t *Table2D) memBytes() int64 {
	if t == nil {
		return 0
	}
	b := int64(unsafe.Sizeof(*t))
	b += int64(cap(t.Slews)+cap(t.Loads)) * 8
	b += int64(cap(t.Vals)) * int64(unsafe.Sizeof([]float64(nil)))
	for _, row := range t.Vals {
		b += int64(cap(row)) * 8
	}
	return b
}

func (c *ImmunityCurve) memBytes() int64 {
	if c == nil {
		return 0
	}
	return int64(unsafe.Sizeof(*c)) + int64(cap(c.Widths)+cap(c.Peaks))*8
}
