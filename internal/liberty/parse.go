package liberty

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The ".nlib" text format carries a library in a line-oriented form:
//
//	library NAME
//	vdd 1.2
//	default_immunity N w1..wN p1..pN
//	cell NAME
//	pin NAME in CAP | pin NAME out
//	drive OHMS
//	hold OHMS
//	immunity PIN N w1..wN p1..pN
//	arc FROM TO pos|neg|both
//	transfer THRESHOLD DCGAIN TCHAR      (attaches to the latest arc)
//	table KIND NS NL s1..sNS l1..lNL v(1,1)..v(NS,NL)   (row-major)
//	end                                   (closes the cell)
//
// KIND is one of delay_rise, delay_fall, slew_rise, slew_fall. Blank lines
// and #-comments are ignored. All quantities are base SI units.

// Parse reads a library in .nlib format.
func Parse(r io.Reader) (*Library, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var lib *Library
	var cell *Cell
	var arc *Arc
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("liberty: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "library":
			if len(f) != 2 || lib != nil {
				return nil, fail("bad or duplicate library line")
			}
			lib = NewLibrary(f[1], 0)
		case "vdd":
			if lib == nil || len(f) != 2 {
				return nil, fail("bad vdd line")
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad vdd: %v", err)
			}
			lib.Vdd = v
		case "default_immunity":
			if lib == nil {
				return nil, fail("default_immunity before library")
			}
			ic, err := parseImmunity(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			lib.DefaultImmunity = ic
		case "cell":
			if lib == nil || len(f) != 2 {
				return nil, fail("bad cell line")
			}
			if cell != nil {
				return nil, fail("cell %q not closed with end", cell.Name)
			}
			cell = &Cell{Name: f[1], Pins: make(map[string]*Pin)}
			arc = nil
		case "pin":
			if cell == nil {
				return nil, fail("pin outside cell")
			}
			switch {
			case len(f) == 4 && f[2] == "in":
				c, err := strconv.ParseFloat(f[3], 64)
				if err != nil {
					return nil, fail("bad pin cap: %v", err)
				}
				cell.Pins[f[1]] = &Pin{Name: f[1], Dir: Input, Cap: c}
			case len(f) == 3 && f[2] == "out":
				cell.Pins[f[1]] = &Pin{Name: f[1], Dir: Output}
			default:
				return nil, fail("pin wants NAME in CAP or NAME out")
			}
		case "drive", "hold":
			if cell == nil || len(f) != 2 {
				return nil, fail("bad %s line", f[0])
			}
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return nil, fail("bad %s: %v", f[0], err)
			}
			if f[0] == "drive" {
				cell.DriveRes = v
			} else {
				cell.HoldRes = v
			}
		case "immunity":
			if cell == nil || len(f) < 3 {
				return nil, fail("bad immunity line")
			}
			pin := cell.Pins[f[1]]
			if pin == nil || pin.Dir != Input {
				return nil, fail("immunity for unknown input pin %q", f[1])
			}
			ic, err := parseImmunity(f[2:])
			if err != nil {
				return nil, fail("%v", err)
			}
			pin.Immunity = ic
		case "arc":
			if cell == nil || len(f) != 4 {
				return nil, fail("arc wants FROM TO pos|neg|both")
			}
			var u Unateness
			switch f[3] {
			case "pos":
				u = PositiveUnate
			case "neg":
				u = NegativeUnate
			case "both":
				u = NonUnate
			default:
				return nil, fail("bad unateness %q", f[3])
			}
			arc = &Arc{From: f[1], To: f[2], Unate: u}
			cell.Arcs = append(cell.Arcs, arc)
		case "transfer":
			if arc == nil || len(f) != 4 {
				return nil, fail("transfer wants THRESHOLD DCGAIN TCHAR after an arc")
			}
			nums, err := parseFloats(f[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			tc, err := NewTransferCurve(nums[0], nums[1], nums[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			arc.Transfer = tc
		case "table":
			if arc == nil || len(f) < 4 {
				return nil, fail("table outside arc")
			}
			tbl, err := parseTable(f[2:])
			if err != nil {
				return nil, fail("%v", err)
			}
			switch f[1] {
			case "delay_rise":
				arc.DelayRise = tbl
			case "delay_fall":
				arc.DelayFall = tbl
			case "slew_rise":
				arc.SlewRise = tbl
			case "slew_fall":
				arc.SlewFall = tbl
			default:
				return nil, fail("unknown table kind %q", f[1])
			}
		case "end":
			if cell == nil {
				return nil, fail("end outside cell")
			}
			if err := lib.AddCell(cell); err != nil {
				return nil, fail("%v", err)
			}
			cell, arc = nil, nil
		default:
			return nil, fail("unknown keyword %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("liberty: line %d: %w", lineNo+1, err)
	}
	if lib == nil {
		return nil, fmt.Errorf("liberty: no library line")
	}
	if cell != nil {
		return nil, fmt.Errorf("liberty: cell %q not closed with end", cell.Name)
	}
	return lib, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func parseImmunity(fields []string) (*ImmunityCurve, error) {
	if len(fields) < 1 {
		return nil, fmt.Errorf("immunity wants N w1..wN p1..pN")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 1 || len(fields) != 1+2*n {
		return nil, fmt.Errorf("immunity wants N then %d numbers", 2*n)
	}
	nums, err := parseFloats(fields[1:])
	if err != nil {
		return nil, err
	}
	return NewImmunityCurve(nums[:n], nums[n:])
}

func parseTable(fields []string) (*Table2D, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("table wants NS NL then values")
	}
	ns, err1 := strconv.Atoi(fields[0])
	nl, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || ns < 1 || nl < 1 {
		return nil, fmt.Errorf("bad table dimensions %q %q", fields[0], fields[1])
	}
	// Bound each dimension by the field count before forming ns*nl:
	// dimensions large enough to overflow the product could wrap it into
	// agreement with the length check below and send the slicing past the
	// end of nums.
	if ns > len(fields) || nl > len(fields) {
		return nil, fmt.Errorf("table dimensions %d x %d exceed the %d values provided", ns, nl, len(fields)-2)
	}
	want := ns + nl + ns*nl
	if len(fields) != 2+want {
		return nil, fmt.Errorf("table wants %d numbers, has %d", want, len(fields)-2)
	}
	nums, err := parseFloats(fields[2:])
	if err != nil {
		return nil, err
	}
	slews := nums[:ns]
	loads := nums[ns : ns+nl]
	vals := make([][]float64, ns)
	for i := 0; i < ns; i++ {
		vals[i] = nums[ns+nl+i*nl : ns+nl+(i+1)*nl]
	}
	return NewTable2D(slews, loads, vals)
}

// Write renders the library in .nlib format.
func Write(w io.Writer, lib *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library %s\n", lib.Name)
	fmt.Fprintf(bw, "vdd %g\n", lib.Vdd)
	if lib.DefaultImmunity != nil {
		fmt.Fprintf(bw, "default_immunity %s\n", immunityFields(lib.DefaultImmunity))
	}
	for _, c := range lib.Cells() {
		fmt.Fprintf(bw, "cell %s\n", c.Name)
		for _, p := range c.InputPins() {
			fmt.Fprintf(bw, "pin %s in %g\n", p.Name, p.Cap)
		}
		for _, p := range c.OutputPins() {
			fmt.Fprintf(bw, "pin %s out\n", p.Name)
		}
		fmt.Fprintf(bw, "drive %g\n", c.DriveRes)
		fmt.Fprintf(bw, "hold %g\n", c.HoldRes)
		for _, p := range c.InputPins() {
			if p.Immunity != nil {
				fmt.Fprintf(bw, "immunity %s %s\n", p.Name, immunityFields(p.Immunity))
			}
		}
		for _, a := range c.Arcs {
			fmt.Fprintf(bw, "arc %s %s %s\n", a.From, a.To, a.Unate)
			if a.Transfer != nil {
				fmt.Fprintf(bw, "transfer %g %g %g\n", a.Transfer.Threshold, a.Transfer.DCGain, a.Transfer.TChar)
			}
			writeTable(bw, "delay_rise", a.DelayRise)
			writeTable(bw, "delay_fall", a.DelayFall)
			writeTable(bw, "slew_rise", a.SlewRise)
			writeTable(bw, "slew_fall", a.SlewFall)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

func immunityFields(ic *ImmunityCurve) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", len(ic.Widths))
	for _, v := range ic.Widths {
		fmt.Fprintf(&sb, " %g", v)
	}
	for _, v := range ic.Peaks {
		fmt.Fprintf(&sb, " %g", v)
	}
	return sb.String()
}

func writeTable(w io.Writer, kind string, t *Table2D) {
	if t == nil {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "table %s %d %d", kind, len(t.Slews), len(t.Loads))
	for _, v := range t.Slews {
		fmt.Fprintf(&sb, " %g", v)
	}
	for _, v := range t.Loads {
		fmt.Fprintf(&sb, " %g", v)
	}
	for _, row := range t.Vals {
		for _, v := range row {
			fmt.Fprintf(&sb, " %g", v)
		}
	}
	fmt.Fprintln(w, sb.String())
}
