package liberty

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/textio"
)

// The ".nlib" text format carries a library in a line-oriented form:
//
//	library NAME
//	vdd 1.2
//	default_immunity N w1..wN p1..pN
//	cell NAME
//	pin NAME in CAP | pin NAME out
//	drive OHMS
//	hold OHMS
//	immunity PIN N w1..wN p1..pN
//	arc FROM TO pos|neg|both
//	transfer THRESHOLD DCGAIN TCHAR      (attaches to the latest arc)
//	table KIND NS NL s1..sNS l1..lNL v(1,1)..v(NS,NL)   (row-major)
//	end                                   (closes the cell)
//
// KIND is one of delay_rise, delay_fall, slew_rise, slew_fall. Blank lines
// and #-comments are ignored. All quantities are base SI units.

// Parse reads a library in .nlib format.
//
// The reader is streaming and parallel: lines are scanned from chunked
// reads, cell…end sections are batched and parsed by a worker pool, and
// the cells are committed serially in file order — so the resulting
// library and any error (position and text) match a sequential parse.
// Sections containing library-level directives fall back to the serial
// machine.
func Parse(r io.Reader) (*Library, error) {
	m := &libMachine{}
	m.onCell = func(c *Cell, endLine int) error {
		if err := m.lib.AddCell(c); err != nil {
			return fmt.Errorf("liberty: line %d: %v", endLine, err)
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	const batchCells = 64

	lr := textio.NewLineReader(r)
	var (
		batch      []cellBlock
		block      cellBlock
		collecting bool
		lineNo     = 0
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		results := make([]cellResult, len(batch))
		nw := workers
		if nw > len(batch) {
			nw = len(batch)
		}
		if nw <= 1 {
			for i := range batch {
				results[i] = parseCellBlock(batch[i], m.lib)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < nw; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(batch); i += nw {
						results[i] = parseCellBlock(batch[i], m.lib)
					}
				}(w)
			}
			wg.Wait()
		}
		batch = batch[:0]
		for _, res := range results {
			for _, cl := range res.cells {
				if err := m.onCell(cl.cell, cl.endLine); err != nil {
					return err
				}
			}
			if res.err != nil {
				return res.err
			}
		}
		return nil
	}

	for {
		line, ok, err := lr.Next()
		if err != nil {
			return nil, fmt.Errorf("liberty: line %d: %w", lineNo+1, err)
		}
		if !ok {
			break
		}
		lineNo++
		trim := bytes.TrimSpace(line)
		if len(trim) == 0 || trim[0] == '#' {
			continue
		}
		if collecting {
			block.lines = append(block.lines, trim)
			block.nos = append(block.nos, lineNo)
			switch string(textio.FirstField(trim)) {
			case "library", "vdd", "default_immunity":
				// Library-level directive inside a cell section: run the
				// whole section on the live serial state.
				block.global = true
			case "end":
				collecting = false
				if block.global {
					if err := flush(); err != nil {
						return nil, err
					}
					if err := m.runBlock(block); err != nil {
						return nil, err
					}
				} else {
					batch = append(batch, block)
					if len(batch) >= batchCells {
						if err := flush(); err != nil {
							return nil, err
						}
					}
				}
				block = cellBlock{}
			}
			continue
		}
		if string(textio.FirstField(trim)) == "cell" {
			collecting = true
			block = cellBlock{lines: [][]byte{trim}, nos: []int{lineNo}}
			continue
		}
		if err := flush(); err != nil {
			return nil, err
		}
		if err := m.step(trim, lineNo); err != nil {
			return nil, err
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if collecting {
		// Input ended inside a cell section: replay it serially so the
		// unterminated-cell error comes out exactly as before.
		if err := m.runBlock(block); err != nil {
			return nil, err
		}
	}
	if m.lib == nil {
		return nil, fmt.Errorf("liberty: no library line")
	}
	if m.cell != nil {
		return nil, fmt.Errorf("liberty: cell %q not closed with end", m.cell.Name)
	}
	return m.lib, nil
}

// cellBlock is one collected cell…end section.
type cellBlock struct {
	lines  [][]byte
	nos    []int
	global bool
}

type cellAndLine struct {
	cell    *Cell
	endLine int
}

type cellResult struct {
	cells []cellAndLine
	err   error
}

// parseCellBlock runs one section through a private machine. The
// library pointer is shared read-only: every line a worker can reach
// only consults lib for nil-ness and mutates cell-local state.
func parseCellBlock(b cellBlock, lib *Library) cellResult {
	wm := &libMachine{lib: lib}
	var res cellResult
	wm.onCell = func(c *Cell, endLine int) error {
		res.cells = append(res.cells, cellAndLine{cell: c, endLine: endLine})
		return nil
	}
	res.err = wm.runBlock(b)
	return res
}

// libMachine is the sequential .nlib line interpreter; one instance
// tracks the live state and per-section worker instances parse cells.
type libMachine struct {
	lib    *Library
	cell   *Cell
	arc    *Arc
	onCell func(c *Cell, endLine int) error
	fields [][]byte
}

func (m *libMachine) runBlock(b cellBlock) error {
	for i, line := range b.lines {
		if err := m.step(line, b.nos[i]); err != nil {
			return err
		}
	}
	return nil
}

// step interprets one trimmed, non-blank, non-comment line.
func (m *libMachine) step(line []byte, lineNo int) error {
	fb := textio.SplitFields(line, m.fields[:0])
	m.fields = fb
	// Tokens escape into retained structures only where the old parser
	// retained them; convert up front for clarity — libraries are tiny
	// compared to netlists and parasitics.
	f := make([]string, len(fb))
	for i, b := range fb {
		f[i] = string(b)
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("liberty: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}
	switch f[0] {
	case "library":
		if len(f) != 2 || m.lib != nil {
			return fail("bad or duplicate library line")
		}
		m.lib = NewLibrary(f[1], 0)
	case "vdd":
		if m.lib == nil || len(f) != 2 {
			return fail("bad vdd line")
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fail("bad vdd: %v", err)
		}
		m.lib.Vdd = v
	case "default_immunity":
		if m.lib == nil {
			return fail("default_immunity before library")
		}
		ic, err := parseImmunity(f[1:])
		if err != nil {
			return fail("%v", err)
		}
		m.lib.DefaultImmunity = ic
	case "cell":
		if m.lib == nil || len(f) != 2 {
			return fail("bad cell line")
		}
		if m.cell != nil {
			return fail("cell %q not closed with end", m.cell.Name)
		}
		m.cell = &Cell{Name: f[1], Pins: make(map[string]*Pin)}
		m.arc = nil
	case "pin":
		if m.cell == nil {
			return fail("pin outside cell")
		}
		switch {
		case len(f) == 4 && f[2] == "in":
			c, err := strconv.ParseFloat(f[3], 64)
			if err != nil {
				return fail("bad pin cap: %v", err)
			}
			m.cell.Pins[f[1]] = &Pin{Name: f[1], Dir: Input, Cap: c}
		case len(f) == 3 && f[2] == "out":
			m.cell.Pins[f[1]] = &Pin{Name: f[1], Dir: Output}
		default:
			return fail("pin wants NAME in CAP or NAME out")
		}
	case "drive", "hold":
		if m.cell == nil || len(f) != 2 {
			return fail("bad %s line", f[0])
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fail("bad %s: %v", f[0], err)
		}
		if f[0] == "drive" {
			m.cell.DriveRes = v
		} else {
			m.cell.HoldRes = v
		}
	case "immunity":
		if m.cell == nil || len(f) < 3 {
			return fail("bad immunity line")
		}
		pin := m.cell.Pins[f[1]]
		if pin == nil || pin.Dir != Input {
			return fail("immunity for unknown input pin %q", f[1])
		}
		ic, err := parseImmunity(f[2:])
		if err != nil {
			return fail("%v", err)
		}
		pin.Immunity = ic
	case "arc":
		if m.cell == nil || len(f) != 4 {
			return fail("arc wants FROM TO pos|neg|both")
		}
		var u Unateness
		switch f[3] {
		case "pos":
			u = PositiveUnate
		case "neg":
			u = NegativeUnate
		case "both":
			u = NonUnate
		default:
			return fail("bad unateness %q", f[3])
		}
		m.arc = &Arc{From: f[1], To: f[2], Unate: u}
		m.cell.Arcs = append(m.cell.Arcs, m.arc)
	case "transfer":
		if m.arc == nil || len(f) != 4 {
			return fail("transfer wants THRESHOLD DCGAIN TCHAR after an arc")
		}
		nums, err := parseFloats(f[1:])
		if err != nil {
			return fail("%v", err)
		}
		tc, err := NewTransferCurve(nums[0], nums[1], nums[2])
		if err != nil {
			return fail("%v", err)
		}
		m.arc.Transfer = tc
	case "table":
		if m.arc == nil || len(f) < 4 {
			return fail("table outside arc")
		}
		tbl, err := parseTable(f[2:])
		if err != nil {
			return fail("%v", err)
		}
		switch f[1] {
		case "delay_rise":
			m.arc.DelayRise = tbl
		case "delay_fall":
			m.arc.DelayFall = tbl
		case "slew_rise":
			m.arc.SlewRise = tbl
		case "slew_fall":
			m.arc.SlewFall = tbl
		default:
			return fail("unknown table kind %q", f[1])
		}
	case "end":
		if m.cell == nil {
			return fail("end outside cell")
		}
		c := m.cell
		m.cell, m.arc = nil, nil
		if err := m.onCell(c, lineNo); err != nil {
			return err
		}
	default:
		return fail("unknown keyword %q", f[0])
	}
	return nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out[i] = v
	}
	return out, nil
}

func parseImmunity(fields []string) (*ImmunityCurve, error) {
	if len(fields) < 1 {
		return nil, fmt.Errorf("immunity wants N w1..wN p1..pN")
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n < 1 || len(fields) != 1+2*n {
		return nil, fmt.Errorf("immunity wants N then %d numbers", 2*n)
	}
	nums, err := parseFloats(fields[1:])
	if err != nil {
		return nil, err
	}
	return NewImmunityCurve(nums[:n], nums[n:])
}

func parseTable(fields []string) (*Table2D, error) {
	if len(fields) < 2 {
		return nil, fmt.Errorf("table wants NS NL then values")
	}
	ns, err1 := strconv.Atoi(fields[0])
	nl, err2 := strconv.Atoi(fields[1])
	if err1 != nil || err2 != nil || ns < 1 || nl < 1 {
		return nil, fmt.Errorf("bad table dimensions %q %q", fields[0], fields[1])
	}
	// Bound each dimension by the field count before forming ns*nl:
	// dimensions large enough to overflow the product could wrap it into
	// agreement with the length check below and send the slicing past the
	// end of nums.
	if ns > len(fields) || nl > len(fields) {
		return nil, fmt.Errorf("table dimensions %d x %d exceed the %d values provided", ns, nl, len(fields)-2)
	}
	want := ns + nl + ns*nl
	if len(fields) != 2+want {
		return nil, fmt.Errorf("table wants %d numbers, has %d", want, len(fields)-2)
	}
	nums, err := parseFloats(fields[2:])
	if err != nil {
		return nil, err
	}
	slews := nums[:ns]
	loads := nums[ns : ns+nl]
	vals := make([][]float64, ns)
	for i := 0; i < ns; i++ {
		vals[i] = nums[ns+nl+i*nl : ns+nl+(i+1)*nl]
	}
	return NewTable2D(slews, loads, vals)
}

// Write renders the library in .nlib format.
func Write(w io.Writer, lib *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "library %s\n", lib.Name)
	fmt.Fprintf(bw, "vdd %g\n", lib.Vdd)
	if lib.DefaultImmunity != nil {
		fmt.Fprintf(bw, "default_immunity %s\n", immunityFields(lib.DefaultImmunity))
	}
	for _, c := range lib.Cells() {
		fmt.Fprintf(bw, "cell %s\n", c.Name)
		for _, p := range c.InputPins() {
			fmt.Fprintf(bw, "pin %s in %g\n", p.Name, p.Cap)
		}
		for _, p := range c.OutputPins() {
			fmt.Fprintf(bw, "pin %s out\n", p.Name)
		}
		fmt.Fprintf(bw, "drive %g\n", c.DriveRes)
		fmt.Fprintf(bw, "hold %g\n", c.HoldRes)
		for _, p := range c.InputPins() {
			if p.Immunity != nil {
				fmt.Fprintf(bw, "immunity %s %s\n", p.Name, immunityFields(p.Immunity))
			}
		}
		for _, a := range c.Arcs {
			fmt.Fprintf(bw, "arc %s %s %s\n", a.From, a.To, a.Unate)
			if a.Transfer != nil {
				fmt.Fprintf(bw, "transfer %g %g %g\n", a.Transfer.Threshold, a.Transfer.DCGain, a.Transfer.TChar)
			}
			writeTable(bw, "delay_rise", a.DelayRise)
			writeTable(bw, "delay_fall", a.DelayFall)
			writeTable(bw, "slew_rise", a.SlewRise)
			writeTable(bw, "slew_fall", a.SlewFall)
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

func immunityFields(ic *ImmunityCurve) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", len(ic.Widths))
	for _, v := range ic.Widths {
		fmt.Fprintf(&sb, " %g", v)
	}
	for _, v := range ic.Peaks {
		fmt.Fprintf(&sb, " %g", v)
	}
	return sb.String()
}

func writeTable(w io.Writer, kind string, t *Table2D) {
	if t == nil {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "table %s %d %d", kind, len(t.Slews), len(t.Loads))
	for _, v := range t.Slews {
		fmt.Fprintf(&sb, " %g", v)
	}
	for _, v := range t.Loads {
		fmt.Fprintf(&sb, " %g", v)
	}
	for _, row := range t.Vals {
		for _, v := range row {
			fmt.Fprintf(&sb, " %g", v)
		}
	}
	fmt.Fprintln(w, sb.String())
}
