package liberty

import (
	"bytes"
	"strings"
	"testing"
	"testing/iotest"
)

// librariesEqual compares via the deterministic Write rendering plus
// the fields Write does not cover.
func librariesEqual(t *testing.T, got, want *Library) {
	t.Helper()
	if got.Name != want.Name || got.Vdd != want.Vdd {
		t.Fatalf("header differs: %s/%g vs %s/%g", got.Name, got.Vdd, want.Name, want.Vdd)
	}
	var gw, ww bytes.Buffer
	if err := Write(&gw, got); err != nil {
		t.Fatal(err)
	}
	if err := Write(&ww, want); err != nil {
		t.Fatal(err)
	}
	if gw.String() != ww.String() {
		t.Fatalf("library text differs:\n--- got ---\n%s\n--- want ---\n%s", gw.String(), ww.String())
	}
}

func TestParseMatchesReference(t *testing.T) {
	var src bytes.Buffer
	if err := Write(&src, Generic()); err != nil {
		t.Fatal(err)
	}
	text := src.String()

	want, err := parseReference(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	librariesEqual(t, got, want)

	frag, err := Parse(iotest.OneByteReader(strings.NewReader(text)))
	if err != nil {
		t.Fatal(err)
	}
	librariesEqual(t, frag, want)

	// A library-level directive between cell sections must apply to the
	// live state in file order.
	mixed := "library l\nvdd 1.0\ncell A\npin Y out\ndrive 100\nhold 100\nend\nvdd 2.5\ncell B\npin Y out\ndrive 1\nhold 1\nend\n"
	wm, err := parseReference(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	gm, err := Parse(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	librariesEqual(t, gm, wm)
	if gm.Vdd != 2.5 {
		t.Fatalf("late vdd not applied: %g", gm.Vdd)
	}
}

func TestParseErrorsMatchReference(t *testing.T) {
	cases := []string{
		"",
		"nonsense\n",
		"library a b\n",
		"library a\nlibrary b\n",
		"vdd 1.0\n",
		"library a\nvdd x\n",
		"default_immunity 1 1 1\n",
		"cell A\n",
		"library a\ncell A\ncell B\n",
		"library a\ncell A\n",
		"library a\ncell A\npin P sideways\nend\n",
		"library a\npin P out\n",
		"library a\ncell A\npin P in xyz\nend\n",
		"library a\ncell A\ndrive x\nend\n",
		"library a\ncell A\nimmunity P 1 1 1\nend\n",
		"library a\ncell A\narc A Y diagonal\nend\n",
		"library a\ncell A\ntransfer 1 2 3\nend\n",
		"library a\ncell A\narc A Y pos\ntransfer 1 2\nend\n",
		"library a\ncell A\ntable delay_rise 1 1 1 1 1\nend\n",
		"library a\ncell A\narc A Y pos\ntable sideways 1 1 1 1 1\nend\n",
		"library a\ncell A\narc A Y pos\ntable delay_rise 2 2 1 1\nend\n",
		"end\n",
		"library a\ncell A\npin Y out\ndrive 1\nhold 1\nend\ncell A\npin Y out\ndrive 1\nhold 1\nend\n",
		"library a\ncell A\nvdd x\nend\n",
	}
	for i, src := range cases {
		_, wantErr := parseReference(strings.NewReader(src))
		_, gotErr := Parse(strings.NewReader(src))
		if wantErr == nil {
			t.Fatalf("case %d: reference accepted %q", i, src)
		}
		if gotErr == nil {
			t.Fatalf("case %d: streaming parser accepted %q, want %v", i, src, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("case %d: error mismatch\n  got:  %v\n  want: %v", i, gotErr, wantErr)
		}
	}
}
