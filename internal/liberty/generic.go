package liberty

import (
	"fmt"

	"repro/internal/units"
)

// Generic synthesizes the self-consistent educational library used by the
// workload generators and all experiments. It mimics a 130 nm-class
// standard-cell family at Vdd = 1.2 V:
//
//   - INV_X1/X2/X4/X8, BUF_X1/X2/X4 — inverters and buffers across drive
//     strengths (X2 has half the drive resistance of X1, and so on),
//   - NAND2_X1/X2, NOR2_X1/X2, AND2_X1, OR2_X1 — basic combinational gates,
//   - XOR2_X1 — a non-unate gate so both transition polarities propagate.
//
// Delay and slew tables are generated from a first-order RC drive model:
//
//	delay(s, c) = t0 + Rd·c + ks·s
//	slew(s, c)  = s0 + a·Rd·c + kss·s
//
// evaluated on a 5×6 (slew × load) grid, which gives the bilinear
// interpolation realistic curvature-free behaviour the tests can verify in
// closed form.
func Generic() *Library {
	lib := NewLibrary("generic", 1.2)
	lib.DefaultImmunity = DefaultImmunity(lib.Vdd, 0.40*lib.Vdd, 30*units.Pico)

	type spec struct {
		name   string
		inputs []string
		unate  Unateness
		drive  float64 // X-factor
		inCap  float64 // per input, farads
		t0     float64 // intrinsic delay, seconds
	}
	const (
		r0 = 8 * units.Kilo // X1 drive resistance, ohms
		c1 = 1.6 * units.Femto
	)
	specs := []spec{
		{"INV_X1", []string{"A"}, NegativeUnate, 1, c1, 14 * units.Pico},
		{"INV_X2", []string{"A"}, NegativeUnate, 2, 2 * c1, 12 * units.Pico},
		{"INV_X4", []string{"A"}, NegativeUnate, 4, 4 * c1, 11 * units.Pico},
		{"INV_X8", []string{"A"}, NegativeUnate, 8, 8 * c1, 10 * units.Pico},
		{"BUF_X1", []string{"A"}, PositiveUnate, 1, c1, 28 * units.Pico},
		{"BUF_X2", []string{"A"}, PositiveUnate, 2, 2 * c1, 24 * units.Pico},
		{"BUF_X4", []string{"A"}, PositiveUnate, 4, 4 * c1, 22 * units.Pico},
		{"NAND2_X1", []string{"A", "B"}, NegativeUnate, 1, 1.4 * c1, 18 * units.Pico},
		{"NAND2_X2", []string{"A", "B"}, NegativeUnate, 2, 2.8 * c1, 16 * units.Pico},
		{"NOR2_X1", []string{"A", "B"}, NegativeUnate, 1, 1.4 * c1, 20 * units.Pico},
		{"NOR2_X2", []string{"A", "B"}, NegativeUnate, 2, 2.8 * c1, 18 * units.Pico},
		{"AND2_X1", []string{"A", "B"}, PositiveUnate, 1, 1.5 * c1, 32 * units.Pico},
		{"OR2_X1", []string{"A", "B"}, PositiveUnate, 1, 1.5 * c1, 34 * units.Pico},
		{"XOR2_X1", []string{"A", "B"}, NonUnate, 1, 2.2 * c1, 40 * units.Pico},
	}
	for _, s := range specs {
		cell := makeGenericCell(lib, s.name, s.inputs, s.unate, r0/s.drive, s.inCap, s.t0)
		if err := lib.AddCell(cell); err != nil {
			// Specs are static; a duplicate is a programming error.
			panic(err)
		}
	}
	return lib
}

// genericAxes returns the characterization grid shared by all generic
// cells.
func genericAxes() (slews, loads []float64) {
	slews = []float64{5 * units.Pico, 20 * units.Pico, 50 * units.Pico, 100 * units.Pico, 200 * units.Pico}
	loads = []float64{1 * units.Femto, 5 * units.Femto, 10 * units.Femto, 20 * units.Femto, 50 * units.Femto, 100 * units.Femto}
	return slews, loads
}

func makeGenericCell(lib *Library, name string, inputs []string, unate Unateness, rd, inCap, t0 float64) *Cell {
	cell := &Cell{
		Name:     name,
		Pins:     make(map[string]*Pin),
		DriveRes: rd,
		HoldRes:  0.6 * rd,
	}
	for _, in := range inputs {
		cell.Pins[in] = &Pin{Name: in, Dir: Input, Cap: inCap}
	}
	cell.Pins["Y"] = &Pin{Name: "Y", Dir: Output}

	slews, loads := genericAxes()
	mk := func(t0, rd, ks float64) *Table2D {
		vals := make([][]float64, len(slews))
		for i, s := range slews {
			row := make([]float64, len(loads))
			for j, c := range loads {
				row[j] = t0 + rd*c + ks*s
			}
			vals[i] = row
		}
		t, err := NewTable2D(slews, loads, vals)
		if err != nil {
			panic(err)
		}
		return t
	}
	// Rising output is slightly slower than falling (PMOS weaker), and
	// output slew tracks 1.4·Rd·C plus a fraction of the input slew.
	transfer := &TransferCurve{Threshold: 0.3 * lib.Vdd, DCGain: 0.85, TChar: 35 * units.Pico}
	for _, in := range inputs {
		cell.Arcs = append(cell.Arcs, &Arc{
			From:      in,
			To:        "Y",
			Unate:     unate,
			DelayRise: mk(t0*1.1, rd*1.1, 0.18),
			DelayFall: mk(t0, rd, 0.15),
			SlewRise:  mk(t0*0.5, rd*1.5, 0.12),
			SlewFall:  mk(t0*0.45, rd*1.35, 0.10),
			Transfer:  transfer,
		})
	}
	return cell
}

// GenericCellNames lists the generic cells by family for the generators.
func GenericCellNames() map[string][]string {
	return map[string][]string{
		"inv":  {"INV_X1", "INV_X2", "INV_X4", "INV_X8"},
		"buf":  {"BUF_X1", "BUF_X2", "BUF_X4"},
		"nand": {"NAND2_X1", "NAND2_X2"},
		"nor":  {"NOR2_X1", "NOR2_X2"},
		"and":  {"AND2_X1"},
		"or":   {"OR2_X1"},
		"xor":  {"XOR2_X1"},
	}
}

// ResolveCell returns the named cell, or an error naming both the cell
// and the instance that referenced it. A missing cell is a property of
// the input (a netlist referencing a library it was not built against),
// not an internal invariant, so it is reported as an error the caller
// can attach to a diagnostic instead of a panic that takes the whole
// run down.
func (l *Library) ResolveCell(instance, name string) (*Cell, error) {
	c := l.Cell(name)
	if c == nil {
		if instance == "" {
			return nil, fmt.Errorf("liberty: unknown cell %q in library %s", name, l.Name)
		}
		return nil, fmt.Errorf("liberty: instance %q references unknown cell %q in library %s", instance, name, l.Name)
	}
	return c, nil
}

// Scale derives a process-corner variant of a library: delay and slew
// tables are multiplied by delayScale, drive and holding resistances by
// resScale, and the supply by vddScale. A slow corner is (≈1.2, ≈1.3,
// ≈0.9); a fast corner (≈0.85, ≈0.8, ≈1.1). Immunity and transfer curves
// rescale with the supply so the relative noise margins are preserved.
func Scale(lib *Library, name string, delayScale, resScale, vddScale float64) *Library {
	out := NewLibrary(name, lib.Vdd*vddScale)
	if lib.DefaultImmunity != nil {
		out.DefaultImmunity = scaleImmunity(lib.DefaultImmunity, vddScale)
	}
	for _, c := range lib.Cells() {
		nc := &Cell{
			Name:     c.Name,
			Pins:     make(map[string]*Pin, len(c.Pins)),
			DriveRes: c.DriveRes * resScale,
			HoldRes:  c.HoldRes * resScale,
		}
		for name, p := range c.Pins {
			np := &Pin{Name: p.Name, Dir: p.Dir, Cap: p.Cap}
			if p.Immunity != nil {
				np.Immunity = scaleImmunity(p.Immunity, vddScale)
			}
			nc.Pins[name] = np
		}
		for _, a := range c.Arcs {
			na := &Arc{
				From: a.From, To: a.To, Unate: a.Unate,
				DelayRise: scaleTable(a.DelayRise, delayScale),
				DelayFall: scaleTable(a.DelayFall, delayScale),
				SlewRise:  scaleTable(a.SlewRise, delayScale),
				SlewFall:  scaleTable(a.SlewFall, delayScale),
			}
			if a.Transfer != nil {
				tc := *a.Transfer
				tc.Threshold *= vddScale
				na.Transfer = &tc
			}
			nc.Arcs = append(nc.Arcs, na)
		}
		if err := out.AddCell(nc); err != nil {
			// Cell names are unique in the source library.
			panic(err)
		}
	}
	return out
}

func scaleTable(t *Table2D, k float64) *Table2D {
	if t == nil {
		return nil
	}
	vals := make([][]float64, len(t.Vals))
	for i, row := range t.Vals {
		nr := make([]float64, len(row))
		for j, v := range row {
			nr[j] = v * k
		}
		vals[i] = nr
	}
	return &Table2D{
		Slews: append([]float64(nil), t.Slews...),
		Loads: append([]float64(nil), t.Loads...),
		Vals:  vals,
	}
}

func scaleImmunity(ic *ImmunityCurve, k float64) *ImmunityCurve {
	peaks := make([]float64, len(ic.Peaks))
	for i, p := range ic.Peaks {
		peaks[i] = p * k
	}
	return &ImmunityCurve{
		Widths: append([]float64(nil), ic.Widths...),
		Peaks:  peaks,
	}
}
