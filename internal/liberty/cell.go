package liberty

import (
	"fmt"
	"sort"
)

// PinDir is the direction of a library pin.
type PinDir int

const (
	// Input pins load their net and receive noise.
	Input PinDir = iota
	// Output pins drive their net.
	Output
)

// String returns "in" or "out".
func (d PinDir) String() string {
	if d == Output {
		return "out"
	}
	return "in"
}

// Unateness describes how an input transition maps to an output transition
// through a timing arc.
type Unateness int

const (
	// PositiveUnate: input rise causes output rise (buffers, AND, OR).
	PositiveUnate Unateness = iota
	// NegativeUnate: input rise causes output fall (inverters, NAND, NOR).
	NegativeUnate
	// NonUnate: either transition can cause either (XOR, MUX select).
	NonUnate
)

// String returns "pos", "neg", or "both".
func (u Unateness) String() string {
	switch u {
	case NegativeUnate:
		return "neg"
	case NonUnate:
		return "both"
	}
	return "pos"
}

// Pin is a library cell pin.
type Pin struct {
	Name string
	Dir  PinDir
	// Cap is the input pin capacitance in farads (zero for outputs; the
	// output's own parasitics live in the wire model).
	Cap float64
	// Immunity is the noise-rejection curve for input pins; nil means the
	// library default applies.
	Immunity *ImmunityCurve
}

// Arc is one characterized input→output timing/noise arc.
type Arc struct {
	From, To string
	Unate    Unateness
	// Delay and output-slew surfaces per output transition direction.
	DelayRise, DelayFall *Table2D
	SlewRise, SlewFall   *Table2D
	// Transfer is the noise-transfer curve through this arc; nil means
	// the cell blocks noise entirely (e.g., a flop's D input).
	Transfer *TransferCurve
}

// Cell is a library cell.
type Cell struct {
	Name string
	Pins map[string]*Pin
	Arcs []*Arc
	// DriveRes is the equivalent output resistance while switching, used
	// for wire delay estimation (ohms).
	DriveRes float64
	// HoldRes is the equivalent output resistance while holding a stable
	// logic value — the resistance through which a quiet victim fights
	// injected crosstalk charge. Stronger (smaller) holding resistance
	// means smaller glitches.
	HoldRes float64
}

// Pin returns the named pin or nil.
func (c *Cell) Pin(name string) *Pin { return c.Pins[name] }

// InputPins returns the cell's input pins sorted by name.
func (c *Cell) InputPins() []*Pin {
	return c.pinsByDir(Input)
}

// OutputPins returns the cell's output pins sorted by name.
func (c *Cell) OutputPins() []*Pin {
	return c.pinsByDir(Output)
}

func (c *Cell) pinsByDir(d PinDir) []*Pin {
	names := make([]string, 0, len(c.Pins))
	for n, p := range c.Pins {
		if p.Dir == d {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]*Pin, len(names))
	for i, n := range names {
		out[i] = c.Pins[n]
	}
	return out
}

// ArcsFrom returns the arcs departing the named input pin.
func (c *Cell) ArcsFrom(pin string) []*Arc {
	var out []*Arc
	for _, a := range c.Arcs {
		if a.From == pin {
			out = append(out, a)
		}
	}
	return out
}

// ArcsTo returns the arcs arriving at the named output pin.
func (c *Cell) ArcsTo(pin string) []*Arc {
	var out []*Arc
	for _, a := range c.Arcs {
		if a.To == pin {
			out = append(out, a)
		}
	}
	return out
}

// Arc returns the arc from one pin to another, or nil.
func (c *Cell) Arc(from, to string) *Arc {
	for _, a := range c.Arcs {
		if a.From == from && a.To == to {
			return a
		}
	}
	return nil
}

// Validate checks internal consistency: arcs reference existing pins with
// the right directions and all tables are present.
func (c *Cell) Validate() error {
	for _, a := range c.Arcs {
		from, to := c.Pins[a.From], c.Pins[a.To]
		if from == nil || from.Dir != Input {
			return fmt.Errorf("liberty: cell %s arc %s->%s: bad from-pin", c.Name, a.From, a.To)
		}
		if to == nil || to.Dir != Output {
			return fmt.Errorf("liberty: cell %s arc %s->%s: bad to-pin", c.Name, a.From, a.To)
		}
		if a.DelayRise == nil || a.DelayFall == nil || a.SlewRise == nil || a.SlewFall == nil {
			return fmt.Errorf("liberty: cell %s arc %s->%s: missing tables", c.Name, a.From, a.To)
		}
	}
	if c.DriveRes <= 0 || c.HoldRes <= 0 {
		return fmt.Errorf("liberty: cell %s: non-positive drive/hold resistance", c.Name)
	}
	return nil
}

// Library is a named collection of cells sharing a supply voltage.
type Library struct {
	Name string
	// Vdd is the supply voltage in volts; glitch peaks are bounded by it.
	Vdd float64
	// DefaultImmunity applies to input pins without their own curve.
	DefaultImmunity *ImmunityCurve
	cells           map[string]*Cell
}

// NewLibrary returns an empty library.
func NewLibrary(name string, vdd float64) *Library {
	return &Library{Name: name, Vdd: vdd, cells: make(map[string]*Cell)}
}

// AddCell inserts a cell, rejecting duplicates.
func (l *Library) AddCell(c *Cell) error {
	if _, dup := l.cells[c.Name]; dup {
		return fmt.Errorf("liberty: duplicate cell %q", c.Name)
	}
	l.cells[c.Name] = c
	return nil
}

// Cell returns the named cell or nil.
func (l *Library) Cell(name string) *Cell { return l.cells[name] }

// Cells returns all cells sorted by name.
func (l *Library) Cells() []*Cell {
	names := make([]string, 0, len(l.cells))
	for n := range l.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Cell, len(names))
	for i, n := range names {
		out[i] = l.cells[n]
	}
	return out
}

// NumCells returns the number of cells.
func (l *Library) NumCells() int { return len(l.cells) }

// Immunity resolves the effective immunity curve for a pin: the pin's own
// curve, else the library default.
func (l *Library) Immunity(p *Pin) *ImmunityCurve {
	if p != nil && p.Immunity != nil {
		return p.Immunity
	}
	return l.DefaultImmunity
}

// Validate checks every cell and that a default immunity exists.
func (l *Library) Validate() error {
	if l.Vdd <= 0 {
		return fmt.Errorf("liberty: non-positive vdd")
	}
	if l.DefaultImmunity == nil {
		return fmt.Errorf("liberty: missing default immunity curve")
	}
	for _, c := range l.Cells() {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}
