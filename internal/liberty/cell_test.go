package liberty

import (
	"strings"
	"testing"

	"repro/internal/units"
)

// mustCell resolves a cell the test depends on, failing the test (not
// the process) when the library is missing it.
func mustCell(t testing.TB, lib *Library, name string) *Cell {
	t.Helper()
	c, err := lib.ResolveCell("", name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGenericLibraryValidates(t *testing.T) {
	lib := Generic()
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
	if lib.Vdd != 1.2 {
		t.Fatalf("vdd = %g", lib.Vdd)
	}
	if lib.NumCells() != 14 {
		t.Fatalf("cells = %d", lib.NumCells())
	}
}

func TestGenericCellStructure(t *testing.T) {
	lib := Generic()
	inv := lib.Cell("INV_X1")
	if inv == nil {
		t.Fatal("missing INV_X1")
	}
	if len(inv.InputPins()) != 1 || len(inv.OutputPins()) != 1 {
		t.Fatalf("INV pins: %d in, %d out", len(inv.InputPins()), len(inv.OutputPins()))
	}
	if inv.Pin("A").Cap <= 0 {
		t.Fatal("INV input cap not positive")
	}
	nand := mustCell(t, lib, "NAND2_X1")
	if len(nand.InputPins()) != 2 {
		t.Fatalf("NAND2 inputs = %d", len(nand.InputPins()))
	}
	if len(nand.ArcsFrom("A")) != 1 || len(nand.ArcsFrom("B")) != 1 {
		t.Fatal("NAND2 arc structure wrong")
	}
	if len(nand.ArcsTo("Y")) != 2 {
		t.Fatalf("ArcsTo(Y) = %d", len(nand.ArcsTo("Y")))
	}
	if nand.Arc("A", "Y") == nil || nand.Arc("Y", "A") != nil {
		t.Fatal("Arc lookup wrong")
	}
}

func TestGenericDriveStrengthOrdering(t *testing.T) {
	lib := Generic()
	x1 := mustCell(t, lib, "INV_X1")
	x4 := mustCell(t, lib, "INV_X4")
	if !(x4.DriveRes < x1.DriveRes) {
		t.Fatalf("X4 drive %g not stronger than X1 %g", x4.DriveRes, x1.DriveRes)
	}
	if !(x4.HoldRes < x1.HoldRes) {
		t.Fatal("X4 hold resistance not stronger")
	}
	// Stronger cells are faster at the same load.
	s, l := 20*units.Pico, 20*units.Femto
	d1 := x1.Arc("A", "Y").DelayRise.Eval(s, l)
	d4 := x4.Arc("A", "Y").DelayRise.Eval(s, l)
	if !(d4 < d1) {
		t.Fatalf("X4 delay %g not faster than X1 %g", d4, d1)
	}
}

func TestGenericDelayMonotoneInLoad(t *testing.T) {
	lib := Generic()
	arc := mustCell(t, lib, "BUF_X1").Arc("A", "Y")
	prev := -1.0
	for _, load := range []float64{1e-15, 1e-14, 5e-14, 1e-13} {
		d := arc.DelayFall.Eval(20*units.Pico, load)
		if d <= prev {
			t.Fatalf("delay not increasing with load at %g", load)
		}
		prev = d
	}
}

func TestGenericUnateness(t *testing.T) {
	lib := Generic()
	if mustCell(t, lib, "INV_X1").Arcs[0].Unate != NegativeUnate {
		t.Error("INV not negative unate")
	}
	if mustCell(t, lib, "BUF_X1").Arcs[0].Unate != PositiveUnate {
		t.Error("BUF not positive unate")
	}
	if mustCell(t, lib, "XOR2_X1").Arcs[0].Unate != NonUnate {
		t.Error("XOR not non-unate")
	}
}

func TestLibraryImmunityFallback(t *testing.T) {
	lib := Generic()
	pin := mustCell(t, lib, "INV_X1").Pin("A")
	if lib.Immunity(pin) != lib.DefaultImmunity {
		t.Fatal("pin without own curve should use default")
	}
	own := DefaultImmunity(1.2, 0.6, 10e-12)
	pin.Immunity = own
	if lib.Immunity(pin) != own {
		t.Fatal("pin's own curve not used")
	}
	if lib.Immunity(nil) != lib.DefaultImmunity {
		t.Fatal("nil pin should use default")
	}
}

func TestLibraryAddDuplicate(t *testing.T) {
	lib := NewLibrary("t", 1.0)
	c := &Cell{Name: "X", Pins: map[string]*Pin{}, DriveRes: 1, HoldRes: 1}
	if err := lib.AddCell(c); err != nil {
		t.Fatal(err)
	}
	if err := lib.AddCell(c); err == nil {
		t.Fatal("duplicate cell accepted")
	}
}

func TestCellValidateErrors(t *testing.T) {
	bad := &Cell{
		Name: "BAD",
		Pins: map[string]*Pin{
			"A": {Name: "A", Dir: Input, Cap: 1e-15},
			"Y": {Name: "Y", Dir: Output},
		},
		DriveRes: 100,
		HoldRes:  100,
		Arcs:     []*Arc{{From: "Z", To: "Y"}},
	}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "bad from-pin") {
		t.Fatalf("Validate = %v", err)
	}
	bad.Arcs[0].From = "A"
	bad.Arcs[0].To = "A"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "bad to-pin") {
		t.Fatalf("Validate = %v", err)
	}
	bad.Arcs[0].To = "Y"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "missing tables") {
		t.Fatalf("Validate = %v", err)
	}
	bad.Arcs = nil
	bad.DriveRes = 0
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "resistance") {
		t.Fatalf("Validate = %v", err)
	}
}

func TestLibraryValidateErrors(t *testing.T) {
	lib := NewLibrary("t", 0)
	if err := lib.Validate(); err == nil {
		t.Fatal("zero vdd accepted")
	}
	lib.Vdd = 1
	if err := lib.Validate(); err == nil {
		t.Fatal("missing default immunity accepted")
	}
}

func TestResolveCellUnknown(t *testing.T) {
	lib := Generic()
	if _, err := lib.ResolveCell("u42", "DOES_NOT_EXIST"); err == nil {
		t.Fatal("ResolveCell on unknown did not error")
	} else {
		msg := err.Error()
		if !strings.Contains(msg, "DOES_NOT_EXIST") || !strings.Contains(msg, "u42") {
			t.Fatalf("error does not name cell and instance: %v", err)
		}
	}
	// Without an instance the error still names the cell and library.
	if _, err := lib.ResolveCell("", "DOES_NOT_EXIST"); err == nil {
		t.Fatal("ResolveCell without instance did not error")
	} else if !strings.Contains(err.Error(), "DOES_NOT_EXIST") {
		t.Fatalf("error does not name cell: %v", err)
	}
	if c, err := lib.ResolveCell("u1", "INV_X1"); err != nil || c == nil || c.Name != "INV_X1" {
		t.Fatalf("ResolveCell(INV_X1) = %v, %v", c, err)
	}
}

func TestGenericCellNamesResolve(t *testing.T) {
	lib := Generic()
	for family, names := range GenericCellNames() {
		for _, n := range names {
			if lib.Cell(n) == nil {
				t.Errorf("family %s: cell %s not in library", family, n)
			}
		}
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	lib := Generic()
	var sb strings.Builder
	if err := Write(&sb, lib); err != nil {
		t.Fatal(err)
	}
	lib2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := lib2.Validate(); err != nil {
		t.Fatalf("round-tripped library invalid: %v", err)
	}
	if lib2.NumCells() != lib.NumCells() || lib2.Vdd != lib.Vdd {
		t.Fatal("round trip changed library")
	}
	// Spot-check numeric fidelity through a table evaluation.
	a1 := mustCell(t, lib, "NAND2_X1").Arc("A", "Y")
	a2 := mustCell(t, lib2, "NAND2_X1").Arc("A", "Y")
	s, l := 37*units.Pico, 13*units.Femto
	if g1, g2 := a1.DelayRise.Eval(s, l), a2.DelayRise.Eval(s, l); g1 != g2 {
		t.Fatalf("table fidelity: %g vs %g", g1, g2)
	}
	if a2.Transfer == nil || a2.Transfer.DCGain != a1.Transfer.DCGain {
		t.Fatal("transfer curve lost in round trip")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"vdd 1.0",                                   // before library
		"library a\nlibrary b",                      // duplicate
		"library a\nvdd x",                          // bad number
		"library a\ncell c\ncell d",                 // unterminated cell
		"library a\npin A in 1e-15",                 // pin outside cell
		"library a\ncell c\npin A weird",            // bad pin
		"library a\ncell c\narc A Y diag",           // bad unateness
		"library a\ncell c\ntransfer 0.1 0.8 1e-12", // transfer before arc
		"library a\ncell c\narc A Y pos\ntable delay_rise 2 1 0 1 2 3", // short table
		"library a\ncell c\narc A Y pos\ntable bogus 1 1 0 0 1",        // bad kind
		"library a\nend",                      // end outside cell
		"library a\ndefault_immunity 2 0 1 1", // immunity arity
		"",                                    // no library
		"library a\ncell c",                   // EOF inside cell
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseImmunityPerPin(t *testing.T) {
	src := `library t
vdd 1.0
default_immunity 2 0 1e-11 0.9 0.5
cell C
pin A in 1e-15
pin Y out
drive 100
hold 100
immunity A 2 0 1e-11 0.8 0.4
arc A Y pos
table delay_rise 1 1 0 0 1e-12
table delay_fall 1 1 0 0 1e-12
table slew_rise 1 1 0 0 1e-12
table slew_fall 1 1 0 0 1e-12
end
`
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	pin := mustCell(t, lib, "C").Pin("A")
	if pin.Immunity == nil || pin.Immunity.MaxPeak(0) != 0.8 {
		t.Fatalf("per-pin immunity not parsed: %+v", pin.Immunity)
	}
	if err := lib.Validate(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableEval(b *testing.B) {
	lib := Generic()
	arc := mustCell(b, lib, "INV_X1").Arc("A", "Y")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arc.DelayRise.Eval(33*units.Pico, 17*units.Femto)
	}
}

func TestScaleCorners(t *testing.T) {
	base := Generic()
	slow := Scale(base, "slow", 1.2, 1.3, 0.9)
	if err := slow.Validate(); err != nil {
		t.Fatal(err)
	}
	if slow.Name != "slow" || slow.Vdd != base.Vdd*0.9 {
		t.Fatalf("header: %s vdd=%g", slow.Name, slow.Vdd)
	}
	bi := mustCell(t, base, "INV_X1")
	si := mustCell(t, slow, "INV_X1")
	if si.HoldRes != bi.HoldRes*1.3 {
		t.Fatalf("hold res = %g", si.HoldRes)
	}
	s, l := 20*units.Pico, 20*units.Femto
	bd := bi.Arc("A", "Y").DelayRise.Eval(s, l)
	sd := si.Arc("A", "Y").DelayRise.Eval(s, l)
	if units.RelErr(sd, bd*1.2, 1e-15) > 1e-12 {
		t.Fatalf("delay scale: %g vs %g", sd, bd*1.2)
	}
	// Immunity scaled with supply.
	if got := slow.DefaultImmunity.MaxPeak(0); units.RelErr(got, base.DefaultImmunity.MaxPeak(0)*0.9, 1e-12) > 1e-9 {
		t.Fatalf("immunity scale: %g", got)
	}
	// Transfer threshold follows the supply too.
	bt := bi.Arc("A", "Y").Transfer.Threshold
	st := si.Arc("A", "Y").Transfer.Threshold
	if units.RelErr(st, bt*0.9, 1e-12) > 1e-9 {
		t.Fatalf("threshold scale: %g vs %g", st, bt*0.9)
	}
	// The base library is untouched.
	if mustCell(t, base, "INV_X1").HoldRes != bi.HoldRes {
		t.Fatal("Scale mutated the source library")
	}
}
