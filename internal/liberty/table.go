// Package liberty models the standard-cell library data static timing and
// noise analysis consume: NLDM-style two-dimensional lookup tables for delay
// and output slew, pin capacitances, driver resistances (both switching
// drive and quiet holding resistance), noise-rejection (immunity) curves,
// and noise-transfer characteristics.
//
// Two sources of libraries are provided: Generic (a synthesized,
// self-consistent educational library used by the workload generators and
// experiments) and Parse (a line-oriented ".nlib" text format so designs can
// ship with their own characterization).
package liberty

import (
	"fmt"
	"sort"
)

// Table2D is a lookup table over (input slew, output load) with bilinear
// interpolation inside the grid and clamped evaluation outside it. Clamping
// (rather than extrapolation) keeps the analysis conservative and avoids
// negative delays from runaway extrapolation at tiny loads.
type Table2D struct {
	Slews []float64   // ascending input transition times, seconds
	Loads []float64   // ascending output loads, farads
	Vals  [][]float64 // Vals[i][j] = value at Slews[i], Loads[j]
}

// NewTable2D validates and returns a table. Axes must be ascending and
// non-empty and Vals must be len(slews) x len(loads).
func NewTable2D(slews, loads []float64, vals [][]float64) (*Table2D, error) {
	if len(slews) == 0 || len(loads) == 0 {
		return nil, fmt.Errorf("liberty: empty table axis")
	}
	if !sort.Float64sAreSorted(slews) || !sort.Float64sAreSorted(loads) {
		return nil, fmt.Errorf("liberty: table axes must be ascending")
	}
	if len(vals) != len(slews) {
		return nil, fmt.Errorf("liberty: table has %d rows, want %d", len(vals), len(slews))
	}
	for i, row := range vals {
		if len(row) != len(loads) {
			return nil, fmt.Errorf("liberty: table row %d has %d cols, want %d", i, len(row), len(loads))
		}
	}
	return &Table2D{Slews: slews, Loads: loads, Vals: vals}, nil
}

// Constant returns a degenerate 1x1 table that always evaluates to v.
func Constant(v float64) *Table2D {
	return &Table2D{Slews: []float64{0}, Loads: []float64{0}, Vals: [][]float64{{v}}}
}

// Eval returns the bilinearly interpolated table value at the given input
// slew and output load, clamped to the table's corner values outside the
// characterized grid.
func (t *Table2D) Eval(slew, load float64) float64 {
	i0, i1, fi := locate(t.Slews, slew)
	j0, j1, fj := locate(t.Loads, load)
	v00 := t.Vals[i0][j0]
	v01 := t.Vals[i0][j1]
	v10 := t.Vals[i1][j0]
	v11 := t.Vals[i1][j1]
	return v00*(1-fi)*(1-fj) + v01*(1-fi)*fj + v10*fi*(1-fj) + v11*fi*fj
}

// locate finds the bracketing indices and interpolation fraction for x in
// ascending axis, clamping outside the range.
func locate(axis []float64, x float64) (lo, hi int, frac float64) {
	n := len(axis)
	if n == 1 || x <= axis[0] {
		return 0, 0, 0
	}
	if x >= axis[n-1] {
		return n - 1, n - 1, 0
	}
	i := sort.SearchFloat64s(axis, x)
	if axis[i] == x {
		return i, i, 0
	}
	lo, hi = i-1, i
	frac = (x - axis[lo]) / (axis[hi] - axis[lo])
	return lo, hi, frac
}

// MaxVal returns the largest value in the table; MinVal the smallest. The
// timing engine uses them for worst-case bounds when windows are widened
// conservatively.
func (t *Table2D) MaxVal() float64 {
	best := t.Vals[0][0]
	for _, row := range t.Vals {
		for _, v := range row {
			if v > best {
				best = v
			}
		}
	}
	return best
}

// MinVal returns the smallest value in the table.
func (t *Table2D) MinVal() float64 {
	best := t.Vals[0][0]
	for _, row := range t.Vals {
		for _, v := range row {
			if v < best {
				best = v
			}
		}
	}
	return best
}
