// Package interval is a stub of the real window algebra for nanguard's
// golden tests: the analyzer matches interval.New by package-path suffix
// and function name, so the stub only needs the signature.
package interval

// Window mirrors repro/internal/interval.Window.
type Window struct{ Lo, Hi float64 }

// New mirrors the real constructor, which panics on NaN bounds.
func New(lo, hi float64) Window { return Window{Lo: lo, Hi: hi} }
