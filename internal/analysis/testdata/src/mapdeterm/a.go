// Golden cases for the mapdeterm analyzer: map iteration must not feed
// ordering-sensitive output without a sort.
package mapdeterm

import "sort"

// Fprintf is a local output stub; the analyzer matches sink names
// structurally, so the golden package needs no fmt dependency.
func Fprintf(format string, args ...any) {}

// unsortedRows appends map entries to an outer slice that is never
// sorted: reported.
func unsortedRows(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k) // want `never sorted in unsortedRows`
	}
	return rows
}

// sortedRows collects keys and sorts them before use: clean.
func sortedRows(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	sort.Strings(rows)
	return rows
}

// sortSliceRows sorts with a comparator, which also counts: clean.
func sortSliceRows(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// directPrint writes output from inside the iteration: reported.
func directPrint(m map[string]int) {
	for k, v := range m {
		Fprintf("%s=%d\n", k, v) // want `map iteration order reaches Fprintf`
	}
}

// chanFeed sends work in map order: reported.
func chanFeed(m map[string]int, jobs chan string) {
	for k := range m {
		jobs <- k // want `map iteration order feeds a channel send`
	}
}

// counters only aggregates order-insensitive state: clean.
func counters(m map[string]int) (int, map[string]bool) {
	n := 0
	seen := make(map[string]bool)
	for k, v := range m {
		n += v
		seen[k] = true
	}
	return n, seen
}

// sliceRange iterates a slice, not a map: clean.
func sliceRange(xs []string) []string {
	var rows []string
	for _, x := range xs {
		rows = append(rows, x)
	}
	return rows
}

// innerSlice appends to a slice declared inside the loop body: clean.
func innerSlice(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// waived carries the ordered claim with a reason: suppressed. Directive
// hygiene (missing reasons, stale waivers) is pinned by unit tests in
// directive_test.go, where the extra hygiene diagnostics don't collide
// with the golden expectations.
func waived(m map[string]int, jobs chan string) {
	for k := range m {
		//snavet:ordered workers drain the channel into an order-insensitive set
		jobs <- k
	}
}
