// Golden cases for the ctxloop analyzer: working loops in a
// context-taking function must consult the context.
package ctxloop

import "context"

func work(n string) {}

func helper(ctx context.Context, n string) {}

// unchecked loops over real work without consulting ctx: reported.
func unchecked(ctx context.Context, nets []string) {
	for _, n := range nets { // want `loop does not consult ctx`
		work(n)
	}
}

// checkedErr consults ctx.Err per iteration: clean.
func checkedErr(ctx context.Context, nets []string) error {
	for _, n := range nets {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(n)
	}
	return nil
}

// plumbed passes ctx into the body, which is where the check lives: clean.
func plumbed(ctx context.Context, nets []string) {
	for _, n := range nets {
		helper(ctx, n)
	}
}

// selected waits on ctx.Done in a select: clean.
func selected(ctx context.Context, jobs chan string) {
	for {
		select {
		case <-ctx.Done():
			return
		case n := <-jobs:
			work(n)
		}
	}
}

// nestedCovered has an outer loop consulting ctx; the inner loop is
// exempt because the outer iteration bounds time-to-cancel: clean.
func nestedCovered(ctx context.Context, rounds int, nets []string) error {
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, n := range nets {
			work(n)
		}
	}
	return nil
}

// cheap loops do no calls, just arithmetic: clean.
func cheap(ctx context.Context, xs []float64) float64 {
	helper(ctx, "")
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// waived carries a reasoned directive: suppressed, not reported.
func waived(ctx context.Context, nets []string) {
	//snavet:ctxloop nets is capped at 8 entries by the caller
	for _, n := range nets {
		work(n)
	}
	_ = ctx
}
