// Golden cases for ctxloop's entry-point rule: an exported looping entry
// point must take a context or have an exported Ctx sibling.
package ctxloop

import "context"

// Sweep loops over per-item work with no ctx and no SweepCtx: reported.
func Sweep(nets []string) { // want `exported entry point Sweep .* no context`
	for _, n := range nets {
		work(n)
	}
}

// Analyze is the convenience wrapper over AnalyzeCtx: clean.
func Analyze(nets []string) error {
	return AnalyzeCtx(context.Background(), nets)
}

// AnalyzeCtx is the context-aware variant; its own loop checks ctx.
func AnalyzeCtx(ctx context.Context, nets []string) error {
	for _, n := range nets {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(n)
	}
	return nil
}

// Render loops, but the exported RenderCtx sibling offers the
// cancellable path: clean.
func Render(nets []string) {
	for _, n := range nets {
		work(n)
	}
}

// RenderCtx is Render's context-aware sibling.
func RenderCtx(ctx context.Context, nets []string) error {
	for _, n := range nets {
		if err := ctx.Err(); err != nil {
			return err
		}
		work(n)
	}
	return nil
}

// Tally loops without calls (cheap aggregation): clean.
func Tally(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// WaivedSweep is a deliberate synchronous API: waived with a reason.
//
//snavet:ctxloop scripted one-shot helper; callers run it to completion by design
func WaivedSweep(nets []string) {
	for _, n := range nets {
		work(n)
	}
}
