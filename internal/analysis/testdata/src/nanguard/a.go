// Golden cases for the nanguard analyzer: non-constant bounds reaching
// interval.New need a NaN guard in the enclosing function.
package nanguard

import (
	"interval"
	"math"
)

const pico = 1e-12

// unguarded passes runtime floats straight into New: both bounds
// reported.
func unguarded(lo, hi float64) interval.Window {
	return interval.New(lo, hi) // want `window bound lo reaches interval.New with no NaN guard` `window bound hi reaches interval.New with no NaN guard`
}

// guarded tests IsNaN on a path before constructing: clean.
func guarded(lo, hi float64) (interval.Window, bool) {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		return interval.Window{}, false
	}
	return interval.New(lo, hi), true
}

// infGuarded uses IsInf, which also proves the bound was considered:
// clean.
func infGuarded(lo float64) interval.Window {
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		lo = 0
	}
	return interval.New(lo, lo+10*pico)
}

// constants need no guard; the compiler already proved them finite.
func constants() interval.Window {
	return interval.New(0, 60*pico)
}

// derived bounds are covered when the guard mentions their roots: the
// check on width covers lo+width.
func derived(lo, width float64) interval.Window {
	if math.IsNaN(lo) || math.IsNaN(width) {
		return interval.Window{}
	}
	return interval.New(lo, lo+width)
}

// sanitized delegates the guard to a named sanitizer helper: clean.
func sanitized(lo, hi float64) interval.Window {
	return interval.New(sanitizeBound(lo), sanitizeBound(hi))
}

func sanitizeBound(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// waived documents why the bound cannot be NaN: suppressed.
func waived(half float64) interval.Window {
	//snavet:nanguard half is |width|/2 of a validated glitch, non-NaN by construction
	return interval.New(-half, half)
}
