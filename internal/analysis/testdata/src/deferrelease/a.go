// Golden cases for the deferrelease analyzer: acquires must be released
// via defer before any panicking call, or explicitly with no call in
// between.
package deferrelease

import (
	"context"
	"sync"
)

type state struct {
	mu   sync.Mutex
	busy chan struct{}
	n    int
}

func (s *state) acquire(ctx context.Context) bool {
	select {
	case s.busy <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

func (s *state) release() { <-s.busy }

func work() {}

// undeferred holds the lock across a call that can panic: reported.
func undeferred(s *state) {
	s.mu.Lock() // want `not followed by a deferred Unlock`
	work()
	s.mu.Unlock()
}

// deferred is the canonical panic-safe form: clean.
func deferred(s *state) {
	s.mu.Lock()
	defer s.mu.Unlock()
	work()
}

// shortCritical touches only call-free statements before the explicit
// unlock: clean.
func shortCritical(s *state) int {
	s.mu.Lock()
	s.n++
	v := s.n
	s.mu.Unlock()
	return v
}

// branchRelease unlocks on a call-free branch before returning: clean.
func branchRelease(s *state, fail bool) {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
}

// slotLeak takes the session slot and calls into the engine without a
// deferred release — the PR 4 wedge: reported.
func slotLeak(ctx context.Context, s *state) {
	if !s.acquire(ctx) { // want `not followed by a deferred release`
		return
	}
	work()
	s.release()
}

// slotSafe defers the release immediately after acquiring: clean.
func slotSafe(ctx context.Context, s *state) {
	if !s.acquire(ctx) {
		return
	}
	defer s.release()
	work()
}

// waived documents a deliberate non-deferred release: suppressed.
func waived(s *state) {
	//snavet:deferrelease work() is panic-free by contract and the unlock must precede the broadcast
	s.mu.Lock()
	work()
	s.mu.Unlock()
}
