// Golden cases for the ackorder analyzer: 2xx acknowledgements must
// follow the store's journal-append in source order.
package ackorder

// Store mirrors the durable session store; the analyzer matches the
// journal-appending mutators by method name on a *Store-named type.
type Store struct{}

func (st *Store) Create(name string) error  { return nil }
func (st *Store) Delete(name string) error  { return nil }
func (st *Store) Padding(name string) error { return nil }
func (st *Store) Spec(name string) *string  { return nil }

type responseWriter struct{}

func (w *responseWriter) WriteHeader(code int) {}

func writeJSON(w *responseWriter, status int, v any) {}

const (
	statusOK        = 200
	statusCreated   = 201
	statusNoContent = 204
	statusUnavail   = 503
)

// ackFirst acknowledges creation before the journal append: reported.
func ackFirst(w *responseWriter, st *Store, name string) {
	writeJSON(w, statusCreated, name) // want `success acknowledged before the store mutation`
	_ = st.Create(name)
}

// journalFirst appends, checks, then acknowledges: clean.
func journalFirst(w *responseWriter, st *Store, name string) {
	if err := st.Create(name); err != nil {
		writeJSON(w, statusUnavail, err)
		return
	}
	writeJSON(w, statusCreated, name)
}

// headerFirst writes the bare 2xx header before the tombstone: reported.
func headerFirst(w *responseWriter, st *Store, name string) {
	w.WriteHeader(statusNoContent) // want `success acknowledged before the store mutation`
	_ = st.Delete(name)
}

// headerAfter is the correct delete ordering: clean.
func headerAfter(w *responseWriter, st *Store, name string) {
	if err := st.Delete(name); err != nil {
		writeJSON(w, statusUnavail, err)
		return
	}
	w.WriteHeader(statusNoContent)
}

// readOnly consults the store without mutating; acks are unconstrained:
// clean.
func readOnly(w *responseWriter, st *Store, name string) {
	if st.Spec(name) == nil {
		writeJSON(w, statusOK, nil)
	}
}

// dynamicStatus cannot be proven 2xx, so it is not an acknowledgement the
// analyzer constrains: clean.
func dynamicStatus(w *responseWriter, st *Store, name string, status int) {
	writeJSON(w, status, name)
	_ = st.Padding(name)
}

// waived documents an intentional early ack: suppressed.
func waived(w *responseWriter, st *Store, name string) {
	//snavet:ackorder padding re-applies idempotently; ack-before-journal is safe here
	writeJSON(w, statusOK, name)
	_ = st.Padding(name)
}
