package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapDeterm enforces the determinism invariant behind the engine's
// serial-identical parallel fixpoint and the byte-stable reports the snad
// service caches and round-trips: iterating a Go map yields a fresh random
// order every run, so no map `range` may feed ordering-sensitive output —
// report/table rows, JSON arrays, journal records, channel work queues —
// without an explicit sort between the map and the consumer.
//
// Ordering-sensitive sinks inside a map-range body:
//
//   - appending to a slice declared outside the loop, unless the same
//     function later sorts that slice (sort.*/slices.* call naming it);
//   - writing output directly (Print/Fprint/Write/Encode/AddRow/
//     WriteString-style callee names);
//   - sending on a channel.
//
// Iterations that only fill other maps, sum counters, or collect keys that
// are sorted before use are order-safe and not reported. Intentional
// unordered iteration is waived with `//snavet:ordered <reason>` — the key
// names the claim ("this is order-safe") rather than the analyzer.
var MapDeterm = &Analyzer{
	Name:      "mapdeterm",
	Directive: "ordered",
	Doc: "range over a map must not feed ordering-sensitive output " +
		"(rows, records, writers, channels) without a sort",
	Run: runMapDeterm,
}

// outputCallPrefixes are callee-name prefixes treated as direct output
// sinks: bytes written in loop order become bytes the user diffs. The
// builtin append is handled separately as a slice sink.
var outputCallPrefixes = []string{
	"Print", "Fprint", "Write", "Encode", "AddRow", "Render",
}

func runMapDeterm(pass *Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			rng, ok := x.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapType(pass.TypesInfo.Types[rng.X].Type) {
				return true
			}
			checkMapRange(pass, fd, rng)
			return true
		})
	})
	return nil
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for ordering-sensitive sinks.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(),
				"map iteration order feeds a channel send; receivers observe a random order — sort the keys first")
			return true
		case *ast.AssignStmt:
			checkAppendSink(pass, fd, rng, s)
			return true
		case *ast.CallExpr:
			name := calleeName(s)
			for _, prefix := range outputCallPrefixes {
				if strings.HasPrefix(name, prefix) {
					pass.Reportf(s.Pos(),
						"map iteration order reaches %s: output written inside a map range is nondeterministic — sort the keys first", name)
					return true
				}
			}
		}
		return true
	})
}

// builtinAppendTarget reports whether call is the builtin append and, if
// so, returns its destination expression.
func builtinAppendTarget(pass *Pass, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if obj, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || obj.Name() != "append" {
		return nil, false
	}
	if len(call.Args) == 0 {
		return nil, false
	}
	return call.Args[0], true
}

// checkAppendSink flags `dst = append(dst, ...)` inside a map range when
// dst is declared outside the loop and never sorted later in the function.
func checkAppendSink(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, assign *ast.AssignStmt) {
	for _, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		dst, ok := builtinAppendTarget(pass, call)
		if !ok {
			continue
		}
		obj := rootObject(pass, dst)
		if obj == nil || declaredWithin(pass, obj, rng) {
			continue
		}
		if sortedLater(pass, fd, obj) {
			continue
		}
		pass.Reportf(assign.Pos(),
			"map iteration order flows into %s via append and %s is never sorted in %s: sort it (or the keys) before it becomes output",
			obj.Name(), obj.Name(), fd.Name.Name)
	}
}

// rootObject resolves the base identifier of a (possibly selected)
// expression to its object.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x]
		case *ast.SelectorExpr:
			// For field sinks like out.Rows, track the field object so a
			// later sort naming the same field counts.
			if sel, ok := pass.TypesInfo.Selections[x]; ok {
				return sel.Obj()
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(pass *Pass, obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

// sortedLater reports whether, after the map range, the function contains
// a sort call that mentions obj: sort.X(...obj...), slices.SortX(...),
// sort.Sort(byX(obj)), or a method/function whose name contains "Sort"
// or "sort" taking obj.
func sortedLater(pass *Pass, fd *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Match on the qualified callee text so sort.Strings, sort.Slice,
		// slices.SortFunc, and rows.Sort() all count as sorting.
		name := exprText(ast.Unparen(call.Fun))
		if name == "" {
			name = calleeName(call)
		}
		if !strings.Contains(name, "Sort") && !strings.Contains(name, "sort") && !strings.Contains(name, "slices.") {
			return true
		}
		if usesAny(pass, call, []types.Object{obj}) {
			found = true
			return false
		}
		return true
	})
	return found
}
