package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// The `go vet -vettool` unit-checker protocol.
//
// `go vet` drives a vettool once per compilation unit: it writes a JSON
// config describing the unit (files, import maps, export-data locations)
// and invokes `tool <dir>/vet.cfg`. The tool must typecheck the unit using
// the compiler-produced export data — no go/packages, no network, no
// module resolution of its own — report diagnostics, and write its facts
// file (ours is empty: the suite is fact-free) so the build cache can
// reuse results. This file implements that contract with only the
// standard library, mirroring x/tools' unitchecker, which this module
// cannot depend on.

// UnitConfig is the JSON config `go vet` writes for one compilation unit.
// Field names and semantics follow cmd/go's vetConfig.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit executes the suite over one vet config file. It returns the
// unsuppressed diagnostics; a nil error with diagnostics means the
// analysis worked and found problems. Protocol obligations (vetx output,
// typecheck-failure tolerance) are handled here.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode vet config %s: %v", cfgPath, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}

	// The suite exports no facts, but go vet caches the vetx output file;
	// writing it (even empty) keeps the cache happy and marks the unit
	// analyzed.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("snavet\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: go vet only wants facts from this unit, and we
		// have none.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil // the compiler will report it better
			}
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				path = importPath
			}
			return base.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := newTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	return Active(diags), nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// newTypesInfo allocates the full set of type-checker result maps the
// analyzers consult.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}
