package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NaNGuard enforces the bound-sanitation invariant behind interval.New's
// panic contract: New panics on a NaN bound (PR 5's fuzzers found exactly
// this crasher — parsed timing files feeding NaN straight into window
// construction), so every non-constant float expression flowing into it
// must be guarded by math.IsNaN/math.IsInf on at least one path of the
// enclosing function. The check is per-argument-root: passing `lo` is fine
// when the function tests IsNaN(lo) (or IsNaN of anything derived from the
// same variables) somewhere; a constant like `60*units.Pico` needs no
// guard because the compiler already proved it finite.
//
// The guard may also be delegated: passing the value through a callee
// whose name contains "NaN", "Finite", "Sane", "sanitize" or "clamp"
// counts, so shared sanitizer helpers satisfy the analyzer at every call
// site without repeating the math.IsNaN boilerplate.
var NaNGuard = &Analyzer{
	Name: "nanguard",
	Doc: "non-constant float bounds reaching interval.New must be guarded " +
		"by math.IsNaN/IsInf (or a *NaN*/*Finite*/sanitize helper) in the enclosing function",
	Run: runNaNGuard,
}

// guardNameFragments are callee-name substrings accepted as NaN guards in
// addition to math.IsNaN/math.IsInf.
var guardNameFragments = []string{"NaN", "Inf", "Finite", "Sane", "sanitize", "Sanitize", "clamp", "Clamp"}

func runNaNGuard(pass *Pass) error {
	funcDecls(pass, func(fd *ast.FuncDecl) {
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok || !isIntervalNew(pass, call) {
				return true
			}
			for _, arg := range call.Args {
				checkBound(pass, fd, call, arg)
			}
			return true
		})
	})
	return nil
}

// isIntervalNew reports whether call is interval.New from this module's
// window algebra (package path segment "interval", function name New).
func isIntervalNew(pass *Pass, call *ast.CallExpr) bool {
	if calleeName(call) != "New" {
		return false
	}
	path := calleePkgPath(pass, call)
	return path == "interval" || strings.HasSuffix(path, "/interval")
}

// checkBound reports a window bound that is neither a compile-time
// constant nor covered by a NaN guard mentioning any of its root
// variables.
func checkBound(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, arg ast.Expr) {
	if isConstExpr(pass, arg) {
		return
	}
	roots := rootIdents(pass, arg)
	if len(roots) == 0 {
		// The bound is the direct result of a call; accept it when the
		// producer's name is itself guard-like (sanitizeLo(x)), otherwise
		// demand a visible guard on a named intermediate.
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && isGuardCall(inner) {
			return
		}
		pass.Reportf(arg.Pos(),
			"window bound reaches interval.New unguarded: bind it to a variable and check math.IsNaN before constructing the window")
		return
	}
	if guardCovers(pass, fd, roots) {
		return
	}
	pass.Reportf(arg.Pos(),
		"window bound %s reaches interval.New with no NaN guard in %s: interval.New panics on NaN — check math.IsNaN/IsInf on at least one path",
		boundText(arg), fd.Name.Name)
}

func boundText(e ast.Expr) string {
	if t := exprText(e); t != "" {
		return t
	}
	return "expression"
}

// guardCovers reports whether the function contains a guard call whose
// arguments mention any of the given root objects.
func guardCovers(pass *Pass, fd *ast.FuncDecl, roots []types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || !isGuardCall(call) {
			return true
		}
		if usesAny(pass, call, roots) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isGuardCall reports whether the callee name marks a NaN/finite guard.
func isGuardCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	for _, frag := range guardNameFragments {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}
