package analysis

import (
	"go/ast"
)

// DeferRelease enforces the panic-safe release invariant from the PR 4
// session-wedge incident: a handler panicked between taking a session's
// busy slot and releasing it, and the undeferred release leaked the slot,
// wedging the session forever. In internal/server, every acquire of a
// semaphore/lock/refcount must be paired — on the same receiver, in the
// same block — with its release either
//
//   - deferred before any statement that can panic (any real call), or
//   - called explicitly with only call-free statements in between (the
//     short critical-section idiom `mu.Lock(); s.f = v; mu.Unlock()`).
//
// Pairing is by receiver text and a name table (Lock/Unlock,
// RLock/RUnlock, acquire/release, Acquire/Release, retain/releaseRef,
// enter/exit), which keeps the check block-local and predictable; aliasing
// the lock through another variable defeats it and needs a waiver.
var DeferRelease = &Analyzer{
	Name: "deferrelease",
	Doc: "in internal/server an acquire (Lock/acquire/retain/enter) must be " +
		"released via defer before any panicking call, or explicitly with no call in between",
	Run: runDeferRelease,
}

// releasePairs maps acquire callee names to their release names.
var releasePairs = map[string][]string{
	"Lock":    {"Unlock"},
	"RLock":   {"RUnlock"},
	"acquire": {"release"},
	"Acquire": {"Release"},
	"retain":  {"releaseRef", "release"},
	"enter":   {"exit"},
}

func runDeferRelease(pass *Pass) error {
	if !pkgMatches(pass.Pkg.Path(), "deferrelease", "internal/server") {
		return nil
	}
	funcDecls(pass, func(fd *ast.FuncDecl) {
		// The release primitives themselves (func release / exit / ...)
		// are the one place an acquire legitimately has no pair.
		if isReleaseName(fd.Name.Name) || acquireNames()[fd.Name.Name] {
			return
		}
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			block, ok := x.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkBlock(pass, block)
			return true
		})
	})
	return nil
}

func isReleaseName(name string) bool {
	for _, rels := range releasePairs {
		for _, r := range rels {
			if r == name {
				return true
			}
		}
	}
	return false
}

func acquireNames() map[string]bool {
	out := make(map[string]bool, len(releasePairs))
	for a := range releasePairs {
		out[a] = true
	}
	return out
}

// checkBlock scans one statement list for acquires and validates each.
func checkBlock(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		call, recv := acquireIn(pass, stmt)
		if call == nil {
			continue
		}
		rels := releasePairs[calleeName(call)]
		if ok := releaseFollows(pass, block.List[i+1:], recv, rels); !ok {
			pass.Reportf(call.Pos(),
				"%s.%s is not followed by a deferred %s before the next call: a panic in between leaks the slot (PR 4 session wedge)",
				recv, calleeName(call), rels[0])
		}
	}
}

// acquireIn returns the acquire call rooted in stmt, if any, with its
// receiver text. Acquires are recognized as the statement's top-level
// expression, the RHS of an assignment, or the condition/init of an if
// statement (`if !ss.acquire(ctx) { return }`).
func acquireIn(pass *Pass, stmt ast.Stmt) (*ast.CallExpr, string) {
	var found *ast.CallExpr
	ast.Inspect(stmt, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		// Do not descend into nested blocks: their acquires are checked
		// as part of their own block scan.
		if _, ok := x.(*ast.BlockStmt); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if _, isAcquire := releasePairs[name]; !isAcquire {
			return true
		}
		if receiverText(call) == "" {
			return true // free function named acquire: not a paired primitive
		}
		found = call
		return false
	})
	if found == nil {
		return nil, ""
	}
	return found, receiverText(found)
}

// releaseFollows scans the statements after the acquire. It accepts a
// deferred release on the same receiver seen before any real call, or an
// explicit release with only call-free statements in between. Reaching a
// real call (or the end of the block) first is a violation.
func releaseFollows(pass *Pass, rest []ast.Stmt, recv string, rels []string) bool {
	for _, stmt := range rest {
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if isReleaseCall(d.Call, recv, rels) {
				return true
			}
			// A defer of something else is fine: defers cannot panic at
			// registration time.
			continue
		}
		if call := releaseCallIn(stmt, recv, rels); call != nil {
			return true
		}
		if containsRealCall(pass, stmt) {
			return false
		}
	}
	return false
}

func isReleaseCall(call *ast.CallExpr, recv string, rels []string) bool {
	if receiverText(call) != recv {
		return false
	}
	name := calleeName(call)
	for _, r := range rels {
		if name == r {
			return true
		}
	}
	return false
}

// releaseCallIn returns a matching release call appearing anywhere in
// stmt (including inside nested blocks, so conditional cleanup paths such
// as `if err != nil { mu.Unlock(); return }` count).
func releaseCallIn(stmt ast.Stmt, recv string, rels []string) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(stmt, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && isReleaseCall(call, recv, rels) {
			found = call
			return false
		}
		return true
	})
	return found
}
