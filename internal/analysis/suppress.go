package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives.
//
// A finding is waived by writing, on the reported line or the line
// immediately above it:
//
//	//snavet:<key> <reason>
//
// where <key> is the analyzer's directive name (`snavet help` lists them)
// and <reason> is free text explaining why the invariant does not apply.
// The reason is mandatory: a waiver that does not argue its case is a
// diagnostic. So is a waiver whose key no analyzer owns, and — when the
// owning analyzer ran — a waiver that suppressed nothing, so stale waivers
// die with the code they excused.

const directivePrefix = "//snavet:"

// directive is one parsed //snavet: comment.
type directive struct {
	pos    token.Position
	key    string
	reason string
	used   bool
}

// directiveSet indexes a package's directives by file and line.
type directiveSet struct {
	// byLine maps filename -> line -> directives written on that line.
	byLine map[string]map[int][]*directive
	all    []*directive
}

// collectDirectives scans every comment in the package (test files
// included: a directive in a test is as binding as anywhere else, and an
// unused one as stale).
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	set := &directiveSet{byLine: make(map[string]map[int][]*directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				key, reason, _ := strings.Cut(rest, " ")
				d := &directive{
					pos:    fset.Position(c.Pos()),
					key:    strings.TrimSpace(key),
					reason: strings.TrimSpace(reason),
				}
				set.all = append(set.all, d)
				lines := set.byLine[d.pos.Filename]
				if lines == nil {
					lines = make(map[int][]*directive)
					set.byLine[d.pos.Filename] = lines
				}
				lines[d.pos.Line] = append(lines[d.pos.Line], d)
			}
		}
	}
	return set
}

// suppress reports whether a directive with the given key covers pos —
// same line (trailing comment) or the line directly above (standalone
// comment) — and marks the directive used. Directives with an empty key or
// reason never suppress; they are reported as problems instead.
func (s *directiveSet) suppress(key string, pos token.Position) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.key != key || d.reason == "" {
				continue
			}
			d.used = true
			hit = true
		}
	}
	return hit
}

// problems returns hygiene diagnostics for the package's directives:
// unknown keys, missing reasons, and — for keys whose analyzer ran —
// waivers that suppressed nothing.
func (s *directiveSet) problems(analyzers []*Analyzer) []Diagnostic {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.DirectiveName()] = true
	}
	var out []Diagnostic
	report := func(d *directive, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Analyzer: "snavetdirective",
			Message:  "directive " + directivePrefix + d.key + ": " + fmt.Sprintf(format, args...),
		})
	}
	for _, d := range s.all {
		switch {
		case d.key == "":
			report(d, "missing analyzer key")
		case d.reason == "":
			report(d, "missing reason; a waiver must say why the invariant does not apply here")
		case !known[d.key]:
			// The analyzer for this key is not in the run set: with a
			// single analyzer selected (tests, snavet -run) we cannot
			// distinguish "unknown" from "not running", so only a full
			// suite run reports unknown keys.
			if len(analyzers) > 1 {
				report(d, "unknown analyzer key")
			}
		case !d.used:
			report(d, "unused: the %s analyzer reports nothing here; delete the stale waiver", d.key)
		}
	}
	return out
}
