package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"sort"
)

// Standalone driver: load whole package patterns without `go vet`.
//
// `go list -export -deps -json` gives everything a module-aware loader
// needs and nothing it must compute itself: the file list of every target
// package and the compiler's export data for every dependency. Parsing
// and typechecking then proceed exactly as in the unit driver, so
// `snavet ./...` and `go vet -vettool=snavet ./...` agree diagnostic for
// diagnostic; the standalone form exists for editors, the -json pipeline,
// and running the suite without warming vet's action cache.

// listPackage is the subset of `go list -json` output the driver reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// LoadAndRun lists the given package patterns, typechecks each non-dep
// package against the export data of its dependencies, and runs the suite
// over it. Diagnostics come back position-sorted across packages with
// suppressed findings removed.
func LoadAndRun(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Standard,Export,DepOnly,GoFiles,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exportFile := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var out []Diagnostic
	for _, p := range targets {
		diags, err := checkListed(fset, base, p, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

func checkListed(fset *token.FileSet, imp types.Importer, p *listPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if p.Dir != "" && !os.IsPathSeparator(name[0]) {
			path = p.Dir + string(os.PathSeparator) + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := newTypesInfo()
	pkg, err := tc.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	diags, err := Run(fset, files, pkg, info, analyzers)
	if err != nil {
		return nil, err
	}
	return Active(diags), nil
}
