package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// AckOrder enforces journal-before-acknowledge, the durability contract
// PR 5 built the session store around: once a client sees a 2xx, the
// mutation it acknowledges must already be in the fsynced journal, or a
// crash re-orders history out from under an acknowledged request. In
// internal/server, any function that both mutates durable store state
// (Store.Create / Store.Delete / Store.Padding) and acknowledges success
// (writeJSON with a 2xx status, or WriteHeader(2xx)) must order every
// acknowledgement after the first mutation, in source order.
//
// Source order is a deliberate approximation of dominance: the handlers
// are written straight-line (mutate, check error, acknowledge), so a 2xx
// acknowledgement lexically before the journal call is exactly the bug
// class — an early ack — and survives refactors that a full CFG analysis
// would also catch. Acknowledgements with non-constant status codes are
// ignored; the analyzer only reasons about statuses it can prove are 2xx.
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc: "in internal/server, 2xx acknowledgements must follow the store's " +
		"journal-append (journal-before-acknowledge)",
	Run: runAckOrder,
}

// storeMutators are the Store methods that append to the journal.
var storeMutators = map[string]bool{"Create": true, "Delete": true, "Padding": true}

func runAckOrder(pass *Pass) error {
	if !pkgMatches(pass.Pkg.Path(), "ackorder", "internal/server") {
		return nil
	}
	funcDecls(pass, func(fd *ast.FuncDecl) {
		var mutates []*ast.CallExpr
		var acks []*ast.CallExpr
		ast.Inspect(fd.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case isStoreMutation(pass, call):
				mutates = append(mutates, call)
			case isSuccessAck(pass, call):
				acks = append(acks, call)
			}
			return true
		})
		if len(mutates) == 0 {
			return
		}
		first := mutates[0].Pos()
		for _, m := range mutates[1:] {
			if m.Pos() < first {
				first = m.Pos()
			}
		}
		for _, ack := range acks {
			if ack.Pos() < first {
				pass.Reportf(ack.Pos(),
					"success acknowledged before the store mutation in %s: journal-before-acknowledge — a crash here acks state the journal never saw",
					fd.Name.Name)
			}
		}
	})
	return nil
}

// isStoreMutation reports whether call is a journal-appending method on a
// value of the durable store type (named type whose name is or ends in
// "Store").
func isStoreMutation(pass *Pass, call *ast.CallExpr) bool {
	if !storeMutators[calleeName(call)] {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			named, ok = p.Elem().(*types.Named)
			if !ok {
				return false
			}
		} else {
			return false
		}
	}
	name := named.Obj().Name()
	return name == "Store" || strings.HasSuffix(name, "Store")
}

// isSuccessAck reports whether call acknowledges success to the client: a
// WriteHeader with a provably-2xx argument, or a writeJSON-style helper
// (name starting "writeJSON"/"WriteJSON") whose status argument is
// provably 2xx.
func isSuccessAck(pass *Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	switch {
	case name == "WriteHeader":
		return len(call.Args) == 1 && is2xx(pass, call.Args[0])
	case strings.HasPrefix(name, "writeJSON") || strings.HasPrefix(name, "WriteJSON"):
		for _, arg := range call.Args {
			if is2xx(pass, arg) {
				return true
			}
		}
	}
	return false
}

// is2xx reports whether the type checker proves e is an integer constant
// in [200, 300).
func is2xx(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return false
	}
	v, ok := constant.Int64Val(tv.Value)
	return ok && v >= 200 && v < 300
}
