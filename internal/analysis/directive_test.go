package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSource typechecks one in-memory file (package "mapdeterm" so the
// repo-wide analyzer applies) and runs the given analyzers over it.
func checkSource(t *testing.T, src string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "directive.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	tc := &types.Config{Importer: importer.Default()}
	info := newTypesInfo()
	pkg, err := tc.Check("mapdeterm", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(fset, f2s(f), pkg, info, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func f2s(f *ast.File) []*ast.File { return []*ast.File{f} }

const badWaiverSrc = `package mapdeterm

func feed(m map[string]int, jobs chan string) {
	for k := range m {
		//snavet:ordered
		jobs <- k
	}
}
`

// A directive without a reason suppresses nothing and is itself reported.
func TestDirectiveMissingReason(t *testing.T) {
	diags := Active(checkSource(t, badWaiverSrc, []*Analyzer{MapDeterm}))
	var gotSend, gotHygiene bool
	for _, d := range diags {
		if strings.Contains(d.Message, "channel send") && !d.Suppressed {
			gotSend = true
		}
		if d.Analyzer == "snavetdirective" && strings.Contains(d.Message, "missing reason") {
			gotHygiene = true
		}
	}
	if !gotSend || !gotHygiene {
		t.Fatalf("want unsuppressed finding and missing-reason hygiene diag, got %v", diags)
	}
}

const staleWaiverSrc = `package mapdeterm

func fine(m map[string]int) int {
	n := 0
	//snavet:ordered summing is order-insensitive
	for range m {
		n++
	}
	return n
}
`

// A directive that suppresses nothing is stale and reported, so waivers
// die with the code they excused.
func TestDirectiveUnused(t *testing.T) {
	diags := Active(checkSource(t, staleWaiverSrc, []*Analyzer{MapDeterm}))
	if len(diags) != 1 || diags[0].Analyzer != "snavetdirective" || !strings.Contains(diags[0].Message, "unused") {
		t.Fatalf("want exactly one unused-directive diag, got %v", diags)
	}
}

const unknownKeySrc = `package mapdeterm

func nothing() {
	//snavet:nosuchcheck reasons abound
	_ = 0
}
`

// An unknown key is reported when the full suite runs (with a single
// analyzer selected the key may belong to an analyzer that simply is not
// running, so only multi-analyzer runs judge it).
func TestDirectiveUnknownKey(t *testing.T) {
	diags := Active(checkSource(t, unknownKeySrc, All()))
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown analyzer key") {
		t.Fatalf("want exactly one unknown-key diag, got %v", diags)
	}
	if diags := Active(checkSource(t, unknownKeySrc, []*Analyzer{MapDeterm})); len(diags) != 0 {
		t.Fatalf("single-analyzer run must not judge foreign keys, got %v", diags)
	}
}

// Suppressed findings survive in the raw diagnostic list (marked) but are
// filtered by Active; the waived directive counts as used.
func TestSuppressedMarkedNotActive(t *testing.T) {
	const src = `package mapdeterm

func feed(m map[string]int, jobs chan string) {
	for k := range m {
		//snavet:ordered consumer is an order-insensitive set
		jobs <- k
	}
}
`
	raw := checkSource(t, src, []*Analyzer{MapDeterm})
	if len(raw) != 1 || !raw[0].Suppressed {
		t.Fatalf("want one suppressed finding, got %v", raw)
	}
	if act := Active(raw); len(act) != 0 {
		t.Fatalf("Active must drop suppressed findings, got %v", act)
	}
}
