// Package atest is a miniature analysistest: it loads golden packages
// from a testdata/src GOPATH layout, runs one analyzer over them, and
// checks the findings against `// want "regexp"` comments in the sources.
// It reimplements the x/tools analysistest contract on the standard
// library alone (go/parser + go/types with the source importer), because
// this module carries no external dependencies.
//
// Expectation syntax, on the line a diagnostic is reported at:
//
//	code() // want "regexp" "second regexp"
//
// Every unsuppressed diagnostic must match a want pattern on its line and
// every want pattern must be matched by exactly one diagnostic. Suppressed
// findings (waived by //snavet: directives) are invisible, exactly as in
// the real drivers — a golden file asserts a waiver works by carrying the
// directive and no want.
package atest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// sharedImporter compiles imported packages from source, resolving
// non-stdlib paths under the testdata GOPATH. It is process-global so the
// standard library is typechecked once per test binary, not once per Run.
var (
	importerOnce sync.Once
	sharedFset   *token.FileSet
	sharedImp    types.Importer
)

func sourceImporter(testdata string) (*token.FileSet, types.Importer) {
	importerOnce.Do(func() {
		// The source importer resolves imports through build.Default;
		// pointing its GOPATH at testdata makes `import "interval"` find
		// testdata/src/interval. GO111MODULE must be off or go/build
		// shells out to `go list`, which resolves against the enclosing
		// module instead of the golden GOPATH. Every caller passes the
		// same testdata root (this package's), so the global mutation is
		// stable, and the env change is confined to this test binary.
		os.Setenv("GO111MODULE", "off")
		build.Default.GOPATH = testdata
		sharedFset = token.NewFileSet()
		sharedImp = importer.ForCompiler(sharedFset, "source", nil)
	})
	return sharedFset, sharedImp
}

// wantRe matches one quoted expectation in a // want comment; both
// double-quoted and backquoted Go string literals are accepted.
var wantRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads testdata/src/<pkgpath> (relative to the caller's directory),
// runs the analyzer, and reports mismatches on t.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	fset, imp := sourceImporter(testdata)

	dir := filepath.Join(testdata, "src", filepath.FromSlash(pkgpath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading golden package %s: %v", pkgpath, err)
	}
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		expects = append(expects, parseWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("golden package %s has no Go files", pkgpath)
	}

	tc := &types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking %s: %v", pkgpath, err)
	}

	diags, err := analysis.Run(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range analysis.Active(diags) {
		if !claim(expects, d) {
			t.Errorf("%s:%d: unexpected diagnostic: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, ex := range expects {
		if !ex.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none",
				filepath.Base(ex.file), ex.line, ex.re)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches its message.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, ex := range expects {
		if ex.matched || ex.file != d.Pos.Filename || ex.line != d.Pos.Line {
			continue
		}
		if ex.re.MatchString(d.Message) {
			ex.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts // want expectations from one file's comments.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			idx := strings.Index(text, "// want ")
			if idx < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, quoted := range wantRe.FindAllString(text[idx+len("// want "):], -1) {
				pat, err := strconv.Unquote(quoted)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, quoted, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}
