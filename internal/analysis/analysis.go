// Package analysis is snavet's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// model (Analyzer, Pass, Diagnostic) plus the two drivers snavet needs —
// the `go vet -vettool` unit-checker protocol (unit.go) and a standalone
// module-aware loader built on `go list -export` (golist.go).
//
// The analyzers in this package exist to enforce invariants this repository
// learned the hard way (see DESIGN.md §9): context checks in per-net loops,
// deterministic iteration feeding ordered output, NaN guards ahead of
// interval.New, deferred release of server semaphores, and
// journal-before-acknowledge ordering in HTTP handlers. Each is a vet-time
// proof obligation for a bug class that previously had to be found by
// fuzzers, chaos tests, or production review.
//
// Intentional violations are waived in source with a reasoned directive:
//
//	//snavet:<name> <reason>
//
// on the offending line or the line directly above it (suppress.go). A
// directive with no reason, an unknown name, or one that suppresses
// nothing is itself a diagnostic, so waivers stay honest and current.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant check. It mirrors the x/tools shape so
// the checks read like standard vet analyzers and could migrate to the real
// framework wholesale if the dependency ever becomes available.
type Analyzer struct {
	// Name is the analyzer identifier used in diagnostics and -json output.
	Name string
	// Doc is the one-paragraph description shown by `snavet help`.
	Doc string
	// Directive is the //snavet: suppression key; defaults to Name. It
	// exists because the mapdeterm waiver reads `//snavet:ordered`, which
	// documents the claim being made ("this iteration is order-safe")
	// rather than the tool that checks it.
	Directive string
	// Run inspects one type-checked package and reports via pass.Report*.
	Run func(pass *Pass) error
}

// DirectiveName returns the suppression key for the analyzer.
func (a *Analyzer) DirectiveName() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// Pass carries one package's syntax and type information through an
// analyzer run, in the manner of analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, positioned for editors and CI.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding waived by a //snavet: directive. The
	// drivers drop suppressed findings from output but keep them long
	// enough to mark their directives used.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over one type-checked package: each analyzer
// runs, its findings are filtered through the package's //snavet:
// directives, and directive hygiene problems (unknown name, missing
// reason, unused waiver) are appended as findings of their own. The result
// is sorted by position for deterministic output.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := collectDirectives(fset, files)

	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if dirs.suppress(a.DirectiveName(), d.Pos) {
				d.Suppressed = true
			}
			out = append(out, d)
		}
	}
	out = append(out, dirs.problems(analyzers)...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Active filters out suppressed findings, leaving what a driver reports.
func Active(diags []Diagnostic) []Diagnostic {
	out := diags[:0:0]
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// isTestFile reports whether the position sits in a _test.go file. The
// invariants target production code; tests intentionally build degenerate
// inputs (unsorted rows, NaN bounds, deliberately-leaked locks) to pin
// behavior, so analyzer runs skip them wholesale.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}
