package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

// Each analyzer runs over its golden package under testdata/src: every
// `// want` expectation must fire and nothing else may be reported. The
// golden files include, per analyzer, at least one report case, one
// false-positive guard (code that looks close but is clean), and one
// reasoned //snavet: waiver.

func TestCtxLoopGolden(t *testing.T)      { atest.Run(t, analysis.CtxLoop, "ctxloop") }
func TestMapDetermGolden(t *testing.T)    { atest.Run(t, analysis.MapDeterm, "mapdeterm") }
func TestNaNGuardGolden(t *testing.T)     { atest.Run(t, analysis.NaNGuard, "nanguard") }
func TestDeferReleaseGolden(t *testing.T) { atest.Run(t, analysis.DeferRelease, "deferrelease") }
func TestAckOrderGolden(t *testing.T)     { atest.Run(t, analysis.AckOrder, "ackorder") }
