package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared AST/type helpers for the analyzers.

// pkgMatches reports whether a package path ends in one of the given
// slash-separated suffixes ("internal/core" matches "repro/internal/core"
// but not "x/myinternal/core"), or begins with the analyzer's testdata
// prefix. Analyzer scoping works on suffixes so the checks apply equally
// to the real module path and to the bare package paths the analysistest
// harness loads from testdata/src.
func pkgMatches(path, testdataPrefix string, suffixes ...string) bool {
	if strings.HasPrefix(path, testdataPrefix) {
		return true
	}
	for _, suf := range suffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// funcDecls visits every function declaration with a body in the pass's
// non-test files.
func funcDecls(pass *Pass, fn func(decl *ast.FuncDecl)) {
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && t.String() == "context.Context"
}

// contextParams returns the *types.Var objects of every context.Context
// parameter of the function declaration.
func contextParams(pass *Pass, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// usesAny reports whether any identifier under n resolves to one of objs.
func usesAny(pass *Pass, n ast.Node, objs []types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if id, ok := x.(*ast.Ident); ok {
			use := pass.TypesInfo.Uses[id]
			for _, obj := range objs {
				if use == obj {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isRealCall reports whether the call does actual work at run time: not a
// builtin (len, cap, append, ...) and not a type conversion.
func isRealCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if _, ok := obj.(*types.Builtin); ok {
				return false
			}
			if _, ok := obj.(*types.TypeName); ok {
				return false
			}
		}
	case *ast.SelectorExpr:
		if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			return false
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StarExpr, *ast.InterfaceType:
		return false
	}
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	return true
}

// containsRealCall reports whether any descendant of n is a working call.
func containsRealCall(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok && isRealCall(pass, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeName returns the bare name of the called function or method
// ("Lock" for mu.Lock(), "Analyze" for core.Analyze()), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// calleePkgPath returns the package path of the called function when the
// callee resolves to a package-level object, or "".
func calleePkgPath(pass *Pass, call *ast.CallExpr) string {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return ""
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// receiverText renders the receiver expression of a method call
// ("s.stateMu" for s.stateMu.Lock()), or "" for a bare call. Textual
// receiver identity is how deferrelease pairs an acquire with its release;
// it is deliberately simple — aliasing a mutex through another variable
// defeats it, and the testdata pins that limitation.
func receiverText(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprText(sel.X)
}

// exprText renders a simple expression (identifiers, selectors, derefs)
// as source-like text for matching; complex expressions yield "".
func exprText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		base := exprText(e.X)
		if base == "" {
			return ""
		}
		return "*" + base
	}
	return ""
}

// rootIdents collects the distinct object roots referenced by an
// expression: for `lo+spec.W*2` that is {lo, spec}. Only variable and
// constant objects count; types and package names are skipped.
func rootIdents(pass *Pass, e ast.Expr) []types.Object {
	seen := make(map[types.Object]bool)
	var out []types.Object
	ast.Inspect(e, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		switch obj.(type) {
		case *types.Var, *types.Const:
			seen[obj] = true
			out = append(out, obj)
		}
		return true
	})
	return out
}

// isConstExpr reports whether the type checker evaluated e to a constant.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}
