package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxLoop enforces the cancellation invariant PR 2 plumbed through the
// engine: in internal/core, internal/sta, and internal/server, a function
// that receives a context must consult it inside every working loop — the
// per-net/per-victim loops are the places a runaway analysis burns minutes
// after the caller gave up. A loop "consults" the context when it mentions
// the ctx variable at all: `ctx.Err()` checks, `select` on `ctx.Done()`,
// and passing ctx into a callee that checks all qualify. Loops nested
// under a loop that already consults ctx are exempt (the outer iteration
// bounds the latency), as are loops whose body performs no calls (pure
// index/arithmetic work finishes fast).
//
// The analyzer also enforces the API half of the invariant: an exported
// package-level entry point that contains a working loop must either take
// a context itself or have an exported <Name>Ctx sibling, so callers are
// never forced into an uncancellable variant.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "per-net loops in core/sta/server must consult their context; " +
		"exported looping entry points must offer a Ctx variant",
	Run: runCtxLoop,
}

func runCtxLoop(pass *Pass) error {
	if !pkgMatches(pass.Pkg.Path(), "ctxloop", "internal/core", "internal/sta", "internal/server") {
		return nil
	}
	funcDecls(pass, func(fd *ast.FuncDecl) {
		ctxs := contextParams(pass, fd)
		if len(ctxs) > 0 {
			scanForLoops(pass, fd.Body, ctxs, false)
			return
		}
		checkEntryPoint(pass, fd)
	})
	return nil
}

// scanForLoops finds for/range statements under n and checks each against
// the ctx parameters. covered means an enclosing loop already consults the
// context.
func scanForLoops(pass *Pass, n ast.Node, ctxs []types.Object, covered bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch s := x.(type) {
		case *ast.ForStmt:
			checkLoop(pass, s, s.Body, ctxs, covered)
			return false
		case *ast.RangeStmt:
			checkLoop(pass, s, s.Body, ctxs, covered)
			return false
		}
		return true
	})
}

// checkLoop reports a working loop that neither consults the context nor
// sits under one that does, then recurses. A loop whose nested statements
// mention ctx counts as consulting it — the check happens within each
// iteration, which is what bounds time-to-cancel.
func checkLoop(pass *Pass, loop ast.Stmt, body *ast.BlockStmt, ctxs []types.Object, covered bool) {
	mentions := usesAny(pass, loop, ctxs)
	if !covered && !mentions && containsRealCall(pass, body) {
		pass.Reportf(loop.Pos(),
			"loop does not consult %s: check ctx.Err() (or select on ctx.Done()) per iteration, or pass ctx to the body",
			ctxParamNames(ctxs))
		// One diagnostic covers the whole region; nested loops inherit it.
		covered = true
	}
	scanForLoops(pass, body, ctxs, covered || mentions)
}

func ctxParamNames(ctxs []types.Object) string {
	names := make([]string, len(ctxs))
	for i, o := range ctxs {
		names[i] = o.Name()
	}
	return strings.Join(names, ", ")
}

// checkEntryPoint reports an exported package-level function that loops
// over real work without taking a context and without an exported Ctx
// sibling.
func checkEntryPoint(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv != nil || !fd.Name.IsExported() || strings.HasSuffix(fd.Name.Name, "Ctx") {
		return
	}
	hasWorkingLoop := false
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		if hasWorkingLoop {
			return false
		}
		switch s := x.(type) {
		case *ast.ForStmt:
			hasWorkingLoop = containsRealCall(pass, s.Body)
		case *ast.RangeStmt:
			hasWorkingLoop = containsRealCall(pass, s.Body)
		}
		return !hasWorkingLoop
	})
	if !hasWorkingLoop {
		return
	}
	sibling := fd.Name.Name + "Ctx"
	if obj := pass.Pkg.Scope().Lookup(sibling); obj != nil {
		if _, ok := obj.(*types.Func); ok {
			return
		}
	}
	pass.Reportf(fd.Name.Pos(),
		"exported entry point %s loops over per-item work but offers no context: add a ctx parameter or an exported %s variant",
		fd.Name.Name, sibling)
}
