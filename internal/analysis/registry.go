package analysis

// All returns the full snavet suite in stable order. cmd/snavet runs every
// analyzer; tests run them one at a time against their own testdata.
func All() []*Analyzer {
	return []*Analyzer{
		AckOrder,
		CtxLoop,
		DeferRelease,
		MapDeterm,
		NaNGuard,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
