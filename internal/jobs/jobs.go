// Package jobs is snad's durable asynchronous job subsystem: a bounded
// worker pool executing batch analyses (analyze / reanalyze / iterate /
// sweep) submitted over the HTTP API, with the same
// journal-before-acknowledge durability discipline as the session store.
//
// The contract, in the order the robustness machinery earns it:
//
//   - A 202-acknowledged submit is durable: the job spec is framed,
//     appended, and fsynced (internal/wal) before Submit returns, so a
//     crash immediately after cannot lose the job.
//
//   - Every state transition (queued → running → done/failed/canceled)
//     is journaled. A SIGKILL'd server replays the journal on boot:
//     queued jobs re-enqueue, in-flight jobs re-enqueue with their
//     interrupted attempt counted (the "start" record lands before the
//     attempt runs), finished jobs keep their results.
//
//   - Poison jobs are quarantined, not retried forever: each attempt
//     runs under a recover barrier, and a job that panics, degrades the
//     engine, or dies with the process MaxAttempts times is parked as
//     failed-with-Diag records — while the rest of the queue keeps
//     draining.
//
//   - Admission is bounded: past MaxQueued waiting jobs Submit refuses
//     with ErrQueueFull (the server maps it to 429 + Retry-After).
//
//   - Storage faults fail soft, never a lost ack: a journal append
//     failure refuses the submit with a StorageError (503 storage), and
//     the in-memory queue never runs ahead of the durable state.
//
//   - Graceful drain requeues: Close cancels running attempts through
//     their contexts and journals a "requeue" so a clean shutdown does
//     not burn an attempt; iterate jobs additionally checkpoint at round
//     boundaries (shard.FileCheckpointer, wired by the server's
//     executor), so the next boot resumes mid-fixpoint instead of
//     rerunning from scratch.
//
// The package is deliberately engine-agnostic: execution is an injected
// Executor callback, so the queue machinery is unit-testable without a
// design database, and the server owns the mapping from job specs onto
// sessions.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/report"
	"repro/internal/wal"
)

// State is a job's position in the lifecycle state machine.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Spec is one job's work order — the JSON body of POST /v1/jobs. It is
// journaled verbatim, so everything needed to re-run the job after a
// restart lives here.
type Spec struct {
	// Session names the session the job runs against.
	Session string `json:"session"`
	// Tenant attributes the job for fair scheduling: workers round-robin
	// across tenants with queued jobs, so one tenant flooding the queue
	// cannot starve another's submissions. Empty is the shared anonymous
	// tenant. Journaled with the spec, so fairness survives a restart.
	Tenant string `json:"tenant,omitempty"`
	// Type is "analyze", "reanalyze", "iterate", or "sweep".
	Type string `json:"type"`
	// Delay includes the crosstalk delta-delay section in the result.
	Delay bool `json:"delay,omitempty"`
	// Padding is the per-net late-edge window padding of a reanalyze job
	// (seconds, max-monotonic — re-running a replayed job is absorbed).
	Padding map[string]float64 `json:"padding,omitempty"`
	// MaxRounds bounds an iterate job's fixpoint loop (0 = server
	// default).
	MaxRounds int `json:"maxRounds,omitempty"`
	// Shards overrides an iterate job's shard count (0 = one per healthy
	// worker).
	Shards int `json:"shards,omitempty"`
	// Local forces an iterate job onto the single-process path even when
	// workers are registered.
	Local bool `json:"local,omitempty"`
	// Sweep lists the scenario points of a sweep job, analyzed in order.
	Sweep []SweepPoint `json:"sweep,omitempty"`
	// Deadline bounds each execution attempt, as a duration string like
	// "90s" (empty = manager default).
	Deadline string `json:"deadline,omitempty"`
	// MaxAttempts is the retry budget (0 = manager default).
	MaxAttempts int `json:"maxAttempts,omitempty"`
}

// SweepPoint is one scenario of a sweep job: the session's design
// analyzed under an alternative mode/threshold.
type SweepPoint struct {
	// Mode overrides the combination policy ("all", "timing", "noise";
	// empty keeps the session's).
	Mode string `json:"mode,omitempty"`
	// Threshold overrides the aggressor filter threshold (0 keeps the
	// session's).
	Threshold float64 `json:"threshold,omitempty"`
}

// Validate rejects specs that could never execute. It runs at submit
// (before the journal ack) and again at replay — a journaled spec that
// stops validating is quarantined, not retried forever.
func (s *Spec) Validate() error {
	if s.Session == "" {
		return fmt.Errorf("job session is required")
	}
	switch s.Type {
	case "analyze", "iterate":
	case "reanalyze":
		if len(s.Padding) == 0 {
			return fmt.Errorf("reanalyze job needs a padding map")
		}
	case "sweep":
		if len(s.Sweep) == 0 {
			return fmt.Errorf("sweep job needs at least one sweep point")
		}
	default:
		return fmt.Errorf("unknown job type %q (want analyze|reanalyze|iterate|sweep)", s.Type)
	}
	for net, pad := range s.Padding {
		if pad < 0 || pad != pad || pad-pad != 0 { // negative, NaN, or Inf
			return fmt.Errorf("bad padding %v for net %q (want finite seconds >= 0)", pad, net)
		}
	}
	for i, pt := range s.Sweep {
		if pt.Threshold < 0 || pt.Threshold != pt.Threshold || pt.Threshold-pt.Threshold != 0 { // negative, NaN, or Inf
			return fmt.Errorf("bad threshold %v in sweep point %d (want finite >= 0)", pt.Threshold, i)
		}
	}
	if s.Deadline != "" {
		d, err := time.ParseDuration(s.Deadline)
		if err != nil || d <= 0 {
			return fmt.Errorf("bad deadline %q (want a positive duration like 90s)", s.Deadline)
		}
	}
	if s.MaxAttempts < 0 {
		return fmt.Errorf("bad maxAttempts %d", s.MaxAttempts)
	}
	return nil
}

// Executor runs one attempt of one job. It returns the result payload
// (the bytes GET /v1/jobs/{id} serves once the job is done), whether
// the engine degraded, and an error. Wrap deterministic failures in
// Permanent so the manager fails fast instead of burning retries.
type Executor func(ctx context.Context, id string, spec *Spec, attempt int) (result json.RawMessage, degraded bool, err error)

// Config tunes a Manager. The zero value of every field has a usable
// default except Exec, which is required.
type Config struct {
	// Dir is the job journal directory; empty runs memory-only (jobs die
	// with the process — the pre-durability behavior).
	Dir string
	// Workers is the job worker pool size (default 2). Job workers are a
	// separate bounded pool from the HTTP admission gate: a queue full
	// of batch work must not starve interactive requests, and vice
	// versa.
	Workers int
	// MaxQueued bounds waiting jobs; Submit past it returns ErrQueueFull
	// (default 16).
	MaxQueued int
	// TenantCap bounds how many of one tenant's jobs may run at once:
	// set below Workers, a late-arriving tenant gets a worker as soon as
	// the flooding tenant hits its cap, not after the flood drains. 0 or
	// > Workers means Workers — single-tenant deployments keep full
	// throughput.
	TenantCap int
	// DefaultMaxAttempts is the retry budget for specs that don't set
	// one (default 3).
	DefaultMaxAttempts int
	// DefaultDeadline bounds each attempt for specs that don't set one
	// (default 5m).
	DefaultDeadline time.Duration
	// Backoff is the base retry delay, doubled per failed attempt and
	// capped at 16x (default 250ms).
	Backoff time.Duration
	// CompactEvery bounds journal growth: the journal is rewritten from
	// live state after this many records (default 256).
	CompactEvery int
	// KeepDone bounds terminal-job retention: compaction prunes all but
	// the newest this-many finished jobs (default 64).
	KeepDone int
	// Hooks is the write-path fault-injection seam (chaos tests).
	Hooks wal.Hooks
	// Exec executes attempts. Required.
	Exec Executor
	// Fault, when set, fires at the top of every attempt before Exec —
	// the job-level chaos injector (workload.JobFaults.Fire). It may
	// panic, hang on ctx, force an error, or force a degraded outcome.
	Fault func(ctx context.Context, jobType string) (degrade bool, err error)
	// OnFinal is called (outside the manager lock) when a job reaches a
	// terminal state; the server uses it to clear iterate checkpoints.
	OnFinal func(id string, state State)
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 16
	}
	if c.TenantCap <= 0 || c.TenantCap > c.Workers {
		c.TenantCap = c.Workers
	}
	if c.DefaultMaxAttempts <= 0 {
		c.DefaultMaxAttempts = 3
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Minute
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 256
	}
	if c.KeepDone <= 0 {
		c.KeepDone = 64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Sentinel errors of the admission and cancel paths. StorageError wraps
// journal failures so the server can map them to 503 storage.
var (
	// ErrQueueFull refuses a submit past the MaxQueued bound (429).
	ErrQueueFull = errors.New("job queue is full")
	// ErrNotFound reports an unknown job ID (404).
	ErrNotFound = errors.New("no such job")
	// ErrTerminal refuses canceling a job that already finished (409).
	ErrTerminal = errors.New("job already finished")
	// ErrDraining refuses submits after Close began (503).
	ErrDraining = errors.New("job manager is draining")
)

// StorageError marks a journal append failure: the operation was NOT
// acknowledged and the in-memory state was not changed — retryable once
// the disk recovers.
type StorageError struct{ Err error }

func (e *StorageError) Error() string { return fmt.Sprintf("job journal: %v", e.Err) }
func (e *StorageError) Unwrap() error { return e.Err }

// permanentError marks an executor failure that would recur on any
// retry (unknown session, unbuildable spec).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps an executor error so the manager fails the job
// immediately instead of retrying a deterministic failure.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// job is one job's runtime state; every field is guarded by the
// manager's mu.
type job struct {
	id          string
	spec        *Spec
	state       State
	attempts    int
	maxAttempts int
	deadline    time.Duration
	diags       []report.JobDiagJSON
	errMsg      string
	quarantined bool
	result      json.RawMessage

	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	cancelRequested bool
	// cancel tears down the running attempt's context; non-nil exactly
	// while an attempt executes.
	cancel context.CancelFunc
}

// Manager owns the queue, the journal, and the worker pool. Open one
// with Open; it is safe for concurrent use.
type Manager struct {
	cfg Config
	dir string

	mu      sync.Mutex
	journal *wal.Writer
	seq     uint64
	nextID  uint64
	jobs    map[string]*job
	// Tenant-fair dispatch: queues holds queued job IDs per tenant in
	// FIFO order, ring lists the tenants with queued work, and workers
	// claim round-robin from rr, skipping tenants whose runningBy count
	// is at TenantCap. The invariant "tenant in ring iff its queue is
	// non-empty" is maintained by enqueueLocked/popLocked; cond wakes
	// workers on pushes, slot releases, and shutdown.
	queues              map[string][]string
	ring                []string
	rr                  int
	runningBy           map[string]int
	cond                *sync.Cond
	recordsSinceCompact int
	closed              bool

	// baseCtx dies when Close begins; every attempt context derives from
	// it, so a drain cancels running work cooperatively.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	storageDegraded atomic.Bool
	doneTotal       atomic.Uint64
	failedTotal     atomic.Uint64
	canceledTotal   atomic.Uint64
	quarantinedN    atomic.Uint64
	bootRequeued    int
	bootQuarantined int
}

// Open builds a Manager: replays the journal (when Dir is set), repairs
// its tail, finalizes or re-enqueues interrupted jobs, and starts the
// worker pool. Like the session store, corrupt records never fail the
// boot — only a structurally unusable directory does.
func Open(cfg Config) (*Manager, error) {
	cfg.fill()
	if cfg.Exec == nil {
		return nil, fmt.Errorf("jobs: Config.Exec is required")
	}
	m := &Manager{
		cfg:       cfg,
		dir:       cfg.Dir,
		jobs:      make(map[string]*job),
		queues:    make(map[string][]string),
		runningBy: make(map[string]int),
	}
	m.nextID = 1
	m.cond = sync.NewCond(&m.mu)
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	if m.dir != "" {
		for _, d := range []string{m.dir, filepath.Join(m.dir, quarantineDir)} {
			if err := os.MkdirAll(d, 0o755); err != nil {
				return nil, fmt.Errorf("jobs: %w", err)
			}
		}
		if err := m.replay(); err != nil {
			return nil, err
		}
		// Boot compaction prunes and drops any torn tail before the first
		// append; it leaves the journal writer open (on the compacted file,
		// or the old one when the replace failed), so only open one here
		// when it could not.
		m.compactLocked()
		if m.journal == nil {
			w, err := wal.OpenWriter(m.journalPath(), m.cfg.Hooks)
			if err != nil {
				return nil, fmt.Errorf("jobs: opening journal: %w", err)
			}
			m.journal = w
		}
		m.recoverInterrupted()
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// Submit validates, journals, and enqueues one job, returning its
// acknowledged status snapshot. The journal append happens BEFORE the
// return — the ackorder discipline: a 202 the caller sends is backed by
// an fsynced record.
func (m *Manager) Submit(spec *Spec) (*report.JobJSON, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrDraining
	}
	queued := 0
	for _, j := range m.jobs {
		if j.state == StateQueued {
			queued++
		}
	}
	if queued >= m.cfg.MaxQueued {
		m.mu.Unlock()
		return nil, ErrQueueFull
	}
	id := fmt.Sprintf("job-%06d", m.nextID)
	if err := m.appendLocked(&record{Type: recSubmit, ID: id, Spec: spec}); err != nil {
		m.storageDegraded.Store(true)
		m.mu.Unlock()
		return nil, &StorageError{Err: err}
	}
	m.nextID++
	j := &job{
		id:          id,
		spec:        spec,
		state:       StateQueued,
		maxAttempts: m.maxAttemptsOf(spec),
		deadline:    m.deadlineOf(spec),
		submittedAt: time.Now().UTC(),
	}
	m.jobs[id] = j
	m.enqueueLocked(id)
	snap := m.snapshotLocked(j)
	m.maybeCompactLocked()
	m.mu.Unlock()
	m.cond.Signal()
	m.cfg.Logf("jobs: %s submitted (%s on %q)", id, spec.Type, spec.Session)
	return snap, nil
}

// Get returns one job's status snapshot, or ErrNotFound.
func (m *Manager) Get(id string) (*report.JobJSON, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return m.snapshotLocked(j), nil
}

// List returns every retained job's status, sorted by ID (IDs are
// zero-padded, so lexical order is submission order).
func (m *Manager) List() []report.JobJSON {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	out := make([]report.JobJSON, 0, len(ids))
	for _, id := range ids {
		out = append(out, *m.snapshotLocked(m.jobs[id]))
	}
	return out
}

// Cancel requests a job's cancellation. The intent is journaled before
// the call returns (a crash after the ack must not resurrect the job as
// runnable): a queued job finalizes canceled immediately, a running job
// has its attempt context cancelled and finalizes when the executor
// returns. Canceling an already-canceled job is idempotent; canceling a
// done/failed job returns ErrTerminal.
func (m *Manager) Cancel(id string) (*report.JobJSON, error) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.state == StateCanceled {
		snap := m.snapshotLocked(j)
		m.mu.Unlock()
		return snap, nil
	}
	if j.state.Terminal() {
		snap := m.snapshotLocked(j)
		m.mu.Unlock()
		return snap, ErrTerminal
	}
	if j.cancelRequested {
		snap := m.snapshotLocked(j)
		m.mu.Unlock()
		return snap, nil
	}
	var final bool
	if j.state == StateQueued {
		// Not yet claimed (or parked between retry attempts): the
		// terminal record can land right now.
		if err := m.appendLocked(&record{Type: recCanceled, ID: id}); err != nil {
			m.storageDegraded.Store(true)
			m.mu.Unlock()
			return nil, &StorageError{Err: err}
		}
		j.cancelRequested = true
		m.finalizeLocked(j, StateCanceled, "", false, nil)
		final = true
	} else {
		if err := m.appendLocked(&record{Type: recCancel, ID: id}); err != nil {
			m.storageDegraded.Store(true)
			m.mu.Unlock()
			return nil, &StorageError{Err: err}
		}
		j.cancelRequested = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	snap := m.snapshotLocked(j)
	m.mu.Unlock()
	if final {
		m.notifyFinal(id, StateCanceled)
	}
	m.cfg.Logf("jobs: %s cancel requested", id)
	return snap, nil
}

// Metrics is a point-in-time gauge/counter snapshot for /metrics and
// /readyz.
type Metrics struct {
	Queued          int
	Running         int
	Done            uint64
	Failed          uint64
	Canceled        uint64
	Quarantined     uint64
	StorageDegraded bool
}

// MetricsSnapshot collects the current job gauges and counters.
func (m *Manager) MetricsSnapshot() Metrics {
	m.mu.Lock()
	var queued, running int
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	m.mu.Unlock()
	return Metrics{
		Queued:          queued,
		Running:         running,
		Done:            m.doneTotal.Load(),
		Failed:          m.failedTotal.Load(),
		Canceled:        m.canceledTotal.Load(),
		Quarantined:     m.quarantinedN.Load(),
		StorageDegraded: m.storageDegraded.Load(),
	}
}

// Close drains the pool: no new attempts start, running attempts are
// cancelled through their contexts (iterate jobs have round-boundary
// checkpoints, so nothing of value is lost), and a "requeue" record
// refunds each interrupted attempt so a clean shutdown never burns the
// retry budget. Blocks until the workers exit or budget elapses.
func (m *Manager) Close(budget time.Duration) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.baseCancel()
	m.cond.Broadcast()
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(budget):
		m.cfg.Logf("jobs: drain budget %s exceeded; abandoning worker wait", budget)
	}
	m.mu.Lock()
	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
	m.mu.Unlock()
}

// --- worker pool ------------------------------------------------------

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		j := m.next()
		if j == nil {
			return
		}
		m.runJob(j)
		m.releaseSlot(j.spec.Tenant)
	}
}

// next blocks for the next claimable job, or nil at shutdown. A job is
// claimable when its tenant is under TenantCap; claiming charges the
// tenant's running slot for the whole runJob (including retry backoffs
// — the worker is occupied either way), released by releaseSlot.
func (m *Manager) next() *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if m.closed {
			return nil
		}
		if j := m.popLocked(); j != nil {
			return j
		}
		m.cond.Wait()
	}
}

// popLocked claims the next runnable job round-robin across tenants,
// dropping stale queue entries (canceled or pruned while waiting) and
// skipping tenants at their running cap. Callers hold m.mu.
func (m *Manager) popLocked() *job {
	scanned := 0
	for scanned < len(m.ring) {
		if m.rr >= len(m.ring) {
			m.rr = 0
		}
		t := m.ring[m.rr]
		q := m.queues[t]
		for len(q) > 0 {
			if j := m.jobs[q[0]]; j != nil && j.state == StateQueued {
				break
			}
			q = q[1:]
		}
		if len(q) == 0 {
			// Only stale entries remained: drop the tenant's ring slot
			// without advancing rr (the next tenant slides into this
			// index) and without counting it as scanned.
			delete(m.queues, t)
			m.ring = append(m.ring[:m.rr], m.ring[m.rr+1:]...)
			continue
		}
		m.queues[t] = q
		if m.runningBy[t] >= m.cfg.TenantCap {
			m.rr = (m.rr + 1) % len(m.ring)
			scanned++
			continue
		}
		j := m.jobs[q[0]]
		if len(q) == 1 {
			delete(m.queues, t)
			m.ring = append(m.ring[:m.rr], m.ring[m.rr+1:]...)
			if len(m.ring) > 0 {
				m.rr %= len(m.ring)
			}
		} else {
			m.queues[t] = q[1:]
			m.rr = (m.rr + 1) % len(m.ring)
		}
		m.runningBy[t]++
		return j
	}
	return nil
}

// enqueueLocked appends a queued job to its tenant's queue, registering
// the tenant in the dispatch ring on its first entry. Callers hold m.mu.
func (m *Manager) enqueueLocked(id string) {
	tenant := ""
	if j := m.jobs[id]; j != nil {
		tenant = j.spec.Tenant
	}
	if len(m.queues[tenant]) == 0 {
		m.ring = append(m.ring, tenant)
	}
	m.queues[tenant] = append(m.queues[tenant], id)
}

// releaseSlot returns a tenant's running slot and wakes a waiting
// worker — the release may make a previously capped tenant's queued
// jobs claimable even though nothing new was enqueued.
func (m *Manager) releaseSlot(tenant string) {
	m.mu.Lock()
	if n := m.runningBy[tenant] - 1; n > 0 {
		m.runningBy[tenant] = n
	} else {
		delete(m.runningBy, tenant)
	}
	m.mu.Unlock()
	m.cond.Signal()
}

// runJob drives one job through its attempt loop to a terminal state —
// or parks it back to queued when the manager drains mid-attempt.
func (m *Manager) runJob(j *job) {
	for {
		m.mu.Lock()
		if j.state != StateQueued || m.closed {
			// Canceled between claim and start, or drain began: a queued
			// job's journal state already replays to queued.
			m.mu.Unlock()
			return
		}
		attempt := j.attempts + 1
		// The start record lands BEFORE the attempt runs, so a process
		// death mid-attempt still consumes the attempt on replay — the
		// poison-quarantine counter survives crashes. An append failure
		// here is logged and the attempt runs anyway: refusing work
		// because bookkeeping failed would turn a sick disk into a dead
		// queue.
		if err := m.appendLocked(&record{Type: recStart, ID: j.id, Attempt: attempt}); err != nil {
			m.storageDegraded.Store(true)
			m.cfg.Logf("jobs: %s attempt %d not journaled (running anyway): %v", j.id, attempt, err)
		}
		j.attempts = attempt
		j.state = StateRunning
		j.startedAt = time.Now().UTC()
		jctx, cancel := context.WithCancel(m.baseCtx)
		j.cancel = cancel
		deadline := j.deadline
		m.mu.Unlock()

		actx, acancel := jctx, context.CancelFunc(func() {})
		if deadline > 0 {
			actx, acancel = context.WithTimeout(jctx, deadline)
		}
		result, degraded, err, panicked := m.safeExec(actx, j, attempt)
		deadlineHit := actx.Err() == context.DeadlineExceeded
		acancel()
		cancel()

		m.mu.Lock()
		j.cancel = nil
		canceled := j.cancelRequested
		draining := m.closed || m.baseCtx.Err() != nil

		switch {
		case canceled && (err != nil || degraded):
			// Any failure after a cancel request is attributed to the
			// cancel; a fully successful result still wins below.
			m.finalizeLocked(j, StateCanceled, "", false, nil)
			m.mu.Unlock()
			m.notifyFinal(j.id, StateCanceled)
			return
		case err == nil && !degraded:
			m.finalizeLocked(j, StateDone, "", false, result)
			m.mu.Unlock()
			m.notifyFinal(j.id, StateDone)
			return
		case draining && err != nil && !IsPermanent(err):
			// The drain cancelled the attempt; refund it so a clean
			// shutdown costs no retry budget. Replay of start+requeue
			// nets out to a queued job.
			if aerr := m.appendLocked(&record{Type: recRequeue, ID: j.id, Attempt: attempt}); aerr != nil {
				m.storageDegraded.Store(true)
				m.cfg.Logf("jobs: %s requeue not journaled (replay will count the attempt): %v", j.id, aerr)
			}
			j.attempts--
			j.state = StateQueued
			m.mu.Unlock()
			return
		}

		// A failed attempt: classify, record the diagnostic, then retry,
		// quarantine, or fail.
		stage := "error"
		switch {
		case panicked:
			stage = "panic"
		case err == nil && degraded:
			stage = "degraded"
		case deadlineHit:
			stage = "deadline"
		}
		msg := "engine degraded the analysis"
		if err != nil {
			msg = err.Error()
		}
		diag := report.JobDiagJSON{
			Attempt: attempt,
			Stage:   stage,
			Error:   msg,
			Time:    time.Now().UTC().Format(time.RFC3339Nano),
		}
		j.diags = append(j.diags, diag)
		if aerr := m.appendLocked(&record{Type: recAttempt, ID: j.id, Attempt: attempt, Stage: stage, Error: msg}); aerr != nil {
			m.storageDegraded.Store(true)
			m.cfg.Logf("jobs: %s attempt diag not journaled: %v", j.id, aerr)
		}

		if IsPermanent(err) {
			m.finalizeLocked(j, StateFailed, msg, false, nil)
			m.mu.Unlock()
			m.notifyFinal(j.id, StateFailed)
			return
		}
		if j.attempts >= j.maxAttempts {
			// Out of budget. Panic and degraded outcomes mark the job as
			// poison — quarantined so operators can tell "this job broke
			// the engine" from "this job just kept failing". A degraded
			// last result is retained as evidence.
			quarantine := stage == "panic" || stage == "degraded"
			var keep json.RawMessage
			if stage == "degraded" {
				keep = result
			}
			m.finalizeLocked(j, StateFailed,
				fmt.Sprintf("%s on attempt %d/%d: %s", stage, attempt, j.maxAttempts, msg),
				quarantine, keep)
			m.mu.Unlock()
			m.notifyFinal(j.id, StateFailed)
			return
		}
		// Park as queued during the backoff: a Cancel in this window
		// takes the immediate queued path, and the loop's state check
		// honors it.
		j.state = StateQueued
		backoff := m.backoffFor(j.attempts)
		m.mu.Unlock()
		m.cfg.Logf("jobs: %s attempt %d/%d failed (%s): %s; retrying in %s", j.id, attempt, j.maxAttempts, stage, msg, backoff)
		select {
		case <-time.After(backoff):
		case <-m.baseCtx.Done():
			// Drain during backoff: the attempt was genuinely spent; the
			// journal already replays this job to queued.
			return
		}
	}
}

// safeExec runs one attempt under the recover barrier: a panicking
// executor (or fault hook) kills the attempt, not the worker.
func (m *Manager) safeExec(ctx context.Context, j *job, attempt int) (result json.RawMessage, degraded bool, err error, panicked bool) {
	defer func() {
		if p := recover(); p != nil {
			result, degraded = nil, false
			err = fmt.Errorf("job executor panicked: %v", p)
			panicked = true
		}
	}()
	if m.cfg.Fault != nil {
		d, ferr := m.cfg.Fault(ctx, j.spec.Type)
		if ferr != nil {
			return nil, d, ferr, false
		}
		degraded = d
	}
	res, d, err := m.cfg.Exec(ctx, j.id, j.spec, attempt)
	return res, degraded || d, err, false
}

// backoffFor is the exponential retry delay: Backoff × 2^(attempts-1),
// capped at 16× so a long budget cannot stall the worker for minutes.
func (m *Manager) backoffFor(attempts int) time.Duration {
	d := m.cfg.Backoff
	for i := 1; i < attempts && d < 16*m.cfg.Backoff; i++ {
		d *= 2
	}
	if d > 16*m.cfg.Backoff {
		d = 16 * m.cfg.Backoff
	}
	return d
}

// finalizeLocked journals and applies a terminal transition. The append
// is fail-soft: the work already happened, and the state is preserved
// in memory even when the disk refuses the record (the next boot may
// then re-run the job — re-running a completed analysis is idempotent
// by the engine's determinism oracle, while losing an acknowledged
// result would not be).
func (m *Manager) finalizeLocked(j *job, state State, errMsg string, quarantined bool, result json.RawMessage) {
	var typ string
	switch state {
	case StateDone:
		typ = recDone
	case StateCanceled:
		typ = recCanceled
	default:
		typ = recFail
	}
	rec := &record{Type: typ, ID: j.id, Error: errMsg, Quarantined: quarantined, Result: result}
	if state == StateDone {
		rec.Result = result
	}
	if err := m.appendLocked(rec); err != nil {
		m.storageDegraded.Store(true)
		m.cfg.Logf("jobs: %s %s record not journaled: %v", j.id, typ, err)
	}
	j.state = state
	j.errMsg = errMsg
	j.quarantined = quarantined
	if result != nil {
		j.result = result
	}
	j.finishedAt = time.Now().UTC()
	switch state {
	case StateDone:
		m.doneTotal.Add(1)
	case StateCanceled:
		m.canceledTotal.Add(1)
	default:
		m.failedTotal.Add(1)
		if quarantined {
			m.quarantinedN.Add(1)
		}
	}
	m.maybeCompactLocked()
	m.cfg.Logf("jobs: %s -> %s%s", j.id, state, map[bool]string{true: " (quarantined)", false: ""}[quarantined])
}

// notifyFinal runs the OnFinal callback outside the manager lock.
func (m *Manager) notifyFinal(id string, state State) {
	if m.cfg.OnFinal != nil {
		m.cfg.OnFinal(id, state)
	}
}

// --- resolved knobs and snapshots -------------------------------------

func (m *Manager) maxAttemptsOf(s *Spec) int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return m.cfg.DefaultMaxAttempts
}

func (m *Manager) deadlineOf(s *Spec) time.Duration {
	if s.Deadline != "" {
		if d, err := time.ParseDuration(s.Deadline); err == nil && d > 0 {
			return d
		}
	}
	return m.cfg.DefaultDeadline
}

func (m *Manager) snapshotLocked(j *job) *report.JobJSON {
	out := &report.JobJSON{
		ID:              j.id,
		Session:         j.spec.Session,
		Type:            j.spec.Type,
		Tenant:          j.spec.Tenant,
		State:           string(j.state),
		Attempts:        j.attempts,
		MaxAttempts:     j.maxAttempts,
		Error:           j.errMsg,
		Quarantined:     j.quarantined,
		Deadline:        j.deadline.String(),
		CancelRequested: j.cancelRequested && !j.state.Terminal(),
		Result:          j.result,
	}
	if len(j.diags) > 0 {
		out.Diags = append([]report.JobDiagJSON(nil), j.diags...)
	}
	if !j.submittedAt.IsZero() {
		out.SubmittedAt = j.submittedAt.Format(time.RFC3339Nano)
	}
	if !j.startedAt.IsZero() {
		out.StartedAt = j.startedAt.Format(time.RFC3339Nano)
	}
	if !j.finishedAt.IsZero() {
		out.FinishedAt = j.finishedAt.Format(time.RFC3339Nano)
	}
	return out
}

// sortStrings is the repo's tiny insertion sort (stdlib-only dependency
// discipline for small call sites).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
