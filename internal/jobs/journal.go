package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/report"
	"repro/internal/wal"
)

// The job journal is a single append-only WAL (jobs.wal) of state
// transitions, periodically rewritten in place (atomic replace) from
// live state instead of the session store's generation dance — one job
// file keeps recovery simple, and compaction already runs under the
// manager lock.
//
// Record types, in lifecycle order:
//
//	submit    {id, spec}            the durable ack behind POST /v1/jobs
//	start     {id, attempt}         appended BEFORE an attempt runs, so a
//	                                crash mid-attempt still consumes it
//	attempt   {id, attempt, stage,  a failed attempt's diagnostic
//	           error}
//	requeue   {id, attempt}         a drain interrupted the attempt; it
//	                                is refunded (replay decrements)
//	cancel    {id}                  cancel intent (journaled before the
//	                                DELETE ack; the terminal record follows
//	                                when the attempt unwinds)
//	done      {id, result}          terminal: success, with the payload
//	fail      {id, error,           terminal: retries exhausted or
//	           quarantined}         permanent failure
//	canceled  {id}                  terminal: cancel completed
//	job       {job}                 a full snapshot, written by compaction
//	meta      {nextId}              the ID counter, so pruning terminal
//	                                jobs never reuses their IDs
const (
	recSubmit   = "submit"
	recStart    = "start"
	recAttempt  = "attempt"
	recRequeue  = "requeue"
	recCancel   = "cancel"
	recDone     = "done"
	recFail     = "fail"
	recCanceled = "canceled"
	recJob      = "job"
	recMeta     = "meta"
)

const (
	journalFile   = "jobs.wal"
	quarantineDir = "quarantine"
)

// record is one journaled job event. Seq is monotonic within the file;
// replay quarantines out-of-order records the way the session journal
// does.
type record struct {
	Seq         uint64          `json:"seq"`
	Type        string          `json:"type"`
	ID          string          `json:"id,omitempty"`
	Spec        *Spec           `json:"spec,omitempty"`
	Attempt     int             `json:"attempt,omitempty"`
	Stage       string          `json:"stage,omitempty"`
	Error       string          `json:"error,omitempty"`
	Quarantined bool            `json:"quarantined,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	Job         *jobSnapshot    `json:"job,omitempty"`
	NextID      uint64          `json:"nextId,omitempty"`
	Time        string          `json:"time,omitempty"`
}

// jobSnapshot is a job's full durable state, used by compaction to
// collapse a record chain into one frame.
type jobSnapshot struct {
	ID              string               `json:"id"`
	Spec            *Spec                `json:"spec"`
	State           State                `json:"state"`
	Attempts        int                  `json:"attempts"`
	Diags           []report.JobDiagJSON `json:"diags,omitempty"`
	Error           string               `json:"error,omitempty"`
	Quarantined     bool                 `json:"quarantined,omitempty"`
	Result          json.RawMessage      `json:"result,omitempty"`
	CancelRequested bool                 `json:"cancelRequested,omitempty"`
	SubmittedAt     string               `json:"submittedAt,omitempty"`
	StartedAt       string               `json:"startedAt,omitempty"`
	FinishedAt      string               `json:"finishedAt,omitempty"`
}

func (m *Manager) journalPath() string { return filepath.Join(m.dir, journalFile) }

// appendLocked journals one record: assign the next sequence number,
// stamp, frame, append, fsync. Callers decide whether a failure is
// fatal to their operation (submit/cancel: yes, the ack is refused) or
// fail-soft (attempt bookkeeping: the work proceeds). The sequence
// number is burned even on failure so a partially-written frame can
// never collide with a later successful one. Memory-only managers
// (no Dir) treat every append as a success.
func (m *Manager) appendLocked(rec *record) error {
	if m.dir == "" {
		return nil
	}
	if m.journal == nil {
		return fmt.Errorf("job journal is closed")
	}
	m.seq++
	rec.Seq = m.seq
	rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("encoding %s record: %w", rec.Type, err)
	}
	if err := m.journal.Append(payload); err != nil {
		return err
	}
	m.recordsSinceCompact++
	return nil
}

// replay rebuilds in-memory job state from the journal. It never
// refuses the boot for bad content: torn tails are truncated away (the
// crash signature), corrupt tails are quarantined with a reason
// sidecar and then truncated, and records that don't decode or apply
// are quarantined individually. Only a structurally unusable file
// (unreadable, untruncatable) fails Open.
func (m *Manager) replay() error {
	path := m.journalPath()
	scan, err := wal.Scan(path)
	if err != nil {
		return fmt.Errorf("jobs: scanning journal: %w", err)
	}
	var lastSeq uint64
	for i, payload := range scan.Frames {
		var rec record
		if derr := json.Unmarshal(payload, &rec); derr != nil {
			m.quarantineRecord(i, payload, fmt.Sprintf("undecodable record: %v", derr))
			continue
		}
		if rec.Seq <= lastSeq {
			m.quarantineRecord(i, payload, fmt.Sprintf("out-of-order record: seq %d after %d", rec.Seq, lastSeq))
			continue
		}
		lastSeq = rec.Seq
		if aerr := m.applyRecord(&rec); aerr != nil {
			m.quarantineRecord(i, payload, aerr.Error())
		}
	}
	m.seq = lastSeq
	if scan.Torn || scan.Corrupt != "" {
		// The tail is unreadable past GoodOffset. A torn tail is the
		// normal crash signature and is silently dropped; a corrupt tail
		// is preserved in quarantine before truncation so the evidence
		// survives.
		if scan.Corrupt != "" {
			m.quarantineTail(path, scan.GoodOffset, scan.Corrupt)
		} else {
			m.cfg.Logf("jobs: journal has a torn tail at offset %d (crash mid-append); truncating", scan.GoodOffset)
		}
		if terr := os.Truncate(path, scan.GoodOffset); terr != nil {
			return fmt.Errorf("jobs: truncating journal tail: %w", terr)
		}
	}
	// IDs never regress even when compaction pruned the jobs that used
	// them.
	for id := range m.jobs {
		var n uint64
		if _, serr := fmt.Sscanf(id, "job-%d", &n); serr == nil && n >= m.nextID {
			m.nextID = n + 1
		}
	}
	return nil
}

// applyRecord folds one journal record into the in-memory job table.
// Returned errors mean the record was unreplayable (the caller
// quarantines it); they never abort the replay.
func (m *Manager) applyRecord(rec *record) error {
	switch rec.Type {
	case recMeta:
		if rec.NextID > m.nextID {
			m.nextID = rec.NextID
		}
		return nil
	case recJob:
		s := rec.Job
		if s == nil || s.ID == "" || s.Spec == nil {
			return fmt.Errorf("job snapshot record missing id or spec")
		}
		if err := s.Spec.Validate(); err != nil {
			return fmt.Errorf("unreplayable job spec for %s: %v", s.ID, err)
		}
		j := &job{
			id:              s.ID,
			spec:            s.Spec,
			state:           s.State,
			attempts:        s.Attempts,
			maxAttempts:     m.maxAttemptsOf(s.Spec),
			deadline:        m.deadlineOf(s.Spec),
			diags:           s.Diags,
			errMsg:          s.Error,
			quarantined:     s.Quarantined,
			result:          s.Result,
			cancelRequested: s.CancelRequested,
			submittedAt:     parseTime(s.SubmittedAt),
			startedAt:       parseTime(s.StartedAt),
			finishedAt:      parseTime(s.FinishedAt),
		}
		m.jobs[s.ID] = j
		return nil
	case recSubmit:
		if rec.ID == "" || rec.Spec == nil {
			return fmt.Errorf("submit record missing id or spec")
		}
		if err := rec.Spec.Validate(); err != nil {
			// A spec that journaled but no longer validates can never
			// execute; quarantining beats an eternal retry loop.
			return fmt.Errorf("unreplayable job spec for %s: %v", rec.ID, err)
		}
		m.jobs[rec.ID] = &job{
			id:          rec.ID,
			spec:        rec.Spec,
			state:       StateQueued,
			maxAttempts: m.maxAttemptsOf(rec.Spec),
			deadline:    m.deadlineOf(rec.Spec),
			submittedAt: parseTime(rec.Time),
		}
		return nil
	}

	j := m.jobs[rec.ID]
	if j == nil {
		return fmt.Errorf("%s record for unknown job %q", rec.Type, rec.ID)
	}
	switch rec.Type {
	case recStart:
		j.attempts = rec.Attempt
		j.state = StateRunning
		j.startedAt = parseTime(rec.Time)
	case recAttempt:
		j.diags = append(j.diags, report.JobDiagJSON{
			Attempt: rec.Attempt,
			Stage:   rec.Stage,
			Error:   rec.Error,
			Time:    rec.Time,
		})
		// The attempt concluded; until a new start record the job is
		// retry-pending, i.e. queued.
		j.state = StateQueued
	case recRequeue:
		// A drain interrupted the attempt cooperatively; refund it.
		if j.attempts > 0 {
			j.attempts--
		}
		j.state = StateQueued
	case recCancel:
		j.cancelRequested = true
	case recDone:
		j.state = StateDone
		j.result = rec.Result
		j.finishedAt = parseTime(rec.Time)
	case recFail:
		j.state = StateFailed
		j.errMsg = rec.Error
		j.quarantined = rec.Quarantined
		if len(rec.Result) > 0 {
			j.result = rec.Result
		}
		j.finishedAt = parseTime(rec.Time)
	case recCanceled:
		j.state = StateCanceled
		j.cancelRequested = true
		j.finishedAt = parseTime(rec.Time)
	default:
		return fmt.Errorf("unknown record type %q", rec.Type)
	}
	return nil
}

// recoverInterrupted normalizes post-replay state: every non-terminal
// job either re-enqueues or — when the process death itself exhausted
// the attempt budget — quarantines as a poison job. Runs after the
// journal writer reopens so the decisions are themselves journaled.
func (m *Manager) recoverInterrupted() {
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	var finals []string
	for _, id := range ids {
		j := m.jobs[id]
		if j.state.Terminal() {
			continue
		}
		if j.state == StateRunning {
			// The process died mid-attempt: the start record consumed the
			// attempt; record what happened to it.
			diag := report.JobDiagJSON{
				Attempt: j.attempts,
				Stage:   "interrupted",
				Error:   "process exited mid-attempt",
				Time:    time.Now().UTC().Format(time.RFC3339Nano),
			}
			j.diags = append(j.diags, diag)
			if err := m.appendLocked(&record{Type: recAttempt, ID: id, Attempt: j.attempts, Stage: diag.Stage, Error: diag.Error}); err != nil {
				m.storageDegraded.Store(true)
				m.cfg.Logf("jobs: %s interrupted diag not journaled: %v", id, err)
			}
		}
		switch {
		case j.cancelRequested:
			// Cancel intent was durable but the terminal record was not;
			// honor the intent.
			m.finalizeLocked(j, StateCanceled, "", false, nil)
			finals = append(finals, id)
		case j.attempts >= j.maxAttempts:
			// Every budgeted attempt died with the process — the poison
			// signature a recover barrier can't catch.
			m.finalizeLocked(j, StateFailed,
				fmt.Sprintf("interrupted by process exit on attempt %d/%d", j.attempts, j.maxAttempts),
				true, nil)
			finals = append(finals, id)
		default:
			if j.attempts > 0 {
				m.bootRequeued++
			}
			j.state = StateQueued
			m.enqueueLocked(id)
			m.cfg.Logf("jobs: %s re-enqueued after restart (attempt %d/%d)", id, j.attempts, j.maxAttempts)
		}
	}
	for _, id := range finals {
		m.notifyFinal(id, m.jobs[id].state)
	}
}

// maybeCompactLocked rewrites the journal once enough records
// accumulate. Failures are logged and retried at the next append — the
// existing journal stays authoritative throughout.
func (m *Manager) maybeCompactLocked() {
	if m.dir == "" || m.recordsSinceCompact < m.cfg.CompactEvery {
		return
	}
	m.compactLocked()
}

// compactLocked rewrites the journal as one snapshot record per
// retained job (atomic replace), pruning all but the newest KeepDone
// terminal jobs. The rename is the commit point: a crash on either
// side leaves a fully consistent journal.
func (m *Manager) compactLocked() {
	if m.dir == "" {
		return
	}
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sortStrings(ids)
	// Prune oldest terminal jobs past the retention bound (IDs sort in
	// submission order, so walking back from the end keeps the newest).
	keep := make(map[string]bool, len(ids))
	terminal := 0
	for i := len(ids) - 1; i >= 0; i-- {
		j := m.jobs[ids[i]]
		if !j.state.Terminal() {
			keep[ids[i]] = true
			continue
		}
		if terminal < m.cfg.KeepDone {
			keep[ids[i]] = true
			terminal++
		}
	}

	var buf []byte
	var seq uint64
	frame := func(rec *record) bool {
		seq++
		rec.Seq = seq
		payload, err := json.Marshal(rec)
		if err != nil {
			m.cfg.Logf("jobs: compaction skipped: encoding: %v", err)
			return false
		}
		buf = append(buf, wal.Frame(payload)...)
		return true
	}
	if !frame(&record{Type: recMeta, NextID: m.nextID, Time: time.Now().UTC().Format(time.RFC3339Nano)}) {
		return
	}
	for _, id := range ids {
		if !keep[id] {
			continue
		}
		j := m.jobs[id]
		snap := &jobSnapshot{
			ID:              j.id,
			Spec:            j.spec,
			State:           j.state,
			Attempts:        j.attempts,
			Diags:           j.diags,
			Error:           j.errMsg,
			Quarantined:     j.quarantined,
			Result:          j.result,
			CancelRequested: j.cancelRequested,
			SubmittedAt:     fmtTime(j.submittedAt),
			StartedAt:       fmtTime(j.startedAt),
			FinishedAt:      fmtTime(j.finishedAt),
		}
		if !frame(&record{Type: recJob, Job: snap}) {
			return
		}
	}

	if m.journal != nil {
		m.journal.Close()
		m.journal = nil
	}
	path := m.journalPath()
	if err := wal.WriteFileAtomic(path, buf, m.cfg.Hooks); err != nil {
		// The old journal is intact (rename is all-or-nothing) and its
		// tail holds sequence numbers past this snapshot's: reopen it and
		// keep appending in the OLD sequence space. Resetting m.seq (or
		// the compaction counter, or pruning jobs) here would hand later
		// fsync-acked records seqs at or below the file's last one, and
		// the next boot's replay would quarantine them as out-of-order —
		// a lost ack.
		m.storageDegraded.Store(true)
		m.cfg.Logf("jobs: compaction failed (will retry): %v", err)
		w, werr := wal.OpenWriter(path, m.cfg.Hooks)
		if werr != nil {
			m.cfg.Logf("jobs: reopening journal after failed compaction: %v", werr)
			return
		}
		m.journal = w
		return
	}
	// The rename committed: the snapshot is the journal now, and only now
	// do the new sequence space and the retention pruning take effect.
	m.seq = seq
	m.recordsSinceCompact = 0
	for _, id := range ids {
		if !keep[id] {
			delete(m.jobs, id)
		}
	}
	w, err := wal.OpenWriter(path, m.cfg.Hooks)
	if err != nil {
		m.storageDegraded.Store(true)
		m.cfg.Logf("jobs: reopening journal after compaction: %v", err)
		return
	}
	m.journal = w
}

// quarantineRecord preserves an unreplayable journal record with a
// reason sidecar, mirroring the session store's quarantine layout.
func (m *Manager) quarantineRecord(idx int, payload []byte, reason string) {
	m.bootQuarantined++
	m.cfg.Logf("jobs: quarantining journal record %d: %s", idx, reason)
	base := filepath.Join(m.dir, quarantineDir, fmt.Sprintf("jobs-rec-%d", idx))
	if err := os.WriteFile(base+".rec", payload, 0o644); err != nil {
		m.cfg.Logf("jobs: quarantine write failed: %v", err)
		return
	}
	meta, _ := json.MarshalIndent(map[string]string{
		"reason": reason,
		"time":   time.Now().UTC().Format(time.RFC3339Nano),
	}, "", "  ")
	if err := os.WriteFile(base+".reason.json", meta, 0o644); err != nil {
		m.cfg.Logf("jobs: quarantine reason write failed: %v", err)
	}
}

// quarantineTail preserves the unreadable bytes past goodOff before the
// journal is truncated under them.
func (m *Manager) quarantineTail(path string, goodOff int64, reason string) {
	m.bootQuarantined++
	m.cfg.Logf("jobs: quarantining corrupt journal tail at offset %d: %s", goodOff, reason)
	data, err := os.ReadFile(path)
	if err != nil || goodOff >= int64(len(data)) {
		return
	}
	base := filepath.Join(m.dir, quarantineDir, fmt.Sprintf("jobs-tail-%d", goodOff))
	if err := os.WriteFile(base+".bin", data[goodOff:], 0o644); err != nil {
		m.cfg.Logf("jobs: quarantine write failed: %v", err)
		return
	}
	meta, _ := json.MarshalIndent(map[string]string{
		"reason": reason,
		"offset": fmt.Sprintf("%d", goodOff),
		"time":   time.Now().UTC().Format(time.RFC3339Nano),
	}, "", "  ")
	if err := os.WriteFile(base+".reason.json", meta, 0o644); err != nil {
		m.cfg.Logf("jobs: quarantine reason write failed: %v", err)
	}
}

func parseTime(s string) time.Time {
	if s == "" {
		return time.Time{}
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}
	}
	return t
}

func fmtTime(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.Format(time.RFC3339Nano)
}
