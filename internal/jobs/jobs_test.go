package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/report"
	"repro/internal/wal"
	"repro/internal/workload"
)

// okExec is an executor that immediately succeeds with a canned result.
func okExec(calls *atomic.Int64) Executor {
	return func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		if calls != nil {
			calls.Add(1)
		}
		return json.RawMessage(`{"ok":true}`), false, nil
	}
}

func openManager(t *testing.T, dir string, exec Executor, mutate ...func(*Config)) *Manager {
	t.Helper()
	cfg := Config{
		Dir:     dir,
		Workers: 2,
		Backoff: time.Millisecond,
		Exec:    exec,
		Logf:    t.Logf,
	}
	for _, fn := range mutate {
		fn(&cfg)
	}
	m, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { m.Close(2 * time.Second) })
	return m
}

func submit(t *testing.T, m *Manager, spec *Spec) string {
	t.Helper()
	snap, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return snap.ID
}

// waitState polls until the job reaches state (or any terminal state if
// state is empty), failing the test after a generous deadline.
func waitState(t *testing.T, m *Manager, id string, state State) *report.JobJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if (state == "" && snap.Terminal()) || snap.State == string(state) {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %+v", id, snap.State, state, snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	var calls atomic.Int64
	m := openManager(t, t.TempDir(), okExec(&calls))
	id := submit(t, m, &Spec{Session: "s1", Type: "analyze"})
	if id != "job-000001" {
		t.Fatalf("first job ID = %q", id)
	}
	snap := waitState(t, m, id, StateDone)
	if calls.Load() != 1 || snap.Attempts != 1 || string(snap.Result) != `{"ok":true}` {
		t.Fatalf("done snapshot = %+v (calls %d)", snap, calls.Load())
	}
	if snap.SubmittedAt == "" || snap.StartedAt == "" || snap.FinishedAt == "" {
		t.Fatalf("missing lifecycle timestamps: %+v", snap)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []*Spec{
		{Type: "analyze"},                                 // no session
		{Session: "s", Type: "bogus"},                     // unknown type
		{Session: "s", Type: "reanalyze"},                 // no padding
		{Session: "s", Type: "sweep"},                     // no points
		{Session: "s", Type: "analyze", Deadline: "soon"}, // bad duration
		{Session: "s", Type: "analyze", Deadline: "-5s"},  // negative
		{Session: "s", Type: "analyze", MaxAttempts: -1},  // negative
		{Session: "s", Type: "reanalyze", Padding: map[string]float64{"b1": -1}},
		{Session: "s", Type: "reanalyze", Padding: map[string]float64{"b1": math.Inf(1)}},
		{Session: "s", Type: "sweep", Sweep: []SweepPoint{{Threshold: math.NaN()}}},
		{Session: "s", Type: "sweep", Sweep: []SweepPoint{{Threshold: math.Inf(1)}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d unexpectedly valid: %+v", i, s)
		}
	}
	good := &Spec{Session: "s", Type: "iterate", MaxRounds: 5, Deadline: "90s", MaxAttempts: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-release
		return nil, false, nil
	}, func(c *Config) { c.Workers = 1; c.MaxQueued = 2 })
	defer close(release)

	first := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m, first, StateRunning)
	submit(t, m, &Spec{Session: "s", Type: "analyze"})
	submit(t, m, &Spec{Session: "s", Type: "analyze"})
	if _, err := m.Submit(&Spec{Session: "s", Type: "analyze"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: want ErrQueueFull, got %v", err)
	}
}

func TestRetryThenSuccess(t *testing.T) {
	var calls atomic.Int64
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		if calls.Add(1) == 1 {
			return nil, false, fmt.Errorf("transient wobble")
		}
		return json.RawMessage(`{"ok":true}`), false, nil
	})
	id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	snap := waitState(t, m, id, StateDone)
	if snap.Attempts != 2 || len(snap.Diags) != 1 || snap.Diags[0].Stage != "error" {
		t.Fatalf("retried snapshot = %+v", snap)
	}
}

func TestPermanentErrorFailsFast(t *testing.T) {
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		return nil, false, Permanent(fmt.Errorf("no such session"))
	})
	id := submit(t, m, &Spec{Session: "ghost", Type: "analyze"})
	snap := waitState(t, m, id, StateFailed)
	if snap.Attempts != 1 || snap.Quarantined || !strings.Contains(snap.Error, "no such session") {
		t.Fatalf("permanent failure snapshot = %+v", snap)
	}
}

// A job that panics every attempt must land in quarantine with per-attempt
// Diags — and the worker pool must survive to run the next job.
func TestPanicPoisonQuarantine(t *testing.T) {
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		if spec.Session == "poison" {
			panic("boom " + fmt.Sprint(attempt))
		}
		return json.RawMessage(`{}`), false, nil
	})
	id := submit(t, m, &Spec{Session: "poison", Type: "analyze", MaxAttempts: 2})
	snap := waitState(t, m, id, StateFailed)
	if !snap.Quarantined || len(snap.Diags) != 2 {
		t.Fatalf("poison snapshot = %+v", snap)
	}
	for i, d := range snap.Diags {
		if d.Stage != "panic" || !strings.Contains(d.Error, "boom") {
			t.Fatalf("diag %d = %+v", i, d)
		}
	}
	// The pool survived the panics.
	good := submit(t, m, &Spec{Session: "fine", Type: "analyze"})
	waitState(t, m, good, StateDone)
	mm := m.MetricsSnapshot()
	if mm.Quarantined != 1 || mm.Failed != 1 || mm.Done != 1 {
		t.Fatalf("metrics = %+v", mm)
	}
}

// Degrade-every-attempt jobs quarantine too, keeping the last degraded
// result as evidence.
func TestDegradedPoisonQuarantine(t *testing.T) {
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		return json.RawMessage(`{"degraded":true}`), true, nil
	})
	id := submit(t, m, &Spec{Session: "s", Type: "analyze", MaxAttempts: 2})
	snap := waitState(t, m, id, StateFailed)
	if !snap.Quarantined || string(snap.Result) != `{"degraded":true}` {
		t.Fatalf("degraded snapshot = %+v", snap)
	}
	if snap.Diags[len(snap.Diags)-1].Stage != "degraded" {
		t.Fatalf("diags = %+v", snap.Diags)
	}
}

func TestAttemptDeadline(t *testing.T) {
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	})
	id := submit(t, m, &Spec{Session: "s", Type: "analyze", Deadline: "20ms", MaxAttempts: 1})
	snap := waitState(t, m, id, StateFailed)
	if snap.Quarantined || snap.Diags[0].Stage != "deadline" {
		t.Fatalf("deadline snapshot = %+v", snap)
	}
}

func TestCancelQueuedAndTerminal(t *testing.T) {
	release := make(chan struct{})
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), false, nil
	}, func(c *Config) { c.Workers = 1 })

	runner := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m, runner, StateRunning)
	queued := submit(t, m, &Spec{Session: "s", Type: "analyze"})

	snap, err := m.Cancel(queued)
	if err != nil || snap.State != string(StateCanceled) {
		t.Fatalf("cancel queued: %+v, %v", snap, err)
	}
	if _, err := m.Cancel(queued); err != nil {
		t.Fatalf("re-cancel canceled job not idempotent: %v", err)
	}
	close(release)
	waitState(t, m, runner, StateDone)
	if _, err := m.Cancel(runner); !errors.Is(err, ErrTerminal) {
		t.Fatalf("cancel done job: want ErrTerminal, got %v", err)
	}
	if _, err := m.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown job: want ErrNotFound, got %v", err)
	}
}

func TestCancelRunning(t *testing.T) {
	m := openManager(t, t.TempDir(), func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	})
	id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m, id, StateRunning)
	snap, err := m.Cancel(id)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if snap.State == string(StateRunning) && !snap.CancelRequested {
		t.Fatalf("cancel ack lacks cancelRequested: %+v", snap)
	}
	snap = waitState(t, m, id, StateCanceled)
	if snap.Quarantined || snap.Error != "" {
		t.Fatalf("canceled snapshot = %+v", snap)
	}
}

// crash abandons a manager without the graceful drain: the journal fd is
// left open on an inode the next Open orphans (its boot compaction
// atomically replaces the file), so the zombie's late appends can never
// corrupt the successor's journal — the same isolation a SIGKILL'd
// process gets for free.
func crash(t *testing.T, m *Manager) {
	t.Helper()
	t.Cleanup(func() { m.Close(2 * time.Second) })
}

func TestRestartResumesInFlightJob(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	defer close(hold)
	m1 := openManager(t, dir, func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-hold
		return nil, false, fmt.Errorf("abandoned")
	})
	id := submit(t, m1, &Spec{Session: "s", Type: "iterate"})
	waitState(t, m1, id, StateRunning)
	crash(t, m1)

	var calls atomic.Int64
	m2 := openManager(t, dir, okExec(&calls))
	snap := waitState(t, m2, id, StateDone)
	// The interrupted attempt was journaled before it ran, so it counts;
	// the boot replay records what happened to it.
	if snap.Attempts != 2 || len(snap.Diags) != 1 || snap.Diags[0].Stage != "interrupted" {
		t.Fatalf("resumed snapshot = %+v", snap)
	}
}

// A job whose every budgeted attempt dies with the process is the poison
// signature no recover barrier can catch: boot replay quarantines it
// instead of re-running it forever.
func TestRestartQuarantinesCrashLoopJob(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	defer close(hold)
	m1 := openManager(t, dir, func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-hold
		return nil, false, fmt.Errorf("abandoned")
	})
	id := submit(t, m1, &Spec{Session: "s", Type: "analyze", MaxAttempts: 1})
	waitState(t, m1, id, StateRunning)
	crash(t, m1)

	m2 := openManager(t, dir, okExec(nil))
	snap := waitState(t, m2, id, StateFailed)
	if !snap.Quarantined || !strings.Contains(snap.Error, "interrupted by process exit") {
		t.Fatalf("crash-loop snapshot = %+v", snap)
	}
	if snap.Diags[0].Stage != "interrupted" {
		t.Fatalf("diags = %+v", snap.Diags)
	}
}

// A graceful drain refunds the interrupted attempt (requeue record), so
// clean restarts never burn retry budget.
func TestGracefulDrainRefundsAttempt(t *testing.T) {
	dir := t.TempDir()
	m1 := openManager(t, dir, func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-ctx.Done()
		return nil, false, ctx.Err()
	})
	id := submit(t, m1, &Spec{Session: "s", Type: "iterate"})
	waitState(t, m1, id, StateRunning)
	m1.Close(2 * time.Second)

	m2 := openManager(t, dir, okExec(nil))
	snap := waitState(t, m2, id, StateDone)
	if snap.Attempts != 1 || len(snap.Diags) != 0 {
		t.Fatalf("drained-and-resumed snapshot = %+v (want the attempt refunded)", snap)
	}
}

func TestCancelIntentSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	hold := make(chan struct{})
	defer close(hold)
	// The executor ignores its context — a worst-case stuck job.
	m1 := openManager(t, dir, func(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
		<-hold
		return nil, false, fmt.Errorf("abandoned")
	})
	id := submit(t, m1, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m1, id, StateRunning)
	if _, err := m1.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	crash(t, m1)

	m2 := openManager(t, dir, okExec(nil))
	snap := waitState(t, m2, id, StateCanceled)
	if snap.State != string(StateCanceled) {
		t.Fatalf("snapshot after restart = %+v", snap)
	}
}

// Completed jobs replay as completed: the executor must not run again
// for a job whose done record is journaled — no duplicate side effects.
func TestRestartDoesNotRerunCompletedJobs(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	m1 := openManager(t, dir, okExec(&calls))
	id := submit(t, m1, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m1, id, StateDone)
	m1.Close(2 * time.Second)

	m2 := openManager(t, dir, okExec(&calls))
	snap, err := m2.Get(id)
	if err != nil || snap.State != string(StateDone) || string(snap.Result) != `{"ok":true}` {
		t.Fatalf("replayed done job = %+v, %v", snap, err)
	}
	time.Sleep(20 * time.Millisecond)
	if calls.Load() != 1 {
		t.Fatalf("executor ran %d times; completed job was re-executed", calls.Load())
	}
}

func TestCompactionPrunesTerminalKeepsIDs(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, okExec(nil), func(c *Config) {
		c.CompactEvery = 1
		c.KeepDone = 1
	})
	for i := 0; i < 3; i++ {
		id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
		waitState(t, m, id, StateDone)
	}
	// Submission triggers compaction; after three done jobs only the
	// newest terminal job survives, but IDs never rewind.
	id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	if id != "job-000004" {
		t.Fatalf("ID after pruning = %q (terminal pruning must not recycle IDs)", id)
	}
	waitState(t, m, id, StateDone)
	m.Close(2 * time.Second)

	m2 := openManager(t, dir, okExec(nil))
	if id := submit(t, m2, &Spec{Session: "s", Type: "analyze"}); id != "job-000005" {
		t.Fatalf("ID after reopen = %q", id)
	}
}

// --- satellite: job journal under the full StoreFaults chaos matrix ---

func chaosHooks(t *testing.T, spec string) wal.Hooks {
	t.Helper()
	sf, err := workload.ParseStoreFaults(spec)
	if err != nil {
		t.Fatalf("ParseStoreFaults(%q): %v", spec, err)
	}
	return wal.Hooks{BeforeWrite: sf.BeforeWrite, BeforeSync: sf.BeforeSync, BeforeRename: sf.BeforeRename}
}

// Every append-path fault must refuse the ack (StorageError) and leave
// no phantom job — the no-lost-acks invariant: what was acknowledged
// survives, what wasn't acknowledged never half-exists.
func TestChaosSubmitAppendFaults(t *testing.T) {
	for _, kind := range []string{"torn", "enospc", "syncerr"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			m := openManager(t, dir, okExec(nil), func(c *Config) {
				c.Hooks = chaosHooks(t, kind+":append:1")
			})
			_, err := m.Submit(&Spec{Session: "s", Type: "analyze"})
			var se *StorageError
			if !errors.As(err, &se) {
				t.Fatalf("submit under %s fault: want StorageError, got %v", kind, err)
			}
			if n := len(m.List()); n != 0 {
				t.Fatalf("refused submit left %d phantom job(s)", n)
			}
			// The disk recovered (rule consumed): the next submit is acked
			// and fully durable, even right after a torn append.
			id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
			waitState(t, m, id, StateDone)
			m.Close(2 * time.Second)

			m2 := openManager(t, dir, okExec(nil))
			snap, gerr := m2.Get(id)
			if gerr != nil || snap.State != string(StateDone) {
				t.Fatalf("acked job lost across restart: %+v, %v", snap, gerr)
			}
		})
	}
}

// A crash during compaction's atomic replace must leave the previous
// journal authoritative: acked state intact after reopen.
func TestChaosCompactionCrashRename(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, okExec(nil), func(c *Config) {
		c.CompactEvery = 1
		c.Hooks = chaosHooks(t, "crashrename:write:*")
	})
	id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	snap := waitState(t, m, id, StateDone)
	if string(snap.Result) != `{"ok":true}` {
		t.Fatalf("done snapshot = %+v", snap)
	}
	m.Close(2 * time.Second)

	// Reopen without faults: replay sees the append-only journal (every
	// compaction failed), plus possibly a stranded .tmp — state intact.
	m2 := openManager(t, dir, okExec(nil))
	got, err := m2.Get(id)
	if err != nil || got.State != string(StateDone) || string(got.Result) != `{"ok":true}` {
		t.Fatalf("acked job lost after compaction crashes: %+v, %v", got, err)
	}
}

// A failed compaction must not reset the journal's sequence space: the
// old file — whose tail holds sequence numbers past the unwritten
// snapshot's — stays authoritative, so records fsync-acked AFTER the
// failure (here: a whole second job) still replay in order after a
// restart. Under the old reset-on-failure behavior the second job's
// submit record landed with a seq at or below the file's last one and
// boot replay quarantined it — a lost ack.
func TestChaosFailedCompactionDoesNotLoseLaterAcks(t *testing.T) {
	dir := t.TempDir()
	m := openManager(t, dir, okExec(nil), func(c *Config) {
		c.CompactEvery = 1
		c.Hooks = chaosHooks(t, "crashrename:write:*")
	})
	first := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m, first, StateDone)
	// Several compactions (submit, finalize) have failed by now; the
	// next ack must land past the journal's existing tail.
	second := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m, second, StateDone)
	m.Close(2 * time.Second)

	m2 := openManager(t, dir, okExec(nil))
	for _, id := range []string{first, second} {
		snap, err := m2.Get(id)
		if err != nil || snap.State != string(StateDone) {
			t.Fatalf("job %s lost after failed compactions: %+v, %v", id, snap, err)
		}
	}
	if m2.bootQuarantined != 0 {
		t.Fatalf("replay quarantined %d record(s) from a journal that should be monotonic", m2.bootQuarantined)
	}
}

// A journaled spec that no longer validates must quarantine with a
// reason sidecar, not retry forever — and the rest of the journal still
// replays.
func TestChaosUnreplayableSpecQuarantined(t *testing.T) {
	dir := t.TempDir()
	// Hand-write a journal: one poison submit (bad type), one good one.
	var buf []byte
	for seq, spec := range []*Spec{
		{Session: "s", Type: "time-travel"},
		{Session: "s", Type: "analyze"},
	} {
		payload, err := json.Marshal(&record{Seq: uint64(seq + 1), Type: recSubmit, ID: fmt.Sprintf("job-%06d", seq+1), Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, wal.Frame(payload)...)
	}
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	m := openManager(t, dir, okExec(nil))
	if _, err := m.Get("job-000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unreplayable job resurrected: %v", err)
	}
	waitState(t, m, "job-000002", StateDone)
	matches, _ := filepath.Glob(filepath.Join(dir, quarantineDir, "*.reason.json"))
	if len(matches) == 0 {
		t.Fatal("no quarantine reason sidecar written for the unreplayable spec")
	}
	// IDs never collide with the quarantined record's.
	if id := submit(t, m, &Spec{Session: "s", Type: "analyze"}); id != "job-000003" {
		t.Fatalf("next ID = %q", id)
	}
}

// A corrupt (CRC-flipped) record mid-journal stops replay at the last
// good prefix, quarantines the tail bytes, and truncates — the journal
// stays appendable.
func TestChaosCorruptTailQuarantinedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	for seq := 1; seq <= 2; seq++ {
		payload, _ := json.Marshal(&record{Seq: uint64(seq), Type: recSubmit, ID: fmt.Sprintf("job-%06d", seq), Spec: &Spec{Session: "s", Type: "analyze"}})
		buf = append(buf, wal.Frame(payload)...)
	}
	// Flip a byte inside the second frame's payload.
	buf[len(buf)-3] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, journalFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	m := openManager(t, dir, okExec(nil))
	waitState(t, m, "job-000001", StateDone)
	if _, err := m.Get("job-000002"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("job behind corrupt record resurrected: %v", err)
	}
	matches, _ := filepath.Glob(filepath.Join(dir, quarantineDir, "jobs-tail-*.bin"))
	if len(matches) != 1 {
		t.Fatalf("corrupt tail not quarantined: %v", matches)
	}
	// Journal still appendable and durable after the repair.
	id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	waitState(t, m, id, StateDone)
	m.Close(2 * time.Second)
	m2 := openManager(t, dir, okExec(nil))
	if snap, err := m2.Get(id); err != nil || snap.State != string(StateDone) {
		t.Fatalf("post-repair job lost: %+v, %v", snap, err)
	}
}

// The injected job-fault hook exercises the same quarantine machinery
// end to end: panic:N drives the recover barrier; hang drives deadlines.
func TestJobFaultInjectorIntegration(t *testing.T) {
	faults, err := workload.ParseJobFaults("panic:analyze:*,hang:iterate")
	if err != nil {
		t.Fatal(err)
	}
	m := openManager(t, t.TempDir(), okExec(nil), func(c *Config) {
		c.Fault = faults.Fire
	})
	poison := submit(t, m, &Spec{Session: "s", Type: "analyze", MaxAttempts: 2})
	snap := waitState(t, m, poison, StateFailed)
	if !snap.Quarantined || len(snap.Diags) != 2 || snap.Diags[0].Stage != "panic" {
		t.Fatalf("injected-panic snapshot = %+v", snap)
	}
	hung := submit(t, m, &Spec{Session: "s", Type: "iterate", Deadline: "20ms", MaxAttempts: 1})
	snap = waitState(t, m, hung, StateFailed)
	if snap.Diags[0].Stage != "deadline" {
		t.Fatalf("injected-hang snapshot = %+v", snap)
	}
}

func TestMemoryOnlyManager(t *testing.T) {
	m := openManager(t, "", okExec(nil))
	id := submit(t, m, &Spec{Session: "s", Type: "analyze"})
	snap := waitState(t, m, id, StateDone)
	if snap.State != string(StateDone) {
		t.Fatalf("memory-only job = %+v", snap)
	}
}
