package jobs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// gatedExec records the tenant of each claim in order and blocks until
// the test feeds it a token, so claim order is fully deterministic.
type gatedExec struct {
	mu      sync.Mutex
	order   []string
	started chan string
	proceed chan struct{}
}

func newGatedExec() *gatedExec {
	return &gatedExec{
		started: make(chan string, 16),
		proceed: make(chan struct{}),
	}
}

func (g *gatedExec) exec(ctx context.Context, id string, spec *Spec, attempt int) (json.RawMessage, bool, error) {
	g.mu.Lock()
	g.order = append(g.order, spec.Tenant)
	g.mu.Unlock()
	g.started <- spec.Tenant
	select {
	case <-g.proceed:
	case <-ctx.Done():
	}
	return json.RawMessage(`{}`), false, nil
}

func (g *gatedExec) waitStart(t *testing.T) string {
	t.Helper()
	select {
	case tenant := <-g.started:
		return tenant
	case <-time.After(5 * time.Second):
		t.Fatal("no job claimed a worker in time")
		return ""
	}
}

// TestTenantRoundRobinClaimOrder pins the dispatch order: with one
// worker and tenant A's backlog queued ahead of tenant B's single job,
// the round-robin ring interleaves B instead of draining A first. A
// global-FIFO scheduler would run A,A,A,B.
func TestTenantRoundRobinClaimOrder(t *testing.T) {
	g := newGatedExec()
	m := openManager(t, t.TempDir(), g.exec, func(c *Config) {
		c.Workers = 1
		c.TenantCap = 1
	})

	a1 := submit(t, m, &Spec{Session: "s", Type: "analyze", Tenant: "A"})
	// Wait until a1 occupies the worker so the backlog below is queued
	// behind it deterministically.
	g.waitStart(t)
	ids := []string{a1}
	for _, tenant := range []string{"A", "A", "B"} {
		ids = append(ids, submit(t, m, &Spec{Session: "s", Type: "analyze", Tenant: tenant}))
	}

	// Release the worker one job at a time.
	for i := 0; i < len(ids); i++ {
		g.proceed <- struct{}{}
		if i < len(ids)-1 {
			g.waitStart(t)
		}
	}
	for _, id := range ids {
		waitState(t, m, id, StateDone)
	}

	g.mu.Lock()
	got := append([]string(nil), g.order...)
	g.mu.Unlock()
	want := []string{"A", "A", "B", "A"}
	if len(got) != len(want) {
		t.Fatalf("claim order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("claim order = %v, want %v (round-robin must interleave tenant B)", got, want)
		}
	}
}

// TestTenantCapLeavesWorkersForOthers pins the running cap: with two
// workers and TenantCap 1, tenant A's second job must NOT take the
// second worker — it goes to tenant B, and A's backlog waits for A's
// own slot.
func TestTenantCapLeavesWorkersForOthers(t *testing.T) {
	g := newGatedExec()
	m := openManager(t, t.TempDir(), g.exec, func(c *Config) {
		c.Workers = 2
		c.TenantCap = 1
	})

	a1 := submit(t, m, &Spec{Session: "s", Type: "analyze", Tenant: "A"})
	g.waitStart(t)
	a2 := submit(t, m, &Spec{Session: "s", Type: "analyze", Tenant: "A"})
	b1 := submit(t, m, &Spec{Session: "s", Type: "analyze", Tenant: "B"})

	// The free worker must claim b1, skipping the capped tenant A.
	if tenant := g.waitStart(t); tenant != "B" {
		t.Fatalf("second worker claimed tenant %q, want B (tenant A is at its cap)", tenant)
	}
	// a2 must still be queued while both run.
	if snap, err := m.Get(a2); err != nil || snap.State != string(StateQueued) {
		t.Fatalf("a2 = %+v (err %v), want queued behind A's cap", snap, err)
	}

	close(g.proceed) // release everyone; a2 claims A's freed slot
	for _, id := range []string{a1, b1, a2} {
		waitState(t, m, id, StateDone)
	}
}

// TestTenantCapClamp pins the config normalization: zero, negative, and
// over-Workers caps all clamp to Workers so single-tenant deployments
// keep full throughput.
func TestTenantCapClamp(t *testing.T) {
	for _, cap := range []int{0, -2, 99} {
		cfg := Config{Dir: t.TempDir(), Workers: 3, TenantCap: cap, Exec: okExec(nil), Logf: t.Logf}
		m, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.cfg.TenantCap != 3 {
			t.Fatalf("TenantCap %d normalized to %d, want Workers (3)", cap, m.cfg.TenantCap)
		}
		m.Close(time.Second)
	}
}
