// Package metrics provides the tiny, dependency-free instrumentation
// primitives the snad service exposes through GET /metrics: fixed-bucket
// latency histograms rendered in the Prometheus text exposition format.
//
// A Histogram is safe for concurrent Observe from every request
// goroutine: buckets are atomic counters and the running sum is an
// atomic float64-bits cell, so the hot path is a handful of atomic adds
// with no locks and no allocation. Rendering reads the same atomics;
// a scrape concurrent with observations sees a consistent-enough
// snapshot (Prometheus counters are monotonic, and cumulative bucket
// sums are re-derived at render time).
package metrics

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
)

// DefaultBuckets are the latency bucket upper bounds in seconds used by
// every snad stage histogram: 1ms to 10s in a 1-2.5-5 progression, wide
// enough to cover an admission wait on an idle server and a full
// analysis on a large design.
var DefaultBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style. Create one with NewHistogram; the zero value is not usable.
type Histogram struct {
	name    string
	help    string
	bounds  []float64
	buckets []atomic.Int64 // one per bound, plus +Inf at the end
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum of seconds
}

// NewHistogram builds a histogram with the given metric name, help
// text, and bucket upper bounds (in seconds, ascending). Nil bounds
// use DefaultBuckets.
func NewHistogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	return &Histogram{
		name:    name,
		help:    help,
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one measurement in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(h.bounds) && seconds > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nu := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, nu) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values in seconds.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Write renders the histogram in the Prometheus text exposition format:
// HELP and TYPE headers, one cumulative `_bucket` line per bound plus
// +Inf, then `_sum` and `_count`.
func (h *Histogram) Write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", h.name, h.help, h.name)
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", h.name, formatBound(bound), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(b, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(b, "%s_count %d\n", h.name, h.count.Load())
}

// formatBound renders a bucket bound the way Prometheus clients expect:
// shortest decimal form, no exponent for the magnitudes in use here.
func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
