package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram("test_seconds", "help text", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket 0.01
	h.Observe(0.05)  // bucket 0.1
	h.Observe(0.05)  // bucket 0.1
	h.Observe(0.5)   // bucket 1
	h.Observe(5)     // +Inf

	var b strings.Builder
	h.Write(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("Count() = %d, want 5", got)
	}
	if got := h.Sum(); got < 5.6 || got > 5.61 {
		t.Errorf("Sum() = %g, want ~5.605", got)
	}
}

func TestHistogramBoundaryGoesInBucket(t *testing.T) {
	// An observation exactly on a bound counts in that bucket (le is
	// "less than or equal").
	h := NewHistogram("b_seconds", "h", []float64{0.1, 1})
	h.Observe(0.1)
	var b strings.Builder
	h.Write(&b)
	if !strings.Contains(b.String(), `b_seconds_bucket{le="0.1"} 1`) {
		t.Errorf("boundary observation not in its bucket:\n%s", b.String())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram("c_seconds", "h", nil)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g%4) * 0.01)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Errorf("Count() = %d, want %d", got, goroutines*per)
	}
	want := float64(per) * (0 + 0.01 + 0.02 + 0.03) * float64(goroutines/4)
	if got := h.Sum(); got < want-1e-9 || got > want+1e-9 {
		t.Errorf("Sum() = %g, want %g", got, want)
	}
}
