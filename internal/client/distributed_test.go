package client

// End-to-end oracle for the distributed iterate path: a coordinator snad
// and a fleet of worker snads, all real HTTP servers, with the production
// ShardWorker dialer in between. The healthy-fleet run must be
// byte-identical to the single-process (Local) run — the distributed
// engine is an implementation detail, not a different analysis.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/netlist"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// busCreate serializes a generated coupled bus into a create request.
func busCreate(t *testing.T, name string) *server.CreateSessionRequest {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{Bits: 8, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	var net, sp, win bytes.Buffer
	if err := netlist.Write(&net, g.Design); err != nil {
		t.Fatal(err)
	}
	if err := spef.Write(&sp, g.Paras); err != nil {
		t.Fatal(err)
	}
	if err := sta.WriteInputTiming(&win, g.Inputs); err != nil {
		t.Fatal(err)
	}
	return &server.CreateSessionRequest{
		Name:    name,
		Netlist: net.String(),
		SPEF:    sp.String(),
		Timing:  win.String(),
		Options: server.SessionOptions{Mode: "noise"},
	}
}

// startSnad boots a server with the production worker dialer and returns
// its client base URL.
func startSnad(t *testing.T, cfg server.Config) string {
	t.Helper()
	cfg.WorkerDialer = func(name, url string) shard.Worker {
		return NewShardWorker(name, url, RetryPolicy{})
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDistributedIterateMatchesLocal(t *testing.T) {
	ctx := context.Background()
	coord := startSnad(t, server.Config{})
	c := New(coord, RetryPolicy{MaxAttempts: 1})
	if _, err := c.CreateSession(ctx, busCreate(t, "bus")); err != nil {
		t.Fatal(err)
	}

	// The oracle: a forced single-process run on the same session.
	local, err := c.Iterate(ctx, "bus", &server.IterateRequest{Delay: true, Local: true}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if local.Iterate == nil || local.Iterate.Distributed {
		t.Fatalf("local run reported iterate info %+v", local.Iterate)
	}

	for _, u := range []string{startSnad(t, server.Config{}), startSnad(t, server.Config{}), startSnad(t, server.Config{})} {
		if _, err := c.RegisterWorker(ctx, &server.RegisterWorkerRequest{URL: u}); err != nil {
			t.Fatal(err)
		}
	}
	ws, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("registered %d workers, want 3", len(ws))
	}

	dist, err := c.Iterate(ctx, "bus", &server.IterateRequest{Delay: true, Shards: 3}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	it := dist.Iterate
	if it == nil || !it.Distributed {
		t.Fatalf("iterate did not go distributed: %+v", it)
	}
	if it.Workers != 3 || it.Shards != 3 {
		t.Fatalf("distributed over %d workers / %d shards, want 3/3", it.Workers, it.Shards)
	}
	if len(it.AbandonedShards) != 0 {
		t.Fatalf("healthy fleet abandoned shards %v", it.AbandonedShards)
	}
	if it.Rounds != local.Iterate.Rounds || it.Converged != local.Iterate.Converged {
		t.Fatalf("fixpoint diverged from oracle: distributed rounds=%d converged=%v, local rounds=%d converged=%v",
			it.Rounds, it.Converged, local.Iterate.Rounds, local.Iterate.Converged)
	}
	if got, want := mustJSON(t, dist.Noise), mustJSON(t, local.Noise); !bytes.Equal(got, want) {
		t.Errorf("distributed noise section differs from local oracle:\n got: %s\nwant: %s", got, want)
	}
	if got, want := mustJSON(t, dist.Delay), mustJSON(t, local.Delay); !bytes.Equal(got, want) {
		t.Errorf("distributed delay section differs from local oracle:\n got: %s\nwant: %s", got, want)
	}
}

func TestDistributedIterateSurvivesDeadWorker(t *testing.T) {
	ctx := context.Background()
	coord := startSnad(t, server.Config{})
	c := New(coord, RetryPolicy{MaxAttempts: 1})
	if _, err := c.CreateSession(ctx, busCreate(t, "bus")); err != nil {
		t.Fatal(err)
	}
	local, err := c.Iterate(ctx, "bus", &server.IterateRequest{Local: true}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Two live workers and one that died after registering: its httptest
	// server is already closed, so every dispatch to it fails at the
	// transport. The coordinator must re-host its shards onto the
	// survivors and still produce the oracle's exact result.
	dead := httptest.NewServer(nil)
	deadURL := dead.URL
	dead.Close()
	for _, u := range []string{startSnad(t, server.Config{}), deadURL, startSnad(t, server.Config{})} {
		if _, err := c.RegisterWorker(ctx, &server.RegisterWorkerRequest{URL: u}); err != nil {
			t.Fatal(err)
		}
	}

	dist, err := c.Iterate(ctx, "bus", &server.IterateRequest{Shards: 3}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	it := dist.Iterate
	if it == nil || !it.Distributed {
		t.Fatalf("iterate did not go distributed: %+v", it)
	}
	if len(it.AbandonedShards) != 0 {
		t.Fatalf("dead worker's shards were abandoned (%v), want re-hosted", it.AbandonedShards)
	}
	if got, want := mustJSON(t, dist.Noise), mustJSON(t, local.Noise); !bytes.Equal(got, want) {
		t.Errorf("re-hosted run differs from local oracle:\n got: %s\nwant: %s", got, want)
	}
}
