// Package client is the Go client for the snad analysis service, with
// the retry discipline the service's shedding design assumes: snad sheds
// load fast (429/503 + Retry-After) expecting callers to back off and
// retry, so the client owns exponential backoff with jitter, honors
// Retry-After hints, and retries only requests that are safe to repeat.
//
// Retryability is decided from the response, not the method:
//
//	status              retried?  why
//	429 overloaded      yes       request was shed before running
//	503 draining        yes       another replica (or a drained restart)
//	                              can serve it
//	503 breaker_open    yes       the breaker reopens after its cooldown
//	503 deadline        yes       analyze/reanalyze are idempotent —
//	503 canceled        yes       padding is max-monotonic, repeating is
//	                              safe
//	409 busy            yes       delete raced an in-flight request; the
//	                              session quiesces shortly
//	503 storage         yes       a journal append failed before the change
//	                              was acknowledged; nothing was applied, so
//	                              repeating is safe once the disk recovers
//	409 conflict        no        the session already exists; repeating
//	                              cannot help
//	422 lint_rejected   no        the design is broken; fix it first
//	400/404             no        caller bug
//	500 engine/panic    no        repeating the same work repeats the
//	                              failure; surface it
//
// Transport errors (connection refused, reset) are retried for GETs and
// for the idempotent analysis POSTs, but not for session creation, where
// the request may have been applied before the connection died.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/report"
	"repro/internal/server"
)

// RetryPolicy tunes the backoff loop. The zero value gets defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: attempt n waits about
	// BaseDelay·2ⁿ, ±50% jitter (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff step (default 5s). A server Retry-After
	// hint overrides the computed delay (it is the server saying exactly
	// when capacity returns) but is still capped here.
	MaxDelay time.Duration
	// AttemptTimeout bounds each individual attempt (0 = unbounded; only
	// the caller's context limits it). A stalled attempt — a hung
	// connection, a server that accepted the request and went silent —
	// is cut off and, for retryable requests, retried, instead of eating
	// the whole deadline. The caller's context still bounds the overall
	// call.
	AttemptTimeout time.Duration
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
}

// APIError is a structured error response from the service.
type APIError struct {
	Status int
	Info   server.ErrorInfo

	// retryAfter carries the server's Retry-After hint into the backoff
	// computation; it is advice, not payload.
	retryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("snad: %s (%d): %s", e.Info.Kind, e.Status, e.Info.Message)
}

// Retryable reports whether repeating the request can succeed.
func (e *APIError) Retryable() bool {
	switch e.Info.Kind {
	case "overloaded", "draining", "breaker_open", "deadline", "canceled", "busy", "storage", "budget", "session_limit":
		return true
	}
	// A 503 without a parseable body is still a capacity signal.
	return e.Info.Kind == "" && (e.Status == http.StatusServiceUnavailable || e.Status == http.StatusTooManyRequests)
}

// Client talks to one snad server.
type Client struct {
	base  string
	http  *http.Client
	retry RetryPolicy
	// tenant, when set, is stamped on every request as the X-Snad-Tenant
	// header: the server's admission gate and job pool schedule fairly
	// across tenants, so tagging traffic is how a caller gets its slice.
	tenant string

	// sleep, jitter, and now are injectable for tests (now anchors
	// HTTP-date Retry-After parsing).
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func(d time.Duration) time.Duration
	now    func() time.Time
}

// New builds a client for the server at base (e.g. "http://127.0.0.1:8347").
func New(base string, policy RetryPolicy) *Client {
	policy.fill()
	return &Client{
		base:  base,
		http:  &http.Client{},
		retry: policy,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
		jitter: func(d time.Duration) time.Duration {
			// Full ±50% jitter: spreads synchronized retries (thundering
			// herd after a drain or breaker trip) across the window.
			return d/2 + time.Duration(rand.Int63n(int64(d)+1))
		},
		now: time.Now,
	}
}

// SetHTTPClient replaces the underlying HTTP client. The default is a
// zero http.Client on the shared DefaultTransport, whose two idle
// connections per host collapse into connection churn when thousands of
// logical clients target one server — load harnesses pass one tuned
// shared transport instead. Call it once after New.
func (c *Client) SetHTTPClient(h *http.Client) { c.http = h }

// SetTenant tags every subsequent request with the tenant ID ("" clears
// the tag). Call it once after New; the client is then safe for
// concurrent use as usual.
func (c *Client) SetTenant(tenant string) { c.tenant = tenant }

// parseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3: either a non-negative integral number of seconds ("120") or an
// HTTP-date ("Fri, 07 Aug 2026 11:30:00 GMT" and the obsolete RFC 850 /
// asctime forms, which http.ParseTime covers). A date in the past, a zero
// delay, or an unparseable value all return 0 — "no usable hint", letting
// the exponential backoff decide.
func parseRetryAfter(v string, now time.Time) time.Duration {
	if secs, err := strconv.ParseInt(v, 10, 64); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// backoff computes the wait before attempt n (0-based), preferring the
// server's Retry-After hint when present. Jitter is applied before the
// MaxDelay clamp so the cap holds absolutely: a +50% jittered step can
// never sleep past MaxDelay.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if retryAfter > c.retry.MaxDelay {
			return c.retry.MaxDelay
		}
		return retryAfter
	}
	d := c.retry.BaseDelay << uint(attempt)
	if d > c.retry.MaxDelay || d <= 0 {
		d = c.retry.MaxDelay
	}
	if d = c.jitter(d); d > c.retry.MaxDelay {
		d = c.retry.MaxDelay
	}
	return d
}

// doRetry runs one request through the retry loop. retryTransport allows
// retrying transport-level failures (safe only for idempotent requests);
// body is re-marshaled per attempt via mkBody.
func (c *Client) doRetry(ctx context.Context, method, path string, mkBody func() (io.Reader, error), out any, retryTransport bool) error {
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			var wait time.Duration
			if ae, ok := lastErr.(*APIError); ok {
				wait = c.backoff(attempt-1, ae.retryAfter)
			} else {
				wait = c.backoff(attempt-1, 0)
			}
			if err := c.sleep(ctx, wait); err != nil {
				return fmt.Errorf("snad: giving up after %d attempt(s): %w (last: %v)", attempt, err, lastErr)
			}
		}
		err := c.attempt(ctx, method, path, mkBody, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if ae, ok := err.(*APIError); ok {
			if !ae.Retryable() {
				return err
			}
			continue
		}
		if ctx.Err() != nil || !retryTransport {
			return err
		}
	}
	return fmt.Errorf("snad: giving up after %d attempts: %w", c.retry.MaxAttempts, lastErr)
}

// attempt runs doOnce under the per-attempt timeout. ctx.Err() checks in
// the retry loop use the caller's context, so an expired attempt counts
// as a transport failure (retryable) rather than ending the whole call.
func (c *Client) attempt(ctx context.Context, method, path string, mkBody func() (io.Reader, error), out any) error {
	if c.retry.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.retry.AttemptTimeout)
		defer cancel()
	}
	return c.doOnce(ctx, method, path, mkBody, out)
}

func (c *Client) doOnce(ctx context.Context, method, path string, mkBody func() (io.Reader, error), out any) error {
	var body io.Reader
	if mkBody != nil {
		var err error
		if body, err = mkBody(); err != nil {
			return err
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(server.TenantHeader, c.tenant)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		ae := &APIError{Status: resp.StatusCode}
		var eb server.ErrorBody
		if json.Unmarshal(data, &eb) == nil {
			ae.Info = eb.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			ae.retryAfter = parseRetryAfter(ra, c.now())
		}
		return ae
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("snad: decoding %s %s response: %w", method, path, err)
		}
	}
	return nil
}

func jsonBody(v any) func() (io.Reader, error) {
	return func() (io.Reader, error) {
		b, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		return bytes.NewReader(b), nil
	}
}

// CreateSession loads a design into a named session. Not retried on
// transport failure: the create may have landed before the connection
// died, and replaying it would read as a conflict.
func (c *Client) CreateSession(ctx context.Context, req *server.CreateSessionRequest) (*server.SessionInfo, error) {
	var info server.SessionInfo
	if err := c.doRetry(ctx, "POST", "/v1/sessions", jsonBody(req), &info, false); err != nil {
		return nil, err
	}
	return &info, nil
}

// Analyze runs (or replays) the session's full analysis.
func (c *Client) Analyze(ctx context.Context, name string, req *server.AnalyzeRequest, timeout time.Duration) (*server.AnalyzeResponse, error) {
	var out server.AnalyzeResponse
	path := "/v1/sessions/" + url.PathEscape(name) + "/analyze" + timeoutQuery(timeout)
	if err := c.doRetry(ctx, "POST", path, jsonBody(req), &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Reanalyze applies window padding and incrementally re-analyzes. Padding
// is max-monotonic server-side, so retrying a delta is safe.
func (c *Client) Reanalyze(ctx context.Context, name string, req *server.ReanalyzeRequest, timeout time.Duration) (*server.AnalyzeResponse, error) {
	var out server.AnalyzeResponse
	path := "/v1/sessions/" + url.PathEscape(name) + "/reanalyze" + timeoutQuery(timeout)
	if err := c.doRetry(ctx, "POST", path, jsonBody(req), &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report fetches the cached last analysis of a session.
func (c *Client) Report(ctx context.Context, name string) (*server.AnalyzeResponse, error) {
	var out server.AnalyzeResponse
	if err := c.doRetry(ctx, "GET", "/v1/sessions/"+url.PathEscape(name)+"/report", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Info fetches one session's state.
func (c *Client) Info(ctx context.Context, name string) (*server.SessionInfo, error) {
	var out server.SessionInfo
	if err := c.doRetry(ctx, "GET", "/v1/sessions/"+url.PathEscape(name), nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// List fetches all sessions.
func (c *Client) List(ctx context.Context) ([]server.SessionInfo, error) {
	var out []server.SessionInfo
	if err := c.doRetry(ctx, "GET", "/v1/sessions", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete unloads a session. Idempotent server-side except for the 404 on
// replay, which callers can treat as success-after-retry.
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.doRetry(ctx, "DELETE", "/v1/sessions/"+url.PathEscape(name), nil, nil, true)
}

// Recovery fetches the server's boot replay report: which sessions were
// restored from the durable store, which records were quarantined and
// why. A memory-only server answers 404 not_found.
func (c *Client) Recovery(ctx context.Context) (*report.RecoveryJSON, error) {
	var out report.RecoveryJSON
	if err := c.doRetry(ctx, "GET", "/v1/recovery", nil, &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health fetches liveness (200 even while draining).
func (c *Client) Health(ctx context.Context) (*server.HealthResponse, error) {
	var out server.HealthResponse
	if err := c.doOnce(ctx, "GET", "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready fetches the /readyz snapshot — gate occupancy, shed counters,
// and the memory-governance gauges. A draining server answers 503, which
// surfaces as an error here; use Health for liveness during a drain.
func (c *Client) Ready(ctx context.Context) (*server.ReadyResponse, error) {
	var out server.ReadyResponse
	if err := c.doOnce(ctx, "GET", "/readyz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitReady polls /readyz until the server reports ready or ctx expires —
// the startup handshake for scripts and tests.
func (c *Client) WaitReady(ctx context.Context) error {
	for {
		var out server.ReadyResponse
		err := c.doOnce(ctx, "GET", "/readyz", nil, &out)
		if err == nil && out.Status == "ready" {
			return nil
		}
		if serr := c.sleep(ctx, 20*time.Millisecond); serr != nil {
			if err == nil {
				err = fmt.Errorf("server not ready")
			}
			return fmt.Errorf("snad: server never became ready: %w (last: %v)", serr, err)
		}
	}
}

func timeoutQuery(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return "?timeout=" + url.QueryEscape(d.String())
}
