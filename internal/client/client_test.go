package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

// testClient builds a client whose sleeps are recorded instead of slept
// and whose jitter is the identity, so backoff arithmetic is observable.
func testClient(base string, policy RetryPolicy) (*Client, *[]time.Duration) {
	c := New(base, policy)
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}
	c.jitter = func(d time.Duration) time.Duration { return d }
	return c, &slept
}

func shedding(failures int, retryAfter string, kind string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if int(n) <= failures {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			status := http.StatusTooManyRequests
			if kind != "overloaded" {
				status = http.StatusServiceUnavailable
			}
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(server.ErrorBody{Error: server.ErrorInfo{Kind: kind, Message: "shed"}})
			return
		}
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(server.AnalyzeResponse{Session: "s"})
	}))
	return ts, &calls
}

func TestRetryOnSheddingHonorsRetryAfter(t *testing.T) {
	ts, calls := shedding(2, "3", "overloaded")
	defer ts.Close()
	c, slept := testClient(ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Second})
	out, err := c.Analyze(context.Background(), "s", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Session != "s" {
		t.Fatalf("response = %+v", out)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	// Both waits must come from the server hint (3s), not the 10ms base.
	if len(*slept) != 2 || (*slept)[0] != 3*time.Second || (*slept)[1] != 3*time.Second {
		t.Fatalf("slept = %v, want [3s 3s]", *slept)
	}
}

func TestRetryBackoffGrowsExponentially(t *testing.T) {
	ts, _ := shedding(3, "", "draining")
	defer ts.Close()
	c, slept := testClient(ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Second})
	if _, err := c.Analyze(context.Background(), "s", nil, 0); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept = %v", *slept)
	}
	for i, w := range want {
		if (*slept)[i] != w {
			t.Fatalf("slept[%d] = %v, want %v", i, (*slept)[i], w)
		}
	}
}

func TestRetryCapsAtMaxDelay(t *testing.T) {
	ts, _ := shedding(3, "", "breaker_open")
	defer ts.Close()
	c, slept := testClient(ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 150 * time.Millisecond})
	if _, err := c.Analyze(context.Background(), "s", nil, 0); err != nil {
		t.Fatal(err)
	}
	for i, d := range *slept {
		if d > 150*time.Millisecond {
			t.Fatalf("slept[%d] = %v exceeds MaxDelay", i, d)
		}
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	ts, calls := shedding(100, "", "overloaded")
	defer ts.Close()
	c, _ := testClient(ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	_, err := c.Analyze(context.Background(), "s", nil, 0)
	if err == nil {
		t.Fatal("want error after exhausting attempts")
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("err = %v", err)
	}
}

func TestNoRetryOnNonRetryableStatuses(t *testing.T) {
	for _, tc := range []struct {
		status int
		kind   string
	}{
		{http.StatusInternalServerError, "engine"},
		{http.StatusInternalServerError, "panic"},
		{http.StatusBadRequest, "bad_request"},
		{http.StatusNotFound, "not_found"},
		{http.StatusConflict, "conflict"},
		{http.StatusUnprocessableEntity, "lint_rejected"},
	} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(tc.status)
			json.NewEncoder(w).Encode(server.ErrorBody{Error: server.ErrorInfo{Kind: tc.kind, Message: "nope"}})
		}))
		c, _ := testClient(ts.URL, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
		_, err := c.Analyze(context.Background(), "s", nil, 0)
		ts.Close()
		if err == nil {
			t.Fatalf("%s: want error", tc.kind)
		}
		ae, ok := err.(*APIError)
		if !ok || ae.Info.Kind != tc.kind {
			t.Fatalf("%s: err = %v", tc.kind, err)
		}
		if calls.Load() != 1 {
			t.Fatalf("%s: calls = %d, want 1 (non-retryable)", tc.kind, calls.Load())
		}
	}
}

func TestCreateNotRetriedOnTransportError(t *testing.T) {
	// A server that dies immediately: transport error on every attempt.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()
	c, _ := testClient(ts.URL, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	_, err := c.CreateSession(context.Background(), &server.CreateSessionRequest{Name: "x"})
	if err == nil {
		t.Fatal("want transport error")
	}
	if _, ok := err.(*APIError); ok {
		t.Fatalf("transport failure should not be an APIError: %v", err)
	}
}

func TestAnalyzeRetriedOnTransportError(t *testing.T) {
	var calls atomic.Int64
	// First attempt: hijack and kill the connection; second: succeed.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		json.NewEncoder(w).Encode(server.AnalyzeResponse{Session: "s"})
	}))
	defer ts.Close()
	c, _ := testClient(ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	out, err := c.Analyze(context.Background(), "s", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Session != "s" || calls.Load() != 2 {
		t.Fatalf("out=%+v calls=%d", out, calls.Load())
	}
}

func TestRetryRespectsContext(t *testing.T) {
	ts, _ := shedding(100, "", "overloaded")
	defer ts.Close()
	c := New(ts.URL, RetryPolicy{MaxAttempts: 10, BaseDelay: 50 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Analyze(ctx, "s", nil, 0)
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("retry loop ignored context cancellation")
	}
}

func TestTimeoutQueryPropagates(t *testing.T) {
	var gotTimeout string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTimeout = r.URL.Query().Get("timeout")
		json.NewEncoder(w).Encode(server.AnalyzeResponse{Session: "s"})
	}))
	defer ts.Close()
	c, _ := testClient(ts.URL, RetryPolicy{})
	if _, err := c.Analyze(context.Background(), "s", nil, 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if gotTimeout != "250ms" {
		t.Fatalf("timeout query = %q", gotTimeout)
	}
}

// TestBackoffJitterClampedToMaxDelay pins the documented contract that
// MaxDelay caps one backoff step absolutely: the +50% side of the jitter
// applied to an at-cap delay must not push the sleep past the cap.
func TestBackoffJitterClampedToMaxDelay(t *testing.T) {
	c := New("http://unused", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 200 * time.Millisecond})
	c.jitter = func(d time.Duration) time.Duration { return d + d/2 } // worst-case +50%
	for attempt := 0; attempt < 8; attempt++ {
		if d := c.backoff(attempt, 0); d > 200*time.Millisecond {
			t.Fatalf("backoff(%d) = %v exceeds MaxDelay", attempt, d)
		}
	}
	// The Retry-After path stays capped too.
	if d := c.backoff(0, time.Minute); d != 200*time.Millisecond {
		t.Fatalf("backoff with huge Retry-After = %v, want the 200ms cap", d)
	}
}

// TestParseRetryAfter pins the RFC 9110 §10.2.3 contract: Retry-After is
// either delay-seconds or an HTTP-date, and anything unusable (garbage,
// zero, a date already past) means "no hint" rather than an error.
func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
	}{
		{"3", 3 * time.Second},
		{"120", 2 * time.Minute},
		{"0", 0},
		{"-5", 0},
		{now.Add(30 * time.Second).Format(http.TimeFormat), 30 * time.Second},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0},                       // already past
		{now.Add(time.Hour).Format("Monday, 02-Jan-06 15:04:05 MST"), time.Hour}, // RFC 850
		{now.Add(2 * time.Second).Format(time.ANSIC), 2 * time.Second},           // asctime
		{"soon", 0},
		{"", 0},
	} {
		if got := parseRetryAfter(tc.in, now); got != tc.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestRetryOnSheddingHonorsHTTPDateRetryAfter is the end-to-end half of
// the regression: a server hinting with an HTTP-date (the form proxies
// and some load balancers emit) must steer the backoff exactly like the
// integral-seconds form.
func TestRetryOnSheddingHonorsHTTPDateRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	ts, calls := shedding(2, now.Add(3*time.Second).Format(http.TimeFormat), "overloaded")
	defer ts.Close()
	c, slept := testClient(ts.URL, RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 10 * time.Second})
	c.now = func() time.Time { return now }
	if _, err := c.Analyze(context.Background(), "s", nil, 0); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
	if len(*slept) != 2 || (*slept)[0] != 3*time.Second || (*slept)[1] != 3*time.Second {
		t.Fatalf("slept = %v, want [3s 3s] from the HTTP-date hint", *slept)
	}
}

func TestJitterSpreadsDefaultBackoff(t *testing.T) {
	c := New("http://unused", RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second})
	for i := 0; i < 100; i++ {
		d := c.backoff(0, 0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside ±50%% of 100ms", d)
		}
	}
}
