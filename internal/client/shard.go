package client

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"repro/internal/server"
	"repro/internal/shard"
)

// ShardWorker adapts a remote snad process into a shard.Worker: each
// protocol op posts to the worker's /v1/shard/{op} endpoint. It does NOT
// retry — the coordinator owns the retry/re-host discipline, and stacking
// a second retry loop under it would stretch its failure detection — but
// it does translate the server's structured error kinds back into the
// shard error taxonomy so the coordinator can classify failures exactly
// as it does for in-process workers.
type ShardWorker struct {
	name string
	c    *Client
}

// NewShardWorker builds a worker proxy for the snad process at base.
// policy's AttemptTimeout bounds each op (retry counts are ignored —
// MaxAttempts is forced to 1).
func NewShardWorker(name, base string, policy RetryPolicy) *ShardWorker {
	policy.MaxAttempts = 1
	return &ShardWorker{name: name, c: New(base, policy)}
}

// Name implements shard.Worker.
func (w *ShardWorker) Name() string { return w.name }

// Do implements shard.Worker.
func (w *ShardWorker) Do(ctx context.Context, op string, req, resp any) error {
	err := w.c.attempt(ctx, "POST", "/v1/shard/"+url.PathEscape(op), jsonBody(req), resp)
	if err == nil {
		return nil
	}
	if ae, ok := err.(*APIError); ok {
		switch ae.Info.Kind {
		case "shard_broken":
			return fmt.Errorf("%w: worker %s: %s", shard.ErrEngineBroken, w.name, ae.Info.Message)
		case "shard_fatal", "bad_request":
			// Deterministic: re-running the same op anywhere reproduces it.
			return &shard.FatalError{Err: fmt.Errorf("worker %s: %s", w.name, ae.Info.Message)}
		}
		// Everything else (overloaded, draining, deadline, engine, ...) is
		// transient from the coordinator's seat: retry, then re-host.
	}
	return err
}

// Ping implements shard.Worker via the worker's liveness endpoint.
func (w *ShardWorker) Ping(ctx context.Context) error {
	_, err := w.c.Health(ctx)
	return err
}

// Iterate runs the joint noise–delay padding fixpoint on a session —
// distributed across the server's registered workers when it has any.
// Deterministic and checkpoint-resumable server-side, so retrying is
// safe.
func (c *Client) Iterate(ctx context.Context, name string, req *server.IterateRequest, timeout time.Duration) (*server.AnalyzeResponse, error) {
	var out server.AnalyzeResponse
	path := "/v1/sessions/" + url.PathEscape(name) + "/iterate" + timeoutQuery(timeout)
	if err := c.doRetry(ctx, "POST", path, jsonBody(req), &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// RegisterWorker announces a shard worker to the coordinator. Idempotent
// per name (re-registering replaces the URL), so transport retries are
// safe.
func (c *Client) RegisterWorker(ctx context.Context, req *server.RegisterWorkerRequest) (*server.WorkerInfo, error) {
	var out server.WorkerInfo
	if err := c.doRetry(ctx, "POST", "/v1/workers", jsonBody(req), &out, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Workers fetches the coordinator's registered worker fleet.
func (c *Client) Workers(ctx context.Context) ([]server.WorkerInfo, error) {
	var out []server.WorkerInfo
	if err := c.doRetry(ctx, "GET", "/v1/workers", nil, &out, true); err != nil {
		return nil, err
	}
	return out, nil
}
