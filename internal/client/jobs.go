package client

import (
	"context"
	"fmt"
	"net/url"
	"time"

	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/server"
)

// SubmitJob submits an async job and returns its 202 snapshot. Not
// retried on transport failure: a submit is journaled before the ack, so
// the job may have been accepted even though the response never arrived —
// replaying it would enqueue the work twice. Shed (429) and draining
// (503) responses are still retried, because those are explicit refusals.
func (c *Client) SubmitJob(ctx context.Context, spec *jobs.Spec) (*report.JobJSON, error) {
	var snap report.JobJSON
	if err := c.doRetry(ctx, "POST", "/v1/jobs", jsonBody(spec), &snap, false); err != nil {
		return nil, err
	}
	return &snap, nil
}

// JobStatus fetches one job's snapshot.
func (c *Client) JobStatus(ctx context.Context, id string) (*report.JobJSON, error) {
	var snap report.JobJSON
	if err := c.doRetry(ctx, "GET", "/v1/jobs/"+url.PathEscape(id), nil, &snap, true); err != nil {
		return nil, err
	}
	return &snap, nil
}

// Jobs lists every job the server remembers (all non-terminal jobs plus
// the retained tail of terminal ones). A non-empty state filters to one
// lifecycle state — "queued", "running", "done", "failed", "canceled" —
// or the pseudo-state "quarantined" (poison jobs parked as failed).
func (c *Client) Jobs(ctx context.Context, state string) ([]report.JobJSON, error) {
	path := "/v1/jobs"
	if state != "" {
		path += "?state=" + url.QueryEscape(state)
	}
	var out server.JobsResponse
	if err := c.doRetry(ctx, "GET", path, nil, &out, true); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob requests cancellation of a job. Idempotent on an already
// canceled job; a done/failed job answers 409 conflict.
func (c *Client) CancelJob(ctx context.Context, id string) (*report.JobJSON, error) {
	var snap report.JobJSON
	if err := c.doRetry(ctx, "DELETE", "/v1/jobs/"+url.PathEscape(id), nil, &snap, true); err != nil {
		return nil, err
	}
	return &snap, nil
}

// WaitJob polls a job until it reaches a terminal state (done, failed, or
// canceled) or ctx expires. Polling backs off gently — jobs run for
// seconds to minutes; hammering the status endpoint wins nothing.
func (c *Client) WaitJob(ctx context.Context, id string) (*report.JobJSON, error) {
	delay := 200 * time.Millisecond
	for {
		snap, err := c.JobStatus(ctx, id)
		if err != nil {
			return nil, err
		}
		if snap.Terminal() {
			return snap, nil
		}
		if err := c.sleep(ctx, delay); err != nil {
			return snap, fmt.Errorf("snad: job %s still %s: %w", id, snap.State, err)
		}
		if delay = delay * 3 / 2; delay > 3*time.Second {
			delay = 3 * time.Second
		}
	}
}
