package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/report"
	"repro/internal/server"
)

// jobServer fakes the /v1/jobs surface: one job that reports "running"
// for the first polls status calls, then "done".
func jobServer(t *testing.T, polls int) (*httptest.Server, *atomic.Int64, *atomic.Int64) {
	t.Helper()
	var submits, status atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		var spec jobs.Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Validate() != nil {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(server.ErrorBody{Error: server.ErrorInfo{Kind: "bad_request", Message: "bad spec"}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(report.JobJSON{ID: "job-000001", Session: spec.Session, Type: spec.Type, State: "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		n := status.Add(1)
		state := "running"
		if int(n) > polls {
			state = "done"
		}
		json.NewEncoder(w).Encode(report.JobJSON{ID: r.PathValue("id"), State: state, Result: json.RawMessage(`{"session":"s"}`)})
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.JobsResponse{Jobs: []report.JobJSON{{ID: "job-000001", State: "queued"}}})
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(report.JobJSON{ID: r.PathValue("id"), State: "running", CancelRequested: true})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &submits, &status
}

func TestSubmitWaitCancelJob(t *testing.T) {
	ts, _, statusCalls := jobServer(t, 2)
	c, slept := testClient(ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})

	snap, err := c.SubmitJob(context.Background(), &jobs.Spec{Session: "s", Type: "analyze"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "job-000001" || snap.State != "queued" {
		t.Fatalf("submit snapshot = %+v", snap)
	}

	final, err := c.WaitJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != "done" || len(final.Result) == 0 {
		t.Fatalf("final = %+v", final)
	}
	if statusCalls.Load() != 3 {
		t.Fatalf("status polls = %d, want 3", statusCalls.Load())
	}
	// The poll loop slept between the non-terminal statuses, starting at
	// its 200ms base.
	if len(*slept) != 2 || (*slept)[0] != 200*time.Millisecond {
		t.Fatalf("slept = %v", *slept)
	}

	list, err := c.Jobs(context.Background(), "")
	if err != nil || len(list) != 1 {
		t.Fatalf("list = %v, %v", list, err)
	}

	got, err := c.CancelJob(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.CancelRequested {
		t.Fatalf("cancel snapshot = %+v", got)
	}
}

// TestSubmitJobNotRetriedOnTransportError pins the at-most-once posture:
// a submit is journaled before its ack, so a dead connection must not be
// replayed into a duplicate job.
func TestSubmitJobNotRetriedOnTransportError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close()
	c, _ := testClient(ts.URL, RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond})
	if _, err := c.SubmitJob(context.Background(), &jobs.Spec{Session: "s", Type: "analyze"}); err == nil {
		t.Fatal("want transport error")
	}
}

// TestSubmitJobRetriedOnShed pins that explicit refusals (429) are still
// retried: the server acknowledged nothing, so replaying is safe.
func TestSubmitJobRetriedOnShed(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(server.ErrorBody{Error: server.ErrorInfo{Kind: "overloaded", Message: "queue full"}})
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(report.JobJSON{ID: "job-000002", State: "queued"})
	}))
	defer ts.Close()
	c, _ := testClient(ts.URL, RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond})
	snap, err := c.SubmitJob(context.Background(), &jobs.Spec{Session: "s", Type: "analyze"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "job-000002" || calls.Load() != 2 {
		t.Fatalf("snap=%+v calls=%d", snap, calls.Load())
	}
}
