// Package prof wires the runtime CPU and heap profilers into the CLIs, so
// performance work can be profiled on real inputs without recompiling.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by non-empty paths and returns a stop
// function that finishes them. The stop function must run before the
// process exits (defer it inside the run function, not around os.Exit).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: %v\n", err)
			}
		}
	}, nil
}
