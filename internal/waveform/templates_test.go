package waveform

import (
	"math"
	"testing"
)

func TestSatRamp(t *testing.T) {
	w := SatRamp(10, 4, 0, 1.2)
	if got := w.Eval(9); got != 0 {
		t.Fatalf("before ramp: %g", got)
	}
	if got := w.Eval(12); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("mid ramp: %g", got)
	}
	if got := w.Eval(20); got != 1.2 {
		t.Fatalf("after ramp: %g", got)
	}
}

func TestSatRampZeroSlew(t *testing.T) {
	w := SatRamp(0, 0, 0, 1)
	if got := w.Eval(1e-12); got != 1 {
		t.Fatalf("zero-slew ramp at 1ps = %g", got)
	}
}

func TestSatRampFalling(t *testing.T) {
	w := SatRamp(0, 2, 1.0, 0)
	if got := w.Eval(1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("falling mid = %g", got)
	}
}

func TestTriangle(t *testing.T) {
	w := Triangle(0, 1, 3, 0.6)
	tt, v := w.Peak()
	if tt != 1 || v != 0.6 {
		t.Fatalf("peak = (%g, %g)", tt, v)
	}
	// Half-peak width: rises through 0.3 at t=0.5, falls through 0.3 at t=2.
	if got := w.WidthAbove(0.3); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("half width = %g, want 1.5", got)
	}
	if got := w.Area(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("area = %g, want 0.9", got)
	}
}

func TestTriangleDegenerate(t *testing.T) {
	if !Triangle(1, 1, 1, 0.5).IsZero() {
		t.Fatal("point triangle should be zero waveform")
	}
	// Zero rise time: starts at peak.
	w := Triangle(0, 0, 2, 1)
	if got := w.Eval(0); got != 1 {
		t.Fatalf("Eval(0) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid triangle did not panic")
		}
	}()
	Triangle(2, 1, 3, 0.5)
}

func TestExpGlitchShape(t *testing.T) {
	peak := 0.5
	w := ExpGlitch(0, 10e-12, 50e-12, peak)
	tt, v := w.Peak()
	if math.Abs(v-peak) > 1e-12 {
		t.Fatalf("peak = %g, want %g", v, peak)
	}
	if math.Abs(tt-10e-12) > 1e-15 {
		t.Fatalf("peak time = %g", tt)
	}
	// One tau after the peak the value should be close to peak/e.
	got := w.Eval(10e-12 + 50e-12)
	want := peak / math.E
	if math.Abs(got-want) > 0.02*peak {
		t.Fatalf("decay @ tau = %g, want ~%g", got, want)
	}
	// Ends at zero.
	_, hi, _ := w.Span()
	if w.Eval(hi) != 0 {
		t.Fatalf("tail end = %g", w.Eval(hi))
	}
}

func TestExpGlitchNegativePeak(t *testing.T) {
	w := ExpGlitch(0, 5e-12, 20e-12, -0.3)
	_, v := w.Peak()
	if v != -0.3 {
		t.Fatalf("peak = %g", v)
	}
	m := MeasureGlitch(w)
	if m.Peak != -0.3 || m.Width <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestMeasureGlitch(t *testing.T) {
	w := Triangle(0, 1e-12, 3e-12, 0.8)
	m := MeasureGlitch(w)
	if m.Peak != 0.8 {
		t.Fatalf("peak = %g", m.Peak)
	}
	if math.Abs(m.Width-1.5e-12) > 1e-15 {
		t.Fatalf("width = %g", m.Width)
	}
	if math.Abs(m.Area-1.2e-12) > 1e-15 {
		t.Fatalf("area = %g", m.Area)
	}
	if m.PeakT != 1e-12 {
		t.Fatalf("peakT = %g", m.PeakT)
	}
}

func TestMeasureGlitchZero(t *testing.T) {
	m := MeasureGlitch(PWL{})
	if m.Peak != 0 || m.Width != 0 || m.Area != 0 {
		t.Fatalf("zero metrics = %+v", m)
	}
}
