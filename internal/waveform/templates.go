package waveform

import "math"

// SatRamp returns a saturated-ramp transition: v0 until t0, linear to v1
// over slew seconds, then v1. It models an aggressor's switching edge; slew
// is the 0–100 % transition time. A non-positive slew is replaced by a very
// short ramp so the waveform stays single-valued.
func SatRamp(t0, slew, v0, v1 float64) PWL {
	if slew <= 0 {
		slew = 1e-15
	}
	return MustNew(
		Point{T: t0, V: v0},
		Point{T: t0 + slew, V: v1},
	)
}

// Triangle returns a triangular glitch: zero until t0, linear rise to peak
// at tPeak, linear fall back to zero at t1. It is the simplest conservative
// glitch template; the noise checks consume its peak and threshold width.
// Requires t0 <= tPeak <= t1.
func Triangle(t0, tPeak, t1, peak float64) PWL {
	if !(t0 <= tPeak && tPeak <= t1) {
		panic("waveform: Triangle requires t0 <= tPeak <= t1")
	}
	if t0 == t1 {
		return PWL{}
	}
	pts := []Point{{T: t0, V: 0}}
	if tPeak > t0 {
		pts = append(pts, Point{T: tPeak, V: peak})
	} else {
		pts[0].V = peak
	}
	if t1 > tPeak {
		pts = append(pts, Point{T: t1, V: 0})
	}
	return MustNew(pts...)
}

// ExpGlitch samples the canonical crosstalk glitch template
//
//	v(t) = peak * (e^{-(t-tp)/tauF}) for t >= tp, rising as
//	v(t) = peak * (t-t0)/(tp-t0)     for t0 <= t <= tp
//
// i.e. a linear ramp up over the aggressor slew followed by an RC
// exponential decay with time constant tauF, sampled into a PWL with enough
// breakpoints to keep interpolation error small. The decay is truncated
// where it falls below 1 % of the peak.
func ExpGlitch(t0, rise, tauF, peak float64) PWL {
	if rise <= 0 {
		rise = 1e-15
	}
	if tauF <= 0 {
		tauF = 1e-15
	}
	tp := t0 + rise
	pts := []Point{{T: t0, V: 0}, {T: tp, V: peak}}
	// Sample the exponential tail out to ~4.6 tau (1 % of peak), 12 points.
	const tail = 4.6
	const n = 12
	for i := 1; i <= n; i++ {
		dt := tail * tauF * float64(i) / n
		pts = append(pts, Point{T: tp + dt, V: peak * math.Exp(-dt/tauF)})
	}
	pts = append(pts, Point{T: tp + tail*tauF*1.05, V: 0})
	return MustNew(pts...)
}

// GlitchMetrics captures the scalar measurements the noise checks consume.
type GlitchMetrics struct {
	Peak  float64 // signed peak voltage
	PeakT float64 // time of the peak
	Width float64 // time spent beyond half the peak magnitude
	Area  float64 // integral of the waveform (charge-like)
}

// MeasureGlitch extracts peak, half-peak width, and area from a glitch
// waveform. For a negative glitch (undershoot) the width is measured below
// half the (negative) peak. A zero waveform yields zero metrics.
func MeasureGlitch(w PWL) GlitchMetrics {
	t, v := w.Peak()
	m := GlitchMetrics{Peak: v, PeakT: t, Area: w.Area()}
	if v > 0 {
		m.Width = w.WidthAbove(v / 2)
	} else if v < 0 {
		m.Width = w.Negate().WidthAbove(-v / 2)
	}
	return m
}
