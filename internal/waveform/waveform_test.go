package waveform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	w, err := New(Point{2, 5}, Point{0, 1}, Point{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	pts := w.Points()
	if len(pts) != 2 || pts[0].T != 0 || pts[1].T != 2 {
		t.Fatalf("points = %v", pts)
	}
}

func TestNewRejectsConflictingDuplicates(t *testing.T) {
	if _, err := New(Point{1, 0}, Point{1, 5}); err == nil {
		t.Fatal("want error for conflicting duplicate times")
	}
}

func TestNewRejectsNaN(t *testing.T) {
	if _, err := New(Point{math.NaN(), 0}); err == nil {
		t.Fatal("want error for NaN time")
	}
	if _, err := New(Point{0, math.Inf(1)}); err == nil {
		t.Fatal("want error for Inf voltage")
	}
}

func TestEvalInterpolatesAndExtrapolates(t *testing.T) {
	w := MustNew(Point{0, 0}, Point{10, 10})
	cases := []struct{ t, want float64 }{
		{-5, 0}, {0, 0}, {5, 5}, {10, 10}, {15, 10},
	}
	for _, c := range cases {
		if got := w.Eval(c.t); got != c.want {
			t.Errorf("Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestEvalZeroWaveform(t *testing.T) {
	var w PWL
	if w.Eval(3) != 0 || !w.IsZero() {
		t.Fatal("zero waveform misbehaves")
	}
}

func TestConstant(t *testing.T) {
	w := Constant(1.8)
	if w.Eval(-100) != 1.8 || w.Eval(100) != 1.8 {
		t.Fatal("Constant not constant")
	}
	if !Constant(0).IsZero() {
		t.Fatal("Constant(0) not zero")
	}
}

func TestPeakSigned(t *testing.T) {
	w := MustNew(Point{0, 0}, Point{1, -0.9}, Point{2, 0.5}, Point{3, 0})
	tt, v := w.Peak()
	if v != -0.9 || tt != 1 {
		t.Fatalf("Peak = (%g, %g)", tt, v)
	}
}

func TestMaxMin(t *testing.T) {
	w := MustNew(Point{0, 1}, Point{1, -2}, Point{2, 3})
	if _, v := w.Max(); v != 3 {
		t.Fatalf("Max = %g", v)
	}
	if _, v := w.Min(); v != -2 {
		t.Fatalf("Min = %g", v)
	}
	if _, v := (PWL{}).Max(); v != 0 {
		t.Fatalf("zero Max = %g", v)
	}
}

func TestAddSuperposition(t *testing.T) {
	a := MustNew(Point{0, 0}, Point{2, 2})
	b := MustNew(Point{1, 0}, Point{3, 2})
	s := a.Add(b)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 1}, {2, 3}, {3, 4}, {4, 4},
	}
	for _, c := range cases {
		if got := s.Eval(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("sum.Eval(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestAddWithZero(t *testing.T) {
	a := MustNew(Point{0, 1}, Point{1, 2})
	if got := a.Add(PWL{}); !pwlEqual(got, a) {
		t.Fatalf("a+0 = %v", got)
	}
	if got := (PWL{}).Add(a); !pwlEqual(got, a) {
		t.Fatalf("0+a = %v", got)
	}
}

func pwlEqual(a, b PWL) bool {
	ap, bp := a.Points(), b.Points()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	return true
}

func TestCrossings(t *testing.T) {
	w := MustNew(Point{0, 0}, Point{1, 1}, Point{2, 0}, Point{3, 1})
	got := w.Crossings(0.5)
	want := []float64{0.5, 1.5, 2.5}
	if len(got) != len(want) {
		t.Fatalf("crossings = %v, want %v", got, want)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("crossings = %v, want %v", got, want)
		}
	}
}

func TestCrossingsTouch(t *testing.T) {
	// Touches the level exactly at a vertex.
	w := MustNew(Point{0, 0}, Point{1, 0.5}, Point{2, 0})
	got := w.Crossings(0.5)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("touch crossings = %v", got)
	}
}

func TestWidthAbove(t *testing.T) {
	w := MustNew(Point{0, 0}, Point{1, 1}, Point{2, 0})
	if got := w.WidthAbove(0.5); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("WidthAbove(0.5) = %g, want 1", got)
	}
	if got := w.WidthAbove(2); got != 0 {
		t.Fatalf("WidthAbove(2) = %g, want 0", got)
	}
	if got := w.WidthAbove(-1); math.Abs(got-2.0) > 1e-12 {
		// Above -1 for the whole span.
		t.Fatalf("WidthAbove(-1) = %g, want 2", got)
	}
}

func TestArea(t *testing.T) {
	w := MustNew(Point{0, 0}, Point{1, 1}, Point{2, 0})
	if got := w.Area(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("Area = %g, want 1", got)
	}
}

func TestSample(t *testing.T) {
	w := MustNew(Point{0, 0}, Point{10, 10})
	s := w.Sample(0, 10, 11)
	if len(s) != 11 || s[5].V != 5 || s[10].V != 10 {
		t.Fatalf("Sample = %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(n=1) did not panic")
		}
	}()
	w.Sample(0, 1, 1)
}

func TestShiftScale(t *testing.T) {
	w := MustNew(Point{0, 1}, Point{1, 2})
	s := w.Shift(5).ScaleV(2)
	if got := s.Eval(6); got != 4 {
		t.Fatalf("shifted scaled Eval(6) = %g", got)
	}
	if got := w.Negate().Eval(1); got != -2 {
		t.Fatalf("Negate Eval = %g", got)
	}
}

func TestSpan(t *testing.T) {
	if _, _, ok := (PWL{}).Span(); ok {
		t.Fatal("zero waveform has a span")
	}
	lo, hi, ok := MustNew(Point{1, 0}, Point{4, 0}).Span()
	if !ok || lo != 1 || hi != 4 {
		t.Fatalf("Span = %g %g %v", lo, hi, ok)
	}
}

func randPWL(r *rand.Rand) PWL {
	n := 2 + r.Intn(8)
	pts := make([]Point, n)
	t := r.Float64() * 10
	for i := range pts {
		pts[i] = Point{T: t, V: r.Float64()*4 - 2}
		t += 0.01 + r.Float64()
	}
	return MustNew(pts...)
}

func TestQuickAddCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		s1, s2 := a.Add(b), b.Add(a)
		for k := 0; k < 30; k++ {
			tt := r.Float64()*30 - 5
			if math.Abs(s1.Eval(tt)-s2.Eval(tt)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAddPointwise(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randPWL(r), randPWL(r)
		s := a.Add(b)
		for k := 0; k < 30; k++ {
			tt := r.Float64()*30 - 5
			if math.Abs(s.Eval(tt)-(a.Eval(tt)+b.Eval(tt))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickPeakIsBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randPWL(r)
		_, peak := w.Peak()
		for k := 0; k < 50; k++ {
			tt := r.Float64()*30 - 5
			if math.Abs(w.Eval(tt)) > math.Abs(peak)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickWidthAboveMonotone(t *testing.T) {
	// Raising the threshold can only shrink the width.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randPWL(r)
		l1 := r.Float64()*2 - 1
		l2 := l1 + r.Float64()
		return w.WidthAbove(l2) <= w.WidthAbove(l1)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
