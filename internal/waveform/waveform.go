// Package waveform provides piecewise-linear (PWL) voltage waveforms and the
// measurements static noise analysis makes on them: peak voltage, width at a
// threshold, area, and level-crossing times.
//
// PWL waveforms are the lingua franca between the analytical noise models
// (which emit glitch templates), the transient MNA simulator (which emits
// sampled node voltages), and the checks (which measure peaks and widths
// against library noise-rejection curves).
package waveform

import (
	"fmt"
	"math"
	"sort"
)

// Point is one breakpoint of a PWL waveform.
type Point struct {
	T float64 // time, seconds
	V float64 // voltage, volts
}

// PWL is a piecewise-linear waveform: linear interpolation between sorted
// breakpoints, constant extrapolation before the first and after the last.
// The zero value is the identically-zero waveform.
type PWL struct {
	pts []Point
}

// New builds a PWL from breakpoints. Points are sorted by time; duplicate
// times are allowed only if they carry equal voltages (a true step must be
// modelled with a short ramp). It returns an error on NaN/Inf coordinates or
// on conflicting duplicates.
func New(pts ...Point) (PWL, error) {
	cp := append([]Point(nil), pts...)
	for _, p := range cp {
		if math.IsNaN(p.T) || math.IsInf(p.T, 0) || math.IsNaN(p.V) || math.IsInf(p.V, 0) {
			return PWL{}, fmt.Errorf("waveform: invalid point (%g, %g)", p.T, p.V)
		}
	}
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].T < cp[j].T })
	out := cp[:0]
	for _, p := range cp {
		if n := len(out); n > 0 && out[n-1].T == p.T {
			if out[n-1].V != p.V {
				return PWL{}, fmt.Errorf("waveform: conflicting values %g and %g at t=%g", out[n-1].V, p.V, p.T)
			}
			continue
		}
		out = append(out, p)
	}
	return PWL{pts: append([]Point(nil), out...)}, nil
}

// MustNew is New but panics on error; for literals in tests and generators.
func MustNew(pts ...Point) PWL {
	w, err := New(pts...)
	if err != nil {
		panic(err)
	}
	return w
}

// Constant returns the waveform that is v everywhere.
func Constant(v float64) PWL {
	if v == 0 {
		return PWL{}
	}
	return PWL{pts: []Point{{T: 0, V: v}}}
}

// Points returns a copy of the breakpoints.
func (w PWL) Points() []Point { return append([]Point(nil), w.pts...) }

// IsZero reports whether the waveform is identically zero.
func (w PWL) IsZero() bool {
	for _, p := range w.pts {
		if p.V != 0 {
			return false
		}
	}
	return true
}

// Eval returns the waveform value at time t.
func (w PWL) Eval(t float64) float64 {
	n := len(w.pts)
	if n == 0 {
		return 0
	}
	if t <= w.pts[0].T {
		return w.pts[0].V
	}
	if t >= w.pts[n-1].T {
		return w.pts[n-1].V
	}
	i := sort.Search(n, func(i int) bool { return w.pts[i].T >= t })
	a, b := w.pts[i-1], w.pts[i]
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// Span returns the time range covered by breakpoints (first to last).
// The zero waveform spans nothing and returns ok=false.
func (w PWL) Span() (lo, hi float64, ok bool) {
	if len(w.pts) == 0 {
		return 0, 0, false
	}
	return w.pts[0].T, w.pts[len(w.pts)-1].T, true
}

// Peak returns the breakpoint with the maximum |V| (PWL extrema always lie
// on breakpoints). For the zero waveform it returns (0, 0).
func (w PWL) Peak() (t, v float64) {
	best := 0.0
	for _, p := range w.pts {
		if math.Abs(p.V) > math.Abs(best) {
			best = p.V
			t = p.T
		}
	}
	return t, best
}

// Max returns the maximum value of the waveform and a time achieving it.
func (w PWL) Max() (t, v float64) {
	if len(w.pts) == 0 {
		return 0, 0
	}
	t, v = w.pts[0].T, w.pts[0].V
	for _, p := range w.pts[1:] {
		if p.V > v {
			t, v = p.T, p.V
		}
	}
	return t, v
}

// Min returns the minimum value of the waveform and a time achieving it.
func (w PWL) Min() (t, v float64) {
	if len(w.pts) == 0 {
		return 0, 0
	}
	t, v = w.pts[0].T, w.pts[0].V
	for _, p := range w.pts[1:] {
		if p.V < v {
			t, v = p.T, p.V
		}
	}
	return t, v
}

// Shift translates the waveform by dt in time.
func (w PWL) Shift(dt float64) PWL {
	out := make([]Point, len(w.pts))
	for i, p := range w.pts {
		out[i] = Point{T: p.T + dt, V: p.V}
	}
	return PWL{pts: out}
}

// ScaleV multiplies every voltage by k.
func (w PWL) ScaleV(k float64) PWL {
	out := make([]Point, len(w.pts))
	for i, p := range w.pts {
		out[i] = Point{T: p.T, V: p.V * k}
	}
	return PWL{pts: out}
}

// Negate returns -w.
func (w PWL) Negate() PWL { return w.ScaleV(-1) }

// Add returns the pointwise sum of the two waveforms: superposition of
// glitches. The breakpoint set of the result is the union of both inputs'.
func (w PWL) Add(o PWL) PWL {
	if len(w.pts) == 0 {
		return PWL{pts: append([]Point(nil), o.pts...)}
	}
	if len(o.pts) == 0 {
		return PWL{pts: append([]Point(nil), w.pts...)}
	}
	times := make([]float64, 0, len(w.pts)+len(o.pts))
	for _, p := range w.pts {
		times = append(times, p.T)
	}
	for _, p := range o.pts {
		times = append(times, p.T)
	}
	sort.Float64s(times)
	out := make([]Point, 0, len(times))
	for _, t := range times {
		if n := len(out); n > 0 && out[n-1].T == t {
			continue
		}
		out = append(out, Point{T: t, V: w.Eval(t) + o.Eval(t)})
	}
	return PWL{pts: out}
}

// Crossings returns the times at which the waveform crosses the given level,
// in ascending order. A segment lying exactly on the level contributes its
// endpoints. Touch points (local extremum exactly at the level) are included
// once.
func (w PWL) Crossings(level float64) []float64 {
	var out []float64
	push := func(t float64) {
		if n := len(out); n > 0 && out[n-1] == t {
			return
		}
		out = append(out, t)
	}
	for i := 1; i < len(w.pts); i++ {
		a, b := w.pts[i-1], w.pts[i]
		da, db := a.V-level, b.V-level
		switch {
		case da == 0 && db == 0:
			push(a.T)
			push(b.T)
		case da == 0:
			push(a.T)
		case db == 0:
			push(b.T)
		case (da < 0) != (db < 0):
			frac := da / (da - db)
			push(a.T + frac*(b.T-a.T))
		}
	}
	return out
}

// WidthAbove returns the total time the waveform spends strictly above
// level. It measures glitch width at a threshold for positive-going
// glitches; use Negate for undershoot glitches.
func (w PWL) WidthAbove(level float64) float64 {
	if len(w.pts) < 2 {
		return 0
	}
	var width float64
	for i := 1; i < len(w.pts); i++ {
		a, b := w.pts[i-1], w.pts[i]
		da, db := a.V-level, b.V-level
		dt := b.T - a.T
		switch {
		case da > 0 && db > 0:
			width += dt
		case da > 0 && db <= 0:
			width += dt * da / (da - db)
		case da <= 0 && db > 0:
			width += dt * db / (db - da)
		}
	}
	return width
}

// Area returns the integral of the waveform over its breakpoint span
// (trapezoidal, exact for PWL). Constant tails outside the span are not
// integrated.
func (w PWL) Area() float64 {
	var area float64
	for i := 1; i < len(w.pts); i++ {
		a, b := w.pts[i-1], w.pts[i]
		area += (b.T - a.T) * (a.V + b.V) / 2
	}
	return area
}

// Sample evaluates the waveform on a uniform grid of n points across
// [t0, t1] inclusive. n must be at least 2.
func (w PWL) Sample(t0, t1 float64, n int) []Point {
	if n < 2 {
		panic("waveform: Sample needs n >= 2")
	}
	out := make([]Point, n)
	dt := (t1 - t0) / float64(n-1)
	for i := range out {
		t := t0 + float64(i)*dt
		out[i] = Point{T: t, V: w.Eval(t)}
	}
	return out
}

// String summarises the waveform for debugging.
func (w PWL) String() string {
	if len(w.pts) == 0 {
		return "pwl{0}"
	}
	t, v := w.Peak()
	return fmt.Sprintf("pwl{%d pts, peak %.4gV @ %.4gs}", len(w.pts), v, t)
}
