package vlog

import (
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

const sample = `// a tiny mapped netlist
module top (a, b, y);
  input a, b;
  output y;
  wire n1; /* internal
             node */
  NAND2_X1 u0 (.A(a), .B(b), .Y(n1));
  INV_X1 u1 (.A(n1), .Y(y));
endmodule
`

func TestParseSample(t *testing.T) {
	d, err := Parse(strings.NewReader(sample), liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "top" {
		t.Fatalf("name = %q", d.Name)
	}
	if d.NumInsts() != 2 || d.NumPorts() != 3 {
		t.Fatalf("insts=%d ports=%d", d.NumInsts(), d.NumPorts())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	u0 := d.FindInst("u0")
	if u0 == nil || u0.Cell != "NAND2_X1" {
		t.Fatalf("u0 = %+v", u0)
	}
	if got := u0.Outputs()[0].Net.Name; got != "n1" {
		t.Fatalf("u0.Y net = %q", got)
	}
	// Directions resolved from the library.
	if d.FindNet("n1").Driver().Inst.Name != "u0" {
		t.Fatal("n1 driver wrong")
	}
	if d.FindPort("a").Dir != netlist.In || d.FindPort("y").Dir != netlist.Out {
		t.Fatal("port directions wrong")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	lib := liberty.Generic()
	d, err := Parse(strings.NewReader(sample), lib)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(strings.NewReader(sb.String()), lib)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if d2.NumInsts() != d.NumInsts() || d2.NumNets() != d.NumNets() || d2.NumPorts() != d.NumPorts() {
		t.Fatalf("round trip changed design:\n%s", sb.String())
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseEscapedIdentifier(t *testing.T) {
	src := "module m (\\a$1 , y);\n input \\a$1 ;\n output y;\n INV_X1 u (.A(\\a$1 ), .Y(y));\nendmodule\n"
	d, err := Parse(strings.NewReader(src), liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	if d.FindPort("a$1") == nil {
		t.Fatalf("escaped port missing; ports = %v", d.Ports())
	}
}

func TestParseErrors(t *testing.T) {
	lib := liberty.Generic()
	cases := []struct{ name, src string }{
		{"no module", "wire x;"},
		{"unterminated comment", "module m (a); /* x"},
		{"unknown cell", "module m (a);\ninput a;\nFOO u (.A(a));\nendmodule"},
		{"bad pin", "module m (a);\ninput a;\nINV_X1 u (.Q(a));\nendmodule"},
		{"positional conn", "module m (a);\ninput a;\nINV_X1 u (a, a);\nendmodule"},
		{"undeclared header port", "module m (a, ghost);\ninput a;\nINV_X1 u (.A(a), .Y(y));\nendmodule"},
		{"missing endmodule", "module m (a);\ninput a;"},
		{"duplicate inst", "module m (a);\ninput a;\nINV_X1 u (.A(a), .Y(x));\nINV_X1 u (.A(a), .Y(z));\nendmodule"},
		{"vector decl", "module m (a);\ninput a;\nwire (x);\nendmodule"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src), lib); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestLineNumbersInErrors(t *testing.T) {
	src := "module m (a);\ninput a;\nFOO u (.A(a));\nendmodule"
	_, err := Parse(strings.NewReader(src), liberty.Generic())
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	lib := liberty.Generic()
	d, err := Parse(strings.NewReader(sample), lib)
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := Write(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("nondeterministic output")
	}
}
