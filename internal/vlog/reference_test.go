package vlog

// This file preserves the original sequential whole-input parser as a
// test-only reference implementation. The golden equivalence tests in
// golden_test.go check that the streaming parallel Parse produces
// designs (and, on singly-broken inputs, errors) identical to this
// implementation.

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// parseReference reads one structural module sequentially.
func parseReference(r io.Reader, lib *liberty.Library) (*netlist.Design, error) {
	toks, err := refTokenize(r)
	if err != nil {
		return nil, err
	}
	p := &refParser{toks: toks, lib: lib}
	return p.module()
}

type refToken struct {
	text string
	line int
}

// refTokenize splits the source into identifiers, punctuation, and
// escaped names, stripping // and /* */ comments.
func refTokenize(r io.Reader) ([]refToken, error) {
	br := bufio.NewReader(r)
	var toks []refToken
	line := 1
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, refToken{text: cur.String(), line: line})
			cur.Reset()
		}
	}
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, fmt.Errorf("vlog: %w", err)
		}
		switch {
		case c == '\n':
			flush()
			line++
		case unicode.IsSpace(c):
			flush()
		case c == '/':
			n, _, err := br.ReadRune()
			if err == nil && n == '/' {
				flush()
				for {
					c2, _, err2 := br.ReadRune()
					if err2 != nil || c2 == '\n' {
						line++
						break
					}
				}
			} else if err == nil && n == '*' {
				flush()
				prev := rune(0)
				for {
					c2, _, err2 := br.ReadRune()
					if err2 != nil {
						return nil, fmt.Errorf("vlog: line %d: unterminated block comment", line)
					}
					if c2 == '\n' {
						line++
					}
					if prev == '*' && c2 == '/' {
						break
					}
					prev = c2
				}
			} else {
				return nil, fmt.Errorf("vlog: line %d: stray '/'", line)
			}
		case strings.ContainsRune("(),;.", c):
			flush()
			toks = append(toks, refToken{text: string(c), line: line})
		case c == '\\':
			// Escaped identifier: runs to whitespace.
			flush()
			for {
				c2, _, err2 := br.ReadRune()
				if err2 != nil || unicode.IsSpace(c2) {
					if c2 == '\n' {
						line++
					}
					break
				}
				cur.WriteRune(c2)
			}
			flush()
		default:
			cur.WriteRune(c)
		}
	}
}

type refParser struct {
	toks []refToken
	pos  int
	lib  *liberty.Library
}

func (p *refParser) peek() (refToken, bool) {
	if p.pos >= len(p.toks) {
		return refToken{}, false
	}
	return p.toks[p.pos], true
}

func (p *refParser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].line
}

func (p *refParser) next() (refToken, error) {
	t, ok := p.peek()
	if !ok {
		return refToken{}, fmt.Errorf("vlog: line %d: unexpected end of input", p.lastLine())
	}
	p.pos++
	return t, nil
}

func (p *refParser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return fmt.Errorf("vlog: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return nil
}

func (p *refParser) module() (*netlist.Design, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	d := netlist.New(name.text)
	if err := p.expect("("); err != nil {
		return nil, err
	}
	headerPorts := []string{}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		headerPorts = append(headerPorts, t.text)
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	declared := map[string]bool{}

	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("vlog: line %d: missing endmodule", p.lastLine())
		}
		switch t.text {
		case "endmodule":
			p.pos++
			for _, hp := range headerPorts {
				if !declared[hp] {
					return nil, fmt.Errorf("vlog: line %d: port %q in header but never declared", t.line, hp)
				}
			}
			return d, nil
		case "input", "output":
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			dir := netlist.In
			if t.text == "output" {
				dir = netlist.Out
			}
			for _, n := range names {
				if _, err := d.AddPort(n, dir); err != nil {
					return nil, fmt.Errorf("vlog: line %d: %w", t.line, err)
				}
				declared[n] = true
			}
		case "wire":
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				d.Net(n)
			}
		default:
			if err := p.instance(d); err != nil {
				return nil, err
			}
		}
	}
}

func (p *refParser) nameList() ([]string, error) {
	var out []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case ";":
			return out, nil
		case ",":
		case "(", ")", ".":
			return nil, fmt.Errorf("vlog: line %d: unexpected %q in declaration", t.line, t.text)
		default:
			out = append(out, t.text)
		}
	}
}

func (p *refParser) instance(d *netlist.Design) error {
	cellTok, err := p.next()
	if err != nil {
		return err
	}
	cell := p.lib.Cell(cellTok.text)
	if cell == nil {
		return fmt.Errorf("vlog: line %d: unknown cell %q (behavioral Verilog is not supported)", cellTok.line, cellTok.text)
	}
	nameTok, err := p.next()
	if err != nil {
		return err
	}
	if _, err := d.AddInst(nameTok.text, cell.Name); err != nil {
		return fmt.Errorf("vlog: line %d: %w", nameTok.line, err)
	}
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		if t.text != "." {
			return fmt.Errorf("vlog: line %d: positional connections are not supported (found %q)", t.line, t.text)
		}
		pinTok, err := p.next()
		if err != nil {
			return err
		}
		pin := cell.Pin(pinTok.text)
		if pin == nil {
			return fmt.Errorf("vlog: line %d: cell %s has no pin %q", pinTok.line, cell.Name, pinTok.text)
		}
		if err := p.expect("("); err != nil {
			return err
		}
		netTok, err := p.next()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		dir := netlist.In
		if pin.Dir == liberty.Output {
			dir = netlist.Out
		}
		if err := d.Connect(nameTok.text, pinTok.text, netTok.text, dir); err != nil {
			return fmt.Errorf("vlog: line %d: %w", netTok.line, err)
		}
	}
	return p.expect(";")
}
