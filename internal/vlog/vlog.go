// Package vlog reads and writes the structural gate-level Verilog subset
// that synthesis netlists use — one module of cell instances with named
// port connections:
//
//	module top (a, b, y);
//	  input a, b;
//	  output y;
//	  wire n1;
//	  NAND2_X1 u0 (.A(a), .B(b), .Y(n1));
//	  INV_X1   u1 (.A(n1), .Y(y));
//	endmodule
//
// Pin directions come from the cell library, so Parse takes the
// liberty.Library the netlist is implemented in. Unsupported Verilog
// (behavioral code, buses/vectors, parameters, assigns, multiple modules)
// is rejected with a positioned error rather than misread.
package vlog

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Parse reads one structural module against the given library.
func Parse(r io.Reader, lib *liberty.Library) (*netlist.Design, error) {
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, lib: lib}
	return p.module()
}

type token struct {
	text string
	line int
}

// tokenize splits the source into identifiers, punctuation, and escaped
// names, stripping // and /* */ comments.
func tokenize(r io.Reader) ([]token, error) {
	br := bufio.NewReader(r)
	var toks []token
	line := 1
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			toks = append(toks, token{text: cur.String(), line: line})
			cur.Reset()
		}
	}
	for {
		c, _, err := br.ReadRune()
		if err == io.EOF {
			flush()
			return toks, nil
		}
		if err != nil {
			return nil, fmt.Errorf("vlog: %w", err)
		}
		switch {
		case c == '\n':
			flush()
			line++
		case unicode.IsSpace(c):
			flush()
		case c == '/':
			n, _, err := br.ReadRune()
			if err == nil && n == '/' {
				flush()
				for {
					c2, _, err2 := br.ReadRune()
					if err2 != nil || c2 == '\n' {
						line++
						break
					}
				}
			} else if err == nil && n == '*' {
				flush()
				prev := rune(0)
				for {
					c2, _, err2 := br.ReadRune()
					if err2 != nil {
						return nil, fmt.Errorf("vlog: line %d: unterminated block comment", line)
					}
					if c2 == '\n' {
						line++
					}
					if prev == '*' && c2 == '/' {
						break
					}
					prev = c2
				}
			} else {
				return nil, fmt.Errorf("vlog: line %d: stray '/'", line)
			}
		case strings.ContainsRune("(),;.", c):
			flush()
			toks = append(toks, token{text: string(c), line: line})
		case c == '\\':
			// Escaped identifier: runs to whitespace.
			flush()
			for {
				c2, _, err2 := br.ReadRune()
				if err2 != nil || unicode.IsSpace(c2) {
					if c2 == '\n' {
						line++
					}
					break
				}
				cur.WriteRune(c2)
			}
			flush()
		default:
			cur.WriteRune(c)
		}
	}
}

type parser struct {
	toks []token
	pos  int
	lib  *liberty.Library
}

func (p *parser) peek() (token, bool) {
	if p.pos >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.pos], true
}

// lastLine is the line of the final token — the best position available
// for truncated-input errors.
func (p *parser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].line
}

func (p *parser) next() (token, error) {
	t, ok := p.peek()
	if !ok {
		return token{}, fmt.Errorf("vlog: line %d: unexpected end of input", p.lastLine())
	}
	p.pos++
	return t, nil
}

func (p *parser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.text != text {
		return fmt.Errorf("vlog: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return nil
}

func (p *parser) module() (*netlist.Design, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name, err := p.next()
	if err != nil {
		return nil, err
	}
	d := netlist.New(name.text)
	// Header port list (names only; directions come from declarations).
	if err := p.expect("("); err != nil {
		return nil, err
	}
	headerPorts := []string{}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		headerPorts = append(headerPorts, t.text)
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	declared := map[string]bool{}

	for {
		t, ok := p.peek()
		if !ok {
			return nil, fmt.Errorf("vlog: line %d: missing endmodule", p.lastLine())
		}
		switch t.text {
		case "endmodule":
			p.pos++
			for _, hp := range headerPorts {
				if !declared[hp] {
					return nil, fmt.Errorf("vlog: line %d: port %q in header but never declared", t.line, hp)
				}
			}
			return d, nil
		case "input", "output":
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			dir := netlist.In
			if t.text == "output" {
				dir = netlist.Out
			}
			for _, n := range names {
				if _, err := d.AddPort(n, dir); err != nil {
					return nil, fmt.Errorf("vlog: line %d: %w", t.line, err)
				}
				declared[n] = true
			}
		case "wire":
			p.pos++
			names, err := p.nameList()
			if err != nil {
				return nil, err
			}
			for _, n := range names {
				d.Net(n)
			}
		default:
			if err := p.instance(d); err != nil {
				return nil, err
			}
		}
	}
}

// nameList consumes "a, b, c ;".
func (p *parser) nameList() ([]string, error) {
	var out []string
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.text {
		case ";":
			return out, nil
		case ",":
		case "(", ")", ".":
			return nil, fmt.Errorf("vlog: line %d: unexpected %q in declaration", t.line, t.text)
		default:
			out = append(out, t.text)
		}
	}
}

// instance consumes "CELL name ( .PIN(net), ... ) ;".
func (p *parser) instance(d *netlist.Design) error {
	cellTok, err := p.next()
	if err != nil {
		return err
	}
	cell := p.lib.Cell(cellTok.text)
	if cell == nil {
		return fmt.Errorf("vlog: line %d: unknown cell %q (behavioral Verilog is not supported)", cellTok.line, cellTok.text)
	}
	nameTok, err := p.next()
	if err != nil {
		return err
	}
	inst, err := d.AddInst(nameTok.text, cell.Name)
	if err != nil {
		return fmt.Errorf("vlog: line %d: %w", nameTok.line, err)
	}
	_ = inst
	if err := p.expect("("); err != nil {
		return err
	}
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		if t.text == ")" {
			break
		}
		if t.text == "," {
			continue
		}
		if t.text != "." {
			return fmt.Errorf("vlog: line %d: positional connections are not supported (found %q)", t.line, t.text)
		}
		pinTok, err := p.next()
		if err != nil {
			return err
		}
		pin := cell.Pin(pinTok.text)
		if pin == nil {
			return fmt.Errorf("vlog: line %d: cell %s has no pin %q", pinTok.line, cell.Name, pinTok.text)
		}
		if err := p.expect("("); err != nil {
			return err
		}
		netTok, err := p.next()
		if err != nil {
			return err
		}
		if err := p.expect(")"); err != nil {
			return err
		}
		dir := netlist.In
		if pin.Dir == liberty.Output {
			dir = netlist.Out
		}
		if err := d.Connect(nameTok.text, pinTok.text, netTok.text, dir); err != nil {
			return fmt.Errorf("vlog: line %d: %w", netTok.line, err)
		}
	}
	return p.expect(";")
}

// Write renders the design as one structural module.
func Write(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	ports := d.Ports()
	names := make([]string, len(ports))
	for i, p := range ports {
		names[i] = p.Name
	}
	fmt.Fprintf(bw, "module %s (%s);\n", d.Name, strings.Join(names, ", "))
	var ins, outs []string
	portNet := map[string]bool{}
	for _, p := range ports {
		portNet[p.Name] = true
		if p.Dir == netlist.In {
			ins = append(ins, p.Name)
		} else {
			outs = append(outs, p.Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, "  input %s;\n", strings.Join(ins, ", "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(bw, "  output %s;\n", strings.Join(outs, ", "))
	}
	var wires []string
	for _, n := range d.Nets() {
		if !portNet[n.Name] {
			wires = append(wires, n.Name)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(wires, ", "))
	}
	for _, inst := range d.Insts() {
		var conns []string
		for _, c := range inst.Inputs() {
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Pin, c.Net.Name))
		}
		for _, c := range inst.Outputs() {
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Pin, c.Net.Name))
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", inst.Cell, inst.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}
