// Package vlog reads and writes the structural gate-level Verilog subset
// that synthesis netlists use — one module of cell instances with named
// port connections:
//
//	module top (a, b, y);
//	  input a, b;
//	  output y;
//	  wire n1;
//	  NAND2_X1 u0 (.A(a), .B(b), .Y(n1));
//	  INV_X1   u1 (.A(n1), .Y(y));
//	endmodule
//
// Pin directions come from the cell library, so Parse takes the
// liberty.Library the netlist is implemented in. Unsupported Verilog
// (behavioral code, buses/vectors, parameters, assigns, multiple modules)
// is rejected with a positioned error rather than misread.
//
// The reader is streaming and parallel: a cheap byte-level scan splits
// the input into ';'-terminated statements (comment- and
// escaped-identifier-aware, so a ';' inside either never splits), a
// worker pool lexes and parses statement batches into records feeding
// the string interner, and the records are applied to the design
// serially in statement order — so the resulting design, including
// creation-order IDs, is identical to a sequential parse. The input is
// never materialized as one []byte and identifiers are interned rather
// than allocated per token.
package vlog

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"repro/internal/intern"
	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Parse reads one structural module against the given library.
func Parse(r io.Reader, lib *liberty.Library) (*netlist.Design, error) {
	sp := newSplitter(r)
	workers := runtime.GOMAXPROCS(0)
	const batchSize = 1024

	var (
		d           *netlist.Design
		headerPorts []intern.Sym
		declared    = map[intern.Sym]bool{}
		lastTok     = 0 // line of the last token seen anywhere
		segIndex    = 0 // global statement segment counter
		segs        []segment
		parsed      [][]stmtRec
		lastLines   []int
	)
	for {
		var err error
		segs, err = sp.nextBatch(segs[:0], batchSize)
		if err != nil {
			return nil, err
		}
		if len(segs) == 0 {
			break
		}
		if cap(parsed) < len(segs) {
			parsed = make([][]stmtRec, len(segs))
			lastLines = make([]int, len(segs))
		}
		parsed = parsed[:len(segs)]
		lastLines = lastLines[:len(segs)]
		first := segIndex == 0
		parseBatch(segs, first, lib, workers, parsed, lastLines)
		segIndex += len(segs)

		for i := range parsed {
			if lastLines[i] > 0 {
				lastTok = lastLines[i]
			}
			for _, rec := range parsed[i] {
				switch rec.kind {
				case kErr:
					return nil, rec.err
				case kHeader:
					d = netlist.New(rec.name.String())
					headerPorts = rec.names
				case kDecl:
					for _, nm := range rec.names {
						if _, err := d.AddPortSym(nm, rec.dir); err != nil {
							return nil, fmt.Errorf("vlog: line %d: %w", rec.line, err)
						}
						declared[nm] = true
					}
				case kWire:
					for _, nm := range rec.names {
						d.NetSym(nm)
					}
				case kInst:
					if _, err := d.AddInstSym(rec.name, rec.cell); err != nil {
						return nil, fmt.Errorf("vlog: line %d: %w", rec.line, err)
					}
					for _, c := range rec.conns {
						if err := d.ConnectSym(rec.name, c.pinSym, c.netSym, c.dir); err != nil {
							return nil, fmt.Errorf("vlog: line %d: %w", c.line, err)
						}
					}
				case kEnd:
					for _, hp := range headerPorts {
						if !declared[hp] {
							return nil, fmt.Errorf("vlog: line %d: port %q in header but never declared", rec.line, hp.String())
						}
					}
					d.Compact()
					return d, nil
				}
			}
		}
	}
	if lastTok == 0 {
		// No tokens at all: same report as asking for "module" at EOF.
		return nil, fmt.Errorf("vlog: line 1: unexpected end of input")
	}
	return nil, fmt.Errorf("vlog: line %d: missing endmodule", lastTok)
}

// parseBatch parses each segment of a batch into statement records,
// fanning out across workers when there is enough work to matter.
func parseBatch(segs []segment, first bool, lib *liberty.Library, workers int, out [][]stmtRec, lastLines []int) {
	if workers <= 1 || len(segs) < 4 {
		var lx lexer
		for i := range segs {
			out[i], lastLines[i] = parseSegment(&lx, segs[i], first && i == 0, lib)
		}
		return
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var lx lexer
			for i := w; i < len(segs); i += workers {
				out[i], lastLines[i] = parseSegment(&lx, segs[i], first && i == 0, lib)
			}
		}(w)
	}
	wg.Wait()
}

// --- statement records -------------------------------------------------

type stmtKind int

const (
	kErr stmtKind = iota
	kHeader
	kDecl
	kWire
	kInst
	kEnd
)

type connRec struct {
	pinSym intern.Sym
	netSym intern.Sym
	dir    netlist.Dir
	line   int // net token line, for Connect error positions
}

type stmtRec struct {
	kind  stmtKind
	err   error        // kErr only
	line  int          // keyword/name/endmodule line for apply-time errors
	name  intern.Sym   // design name (kHeader) or instance name (kInst)
	cell  intern.Sym   // canonical cell name (kInst)
	dir   netlist.Dir  // kDecl
	names []intern.Sym // header ports (kHeader) or declared names (kDecl/kWire)
	conns []connRec    // kInst
}

// --- input splitting ---------------------------------------------------

// segment is one ';'-terminated statement (or the trailing input after
// the last ';'), with the line number of its first byte.
type segment struct {
	data []byte
	line int
}

const (
	stCode = iota
	stLineComment
	stBlockComment
	stEsc
)

// splitter finds statement boundaries with a byte-level state machine:
// a ';' splits only in code state, never inside //, /* */ or an escaped
// identifier. It validates comment structure as it goes, so segments
// handed to the parsing workers always contain complete comments.
type splitter struct {
	r     io.Reader
	buf   []byte
	start int // offset of the current segment's first byte
	pos   int // scan cursor
	n     int // valid bytes in buf
	line  int // line number at pos
	segLn int // line number at start
	state int
	star  bool // in a block comment, previous byte was '*'
	eof   bool
	done  bool
}

func newSplitter(r io.Reader) *splitter {
	return &splitter{r: r, buf: make([]byte, 256*1024), line: 1, segLn: 1}
}

// fill compacts the unscanned tail to the front of the buffer and reads
// more input. Segment views handed out earlier become invalid, so the
// caller only refills between batches.
func (s *splitter) fill() error {
	if s.start > 0 {
		copy(s.buf, s.buf[s.start:s.n])
		s.n -= s.start
		s.pos -= s.start
		s.start = 0
	}
	if s.n == len(s.buf) {
		// One statement larger than the window: grow it.
		nb := make([]byte, 2*len(s.buf))
		copy(nb, s.buf[:s.n])
		s.buf = nb
	}
	for !s.eof && s.n < len(s.buf) {
		m, err := s.r.Read(s.buf[s.n:])
		s.n += m
		if err == io.EOF {
			s.eof = true
		} else if err != nil {
			return fmt.Errorf("vlog: %w", err)
		}
		if m > 0 {
			break
		}
	}
	return nil
}

// nextBatch returns up to max segments. The views are valid until the
// next nextBatch call. An empty batch means end of input.
func (s *splitter) nextBatch(dst []segment, max int) ([]segment, error) {
	if s.done {
		return dst, nil
	}
	for len(dst) < max {
		if s.pos >= s.n {
			if s.eof {
				if s.state == stBlockComment {
					return dst, fmt.Errorf("vlog: line %d: unterminated block comment", s.line)
				}
				if s.start < s.n {
					dst = append(dst, segment{data: s.buf[s.start:s.n], line: s.segLn})
					s.start = s.n
				}
				s.done = true
				return dst, nil
			}
			if len(dst) > 0 {
				// Drain what we have before compacting the buffer, so
				// the returned views stay valid.
				return dst, nil
			}
			if err := s.fill(); err != nil {
				return dst, err
			}
			continue
		}
		c := s.buf[s.pos]
		switch s.state {
		case stCode:
			switch c {
			case '\n':
				s.line++
			case ';':
				dst = append(dst, segment{data: s.buf[s.start : s.pos+1], line: s.segLn})
				s.start = s.pos + 1
				s.segLn = s.line
			case '/':
				if s.pos+1 >= s.n && !s.eof {
					if len(dst) > 0 {
						return dst, nil // drain, then refill for lookahead
					}
					if err := s.fill(); err != nil {
						return dst, err
					}
					continue // re-examine with lookahead available
				}
				if s.pos+1 >= s.n {
					return dst, fmt.Errorf("vlog: line %d: stray '/'", s.line)
				}
				switch s.buf[s.pos+1] {
				case '/':
					s.state = stLineComment
					s.pos++
				case '*':
					s.state = stBlockComment
					s.star = false
					s.pos++
				default:
					return dst, fmt.Errorf("vlog: line %d: stray '/'", s.line)
				}
			case '\\':
				s.state = stEsc
			}
		case stLineComment:
			if c == '\n' {
				s.line++
				s.state = stCode
			}
		case stBlockComment:
			if c == '\n' {
				s.line++
			}
			if s.star && c == '/' {
				s.state = stCode
			}
			s.star = c == '*'
		case stEsc:
			// Escaped identifiers run to whitespace; the splitter only
			// needs ASCII spacing to find real ';' boundaries.
			if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f' {
				if c == '\n' {
					s.line++
				}
				s.state = stCode
			}
		}
		s.pos++
	}
	return dst, nil
}

// --- lexing ------------------------------------------------------------

type tokView struct {
	text []byte
	line int
}

// lexer carries reusable token scratch across segments of one worker.
type lexer struct {
	toks []tokView
}

func isPunct(c byte) bool {
	return c == '(' || c == ')' || c == ',' || c == ';' || c == '.'
}

// lex tokenizes one segment: identifiers, single-char punctuation
// "(),;.", escaped names with the backslash stripped, comments skipped.
// Token views alias the segment bytes.
func (lx *lexer) lex(data []byte, line int) []tokView {
	dst := lx.toks[:0]
	i, n := 0, len(data)
	for i < n {
		c := data[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			i++
		case c == '/':
			// Comment structure was validated by the splitter.
			if i+1 < n && data[i+1] == '/' {
				i += 2
				for i < n && data[i] != '\n' {
					i++
				}
			} else if i+1 < n && data[i+1] == '*' {
				i += 2
				star := false
				for i < n {
					ch := data[i]
					if ch == '\n' {
						line++
					}
					i++
					if star && ch == '/' {
						break
					}
					star = ch == '*'
				}
			} else {
				i++
			}
		case isPunct(c):
			dst = append(dst, tokView{text: data[i : i+1], line: line})
			i++
		case c == '\\':
			// Escaped identifier: runs to whitespace, backslash stripped;
			// the terminating space is consumed. Empty names vanish. Like
			// the original rune tokenizer, a newline terminator bumps the
			// line counter before the token is recorded.
			i++
			st := i
			end := -1
			for i < n {
				r, sz := rune(data[i]), 1
				if data[i] >= utf8.RuneSelf {
					r, sz = utf8.DecodeRune(data[i:])
				}
				if unicode.IsSpace(r) {
					end = i
					if r == '\n' {
						line++
					}
					i += sz
					break
				}
				i += sz
			}
			if end < 0 {
				end = i
			}
			if end > st {
				dst = append(dst, tokView{text: data[st:end], line: line})
			}
		default:
			st := i
			for i < n {
				ch := data[i]
				if ch == '/' || ch == '\\' || isPunct(ch) {
					break
				}
				if ch < utf8.RuneSelf {
					if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == '\v' || ch == '\f' {
						break
					}
					i++
					continue
				}
				r, sz := utf8.DecodeRune(data[i:])
				if unicode.IsSpace(r) {
					break
				}
				i += sz
			}
			if i > st {
				dst = append(dst, tokView{text: data[st:i], line: line})
			} else {
				// A lone non-ASCII whitespace rune: skip it.
				_, sz := utf8.DecodeRune(data[i:])
				i += sz
			}
		}
	}
	lx.toks = dst
	return dst
}

// --- segment parsing ---------------------------------------------------

type segParser struct {
	toks []tokView
	pos  int
	lib  *liberty.Library
}

func (p *segParser) lastLine() int {
	if len(p.toks) == 0 {
		return 1
	}
	return p.toks[len(p.toks)-1].line
}

func (p *segParser) next() (tokView, error) {
	if p.pos >= len(p.toks) {
		return tokView{}, fmt.Errorf("vlog: line %d: unexpected end of input", p.lastLine())
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *segParser) expect(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if string(t.text) != text {
		return fmt.Errorf("vlog: line %d: expected %q, found %q", t.line, text, t.text)
	}
	return nil
}

func tokIs(t tokView, s string) bool { return string(t.text) == s }

// parseSegment lexes one segment and parses its statements into
// records. It returns the records and the line of the segment's last
// token (0 when the segment has none).
func parseSegment(lx *lexer, seg segment, first bool, lib *liberty.Library) ([]stmtRec, int) {
	toks := lx.lex(seg.data, seg.line)
	if len(toks) == 0 {
		return nil, 0
	}
	p := &segParser{toks: toks, lib: lib}
	var recs []stmtRec
	if first {
		rec := p.header()
		recs = append(recs, rec)
		if rec.kind == kErr {
			return recs, p.lastLine()
		}
	}
	for p.pos < len(p.toks) {
		rec := p.statement()
		recs = append(recs, rec)
		if rec.kind == kErr || rec.kind == kEnd {
			break
		}
	}
	return recs, p.lastLine()
}

func errRec(err error) stmtRec { return stmtRec{kind: kErr, err: err} }

// header consumes "module NAME ( ports ) ;".
func (p *segParser) header() stmtRec {
	if err := p.expect("module"); err != nil {
		return errRec(err)
	}
	name, err := p.next()
	if err != nil {
		return errRec(err)
	}
	rec := stmtRec{kind: kHeader, name: intern.InternBytes(name.text)}
	if err := p.expect("("); err != nil {
		return errRec(err)
	}
	for {
		t, err := p.next()
		if err != nil {
			return errRec(err)
		}
		if tokIs(t, ")") {
			break
		}
		if tokIs(t, ",") {
			continue
		}
		rec.names = append(rec.names, intern.InternBytes(t.text))
	}
	if err := p.expect(";"); err != nil {
		return errRec(err)
	}
	return rec
}

func (p *segParser) statement() stmtRec {
	t := p.toks[p.pos]
	switch {
	case tokIs(t, "endmodule"):
		p.pos++
		return stmtRec{kind: kEnd, line: t.line}
	case tokIs(t, "input"), tokIs(t, "output"):
		p.pos++
		names, err := p.nameList()
		if err != nil {
			return errRec(err)
		}
		dir := netlist.In
		if tokIs(t, "output") {
			dir = netlist.Out
		}
		return stmtRec{kind: kDecl, line: t.line, dir: dir, names: names}
	case tokIs(t, "wire"):
		p.pos++
		names, err := p.nameList()
		if err != nil {
			return errRec(err)
		}
		return stmtRec{kind: kWire, line: t.line, names: names}
	default:
		return p.instance()
	}
}

// nameList consumes "a, b, c ;".
func (p *segParser) nameList() ([]intern.Sym, error) {
	var out []intern.Sym
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch {
		case tokIs(t, ";"):
			return out, nil
		case tokIs(t, ","):
		case tokIs(t, "("), tokIs(t, ")"), tokIs(t, "."):
			return nil, fmt.Errorf("vlog: line %d: unexpected %q in declaration", t.line, t.text)
		default:
			out = append(out, intern.InternBytes(t.text))
		}
	}
}

// instance consumes "CELL name ( .PIN(net), ... ) ;".
func (p *segParser) instance() stmtRec {
	cellTok, err := p.next()
	if err != nil {
		return errRec(err)
	}
	cellSym := intern.InternBytes(cellTok.text)
	cellName := cellSym.String()
	cell := p.lib.Cell(cellName)
	if cell == nil {
		return errRec(fmt.Errorf("vlog: line %d: unknown cell %q (behavioral Verilog is not supported)", cellTok.line, cellName))
	}
	nameTok, err := p.next()
	if err != nil {
		return errRec(err)
	}
	rec := stmtRec{kind: kInst, line: nameTok.line, name: intern.InternBytes(nameTok.text), cell: cellSym}
	if err := p.expect("("); err != nil {
		return errRec(err)
	}
	for {
		t, err := p.next()
		if err != nil {
			return errRec(err)
		}
		if tokIs(t, ")") {
			break
		}
		if tokIs(t, ",") {
			continue
		}
		if !tokIs(t, ".") {
			return errRec(fmt.Errorf("vlog: line %d: positional connections are not supported (found %q)", t.line, t.text))
		}
		pinTok, err := p.next()
		if err != nil {
			return errRec(err)
		}
		pinSym := intern.InternBytes(pinTok.text)
		pin := cell.Pin(pinSym.String())
		if pin == nil {
			return errRec(fmt.Errorf("vlog: line %d: cell %s has no pin %q", pinTok.line, cell.Name, pinSym.String()))
		}
		if err := p.expect("("); err != nil {
			return errRec(err)
		}
		netTok, err := p.next()
		if err != nil {
			return errRec(err)
		}
		if err := p.expect(")"); err != nil {
			return errRec(err)
		}
		dir := netlist.In
		if pin.Dir == liberty.Output {
			dir = netlist.Out
		}
		rec.conns = append(rec.conns, connRec{
			pinSym: pinSym, netSym: intern.InternBytes(netTok.text), dir: dir, line: netTok.line,
		})
	}
	if err := p.expect(";"); err != nil {
		return errRec(err)
	}
	return rec
}

// Write renders the design as one structural module.
func Write(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	ports := d.Ports()
	names := make([]string, len(ports))
	for i, p := range ports {
		names[i] = p.Name
	}
	fmt.Fprintf(bw, "module %s (%s);\n", d.Name, strings.Join(names, ", "))
	var ins, outs []string
	portNet := map[string]bool{}
	for _, p := range ports {
		portNet[p.Name] = true
		if p.Dir == netlist.In {
			ins = append(ins, p.Name)
		} else {
			outs = append(outs, p.Name)
		}
	}
	if len(ins) > 0 {
		fmt.Fprintf(bw, "  input %s;\n", strings.Join(ins, ", "))
	}
	if len(outs) > 0 {
		fmt.Fprintf(bw, "  output %s;\n", strings.Join(outs, ", "))
	}
	var wires []string
	for _, n := range d.Nets() {
		if !portNet[n.Name] {
			wires = append(wires, n.Name)
		}
	}
	if len(wires) > 0 {
		fmt.Fprintf(bw, "  wire %s;\n", strings.Join(wires, ", "))
	}
	for _, inst := range d.Insts() {
		var conns []string
		for _, c := range inst.Inputs() {
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Pin, c.Net.Name))
		}
		for _, c := range inst.Outputs() {
			conns = append(conns, fmt.Sprintf(".%s(%s)", c.Pin, c.Net.Name))
		}
		fmt.Fprintf(bw, "  %s %s (%s);\n", inst.Cell, inst.Name, strings.Join(conns, ", "))
	}
	fmt.Fprintln(bw, "endmodule")
	return bw.Flush()
}
