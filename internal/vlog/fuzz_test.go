package vlog

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/liberty"
)

// FuzzParse hammers the structural-Verilog reader with mutated inputs.
// The contract under fuzz: never panic, never hang, and every rejection
// is a positioned error (contains "line N") — a netlist that fails to
// load must tell the user where. Accepted inputs must survive a Write
// round trip.
func FuzzParse(f *testing.F) {
	seed, err := os.ReadFile("../../testdata/bus4.v")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(seed))
	f.Add("module top (a, y);\n  input a;\n  output y;\n  INV_X1 u0 (.A(a), .Y(y));\nendmodule\n")
	f.Add("module t (p);\n  input p;\n") // missing endmodule
	f.Add("module t (p);\nendmodule\n")  // undeclared header port
	f.Add("module t ();\n  wire \\esc[0] ;\nendmodule\n")
	f.Add("/* block\ncomment */ module t ();\nendmodule // eol\n")
	f.Add("module t ();\n  NAND2_X1 u0 (a, b);\nendmodule\n") // positional conns
	f.Fuzz(func(t *testing.T, src string) {
		lib := liberty.Generic()
		d, err := Parse(strings.NewReader(src), lib)
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without a line number: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("write after successful parse: %v", err)
		}
	})
}
