package vlog

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"testing/iotest"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// designsEqual fails the test unless the two designs are structurally
// identical, including connection creation order on every net — the
// equivalence bar for the streaming parser.
func designsEqual(t *testing.T, got, want *netlist.Design) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("design name %q != %q", got.Name, want.Name)
	}
	if got.NumNets() != want.NumNets() || got.NumInsts() != want.NumInsts() ||
		got.NumPorts() != want.NumPorts() || got.NumConns() != want.NumConns() {
		t.Fatalf("counts differ: nets %d/%d insts %d/%d ports %d/%d conns %d/%d",
			got.NumNets(), want.NumNets(), got.NumInsts(), want.NumInsts(),
			got.NumPorts(), want.NumPorts(), got.NumConns(), want.NumConns())
	}
	var gw, ww bytes.Buffer
	if err := netlist.Write(&gw, got); err != nil {
		t.Fatal(err)
	}
	if err := netlist.Write(&ww, want); err != nil {
		t.Fatal(err)
	}
	if gw.String() != ww.String() {
		t.Fatalf("netlist text differs:\n--- got ---\n%s\n--- want ---\n%s", gw.String(), ww.String())
	}
	wantNets := want.Nets()
	for i, gn := range got.Nets() {
		wn := wantNets[i]
		if gn.Name != wn.Name || gn.ID() != wn.ID() {
			t.Fatalf("net %d: %q id %d != %q id %d", i, gn.Name, gn.ID(), wn.Name, wn.ID())
		}
		if len(gn.Conns) != len(wn.Conns) {
			t.Fatalf("net %q: %d conns != %d", gn.Name, len(gn.Conns), len(wn.Conns))
		}
		for j, gc := range gn.Conns {
			wc := wn.Conns[j]
			gi, wi := "", ""
			if gc.Inst != nil {
				gi = gc.Inst.Name
			}
			if wc.Inst != nil {
				wi = wc.Inst.Name
			}
			if gi != wi || gc.Port != wc.Port || gc.Pin != wc.Pin || gc.Dir != wc.Dir {
				t.Fatalf("net %q conn %d: {%q %q %q %v} != {%q %q %q %v}",
					gn.Name, j, gi, gc.Port, gc.Pin, gc.Dir, wi, wc.Port, wc.Pin, wc.Dir)
			}
		}
		gd, wd := gn.Driver(), wn.Driver()
		if (gd == nil) != (wd == nil) {
			t.Fatalf("net %q: driver nil mismatch", gn.Name)
		}
	}
	wantInsts := want.Insts()
	for i, gi := range got.Insts() {
		wi := wantInsts[i]
		if gi.Name != wi.Name || gi.Cell != wi.Cell || gi.ID() != wi.ID() {
			t.Fatalf("inst %d: %s(%s) id %d != %s(%s) id %d",
				i, gi.Name, gi.Cell, gi.ID(), wi.Name, wi.Cell, wi.ID())
		}
	}
}

// chainSource synthesizes a large valid module so the golden test
// crosses several splitter batches and exercises the parallel path.
func chainSource(n int) string {
	var b strings.Builder
	b.WriteString("module chain (a, y);\n  input a;\n  output y;\n")
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "  wire n%d;\n", i)
	}
	prev := "a"
	for i := 0; i < n; i++ {
		out := fmt.Sprintf("n%d", i)
		if i == n-1 {
			out = "y"
		}
		fmt.Fprintf(&b, "  INV_X1 u%d (.A(%s), .Y(%s));\n", i, prev, out)
		prev = out
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func TestParseMatchesReference(t *testing.T) {
	bus4, err := os.ReadFile("../../testdata/bus4.v")
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[string]string{
		"sample":  sample,
		"bus4":    string(bus4),
		"escaped": "module m (\\a$1 );\n  input \\a$1 ;\nendmodule\n",
		"chain":   chainSource(3000),
	}
	lib := liberty.Generic()
	for name, src := range srcs {
		t.Run(name, func(t *testing.T) {
			want, err := parseReference(strings.NewReader(src), lib)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Parse(strings.NewReader(src), lib)
			if err != nil {
				t.Fatal(err)
			}
			designsEqual(t, got, want)

			// The splitter must behave identically when reads are
			// fragmented arbitrarily.
			frag, err := Parse(iotest.OneByteReader(strings.NewReader(src)), lib)
			if err != nil {
				t.Fatal(err)
			}
			designsEqual(t, frag, want)
		})
	}
}

// TestParseErrorsMatchReference checks the streaming parser reports the
// same positioned error text as the reference on singly-broken inputs.
func TestParseErrorsMatchReference(t *testing.T) {
	cases := []string{
		"",
		"wire x;\n",
		"module t (a);\n  input a;\n",
		"module t (a);\n  input a;\n  FOO u0 (.A(a));\nendmodule\n",
		"module t (a);\n  input a;\n  INV_X1 u0 (.Q(a), .Y(y));\nendmodule\n",
		"module t (a);\n  input a;\n  INV_X1 u0 (a, y);\nendmodule\n",
		"module t (a, b);\n  input a;\nendmodule\n",
		"module t (a);\n  input a;\n  INV_X1 u0 (.A(a), .Y(y));\n  INV_X1 u0 (.A(a), .Y(z));\nendmodule\n",
		"module t (a);\n  input a, a;\nendmodule\n",
		"module t (a);\n  input (;\nendmodule\n",
		"module t;\nendmodule\n",
		"module t (a);\n  input a;\n  /* no end",
		"module t (a)\n",
		"module\n",
	}
	lib := liberty.Generic()
	for i, src := range cases {
		_, wantErr := parseReference(strings.NewReader(src), lib)
		_, gotErr := Parse(strings.NewReader(src), lib)
		if wantErr == nil {
			t.Fatalf("case %d: reference accepted %q", i, src)
		}
		if gotErr == nil {
			t.Fatalf("case %d: streaming parser accepted %q, want error %v", i, src, wantErr)
		}
		if gotErr.Error() != wantErr.Error() {
			t.Errorf("case %d: error mismatch\n  got:  %v\n  want: %v", i, gotErr, wantErr)
		}
	}
}
