package report

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
)

// JSON export: a stable, self-describing schema for piping analysis
// results into other tools (dashboards, waiver systems, regression
// tracking) and for the snad analysis service's responses. Quantities are
// base SI units; absent windows are null.
//
// NaN discipline: encoding/json refuses NaN and ±Inf outright (the whole
// marshal fails), so every field that can carry the engine's NaN sentinel
// — Combined.At and Violation.At for quiet nets, DelayImpact.At from
// interval.Combination's `At: math.NaN()` sentinel — is a *float64 that
// encodes as null, and every window bound that can be infinite encodes as
// a null endpoint. The regression tests in json_test.go pin both. The
// remaining producers of the NaN sentinel (interval.MaxOverlapSum and
// MaxOverlapSumConstrained) are guarded at their call sites: core's delay
// pass drops combinations with a NaN instant before they become impacts.
// The schema types are exported so clients can decode responses and so
// ReadJSON can round-trip a report losslessly.

// WindowJSON is a noise window; bounds are pointers because windows may be
// unbounded (a virtual aggressor or a degraded net is "always on"): an
// infinite end serializes as null, which JSON can carry and ±Inf cannot.
type WindowJSON struct {
	Lo *float64 `json:"lo"`
	Hi *float64 `json:"hi"`
}

func jsonWin(w interval.Window) *WindowJSON {
	if w.IsEmpty() {
		return nil
	}
	out := &WindowJSON{}
	if !math.IsInf(w.Lo, -1) {
		lo := w.Lo
		out.Lo = &lo
	}
	if !math.IsInf(w.Hi, 1) {
		hi := w.Hi
		out.Hi = &hi
	}
	return out
}

// jsonSet renders each disjoint window of a set.
func jsonSet(s interval.Set) []*WindowJSON {
	if s.IsEmpty() {
		return nil
	}
	out := make([]*WindowJSON, 0, s.Len())
	for _, w := range s.Windows() {
		out = append(out, jsonWin(w))
	}
	return out
}

// finite returns a pointer to v, or nil when v is NaN or infinite — the
// null encoding for "no meaningful instant".
func finite(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// EventJSON is one glitch hypothesis.
type EventJSON struct {
	Source string      `json:"source"`
	Peak   float64     `json:"peakV"`
	Width  float64     `json:"widthS"`
	Window *WindowJSON `json:"window"`
}

// CombinedJSON is the worst windowed combination for one victim state.
type CombinedJSON struct {
	Peak    float64     `json:"peakV"`
	Width   float64     `json:"widthS"`
	At      *float64    `json:"atS"`
	Window  *WindowJSON `json:"window"`
	Members []string    `json:"members,omitempty"`
}

// NetJSON is one victim net's analysis.
type NetJSON struct {
	Net  string       `json:"net"`
	Low  CombinedJSON `json:"low"`
	High CombinedJSON `json:"high"`
	// Events are included only for nets with any noise, to keep exports
	// of big clean designs small.
	LowEvents  []EventJSON `json:"lowEvents,omitempty"`
	HighEvents []EventJSON `json:"highEvents,omitempty"`
}

// ViolationJSON is one failed receiver check.
type ViolationJSON struct {
	Net      string   `json:"net"`
	Receiver string   `json:"receiver"`
	State    string   `json:"state"`
	Peak     float64  `json:"peakV"`
	Limit    float64  `json:"limitV"`
	Slack    float64  `json:"slackV"`
	At       *float64 `json:"atS"`
	Members  []string `json:"members,omitempty"`
}

// DegradationJSON is one net the fail-soft engine could not analyze.
type DegradationJSON struct {
	Net      string `json:"net"`
	Stage    string `json:"stage"`
	Error    string `json:"error"`
	Degraded bool   `json:"degraded"`
}

// ResultJSON is the full noise-analysis report.
type ResultJSON struct {
	Mode       string          `json:"mode"`
	Stats      core.Stats      `json:"stats"`
	Violations []ViolationJSON `json:"violations"`
	// Degradations lists nets the fail-soft engine could not analyze;
	// their entries in nets carry conservative full-rail bounds.
	Degradations []DegradationJSON `json:"degradations,omitempty"`
	Nets         []NetJSON         `json:"nets"`
}

// DelayImpactJSON is one crosstalk delay push-out.
type DelayImpactJSON struct {
	Net  string `json:"net"`
	Edge string `json:"edge"` // "rise" | "fall"
	// VictimWindow is the victim's own switching-window set for the edge.
	VictimWindow []*WindowJSON `json:"victimWindow,omitempty"`
	NoisePeak    float64       `json:"noisePeakV"`
	Delta        float64       `json:"deltaS"`
	// At is an instant achieving the worst overlap; null when the engine's
	// NaN sentinel marked none.
	At      *float64 `json:"atS"`
	Members []string `json:"members,omitempty"`
}

// DelayResultJSON is the design-wide crosstalk delta-delay report.
type DelayResultJSON struct {
	Mode         string            `json:"mode"`
	Impacts      []DelayImpactJSON `json:"impacts"`
	Degradations []DegradationJSON `json:"degradations,omitempty"`
}

func jsonComb(c core.Combined) CombinedJSON {
	return CombinedJSON{
		Peak:    c.Peak,
		Width:   c.Width,
		At:      finite(c.At),
		Window:  jsonWin(c.Window),
		Members: c.Members,
	}
}

func jsonEvents(events []core.Event) []EventJSON {
	out := make([]EventJSON, 0, len(events))
	for _, e := range events {
		out = append(out, EventJSON{
			Source: e.Source,
			Peak:   e.Peak,
			Width:  e.Width,
			Window: jsonWin(e.Window),
		})
	}
	return out
}

func jsonDiags(diags []core.Diag) []DegradationJSON {
	var out []DegradationJSON
	for _, d := range diags {
		jd := DegradationJSON{Net: d.Net, Stage: d.Stage, Degraded: d.Degraded}
		if d.Err != nil {
			jd.Error = d.Err.Error()
		}
		out = append(out, jd)
	}
	return out
}

// BuildJSON converts a result into the export schema. Nets are sorted by
// name for deterministic output.
func BuildJSON(res *core.Result) *ResultJSON {
	out := &ResultJSON{
		Mode:         res.Mode.String(),
		Stats:        res.Stats,
		Degradations: jsonDiags(res.Diags),
	}
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, ViolationJSON{
			Net:      v.Net,
			Receiver: v.Receiver,
			State:    v.Kind.String(),
			Peak:     v.Peak,
			Limit:    v.Limit,
			Slack:    v.Slack,
			At:       finite(v.At),
			Members:  v.Members,
		})
	}
	names := make([]string, 0, len(res.Nets))
	for n := range res.Nets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		nn := res.Nets[name]
		jn := NetJSON{
			Net:  name,
			Low:  jsonComb(nn.Comb[core.KindLow]),
			High: jsonComb(nn.Comb[core.KindHigh]),
		}
		if nn.WorstPeak() > 0 {
			jn.LowEvents = jsonEvents(nn.Events[core.KindLow])
			jn.HighEvents = jsonEvents(nn.Events[core.KindHigh])
		}
		out.Nets = append(out.Nets, jn)
	}
	return out
}

// BuildDelayJSON converts a delta-delay result into the export schema.
func BuildDelayJSON(res *core.DelayResult) *DelayResultJSON {
	out := &DelayResultJSON{
		Mode:         res.Mode.String(),
		Degradations: jsonDiags(res.Diags),
	}
	for _, im := range res.Impacts {
		edge := "fall"
		if im.Rise {
			edge = "rise"
		}
		out.Impacts = append(out.Impacts, DelayImpactJSON{
			Net:          im.Net,
			Edge:         edge,
			VictimWindow: jsonSet(im.VictimWindow),
			NoisePeak:    im.NoisePeak,
			Delta:        im.Delta,
			At:           finite(im.At),
			Members:      im.Members,
		})
	}
	return out
}

// WriteJSON serializes a full analysis result.
func WriteJSON(w io.Writer, res *core.Result) error {
	return writeIndented(w, BuildJSON(res))
}

// WriteDelayJSON serializes a delta-delay result.
func WriteDelayJSON(w io.Writer, res *core.DelayResult) error {
	return writeIndented(w, BuildDelayJSON(res))
}

// ReadJSON parses a report previously written by WriteJSON (or returned
// by the snad service). Together with WriteJSON it round-trips losslessly:
// marshal → unmarshal → re-marshal is byte-identical, which is what makes
// the server's JSON responses stable for downstream consumers.
func ReadJSON(r io.Reader) (*ResultJSON, error) {
	var out ResultJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

func writeIndented(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
