package report

import (
	"encoding/json"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
)

// JSON export: a stable, self-describing schema for piping analysis
// results into other tools (dashboards, waiver systems, regression
// tracking). Quantities are base SI units; absent windows are null.

// jsonWindow bounds are pointers because windows may be unbounded (a
// virtual aggressor or a degraded net is "always on"): an infinite end
// serializes as null, which JSON can carry and ±Inf cannot.
type jsonWindow struct {
	Lo *float64 `json:"lo"`
	Hi *float64 `json:"hi"`
}

func jsonWin(w interval.Window) *jsonWindow {
	if w.IsEmpty() {
		return nil
	}
	out := &jsonWindow{}
	if !math.IsInf(w.Lo, -1) {
		lo := w.Lo
		out.Lo = &lo
	}
	if !math.IsInf(w.Hi, 1) {
		hi := w.Hi
		out.Hi = &hi
	}
	return out
}

type jsonEvent struct {
	Source string      `json:"source"`
	Peak   float64     `json:"peakV"`
	Width  float64     `json:"widthS"`
	Window *jsonWindow `json:"window"`
}

type jsonCombined struct {
	Peak    float64     `json:"peakV"`
	Width   float64     `json:"widthS"`
	At      *float64    `json:"atS"`
	Window  *jsonWindow `json:"window"`
	Members []string    `json:"members,omitempty"`
}

type jsonNet struct {
	Net  string       `json:"net"`
	Low  jsonCombined `json:"low"`
	High jsonCombined `json:"high"`
	// Events are included only for nets with any noise, to keep exports
	// of big clean designs small.
	LowEvents  []jsonEvent `json:"lowEvents,omitempty"`
	HighEvents []jsonEvent `json:"highEvents,omitempty"`
}

type jsonViolation struct {
	Net      string   `json:"net"`
	Receiver string   `json:"receiver"`
	State    string   `json:"state"`
	Peak     float64  `json:"peakV"`
	Limit    float64  `json:"limitV"`
	Slack    float64  `json:"slackV"`
	At       *float64 `json:"atS"`
	Members  []string `json:"members,omitempty"`
}

type jsonDegradation struct {
	Net      string `json:"net"`
	Stage    string `json:"stage"`
	Error    string `json:"error"`
	Degraded bool   `json:"degraded"`
}

type jsonResult struct {
	Mode       string          `json:"mode"`
	Stats      core.Stats      `json:"stats"`
	Violations []jsonViolation `json:"violations"`
	// Degradations lists nets the fail-soft engine could not analyze;
	// their entries in nets carry conservative full-rail bounds.
	Degradations []jsonDegradation `json:"degradations,omitempty"`
	Nets         []jsonNet         `json:"nets"`
}

func jsonComb(c core.Combined) jsonCombined {
	out := jsonCombined{
		Peak:    c.Peak,
		Width:   c.Width,
		Window:  jsonWin(c.Window),
		Members: c.Members,
	}
	if !math.IsNaN(c.At) {
		at := c.At
		out.At = &at
	}
	return out
}

func jsonEvents(events []core.Event) []jsonEvent {
	out := make([]jsonEvent, 0, len(events))
	for _, e := range events {
		out = append(out, jsonEvent{
			Source: e.Source,
			Peak:   e.Peak,
			Width:  e.Width,
			Window: jsonWin(e.Window),
		})
	}
	return out
}

// WriteJSON serializes a full analysis result. Nets are sorted by name for
// deterministic output.
func WriteJSON(w io.Writer, res *core.Result) error {
	out := jsonResult{
		Mode:  res.Mode.String(),
		Stats: res.Stats,
	}
	for _, v := range res.Violations {
		jv := jsonViolation{
			Net:      v.Net,
			Receiver: v.Receiver,
			State:    v.Kind.String(),
			Peak:     v.Peak,
			Limit:    v.Limit,
			Slack:    v.Slack,
			Members:  v.Members,
		}
		if !math.IsNaN(v.At) {
			at := v.At
			jv.At = &at
		}
		out.Violations = append(out.Violations, jv)
	}
	for _, d := range res.Diags {
		jd := jsonDegradation{Net: d.Net, Stage: d.Stage, Degraded: d.Degraded}
		if d.Err != nil {
			jd.Error = d.Err.Error()
		}
		out.Degradations = append(out.Degradations, jd)
	}
	names := make([]string, 0, len(res.Nets))
	for n := range res.Nets {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		nn := res.Nets[name]
		jn := jsonNet{
			Net:  name,
			Low:  jsonComb(nn.Comb[core.KindLow]),
			High: jsonComb(nn.Comb[core.KindHigh]),
		}
		if nn.WorstPeak() > 0 {
			jn.LowEvents = jsonEvents(nn.Events[core.KindLow])
			jn.HighEvents = jsonEvents(nn.Events[core.KindHigh])
		}
		out.Nets = append(out.Nets, jn)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
