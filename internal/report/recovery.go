package report

import (
	"fmt"
	"io"
)

// RecoveryJSON is the boot-time restore report of snad's durable session
// store: what the journal replay found, what it restored, and what it
// quarantined. The server builds one while opening its data directory and
// serves it on GET /v1/recovery; the snad CLI renders it with
// RecoveryText. The type lives here, next to the other wire schemas, so
// the server, the client, and the CLI share one definition without an
// import cycle.
type RecoveryJSON struct {
	// DataDir is the store's directory.
	DataDir string `json:"dataDir"`
	// RecoveredAt is the RFC3339 instant the replay finished.
	RecoveredAt string `json:"recoveredAt"`
	// Generation is the journal generation serving after recovery (boot
	// compaction bumps it, so a restored store never appends to a journal
	// that may end in a torn frame).
	Generation uint64 `json:"generation"`
	// Snapshots counts session snapshot files loaded.
	Snapshots int `json:"snapshots"`
	// Records counts journal records replayed on top of the snapshots.
	Records int `json:"records"`
	// Restored lists the sessions alive after replay, sorted.
	Restored []string `json:"restored,omitempty"`
	// Quarantined lists every record or file that could not be replayed
	// and was moved aside instead of refusing the boot.
	Quarantined []QuarantineJSON `json:"quarantined,omitempty"`
	// TornTail reports that the journal ended in a partial frame — the
	// signature of a crash mid-append. The torn bytes are discarded by
	// the boot compaction; everything before them replayed normally.
	TornTail bool `json:"tornTail,omitempty"`
	// Compacted reports that the boot folded journal and snapshots into a
	// fresh generation after replay.
	Compacted bool `json:"compacted,omitempty"`
}

// QuarantineJSON describes one unreplayable record or file: where it was
// moved and why it could not be applied.
type QuarantineJSON struct {
	// File is the path of the quarantined copy, relative to the data dir.
	File string `json:"file"`
	// Source names what was quarantined: "journal", "snapshot", or
	// "manifest".
	Source string `json:"source"`
	// Reason is the structured cause (CRC mismatch, bad frame length,
	// undecodable record, unreplayable payload, ...).
	Reason string `json:"reason"`
	// Session names the affected session when the record identified one.
	Session string `json:"session,omitempty"`
	// Seq is the journal sequence number of the record, when known.
	Seq uint64 `json:"seq,omitempty"`
}

// RecoveryText renders the recovery report in the repo's report idiom: a
// short header, one line per restored session, one line per quarantined
// item.
func RecoveryText(w io.Writer, r *RecoveryJSON) {
	fmt.Fprintf(w, "recovery: %s (generation %d)\n", r.DataDir, r.Generation)
	fmt.Fprintf(w, "  recovered at %s: %d snapshot(s), %d journal record(s), %d session(s) restored\n",
		r.RecoveredAt, r.Snapshots, r.Records, len(r.Restored))
	if r.TornTail {
		fmt.Fprintf(w, "  torn journal tail discarded (crash mid-append)\n")
	}
	if r.Compacted {
		fmt.Fprintf(w, "  journal compacted after replay\n")
	}
	for _, name := range r.Restored {
		fmt.Fprintf(w, "  restored %s\n", name)
	}
	for _, q := range r.Quarantined {
		who := q.Source
		if q.Session != "" {
			who += " " + q.Session
		}
		fmt.Fprintf(w, "  QUARANTINED %s -> %s: %s\n", who, q.File, q.Reason)
	}
	if len(r.Quarantined) == 0 {
		fmt.Fprintf(w, "  no records quarantined\n")
	}
}
