package report

import (
	"encoding/json"
	"io"
)

// Shared diagnostics schema for the repo's two linters: snalint (design
// data rules, object-positioned) and snavet (source invariants,
// file:line-positioned). Editors and CI consume one shape for both; the
// position fields a producer cannot fill are simply omitted.

// ToolDiagJSON is one diagnostic from either tool.
type ToolDiagJSON struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	// Object names a design object (net, cell, port) for snalint rules.
	Object string `json:"object,omitempty"`
	// File/Line/Col position a source finding for snavet analyzers.
	File    string `json:"file,omitempty"`
	Line    int    `json:"line,omitempty"`
	Col     int    `json:"col,omitempty"`
	Message string `json:"message"`
	Hint    string `json:"hint,omitempty"`
}

// ToolDiagsJSON is a full diagnostics report from one tool run.
type ToolDiagsJSON struct {
	Tool        string         `json:"tool"`
	Errors      int            `json:"errors"`
	Warnings    int            `json:"warnings"`
	Infos       int            `json:"infos"`
	Diagnostics []ToolDiagJSON `json:"diagnostics"`
}

// WriteToolDiagsJSON serializes a diagnostics report with the same
// stable-schema conventions as WriteJSON.
func WriteToolDiagsJSON(w io.Writer, d *ToolDiagsJSON) error {
	if d.Diagnostics == nil {
		d.Diagnostics = []ToolDiagJSON{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
