package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/lint"
)

func lintResult() *lint.Result {
	return &lint.Result{Diags: []lint.Diagnostic{
		{Rule: "NL001", Sev: lint.Error, Object: "net b0", Msg: "2 drivers: d0:Y, defect_md:Y", Hint: "keep exactly one driver"},
		{Rule: "STA001", Sev: lint.Warn, Object: "input in0", Msg: "switching windows are empty", Hint: "give the port a window"},
		{Rule: "SPF001", Sev: lint.Info, Object: "net q0", Msg: "no extracted parasitics", Hint: "extract the net"},
	}}
}

func TestLintRender(t *testing.T) {
	var sb strings.Builder
	Lint(&sb, lintResult())
	out := sb.String()
	if !strings.HasPrefix(out, "lint: 1 error(s), 1 warning(s), 1 info(s)\n") {
		t.Fatalf("summary line wrong:\n%s", out)
	}
	for _, want := range []string{"NL001", "net b0", "error", "warn", "STA001", "keep exactly one driver"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestLintRenderClean(t *testing.T) {
	var sb strings.Builder
	Lint(&sb, &lint.Result{})
	if got := sb.String(); got != "lint: 0 error(s), 0 warning(s), 0 info(s)\n" {
		t.Fatalf("clean render = %q", got)
	}
}

func TestLintJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteLintJSON(&sb, lintResult()); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Errors      int `json:"errors"`
		Warnings    int `json:"warnings"`
		Infos       int `json:"infos"`
		Diagnostics []struct {
			Rule     string `json:"rule"`
			Severity string `json:"severity"`
			Object   string `json:"object"`
			Message  string `json:"message"`
			Hint     string `json:"hint"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if got.Errors != 1 || got.Warnings != 1 || got.Infos != 1 {
		t.Fatalf("counts = %+v", got)
	}
	if len(got.Diagnostics) != 3 || got.Diagnostics[0].Rule != "NL001" || got.Diagnostics[0].Severity != "error" {
		t.Fatalf("diagnostics = %+v", got.Diagnostics)
	}
}
