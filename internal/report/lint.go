package report

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/lint"
)

// Lint writes a lint result as an aligned-text report: a one-line summary
// followed by one table row per diagnostic (already sorted by Run:
// severity first, then rule, then object).
func Lint(w io.Writer, res *lint.Result) {
	fmt.Fprintf(w, "lint: %d error(s), %d warning(s), %d info(s)\n",
		res.Errors(), res.Warnings(), res.Infos())
	if res.Total() == 0 {
		return
	}
	t := NewTable("", "severity", "rule", "object", "message", "hint")
	for _, d := range res.Diags {
		t.AddRow(d.Sev.String(), d.Rule, d.Object, d.Msg, d.Hint)
	}
	t.Render(w)
}

type jsonDiag struct {
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Object   string `json:"object"`
	Message  string `json:"message"`
	Hint     string `json:"hint,omitempty"`
}

type jsonLint struct {
	Errors      int        `json:"errors"`
	Warnings    int        `json:"warnings"`
	Infos       int        `json:"infos"`
	Diagnostics []jsonDiag `json:"diagnostics"`
}

// WriteLintJSON serializes a lint result with the same stable-schema
// conventions as WriteJSON.
func WriteLintJSON(w io.Writer, res *lint.Result) error {
	out := jsonLint{
		Errors:      res.Errors(),
		Warnings:    res.Warnings(),
		Infos:       res.Infos(),
		Diagnostics: make([]jsonDiag, 0, res.Total()),
	}
	for _, d := range res.Diags {
		out.Diagnostics = append(out.Diagnostics, jsonDiag{
			Rule:     d.Rule,
			Severity: d.Sev.String(),
			Object:   d.Object,
			Message:  d.Msg,
			Hint:     d.Hint,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
