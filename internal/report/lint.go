package report

import (
	"fmt"
	"io"

	"repro/internal/lint"
)

// Lint writes a lint result as an aligned-text report: a one-line summary
// followed by one table row per diagnostic (already sorted by Run:
// severity first, then rule, then object).
func Lint(w io.Writer, res *lint.Result) {
	fmt.Fprintf(w, "lint: %d error(s), %d warning(s), %d info(s)\n",
		res.Errors(), res.Warnings(), res.Infos())
	if res.Total() == 0 {
		return
	}
	t := NewTable("", "severity", "rule", "object", "message", "hint")
	for _, d := range res.Diags {
		t.AddRow(d.Sev.String(), d.Rule, d.Object, d.Msg, d.Hint)
	}
	t.Render(w)
}

// WriteLintJSON serializes a lint result in the shared tool-diagnostics
// schema (ToolDiagsJSON) that snavet's -json output also uses, so CI and
// editor integrations consume one shape for both linters.
func WriteLintJSON(w io.Writer, res *lint.Result) error {
	out := &ToolDiagsJSON{
		Tool:        "snalint",
		Errors:      res.Errors(),
		Warnings:    res.Warnings(),
		Infos:       res.Infos(),
		Diagnostics: make([]ToolDiagJSON, 0, res.Total()),
	}
	for _, d := range res.Diags {
		out.Diagnostics = append(out.Diagnostics, ToolDiagJSON{
			Rule:     d.Rule,
			Severity: d.Sev.String(),
			Object:   d.Object,
			Message:  d.Msg,
			Hint:     d.Hint,
		})
	}
	return WriteToolDiagsJSON(w, out)
}
