// Package report renders analysis results and experiment tables as aligned
// text, matching the row/series structure of the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/waveform"
)

// Table is a titled grid of cells rendered with aligned columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable allocates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Columns) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(t.Columns))
		for i := range t.Columns {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SI formats a value with an engineering prefix and unit, e.g. 1.23e-11 →
// "12.3ps". It covers the prefixes the analyses produce.
func SI(v float64, unit string) string {
	if v == 0 {
		return "0" + unit
	}
	if math.IsInf(v, 1) {
		return "+inf"
	}
	if math.IsInf(v, -1) {
		return "-inf"
	}
	abs := math.Abs(v)
	type scale struct {
		factor float64
		prefix string
	}
	scales := []scale{
		{1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1, ""},
		{1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"},
	}
	for _, s := range scales {
		if abs >= s.factor {
			return fmt.Sprintf("%.3g%s%s", v/s.factor, s.prefix, unit)
		}
	}
	return fmt.Sprintf("%.3g a%s", v/1e-18, unit)
}

// Percent formats a fraction as a percentage.
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}

// Violations writes a human-readable violation report for one analysis.
func Violations(w io.Writer, res *core.Result) {
	fmt.Fprintf(w, "noise analysis (%s): %d nets, %d violations, %d couplings (%d filtered), %d iterations (converged=%v)\n",
		res.Mode, len(res.Nets), len(res.Violations),
		res.Stats.AggressorPairs, res.Stats.Filtered,
		res.Stats.Iterations, res.Stats.Converged)
	if len(res.Violations) == 0 {
		return
	}
	t := NewTable("", "net", "receiver", "state", "peak", "limit", "slack", "width", "aligned-at", "members")
	for _, v := range res.Violations {
		t.AddRow(
			v.Net, v.Receiver, v.Kind.String(),
			SI(v.Peak, "V"), SI(v.Limit, "V"), SI(v.Slack, "V"),
			SI(v.Width, "s"), SI(v.At, "s"),
			strings.Join(v.Members, "+"),
		)
	}
	t.Render(w)
}

// Degradations writes the fail-soft degradation report: which victims
// the engine could not analyze, at what stage, and why. Degraded nets
// carry conservative full-rail bounds, so the section is the signoff
// reviewer's cue that those nets need a rerun or a waiver — a silent
// fallback would read as a real full-rail violation.
func Degradations(w io.Writer, diags []core.Diag) {
	if len(diags) == 0 {
		return
	}
	fmt.Fprintf(w, "degraded nets: %d (conservative full-rail bounds substituted)\n", len(diags))
	t := NewTable("", "net", "stage", "error")
	for _, d := range diags {
		msg := ""
		if d.Err != nil {
			msg = d.Err.Error()
		}
		t.AddRow(d.Net, d.Stage, msg)
	}
	t.Render(w)
}

// NetSummary writes one net's noise record: every event and the combined
// result per victim state.
func NetSummary(w io.Writer, nn *core.NetNoise) {
	fmt.Fprintf(w, "net %s\n", nn.Net)
	for _, k := range core.Kinds {
		comb := nn.Comb[k]
		fmt.Fprintf(w, "  victim-%s: combined peak %s width %s window %v members %v\n",
			k, SI(comb.Peak, "V"), SI(comb.Width, "s"), comb.Window, comb.Members)
		if comb.Peak > 0 {
			fmt.Fprintf(w, "    shape %s\n", Sparkline(nn.CombinedWaveform(k), 32))
		}
		for _, e := range nn.Events[k] {
			fmt.Fprintf(w, "    %-12s peak %s width %s window %v\n",
				e.Source, SI(e.Peak, "V"), SI(e.Width, "s"), e.Window)
		}
	}
}

// Sparkline renders a waveform as a single line of block characters over
// its breakpoint span — a quick visual for glitch shapes in terminal
// reports. width is the number of output columns (≥ 2). Negative values
// render on the same scale by magnitude with a leading '-' marker.
func Sparkline(pwl waveform.PWL, width int) string {
	if width < 2 {
		width = 2
	}
	lo, hi, ok := pwl.Span()
	if !ok || hi <= lo {
		return strings.Repeat("▁", width)
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	_, peak := pwl.Peak()
	mag := math.Abs(peak)
	if mag == 0 {
		return strings.Repeat("▁", width)
	}
	var sb strings.Builder
	if peak < 0 {
		sb.WriteByte('-')
	}
	for i := 0; i < width; i++ {
		t := lo + (hi-lo)*float64(i)/float64(width-1)
		frac := math.Abs(pwl.Eval(t)) / mag
		idx := int(frac * float64(len(blocks)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// SlackTable writes the n tightest receiver noise margins — the signoff
// artifact that shows how close passing receivers are to failing.
func SlackTable(w io.Writer, res *core.Result, n int) {
	rows := res.TightestSlacks(n)
	t := NewTable(
		fmt.Sprintf("tightest noise slacks (%d of %d checked)", len(rows), len(res.Slacks)),
		"net", "receiver", "state", "peak", "limit", "slack")
	for _, s := range rows {
		t.AddRow(s.Net, s.Receiver, s.Kind.String(),
			SI(s.Peak, "V"), SI(s.Limit, "V"), SI(s.Slack, "V"))
	}
	t.Render(w)
}

// RenderCSV writes the table as RFC-4180-style CSV (without the title),
// for piping experiment output into plotting tools.
func (t *Table) RenderCSV(w io.Writer) {
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, ",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			fmt.Fprint(w, c)
		}
		fmt.Fprintln(w)
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
}
