package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
)

func TestWriteJSONRoundTrips(t *testing.T) {
	at := 1.5e-10
	res := &core.Result{
		Mode: core.ModeNoiseWindows,
		Nets: map[string]*core.NetNoise{
			"v": {
				Net: "v",
				Events: [2][]core.Event{
					{{Peak: 0.3, Width: 2e-11, Window: interval.New(1e-10, 2e-10), Source: "a0"}},
					nil,
				},
				Comb: [2]core.Combined{
					{Peak: 0.3, Width: 2e-11, Window: interval.New(1e-10, 2e-10), At: at, Members: []string{"a0"}},
					{At: math.NaN(), Window: interval.Empty()},
				},
			},
			"quiet": {Net: "quiet", Comb: [2]core.Combined{
				{At: math.NaN(), Window: interval.Empty()},
				{At: math.NaN(), Window: interval.Empty()},
			}},
		},
		Violations: []core.Violation{{
			Net: "v", Receiver: "r.A", Kind: core.KindLow,
			Peak: 0.3, Limit: 0.25, Slack: -0.05, At: at, Members: []string{"a0"},
		}},
		Stats: core.Stats{Victims: 2, Converged: true},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON with the documented fields.
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back["mode"] != "noise-windows" {
		t.Fatalf("mode = %v", back["mode"])
	}
	viols := back["violations"].([]any)
	if len(viols) != 1 {
		t.Fatalf("violations = %v", viols)
	}
	v0 := viols[0].(map[string]any)
	if v0["slackV"].(float64) != -0.05 || v0["state"] != "low" {
		t.Fatalf("violation = %v", v0)
	}
	nets := back["nets"].([]any)
	if len(nets) != 2 {
		t.Fatalf("nets = %d", len(nets))
	}
	// Sorted: quiet before v.
	if nets[0].(map[string]any)["net"] != "quiet" {
		t.Fatal("nets not sorted")
	}
	// Quiet net: null window, no events, null at.
	q := nets[0].(map[string]any)["low"].(map[string]any)
	if q["window"] != nil || q["atS"] != nil {
		t.Fatalf("quiet low = %v", q)
	}
	// Noisy net carries its events.
	vn := nets[1].(map[string]any)
	if _, has := vn["lowEvents"]; !has {
		t.Fatalf("noisy net missing events: %v", vn)
	}
	// NaN must never leak into the output.
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into JSON")
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	res := &core.Result{
		Mode: core.ModeAllAggressors,
		Nets: map[string]*core.NetNoise{
			"b": {Net: "b", Comb: [2]core.Combined{{At: math.NaN()}, {At: math.NaN()}}},
			"a": {Net: "a", Comb: [2]core.Combined{{At: math.NaN()}, {At: math.NaN()}}},
		},
	}
	var x, y bytes.Buffer
	if err := WriteJSON(&x, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&y, res); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatal("nondeterministic JSON")
	}
}

func TestWriteJSONDegradations(t *testing.T) {
	res := &core.Result{
		Mode: core.ModeNoiseWindows,
		Nets: map[string]*core.NetNoise{},
		Diags: []core.Diag{
			{Net: "b3", Stage: core.StagePrepare, Err: errors.New("boom"), Degraded: true},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	degs := back["degradations"].([]any)
	if len(degs) != 1 {
		t.Fatalf("degradations = %v", degs)
	}
	d0 := degs[0].(map[string]any)
	if d0["net"] != "b3" || d0["stage"] != "prepare" || d0["error"] != "boom" || d0["degraded"] != true {
		t.Fatalf("degradation = %v", d0)
	}
	// Clean runs omit the section entirely.
	var clean bytes.Buffer
	if err := WriteJSON(&clean, &core.Result{Nets: map[string]*core.NetNoise{}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "degradations") {
		t.Fatal("clean run emitted degradations section")
	}
}
