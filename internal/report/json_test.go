package report

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestWriteJSONRoundTrips(t *testing.T) {
	at := 1.5e-10
	res := &core.Result{
		Mode: core.ModeNoiseWindows,
		Nets: map[string]*core.NetNoise{
			"v": {
				Net: "v",
				Events: [2][]core.Event{
					{{Peak: 0.3, Width: 2e-11, Window: interval.New(1e-10, 2e-10), Source: "a0"}},
					nil,
				},
				Comb: [2]core.Combined{
					{Peak: 0.3, Width: 2e-11, Window: interval.New(1e-10, 2e-10), At: at, Members: []string{"a0"}},
					{At: math.NaN(), Window: interval.Empty()},
				},
			},
			"quiet": {Net: "quiet", Comb: [2]core.Combined{
				{At: math.NaN(), Window: interval.Empty()},
				{At: math.NaN(), Window: interval.Empty()},
			}},
		},
		Violations: []core.Violation{{
			Net: "v", Receiver: "r.A", Kind: core.KindLow,
			Peak: 0.3, Limit: 0.25, Slack: -0.05, At: at, Members: []string{"a0"},
		}},
		Stats: core.Stats{Victims: 2, Converged: true},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	// Must be valid JSON with the documented fields.
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if back["mode"] != "noise-windows" {
		t.Fatalf("mode = %v", back["mode"])
	}
	viols := back["violations"].([]any)
	if len(viols) != 1 {
		t.Fatalf("violations = %v", viols)
	}
	v0 := viols[0].(map[string]any)
	if v0["slackV"].(float64) != -0.05 || v0["state"] != "low" {
		t.Fatalf("violation = %v", v0)
	}
	nets := back["nets"].([]any)
	if len(nets) != 2 {
		t.Fatalf("nets = %d", len(nets))
	}
	// Sorted: quiet before v.
	if nets[0].(map[string]any)["net"] != "quiet" {
		t.Fatal("nets not sorted")
	}
	// Quiet net: null window, no events, null at.
	q := nets[0].(map[string]any)["low"].(map[string]any)
	if q["window"] != nil || q["atS"] != nil {
		t.Fatalf("quiet low = %v", q)
	}
	// Noisy net carries its events.
	vn := nets[1].(map[string]any)
	if _, has := vn["lowEvents"]; !has {
		t.Fatalf("noisy net missing events: %v", vn)
	}
	// NaN must never leak into the output.
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into JSON")
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	res := &core.Result{
		Mode: core.ModeAllAggressors,
		Nets: map[string]*core.NetNoise{
			"b": {Net: "b", Comb: [2]core.Combined{{At: math.NaN()}, {At: math.NaN()}}},
			"a": {Net: "a", Comb: [2]core.Combined{{At: math.NaN()}, {At: math.NaN()}}},
		},
	}
	var x, y bytes.Buffer
	if err := WriteJSON(&x, res); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&y, res); err != nil {
		t.Fatal(err)
	}
	if x.String() != y.String() {
		t.Fatal("nondeterministic JSON")
	}
}

func TestWriteJSONDegradations(t *testing.T) {
	res := &core.Result{
		Mode: core.ModeNoiseWindows,
		Nets: map[string]*core.NetNoise{},
		Diags: []core.Diag{
			{Net: "b3", Stage: core.StagePrepare, Err: errors.New("boom"), Degraded: true},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	degs := back["degradations"].([]any)
	if len(degs) != 1 {
		t.Fatalf("degradations = %v", degs)
	}
	d0 := degs[0].(map[string]any)
	if d0["net"] != "b3" || d0["stage"] != "prepare" || d0["error"] != "boom" || d0["degraded"] != true {
		t.Fatalf("degradation = %v", d0)
	}
	// Clean runs omit the section entirely.
	var clean bytes.Buffer
	if err := WriteJSON(&clean, &core.Result{Nets: map[string]*core.NetNoise{}}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clean.String(), "degradations") {
		t.Fatal("clean run emitted degradations section")
	}
}

// degradedRun produces a real engine result with every JSON edge case at
// once: a degraded net (full-rail bound, infinite window), quiet nets
// (NaN At sentinels), and noisy nets with violations.
func degradedRun(t *testing.T) *core.Result {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{Bits: 4, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	faults := workload.RuntimeFaults{Panic: []string{"b1"}}
	res, err := core.Analyze(b, core.Options{
		Mode:        core.ModeNoiseWindows,
		STA:         g.STAOptions(),
		FailSoft:    true,
		PrepareHook: faults.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) == 0 || res.Stats.DegradedNets == 0 {
		t.Fatal("fixture did not degrade any net")
	}
	return res
}

// TestJSONRoundTripDegradedRun pins the server's response stability:
// marshal → unmarshal → re-marshal of a degraded run (Diags, DegradedNets,
// infinite windows, NaN sentinels) must be byte-identical.
func TestJSONRoundTripDegradedRun(t *testing.T) {
	res := degradedRun(t)
	var first bytes.Buffer
	if err := WriteJSON(&first, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := writeIndented(&second, back); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("round trip not stable:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
	if strings.Contains(first.String(), "NaN") || strings.Contains(first.String(), "Inf") {
		t.Fatal("non-finite value leaked into JSON")
	}
	if len(back.Degradations) != len(res.Diags) {
		t.Fatalf("degradations lost in round trip: %d != %d", len(back.Degradations), len(res.Diags))
	}
}

// TestDelayJSONNeverCarriesNaN is the regression test for the
// interval.Combination `At: math.NaN()` sentinel: even an impact record
// hand-built with the sentinel must encode as null, never as a NaN that
// would make encoding/json fail the whole response.
func TestDelayJSONNeverCarriesNaN(t *testing.T) {
	res := &core.DelayResult{
		Mode: core.ModeNoiseWindows,
		Impacts: []core.DelayImpact{
			{
				Net: "b2", Rise: true,
				VictimWindow: interval.NewSet(interval.New(1e-10, 2e-10)),
				NoisePeak:    0.2, Delta: 3e-12,
				At:      math.NaN(), // the conflict.go / scanline.go sentinel
				Members: []string{"b1"},
			},
			{
				Net: "b3", Rise: false,
				VictimWindow: interval.NewSet(interval.Infinite()),
				NoisePeak:    0.1, Delta: 1e-12,
				At: 1.2e-10,
			},
		},
		Diags: []core.Diag{{Net: "b9", Stage: core.StageDelay, Err: errors.New("boom"), Degraded: true}},
	}
	var buf bytes.Buffer
	if err := WriteDelayJSON(&buf, res); err != nil {
		t.Fatalf("WriteDelayJSON failed (NaN reached the encoder?): %v", err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Fatalf("non-finite value leaked into delay JSON:\n%s", buf.String())
	}
	var back DelayResultJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Impacts[0].At != nil {
		t.Fatalf("sentinel At should encode as null, got %v", *back.Impacts[0].At)
	}
	if back.Impacts[1].At == nil || *back.Impacts[1].At != 1.2e-10 {
		t.Fatal("finite At lost")
	}
	// The infinite victim window must encode as null endpoints.
	w := back.Impacts[1].VictimWindow[0]
	if w == nil || w.Lo != nil || w.Hi != nil {
		t.Fatalf("infinite window endpoints should be null, got %+v", w)
	}
}

// TestDelayJSONFromEngine: a real delay analysis must serialize cleanly.
func TestDelayJSONFromEngine(t *testing.T) {
	g, err := workload.Bus(workload.BusSpec{Bits: 4, Segs: 2, WindowWidth: 80 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeDelay(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDelayJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) || strings.Contains(buf.String(), "NaN") {
		t.Fatalf("bad delay JSON:\n%s", buf.String())
	}
}
