package report

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/waveform"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("a", "1")
	tb.AddRow("longer-name", "22")
	out := tb.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All body lines equal width (alignment).
	if len(lines[1]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned:\n%s", out)
	}
}

func TestTablePadsShortRows(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("x")
	if len(tb.Rows[0]) != 3 {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestSI(t *testing.T) {
	cases := []struct {
		v    float64
		unit string
		want string
	}{
		{0, "V", "0V"},
		{1.23e-11, "s", "12.3ps"},
		{2e-15, "F", "2fF"},
		{0.45, "V", "450mV"},
		{1.2, "V", "1.2V"},
		{4700, "ohm", "4.7kohm"},
		{2.5e6, "Hz", "2.5MHz"},
		{-3e-12, "s", "-3ps"},
		{math.Inf(1), "s", "+inf"},
		{math.Inf(-1), "s", "-inf"},
	}
	for _, c := range cases {
		if got := SI(c.v, c.unit); got != c.want {
			t.Errorf("SI(%g, %q) = %q, want %q", c.v, c.unit, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.123); got != "12.3%" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestViolationsOutput(t *testing.T) {
	res := &core.Result{
		Mode: core.ModeNoiseWindows,
		Nets: map[string]*core.NetNoise{"v": {Net: "v"}},
		Violations: []core.Violation{{
			Net: "v", Receiver: "r.A", Kind: core.KindLow,
			Peak: 0.7, Width: 3e-11, Limit: 0.5, Slack: -0.2, At: 1e-10,
			Members: []string{"a0", "a1"},
		}},
	}
	var sb strings.Builder
	Violations(&sb, res)
	out := sb.String()
	for _, want := range []string{"1 violations", "r.A", "700mV", "a0+a1", "-200mV"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestViolationsCleanRun(t *testing.T) {
	res := &core.Result{Mode: core.ModeAllAggressors, Nets: map[string]*core.NetNoise{}}
	var sb strings.Builder
	Violations(&sb, res)
	if !strings.Contains(sb.String(), "0 violations") {
		t.Fatalf("output = %q", sb.String())
	}
}

func TestNetSummary(t *testing.T) {
	nn := &core.NetNoise{Net: "v"}
	nn.Events[core.KindLow] = []core.Event{{Peak: 0.3, Width: 2e-11, Window: interval.New(0, 1e-10), Source: "agg"}}
	nn.Comb[core.KindLow] = core.Combined{Peak: 0.3, Width: 2e-11, Window: interval.New(0, 1e-10), Members: []string{"agg"}}
	var sb strings.Builder
	NetSummary(&sb, nn)
	out := sb.String()
	for _, want := range []string{"net v", "victim-low", "agg", "300mV"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	tri := waveform.Triangle(0, 1e-11, 2e-11, 0.5)
	// Odd width puts one sample exactly on the peak.
	s := Sparkline(tri, 17)
	if len([]rune(s)) != 17 {
		t.Fatalf("width = %d: %q", len([]rune(s)), s)
	}
	// Peak block in the middle, valley blocks at the ends.
	r := []rune(s)
	if r[0] != '▁' || r[len(r)-1] != '▁' {
		t.Fatalf("ends not low: %q", s)
	}
	if r[8] != '█' {
		t.Fatalf("no peak block at center: %q", s)
	}
	// Negative waveforms are marked.
	neg := Sparkline(tri.Negate(), 8)
	if !strings.HasPrefix(neg, "-") {
		t.Fatalf("negative sparkline = %q", neg)
	}
	// Degenerate inputs render flat.
	if got := Sparkline(waveform.PWL{}, 4); got != "▁▁▁▁" {
		t.Fatalf("zero waveform = %q", got)
	}
	if got := Sparkline(waveform.Constant(1), 1); len([]rune(got)) != 2 {
		t.Fatalf("clamped width = %q", got)
	}
}

func TestSlackTable(t *testing.T) {
	res := &core.Result{
		Slacks: []core.ReceiverSlack{
			{Net: "v", Receiver: "r.A", Kind: core.KindLow, Peak: 0.7, Limit: 0.5, Slack: -0.2},
			{Net: "w", Receiver: "s.A", Kind: core.KindHigh, Peak: 0.2, Limit: 0.6, Slack: 0.4},
		},
	}
	var sb strings.Builder
	SlackTable(&sb, res, 10)
	out := sb.String()
	for _, want := range []string{"2 of 2 checked", "r.A", "-200mV", "400mV"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Truncation honors n.
	sb.Reset()
	SlackTable(&sb, res, 1)
	if strings.Contains(sb.String(), "s.A") {
		t.Error("truncated table still shows second row")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("ignored", "a", "b")
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `say "hi"`)
	var sb strings.Builder
	tb.RenderCSV(&sb)
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Fatalf("CSV = %q, want %q", sb.String(), want)
	}
	if strings.Contains(sb.String(), "ignored") {
		t.Fatal("title leaked into CSV")
	}
}

func TestDegradationsOutput(t *testing.T) {
	var buf bytes.Buffer
	Degradations(&buf, nil)
	if buf.Len() != 0 {
		t.Fatalf("clean run wrote %q", buf.String())
	}
	diags := []core.Diag{
		{Net: "b1", Stage: core.StageEvaluate, Err: errors.New("injected"), Degraded: true},
		{Net: "b2", Stage: core.StagePrepare, Err: errors.New("panic: oops"), Degraded: true},
	}
	Degradations(&buf, diags)
	out := buf.String()
	if !strings.Contains(out, "degraded nets: 2") {
		t.Fatalf("missing header:\n%s", out)
	}
	for _, want := range []string{"b1", "evaluate", "injected", "b2", "prepare", "full-rail"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
