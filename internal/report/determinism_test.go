package report

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
)

// Report output is part of the engine's determinism contract: snad caches
// and round-trips report bytes, so two renderings of the same result must
// be byte-identical even though core.Result carries its nets in a map.
// This pins the invariant the mapdeterm analyzer enforces statically.
func TestTextReportsDeterministic(t *testing.T) {
	res := &core.Result{
		Mode: core.ModeNoiseWindows,
		Nets: map[string]*core.NetNoise{
			"n3": {Net: "n3"},
			"n1": {Net: "n1"},
			"n2": {Net: "n2"},
			"n0": {Net: "n0"},
		},
		Violations: []core.Violation{
			{Net: "n1", Receiver: "r.A", Kind: core.KindLow, Peak: 0.7, Limit: 0.5, Slack: -0.2, Members: []string{"a0", "a1"}},
			{Net: "n2", Receiver: "r.B", Kind: core.KindHigh, Peak: 0.6, Limit: 0.5, Slack: -0.1, Members: []string{"a1"}},
		},
		Diags: []core.Diag{
			{Net: "n3", Stage: core.StagePrepare, Err: errors.New("boom")},
		},
	}
	render := func() string {
		var b bytes.Buffer
		Violations(&b, res)
		SlackTable(&b, res, 10)
		Degradations(&b, res.Diags)
		return b.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs from first:\n--- first\n%s\n--- got\n%s", i+1, first, got)
		}
	}
}
