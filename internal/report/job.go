package report

import (
	"encoding/json"
	"fmt"
	"io"
)

// JobJSON is one async job's status on the wire: the body of
// GET /v1/jobs/{id}, the elements of GET /v1/jobs, and the 202 body of
// POST /v1/jobs. Like RecoveryJSON it lives here so the server, the
// client, and the CLI share one definition without an import cycle.
type JobJSON struct {
	// ID is the server-assigned job identifier ("job-000001", monotonic
	// across restarts).
	ID string `json:"id"`
	// Session and Type identify the work: Type is "analyze",
	// "reanalyze", "iterate", or "sweep".
	Session string `json:"session"`
	Type    string `json:"type"`
	// Tenant attributes the job for fair scheduling ("" = anonymous).
	Tenant string `json:"tenant,omitempty"`
	// State is the job's position in the lifecycle state machine:
	// "queued", "running", "done", "failed", or "canceled".
	State string `json:"state"`
	// Attempts counts execution attempts started so far (journaled
	// before each attempt runs, so a crash mid-attempt still counts);
	// MaxAttempts is the retry budget.
	Attempts    int `json:"attempts"`
	MaxAttempts int `json:"maxAttempts"`
	// Error is the terminal failure cause ("" unless State is "failed").
	Error string `json:"error,omitempty"`
	// Quarantined marks a poison job: one that panicked, degraded the
	// engine, or crashed the process on every attempt and was parked as
	// failed rather than retried forever. Diags carries the per-attempt
	// evidence.
	Quarantined bool `json:"quarantined,omitempty"`
	// Diags records each failed attempt: what stage killed it and why.
	Diags []JobDiagJSON `json:"diags,omitempty"`
	// SubmittedAt/StartedAt/FinishedAt are RFC3339 lifecycle instants
	// (StartedAt is the most recent attempt's start).
	SubmittedAt string `json:"submittedAt,omitempty"`
	StartedAt   string `json:"startedAt,omitempty"`
	FinishedAt  string `json:"finishedAt,omitempty"`
	// Deadline is the per-attempt execution budget, as a duration string.
	Deadline string `json:"deadline,omitempty"`
	// CancelRequested reports a DELETE was journaled but the running
	// attempt has not yet observed its context cancellation.
	CancelRequested bool `json:"cancelRequested,omitempty"`
	// Result is the job's analysis payload, present once State is
	// "done" (and retained for a quarantined degraded result so the
	// evidence is inspectable).
	Result json.RawMessage `json:"result,omitempty"`
}

// JobDiagJSON is one failed attempt's diagnostic record.
type JobDiagJSON struct {
	Attempt int `json:"attempt"`
	// Stage classifies the failure: "panic" (the executor panicked),
	// "error" (it returned an error), "degraded" (the engine degraded
	// nets), "deadline" (the attempt blew its budget), or "interrupted"
	// (the process died mid-attempt; observed at the next boot's replay).
	Stage string `json:"stage"`
	Error string `json:"error,omitempty"`
	// Time is the RFC3339 instant the diagnostic was recorded.
	Time string `json:"time,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *JobJSON) Terminal() bool {
	return j.State == "done" || j.State == "failed" || j.State == "canceled"
}

// JobText renders one job's status in the repo's report idiom.
func JobText(w io.Writer, j *JobJSON) {
	fmt.Fprintf(w, "job %s: %s %s on session %s (attempt %d/%d)\n",
		j.ID, j.State, j.Type, j.Session, j.Attempts, j.MaxAttempts)
	if j.SubmittedAt != "" {
		fmt.Fprintf(w, "  submitted %s\n", j.SubmittedAt)
	}
	if j.StartedAt != "" {
		fmt.Fprintf(w, "  started   %s\n", j.StartedAt)
	}
	if j.FinishedAt != "" {
		fmt.Fprintf(w, "  finished  %s\n", j.FinishedAt)
	}
	if j.CancelRequested && !j.Terminal() {
		fmt.Fprintf(w, "  cancel requested\n")
	}
	if j.Quarantined {
		fmt.Fprintf(w, "  QUARANTINED as a poison job after %d attempt(s)\n", j.Attempts)
	}
	if j.Error != "" {
		fmt.Fprintf(w, "  error: %s\n", j.Error)
	}
	for _, d := range j.Diags {
		fmt.Fprintf(w, "  attempt %d %s: %s\n", d.Attempt, d.Stage, d.Error)
	}
	if len(j.Result) > 0 && j.State == "done" {
		fmt.Fprintf(w, "  result: %d bytes (fetch with -json for the full report)\n", len(j.Result))
	}
}

// JobsText renders a job listing, one line per job.
func JobsText(w io.Writer, jobs []JobJSON) {
	if len(jobs) == 0 {
		fmt.Fprintln(w, "no jobs")
		return
	}
	for i := range jobs {
		j := &jobs[i]
		extra := ""
		if j.Quarantined {
			extra = "  [quarantined]"
		} else if j.CancelRequested && !j.Terminal() {
			extra = "  [cancel requested]"
		}
		fmt.Fprintf(w, "%-12s  %-8s  %-9s  %s  %d/%d%s\n",
			j.ID, j.State, j.Type, j.Session, j.Attempts, j.MaxAttempts, extra)
	}
}
