package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstrainedNilConflictMatchesUnconstrained(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	items := randWeighted(r, 10)
	a := MaxOverlapSum(items)
	b := MaxOverlapSumConstrained(items, nil)
	if math.Abs(a.Sum-b.Sum) > 1e-12 {
		t.Fatalf("nil conflict: %g vs %g", a.Sum, b.Sum)
	}
}

func TestConstrainedFalseConflictMatchesUnconstrained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randWeighted(r, 1+r.Intn(10))
		a := MaxOverlapSum(items)
		b := MaxOverlapSumConstrained(items, func(i, j int) bool { return false })
		return math.Abs(a.Sum-b.Sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConstrainedExclusivePair(t *testing.T) {
	// Two conflicting overlapping windows: only the heavier may count.
	items := []Weighted{
		{W: New(0, 10), Weight: 0.3},
		{W: New(0, 10), Weight: 0.5},
	}
	conflict := func(i, j int) bool { return true }
	c := MaxOverlapSumConstrained(items, conflict)
	if c.Sum != 0.5 || len(c.Members) != 1 || c.Members[0] != 1 {
		t.Fatalf("got %+v", c)
	}
}

func TestConstrainedTriangle(t *testing.T) {
	// Three overlapping windows; 0-1 conflict, 2 compatible with both.
	items := []Weighted{
		{W: New(0, 10), Weight: 0.4},
		{W: New(0, 10), Weight: 0.3},
		{W: New(0, 10), Weight: 0.2},
	}
	conflict := func(i, j int) bool {
		return (i == 0 && j == 1) || (i == 1 && j == 0)
	}
	c := MaxOverlapSumConstrained(items, conflict)
	// Best: {0, 2} = 0.6.
	if math.Abs(c.Sum-0.6) > 1e-12 {
		t.Fatalf("Sum = %g, want 0.6", c.Sum)
	}
	if len(c.Members) != 2 || c.Members[0] != 0 || c.Members[1] != 2 {
		t.Fatalf("Members = %v", c.Members)
	}
}

func TestConstrainedConflictOutsideOverlapIrrelevant(t *testing.T) {
	// Conflicting items whose windows never overlap anyway: both still
	// count at their own instants; the best single is returned.
	items := []Weighted{
		{W: New(0, 1), Weight: 0.4},
		{W: New(5, 6), Weight: 0.5},
	}
	conflict := func(i, j int) bool { return true }
	c := MaxOverlapSumConstrained(items, conflict)
	if c.Sum != 0.5 {
		t.Fatalf("Sum = %g", c.Sum)
	}
}

func TestConstrainedEmpty(t *testing.T) {
	c := MaxOverlapSumConstrained(nil, func(i, j int) bool { return false })
	if c.Sum != 0 || !math.IsNaN(c.At) {
		t.Fatalf("got %+v", c)
	}
	c = MaxOverlapSumConstrained([]Weighted{{W: Empty(), Weight: 1}}, func(i, j int) bool { return false })
	if c.Sum != 0 {
		t.Fatalf("got %+v", c)
	}
}

// bruteConstrained enumerates all subsets at all candidate instants.
func bruteConstrained(items []Weighted, conflict func(i, j int) bool) float64 {
	best := 0.0
	for _, anchor := range items {
		if anchor.W.IsEmpty() || anchor.Weight <= 0 {
			continue
		}
		t := anchor.W.Lo
		var active []int
		for i, it := range items {
			if it.Weight > 0 && it.W.Contains(t) {
				active = append(active, i)
			}
		}
		n := len(active)
		for mask := 1; mask < 1<<n; mask++ {
			ok := true
			sum := 0.0
			for a := 0; a < n && ok; a++ {
				if mask&(1<<a) == 0 {
					continue
				}
				sum += items[active[a]].Weight
				for b := a + 1; b < n; b++ {
					if mask&(1<<b) != 0 && conflict(active[a], active[b]) {
						ok = false
						break
					}
				}
			}
			if ok && sum > best {
				best = sum
			}
		}
	}
	return best
}

func TestQuickConstrainedMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		items := randWeighted(r, n)
		// Random symmetric conflict matrix.
		conf := make([][]bool, n)
		for i := range conf {
			conf[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					conf[i][j] = true
					conf[j][i] = true
				}
			}
		}
		conflict := func(i, j int) bool { return conf[i][j] }
		got := MaxOverlapSumConstrained(items, conflict).Sum
		want := bruteConstrained(items, conflict)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickConstrainedBoundedByUnconstrained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randWeighted(r, 1+r.Intn(10))
		conflict := func(i, j int) bool { return (i+j)%3 == 0 }
		return MaxOverlapSumConstrained(items, conflict).Sum <= MaxOverlapSum(items).Sum+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
