package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSetMergesOverlap(t *testing.T) {
	s := NewSet(New(0, 5), New(3, 8), New(10, 12))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2: %v", s.Len(), s)
	}
	ws := s.Windows()
	if !ws[0].Equal(New(0, 8)) || !ws[1].Equal(New(10, 12)) {
		t.Fatalf("windows = %v", ws)
	}
}

func TestNewSetMergesTouching(t *testing.T) {
	s := NewSet(New(0, 5), New(5, 8))
	if s.Len() != 1 || !s.Windows()[0].Equal(New(0, 8)) {
		t.Fatalf("touching not merged: %v", s)
	}
}

func TestNewSetDropsEmpty(t *testing.T) {
	s := NewSet(Empty(), New(1, 2), Empty())
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestSetContains(t *testing.T) {
	s := NewSet(New(0, 2), New(5, 7), New(10, 11))
	for _, tc := range []struct {
		t    float64
		want bool
	}{{-1, false}, {0, true}, {2, true}, {3, false}, {5, true}, {7, true}, {8, false}, {11, true}, {12, false}} {
		if got := s.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%g) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestSetOverlapsWindow(t *testing.T) {
	s := NewSet(New(0, 2), New(5, 7))
	if !s.Overlaps(New(2, 3)) {
		t.Error("should overlap at touching point 2")
	}
	if s.Overlaps(New(3, 4)) {
		t.Error("should not overlap gap")
	}
	if s.Overlaps(Empty()) {
		t.Error("overlaps empty")
	}
}

func TestSetIntersect(t *testing.T) {
	a := NewSet(New(0, 5), New(10, 15))
	b := NewSet(New(3, 12))
	x := a.Intersect(b)
	want := NewSet(New(3, 5), New(10, 12))
	if !x.Equal(want) {
		t.Fatalf("Intersect = %v, want %v", x, want)
	}
}

func TestSetUnion(t *testing.T) {
	a := NewSet(New(0, 2))
	b := NewSet(New(1, 5), New(8, 9))
	u := a.Union(b)
	want := NewSet(New(0, 5), New(8, 9))
	if !u.Equal(want) {
		t.Fatalf("Union = %v, want %v", u, want)
	}
}

func TestSetComplement(t *testing.T) {
	s := NewSet(New(2, 4), New(6, 8))
	c := s.Complement(New(0, 10))
	want := NewSet(New(0, 2), New(4, 6), New(8, 10))
	if !c.Equal(want) {
		t.Fatalf("Complement = %v, want %v", c, want)
	}
	if got := NewSet().Complement(New(0, 1)); !got.Equal(NewSet(New(0, 1))) {
		t.Fatalf("complement of empty set = %v", got)
	}
	if got := s.Complement(Empty()); !got.IsEmpty() {
		t.Fatalf("complement within empty span = %v", got)
	}
}

func TestSetShift(t *testing.T) {
	s := NewSet(New(0, 1), New(4, 5)).Shift(10)
	want := NewSet(New(10, 11), New(14, 15))
	if !s.Equal(want) {
		t.Fatalf("Shift = %v", s)
	}
}

func TestSetShiftRangeMerges(t *testing.T) {
	// Widening by the delay spread can make members touch; result must be
	// normalized.
	s := NewSet(New(0, 2), New(3, 5)).ShiftRange(0, 1)
	if s.Len() != 1 || !s.Hull().Equal(New(0, 6)) {
		t.Fatalf("ShiftRange = %v", s)
	}
}

func TestSetHullAndLength(t *testing.T) {
	s := NewSet(New(1, 2), New(5, 9))
	if !s.Hull().Equal(New(1, 9)) {
		t.Fatalf("Hull = %v", s.Hull())
	}
	if got := s.TotalLength(); got != 5 {
		t.Fatalf("TotalLength = %g", got)
	}
	if !NewSet().Hull().IsEmpty() {
		t.Fatal("empty set hull not empty")
	}
}

func TestSetString(t *testing.T) {
	if s := NewSet().String(); s != "{}" {
		t.Fatalf("empty set string = %q", s)
	}
	if s := NewSet(New(1, 2)).String(); s == "" {
		t.Fatal("blank render")
	}
}

func randSet(r *rand.Rand) Set {
	n := r.Intn(5)
	ws := make([]Window, n)
	for i := range ws {
		ws[i] = randWindow(r)
	}
	return NewSet(ws...)
}

func TestQuickSetMembersDisjointSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSet(r)
		ws := s.Windows()
		for i := 1; i < len(ws); i++ {
			// Strictly increasing with a genuine gap (touching merged).
			if !(ws[i-1].Hi < ws[i].Lo) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r), randSet(r)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetIntersectSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randSet(r), randSet(r)
		x := a.Intersect(b)
		for _, w := range x.Windows() {
			mid := w.Midpoint()
			if !a.Contains(mid) || !b.Contains(mid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSetComplementPartition(t *testing.T) {
	// complement(s, span) and s∩span together cover span exactly.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSet(r)
		span := New(-50, 50)
		c := s.Complement(span)
		inSpan := s.IntersectWindow(span)
		u := c.Union(inSpan)
		return u.Equal(NewSet(span)) || (inSpan.IsEmpty() && c.Equal(NewSet(span)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetHelpers(t *testing.T) {
	if s := SetOf(1, 2); s.Len() != 1 || !s.Contains(1.5) {
		t.Fatalf("SetOf = %v", s)
	}
	if !EmptySet().IsEmpty() {
		t.Fatal("EmptySet not empty")
	}
	if !InfiniteSet().IsInfinite() {
		t.Fatal("InfiniteSet not infinite")
	}
	if SetOf(0, 1).IsInfinite() {
		t.Fatal("finite set reported infinite")
	}
}

func TestSetSimplify(t *testing.T) {
	s := NewSet(New(0, 1), New(2, 3), New(2.5, 4), New(10, 11), New(20, 21))
	// Normalized: [0,1] [2,4] [10,11] [20,21].
	if s.Len() != 4 {
		t.Fatalf("setup Len = %d", s.Len())
	}
	s2 := s.Simplify(2)
	if s2.Len() != 2 {
		t.Fatalf("Simplify(2) Len = %d: %v", s2.Len(), s2)
	}
	// Coverage only grows.
	for _, w := range s.Windows() {
		if !s2.Contains(w.Midpoint()) {
			t.Fatalf("Simplify lost coverage of %v", w)
		}
	}
	// Smallest gaps merged first: [0,1]+[2,4] merge before the far ones.
	if !s2.Contains(1.5) {
		t.Fatalf("smallest gap not merged: %v", s2)
	}
	if s.Simplify(10).Len() != 4 {
		t.Fatal("Simplify above size changed set")
	}
	if s.Simplify(0).Len() != 1 {
		t.Fatal("Simplify(0) should clamp to 1")
	}
}

func TestQuickSimplifyCoverage(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := randSet(r)
		s2 := s.Simplify(1 + r.Intn(3))
		for k := 0; k < 30; k++ {
			x := r.Float64()*220 - 110
			if s.Contains(x) && !s2.Contains(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
