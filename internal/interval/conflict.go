package interval

import (
	"math"
	"sort"
)

// MaxOverlapSumConstrained answers the combination query under pairwise
// exclusion constraints: over all instants t, the maximum total weight of a
// subset of windows that (a) all contain t and (b) contains no conflicting
// pair. conflict(i, j) reports whether items i and j may never combine —
// in noise analysis, aggressors whose transitions are logically mutually
// exclusive (same single source with opposite polarity).
//
// With a nil or always-false conflict this reduces exactly to
// MaxOverlapSum. The optimum is still achieved at some window's left edge,
// so the scan enumerates those; at each candidate instant the active items
// form a conflict graph whose maximum-weight independent set is computed
// exactly by branch and bound (active sets in noise analysis are small —
// the aggressors of one victim).
func MaxOverlapSumConstrained(items []Weighted, conflict func(i, j int) bool) Combination {
	if conflict == nil {
		return MaxOverlapSum(items)
	}
	// Candidate instants: every non-empty positive-weight window's Lo.
	type cand struct {
		t float64
	}
	cands := make([]float64, 0, len(items))
	for _, it := range items {
		if !it.W.IsEmpty() && it.Weight > 0 {
			cands = append(cands, it.W.Lo)
		}
	}
	if len(cands) == 0 {
		return Combination{Sum: 0, At: math.NaN()}
	}
	sort.Float64s(cands)
	best := Combination{Sum: 0, At: math.NaN()}
	for _, t := range cands {
		var active []int
		for i, it := range items {
			if it.Weight > 0 && it.W.Contains(t) {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			continue
		}
		sum, members := maxWeightIndependent(items, active, conflict)
		if sum > best.Sum {
			best = Combination{Sum: sum, At: t, Members: members}
		}
	}
	if best.Members != nil {
		sort.Ints(best.Members)
	}
	return best
}

// maxWeightIndependent computes the exact maximum-weight independent set of
// the conflict graph over the active items by branch and bound.
func maxWeightIndependent(items []Weighted, active []int, conflict func(i, j int) bool) (float64, []int) {
	weights := make([]float64, len(items))
	for _, i := range active {
		weights[i] = items[i].Weight
	}
	return MaxWeightIndependentSet(weights, active, conflict)
}

// MaxWeightIndependentSet computes the exact maximum-weight independent set
// over the active indices of a conflict graph, by branch and bound with a
// remaining-weight upper bound. weights is indexed by the same space as
// active's entries and conflict's arguments. Exposed for callers whose
// per-item weights vary by alignment instant (the tent-occupancy noise
// combination).
func MaxWeightIndependentSet(weights []float64, active []int, conflict func(i, j int) bool) (float64, []int) {
	if conflict == nil {
		conflict = func(i, j int) bool { return false }
	}
	// Sort heaviest-first: tightens the bound early.
	active = append([]int(nil), active...)
	sort.Slice(active, func(a, b int) bool {
		return weights[active[a]] > weights[active[b]]
	})
	suffix := make([]float64, len(active)+1)
	for i := len(active) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + weights[active[i]]
	}
	var bestSum float64
	var bestSet []int
	cur := make([]int, 0, len(active))
	var rec func(pos int, sum float64)
	rec = func(pos int, sum float64) {
		if sum+suffix[pos] <= bestSum {
			return // cannot beat the incumbent
		}
		if pos == len(active) {
			if sum > bestSum {
				bestSum = sum
				bestSet = append(bestSet[:0], cur...)
			}
			return
		}
		idx := active[pos]
		// Include idx if compatible with the current set.
		ok := true
		for _, c := range cur {
			if conflict(c, idx) || conflict(idx, c) {
				ok = false
				break
			}
		}
		if ok {
			cur = append(cur, idx)
			rec(pos+1, sum+weights[idx])
			cur = cur[:len(cur)-1]
		}
		// Exclude idx.
		rec(pos+1, sum)
	}
	rec(0, 0)
	return bestSum, append([]int(nil), bestSet...)
}
