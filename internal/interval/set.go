package interval

import (
	"sort"
	"strings"
)

// Set is a union of pairwise-disjoint, sorted, non-empty windows. The zero
// value is the empty set. Sets model switching opportunities split across
// multiple clock phases or mode conditions: a net clocked by a gated clock
// may switch in [0,200ps] or [600,800ps] but never between.
//
// All Set operations return normalized sets and never mutate their
// receivers.
type Set struct {
	ws []Window
}

// SetOf returns the one-window set [lo, hi]. Like New, it panics on NaN
// bounds — sanitation is the caller's contract.
func SetOf(lo, hi float64) Set {
	//snavet:nanguard SetOf is New's one-window convenience and shares its documented NaN panic contract
	return NewSet(New(lo, hi))
}

// EmptySet returns the set with no instants.
func EmptySet() Set { return Set{} }

// InfiniteSet returns the set covering the whole time axis.
func InfiniteSet() Set { return NewSet(Infinite()) }

// IsInfinite reports whether the set covers the whole axis.
func (s Set) IsInfinite() bool {
	return len(s.ws) == 1 && s.ws[0].IsInfinite()
}

// NewSet builds a normalized set from arbitrary windows: empties are
// dropped, the rest are sorted and overlapping or touching windows are
// merged.
func NewSet(windows ...Window) Set {
	ws := make([]Window, 0, len(windows))
	for _, w := range windows {
		if !w.IsEmpty() {
			ws = append(ws, w)
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Lo != ws[j].Lo {
			return ws[i].Lo < ws[j].Lo
		}
		return ws[i].Hi < ws[j].Hi
	})
	merged := ws[:0]
	for _, w := range ws {
		if n := len(merged); n > 0 && merged[n-1].Hi >= w.Lo {
			if w.Hi > merged[n-1].Hi {
				merged[n-1].Hi = w.Hi
			}
			continue
		}
		merged = append(merged, w)
	}
	// merged aliases the local filtered copy, never the caller's slice, so
	// it can back the set directly without another copy.
	return Set{ws: merged}
}

// Windows returns a copy of the set's windows in ascending order.
func (s Set) Windows() []Window {
	return append([]Window(nil), s.ws...)
}

// IsEmpty reports whether the set contains no instants.
func (s Set) IsEmpty() bool { return len(s.ws) == 0 }

// Len returns the number of disjoint windows in the set.
func (s Set) Len() int { return len(s.ws) }

// Hull returns the smallest single window containing the whole set.
func (s Set) Hull() Window {
	if s.IsEmpty() {
		return Empty()
	}
	return Window{Lo: s.ws[0].Lo, Hi: s.ws[len(s.ws)-1].Hi}
}

// TotalLength returns the summed lengths of the member windows.
func (s Set) TotalLength() float64 {
	var sum float64
	for _, w := range s.ws {
		sum += w.Length()
	}
	return sum
}

// Contains reports whether instant t lies in any member window. It runs in
// O(log n) by binary search on the sorted member list.
func (s Set) Contains(t float64) bool {
	i := sort.Search(len(s.ws), func(i int) bool { return s.ws[i].Hi >= t })
	return i < len(s.ws) && s.ws[i].Contains(t)
}

// Overlaps reports whether the set shares any instant with window w.
func (s Set) Overlaps(w Window) bool {
	if w.IsEmpty() {
		return false
	}
	i := sort.Search(len(s.ws), func(i int) bool { return s.ws[i].Hi >= w.Lo })
	return i < len(s.ws) && s.ws[i].Overlaps(w)
}

// Union returns the set covering every instant in s or o, by a linear
// merge of the two sorted member lists (sets are immutable, so the empty
// cases can share the other operand's backing outright).
func (s Set) Union(o Set) Set {
	if len(s.ws) == 0 {
		return o
	}
	if len(o.ws) == 0 {
		return s
	}
	out := make([]Window, 0, len(s.ws)+len(o.ws))
	i, j := 0, 0
	for i < len(s.ws) || j < len(o.ws) {
		var w Window
		switch {
		case i == len(s.ws):
			w = o.ws[j]
			j++
		case j == len(o.ws):
			w = s.ws[i]
			i++
		case o.ws[j].Lo < s.ws[i].Lo || (o.ws[j].Lo == s.ws[i].Lo && o.ws[j].Hi < s.ws[i].Hi):
			w = o.ws[j]
			j++
		default:
			w = s.ws[i]
			i++
		}
		if n := len(out); n > 0 && out[n-1].Hi >= w.Lo {
			if w.Hi > out[n-1].Hi {
				out[n-1].Hi = w.Hi
			}
			continue
		}
		out = append(out, w)
	}
	return Set{ws: out}
}

// Add returns the set with window w merged in.
func (s Set) Add(w Window) Set {
	return NewSet(append(s.Windows(), w)...)
}

// Intersect returns the set of instants present in both s and o, using a
// linear merge over the two sorted member lists.
func (s Set) Intersect(o Set) Set {
	var out []Window
	i, j := 0, 0
	for i < len(s.ws) && j < len(o.ws) {
		if x := s.ws[i].Intersect(o.ws[j]); !x.IsEmpty() {
			out = append(out, x)
		}
		if s.ws[i].Hi < o.ws[j].Hi {
			i++
		} else {
			j++
		}
	}
	return Set{ws: out}
}

// IntersectWindow returns the part of the set inside w.
func (s Set) IntersectWindow(w Window) Set {
	return s.Intersect(NewSet(w))
}

// Shift translates every member window by dt.
func (s Set) Shift(dt float64) Set {
	out := make([]Window, len(s.ws))
	for i, w := range s.ws {
		out[i] = w.Shift(dt)
	}
	return Set{ws: out}
}

// ShiftRange translates every member by an uncertain delay in [dMin, dMax]
// and re-normalizes in one pass: the shift is monotone, so the members stay
// sorted and only adjacent ones can come to touch.
func (s Set) ShiftRange(dMin, dMax float64) Set {
	out := make([]Window, 0, len(s.ws))
	for _, w := range s.ws {
		sw := w.ShiftRange(dMin, dMax)
		if sw.IsEmpty() {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Hi >= sw.Lo {
			if sw.Hi > out[n-1].Hi {
				out[n-1].Hi = sw.Hi
			}
			continue
		}
		out = append(out, sw)
	}
	return Set{ws: out}
}

// Complement returns the instants of span not covered by the set.
func (s Set) Complement(span Window) Set {
	if span.IsEmpty() {
		return Set{}
	}
	var out []Window
	cursor := span.Lo
	for _, w := range s.ws {
		x := w.Intersect(span)
		if x.IsEmpty() {
			continue
		}
		if x.Lo > cursor {
			out = append(out, Window{Lo: cursor, Hi: x.Lo})
		}
		if x.Hi > cursor {
			cursor = x.Hi
		}
	}
	if cursor < span.Hi {
		out = append(out, Window{Lo: cursor, Hi: span.Hi})
	}
	return NewSet(out...)
}

// Simplify reduces the set to at most max member windows by repeatedly
// merging the pair separated by the smallest gap — a conservative
// over-approximation (the result covers a superset of the instants). It
// bounds window fragmentation during fixpoint iteration over loops.
func (s Set) Simplify(max int) Set {
	if max < 1 {
		max = 1
	}
	if len(s.ws) <= max {
		return s
	}
	ws := append([]Window(nil), s.ws...)
	for len(ws) > max {
		// Find the smallest inter-window gap.
		best := 1
		bestGap := ws[1].Lo - ws[0].Hi
		for i := 2; i < len(ws); i++ {
			if gap := ws[i].Lo - ws[i-1].Hi; gap < bestGap {
				best, bestGap = i, gap
			}
		}
		ws[best-1] = Window{Lo: ws[best-1].Lo, Hi: ws[best].Hi}
		ws = append(ws[:best], ws[best+1:]...)
	}
	return Set{ws: ws}
}

// Equal reports whether two sets cover exactly the same instants.
func (s Set) Equal(o Set) bool {
	if len(s.ws) != len(o.ws) {
		return false
	}
	for i := range s.ws {
		if !s.ws[i].Equal(o.ws[i]) {
			return false
		}
	}
	return true
}

// String renders the set for reports.
func (s Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	parts := make([]string, len(s.ws))
	for i, w := range s.ws {
		parts[i] = w.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}
