package interval

import (
	"math"
	"sort"
)

// Weighted couples a window with a non-negative weight. In noise combination
// the weight is a glitch's peak voltage and the window is its noise window:
// the instants at which that peak can occur.
type Weighted struct {
	W      Window
	Weight float64
}

// Combination is the result of a scan-line max-overlap-sum query.
type Combination struct {
	// Sum is the maximum achievable total weight at a single instant.
	Sum float64
	// At is an instant achieving Sum. When a whole interval achieves it,
	// At is that interval's left edge. NaN when Sum is 0 and no window
	// contributed.
	At float64
	// Members lists the indices (into the query slice) of the windows that
	// contain At, i.e. the glitches that align to produce Sum.
	Members []int
}

// MaxOverlapSum computes the classical windowed-combination query: over all
// instants t, the maximum of the summed weights of the windows containing t.
//
// This is exactly the paper's noise-window combination step — aggressor and
// propagated glitches may only superpose when their noise windows share an
// instant, and the worst combined glitch is the heaviest overlapping subset.
// Without windows (all windows infinite) it degenerates to the pessimistic
// sum of all weights.
//
// Windows with empty intervals or non-positive weights contribute nothing.
// The scan runs in O(n log n).
func MaxOverlapSum(items []Weighted) Combination {
	type event struct {
		t     float64
		start bool
		w     float64
	}
	events := make([]event, 0, 2*len(items))
	for _, it := range items {
		if it.W.IsEmpty() || it.Weight <= 0 {
			continue
		}
		events = append(events, event{t: it.W.Lo, start: true, w: it.Weight})
		events = append(events, event{t: it.W.Hi, start: false, w: it.Weight})
	}
	if len(events) == 0 {
		return Combination{Sum: 0, At: math.NaN()}
	}
	// Closed intervals: at a tie instant, starts are processed before ends
	// so that windows touching at a point are counted as overlapping there.
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].start && !events[j].start
	})
	var cur, best float64
	bestAt := events[0].t
	for _, e := range events {
		if e.start {
			cur += e.w
			if cur > best {
				best = cur
				bestAt = e.t
			}
		} else {
			cur -= e.w
		}
	}
	members := make([]int, 0, 4)
	for i, it := range items {
		if it.Weight > 0 && it.W.Contains(bestAt) {
			members = append(members, i)
		}
	}
	return Combination{Sum: best, At: bestAt, Members: members}
}

// MaxOverlapSumAnchored answers the anchored variant used when one glitch is
// mandatory: the maximum summed weight over instants inside anchor's window,
// always including anchor's own weight. It is used when combining coupled
// noise against a specific propagated glitch, or when evaluating the worst
// aggressor alignment against a victim transition constrained to its own
// switching window.
//
// The anchor index addresses items; the query considers only instants in
// items[anchor].W. If the anchor window is empty the result is the zero
// Combination.
func MaxOverlapSumAnchored(items []Weighted, anchor int) Combination {
	aw := items[anchor].W
	if aw.IsEmpty() {
		return Combination{Sum: 0, At: math.NaN()}
	}
	clipped := make([]Weighted, 0, len(items))
	idx := make([]int, 0, len(items))
	for i, it := range items {
		if i == anchor {
			continue
		}
		c := it.W.Intersect(aw)
		if c.IsEmpty() || it.Weight <= 0 {
			continue
		}
		clipped = append(clipped, Weighted{W: c, Weight: it.Weight})
		idx = append(idx, i)
	}
	comb := MaxOverlapSum(clipped)
	if math.IsNaN(comb.At) {
		// No other window overlaps the anchor: the anchor stands alone.
		return Combination{
			Sum:     items[anchor].Weight,
			At:      aw.Midpoint(),
			Members: []int{anchor},
		}
	}
	members := make([]int, 0, len(comb.Members)+1)
	members = append(members, anchor)
	for _, ci := range comb.Members {
		members = append(members, idx[ci])
	}
	sort.Ints(members)
	return Combination{
		Sum:     comb.Sum + items[anchor].Weight,
		At:      comb.At,
		Members: members,
	}
}

// SumAt returns the total weight of the windows containing instant t.
func SumAt(items []Weighted, t float64) float64 {
	var sum float64
	for _, it := range items {
		if it.Weight > 0 && it.W.Contains(t) {
			sum += it.Weight
		}
	}
	return sum
}
