package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNormalizesInverted(t *testing.T) {
	w := New(5, 3)
	if !w.IsEmpty() {
		t.Fatalf("New(5,3) = %v, want empty", w)
	}
}

func TestNewPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(NaN, 1) did not panic")
		}
	}()
	New(math.NaN(), 1)
}

func TestEmptyBasics(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() not empty")
	}
	if e.Length() != 0 {
		t.Fatalf("empty length = %g", e.Length())
	}
	if e.Contains(0) {
		t.Fatal("empty contains 0")
	}
	if e.Overlaps(Infinite()) {
		t.Fatal("empty overlaps infinite")
	}
	if got := e.Shift(10); !got.IsEmpty() {
		t.Fatalf("empty.Shift = %v", got)
	}
	if !math.IsNaN(e.Midpoint()) {
		t.Fatalf("empty midpoint = %g", e.Midpoint())
	}
}

func TestInfinite(t *testing.T) {
	inf := Infinite()
	if !inf.IsInfinite() {
		t.Fatal("Infinite not infinite")
	}
	if !inf.Contains(1e30) || !inf.Contains(-1e30) {
		t.Fatal("infinite window missing points")
	}
	if !math.IsInf(inf.Length(), 1) {
		t.Fatalf("infinite length = %g", inf.Length())
	}
	if inf.Midpoint() != 0 {
		t.Fatalf("infinite midpoint = %g", inf.Midpoint())
	}
}

func TestPoint(t *testing.T) {
	p := Point(3)
	if p.IsEmpty() || p.Length() != 0 || !p.Contains(3) || p.Contains(3.0001) {
		t.Fatalf("Point(3) misbehaves: %v", p)
	}
}

func TestContainsWindow(t *testing.T) {
	w := New(0, 10)
	cases := []struct {
		o    Window
		want bool
	}{
		{New(2, 5), true},
		{New(0, 10), true},
		{New(-1, 5), false},
		{New(5, 11), false},
		{Empty(), true},
		{Infinite(), false},
	}
	for _, c := range cases {
		if got := w.ContainsWindow(c.o); got != c.want {
			t.Errorf("ContainsWindow(%v) = %v, want %v", c.o, got, c.want)
		}
	}
	if Empty().ContainsWindow(New(1, 2)) {
		t.Error("empty contains nonempty")
	}
}

func TestOverlapsTouching(t *testing.T) {
	a, b := New(0, 5), New(5, 9)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("touching closed windows must overlap")
	}
	x := a.Intersect(b)
	if x.IsEmpty() || x.Lo != 5 || x.Hi != 5 {
		t.Fatalf("Intersect touching = %v", x)
	}
}

func TestIntersectDisjoint(t *testing.T) {
	if x := New(0, 1).Intersect(New(2, 3)); !x.IsEmpty() {
		t.Fatalf("disjoint intersect = %v", x)
	}
}

func TestHull(t *testing.T) {
	if h := New(0, 1).Hull(New(5, 6)); h.Lo != 0 || h.Hi != 6 {
		t.Fatalf("hull = %v", h)
	}
	if h := Empty().Hull(New(2, 3)); !h.Equal(New(2, 3)) {
		t.Fatalf("empty hull = %v", h)
	}
	if h := New(2, 3).Hull(Empty()); !h.Equal(New(2, 3)) {
		t.Fatalf("hull empty = %v", h)
	}
}

func TestShiftRange(t *testing.T) {
	w := New(10, 20).ShiftRange(1, 3)
	if w.Lo != 11 || w.Hi != 23 {
		t.Fatalf("ShiftRange = %v", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ShiftRange(3,1) did not panic")
		}
	}()
	New(0, 1).ShiftRange(3, 1)
}

func TestWiden(t *testing.T) {
	w := New(10, 20).Widen(2, 5)
	if w.Lo != 8 || w.Hi != 25 {
		t.Fatalf("Widen = %v", w)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Widen(-1,0) did not panic")
		}
	}()
	New(0, 1).Widen(-1, 0)
}

func TestMidpoint(t *testing.T) {
	if m := New(2, 6).Midpoint(); m != 4 {
		t.Fatalf("midpoint = %g", m)
	}
	if m := New(math.Inf(-1), 5).Midpoint(); m != 5 {
		t.Fatalf("half-infinite midpoint = %g", m)
	}
	if m := New(5, math.Inf(1)).Midpoint(); m != 5 {
		t.Fatalf("half-infinite midpoint = %g", m)
	}
}

func TestString(t *testing.T) {
	if s := Empty().String(); s != "[empty]" {
		t.Fatalf("empty string = %q", s)
	}
	if s := Infinite().String(); s != "[-inf,+inf]" {
		t.Fatalf("infinite string = %q", s)
	}
	if s := New(1, 2).String(); s == "" {
		t.Fatal("empty render")
	}
}

// randWindow draws a bounded window (possibly empty) from r.
func randWindow(r *rand.Rand) Window {
	if r.Intn(10) == 0 {
		return Empty()
	}
	a := r.Float64()*200 - 100
	b := r.Float64()*200 - 100
	if a > b {
		a, b = b, a
	}
	return Window{Lo: a, Hi: b}
}

func TestQuickIntersectCommutative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randWindow(r), randWindow(r)
		return a.Intersect(b).Equal(b.Intersect(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHullContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randWindow(r), randWindow(r)
		h := a.Hull(b)
		return h.ContainsWindow(a) && h.ContainsWindow(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickIntersectInsideBoth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randWindow(r), randWindow(r)
		x := a.Intersect(b)
		return a.ContainsWindow(x) && b.ContainsWindow(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapIffNonEmptyIntersect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randWindow(r), randWindow(r)
		return a.Overlaps(b) == !a.Intersect(b).IsEmpty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftPreservesLength(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := randWindow(r)
		dt := r.Float64()*20 - 10
		got, want := w.Shift(dt).Length(), w.Length()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
