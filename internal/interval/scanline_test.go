package interval

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMaxOverlapSumDisjoint(t *testing.T) {
	items := []Weighted{
		{W: New(0, 1), Weight: 0.3},
		{W: New(2, 3), Weight: 0.5},
		{W: New(4, 5), Weight: 0.2},
	}
	c := MaxOverlapSum(items)
	if c.Sum != 0.5 {
		t.Fatalf("Sum = %g, want 0.5 (heaviest single window)", c.Sum)
	}
	if len(c.Members) != 1 || c.Members[0] != 1 {
		t.Fatalf("Members = %v", c.Members)
	}
	if !items[1].W.Contains(c.At) {
		t.Fatalf("At = %g outside winning window", c.At)
	}
}

func TestMaxOverlapSumAllOverlap(t *testing.T) {
	items := []Weighted{
		{W: New(0, 10), Weight: 0.3},
		{W: New(2, 8), Weight: 0.5},
		{W: New(5, 20), Weight: 0.2},
	}
	c := MaxOverlapSum(items)
	if math.Abs(c.Sum-1.0) > 1e-12 {
		t.Fatalf("Sum = %g, want 1.0", c.Sum)
	}
	if len(c.Members) != 3 {
		t.Fatalf("Members = %v", c.Members)
	}
}

func TestMaxOverlapSumTouching(t *testing.T) {
	// Touching at a single instant must count as overlap.
	items := []Weighted{
		{W: New(0, 5), Weight: 1},
		{W: New(5, 9), Weight: 1},
	}
	c := MaxOverlapSum(items)
	if c.Sum != 2 || c.At != 5 {
		t.Fatalf("Sum=%g At=%g, want 2 at 5", c.Sum, c.At)
	}
}

func TestMaxOverlapSumInfiniteWindows(t *testing.T) {
	// Infinite windows (no timing information) reduce to the pessimistic
	// all-aggressors sum.
	items := []Weighted{
		{W: Infinite(), Weight: 0.4},
		{W: Infinite(), Weight: 0.3},
		{W: New(100, 101), Weight: 0.2},
	}
	c := MaxOverlapSum(items)
	if math.Abs(c.Sum-0.9) > 1e-12 {
		t.Fatalf("Sum = %g, want 0.9", c.Sum)
	}
}

func TestMaxOverlapSumIgnoresEmptyAndZero(t *testing.T) {
	items := []Weighted{
		{W: Empty(), Weight: 5},
		{W: New(0, 1), Weight: 0},
		{W: New(0, 1), Weight: -3},
	}
	c := MaxOverlapSum(items)
	if c.Sum != 0 || !math.IsNaN(c.At) || len(c.Members) != 0 {
		t.Fatalf("got %+v, want zero combination", c)
	}
}

func TestMaxOverlapSumSingle(t *testing.T) {
	c := MaxOverlapSum([]Weighted{{W: New(3, 4), Weight: 0.7}})
	if c.Sum != 0.7 || !New(3, 4).Contains(c.At) {
		t.Fatalf("got %+v", c)
	}
}

func TestMaxOverlapSumStaggeredChain(t *testing.T) {
	// Chain 0-2, 1-3, 2-4: best instant is t=2 where all three meet.
	items := []Weighted{
		{W: New(0, 2), Weight: 1},
		{W: New(1, 3), Weight: 1},
		{W: New(2, 4), Weight: 1},
	}
	c := MaxOverlapSum(items)
	if c.Sum != 3 || c.At != 2 {
		t.Fatalf("Sum=%g At=%g", c.Sum, c.At)
	}
}

func TestMaxOverlapSumAnchored(t *testing.T) {
	items := []Weighted{
		{W: New(0, 2), Weight: 0.5}, // anchor
		{W: New(1, 5), Weight: 0.3}, // overlaps anchor
		{W: New(10, 12), Weight: 9}, // heavy but outside anchor window
		{W: New(-5, 0.5), Weight: 0.1},
	}
	c := MaxOverlapSumAnchored(items, 0)
	// Best inside [0,2]: anchor 0.5 + 0.3 (at t in [1,2]) = 0.8; the 0.1
	// window only reaches 0.5 so combining with it gives 0.6.
	if math.Abs(c.Sum-0.8) > 1e-12 {
		t.Fatalf("Sum = %g, want 0.8", c.Sum)
	}
	if !sort.IntsAreSorted(c.Members) {
		t.Fatalf("Members unsorted: %v", c.Members)
	}
	if len(c.Members) != 2 || c.Members[0] != 0 || c.Members[1] != 1 {
		t.Fatalf("Members = %v", c.Members)
	}
}

func TestMaxOverlapSumAnchoredAlone(t *testing.T) {
	items := []Weighted{
		{W: New(0, 2), Weight: 0.5},
		{W: New(10, 12), Weight: 1},
	}
	c := MaxOverlapSumAnchored(items, 0)
	if c.Sum != 0.5 || len(c.Members) != 1 || c.Members[0] != 0 {
		t.Fatalf("got %+v", c)
	}
	if !items[0].W.Contains(c.At) {
		t.Fatalf("At = %g outside anchor", c.At)
	}
}

func TestMaxOverlapSumAnchoredEmptyAnchor(t *testing.T) {
	items := []Weighted{{W: Empty(), Weight: 1}, {W: New(0, 1), Weight: 1}}
	c := MaxOverlapSumAnchored(items, 0)
	if c.Sum != 0 {
		t.Fatalf("Sum = %g", c.Sum)
	}
}

func TestSumAt(t *testing.T) {
	items := []Weighted{
		{W: New(0, 2), Weight: 1},
		{W: New(1, 3), Weight: 2},
	}
	if got := SumAt(items, 1.5); got != 3 {
		t.Fatalf("SumAt(1.5) = %g", got)
	}
	if got := SumAt(items, 2.5); got != 2 {
		t.Fatalf("SumAt(2.5) = %g", got)
	}
	if got := SumAt(items, -1); got != 0 {
		t.Fatalf("SumAt(-1) = %g", got)
	}
}

func randWeighted(r *rand.Rand, n int) []Weighted {
	items := make([]Weighted, n)
	for i := range items {
		items[i] = Weighted{W: randWindow(r), Weight: r.Float64()}
	}
	return items
}

// bruteMaxOverlap evaluates SumAt at every window endpoint — for closed
// intervals the optimum is always achieved at some left endpoint.
func bruteMaxOverlap(items []Weighted) float64 {
	best := 0.0
	for _, it := range items {
		if it.W.IsEmpty() || it.Weight <= 0 {
			continue
		}
		for _, t := range []float64{it.W.Lo, it.W.Hi} {
			if s := SumAt(items, t); s > best {
				best = s
			}
		}
	}
	return best
}

func TestQuickMaxOverlapMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randWeighted(r, 1+r.Intn(12))
		got := MaxOverlapSum(items).Sum
		want := bruteMaxOverlap(items)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxOverlapAchievable(t *testing.T) {
	// The reported Sum is actually achieved at the reported instant by the
	// reported members.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randWeighted(r, 1+r.Intn(12))
		c := MaxOverlapSum(items)
		if math.IsNaN(c.At) {
			return c.Sum == 0
		}
		var sum float64
		for _, i := range c.Members {
			if !items[i].W.Contains(c.At) {
				return false
			}
			sum += items[i].Weight
		}
		return math.Abs(sum-c.Sum) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMaxOverlapUpperBoundsSumAt(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randWeighted(r, 1+r.Intn(12))
		c := MaxOverlapSum(items)
		for k := 0; k < 20; k++ {
			t := r.Float64()*220 - 110
			if SumAt(items, t) > c.Sum+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickAnchoredNeverExceedsGlobal(t *testing.T) {
	// Anchored combination with the anchor's weight removed is bounded by
	// the unanchored optimum.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		items := randWeighted(r, 2+r.Intn(10))
		anchor := r.Intn(len(items))
		if items[anchor].W.IsEmpty() {
			return true
		}
		ca := MaxOverlapSumAnchored(items, anchor)
		cg := MaxOverlapSum(items)
		return ca.Sum <= cg.Sum+items[anchor].Weight+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaxOverlapSum64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := randWeighted(r, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxOverlapSum(items)
	}
}

func BenchmarkMaxOverlapSum1024(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	items := randWeighted(r, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaxOverlapSum(items)
	}
}
