// Package interval implements the time-window algebra at the heart of noise
// window propagation.
//
// A Window is a closed interval [Lo, Hi] on the time axis. Static timing
// analysis produces switching windows (the interval during which a net may
// transition); the noise analyzer derives from them noise windows (the
// interval during which a crosstalk glitch may peak). The combination step of
// windowed noise analysis reduces to questions this package answers directly:
// do two windows overlap, what is their intersection, and — for a set of
// weighted windows — what is the maximum total weight achievable at any
// single instant (see MaxOverlapSum in scanline.go).
//
// The package also provides Set, a normalized union of disjoint windows, for
// nets whose switching opportunities are split across multiple clock phases.
package interval

import (
	"fmt"
	"math"
)

// Window is a closed time interval [Lo, Hi]. A Window with Lo > Hi is empty;
// use Empty to construct one and IsEmpty to test. The zero value is the
// degenerate point window [0, 0], which is valid and non-empty.
type Window struct {
	Lo, Hi float64
}

// New returns the window [lo, hi]. It panics if either bound is NaN; an
// inverted pair is normalized to the canonical empty window so that callers
// computing bounds arithmetically do not need to special-case emptiness.
func New(lo, hi float64) Window {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic("interval: NaN window bound")
	}
	if lo > hi {
		return Empty()
	}
	return Window{Lo: lo, Hi: hi}
}

// Empty returns the canonical empty window.
func Empty() Window {
	return Window{Lo: math.Inf(1), Hi: math.Inf(-1)}
}

// Infinite returns the window covering the entire time axis. It models the
// absence of timing information: an aggressor with an infinite switching
// window may switch at any time, which is exactly the pessimistic assumption
// the paper's noise windows remove.
func Infinite() Window {
	return Window{Lo: math.Inf(-1), Hi: math.Inf(1)}
}

// Point returns the degenerate window [t, t].
func Point(t float64) Window {
	return Window{Lo: t, Hi: t}
}

// IsEmpty reports whether the window contains no instants.
func (w Window) IsEmpty() bool { return w.Lo > w.Hi }

// IsInfinite reports whether the window covers the entire time axis.
func (w Window) IsInfinite() bool {
	return math.IsInf(w.Lo, -1) && math.IsInf(w.Hi, 1)
}

// Length returns Hi-Lo, or 0 for an empty window. The length of an infinite
// or half-infinite window is +Inf.
func (w Window) Length() float64 {
	if w.IsEmpty() {
		return 0
	}
	return w.Hi - w.Lo
}

// Contains reports whether instant t lies inside the closed window.
func (w Window) Contains(t float64) bool {
	return !w.IsEmpty() && w.Lo <= t && t <= w.Hi
}

// ContainsWindow reports whether o is entirely inside w. An empty o is
// contained in every window.
func (w Window) ContainsWindow(o Window) bool {
	if o.IsEmpty() {
		return true
	}
	return !w.IsEmpty() && w.Lo <= o.Lo && o.Hi <= w.Hi
}

// Overlaps reports whether the two closed windows share at least one instant.
// Touching endpoints count as overlap: two glitches whose windows meet at a
// single instant can align there.
func (w Window) Overlaps(o Window) bool {
	if w.IsEmpty() || o.IsEmpty() {
		return false
	}
	return w.Lo <= o.Hi && o.Lo <= w.Hi
}

// Intersect returns the overlap of the two windows (possibly empty).
func (w Window) Intersect(o Window) Window {
	if !w.Overlaps(o) {
		return Empty()
	}
	return Window{Lo: math.Max(w.Lo, o.Lo), Hi: math.Min(w.Hi, o.Hi)}
}

// Hull returns the smallest window containing both w and o. The hull of an
// empty window with x is x.
func (w Window) Hull(o Window) Window {
	if w.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return w
	}
	return Window{Lo: math.Min(w.Lo, o.Lo), Hi: math.Max(w.Hi, o.Hi)}
}

// Shift translates the window by dt. Shifting an empty window yields an
// empty window. This models adding a fixed delay to a noise window.
func (w Window) Shift(dt float64) Window {
	if w.IsEmpty() {
		return w
	}
	return Window{Lo: w.Lo + dt, Hi: w.Hi + dt}
}

// ShiftRange translates the window by an uncertain delay in [dMin, dMax]:
// the result covers every instant reachable from w under any delay in that
// range. This is how a noise window moves through a gate whose delay has a
// min/max spread. dMin must not exceed dMax.
func (w Window) ShiftRange(dMin, dMax float64) Window {
	if dMin > dMax {
		panic(fmt.Sprintf("interval: ShiftRange with dMin %g > dMax %g", dMin, dMax))
	}
	if w.IsEmpty() {
		return w
	}
	return Window{Lo: w.Lo + dMin, Hi: w.Hi + dMax}
}

// Widen grows the window by lo on the left and hi on the right (both
// non-negative). It models accounting for a glitch's nonzero width around
// its peak instant.
func (w Window) Widen(lo, hi float64) Window {
	if lo < 0 || hi < 0 {
		panic("interval: Widen with negative amount")
	}
	if w.IsEmpty() {
		return w
	}
	return Window{Lo: w.Lo - lo, Hi: w.Hi + hi}
}

// Clip returns the part of w inside bounds.
func (w Window) Clip(bounds Window) Window {
	return w.Intersect(bounds)
}

// Midpoint returns the center of the window. For an empty window it returns
// NaN; for an infinite window, 0.
func (w Window) Midpoint() float64 {
	switch {
	case w.IsEmpty():
		return math.NaN()
	case w.IsInfinite():
		return 0
	case math.IsInf(w.Lo, -1):
		return w.Hi
	case math.IsInf(w.Hi, 1):
		return w.Lo
	}
	return w.Lo + (w.Hi-w.Lo)/2
}

// Equal reports exact equality, treating all empty windows as equal.
func (w Window) Equal(o Window) bool {
	if w.IsEmpty() && o.IsEmpty() {
		return true
	}
	return w.Lo == o.Lo && w.Hi == o.Hi
}

// String renders the window for reports, in picoseconds when finite bounds
// are small enough for that to be the natural unit.
func (w Window) String() string {
	if w.IsEmpty() {
		return "[empty]"
	}
	if w.IsInfinite() {
		return "[-inf,+inf]"
	}
	return fmt.Sprintf("[%.4g,%.4g]", w.Lo, w.Hi)
}
