package bind

import "unsafe"

// MemBytes estimates the heap footprint of the bound design in bytes:
// the netlist database, the cell library, and every per-net RC network.
// The lazily filled analysis cache is priced at its slice backing only
// (entries appear after binding, and the budget governs admission, not
// steady-state growth). Deterministic and allocation-free; the server's
// shared design cache charges this value against its byte budget.
func (b *Design) MemBytes() int64 {
	total := int64(unsafe.Sizeof(*b))
	total += b.Net.MemBytes()
	total += b.Lib.MemBytes()
	ptr := int64(unsafe.Sizeof(uintptr(0)))
	total += int64(cap(b.nets)+cap(b.analyses)) * ptr
	for _, nw := range b.nets {
		if nw != nil {
			total += nw.MemBytes()
		}
	}
	return total
}
