package bind

import (
	"strings"
	"testing"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
)

// genericCell resolves a cell from the generic library, failing the test
// when it is missing.
func genericCell(t *testing.T, name string) *liberty.Cell {
	t.Helper()
	c, err := liberty.Generic().ResolveCell("", name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// twoInv builds in -> u0(INV_X1) -> mid -> u1(INV_X2) -> out.
func twoInv(t testing.TB) *netlist.Design {
	t.Helper()
	d := netlist.New("two")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := d.AddPort("in", netlist.In)
	must(err)
	_, err = d.AddPort("out", netlist.Out)
	must(err)
	_, err = d.AddInst("u0", "INV_X1")
	must(err)
	_, err = d.AddInst("u1", "INV_X2")
	must(err)
	must(d.Connect("u0", "A", "in", netlist.In))
	must(d.Connect("u0", "Y", "mid", netlist.Out))
	must(d.Connect("u1", "A", "mid", netlist.In))
	must(d.Connect("u1", "Y", "out", netlist.Out))
	return d
}

const midSpef = `*SPEF "x"
*DESIGN "two"
*D_NET mid 6.0e-15
*CONN
*I u0:Y O
*I u1:A I
*CAP
1 mid:1 3.0e-15
2 mid:1 agg:1 1.0e-15
*RES
1 u0:Y mid:1 120
2 mid:1 u1:A 80
*END
`

func TestBindWithSPEF(t *testing.T) {
	d := twoInv(t)
	lib := liberty.Generic()
	p, err := spef.Parse(strings.NewReader(midSpef))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(d, lib, p)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := b.Network("mid")
	if err != nil {
		t.Fatal(err)
	}
	if nw.Root() != "u0:Y" {
		t.Fatalf("root = %q", nw.Root())
	}
	// Load cap = wire 3fF + coupling 1fF + u1 pin cap.
	pinCap := genericCell(t, "INV_X2").Pin("A").Cap
	want := 3e-15 + 1e-15 + pinCap
	got, err := b.LoadCapOf("mid")
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - want; diff > 1e-21 || diff < -1e-21 {
		t.Fatalf("LoadCapOf = %g, want %g", got, want)
	}
	// Wire delay to the receiver pin is positive.
	var loadConn *netlist.Conn
	for _, lc := range d.FindNet("mid").Loads() {
		loadConn = lc
	}
	wd, err := b.WireDelayTo(loadConn)
	if err != nil {
		t.Fatal(err)
	}
	if wd <= 0 {
		t.Fatalf("wire delay = %g", wd)
	}
}

func TestBindLumpedFallback(t *testing.T) {
	d := twoInv(t)
	b, err := New(d, liberty.Generic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without SPEF every net is lumped: load = receiver pin caps only.
	got, err := b.LoadCapOf("mid")
	if err != nil {
		t.Fatal(err)
	}
	pinCap := genericCell(t, "INV_X2").Pin("A").Cap
	if diff := got - pinCap; diff > 1e-21 || diff < -1e-21 {
		t.Fatalf("lumped LoadCapOf = %g, want %g", got, pinCap)
	}
	if _, err := b.Analysis("mid"); err != nil {
		t.Fatal(err)
	}
}

func TestBindUnknownCell(t *testing.T) {
	d := netlist.New("bad")
	if _, err := d.AddPort("in", netlist.In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddInst("u", "MYSTERY_CELL"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u", "A", "in", netlist.In); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u", "Y", "y", netlist.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, liberty.Generic(), nil); err == nil {
		t.Fatal("unknown cell accepted")
	}
}

func TestBindBadPinAndDirection(t *testing.T) {
	d := netlist.New("bad")
	if _, err := d.AddPort("in", netlist.In); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddInst("u", "INV_X1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u", "Q", "in", netlist.In); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u", "Y", "y", netlist.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, liberty.Generic(), nil); err == nil {
		t.Fatal("bad pin name accepted")
	}

	d2 := netlist.New("bad2")
	if _, err := d2.AddInst("u", "INV_X1"); err != nil {
		t.Fatal(err)
	}
	// A connected as output: direction mismatch. Give Y a driver role on
	// another net so validation passes structurally.
	if err := d2.Connect("u", "A", "x", netlist.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := New(d2, liberty.Generic(), nil); err == nil {
		t.Fatal("direction mismatch accepted")
	}
}

func TestBindValidatesNetlist(t *testing.T) {
	d := netlist.New("invalid")
	if _, err := d.AddInst("u", "INV_X1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u", "A", "floating", netlist.In); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("u", "Y", "y", netlist.Out); err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, liberty.Generic(), nil); err == nil {
		t.Fatal("undriven net accepted")
	}
}

func TestHoldAndDriveRes(t *testing.T) {
	d := twoInv(t)
	lib := liberty.Generic()
	b, err := New(d, lib, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid := d.FindNet("mid")
	if got := b.HoldRes(mid); got != genericCell(t, "INV_X1").HoldRes {
		t.Fatalf("HoldRes = %g", got)
	}
	if got := b.DriveRes(mid); got != genericCell(t, "INV_X1").DriveRes {
		t.Fatalf("DriveRes = %g", got)
	}
	// Port-driven net uses the 50 Ω default.
	in := d.FindNet("in")
	if got := b.HoldRes(in); got != 50 {
		t.Fatalf("port HoldRes = %g", got)
	}
	if got := b.DriveRes(in); got != 50 {
		t.Fatalf("port DriveRes = %g", got)
	}
}

func TestPinNode(t *testing.T) {
	d := twoInv(t)
	mid := d.FindNet("mid")
	drv := mid.Driver()
	if got := PinNode(drv); got != "u0:Y" {
		t.Fatalf("PinNode(driver) = %q", got)
	}
	in := d.FindNet("in")
	if got := PinNode(in.Driver()); got != "in" {
		t.Fatalf("PinNode(port) = %q", got)
	}
}

func TestNetworkUnknownNet(t *testing.T) {
	d := twoInv(t)
	b, err := New(d, liberty.Generic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Network("ghost"); err == nil {
		t.Fatal("unknown net accepted")
	}
	if _, err := b.Analysis("ghost"); err == nil {
		t.Fatal("unknown net analysis accepted")
	}
}
