// Package bind composes the three input databases — the logical netlist,
// the cell library, and the extracted parasitics — into one resolved design
// the timing and noise engines analyze.
//
// Binding resolves every instance to its library cell, checks pin
// directions, builds an rc.Network per net (from SPEF when present,
// otherwise a lumped stand-in), and attaches receiver pin capacitances at
// the right RC nodes. SPEF node names follow the extractor convention
// "inst:pin" for instance connections and the bare port name for ports.
package bind

import (
	"fmt"
	"sync"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/rc"
	"repro/internal/spef"
)

// Design is the resolved, analyzable view of one design. After New it is
// immutable apart from two guarded caches (the RC analysis cache here
// and the netlist's levelization cache), so it is safe for concurrent
// readers: parallel noise analysis — and since the levelization became
// cached, even multiple concurrent engines — can share one Design.
//
// Per-net state is stored densely, indexed by netlist.Net.ID, so the
// hot paths resolve a net's parasitics with a slice index instead of a
// string-map lookup.
type Design struct {
	Net *netlist.Design
	Lib *liberty.Library

	nets []*rc.Network // indexed by netlist.Net.ID()

	mu       sync.Mutex
	analyses []*rc.Analysis // indexed by netlist.Net.ID(); nil until computed
}

// PinNode returns the RC node name a connection lands on.
func PinNode(c *netlist.Conn) string {
	if c.Inst == nil {
		return c.Port
	}
	return c.Inst.Name + ":" + c.Pin
}

// New binds the databases. Parasitics may be nil; nets absent from the
// parasitics get a lumped zero-resistance network carrying only pin loads.
func New(d *netlist.Design, lib *liberty.Library, p *spef.Parasitics) (*Design, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := lib.Validate(); err != nil {
		return nil, err
	}
	b := &Design{
		Net:      d,
		Lib:      lib,
		nets:     make([]*rc.Network, d.NumNets()),
		analyses: make([]*rc.Analysis, d.NumNets()),
	}
	// Resolve instances against the library and check pin directions.
	for _, inst := range d.Insts() {
		cell, err := lib.ResolveCell(inst.Name, inst.Cell)
		if err != nil {
			return nil, fmt.Errorf("bind: %w", err)
		}
		for pinName, conn := range inst.Conns {
			pin := cell.Pin(pinName)
			if pin == nil {
				return nil, fmt.Errorf("bind: %s.%s: cell %s has no such pin", inst.Name, pinName, cell.Name)
			}
			wantOut := pin.Dir == liberty.Output
			isOut := conn.Dir == netlist.Out
			if wantOut != isOut {
				return nil, fmt.Errorf("bind: %s.%s: direction mismatch with cell %s", inst.Name, pinName, cell.Name)
			}
		}
	}
	// Build an RC network per net.
	for _, net := range d.Nets() {
		var nw *rc.Network
		if p != nil {
			if sn := p.Net(net.Name); sn != nil {
				var err error
				nw, err = rc.FromSPEF(sn)
				if err != nil {
					return nil, err
				}
			}
		}
		if nw == nil {
			nw = lumpedNetwork(net)
		}
		// Attach receiver pin capacitances at their nodes.
		for _, lc := range net.Loads() {
			if lc.Inst == nil {
				continue // output port: no pin cap
			}
			cell := lib.Cell(lc.Inst.Cell)
			pin := cell.Pin(lc.Pin)
			node := PinNode(lc)
			if !nw.HasNode(node) {
				// Extractor omitted the pin node; lump the cap at the
				// driver so it still loads the net.
				node = nw.Root()
			}
			nw.AddLoadCap(node, pin.Cap)
		}
		b.nets[net.ID()] = nw
	}
	return b, nil
}

// lumpedNetwork synthesizes a single-node network for a net without
// extracted parasitics: driver and loads share one node, wire cap zero.
func lumpedNetwork(net *netlist.Net) *rc.Network {
	nw := rc.NewNetwork(net.Name)
	drv := net.Driver()
	root := "root"
	if drv != nil {
		root = PinNode(drv)
	}
	nw.SetRoot(root)
	for _, lc := range net.Loads() {
		// Loads sit on the root node (zero wire resistance); interning
		// their names keeps PinNode lookups working.
		node := PinNode(lc)
		if node != root {
			nw.AddRes(root, node, 1e-3) // negligible series resistance
		}
	}
	return nw
}

// Network returns the RC network of a net.
func (b *Design) Network(net string) (*rc.Network, error) {
	n := b.Net.FindNet(net)
	if n == nil || int(n.ID()) >= len(b.nets) {
		return nil, fmt.Errorf("bind: no network for net %q", net)
	}
	return b.nets[n.ID()], nil
}

// NetworkOf returns the RC network of a net already resolved in the
// netlist, skipping the name lookup.
func (b *Design) NetworkOf(n *netlist.Net) *rc.Network {
	return b.nets[n.ID()]
}

// Analysis returns the (cached) RC tree analysis of a net. It is safe to
// call from concurrent goroutines.
func (b *Design) Analysis(net string) (*rc.Analysis, error) {
	n := b.Net.FindNet(net)
	if n == nil || int(n.ID()) >= len(b.nets) {
		return nil, fmt.Errorf("bind: no network for net %q", net)
	}
	return b.AnalysisOf(n)
}

// AnalysisOf is Analysis for a net already resolved in the netlist.
func (b *Design) AnalysisOf(n *netlist.Net) (*rc.Analysis, error) {
	id := n.ID()
	b.mu.Lock()
	a := b.analyses[id]
	b.mu.Unlock()
	if a != nil {
		return a, nil
	}
	a, err := b.nets[id].Analyze()
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.analyses[id] = a
	b.mu.Unlock()
	return a, nil
}

// Cell resolves an instance's library cell (known valid after New).
func (b *Design) Cell(inst *netlist.Inst) *liberty.Cell {
	return b.Lib.Cell(inst.Cell)
}

// DriverCell returns the cell and connection driving a net, or nil for
// port-driven nets.
func (b *Design) DriverCell(net *netlist.Net) (*liberty.Cell, *netlist.Conn) {
	drv := net.Driver()
	if drv == nil || drv.Inst == nil {
		return nil, drv
	}
	return b.Cell(drv.Inst), drv
}

// LoadCapOf returns the total capacitive load the driver of a net sees:
// wire capacitance plus receiver pin capacitances plus coupling lumped to
// ground. This is the load axis value for NLDM table lookups.
func (b *Design) LoadCapOf(net string) (float64, error) {
	nw, err := b.Network(net)
	if err != nil {
		return 0, err
	}
	return nw.TotalCap(), nil
}

// WireDelayTo returns the Elmore delay from a net's driver to a load
// connection's pin node.
func (b *Design) WireDelayTo(lc *netlist.Conn) (float64, error) {
	a, err := b.AnalysisOf(lc.Net)
	if err != nil {
		return 0, err
	}
	node := PinNode(lc)
	nw := b.NetworkOf(lc.Net)
	if !nw.HasNode(node) {
		// Pin cap was lumped at the driver; no extra wire delay.
		return 0, nil
	}
	return a.ElmoreTo(node)
}

// HoldRes returns the holding resistance of a net's driver — the quiet
// victim's fight against injected charge. Port-driven nets use a strong
// default (the tester's source impedance) of 50 Ω.
func (b *Design) HoldRes(net *netlist.Net) float64 {
	cell, _ := b.DriverCell(net)
	if cell == nil {
		return 50
	}
	return cell.HoldRes
}

// DriveRes returns the switching drive resistance of a net's driver, with
// the same 50 Ω default for ports.
func (b *Design) DriveRes(net *netlist.Net) float64 {
	cell, _ := b.DriverCell(net)
	if cell == nil {
		return 50
	}
	return cell.DriveRes
}
