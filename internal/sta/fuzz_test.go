package sta

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// FuzzParseInputTiming asserts ParseInputTiming never panics on
// arbitrary .win input (errors are positioned "sta:" errors) and that
// any timing map it accepts survives a WriteInputTiming round-trip.
// Seeds cover the repo's example bus, infinite bounds, multi-window
// sets, and a past crasher (NaN bounds defeat the inverted-window check
// and used to reach interval.New's NaN panic).
func FuzzParseInputTiming(f *testing.F) {
	if seed, err := os.ReadFile("../../testdata/bus4.win"); err == nil {
		f.Add(string(seed))
	}
	f.Add("input a - - 0 0\n")
	f.Add("input a -inf:+inf 0:1 1e-12 2e-12\n")
	f.Add("input a 0:4e-11,6e-10:6.4e-10 - 2e-11 3e-11\n")
	f.Add("input a NaN:1 - 0 0\n")
	f.Add("# comment\n\ninput a 0:1 0:1 0 NaN\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseInputTiming(strings.NewReader(src))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "sta:") {
				t.Fatalf("unpositioned error: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteInputTiming(&out, m); err != nil {
			t.Fatalf("rendering an accepted timing map: %v", err)
		}
		if _, err := ParseInputTiming(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("accepted timing failed the round-trip: %v\nrendered:\n%s", err, out.Bytes())
		}
	})
}
