package sta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/units"
)

func mustDesign(t testing.TB, build func(d *netlist.Design) error) *bind.Design {
	t.Helper()
	d := netlist.New("t")
	if err := build(d); err != nil {
		t.Fatal(err)
	}
	b, err := bind.New(d, liberty.Generic(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func chain2(d *netlist.Design) error {
	if _, err := d.AddPort("in", netlist.In); err != nil {
		return err
	}
	if _, err := d.AddPort("out", netlist.Out); err != nil {
		return err
	}
	if _, err := d.AddInst("u0", "INV_X1"); err != nil {
		return err
	}
	if _, err := d.AddInst("u1", "INV_X2"); err != nil {
		return err
	}
	for _, c := range [][4]string{
		{"u0", "A", "in", "in"}, {"u0", "Y", "mid", "out"},
		{"u1", "A", "mid", "in"}, {"u1", "Y", "out", "out"},
	} {
		dir := netlist.In
		if c[3] == "out" {
			dir = netlist.Out
		}
		if err := d.Connect(c[0], c[1], c[2], dir); err != nil {
			return err
		}
	}
	return nil
}

func TestChainWindowsMatchTables(t *testing.T) {
	b := mustDesign(t, chain2)
	res, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lib := b.Lib
	slew := 20 * units.Pico
	load, err := b.LoadCapOf("mid")
	if err != nil {
		t.Fatal(err)
	}
	cell, err := lib.ResolveCell("", "INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	arc := cell.Arc("A", "Y")
	// Input [0,0] both dirs; INV is negative unate, so mid fall comes
	// from in rise and mid rise from in fall.
	wantFall := arc.DelayFall.Eval(slew, load)
	wantRise := arc.DelayRise.Eval(slew, load)
	mt := res.TimingOfNet("mid")
	fallHull := mt.Fall.Hull()
	if math.Abs(fallHull.Lo-wantFall) > 1e-15 || math.Abs(fallHull.Hi-wantFall) > 1e-15 {
		t.Fatalf("mid fall = %v, want point %g", mt.Fall, wantFall)
	}
	if riseHull := mt.Rise.Hull(); math.Abs(riseHull.Lo-wantRise) > 1e-15 {
		t.Fatalf("mid rise = %v, want %g", mt.Rise, wantRise)
	}
	// Slews come from the slew tables.
	wantSlewF := arc.SlewFall.Eval(slew, load)
	if math.Abs(mt.SlewFall.Min-wantSlewF) > 1e-15 {
		t.Fatalf("mid slew fall = %+v, want %g", mt.SlewFall, wantSlewF)
	}
	// out is two inversions deep: strictly later than mid.
	ot := res.TimingOfNet("out")
	if !(ot.Rise.Hull().Lo > mt.Fall.Hull().Lo) {
		t.Fatalf("out rise %v not after mid fall %v", ot.Rise, mt.Fall)
	}
	if !ot.HasActivity() {
		t.Fatal("out inactive")
	}
}

func TestInputWindowSpreadPropagates(t *testing.T) {
	b := mustDesign(t, chain2)
	w := interval.New(0, 100*units.Pico)
	res, err := Run(b, Options{DefaultInputWindow: w})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.TimingOfNet("mid")
	// The window length must be at least the input spread (delay range
	// only adds to it).
	if mt.Fall.TotalLength() < w.Length() {
		t.Fatalf("mid fall window %v narrower than input %v", mt.Fall, w)
	}
	if mt.Fall.Hull().Lo <= 0 {
		t.Fatalf("mid fall starts at %g, want > 0", mt.Fall.Hull().Lo)
	}
}

func TestInputTimingOverride(t *testing.T) {
	b := mustDesign(t, chain2)
	custom := &Timing{
		Rise:     interval.SetOf(50*units.Pico, 60*units.Pico),
		SlewRise: Range{Min: 10 * units.Pico, Max: 40 * units.Pico},
		SlewFall: emptyRange(),
	}
	res, err := Run(b, Options{InputTiming: map[string]*Timing{"in": custom}})
	if err != nil {
		t.Fatal(err)
	}
	mt := res.TimingOfNet("mid")
	// in only rises -> mid only falls (negative unate).
	if !mt.Rise.IsEmpty() {
		t.Fatalf("mid rise = %v, want empty", mt.Rise)
	}
	if mt.Fall.IsEmpty() {
		t.Fatal("mid fall empty")
	}
	if mt.Fall.Hull().Lo < 50*units.Pico {
		t.Fatalf("mid fall %v starts before the input window", mt.Fall)
	}
	// Slew range at input widens the delay range, so the output window is
	// wider than the input window.
	if mt.Fall.TotalLength() < 10*units.Pico {
		t.Fatalf("mid fall window %v lost the input spread", mt.Fall)
	}
}

func TestNonUnateXorPropagatesBothDirections(t *testing.T) {
	b := mustDesign(t, func(d *netlist.Design) error {
		if _, err := d.AddPort("a", netlist.In); err != nil {
			return err
		}
		if _, err := d.AddPort("b", netlist.In); err != nil {
			return err
		}
		if _, err := d.AddInst("x", "XOR2_X1"); err != nil {
			return err
		}
		for _, c := range [][3]string{{"A", "a", "in"}, {"B", "b", "in"}, {"Y", "y", "out"}} {
			dir := netlist.In
			if c[2] == "out" {
				dir = netlist.Out
			}
			if err := d.Connect("x", c[0], c[1], dir); err != nil {
				return err
			}
		}
		return nil
	})
	// Input a only rises; through XOR both output transitions appear.
	custom := &Timing{
		Rise:     interval.SetOf(0, 0),
		SlewRise: Range{Min: 20 * units.Pico, Max: 20 * units.Pico},
		SlewFall: emptyRange(),
	}
	res, err := Run(b, Options{InputTiming: map[string]*Timing{
		"a": custom,
		"b": {SlewRise: emptyRange(), SlewFall: emptyRange()},
	}})
	if err != nil {
		t.Fatal(err)
	}
	yt := res.TimingOfNet("y")
	if yt.Rise.IsEmpty() || yt.Fall.IsEmpty() {
		t.Fatalf("XOR output = %+v, want both directions active", yt)
	}
}

func TestLoopGetsInfiniteWindows(t *testing.T) {
	b := mustDesign(t, func(d *netlist.Design) error {
		if _, err := d.AddPort("in", netlist.In); err != nil {
			return err
		}
		for _, n := range []string{"g1", "g2"} {
			if _, err := d.AddInst(n, "NAND2_X1"); err != nil {
				return err
			}
		}
		conns := [][4]string{
			{"g1", "A", "in", "in"}, {"g1", "B", "q", "in"}, {"g1", "Y", "p", "out"},
			{"g2", "A", "p", "in"}, {"g2", "B", "in", "in"}, {"g2", "Y", "q", "out"},
		}
		for _, c := range conns {
			dir := netlist.In
			if c[3] == "out" {
				dir = netlist.Out
			}
			if err := d.Connect(c[0], c[1], c[2], dir); err != nil {
				return err
			}
		}
		return nil
	})
	res, err := Run(b, Options{MaxLoopIter: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The loop nets end up with infinite (fully pessimistic) windows.
	pt := res.TimingOfNet("p")
	if !pt.Rise.IsInfinite() || !pt.Fall.IsInfinite() {
		t.Fatalf("loop net p = %+v, want infinite windows", pt)
	}
	if !pt.SlewRise.valid() {
		t.Fatal("loop net slew invalid")
	}
}

func TestPinTimingIncludesWireDelay(t *testing.T) {
	// With lumped (no-SPEF) networks the load pins hang off tiny 1 mΩ
	// segments, so pin arrival ≈ source arrival; this exercises the pin
	// annotation path and the unknown-pin default.
	b := mustDesign(t, chain2)
	res, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mid := b.Net.FindNet("mid")
	var load *netlist.Conn
	for _, lc := range mid.Loads() {
		load = lc
	}
	pt := res.TimingOfPin(load)
	st := res.TimingOfNet("mid")
	if pt.Fall.IsEmpty() {
		t.Fatal("pin timing empty")
	}
	if math.Abs(pt.Fall.Hull().Lo-st.Fall.Hull().Lo) > 1e-12 {
		t.Fatalf("pin fall %v far from source %v", pt.Fall, st.Fall)
	}
	// Unknown conn gets the inactive default.
	if res.TimingOfPin(&netlist.Conn{}).HasActivity() {
		t.Fatal("unknown pin has activity")
	}
	if res.TimingOfNet("ghost").HasActivity() {
		t.Fatal("unknown net has activity")
	}
}

func TestSwitchingWindowUnion(t *testing.T) {
	tm := &Timing{
		Rise: interval.SetOf(10, 20),
		Fall: interval.SetOf(30, 40),
	}
	want := interval.NewSet(interval.New(10, 20), interval.New(30, 40))
	if got := tm.SwitchingWindow(); !got.Equal(want) {
		t.Fatalf("SwitchingWindow = %v", got)
	}
}

func TestRangeHelpers(t *testing.T) {
	r := emptyRange()
	if r.valid() {
		t.Fatal("empty range valid")
	}
	r = r.widen(5)
	if !r.valid() || r.Min != 5 || r.Max != 5 {
		t.Fatalf("widen = %+v", r)
	}
	r = r.widen(2)
	if r.Min != 2 || r.Max != 5 {
		t.Fatalf("widen = %+v", r)
	}
	u := r.union(Range{Min: 4, Max: 9})
	if u.Min != 2 || u.Max != 9 {
		t.Fatalf("union = %+v", u)
	}
}

func TestTimingEqualWithin(t *testing.T) {
	a := &Timing{Rise: interval.SetOf(0, 1), SlewRise: Range{1, 2}, SlewFall: emptyRange()}
	b := &Timing{Rise: interval.SetOf(0, 1.0000001), SlewRise: Range{1, 2}, SlewFall: emptyRange()}
	if !a.equalWithin(b, 1e-3) {
		t.Fatal("near-equal timings reported different")
	}
	c := &Timing{Rise: interval.SetOf(0, 2), SlewRise: Range{1, 2}, SlewFall: emptyRange()}
	if a.equalWithin(c, 1e-3) {
		t.Fatal("different timings reported equal")
	}
	d := &Timing{Rise: interval.SetOf(0, 1), Fall: interval.SetOf(0, 1), SlewRise: Range{1, 2}, SlewFall: emptyRange()}
	if a.equalWithin(d, 1e-3) {
		t.Fatal("empty-vs-nonempty reported equal")
	}
}

func BenchmarkRunChain32(b *testing.B) {
	d := netlist.New("chain")
	if _, err := d.AddPort("in", netlist.In); err != nil {
		b.Fatal(err)
	}
	prev := "in"
	for i := 0; i < 32; i++ {
		name := "u" + itoa(i)
		if _, err := d.AddInst(name, "INV_X1"); err != nil {
			b.Fatal(err)
		}
		next := "n" + itoa(i)
		if err := d.Connect(name, "A", prev, netlist.In); err != nil {
			b.Fatal(err)
		}
		if err := d.Connect(name, "Y", next, netlist.Out); err != nil {
			b.Fatal(err)
		}
		prev = next
	}
	bd, err := bind.New(d, liberty.Generic(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(bd, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestDeratesWidenWindows(t *testing.T) {
	b := mustDesign(t, chain2)
	plain, err := Run(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	derated, err := Run(b, Options{EarlyDerate: 0.9, LateDerate: 1.15})
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{"mid", "out"} {
		p := plain.TimingOfNet(net).Fall.Hull()
		d := derated.TimingOfNet(net).Fall.Hull()
		if p.IsEmpty() || d.IsEmpty() {
			continue
		}
		if !(d.Lo <= p.Lo+1e-18 && d.Hi >= p.Hi-1e-18) {
			t.Fatalf("%s: derated %v does not cover plain %v", net, d, p)
		}
		if !(d.Lo < p.Lo && d.Hi > p.Hi) {
			t.Fatalf("%s: derates had no effect: %v vs %v", net, d, p)
		}
	}
	// Identity derates reproduce the plain run exactly.
	ident, err := Run(b, Options{EarlyDerate: 1, LateDerate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ident.TimingOfNet("mid").Fall.Equal(plain.TimingOfNet("mid").Fall) {
		t.Fatal("identity derates changed windows")
	}
}

func TestQuickWindowMonotonicity(t *testing.T) {
	// Growing an input window can only grow every downstream window.
	b := mustDesign(t, chain2)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		lo := r.Float64() * 100 * units.Pico
		len1 := r.Float64() * 100 * units.Pico
		grow := r.Float64() * 100 * units.Pico
		slew := Range{Min: 20 * units.Pico, Max: 20 * units.Pico}
		mk := func(hi float64) map[string]*Timing {
			w := interval.SetOf(lo, hi)
			return map[string]*Timing{"in": {Rise: w, Fall: w, SlewRise: slew, SlewFall: slew}}
		}
		small, err := Run(b, Options{InputTiming: mk(lo + len1)})
		if err != nil {
			return false
		}
		big, err := Run(b, Options{InputTiming: mk(lo + len1 + grow)})
		if err != nil {
			return false
		}
		for _, net := range []string{"mid", "out"} {
			sw := small.TimingOfNet(net)
			bw := big.TimingOfNet(net)
			for _, rise := range []bool{true, false} {
				sh, bh := sw.Window(rise).Hull(), bw.Window(rise).Hull()
				if sh.IsEmpty() {
					continue
				}
				if bh.Lo > sh.Lo+1e-18 || bh.Hi < sh.Hi-1e-18 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
