package sta

import (
	"context"
	"testing"

	"repro/internal/netlist"
	"repro/internal/units"
)

// twoChains builds two independent inverter chains in one design, so an
// incremental update on one chain must leave the other untouched.
func twoChains(d *netlist.Design) error {
	for _, s := range []string{"1", "2"} {
		if _, err := d.AddPort("in"+s, netlist.In); err != nil {
			return err
		}
		if _, err := d.AddPort("out"+s, netlist.Out); err != nil {
			return err
		}
		if _, err := d.AddInst("u"+s, "INV_X1"); err != nil {
			return err
		}
		if _, err := d.AddInst("v"+s, "INV_X2"); err != nil {
			return err
		}
		for _, c := range [][4]string{
			{"u" + s, "A", "in" + s, "in"}, {"u" + s, "Y", "mid" + s, "out"},
			{"v" + s, "A", "mid" + s, "in"}, {"v" + s, "Y", "out" + s, "out"},
		} {
			dir := netlist.In
			if c[3] == "out" {
				dir = netlist.Out
			}
			if err := d.Connect(c[0], c[1], c[2], dir); err != nil {
				return err
			}
		}
	}
	return nil
}

// requireEqualResults compares every net annotation of two results exactly
// (tolerance zero: the incremental path must run the same arithmetic).
func requireEqualResults(t *testing.T, got, want *Result) {
	t.Helper()
	if len(got.nets) != len(want.nets) {
		t.Fatalf("net count %d != %d", len(got.nets), len(want.nets))
	}
	for name, wt := range want.nets {
		gt, ok := got.nets[name]
		if !ok {
			t.Fatalf("net %s missing from incremental result", name)
		}
		if !gt.equalWithin(wt, 0) {
			t.Fatalf("net %s: incremental %+v != fresh %+v", name, gt, wt)
		}
	}
	if len(got.required) != len(want.required) {
		t.Fatalf("required count %d != %d", len(got.required), len(want.required))
	}
	for name, wv := range want.required {
		if gv, ok := got.required[name]; !ok || gv != wv {
			t.Fatalf("required[%s] = %v, want %v", name, gv, wv)
		}
	}
}

func TestUpdatePaddingMatchesFreshRun(t *testing.T) {
	b := mustDesign(t, twoChains)
	padding := map[string]float64{}
	opts := Options{WindowPadding: padding, ClockPeriod: 1 * units.Nano}
	res, err := Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	untouched := res.nets["mid2"]

	padding["mid1"] = 30 * units.Pico
	dirty, err := res.UpdatePaddingCtx(context.Background(), opts, []string{"mid1"})
	if err != nil {
		t.Fatal(err)
	}
	if !dirty["mid1"] || !dirty["out1"] {
		t.Fatalf("dirty = %v, want mid1 and out1", dirty)
	}
	if dirty["mid2"] || dirty["out2"] || dirty["in1"] {
		t.Fatalf("dirty = %v leaked outside the padded cone", dirty)
	}
	if res.nets["mid2"] != untouched {
		t.Fatal("untouched chain was recomputed")
	}
	fresh, err := Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, res, fresh)

	// Growing the same net again keeps matching (the double-padding
	// hazard: a stale padded annotation merged into the re-evaluation
	// would pad twice).
	padding["mid1"] = 55 * units.Pico
	if _, err := res.UpdatePaddingCtx(context.Background(), opts, []string{"mid1"}); err != nil {
		t.Fatal(err)
	}
	fresh, err = Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, res, fresh)
}

func TestUpdatePaddingPortNetIsNoop(t *testing.T) {
	b := mustDesign(t, twoChains)
	padding := map[string]float64{}
	opts := Options{WindowPadding: padding}
	res, err := Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Port-driven nets are seeded, never padded, so a padding entry on one
	// dirties nothing.
	padding["in1"] = 40 * units.Pico
	dirty, err := res.UpdatePaddingCtx(context.Background(), opts, []string{"in1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Fatalf("dirty = %v, want empty", dirty)
	}
	freshOpts := Options{WindowPadding: map[string]float64{}}
	fresh, err := Run(b, freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, res, fresh)
}

func TestUpdatePaddingFeedbackFallsBackToFullRun(t *testing.T) {
	b := mustDesign(t, func(d *netlist.Design) error {
		if _, err := d.AddPort("in", netlist.In); err != nil {
			return err
		}
		for _, n := range []string{"g1", "g2"} {
			if _, err := d.AddInst(n, "NAND2_X1"); err != nil {
				return err
			}
		}
		for _, c := range [][4]string{
			{"g1", "A", "in", "in"}, {"g1", "B", "q", "in"}, {"g1", "Y", "p", "out"},
			{"g2", "A", "p", "in"}, {"g2", "B", "in", "in"}, {"g2", "Y", "q", "out"},
		} {
			dir := netlist.In
			if c[3] == "out" {
				dir = netlist.Out
			}
			if err := d.Connect(c[0], c[1], c[2], dir); err != nil {
				return err
			}
		}
		return nil
	})
	padding := map[string]float64{}
	opts := Options{WindowPadding: padding, MaxLoopIter: 4}
	res, err := Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	padding["p"] = 25 * units.Pico
	dirty, err := res.UpdatePaddingCtx(context.Background(), opts, []string{"p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != len(res.nets) {
		t.Fatalf("feedback fallback dirtied %d of %d nets", len(dirty), len(res.nets))
	}
	fresh, err := Run(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, res, fresh)
}
