// Package sta is a static timing analyzer specialized for what noise
// analysis needs: per-net switching windows. It propagates, for each net
// and each transition direction (rise/fall), the earliest and latest
// possible arrival time — an interval.Window — together with the range of
// possible transition slews, from the primary inputs through NLDM table
// delays and Elmore wire delays to every pin of the design.
//
// A net's switching window answers the question windowed noise analysis
// asks about every aggressor: *when can this net switch at all?* Without
// timing, that answer is "any time" (an infinite window), which is exactly
// the pessimistic classical assumption; sta replaces it with a bounded
// interval.
package sta

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/units"
)

// maxWindowFragments bounds how many disjoint windows a single arrival
// annotation may carry; beyond it the closest fragments are merged
// (conservatively) by interval.Set.Simplify. Eight phases comfortably
// covers realistic multi-phase clocking without letting loop fixpoints
// fragment without bound.
const maxWindowFragments = 8

// Range is a [Min, Max] scalar pair (slews, delays).
type Range struct {
	Min, Max float64
}

// valid reports whether the range was ever updated.
func (r Range) valid() bool { return r.Min <= r.Max }

// emptyRange is the identity for widen.
func emptyRange() Range {
	return Range{Min: math.Inf(1), Max: math.Inf(-1)}
}

func (r Range) widen(v float64) Range {
	return Range{Min: math.Min(r.Min, v), Max: math.Max(r.Max, v)}
}

func (r Range) union(o Range) Range {
	return Range{Min: math.Min(r.Min, o.Min), Max: math.Max(r.Max, o.Max)}
}

// Timing is the switching information at one point (net source or pin):
// arrival windows and slew ranges per transition direction. Windows are
// interval.Sets so a point may legitimately switch in several disjoint
// intervals (multi-phase clocks, gated activity) — the general form the
// noise-window method exploits.
type Timing struct {
	Rise, Fall         interval.Set
	SlewRise, SlewFall Range
}

// emptyTiming returns a Timing with empty windows and inverted slews.
func emptyTiming() *Timing {
	return &Timing{
		SlewRise: emptyRange(),
		SlewFall: emptyRange(),
	}
}

// Window returns the arrival window set for one direction.
func (t *Timing) Window(rise bool) interval.Set {
	if rise {
		return t.Rise
	}
	return t.Fall
}

// Slew returns the slew range for one direction.
func (t *Timing) Slew(rise bool) Range {
	if rise {
		return t.SlewRise
	}
	return t.SlewFall
}

// SwitchingWindow is the union of both directions' arrival windows: the
// instants at which the point can be transitioning at all.
func (t *Timing) SwitchingWindow() interval.Set {
	return t.Rise.Union(t.Fall)
}

// HasActivity reports whether any transition can occur here.
func (t *Timing) HasActivity() bool {
	return !t.Rise.IsEmpty() || !t.Fall.IsEmpty()
}

// equalWithin compares two timings to tolerance, for fixpoint detection.
func (t *Timing) equalWithin(o *Timing, tol float64) bool {
	wEq := func(a, b interval.Set) bool {
		aw, bw := a.Windows(), b.Windows()
		if len(aw) != len(bw) {
			return false
		}
		for i := range aw {
			if math.Abs(aw[i].Lo-bw[i].Lo) > tol || math.Abs(aw[i].Hi-bw[i].Hi) > tol {
				return false
			}
		}
		return true
	}
	rEq := func(a, b Range) bool {
		if a.valid() != b.valid() {
			return false
		}
		if !a.valid() {
			return true
		}
		return math.Abs(a.Min-b.Min) <= tol && math.Abs(a.Max-b.Max) <= tol
	}
	return wEq(t.Rise, o.Rise) && wEq(t.Fall, o.Fall) &&
		rEq(t.SlewRise, o.SlewRise) && rEq(t.SlewFall, o.SlewFall)
}

// Options tunes an analysis run.
type Options struct {
	// DefaultInputWindow is the arrival window assumed for primary inputs
	// without an explicit constraint. The zero value means [0,0]: inputs
	// switch exactly at t=0.
	DefaultInputWindow interval.Window
	// DefaultInputSlew is the transition time assumed at primary inputs
	// (default 20 ps).
	DefaultInputSlew float64
	// InputTiming overrides timing per input port name.
	InputTiming map[string]*Timing
	// MaxLoopIter bounds the fixpoint iteration over combinational loops
	// before giving up and assigning infinite windows (default 32).
	MaxLoopIter int
	// EarlyDerate and LateDerate scale every gate and wire delay at the
	// early (minimum) and late (maximum) edge respectively, the standard
	// OCV-style corner treatment: EarlyDerate ≤ 1 ≤ LateDerate widens
	// every switching window to cover on-chip variation. Zero means 1.0.
	EarlyDerate, LateDerate float64
	// ClockPeriod, when positive, enables the backward required-time pass:
	// every output port must settle by this time, and per-net timing
	// slacks become available through Result.TimingSlack.
	ClockPeriod float64
	// WindowPadding extends the named nets' arrival windows by the given
	// amount at the late edge. This is how crosstalk delta-delay feeds
	// back into timing: a net whose transition can be pushed out by Δ may
	// arrive up to Δ later, which widens every downstream switching
	// window on the next analysis round.
	WindowPadding map[string]float64
}

func (o *Options) fill() {
	if o.DefaultInputSlew <= 0 {
		o.DefaultInputSlew = 20 * units.Pico
	}
	if o.MaxLoopIter <= 0 {
		o.MaxLoopIter = 32
	}
	if o.EarlyDerate <= 0 {
		o.EarlyDerate = 1
	}
	if o.LateDerate <= 0 {
		o.LateDerate = 1
	}
}

// Result is the timing annotation of a design.
type Result struct {
	design      *bind.Design
	nets        map[string]*Timing        // at net source (driver output)
	pins        map[*netlist.Conn]*Timing // at load pins, wire delay applied
	early, late float64                   // delay derates
	// required times per net (present only when ClockPeriod was set).
	required map[string]float64
}

// TimingOfNet returns the switching information at a net's source, or an
// inactive Timing if the net never switches (e.g. untied inputs).
func (r *Result) TimingOfNet(net string) *Timing {
	if t, ok := r.nets[net]; ok {
		return t
	}
	return emptyTiming()
}

// TimingOfPin returns the switching information at a specific load pin.
func (r *Result) TimingOfPin(c *netlist.Conn) *Timing {
	if t, ok := r.pins[c]; ok {
		return t
	}
	return emptyTiming()
}

// SwitchingWindow returns the switching-window set of a net.
func (r *Result) SwitchingWindow(net string) interval.Set {
	return r.TimingOfNet(net).SwitchingWindow()
}

// Run performs the analysis.
func Run(b *bind.Design, opts Options) (*Result, error) {
	return RunCtx(context.Background(), b, opts)
}

// RunCtx is Run with cooperative cancellation: the context is checked
// while walking the levelized instance list and between loop-fixpoint
// passes, so a timing run over a huge design stops within a bounded
// amount of work of the deadline.
func RunCtx(ctx context.Context, b *bind.Design, opts Options) (*Result, error) {
	opts.fill()
	res := &Result{
		design: b,
		nets:   make(map[string]*Timing, b.Net.NumNets()),
		pins:   make(map[*netlist.Conn]*Timing),
		early:  opts.EarlyDerate,
		late:   opts.LateDerate,
	}

	// Seed primary inputs.
	for _, p := range b.Net.Ports() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p.Dir != netlist.In {
			continue
		}
		t := opts.InputTiming[p.Name]
		if t == nil {
			dw := interval.NewSet(opts.DefaultInputWindow)
			t = &Timing{
				Rise:     dw,
				Fall:     dw,
				SlewRise: Range{Min: opts.DefaultInputSlew, Max: opts.DefaultInputSlew},
				SlewFall: Range{Min: opts.DefaultInputSlew, Max: opts.DefaultInputSlew},
			}
		}
		res.nets[p.Name] = t
		if err := res.propagateNetToPins(p.Conn.Net); err != nil {
			return nil, err
		}
	}

	lev := b.Net.Levelize()
	for i, inst := range lev.Ordered() {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := res.evalInst(inst, &opts); err != nil {
			return nil, err
		}
	}

	// Fixpoint over combinational loops: repeat passes while anything
	// changes; windows only grow (hull), so divergence shows up as
	// non-convergence and is resolved conservatively.
	if len(lev.Feedback) > 0 {
		converged := false
		for iter := 0; iter < opts.MaxLoopIter; iter++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			changed := false
			for _, inst := range lev.Feedback {
				before := snapshotOutputs(res, inst)
				if err := res.evalInst(inst, &opts); err != nil {
					return nil, err
				}
				if !outputsEqual(res, inst, before, units.Pico/1000) {
					changed = true
				}
			}
			if !changed {
				converged = true
				break
			}
		}
		if !converged {
			// Loops that keep widening get the fully pessimistic
			// annotation: they may switch at any time.
			for _, inst := range lev.Feedback {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				for _, oc := range inst.Outputs() {
					t := res.TimingOfNet(oc.Net.Name)
					inf := interval.InfiniteSet()
					nt := &Timing{Rise: inf, Fall: inf, SlewRise: t.SlewRise, SlewFall: t.SlewFall}
					if !nt.SlewRise.valid() {
						nt.SlewRise = Range{Min: opts.DefaultInputSlew, Max: opts.DefaultInputSlew}
					}
					if !nt.SlewFall.valid() {
						nt.SlewFall = Range{Min: opts.DefaultInputSlew, Max: opts.DefaultInputSlew}
					}
					res.nets[oc.Net.Name] = nt
					if err := res.propagateNetToPins(oc.Net); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if opts.ClockPeriod > 0 {
		if err := res.computeRequired(&opts); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func snapshotOutputs(res *Result, inst *netlist.Inst) []*Timing {
	outs := inst.Outputs()
	snap := make([]*Timing, len(outs))
	for i, oc := range outs {
		t := res.TimingOfNet(oc.Net.Name)
		cp := *t
		snap[i] = &cp
	}
	return snap
}

func outputsEqual(res *Result, inst *netlist.Inst, snap []*Timing, tol float64) bool {
	for i, oc := range inst.Outputs() {
		if !res.TimingOfNet(oc.Net.Name).equalWithin(snap[i], tol) {
			return false
		}
	}
	return true
}

// evalInst computes the output timing of one instance from its input pin
// timings, then updates downstream pin annotations.
func (res *Result) evalInst(inst *netlist.Inst, opts *Options) error {
	cell := res.design.Cell(inst)
	for _, oc := range inst.Outputs() {
		load, err := res.design.LoadCapOf(oc.Net.Name)
		if err != nil {
			return err
		}
		out := emptyTiming()
		for _, arc := range cell.ArcsTo(oc.Pin) {
			ic := inst.Conns[arc.From]
			if ic == nil {
				return fmt.Errorf("sta: %s.%s unconnected arc input", inst.Name, arc.From)
			}
			in := res.TimingOfPin(ic)
			if !in.HasActivity() {
				continue
			}
			for _, inRise := range []bool{true, false} {
				win := in.Window(inRise)
				if win.IsEmpty() {
					continue
				}
				slew := in.Slew(inRise)
				if !slew.valid() {
					slew = Range{Min: opts.DefaultInputSlew, Max: opts.DefaultInputSlew}
				}
				for _, outRise := range outDirections(arc.Unate, inRise) {
					dT, sT := arc.DelayFall, arc.SlewFall
					if outRise {
						dT, sT = arc.DelayRise, arc.SlewRise
					}
					d1 := dT.Eval(slew.Min, load)
					d2 := dT.Eval(slew.Max, load)
					if d1 > d2 {
						d1, d2 = d2, d1
					}
					d1 *= opts.EarlyDerate
					d2 *= opts.LateDerate
					w := win.ShiftRange(d1, d2)
					s1 := sT.Eval(slew.Min, load)
					s2 := sT.Eval(slew.Max, load)
					if s1 > s2 {
						s1, s2 = s2, s1
					}
					if outRise {
						out.Rise = out.Rise.Union(w)
						out.SlewRise = out.SlewRise.union(Range{Min: s1, Max: s2})
					} else {
						out.Fall = out.Fall.Union(w)
						out.SlewFall = out.SlewFall.union(Range{Min: s1, Max: s2})
					}
				}
			}
		}
		// Merge with any existing annotation (loop iteration): windows
		// only grow. Simplify bounds set fragmentation so the fixpoint
		// stays cheap on loops.
		if prev, ok := res.nets[oc.Net.Name]; ok {
			out.Rise = out.Rise.Union(prev.Rise)
			out.Fall = out.Fall.Union(prev.Fall)
			if prev.SlewRise.valid() {
				out.SlewRise = out.SlewRise.union(prev.SlewRise)
			}
			if prev.SlewFall.valid() {
				out.SlewFall = out.SlewFall.union(prev.SlewFall)
			}
		}
		if pad := opts.WindowPadding[oc.Net.Name]; pad > 0 {
			out.Rise = out.Rise.ShiftRange(0, pad)
			out.Fall = out.Fall.ShiftRange(0, pad)
		}
		out.Rise = out.Rise.Simplify(maxWindowFragments)
		out.Fall = out.Fall.Simplify(maxWindowFragments)
		res.nets[oc.Net.Name] = out
		if err := res.propagateNetToPins(oc.Net); err != nil {
			return err
		}
	}
	return nil
}

// outDirections maps an input transition through an arc's unateness.
func outDirections(u liberty.Unateness, inRise bool) []bool {
	switch u {
	case liberty.PositiveUnate:
		return []bool{inRise}
	case liberty.NegativeUnate:
		return []bool{!inRise}
	default:
		return []bool{true, false}
	}
}

// propagateNetToPins annotates each load pin of a net with the source
// timing delayed by the wire (Elmore) and degraded in slew.
func (res *Result) propagateNetToPins(net *netlist.Net) error {
	src := res.TimingOfNet(net.Name)
	a, err := res.design.Analysis(net.Name)
	if err != nil {
		return err
	}
	nw, err := res.design.Network(net.Name)
	if err != nil {
		return err
	}
	for _, lc := range net.Loads() {
		node := bind.PinNode(lc)
		var wd, sd float64
		if nw.HasNode(node) {
			if wd, err = a.ElmoreTo(node); err != nil {
				return err
			}
			if sd, err = a.SlewDegradation(node); err != nil {
				return err
			}
		}
		t := &Timing{
			Rise:     src.Rise.ShiftRange(wd*res.early, wd*res.late),
			Fall:     src.Fall.ShiftRange(wd*res.early, wd*res.late),
			SlewRise: addSlew(src.SlewRise, sd),
			SlewFall: addSlew(src.SlewFall, sd),
		}
		res.pins[lc] = t
	}
	return nil
}

// addSlew combines driver slew with wire degradation by root-sum-square,
// the standard PERI composition.
func addSlew(r Range, sd float64) Range {
	if !r.valid() {
		return r
	}
	f := func(s float64) float64 { return math.Sqrt(s*s + sd*sd) }
	return Range{Min: f(r.Min), Max: f(r.Max)}
}
