package sta

import (
	"math"

	"repro/internal/netlist"
)

// Required-time computation: with a clock period set, every output port
// must settle by the end of the cycle. Required times propagate backward
// through the levelized netlist (required at a net = the tightest fanout
// requirement minus the worst arc and wire delay on the way there), and a
// net's timing slack is its required time minus its latest possible
// arrival. Crosstalk delta-delay then has a currency: a push-out of Δ on a
// net eats Δ of that net's slack.

// computeRequired fills res.required for every net reachable backward from
// an output port. Feedback instances are skipped (their nets keep +Inf
// required, i.e. unconstrained) — loops already received fully pessimistic
// arrival windows.
func (res *Result) computeRequired(opts *Options) error {
	b := res.design
	res.required = make(map[string]float64, b.Net.NumNets())
	req := func(net string) float64 {
		if v, ok := res.required[net]; ok {
			return v
		}
		return math.Inf(1)
	}
	for _, p := range b.Net.Ports() {
		if p.Dir == netlist.Out {
			res.required[p.Name] = opts.ClockPeriod
		}
	}
	lev := b.Net.Levelize()
	ordered := lev.Ordered()
	for i := len(ordered) - 1; i >= 0; i-- {
		inst := ordered[i]
		cell := b.Cell(inst)
		for _, oc := range inst.Outputs() {
			outReq := req(oc.Net.Name)
			if math.IsInf(outReq, 1) {
				continue
			}
			load, err := b.LoadCapOf(oc.Net.Name)
			if err != nil {
				return err
			}
			for _, arc := range cell.ArcsTo(oc.Pin) {
				ic := inst.Conns[arc.From]
				if ic == nil {
					continue
				}
				in := res.TimingOfPin(ic)
				slew := opts.DefaultInputSlew
				if s := in.SlewRise.union(in.SlewFall); s.valid() {
					slew = s.Max
				}
				d := math.Max(arc.DelayRise.Eval(slew, load), arc.DelayFall.Eval(slew, load))
				d *= res.late
				wd, err := b.WireDelayTo(ic)
				if err != nil {
					return err
				}
				cand := outReq - d - wd*res.late
				if cand < req(ic.Net.Name) {
					res.required[ic.Net.Name] = cand
				}
			}
		}
	}
	return nil
}

// TimingSlack returns the net's timing slack — required time minus latest
// arrival — and whether a meaningful slack exists (the net switches and a
// clock period constrained it). Negative slack is a setup violation.
func (r *Result) TimingSlack(net string) (float64, bool) {
	if r.required == nil {
		return 0, false
	}
	reqT, ok := r.required[net]
	if !ok || math.IsInf(reqT, 1) {
		return 0, false
	}
	t := r.TimingOfNet(net)
	if !t.HasActivity() {
		return 0, false
	}
	latest := math.Inf(-1)
	for _, rise := range []bool{true, false} {
		if h := t.Window(rise).Hull(); !h.IsEmpty() && h.Hi > latest {
			latest = h.Hi
		}
	}
	if math.IsInf(latest, 0) {
		return 0, false
	}
	return reqT - latest, true
}

// WorstTimingSlack returns the smallest slack across constrained nets, or
// +Inf when no net is constrained.
func (r *Result) WorstTimingSlack() float64 {
	worst := math.Inf(1)
	for net := range r.required {
		if s, ok := r.TimingSlack(net); ok && s < worst {
			worst = s
		}
	}
	return worst
}
