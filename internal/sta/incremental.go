package sta

import (
	"context"

	"repro/internal/netlist"
)

// Incremental padding update: the joint noise–timing loop grows
// Options.WindowPadding on a handful of nets each round and re-runs
// timing. A from-scratch run redoes every instance; but padding on net N
// can only change the annotations of N itself and everything downstream of
// it, so an incremental update re-evaluates just that cone and leaves the
// rest of the annotation untouched.
//
// Correctness relies on two properties of the forward pass:
//
//   - evalInst merges the freshly computed output window with any previous
//     annotation before applying padding (the union is for loop fixpoints).
//     A padded stale annotation must therefore never be merged into a
//     re-evaluation — the padding would be applied twice. The update
//     deletes every dirty instance's output annotations before walking the
//     levelized order, so each dirty instance computes exactly what a
//     fresh run would.
//
//   - port-driven nets are seeded directly and never receive padding in
//     the forward pass, so padding entries on them do not dirty anything.
//
// Designs with combinational feedback fall back to a full fresh run: a
// loop fixpoint restarted from a padded annotation could settle elsewhere
// than a fresh run's, and equality with the from-scratch engine is the
// contract here.

// UpdatePaddingCtx re-runs timing incrementally after opts.WindowPadding
// changed on the named nets, mutating the Result in place. It returns the
// set of nets whose annotation was recomputed (a superset of the nets
// whose timing actually changed). opts must match the options of the run
// that produced the Result, apart from the padding values.
func (res *Result) UpdatePaddingCtx(ctx context.Context, opts Options, changed []string) (map[string]bool, error) {
	opts.fill()
	b := res.design
	lev := b.Net.Levelize()
	if len(lev.Feedback) > 0 {
		fresh, err := RunCtx(ctx, b, opts)
		if err != nil {
			return nil, err
		}
		*res = *fresh
		dirty := make(map[string]bool, len(res.nets))
		for name := range res.nets {
			dirty[name] = true
		}
		return dirty, nil
	}

	// Seed: the instances driving the changed nets. Port-driven nets are
	// seeded, not evaluated, so padding never applies to them.
	dirtyInst := make(map[*netlist.Inst]bool)
	var queue []*netlist.Inst
	mark := func(inst *netlist.Inst) {
		if inst != nil && !dirtyInst[inst] {
			dirtyInst[inst] = true
			queue = append(queue, inst)
		}
	}
	for _, name := range changed {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		net := b.Net.FindNet(name)
		if net == nil {
			continue
		}
		if drv := net.Driver(); drv != nil {
			mark(drv.Inst)
		}
	}
	// Fanout closure over instances: a re-evaluated output perturbs every
	// instance reading it.
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inst := queue[0]
		queue = queue[1:]
		for _, oc := range inst.Outputs() {
			for _, lc := range oc.Net.Loads() {
				mark(lc.Inst)
			}
		}
	}
	dirtyNets := make(map[string]bool)
	if len(dirtyInst) == 0 {
		return dirtyNets, nil
	}
	// Clear the dirty annotations first (see the double-padding note
	// above), then re-evaluate in levelized order so every dirty
	// instance's inputs are final when it runs.
	for inst := range dirtyInst {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, oc := range inst.Outputs() {
			delete(res.nets, oc.Net.Name)
			dirtyNets[oc.Net.Name] = true
		}
	}
	for i, inst := range lev.Ordered() {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !dirtyInst[inst] {
			continue
		}
		if err := res.evalInst(inst, &opts); err != nil {
			return nil, err
		}
	}
	if opts.ClockPeriod > 0 {
		if err := res.computeRequired(&opts); err != nil {
			return nil, err
		}
	}
	return dirtyNets, nil
}
