package sta

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/interval"
)

// The ".win" input-timing file format carries per-port switching windows
// between tools (netgen emits one, sna consumes it):
//
//	# comment
//	input NAME RISE FALL slewMin slewMax
//
// where RISE and FALL are window sets: "-" for a transition that never
// happens, or a comma-separated list of lo:hi windows, e.g.
// "0:4e-11,6e-10:6.4e-10" for a two-phase input. Bounds accept
// "-inf"/"+inf". All values are seconds.

// WriteInputTiming renders a port-timing map in .win format.
//
//snavet:ctxloop file codec bounded by the timing map; cancellation belongs to the caller's writer
func WriteInputTiming(w io.Writer, m map[string]*Timing) error {
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := m[n]
		slew := t.SlewRise
		if !slew.valid() {
			slew = t.SlewFall
		}
		if !slew.valid() {
			slew = Range{Min: 0, Max: 0}
		}
		fmt.Fprintf(bw, "input %s %s %s %s %s\n",
			n, winField(t.Rise), winField(t.Fall),
			numField(slew.Min), numField(slew.Max))
	}
	return bw.Flush()
}

func winField(s interval.Set) string {
	if s.IsEmpty() {
		return "-"
	}
	parts := make([]string, 0, s.Len())
	for _, w := range s.Windows() {
		parts = append(parts, numField(w.Lo)+":"+numField(w.Hi))
	}
	return strings.Join(parts, ",")
}

func numField(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseInputTiming reads a .win file into a port-timing map suitable for
// Options.InputTiming.
//
//snavet:ctxloop file codec bounded by the input file; cancellation belongs to the caller's reader
func ParseInputTiming(r io.Reader) (map[string]*Timing, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	out := make(map[string]*Timing)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if f[0] != "input" {
			return nil, fmt.Errorf("sta: line %d: unknown keyword %q", lineNo, f[0])
		}
		if len(f) < 2 {
			return nil, fmt.Errorf("sta: line %d: input wants a name", lineNo)
		}
		name := f[1]
		if len(f) != 6 {
			return nil, fmt.Errorf("sta: line %d: input wants NAME RISE FALL slewMin slewMax", lineNo)
		}
		rise, err := parseWinField(f[2])
		if err != nil {
			return nil, fmt.Errorf("sta: line %d: rise window: %w", lineNo, err)
		}
		fall, err := parseWinField(f[3])
		if err != nil {
			return nil, fmt.Errorf("sta: line %d: fall window: %w", lineNo, err)
		}
		sMin, err1 := parseNum(f[4])
		sMax, err2 := parseNum(f[5])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("sta: line %d: bad slew", lineNo)
		}
		slew := Range{Min: sMin, Max: sMax}
		t := &Timing{Rise: rise, Fall: fall, SlewRise: emptyRange(), SlewFall: emptyRange()}
		if !rise.IsEmpty() {
			t.SlewRise = slew
		}
		if !fall.IsEmpty() {
			t.SlewFall = slew
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("sta: line %d: duplicate input %q", lineNo, name)
		}
		out[name] = t
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sta: line %d: %w", lineNo+1, err)
	}
	return out, nil
}

// parseWinField parses "-" or a comma-separated list of lo:hi windows.
func parseWinField(field string) (interval.Set, error) {
	if field == "-" {
		return interval.EmptySet(), nil
	}
	var ws []interval.Window
	for _, part := range strings.Split(field, ",") {
		bounds := strings.Split(part, ":")
		if len(bounds) != 2 {
			return interval.EmptySet(), fmt.Errorf("window %q wants lo:hi", part)
		}
		lo, err1 := parseNum(bounds[0])
		hi, err2 := parseNum(bounds[1])
		if err1 != nil || err2 != nil {
			return interval.EmptySet(), fmt.Errorf("bad window bounds %q", part)
		}
		// ParseFloat accepts "NaN", and NaN compares false to everything,
		// so the inverted-window check below cannot catch it — reject it
		// explicitly or interval.New panics on attacker-controlled input.
		if math.IsNaN(lo) || math.IsNaN(hi) {
			return interval.EmptySet(), fmt.Errorf("NaN window bound in %q", part)
		}
		if lo > hi {
			return interval.EmptySet(), fmt.Errorf("inverted window [%g, %g]", lo, hi)
		}
		ws = append(ws, interval.New(lo, hi))
	}
	return interval.NewSet(ws...), nil
}

func parseNum(s string) (float64, error) {
	switch s {
	case "+inf", "inf":
		return math.Inf(1), nil
	case "-inf":
		return math.Inf(-1), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	// NaN compares false against everything, so it would slip past the
	// inverted-window check and panic inside interval.New.
	if math.IsNaN(v) {
		return 0, fmt.Errorf("NaN is not a valid value")
	}
	return v, nil
}
