package sta

import (
	"math"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/units"
)

func TestTimingFileRoundTrip(t *testing.T) {
	m := map[string]*Timing{
		"in0": {
			Rise:     interval.SetOf(0, 40*units.Pico),
			Fall:     interval.SetOf(10*units.Pico, 50*units.Pico),
			SlewRise: Range{Min: 20 * units.Pico, Max: 30 * units.Pico},
			SlewFall: Range{Min: 20 * units.Pico, Max: 30 * units.Pico},
		},
		"quiet": {
			SlewRise: emptyRange(),
			SlewFall: emptyRange(),
		},
		"twophase": {
			Rise: interval.NewSet(
				interval.New(5*units.Pico, 15*units.Pico),
				interval.New(600*units.Pico, 640*units.Pico),
			),
			SlewRise: Range{Min: 10 * units.Pico, Max: 10 * units.Pico},
			SlewFall: emptyRange(),
		},
	}
	var sb strings.Builder
	if err := WriteInputTiming(&sb, m); err != nil {
		t.Fatal(err)
	}
	got, err := ParseInputTiming(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, sb.String())
	}
	if len(got) != 3 {
		t.Fatalf("entries = %d", len(got))
	}
	in0 := got["in0"]
	if !in0.Rise.Equal(m["in0"].Rise) || !in0.Fall.Equal(m["in0"].Fall) {
		t.Fatalf("in0 windows = %+v", in0)
	}
	if in0.SlewRise != m["in0"].SlewRise {
		t.Fatalf("in0 slew = %+v", in0.SlewRise)
	}
	quiet := got["quiet"]
	if quiet.HasActivity() {
		t.Fatalf("quiet became active: %+v", quiet)
	}
	tp := got["twophase"]
	if tp.Rise.Len() != 2 || !tp.Fall.IsEmpty() {
		t.Fatalf("twophase = %+v", tp)
	}
	if !tp.Rise.Equal(m["twophase"].Rise) {
		t.Fatalf("twophase windows = %v", tp.Rise)
	}
	if tp.SlewFall.valid() {
		t.Fatal("twophase fall slew should be invalid")
	}
}

func TestTimingFileInfinity(t *testing.T) {
	src := "input loop -inf:+inf -inf:+inf 2e-11 2e-11\n"
	got, err := ParseInputTiming(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !got["loop"].Rise.IsInfinite() {
		t.Fatalf("rise = %v", got["loop"].Rise)
	}
	// Round trip preserves infinities.
	var sb strings.Builder
	if err := WriteInputTiming(&sb, got); err != nil {
		t.Fatal(err)
	}
	again, err := ParseInputTiming(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !again["loop"].Fall.IsInfinite() {
		t.Fatalf("fall after round trip = %v", again["loop"].Fall)
	}
}

func TestTimingFileComments(t *testing.T) {
	src := "# header\n\ninput a 0:1e-11 - 1e-11 2e-11\n"
	got, err := ParseInputTiming(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got["a"] == nil || !got["a"].Fall.IsEmpty() {
		t.Fatalf("got = %+v", got["a"])
	}
}

func TestTimingFileErrors(t *testing.T) {
	cases := []string{
		"output a 0:1 0:1 1 1", // unknown keyword
		"input",                // missing name
		"input a 0:1",          // truncated line
		"input a x:y - 1 1",    // bad bounds
		"input a 5:1 - 1 1",    // inverted window
		"input a 0 1 - 1 1",    // window missing colon
		"input a - - 1",        // missing slew
		"input a - - x y",      // bad slew
		"input a 0:1,2 - 1 1",  // malformed list entry
		"input a 0:1 0:1 1 1\ninput a 0:1 0:1 1 1", // duplicate
	}
	for _, src := range cases {
		if _, err := ParseInputTiming(strings.NewReader(src)); err == nil {
			t.Errorf("ParseInputTiming(%q) succeeded", src)
		}
	}
}

func TestNumFieldFormats(t *testing.T) {
	if numField(math.Inf(1)) != "+inf" || numField(math.Inf(-1)) != "-inf" {
		t.Fatal("infinity formatting")
	}
	if numField(1.5e-12) != "1.5e-12" {
		t.Fatalf("numField = %q", numField(1.5e-12))
	}
}

// A timing file can spell any float strconv.ParseFloat accepts, including
// "NaN" — and NaN compares false to everything, so the inverted-window
// check cannot reject it. It used to flow straight into interval.New,
// which panics on NaN bounds. The parser must answer with an error, never
// a panic. (Crasher surfaced by the nanguard analyzer.)
func TestParseInputTimingRejectsNaN(t *testing.T) {
	for _, src := range []string{
		"input a NaN:1e-10 - 1e-12 1e-12\n",
		"input a 0:NaN - 1e-12 1e-12\n",
		"input a - nan:nan 1e-12 1e-12\n",
	} {
		if _, err := ParseInputTiming(strings.NewReader(src)); err == nil {
			t.Errorf("ParseInputTiming(%q) accepted a NaN bound", src)
		}
	}
}
