package lint

import (
	"fmt"
	"strings"
)

// Netlist structure rules: driver multiplicity, floating inputs, and
// combinational loops.

func init() {
	Register(&rule{
		id:    "NL001",
		title: "multi-driven net: more than one connection drives the net",
		sev:   Error,
		check: checkMultiDriven,
	})
	Register(&rule{
		id:    "NL002",
		title: "floating input: a net with load pins but no driver",
		sev:   Error,
		check: checkFloatingInput,
	})
	Register(&rule{
		id:    "NL003",
		title: "combinational loop: instances without a finite topological level",
		sev:   Warn,
		check: checkLoops,
	})
}

func checkMultiDriven(in *Input, rep *Reporter) {
	for _, n := range in.Design.Nets() {
		var drivers []string
		for _, c := range n.Conns {
			if c.Driver() {
				drivers = append(drivers, c.Name())
			}
		}
		if len(drivers) > 1 {
			rep.Report("net "+n.Name,
				fmt.Sprintf("%d drivers: %s", len(drivers), strings.Join(drivers, ", ")),
				"keep exactly one driver per net; remove or reroute the extra output connections")
		}
	}
}

func checkFloatingInput(in *Input, rep *Reporter) {
	for _, n := range in.Design.Nets() {
		if len(n.Conns) == 0 || n.Driver() != nil {
			continue
		}
		loads := n.Loads()
		names := make([]string, 0, len(loads))
		for _, c := range loads {
			names = append(names, c.Name())
		}
		rep.Report("net "+n.Name,
			fmt.Sprintf("no driver for %d load pin(s): %s", len(loads), truncList(names, 4)),
			"connect a driver output or tie the net through a constant cell")
	}
}

func checkLoops(in *Input, rep *Reporter) {
	lev := in.Design.Levelize()
	if len(lev.Feedback) == 0 {
		return
	}
	names := make([]string, 0, len(lev.Feedback))
	for _, inst := range lev.Feedback {
		names = append(names, inst.Name)
	}
	rep.Report("design "+in.Design.Name,
		fmt.Sprintf("%d instance(s) on or downstream of combinational loops: %s",
			len(names), truncList(names, 8)),
		"break the loop with a sequential element, or confirm fixpoint iteration is intended")
}

// truncList joins up to max names, appending an ellipsis with the omitted
// count.
func truncList(names []string, max int) string {
	if len(names) <= max {
		return strings.Join(names, ", ")
	}
	return strings.Join(names[:max], ", ") + fmt.Sprintf(", ... (%d more)", len(names)-max)
}
