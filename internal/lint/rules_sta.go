package lint

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Input-timing rules: every provided window annotation must describe a
// real input port and a physically sensible switching opportunity.

func init() {
	Register(&rule{
		id:    "STA001",
		title: "degenerate switching window: empty/inverted annotation or unknown port",
		sev:   Warn,
		check: checkInputTiming,
	})
}

func checkInputTiming(in *Input, rep *Reporter) {
	if len(in.Inputs) == 0 {
		return
	}
	names := make([]string, 0, len(in.Inputs))
	for n := range in.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := in.Inputs[name]
		object := "input " + name
		p := in.Design.FindPort(name)
		if p == nil || p.Dir != netlist.In {
			rep.Report(object,
				"timing annotation names no input port of the design",
				"fix the port name or drop the stale annotation")
			continue
		}
		if t == nil || !t.HasActivity() {
			rep.Report(object,
				"switching windows are empty in both directions: this input can never transition",
				"give the port a rise or fall window, or confirm it is intentionally quiet")
			continue
		}
		// Sets normalize inverted windows away, but annotations built
		// programmatically can still carry raw inverted bounds.
		for _, dir := range []struct {
			label string
			rise  bool
		}{{"rise", true}, {"fall", false}} {
			for _, w := range t.Window(dir.rise).Windows() {
				if w.Lo > w.Hi {
					rep.ReportAt(Error, object,
						fmt.Sprintf("inverted %s window [%g, %g]", dir.label, w.Lo, w.Hi),
						"swap the bounds; windows are [lo, hi] with lo <= hi")
				}
			}
			slew := t.Slew(dir.rise)
			if !t.Window(dir.rise).IsEmpty() && slew.Min <= slew.Max && slew.Min < 0 {
				rep.ReportAt(Error, object,
					fmt.Sprintf("negative %s slew %g s", dir.label, slew.Min),
					"transition times must be non-negative")
			}
		}
	}
}
