package lint

import (
	"fmt"

	"repro/internal/spef"
)

// Parasitic-database rules: netlist↔SPEF correspondence, capacitor
// sanity, and RC connectivity.

func init() {
	Register(&rule{
		id:    "SPF001",
		title: "netlist/SPEF mismatch: parasitic net absent from the netlist, or vice versa",
		sev:   Error,
		check: checkSpefCorrespondence,
	})
	Register(&rule{
		id:    "SPF002",
		title: "bad capacitor or resistor: dangling coupling partner or negative value",
		sev:   Error,
		check: checkSpefValues,
	})
	Register(&rule{
		id:    "RC001",
		title: "broken RC topology: no driver node, disconnected subtree, or resistive loop",
		sev:   Error,
		check: checkRCTopology,
	})
}

func checkSpefCorrespondence(in *Input, rep *Reporter) {
	if in.Paras == nil {
		return
	}
	for _, sn := range in.Paras.Nets() {
		if in.Design.FindNet(sn.Name) == nil {
			rep.Report("spef net "+sn.Name,
				"parasitic net is not present in the netlist",
				"fix the extractor's name mapping or re-extract against this netlist")
		}
	}
	// The reverse direction is informational: a net without extracted
	// parasitics falls back to the lumped zero-resistance model, which is
	// routine pre-layout but worth surfacing on signoff runs.
	for _, n := range in.Design.Nets() {
		if len(n.Conns) == 0 || in.Paras.Net(n.Name) != nil {
			continue
		}
		rep.ReportAt(Info, "net "+n.Name,
			"no extracted parasitics; a lumped zero-resistance model will be used",
			"extract the net, or ignore for pre-layout runs")
	}
}

func checkSpefValues(in *Input, rep *Reporter) {
	if in.Paras == nil {
		return
	}
	// couplingsOf memoizes each net's per-partner coupling totals for the
	// reciprocity check.
	memo := make(map[string]map[string]float64)
	couplingsOf := func(n *spef.Net) map[string]float64 {
		if m, ok := memo[n.Name]; ok {
			return m
		}
		m := n.CouplingByNet()
		memo[n.Name] = m
		return m
	}
	for _, sn := range in.Paras.Nets() {
		for i, c := range sn.Caps {
			object := fmt.Sprintf("spef net %s cap %d", sn.Name, i+1)
			if c.F < 0 {
				rep.Report(object,
					fmt.Sprintf("negative capacitance %g F", c.F),
					"fix the extraction; negative capacitance is unphysical")
				continue
			}
			if c.Other == "" {
				continue
			}
			partner := spef.NetOfNode(c.Other)
			pn := in.Paras.Net(partner)
			if pn == nil && in.Design.FindNet(partner) == nil {
				rep.Report(object,
					fmt.Sprintf("dangling coupling cap: partner net %q exists in neither the parasitics nor the netlist", partner),
					"remove the capacitor or restore the missing aggressor net")
				continue
			}
			if pn != nil {
				if _, reciprocal := couplingsOf(pn)[sn.Name]; !reciprocal {
					rep.ReportAt(Info, object,
						fmt.Sprintf("coupling to %q has no reciprocal entry in that net's section", partner),
						"extractors list each coupling cap in both partners' sections; the partner will not see this aggressor")
				}
			}
		}
		for i, r := range sn.Ress {
			if r.Ohms < 0 {
				rep.Report(fmt.Sprintf("spef net %s res %d", sn.Name, i+1),
					fmt.Sprintf("negative resistance %g ohm", r.Ohms),
					"fix the extraction; negative resistance is unphysical")
			}
		}
	}
}

// checkRCTopology verifies, per parasitic net, what rc.Network.Analyze
// will require: a driver root exists, every node is reachable from it
// through the resistive tree, and the tree is acyclic. Reporting it here
// turns a mid-analysis abort into a pre-flight diagnostic.
func checkRCTopology(in *Input, rep *Reporter) {
	if in.Paras == nil {
		return
	}
	for _, sn := range in.Paras.Nets() {
		if in.Design.FindNet(sn.Name) == nil {
			continue // SPF001 already reports the mismatch
		}
		lintRCNet(sn, rep)
	}
}

func lintRCNet(sn *spef.Net, rep *Reporter) {
	object := "spef net " + sn.Name
	// Collect the node universe exactly as rc.FromSPEF interns it.
	idx := make(map[string]int)
	var names []string
	node := func(name string) int {
		if i, ok := idx[name]; ok {
			return i
		}
		i := len(names)
		idx[name] = i
		names = append(names, name)
		return i
	}
	root := -1
	for _, c := range sn.Conns {
		i := node(c.Node)
		if c.Dir == spef.DirOut && root < 0 {
			root = i
		}
	}
	type edge struct{ a, b int }
	var edges []edge
	for _, r := range sn.Ress {
		edges = append(edges, edge{node(r.A), node(r.B)})
	}
	for _, c := range sn.Caps {
		if c.F >= 0 { // negative caps are SPF002's finding
			node(c.Node)
		}
	}
	if root < 0 {
		rep.Report(object,
			"no driver connection (*CONN entry with direction O)",
			"add the driver pin to the net's *CONN section")
		return
	}
	adj := make([][]int, len(names))
	for _, e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	seen := make([]bool, len(names))
	seen[root] = true
	queue := []int{root}
	reached, compEdges := 0, 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		reached++
		compEdges += len(adj[u])
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	compEdges /= 2 // each undirected edge was counted from both endpoints
	if compEdges >= reached && reached > 0 && compEdges > 0 {
		rep.Report(object,
			fmt.Sprintf("resistive loop: %d resistors span only %d reachable nodes", compEdges, reached),
			"RC reduction assumes a tree; remove the redundant resistor or merge parallel segments")
	}
	var orphans []string
	for i, s := range seen {
		if !s {
			orphans = append(orphans, names[i])
		}
	}
	if len(orphans) > 0 {
		rep.Report(object,
			fmt.Sprintf("%d node(s) unreachable from the driver: %s", len(orphans), truncList(orphans, 3)),
			"connect the subtree with a resistor or drop the stray nodes")
	}
}
