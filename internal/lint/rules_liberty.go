package lint

import (
	"fmt"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Library data rules: table monotonicity, noise-transfer coverage, and
// netlist↔library binding consistency.

func init() {
	Register(&rule{
		id:    "LIB001",
		title: "non-monotone library table: immunity curve or NLDM surface misbehaves",
		sev:   Error,
		check: checkLibMonotone,
	})
	Register(&rule{
		id:    "LIB002",
		title: "missing noise-transfer data on an arc of a cell used by the design",
		sev:   Warn,
		check: checkTransferData,
	})
	Register(&rule{
		id:    "BND001",
		title: "unresolved binding: unknown cell or pin, direction mismatch, open input",
		sev:   Error,
		check: checkBinding,
	})
}

func checkLibMonotone(in *Input, rep *Reporter) {
	checkImmunity(in.Lib.DefaultImmunity, "lib default_immunity", rep)
	for _, c := range in.Lib.Cells() {
		for _, p := range c.InputPins() {
			checkImmunity(p.Immunity, fmt.Sprintf("lib cell %s pin %s immunity", c.Name, p.Name), rep)
		}
		for _, a := range c.Arcs {
			base := fmt.Sprintf("lib cell %s arc %s->%s", c.Name, a.From, a.To)
			checkNLDM(a.DelayRise, base+" delay_rise", rep)
			checkNLDM(a.DelayFall, base+" delay_fall", rep)
			checkNLDM(a.SlewRise, base+" slew_rise", rep)
			checkNLDM(a.SlewFall, base+" slew_fall", rep)
		}
	}
}

// checkImmunity verifies an immunity curve has ascending widths and
// non-increasing peaks (gate inertia filters narrow glitches, so the
// tolerated peak can only fall as glitches widen).
func checkImmunity(ic *liberty.ImmunityCurve, object string, rep *Reporter) {
	if ic == nil {
		return
	}
	if len(ic.Widths) == 0 || len(ic.Widths) != len(ic.Peaks) {
		rep.Report(object, "widths and peaks must be equal-length and non-empty",
			"re-characterize the curve")
		return
	}
	for i := 1; i < len(ic.Widths); i++ {
		if ic.Widths[i] < ic.Widths[i-1] {
			rep.Report(object,
				fmt.Sprintf("widths not ascending at entry %d (%g after %g)", i, ic.Widths[i], ic.Widths[i-1]),
				"sort the width axis; interpolation assumes ascending widths")
			return
		}
	}
	for i := 1; i < len(ic.Peaks); i++ {
		if ic.Peaks[i] > ic.Peaks[i-1] {
			rep.Report(object,
				fmt.Sprintf("peaks increase at entry %d (%g V after %g V): wider glitches must not be more tolerable", i, ic.Peaks[i], ic.Peaks[i-1]),
				"fix the characterization; allowed peak must be non-increasing in width")
			return
		}
	}
}

// checkNLDM verifies an NLDM surface has ascending axes and values that do
// not decrease along the load axis: more output load can never make a gate
// faster, so a dip marks a characterization error that would silently warp
// every derived window. A relative tolerance absorbs rounding noise.
func checkNLDM(t *liberty.Table2D, object string, rep *Reporter) {
	if t == nil {
		return
	}
	if !sort.Float64sAreSorted(t.Slews) || !sort.Float64sAreSorted(t.Loads) {
		rep.Report(object, "table axes are not ascending", "sort the slew and load axes")
		return
	}
	tol := 1e-9 * (t.MaxVal() - t.MinVal())
	for i, row := range t.Vals {
		for j := 1; j < len(row); j++ {
			if row[j] < row[j-1]-tol {
				rep.Report(object,
					fmt.Sprintf("value decreases along the load axis at row %d col %d (%g after %g)", i, j, row[j], row[j-1]),
					"re-characterize the table; delay and slew must be non-decreasing in load")
				return
			}
		}
	}
}

func checkTransferData(in *Input, rep *Reporter) {
	for _, cell := range usedCells(in) {
		for _, a := range cell.Arcs {
			if a.Transfer != nil {
				continue
			}
			rep.Report(fmt.Sprintf("lib cell %s arc %s->%s", cell.Name, a.From, a.To),
				"no noise-transfer data: glitches arriving at this input are assumed fully blocked",
				"add a transfer curve, or confirm the input is sequential and blocks noise by design")
		}
	}
}

// usedCells resolves the distinct library cells instantiated by the
// design, sorted by name. Unknown cells are skipped (BND001 reports them).
func usedCells(in *Input) []*liberty.Cell {
	seen := make(map[string]*liberty.Cell)
	for _, inst := range in.Design.Insts() {
		if c := in.Lib.Cell(inst.Cell); c != nil {
			seen[c.Name] = c
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*liberty.Cell, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out
}

func checkBinding(in *Input, rep *Reporter) {
	for _, inst := range in.Design.Insts() {
		cell := in.Lib.Cell(inst.Cell)
		if cell == nil {
			rep.Report("inst "+inst.Name,
				fmt.Sprintf("references unknown cell %q", inst.Cell),
				"add the cell to the library or fix the instance's cell name")
			continue
		}
		for pinName, conn := range inst.Conns {
			pin := cell.Pin(pinName)
			if pin == nil {
				rep.Report(fmt.Sprintf("pin %s.%s", inst.Name, pinName),
					fmt.Sprintf("cell %s has no such pin", cell.Name),
					"fix the connection's pin name")
				continue
			}
			wantOut := pin.Dir == liberty.Output
			if isOut := conn.Dir == netlist.Out; isOut != wantOut {
				rep.Report(fmt.Sprintf("pin %s.%s", inst.Name, pinName),
					fmt.Sprintf("direction %s contradicts cell %s (%s pin)", conn.Dir, cell.Name, pin.Dir),
					"fix the connection direction to match the library pin")
			}
		}
		for _, pin := range cell.InputPins() {
			if inst.Conns[pin.Name] == nil {
				rep.Report(fmt.Sprintf("pin %s.%s", inst.Name, pin.Name),
					"input pin is unconnected",
					"connect every input pin; open inputs make gate evaluation undefined")
			}
		}
	}
}
