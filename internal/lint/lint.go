// Package lint is the design-rule static analysis pass that runs over the
// full input database — netlist, cell library, parasitics, and input
// timing — before noise analysis. Static noise analysis is only as
// trustworthy as its inputs: a silently multi-driven net, a dangling
// coupling cap, or a non-monotone immunity table corrupts every window and
// violation downstream. The lint pass refuses such designs with actionable
// diagnostics instead of letting the engines produce wrong reports.
//
// Each check is a Rule with a stable ID (NL001, SPF002, ...). Rules report
// Diagnostics carrying a severity, the offending design-object path, and a
// fix hint. Run applies a Config (per-rule suppression, severity
// overrides, warnings-as-errors) and returns a deterministic, sorted
// Result that cmd/sna and cmd/snalint render through internal/report.
package lint

import (
	"fmt"
	"sort"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
)

// Severity grades a diagnostic. Errors make a design unanalyzable (or the
// analysis meaningless); warnings are suspicious but survivable; infos are
// observations that never affect exit status.
type Severity int

const (
	// Info is a benign observation (e.g. a net analyzed with a lumped
	// model because it has no extracted parasitics).
	Info Severity = iota
	// Warn marks a construct that is probably a mistake but has defined
	// analysis semantics (e.g. a combinational loop handled by fixpoint).
	Warn
	// Error marks a defect that makes analysis results untrustworthy.
	Error
)

// String returns "info", "warn", or "error".
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warn:
		return "warn"
	}
	return "info"
}

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	// Rule is the stable rule ID, e.g. "NL001".
	Rule string
	// Sev is the effective severity after Config adjustments.
	Sev Severity
	// Object is the design-object path, e.g. "net b3" or
	// "lib cell INV_X1 arc A->Y".
	Object string
	// Msg states the defect.
	Msg string
	// Hint suggests a fix.
	Hint string
}

// Rule is one registered design-rule check.
type Rule interface {
	// ID returns the stable rule identifier (used for suppression and in
	// reports); Title is the one-line rule description for the reference
	// listing.
	ID() string
	Title() string
	// Severity is the rule's default diagnostic severity.
	Severity() Severity
	// Check inspects the input database and reports findings.
	Check(in *Input, rep *Reporter)
}

// Input bundles the databases the pass runs over. Design and Lib are
// required; Paras and Inputs may be nil when the run has no parasitics or
// input-timing constraints.
type Input struct {
	Design *netlist.Design
	Lib    *liberty.Library
	Paras  *spef.Parasitics
	Inputs map[string]*sta.Timing
}

// Config tunes a lint run.
type Config struct {
	// Suppress disables rules by ID.
	Suppress map[string]bool
	// Severity overrides a rule's default severity by ID.
	Severity map[string]Severity
	// Werror escalates every warning to an error.
	Werror bool
}

// Result is the outcome of one lint run: all diagnostics, sorted by
// severity (errors first), then rule ID, then object.
type Result struct {
	Diags []Diagnostic
}

// Count returns the number of diagnostics at the given severity.
func (r *Result) Count(s Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Sev == s {
			n++
		}
	}
	return n
}

// Errors, Warnings, and Infos count diagnostics per severity; Total
// counts them all.
func (r *Result) Errors() int   { return r.Count(Error) }
func (r *Result) Warnings() int { return r.Count(Warn) }
func (r *Result) Infos() int    { return r.Count(Info) }
func (r *Result) Total() int    { return len(r.Diags) }

// HasErrors reports whether any error-severity diagnostic was found; this
// is what gates analysis and drives the lint exit code.
func (r *Result) HasErrors() bool { return r.Errors() > 0 }

// ByRule returns the diagnostics of one rule.
func (r *Result) ByRule(id string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Rule == id {
			out = append(out, d)
		}
	}
	return out
}

// Has reports whether the rule produced any diagnostic.
func (r *Result) Has(id string) bool { return len(r.ByRule(id)) > 0 }

// Reporter collects diagnostics for one rule during Check, applying the
// run's severity policy.
type Reporter struct {
	rule string
	sev  Severity // effective default severity for this rule
	cfg  *Config
	out  *Result
}

// Report records a finding at the rule's (possibly overridden) severity.
func (rep *Reporter) Report(object, msg, hint string) {
	rep.ReportAt(rep.sev, object, msg, hint)
}

// ReportAt records a finding at an explicit severity (rules with mixed
// severities, e.g. SPF001's info-level missing-parasitics direction).
// Werror escalation still applies.
func (rep *Reporter) ReportAt(sev Severity, object, msg, hint string) {
	if sev == Warn && rep.cfg.Werror {
		sev = Error
	}
	rep.out.Diags = append(rep.out.Diags, Diagnostic{
		Rule:   rep.rule,
		Sev:    sev,
		Object: object,
		Msg:    msg,
		Hint:   hint,
	})
}

// registry holds the built-in rules in registration (ID) order.
var registry []Rule

// Register adds a rule to the registry. Built-in rules register from init;
// duplicates panic because rule IDs must be stable and unique.
func Register(r Rule) {
	for _, have := range registry {
		if have.ID() == r.ID() {
			panic(fmt.Sprintf("lint: duplicate rule %s", r.ID()))
		}
	}
	registry = append(registry, r)
	sort.Slice(registry, func(i, j int) bool { return registry[i].ID() < registry[j].ID() })
}

// Rules returns the registered rules sorted by ID.
func Rules() []Rule {
	return append([]Rule(nil), registry...)
}

// Run executes every registered, non-suppressed rule over the input and
// returns the sorted result.
func Run(in *Input, cfg Config) *Result {
	res := &Result{}
	for _, rule := range Rules() {
		if cfg.Suppress[rule.ID()] {
			continue
		}
		sev := rule.Severity()
		if over, ok := cfg.Severity[rule.ID()]; ok {
			sev = over
		}
		rule.Check(in, &Reporter{rule: rule.ID(), sev: sev, cfg: &cfg, out: res})
	}
	sort.SliceStable(res.Diags, func(i, j int) bool {
		a, b := res.Diags[i], res.Diags[j]
		if a.Sev != b.Sev {
			return a.Sev > b.Sev // errors first
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Msg < b.Msg
	})
	return res
}

// rule is the common implementation embedded by the built-in checks.
type rule struct {
	id    string
	title string
	sev   Severity
	check func(in *Input, rep *Reporter)
}

func (r *rule) ID() string                     { return r.id }
func (r *rule) Title() string                  { return r.title }
func (r *rule) Severity() Severity             { return r.sev }
func (r *rule) Check(in *Input, rep *Reporter) { r.check(in, rep) }
