package lint_test

import (
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/lint"
	"repro/internal/units"
	"repro/internal/workload"
)

// required lists the rule IDs the pass must ship with.
var required = []string{
	"NL001", "NL002", "NL003",
	"LIB001", "LIB002", "BND001",
	"SPF001", "SPF002", "RC001",
	"STA001",
}

func TestRegistryComplete(t *testing.T) {
	have := make(map[string]lint.Rule)
	prev := ""
	for _, r := range lint.Rules() {
		have[r.ID()] = r
		if r.ID() <= prev {
			t.Fatalf("rules not sorted: %q after %q", r.ID(), prev)
		}
		prev = r.ID()
		if r.Title() == "" {
			t.Fatalf("rule %s has no title", r.ID())
		}
	}
	for _, id := range required {
		if have[id] == nil {
			t.Fatalf("rule %s not registered", id)
		}
	}
}

func genBus(t *testing.T) *workload.Generated {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{Bits: 4, Segs: 2})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func lintWorkload(t *testing.T, g *workload.Generated, lib *liberty.Library, cfg lint.Config) *lint.Result {
	t.Helper()
	if lib == nil {
		lib = liberty.Generic()
	}
	return lint.Run(&lint.Input{
		Design: g.Design,
		Lib:    lib,
		Paras:  g.Paras,
		Inputs: g.Inputs,
	}, cfg)
}

// TestCleanWorkloads is the negative test for every rule: freshly
// generated designs must produce zero error-severity diagnostics.
func TestCleanWorkloads(t *testing.T) {
	cases := map[string]func() (*workload.Generated, error){
		"bus": func() (*workload.Generated, error) {
			return workload.Bus(workload.BusSpec{Bits: 4, Segs: 2})
		},
		"fabric": func() (*workload.Generated, error) {
			return workload.Fabric(workload.FabricSpec{Width: 4, Levels: 3, Seed: 7})
		},
		"chain": func() (*workload.Generated, error) {
			return workload.Chain(workload.ChainSpec{Depth: 3})
		},
		"star": func() (*workload.Generated, error) {
			return workload.Star(workload.StarSpec{
				Windows: []interval.Window{
					interval.New(0, 100*units.Pico),
					interval.New(50*units.Pico, 150*units.Pico),
				},
			})
		},
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			g, err := gen()
			if err != nil {
				t.Fatal(err)
			}
			res := lintWorkload(t, g, nil, lint.Config{})
			if res.HasErrors() {
				t.Fatalf("clean %s design has lint errors:\n%+v", name, res.Diags)
			}
		})
	}
}

// TestInjectedDefects is the positive test for every rule: each injection
// knob must light up exactly its target rule at the expected severity.
func TestInjectedDefects(t *testing.T) {
	cases := []struct {
		spec    string
		rule    string
		sev     lint.Severity
		objWant string
	}{
		{"multi-driven", "NL001", lint.Error, "net b0"},
		{"floating-input", "NL002", lint.Error, "net defect_float"},
		{"self-loop", "NL003", lint.Warn, "design bus4"},
		{"stray-spef", "SPF001", lint.Error, "spef net defect_ghost"},
		{"dangling-cap", "SPF002", lint.Error, "spef net b0"},
		{"negative-cap", "SPF002", lint.Error, "spef net b0"},
		{"orphan-node", "RC001", lint.Error, "spef net b0"},
		{"quiet-input", "STA001", lint.Warn, "input in0"},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			g := genBus(t)
			d, err := workload.ParseDefects(tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Inject(d); err != nil {
				t.Fatal(err)
			}
			res := lintWorkload(t, g, nil, lint.Config{})
			diags := res.ByRule(tc.rule)
			if len(diags) == 0 {
				t.Fatalf("defect %s produced no %s diagnostic:\n%+v", tc.spec, tc.rule, res.Diags)
			}
			found := false
			for _, dg := range diags {
				if dg.Sev == tc.sev && strings.Contains(dg.Object, tc.objWant) {
					found = true
				}
				if dg.Hint == "" {
					t.Errorf("%s diagnostic has no fix hint: %+v", tc.rule, dg)
				}
			}
			if !found {
				t.Fatalf("no %s diagnostic at %v mentioning %q:\n%+v",
					tc.rule, tc.sev, tc.objWant, diags)
			}
		})
	}
}

// TestInjectAll stacks every netlist/parasitic defect at once; each rule
// still isolates its own finding.
func TestInjectAll(t *testing.T) {
	g := genBus(t)
	d, err := workload.ParseDefects("all")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Any() {
		t.Fatal("ParseDefects(all) set no knobs")
	}
	if err := g.Inject(d); err != nil {
		t.Fatal(err)
	}
	res := lintWorkload(t, g, nil, lint.Config{})
	for _, id := range []string{"NL001", "NL002", "NL003", "SPF001", "SPF002", "RC001", "STA001"} {
		if !res.Has(id) {
			t.Errorf("rule %s silent on the all-defects design", id)
		}
	}
}

func TestParseDefectsRejectsUnknown(t *testing.T) {
	if _, err := workload.ParseDefects("multi-driven,bogus"); err == nil {
		t.Fatal("unknown defect name accepted")
	}
}

func TestBrokenLibrary(t *testing.T) {
	cases := []struct {
		defect workload.LibraryDefect
		rule   string
		sev    lint.Severity
	}{
		{workload.NonMonotoneTable, "LIB001", lint.Error},
		{workload.NonMonotoneImmunity, "LIB001", lint.Error},
		{workload.MissingTransfer, "LIB002", lint.Warn},
	}
	for _, tc := range cases {
		t.Run(string(tc.defect), func(t *testing.T) {
			g := genBus(t)
			lib, err := workload.BreakLibrary(liberty.Generic(), tc.defect)
			if err != nil {
				t.Fatal(err)
			}
			res := lintWorkload(t, g, lib, lint.Config{})
			diags := res.ByRule(tc.rule)
			if len(diags) == 0 {
				t.Fatalf("library defect %s produced no %s diagnostic:\n%+v",
					tc.defect, tc.rule, res.Diags)
			}
			if diags[0].Sev != tc.sev {
				t.Fatalf("%s severity = %v, want %v", tc.rule, diags[0].Sev, tc.sev)
			}
			// The pristine library must stay clean after BreakLibrary's copy.
			if res := lintWorkload(t, genBus(t), liberty.Generic(), lint.Config{}); res.Has(tc.rule) && tc.rule == "LIB001" {
				t.Fatalf("BreakLibrary mutated the source library: %+v", res.ByRule(tc.rule))
			}
		})
	}
}

func TestBindingRule(t *testing.T) {
	g := genBus(t)
	// Point one instance at a cell the library does not have.
	g.Design.FindInst("d0").Cell = "MYSTERY_X9"
	res := lintWorkload(t, g, nil, lint.Config{})
	diags := res.ByRule("BND001")
	if len(diags) == 0 || !strings.Contains(diags[0].Msg, "MYSTERY_X9") {
		t.Fatalf("unknown cell not reported: %+v", diags)
	}
}

func TestSuppression(t *testing.T) {
	g := genBus(t)
	d, _ := workload.ParseDefects("multi-driven")
	if err := g.Inject(d); err != nil {
		t.Fatal(err)
	}
	res := lintWorkload(t, g, nil, lint.Config{Suppress: map[string]bool{"NL001": true}})
	if res.Has("NL001") {
		t.Fatalf("suppressed rule still reported: %+v", res.ByRule("NL001"))
	}
}

func TestSeverityOverride(t *testing.T) {
	g := genBus(t)
	d, _ := workload.ParseDefects("multi-driven")
	if err := g.Inject(d); err != nil {
		t.Fatal(err)
	}
	res := lintWorkload(t, g, nil, lint.Config{Severity: map[string]lint.Severity{"NL001": lint.Info}})
	diags := res.ByRule("NL001")
	if len(diags) == 0 || diags[0].Sev != lint.Info {
		t.Fatalf("severity override not applied: %+v", diags)
	}
	if res.HasErrors() {
		t.Fatalf("demoted finding still counts as error: %+v", res.Diags)
	}
}

func TestWerror(t *testing.T) {
	g := genBus(t)
	d, _ := workload.ParseDefects("quiet-input")
	if err := g.Inject(d); err != nil {
		t.Fatal(err)
	}
	if res := lintWorkload(t, g, nil, lint.Config{}); res.HasErrors() {
		t.Fatalf("quiet input is an error without werror: %+v", res.Diags)
	}
	res := lintWorkload(t, g, nil, lint.Config{Werror: true})
	if !res.HasErrors() {
		t.Fatalf("werror did not escalate the warning: %+v", res.Diags)
	}
	if got := res.ByRule("STA001"); len(got) == 0 || got[0].Sev != lint.Error {
		t.Fatalf("STA001 under werror = %+v, want error", got)
	}
}

func TestResultSorted(t *testing.T) {
	g := genBus(t)
	d, _ := workload.ParseDefects("all")
	if err := g.Inject(d); err != nil {
		t.Fatal(err)
	}
	res := lintWorkload(t, g, nil, lint.Config{})
	for i := 1; i < len(res.Diags); i++ {
		a, b := res.Diags[i-1], res.Diags[i]
		if a.Sev < b.Sev {
			t.Fatalf("diag %d (%v) sorted after lower-severity %v", i, b.Sev, a.Sev)
		}
		if a.Sev == b.Sev && a.Rule > b.Rule {
			t.Fatalf("diag %d rule %s sorted after %s", i, b.Rule, a.Rule)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate rule registration did not panic")
		}
	}()
	lint.Register(lint.Rules()[0])
}

func TestSeverityString(t *testing.T) {
	for sev, want := range map[lint.Severity]string{
		lint.Info: "info", lint.Warn: "warn", lint.Error: "error",
	} {
		if got := sev.String(); got != want {
			t.Fatalf("Severity(%d).String() = %q, want %q", sev, got, want)
		}
	}
}
