// Package textio provides the chunked line-streaming helpers shared by
// the line-oriented loaders (SPEF, liberty): a reader that yields
// zero-copy line views from bounded reads, and allocation-free field
// splitting. Loaders batch line views into sections for parallel
// parsing; the views keep their backing chunks alive, so no lifetime
// bookkeeping is needed beyond dropping the views.
package textio

import (
	"bytes"
	"io"
	"unicode/utf8"
)

// LineReader yields '\n'-terminated line views from chunked reads,
// never materializing the whole input. The views alias chunk arrays and
// stay valid as long as the caller references them.
type LineReader struct {
	r   io.Reader
	buf []byte
	pos int
	n   int
	eof bool
}

const lineChunk = 1 << 20

// NewLineReader wraps r. Chunks are read on demand in 1MB units.
func NewLineReader(r io.Reader) *LineReader {
	return &LineReader{r: r}
}

// Next returns the next line without its terminator (one trailing '\r'
// stripped, matching bufio.ScanLines), or ok=false at end of input.
func (lr *LineReader) Next() ([]byte, bool, error) {
	var span []byte // accumulates a line that crosses chunk boundaries
	for {
		if lr.pos < lr.n {
			if i := bytes.IndexByte(lr.buf[lr.pos:lr.n], '\n'); i >= 0 {
				line := lr.buf[lr.pos : lr.pos+i]
				lr.pos += i + 1
				if span != nil {
					line = append(span, line...)
				}
				return trimCR(line), true, nil
			}
			span = append(span, lr.buf[lr.pos:lr.n]...)
			lr.pos = lr.n
		}
		if lr.eof {
			if len(span) > 0 {
				return trimCR(span), true, nil
			}
			return nil, false, nil
		}
		// Top up the current chunk in place (line views into its scanned
		// prefix stay valid); allocate a fresh one only when it is full.
		if lr.buf == nil || lr.n == len(lr.buf) {
			lr.buf = make([]byte, lineChunk)
			lr.pos, lr.n = 0, 0
		}
		for !lr.eof {
			m, err := lr.r.Read(lr.buf[lr.n:])
			lr.n += m
			if err == io.EOF {
				lr.eof = true
			} else if err != nil {
				return nil, false, err
			}
			if m > 0 {
				break
			}
		}
	}
}

func trimCR(line []byte) []byte {
	if len(line) > 0 && line[len(line)-1] == '\r' {
		return line[:len(line)-1]
	}
	return line
}

// FirstField returns the first whitespace-delimited token of a trimmed
// line (the whole line when it has a single token).
func FirstField(line []byte) []byte {
	for i, c := range line {
		if asciiSpace(c) {
			return line[:i]
		}
	}
	return line
}

// SplitFields is bytes.Fields into a reusable slice, with a fallback to
// full Unicode space handling when non-ASCII bytes appear.
func SplitFields(line []byte, dst [][]byte) [][]byte {
	ascii := true
	for _, c := range line {
		if c >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if !ascii {
		return append(dst, bytes.Fields(line)...)
	}
	i, n := 0, len(line)
	for i < n {
		for i < n && asciiSpace(line[i]) {
			i++
		}
		if i >= n {
			break
		}
		st := i
		for i < n && !asciiSpace(line[i]) {
			i++
		}
		dst = append(dst, line[st:i])
	}
	return dst
}

func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}
