package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// WorkerFaults injects failures into the shard coordinator's worker
// transport, the way StoreFaults injects them into the store's write path.
// The transport consults Intercept before (and, for partial, after) every
// dispatched operation; a matching rule fires once (or, with count "*",
// every time) and simulates the worker or the network failing underneath
// the coordinator:
//
//	drop    the request vanishes — the call blocks until the caller's
//	        deadline fires, like a black-holed packet
//	delay   the call is held for WorkerFaultDelay before proceeding,
//	        long enough to trip a short per-attempt timeout
//	error   the call fails immediately without reaching the worker
//	partial the operation executes on the worker but the response is
//	        lost — the hardest case, because a retry must tolerate the
//	        op having already been applied
//	kill    the worker dies: this and every later call on it fail
//
// Operations the rules select on are the shard protocol ops ("init",
// "eval", "round", "delay", "collect", "close", "ping") or "*" for all.
//
// The struct is safe for concurrent use; the coordinator dispatches to
// many workers at once.
type WorkerFaults struct {
	mu    sync.Mutex
	rules []workerFaultRule
}

type workerFaultRule struct {
	kind   string // drop | delay | error | partial | kill
	op     string // protocol op | *
	at     int    // fire on the at-th matching call (1-based); 0 = every call
	seen   int
	fired  bool
	always bool
}

// WorkerFaultDelay is how long a "delay" fault holds a call. Chaos tests
// set their per-attempt timeouts below it.
const WorkerFaultDelay = 50 * time.Millisecond

// InjectedWorkerFault marks a simulated transport or worker failure: the
// coordinator must treat the dispatch as failed and recover (retry,
// reassign, or degrade) exactly as it would for a real loss.
type InjectedWorkerFault struct {
	Kind string
	Op   string
}

func (e *InjectedWorkerFault) Error() string {
	return fmt.Sprintf("workload: injected %s fault on worker %s", e.Kind, e.Op)
}

// WorkerFaultAction is what the transport should do to one dispatched call.
// Zero value means "proceed normally".
type WorkerFaultAction struct {
	// Drop blocks the call until the caller's context deadline.
	Drop bool
	// Delay holds the call for WorkerFaultDelay before proceeding.
	Delay bool
	// Err fails the call immediately without executing it.
	Err error
	// Partial executes the call but discards the response, failing the
	// dispatch afterwards.
	Partial bool
	// Kill marks the worker permanently dead.
	Kill bool
}

// ParseWorkerFaults parses a comma-separated spec of kind:op[:n] rules,
// e.g. "kill:eval:3,delay:round,partial:eval:*". Kinds are drop, delay,
// error, partial, kill; ops are the shard protocol operations or *; n
// selects the n-th matching call (default 1), and n "*" fires every time.
// An empty spec returns nil (no faults).
func ParseWorkerFaults(spec string) (*WorkerFaults, error) {
	var rules []workerFaultRule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("workload: bad worker fault %q (want kind:op[:n], e.g. kill:eval:3)", item)
		}
		r := workerFaultRule{kind: parts[0], op: parts[1], at: 1}
		switch r.kind {
		case "drop", "delay", "error", "partial", "kill":
		default:
			return nil, fmt.Errorf("workload: unknown worker fault kind %q (want drop|delay|error|partial|kill)", r.kind)
		}
		switch r.op {
		case "init", "eval", "round", "delay", "collect", "close", "ping", "*":
		default:
			return nil, fmt.Errorf("workload: unknown worker fault op %q (want a shard protocol op or *)", r.op)
		}
		if len(parts) == 3 {
			if parts[2] == "*" {
				r.always, r.at = true, 0
			} else {
				n, err := strconv.Atoi(parts[2])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("workload: bad worker fault count %q (want a positive integer or *)", parts[2])
				}
				r.at = n
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return &WorkerFaults{rules: rules}, nil
}

// Intercept reports what to do with one dispatched call. At most one rule
// fires per call: the first armed match in spec order.
func (f *WorkerFaults) Intercept(op string) WorkerFaultAction {
	if f == nil {
		return WorkerFaultAction{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.op != "*" && r.op != op {
			continue
		}
		r.seen++
		fire := r.always || (!r.fired && r.seen == r.at)
		if !fire {
			continue
		}
		r.fired = true
		switch r.kind {
		case "drop":
			return WorkerFaultAction{Drop: true}
		case "delay":
			return WorkerFaultAction{Delay: true}
		case "error":
			return WorkerFaultAction{Err: &InjectedWorkerFault{Kind: "error", Op: op}}
		case "partial":
			return WorkerFaultAction{Partial: true}
		case "kill":
			return WorkerFaultAction{Kill: true}
		}
	}
	return WorkerFaultAction{}
}
