package workload

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// Defects are fault-injection knobs applied to a generated workload so
// every lint rule has a generator-backed positive test: each knob plants
// exactly the input corruption one rule exists to catch. Inject mutates
// the Generated in place; the result is intentionally NOT analyzable.
type Defects struct {
	// MultiDriven adds a second driver onto an already-driven net (NL001).
	MultiDriven bool
	// FloatingInput adds a gate whose input net has no driver (NL002).
	FloatingInput bool
	// SelfLoop adds an inverter whose output feeds its own input (NL003).
	SelfLoop bool
	// StraySPEFNet adds a parasitic net that the netlist does not contain
	// (SPF001).
	StraySPEFNet bool
	// DanglingCoupling adds a coupling cap toward a nonexistent net
	// (SPF002).
	DanglingCoupling bool
	// NegativeCap adds a grounded capacitor with a negative value
	// (SPF002).
	NegativeCap bool
	// OrphanRCNode adds a capacitor at a node no resistor reaches (RC001).
	OrphanRCNode bool
	// QuietInput erases one input port's switching windows (STA001).
	QuietInput bool
}

// Any reports whether at least one knob is set.
func (d Defects) Any() bool {
	return d.MultiDriven || d.FloatingInput || d.SelfLoop || d.StraySPEFNet ||
		d.DanglingCoupling || d.NegativeCap || d.OrphanRCNode || d.QuietInput
}

// defectNames maps the CLI spellings (netgen -inject-defects) to knobs.
var defectNames = map[string]func(*Defects){
	"multi-driven":   func(d *Defects) { d.MultiDriven = true },
	"floating-input": func(d *Defects) { d.FloatingInput = true },
	"self-loop":      func(d *Defects) { d.SelfLoop = true },
	"stray-spef":     func(d *Defects) { d.StraySPEFNet = true },
	"dangling-cap":   func(d *Defects) { d.DanglingCoupling = true },
	"negative-cap":   func(d *Defects) { d.NegativeCap = true },
	"orphan-node":    func(d *Defects) { d.OrphanRCNode = true },
	"quiet-input":    func(d *Defects) { d.QuietInput = true },
}

// DefectNames lists the recognized -inject-defects spellings.
func DefectNames() []string {
	out := make([]string, 0, len(defectNames))
	for n := range defectNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseDefects parses a comma-separated defect list ("all" enables every
// knob).
func ParseDefects(spec string) (Defects, error) {
	var d Defects
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "all" {
			for _, set := range defectNames {
				set(&d)
			}
			continue
		}
		set, ok := defectNames[name]
		if !ok {
			return Defects{}, fmt.Errorf("workload: unknown defect %q (want %s or all)",
				name, strings.Join(DefectNames(), "|"))
		}
		set(&d)
	}
	return d, nil
}

// Inject applies the selected defects to the generated workload.
func (g *Generated) Inject(d Defects) error {
	if d.MultiDriven {
		victim, err := firstDrivenNet(g.Design)
		if err != nil {
			return err
		}
		if _, err := g.Design.AddInst("defect_md", "INV_X1"); err != nil {
			return err
		}
		if err := g.Design.Connect("defect_md", "A", "defect_md_in", netlist.In); err != nil {
			return err
		}
		// A second output onto an already-driven net is the defect; the
		// helper input net is driven from a fresh port to keep this knob
		// from also tripping the floating-input rule.
		if _, err := g.Design.AddPort("defect_md_in", netlist.In); err != nil {
			return err
		}
		if err := g.Design.Connect("defect_md", "Y", victim, netlist.Out); err != nil {
			return err
		}
	}
	if d.FloatingInput {
		if _, err := g.Design.AddInst("defect_fi", "BUF_X1"); err != nil {
			return err
		}
		if err := g.Design.Connect("defect_fi", "A", "defect_float", netlist.In); err != nil {
			return err
		}
		if err := g.Design.Connect("defect_fi", "Y", "defect_fi_out", netlist.Out); err != nil {
			return err
		}
	}
	if d.SelfLoop {
		if _, err := g.Design.AddInst("defect_loop", "INV_X1"); err != nil {
			return err
		}
		// Output feeds its own input: exactly one driver (Validate-clean)
		// but no finite topological level.
		if err := g.Design.Connect("defect_loop", "Y", "defect_selfloop", netlist.Out); err != nil {
			return err
		}
		if err := g.Design.Connect("defect_loop", "A", "defect_selfloop", netlist.In); err != nil {
			return err
		}
	}
	if g.Paras != nil && d.StraySPEFNet {
		ghost := &spef.Net{
			Name:     "defect_ghost",
			TotalCap: 1 * units.Femto,
			Conns:    []spef.Conn{{Pin: "defect_ghost_drv:Y", Dir: spef.DirOut, Node: "defect_ghost_drv:Y"}},
			Caps:     []spef.CapEntry{{Node: "defect_ghost_drv:Y", F: 1 * units.Femto}},
		}
		if err := g.Paras.AddNet(ghost); err != nil {
			return err
		}
	}
	if g.Paras != nil && (d.DanglingCoupling || d.NegativeCap || d.OrphanRCNode) {
		sn, err := firstParasiticNet(g.Paras)
		if err != nil {
			return err
		}
		if d.DanglingCoupling {
			sn.Caps = append(sn.Caps, spef.CapEntry{
				Node: sn.Conns[0].Node, Other: "defect_nowhere:1", F: 1 * units.Femto,
			})
		}
		if d.NegativeCap {
			sn.Caps = append(sn.Caps, spef.CapEntry{Node: sn.Conns[0].Node, F: -2 * units.Femto})
		}
		if d.OrphanRCNode {
			sn.Caps = append(sn.Caps, spef.CapEntry{Node: sn.Name + ":defect_orphan", F: 1 * units.Femto})
		}
	}
	if d.QuietInput {
		name, err := firstTimedInput(g.Inputs)
		if err != nil {
			return err
		}
		g.Inputs[name] = &sta.Timing{}
	}
	return nil
}

// firstDrivenNet returns the alphabetically first net with a driver.
func firstDrivenNet(d *netlist.Design) (string, error) {
	for _, n := range d.Nets() {
		if n.Driver() != nil {
			return n.Name, nil
		}
	}
	return "", fmt.Errorf("workload: no driven net to corrupt")
}

// firstParasiticNet returns the alphabetically first parasitic net that
// has at least one connection.
func firstParasiticNet(p *spef.Parasitics) (*spef.Net, error) {
	for _, sn := range p.Nets() {
		if len(sn.Conns) > 0 {
			return sn, nil
		}
	}
	return nil, fmt.Errorf("workload: no parasitic net to corrupt")
}

// firstTimedInput returns the alphabetically first input annotation that
// has activity.
func firstTimedInput(m map[string]*sta.Timing) (string, error) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if t := m[n]; t != nil && t.HasActivity() {
			return n, nil
		}
	}
	return "", fmt.Errorf("workload: no active input to quiet")
}

// LibraryDefect names a library corruption for BreakLibrary.
type LibraryDefect string

const (
	// NonMonotoneTable plants a dip along the load axis of one delay
	// surface (LIB001).
	NonMonotoneTable LibraryDefect = "nonmono-table"
	// NonMonotoneImmunity makes the default immunity curve increase with
	// glitch width (LIB001).
	NonMonotoneImmunity LibraryDefect = "nonmono-immunity"
	// MissingTransfer strips the noise-transfer curve from every arc of
	// INV_X1 (LIB002).
	MissingTransfer LibraryDefect = "no-transfer"
)

// BreakLibrary returns a corrupted copy of a library. The source library
// is left untouched.
func BreakLibrary(lib *liberty.Library, defects ...LibraryDefect) (*liberty.Library, error) {
	out := liberty.Scale(lib, lib.Name+"_defective", 1, 1, 1)
	for _, d := range defects {
		switch d {
		case NonMonotoneTable:
			cell := out.Cell("INV_X1")
			if cell == nil || len(cell.Arcs) == 0 {
				return nil, fmt.Errorf("workload: library has no INV_X1 arc to corrupt")
			}
			t := cell.Arcs[0].DelayRise
			last := len(t.Vals[0]) - 1
			if last < 1 {
				return nil, fmt.Errorf("workload: delay table too small to corrupt")
			}
			t.Vals[0][last] = t.Vals[0][last-1] * 0.5
		case NonMonotoneImmunity:
			ic := out.DefaultImmunity
			if ic == nil || len(ic.Peaks) < 2 {
				return nil, fmt.Errorf("workload: no default immunity curve to corrupt")
			}
			ic.Peaks[1] = ic.Peaks[0] * 1.5
		case MissingTransfer:
			cell := out.Cell("INV_X1")
			if cell == nil {
				return nil, fmt.Errorf("workload: library has no INV_X1 to corrupt")
			}
			for _, a := range cell.Arcs {
				a.Transfer = nil
			}
		default:
			return nil, fmt.Errorf("workload: unknown library defect %q", d)
		}
	}
	return out, nil
}
