package workload

import (
	"strings"
	"testing"
	"time"
)

func TestParseRuntimeFaults(t *testing.T) {
	f, err := ParseRuntimeFaults("panic:b1, error:b2,sleep:*")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panic) != 1 || f.Panic[0] != "b1" {
		t.Fatalf("Panic = %v", f.Panic)
	}
	if len(f.Error) != 1 || f.Error[0] != "b2" {
		t.Fatalf("Error = %v", f.Error)
	}
	if len(f.Sleep) != 1 || f.Sleep[0] != "*" {
		t.Fatalf("Sleep = %v", f.Sleep)
	}
	if !f.Any() {
		t.Fatal("Any = false")
	}
	if got := f.Victims(); len(got) != 3 || got[0] != "*" {
		t.Fatalf("Victims = %v", got)
	}
}

func TestParseRuntimeFaultsErrors(t *testing.T) {
	for _, spec := range []string{"panic", "panic:", "boom:b1"} {
		if _, err := ParseRuntimeFaults(spec); err == nil {
			t.Errorf("ParseRuntimeFaults(%q) succeeded, want error", spec)
		}
	}
	f, err := ParseRuntimeFaults("")
	if err != nil || f.Any() {
		t.Fatalf("empty spec: %v %v", f, err)
	}
	if f.Hook() != nil {
		t.Fatal("empty faults should yield nil hook")
	}
}

func TestRuntimeFaultHook(t *testing.T) {
	f := RuntimeFaults{Panic: []string{"p"}, Error: []string{"e"}}
	hook := f.Hook()
	if err := hook("healthy"); err != nil {
		t.Fatalf("healthy net: %v", err)
	}
	if err := hook("e"); err == nil || !strings.Contains(err.Error(), "net e") {
		t.Fatalf("error fault: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic fault did not panic")
			}
		}()
		hook("p") //nolint:errcheck // panics before returning
	}()
}

func TestRuntimeFaultHookWildcardAndSleep(t *testing.T) {
	f := RuntimeFaults{Sleep: []string{"*"}, SleepFor: 5 * time.Millisecond}
	hook := f.Hook()
	start := time.Now()
	if err := hook("anything"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("sleep fault returned after %s", elapsed)
	}
}
