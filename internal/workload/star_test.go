package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/units"
)

func TestStarGeneratesValidDesign(t *testing.T) {
	g, err := Star(StarSpec{Windows: []interval.Window{
		interval.New(0, 50*units.Pico),
		interval.New(0, 50*units.Pico),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Bind(liberty.Generic()); err != nil {
		t.Fatal(err)
	}
}

func TestStarRejectsEmpty(t *testing.T) {
	if _, err := Star(StarSpec{}); err == nil {
		t.Fatal("empty star accepted")
	}
}

func TestStarWindowControlDrivesAlignment(t *testing.T) {
	run := func(offset float64) float64 {
		g, err := Star(StarSpec{Windows: []interval.Window{
			interval.New(0, 40*units.Pico),
			interval.New(offset, offset+40*units.Pico),
		}})
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Bind(liberty.Generic())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
		if err != nil {
			t.Fatal(err)
		}
		return res.NoiseOf("v").Comb[core.KindLow].Peak
	}
	aligned := run(0)
	apart := run(5000 * units.Pico)
	if !(apart < aligned) {
		t.Fatalf("separated windows peak %g not below aligned %g", apart, aligned)
	}
	// Separated: single aggressor; aligned: two → about double.
	if math.Abs(aligned-2*apart) > 0.15*aligned {
		t.Fatalf("aligned %g vs 2x apart %g", aligned, 2*apart)
	}
}
