package workload

import (
	"errors"
	"testing"
)

func TestParseStoreFaultsErrors(t *testing.T) {
	for _, spec := range []string{
		"torn",              // no op
		"torn:append:1:2",   // too many fields
		"melt:append",       // unknown kind
		"torn:fsync",        // unknown op
		"torn:append:0",     // count must be positive
		"torn:append:-1",    //
		"torn:append:later", //
	} {
		if _, err := ParseStoreFaults(spec); err == nil {
			t.Errorf("ParseStoreFaults(%q) accepted", spec)
		}
	}
	if f, err := ParseStoreFaults(""); err != nil || f != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", f, err)
	}
	if f, err := ParseStoreFaults(" , "); err != nil || f != nil {
		t.Fatalf("blank spec = (%v, %v), want (nil, nil)", f, err)
	}
}

func TestStoreFaultsNilReceiver(t *testing.T) {
	var f *StoreFaults
	if n, err := f.BeforeWrite("append", 100); n != 100 || err != nil {
		t.Fatalf("nil BeforeWrite = (%d, %v)", n, err)
	}
	if err := f.BeforeSync("append"); err != nil {
		t.Fatal(err)
	}
	if err := f.BeforeRename("write"); err != nil {
		t.Fatal(err)
	}
}

// TestStoreFaultsCounting pins the rule semantics: a kind:op:n rule fires
// exactly once, on the n-th matching call, and only for its op.
func TestStoreFaultsCounting(t *testing.T) {
	f, err := ParseStoreFaults("torn:append:2")
	if err != nil {
		t.Fatal(err)
	}
	// A "write" op never matches an "append" rule.
	if n, err := f.BeforeWrite("write", 10); n != 10 || err != nil {
		t.Fatalf("write op matched append rule: (%d, %v)", n, err)
	}
	if n, err := f.BeforeWrite("append", 10); n != 10 || err != nil {
		t.Fatalf("first append should pass: (%d, %v)", n, err)
	}
	n, err := f.BeforeWrite("append", 10)
	if err == nil {
		t.Fatal("second append should tear")
	}
	var inj *InjectedFault
	if !errors.As(err, &inj) || inj.Kind != "torn" {
		t.Fatalf("error = %v, want InjectedFault torn", err)
	}
	if n >= 10 {
		t.Fatalf("torn write kept %d of 10 bytes, want a strict prefix", n)
	}
	// The rule is consumed.
	if n, err := f.BeforeWrite("append", 10); n != 10 || err != nil {
		t.Fatalf("third append should pass: (%d, %v)", n, err)
	}
}

// TestStoreFaultsAlwaysAndWildcard pins "*" counts and "*" ops.
func TestStoreFaultsAlwaysAndWildcard(t *testing.T) {
	f, err := ParseStoreFaults("enospc:*:*")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for _, op := range []string{"append", "write"} {
			if n, err := f.BeforeWrite(op, 10); err == nil || n != 0 {
				t.Fatalf("always-enospc call %d op %s = (%d, %v)", i, op, n, err)
			}
		}
	}
}

func TestStoreFaultsKinds(t *testing.T) {
	f, err := ParseStoreFaults("syncerr:append,crashrename:write")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.BeforeSync("write"); err != nil {
		t.Fatalf("sync rule leaked onto write op: %v", err)
	}
	if err := f.BeforeSync("append"); err == nil {
		t.Fatal("syncerr:append never fired")
	}
	if err := f.BeforeRename("write"); err == nil {
		t.Fatal("crashrename:write never fired")
	}
	if err := f.BeforeRename("write"); err != nil {
		t.Fatalf("one-shot crashrename fired twice: %v", err)
	}
}
