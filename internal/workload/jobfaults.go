package workload

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// JobFaults injects failures into the async job executor, the way
// StoreFaults injects them into the store's write path and RuntimeFaults
// into the engine. The jobs manager calls Fire at the top of each
// execution attempt; a matching rule fires once (or, with count "*",
// every attempt) and simulates the executor misbehaving:
//
//	panic    the attempt panics — exercising the manager's recover
//	         barrier and, repeated MaxAttempts times, the poison-job
//	         quarantine
//	error    the attempt fails with a plain (transient-shaped) error
//	degrade  the attempt completes but reports an engine-degraded
//	         result, the breaker-feeding outcome
//	hang     the attempt blocks until its context is cancelled —
//	         exercising per-job deadlines and cancellation
//
// Rules select on the job type: "analyze", "reanalyze", "iterate",
// "sweep", or "*" for any.
//
// The struct is safe for concurrent use; job workers run in parallel.
type JobFaults struct {
	mu    sync.Mutex
	rules []jobFaultRule
}

type jobFaultRule struct {
	kind   string // panic | error | degrade | hang
	typ    string // analyze | reanalyze | iterate | sweep | *
	at     int    // fire on the at-th matching attempt (1-based); 0 = every attempt
	seen   int
	fired  bool
	always bool
}

// InjectedJobFault marks a simulated job-execution failure.
type InjectedJobFault struct {
	Kind string
	Type string
}

func (e *InjectedJobFault) Error() string {
	return fmt.Sprintf("workload: injected %s fault on %s job", e.Kind, e.Type)
}

// ParseJobFaults parses a comma-separated spec of kind:type[:n] rules,
// e.g. "panic:iterate:*,error:analyze,hang:*". Kinds are panic, error,
// degrade, hang; types are analyze, reanalyze, iterate, sweep, or *; n
// selects the n-th matching attempt (default 1), and n "*" fires every
// attempt. An empty spec returns nil (no faults).
func ParseJobFaults(spec string) (*JobFaults, error) {
	var rules []jobFaultRule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("workload: bad job fault %q (want kind:type[:n], e.g. panic:iterate:2)", item)
		}
		r := jobFaultRule{kind: parts[0], typ: parts[1], at: 1}
		switch r.kind {
		case "panic", "error", "degrade", "hang":
		default:
			return nil, fmt.Errorf("workload: unknown job fault kind %q (want panic|error|degrade|hang)", r.kind)
		}
		switch r.typ {
		case "analyze", "reanalyze", "iterate", "sweep", "*":
		default:
			return nil, fmt.Errorf("workload: unknown job fault type %q (want analyze|reanalyze|iterate|sweep|*)", r.typ)
		}
		if len(parts) == 3 {
			if parts[2] == "*" {
				r.always, r.at = true, 0
			} else {
				n, err := strconv.Atoi(parts[2])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("workload: bad job fault count %q (want a positive integer or *)", parts[2])
				}
				r.at = n
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return &JobFaults{rules: rules}, nil
}

// match finds the first armed rule for jobType and consumes it.
func (f *JobFaults) match(jobType string) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.typ != "*" && r.typ != jobType {
			continue
		}
		r.seen++
		if r.always {
			return r.kind
		}
		if !r.fired && r.seen == r.at {
			r.fired = true
			return r.kind
		}
	}
	return ""
}

// Fire runs at the top of one job execution attempt. It panics for
// "panic" rules, blocks until ctx is done for "hang" rules, and
// otherwise reports whether the attempt should be forced degraded and/or
// failed. A nil receiver is a no-op.
func (f *JobFaults) Fire(ctx context.Context, jobType string) (degrade bool, err error) {
	switch f.match(jobType) {
	case "panic":
		panic((&InjectedJobFault{Kind: "panic", Type: jobType}).Error())
	case "error":
		return false, &InjectedJobFault{Kind: "error", Type: jobType}
	case "degrade":
		return true, nil
	case "hang":
		<-ctx.Done()
		return false, ctx.Err()
	}
	return false, nil
}
