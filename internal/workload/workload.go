// Package workload generates the parameterized synthetic designs the
// experiments run on: coupled parallel buses (the canonical crosstalk
// victim/aggressor arrangement), random logic fabrics (for propagation and
// scaling), and driver chains (for noise-propagation depth studies).
//
// These stand in for the proprietary industrial designs of the original
// evaluation: each generator produces a netlist, matching SPEF parasitics,
// and per-port input timing so the full analysis pipeline — binding, STA,
// windowed noise analysis — runs exactly as it would on real data.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// Generated bundles a workload's outputs ready for analysis.
type Generated struct {
	Design *netlist.Design
	Paras  *spef.Parasitics
	Inputs map[string]*sta.Timing
}

// Bind resolves the generated design against a library.
func (g *Generated) Bind(lib *liberty.Library) (*bind.Design, error) {
	return bind.New(g.Design, lib, g.Paras)
}

// STAOptions returns sta options carrying the generated input timing.
func (g *Generated) STAOptions() sta.Options {
	return sta.Options{InputTiming: g.Inputs}
}

// BusSpec parameterizes a coupled parallel bus.
type BusSpec struct {
	// Bits is the number of bus lines (≥ 2).
	Bits int
	// Segs is the number of RC segments per line (≥ 1).
	Segs int
	// CoupleC is the coupling capacitance between adjacent lines per
	// segment (default 2 fF).
	CoupleC float64
	// GroundC is the grounded wire capacitance per segment (default 3 fF).
	GroundC float64
	// SegRes is the wire resistance per segment (default 40 Ω).
	SegRes float64
	// Driver and Receiver are library cell names (defaults INV_X2 /
	// INV_X1).
	Driver, Receiver string
	// WindowSep staggers adjacent bits' input windows by this much;
	// WindowWidth is each window's length (defaults 0 / 100 ps).
	WindowSep, WindowWidth float64
	// RandomWindows scatters windows uniformly in [0, WindowSep·Bits]
	// instead of the regular stagger, using Seed.
	RandomWindows bool
	// ShieldEvery inserts a grounded shield wire after every Nth signal
	// line (0 = no shields). A shield converts the coupling capacitance
	// across it into grounded capacitance on both neighbours — the
	// classical routing fix for crosstalk, at the cost of track area.
	ShieldEvery int
	// PhaseGap, when positive, gives every line a second switching
	// opportunity PhaseGap after its first (a two-phase clocking
	// pattern): the input window becomes the set {w, w+PhaseGap}. This
	// exercises set-valued noise windows — a hull-based tool would smear
	// each aggressor across the whole gap.
	PhaseGap float64
	Seed     int64
}

func (s *BusSpec) fill() error {
	if s.Bits < 2 {
		return fmt.Errorf("workload: bus needs at least 2 bits, have %d", s.Bits)
	}
	if s.Segs < 1 {
		s.Segs = 1
	}
	if s.CoupleC == 0 {
		s.CoupleC = 2 * units.Femto
	}
	if s.GroundC == 0 {
		s.GroundC = 3 * units.Femto
	}
	if s.SegRes == 0 {
		s.SegRes = 40
	}
	if s.Driver == "" {
		s.Driver = "INV_X2"
	}
	if s.Receiver == "" {
		s.Receiver = "INV_X1"
	}
	if s.WindowWidth == 0 {
		s.WindowWidth = 100 * units.Pico
	}
	return nil
}

// Bus generates a Bits-line coupled bus. Line i is net "b<i>", driven by
// instance "d<i>" from input port "in<i>" and received by "r<i>" into net
// "q<i>" loaded by output port "out<i>". Adjacent lines couple at every
// segment boundary.
func Bus(spec BusSpec) (*Generated, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	d := netlist.New(fmt.Sprintf("bus%d", spec.Bits))
	para := spef.NewParasitics(d.Name)
	inputs := make(map[string]*sta.Timing, spec.Bits)
	rng := rand.New(rand.NewSource(spec.Seed))

	for i := 0; i < spec.Bits; i++ {
		in, bnet, qnet, out := fmt.Sprintf("in%d", i), busNet(i), fmt.Sprintf("q%d", i), fmt.Sprintf("out%d", i)
		drv, rcv := fmt.Sprintf("d%d", i), fmt.Sprintf("r%d", i)
		if _, err := d.AddPort(in, netlist.In); err != nil {
			return nil, err
		}
		if _, err := d.AddPort(out, netlist.Out); err != nil {
			return nil, err
		}
		if _, err := d.AddInst(drv, spec.Driver); err != nil {
			return nil, err
		}
		if _, err := d.AddInst(rcv, spec.Receiver); err != nil {
			return nil, err
		}
		for _, c := range []struct {
			inst, pin, net string
			dir            netlist.Dir
		}{
			{drv, "A", in, netlist.In}, {drv, "Y", bnet, netlist.Out},
			{rcv, "A", bnet, netlist.In}, {rcv, "Y", qnet, netlist.Out},
		} {
			if err := d.Connect(c.inst, c.pin, c.net, c.dir); err != nil {
				return nil, err
			}
		}
		_ = qnet
		// Window assignment.
		var lo float64
		if spec.RandomWindows {
			span := spec.WindowSep * float64(spec.Bits)
			if span <= 0 {
				span = spec.WindowWidth * float64(spec.Bits)
			}
			lo = rng.Float64() * span
		} else {
			lo = float64(i) * spec.WindowSep
		}
		// Specs arrive from CLI flags, and float flags parse "NaN";
		// interval.New panics on NaN, so reject it with a real error.
		if math.IsNaN(lo) || math.IsNaN(lo+spec.WindowWidth) {
			return nil, fmt.Errorf("workload: bus window bounds must be finite (WindowSep/WindowWidth)")
		}
		w := interval.New(lo, lo+spec.WindowWidth)
		slew := sta.Range{Min: 20 * units.Pico, Max: 30 * units.Pico}
		ws := interval.NewSet(w)
		if spec.PhaseGap > 0 {
			ws = ws.Add(w.Shift(spec.PhaseGap))
		}
		inputs[in] = &sta.Timing{Rise: ws, Fall: ws, SlewRise: slew, SlewFall: slew}
	}
	// A buffer stage carries each received value to its output port so
	// every net in the design has exactly one driver.
	for i := 0; i < spec.Bits; i++ {
		bufName := fmt.Sprintf("ob%d", i)
		if _, err := d.AddInst(bufName, "BUF_X1"); err != nil {
			return nil, err
		}
		if err := d.Connect(bufName, "A", fmt.Sprintf("q%d", i), netlist.In); err != nil {
			return nil, err
		}
		if err := d.Connect(bufName, "Y", fmt.Sprintf("out%d", i), netlist.Out); err != nil {
			return nil, err
		}
	}

	// Parasitics for the bus nets.
	for i := 0; i < spec.Bits; i++ {
		name := busNet(i)
		n := &spef.Net{Name: name}
		drvNode := fmt.Sprintf("d%d:Y", i)
		rcvNode := fmt.Sprintf("r%d:A", i)
		n.Conns = []spef.Conn{
			{Pin: drvNode, Dir: spef.DirOut, Node: drvNode},
			{Pin: rcvNode, Dir: spef.DirIn, Node: rcvNode},
		}
		prev := drvNode
		for s := 1; s <= spec.Segs; s++ {
			node := fmt.Sprintf("%s:%d", name, s)
			n.Ress = append(n.Ress, spef.ResEntry{A: prev, B: node, Ohms: spec.SegRes})
			n.Caps = append(n.Caps, spef.CapEntry{Node: node, F: spec.GroundC})
			// Couple to both neighbours at the same segment. The same
			// physical capacitor is listed in each partner's section,
			// as extractors emit it, so every victim sees all of its
			// aggressors. A shield between the pair grounds the
			// capacitance instead.
			for _, j := range []int{i - 1, i + 1} {
				if j < 0 || j >= spec.Bits {
					continue
				}
				if spec.shielded(i, j) {
					n.Caps = append(n.Caps, spef.CapEntry{Node: node, F: spec.CoupleC})
					continue
				}
				n.Caps = append(n.Caps, spef.CapEntry{
					Node:  node,
					Other: fmt.Sprintf("%s:%d", busNet(j), s),
					F:     spec.CoupleC,
				})
			}
			prev = node
		}
		n.Ress = append(n.Ress, spef.ResEntry{A: prev, B: rcvNode, Ohms: spec.SegRes / 2})
		n.TotalCap = float64(spec.Segs) * spec.GroundC
		if err := para.AddNet(n); err != nil {
			return nil, err
		}
	}
	return &Generated{Design: d, Paras: para, Inputs: inputs}, nil
}

func busNet(i int) string { return fmt.Sprintf("b%d", i) }

// shielded reports whether a grounded shield separates adjacent lines i
// and j (|i−j| == 1): shields sit after lines ShieldEvery−1, 2·ShieldEvery−1, …
func (s *BusSpec) shielded(i, j int) bool {
	if s.ShieldEvery <= 0 {
		return false
	}
	lo := i
	if j < i {
		lo = j
	}
	return (lo+1)%s.ShieldEvery == 0
}

// MiddleBusNet names the most-attacked line of a bus (both neighbours).
func MiddleBusNet(bits int) string { return busNet(bits / 2) }
