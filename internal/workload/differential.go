package workload

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// DifferentialSpec parameterizes the logic-correlation workload: Pairs
// complementary signal pairs attack one quiet victim. Each pair is one
// input fanning out into a buffered true branch ("p<i>") and an inverted
// branch ("n<i>") — within one input transition the two branches always
// switch in opposite directions, so their same-direction glitches on the
// victim are logically mutually exclusive. A correlation-blind analysis
// combines all 2·Pairs aggressors; correlation caps the combination at
// Pairs.
type DifferentialSpec struct {
	// Pairs is the number of complementary aggressor pairs (≥ 1).
	Pairs int
	// CoupleC is each branch's coupling capacitance to the victim
	// (default 3 fF); GroundC is the victim's grounded wire cap
	// (default 4 fF).
	CoupleC, GroundC float64
	// Window is the shared input switching window (default [0, 80 ps]).
	Window interval.Window
}

func (s *DifferentialSpec) fill() error {
	if s.Pairs < 1 {
		return fmt.Errorf("workload: differential needs at least one pair")
	}
	if s.CoupleC == 0 {
		s.CoupleC = 3 * units.Femto
	}
	if s.GroundC == 0 {
		s.GroundC = 4 * units.Femto
	}
	if s.Window.IsEmpty() && s.Window.Lo == 0 && s.Window.Hi == 0 {
		s.Window = interval.New(0, 80*units.Pico)
	}
	return nil
}

// Differential generates the workload. Victim net "v" is driven by a quiet
// INV_X1; pair i contributes nets "p<i>" (BUF_X2 from input "in<i>") and
// "n<i>" (INV_X2 from the same input), each coupled CoupleC to the victim.
func Differential(spec DifferentialSpec) (*Generated, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	d := netlist.New(fmt.Sprintf("diff%d", spec.Pairs))
	para := spef.NewParasitics(d.Name)
	inputs := make(map[string]*sta.Timing)

	line := func(inst, cell, inNet, outNet string) error {
		if _, err := d.AddInst(inst, cell); err != nil {
			return err
		}
		if err := d.Connect(inst, "A", inNet, netlist.In); err != nil {
			return err
		}
		return d.Connect(inst, "Y", outNet, netlist.Out)
	}
	sink := func(name, net string) error {
		if _, err := d.AddPort("o_"+name, netlist.Out); err != nil {
			return err
		}
		return line("r"+name, "INV_X1", net, "o_"+name)
	}
	wire := func(name string, coupleToV bool) *spef.Net {
		n := &spef.Net{
			Name: name,
			Conns: []spef.Conn{
				{Pin: "d" + name + ":Y", Dir: spef.DirOut, Node: "d" + name + ":Y"},
				{Pin: "r" + name + ":A", Dir: spef.DirIn, Node: "r" + name + ":A"},
			},
			Caps: []spef.CapEntry{{Node: name + ":1", F: 3 * units.Femto}},
			Ress: []spef.ResEntry{
				{A: "d" + name + ":Y", B: name + ":1", Ohms: 40},
				{A: name + ":1", B: "r" + name + ":A", Ohms: 40},
			},
		}
		if coupleToV {
			n.Caps = append(n.Caps, spef.CapEntry{Node: name + ":1", Other: "v:1", F: spec.CoupleC})
		}
		return n
	}

	// Quiet victim.
	if _, err := d.AddPort("i_v", netlist.In); err != nil {
		return nil, err
	}
	if err := line("dv", "INV_X1", "i_v", "v"); err != nil {
		return nil, err
	}
	if err := sink("v", "v"); err != nil {
		return nil, err
	}
	inputs["i_v"] = &sta.Timing{
		SlewRise: sta.Range{Min: 1, Max: -1}, SlewFall: sta.Range{Min: 1, Max: -1},
	}
	vcaps := []spef.CapEntry{{Node: "v:1", F: spec.GroundC}}
	slew := sta.Range{Min: 20 * units.Pico, Max: 25 * units.Pico}
	w := interval.NewSet(spec.Window)

	for i := 0; i < spec.Pairs; i++ {
		in := fmt.Sprintf("in%d", i)
		if _, err := d.AddPort(in, netlist.In); err != nil {
			return nil, err
		}
		inputs[in] = &sta.Timing{Rise: w, Fall: w, SlewRise: slew, SlewFall: slew}
		for _, branch := range []struct {
			name, cell string
		}{
			{fmt.Sprintf("p%d", i), "BUF_X2"},
			{fmt.Sprintf("n%d", i), "INV_X2"},
		} {
			if err := line("d"+branch.name, branch.cell, in, branch.name); err != nil {
				return nil, err
			}
			if err := sink(branch.name, branch.name); err != nil {
				return nil, err
			}
			if err := para.AddNet(wire(branch.name, true)); err != nil {
				return nil, err
			}
			vcaps = append(vcaps, spef.CapEntry{
				Node: "v:1", Other: branch.name + ":1", F: spec.CoupleC,
			})
		}
	}
	if err := para.AddNet(&spef.Net{
		Name: "v",
		Conns: []spef.Conn{
			{Pin: "dv:Y", Dir: spef.DirOut, Node: "dv:Y"},
			{Pin: "rv:A", Dir: spef.DirIn, Node: "rv:A"},
		},
		Caps: vcaps,
		Ress: []spef.ResEntry{
			{A: "dv:Y", B: "v:1", Ohms: 40},
			{A: "v:1", B: "rv:A", Ohms: 40},
		},
	}); err != nil {
		return nil, err
	}
	return &Generated{Design: d, Paras: para, Inputs: inputs}, nil
}
