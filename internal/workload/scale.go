package workload

import (
	"fmt"

	"repro/internal/units"
)

// ScaleSpec parameterizes the capacity-ladder workload: a coupled
// parallel bus sized by total net count rather than bit count, used by
// `noisebench -scale` and the netgen `scale` kind to exercise the
// engine at 10k/100k/1M nets.
type ScaleSpec struct {
	// Nets is the target total net count. Each bus bit contributes four
	// nets (input, bus line, received, output), so the realized count is
	// Nets rounded down to a multiple of four; minimum 8.
	Nets int
	// Seed feeds the bus generator (windows stay deterministic; the seed
	// only matters if a caller flips on randomization downstream).
	Seed int64
}

// Scale generates the capacity-ladder design: a single-segment coupled
// bus whose adjacent lines' switching windows overlap, so every interior
// line sees two live aggressors — the canonical crosstalk arrangement,
// stretched to whatever net count the ladder rung asks for. Generation
// is O(Nets) and deterministic, so every rung (and every re-run of a
// rung) analyzes an identical design.
func Scale(spec ScaleSpec) (*Generated, error) {
	bits := spec.Nets / 4
	if bits < 2 {
		return nil, fmt.Errorf("workload: scale rung needs at least 8 nets, have %d", spec.Nets)
	}
	return Bus(BusSpec{
		Bits: bits,
		Segs: 1,
		// Stagger under the width: adjacent windows overlap, so the
		// windowed combination has real work on every victim.
		WindowSep:   25 * units.Pico,
		WindowWidth: 100 * units.Pico,
		Seed:        spec.Seed,
	})
}
