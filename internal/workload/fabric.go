package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/interval"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// FabricSpec parameterizes a random combinational logic fabric: Width
// parallel signals flowing through Levels ranks of randomly chosen gates,
// with random cross-coupling sprinkled between nets. This is the stand-in
// for "random logic blocks" in the evaluation: deep propagation paths,
// reconvergence, and irregular window distributions.
type FabricSpec struct {
	Width  int // signals per rank (≥ 2)
	Levels int // gate ranks (≥ 1)
	// CouplingDensity is the expected number of coupling caps per net
	// (default 1.5); CoupleC is the largest cap value (default 1.5 fF).
	// Individual caps are drawn log-uniformly from [CoupleC/20, CoupleC],
	// matching the long-tailed coupling-size distribution of real
	// extraction (many tiny couplings, few dominant ones).
	CouplingDensity float64
	CoupleC         float64
	// GroundC is the lumped grounded wire cap per net (default 4 fF).
	GroundC float64
	// SegRes is the single-segment wire resistance (default 60 Ω).
	SegRes float64
	// WindowJitter scatters input windows uniformly in [0, WindowJitter]
	// (default 200 ps); WindowWidth is each window's length (default
	// 80 ps).
	WindowJitter, WindowWidth float64
	Seed                      int64
}

func (s *FabricSpec) fill() error {
	if s.Width < 2 || s.Levels < 1 {
		return fmt.Errorf("workload: fabric needs width ≥ 2 and levels ≥ 1")
	}
	if s.CouplingDensity == 0 {
		s.CouplingDensity = 1.5
	}
	if s.CoupleC == 0 {
		s.CoupleC = 1.5 * units.Femto
	}
	if s.GroundC == 0 {
		s.GroundC = 4 * units.Femto
	}
	if s.SegRes == 0 {
		s.SegRes = 60
	}
	if s.WindowJitter == 0 {
		s.WindowJitter = 200 * units.Pico
	}
	if s.WindowWidth == 0 {
		s.WindowWidth = 80 * units.Pico
	}
	return nil
}

// Fabric generates the random logic workload. Net naming: rank-r signal c
// is "n_r_c" (rank 0 nets are the input ports "in<c>"); gates are
// "g_r_c".
func Fabric(spec FabricSpec) (*Generated, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	d := netlist.New(fmt.Sprintf("fabric%dx%d", spec.Width, spec.Levels))
	para := spef.NewParasitics(d.Name)
	inputs := make(map[string]*sta.Timing, spec.Width)

	gates2 := []string{"NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1", "XOR2_X1"}
	gates1 := []string{"INV_X1", "INV_X2", "BUF_X1"}

	prev := make([]string, spec.Width)
	for c := 0; c < spec.Width; c++ {
		in := fmt.Sprintf("in%d", c)
		if _, err := d.AddPort(in, netlist.In); err != nil {
			return nil, err
		}
		prev[c] = in
		lo := rng.Float64() * spec.WindowJitter
		w := interval.SetOf(lo, lo+spec.WindowWidth)
		slew := sta.Range{Min: 15 * units.Pico, Max: 35 * units.Pico}
		inputs[in] = &sta.Timing{Rise: w, Fall: w, SlewRise: slew, SlewFall: slew}
	}

	var allNets []string
	for r := 1; r <= spec.Levels; r++ {
		cur := make([]string, spec.Width)
		for c := 0; c < spec.Width; c++ {
			gate := fmt.Sprintf("g_%d_%d", r, c)
			out := fmt.Sprintf("n_%d_%d", r, c)
			cur[c] = out
			twoInput := rng.Float64() < 0.6
			var cell string
			if twoInput {
				cell = gates2[rng.Intn(len(gates2))]
			} else {
				cell = gates1[rng.Intn(len(gates1))]
			}
			if _, err := d.AddInst(gate, cell); err != nil {
				return nil, err
			}
			a := prev[rng.Intn(spec.Width)]
			if err := d.Connect(gate, "A", a, netlist.In); err != nil {
				return nil, err
			}
			if twoInput {
				bnet := prev[rng.Intn(spec.Width)]
				if err := d.Connect(gate, "B", bnet, netlist.In); err != nil {
					return nil, err
				}
			}
			if err := d.Connect(gate, "Y", out, netlist.Out); err != nil {
				return nil, err
			}
			allNets = append(allNets, out)
		}
		prev = cur
	}
	// Terminal ports.
	for c := 0; c < spec.Width; c++ {
		out := fmt.Sprintf("po%d", c)
		if _, err := d.AddPort(out, netlist.Out); err != nil {
			return nil, err
		}
		sink := fmt.Sprintf("s_%d", c)
		if _, err := d.AddInst(sink, "BUF_X1"); err != nil {
			return nil, err
		}
		if err := d.Connect(sink, "A", prev[c], netlist.In); err != nil {
			return nil, err
		}
		if err := d.Connect(sink, "Y", out, netlist.Out); err != nil {
			return nil, err
		}
	}

	// Parasitics: every internal net gets one segment; couplings are
	// sprinkled between random distinct net pairs and recorded in both
	// sections.
	couplings := make(map[string][]spef.CapEntry)
	nPairs := int(spec.CouplingDensity * float64(len(allNets)) / 2)
	for k := 0; k < nPairs; k++ {
		i, j := rng.Intn(len(allNets)), rng.Intn(len(allNets))
		if i == j {
			continue
		}
		a, b := allNets[i], allNets[j]
		// Log-uniform size in [CoupleC/20, CoupleC].
		f := spec.CoupleC * math.Exp(-rng.Float64()*math.Log(20))
		couplings[a] = append(couplings[a], spef.CapEntry{Node: a + ":1", Other: b + ":1", F: f})
		couplings[b] = append(couplings[b], spef.CapEntry{Node: b + ":1", Other: a + ":1", F: f})
	}
	for _, name := range allNets {
		net := d.FindNet(name)
		drv := net.Driver()
		n := &spef.Net{Name: name, TotalCap: spec.GroundC}
		drvNode := drv.Inst.Name + ":" + drv.Pin
		n.Conns = append(n.Conns, spef.Conn{Pin: drvNode, Dir: spef.DirOut, Node: drvNode})
		node := name + ":1"
		n.Ress = append(n.Ress, spef.ResEntry{A: drvNode, B: node, Ohms: spec.SegRes})
		n.Caps = append(n.Caps, spef.CapEntry{Node: node, F: spec.GroundC})
		n.Caps = append(n.Caps, couplings[name]...)
		for _, lc := range net.Loads() {
			if lc.Inst == nil {
				continue
			}
			pinNode := lc.Inst.Name + ":" + lc.Pin
			n.Conns = append(n.Conns, spef.Conn{Pin: pinNode, Dir: spef.DirIn, Node: pinNode})
			n.Ress = append(n.Ress, spef.ResEntry{A: node, B: pinNode, Ohms: spec.SegRes / 4})
		}
		if err := para.AddNet(n); err != nil {
			return nil, err
		}
	}
	return &Generated{Design: d, Paras: para, Inputs: inputs}, nil
}

// ChainSpec parameterizes a driver chain with an attacked first stage: an
// aggressor couples into net "v0", and the glitch propagates down Depth
// gate stages. Used by the propagation-depth experiment (F2).
type ChainSpec struct {
	// Depth is the number of gate stages after the attacked net (≥ 1).
	Depth int
	// Cell is the chain gate (default INV_X1).
	Cell string
	// CoupleC / GroundC shape the attacked net (defaults 6 fF / 2 fF) —
	// strong coupling by default so the glitch exceeds the propagation
	// threshold.
	CoupleC, GroundC float64
	// AggWindow is the aggressor's switching window (default [0,100ps]).
	AggWindow interval.Window
}

func (s *ChainSpec) fill() error {
	if s.Depth < 1 {
		return fmt.Errorf("workload: chain needs depth ≥ 1")
	}
	if s.Cell == "" {
		s.Cell = "INV_X1"
	}
	if s.CoupleC == 0 {
		s.CoupleC = 6 * units.Femto
	}
	if s.GroundC == 0 {
		s.GroundC = 2 * units.Femto
	}
	if s.AggWindow.IsEmpty() && s.AggWindow.Lo == 0 && s.AggWindow.Hi == 0 {
		s.AggWindow = interval.New(0, 100*units.Pico)
	}
	return nil
}

// Chain generates the propagation chain: aggressor net "agg" couples into
// victim net "v0"; stages g1..gDepth produce nets v1..vDepth, terminated
// at port "out". The victim's own input is quiet.
func Chain(spec ChainSpec) (*Generated, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	d := netlist.New(fmt.Sprintf("chain%d", spec.Depth))
	para := spef.NewParasitics(d.Name)

	for _, p := range []string{"i_agg", "i_v"} {
		if _, err := d.AddPort(p, netlist.In); err != nil {
			return nil, err
		}
	}
	if _, err := d.AddPort("out", netlist.Out); err != nil {
		return nil, err
	}
	// Aggressor: driver + receiver.
	if _, err := d.AddInst("dagg", "INV_X4"); err != nil {
		return nil, err
	}
	if err := d.Connect("dagg", "A", "i_agg", netlist.In); err != nil {
		return nil, err
	}
	if err := d.Connect("dagg", "Y", "agg", netlist.Out); err != nil {
		return nil, err
	}
	if _, err := d.AddInst("ragg", "INV_X1"); err != nil {
		return nil, err
	}
	if err := d.Connect("ragg", "A", "agg", netlist.In); err != nil {
		return nil, err
	}
	if err := d.Connect("ragg", "Y", "aggq", netlist.Out); err != nil {
		return nil, err
	}
	// Victim chain.
	if _, err := d.AddInst("dv", "INV_X1"); err != nil {
		return nil, err
	}
	if err := d.Connect("dv", "A", "i_v", netlist.In); err != nil {
		return nil, err
	}
	if err := d.Connect("dv", "Y", "v0", netlist.Out); err != nil {
		return nil, err
	}
	prev := "v0"
	for s := 1; s <= spec.Depth; s++ {
		g := fmt.Sprintf("g%d", s)
		out := fmt.Sprintf("v%d", s)
		if s == spec.Depth {
			out = "out"
		}
		if _, err := d.AddInst(g, spec.Cell); err != nil {
			return nil, err
		}
		if err := d.Connect(g, "A", prev, netlist.In); err != nil {
			return nil, err
		}
		if err := d.Connect(g, "Y", out, netlist.Out); err != nil {
			return nil, err
		}
		prev = out
	}
	// Parasitics: only the attacked net and the aggressor need detail.
	if err := para.AddNet(&spef.Net{
		Name: "v0",
		Conns: []spef.Conn{
			{Pin: "dv:Y", Dir: spef.DirOut, Node: "dv:Y"},
			{Pin: "g1:A", Dir: spef.DirIn, Node: "g1:A"},
		},
		Caps: []spef.CapEntry{
			{Node: "v0:1", F: spec.GroundC},
			{Node: "v0:1", Other: "agg:1", F: spec.CoupleC},
		},
		Ress: []spef.ResEntry{
			{A: "dv:Y", B: "v0:1", Ohms: 50},
			{A: "v0:1", B: "g1:A", Ohms: 50},
		},
	}); err != nil {
		return nil, err
	}
	if err := para.AddNet(&spef.Net{
		Name: "agg",
		Conns: []spef.Conn{
			{Pin: "dagg:Y", Dir: spef.DirOut, Node: "dagg:Y"},
			{Pin: "ragg:A", Dir: spef.DirIn, Node: "ragg:A"},
		},
		Caps: []spef.CapEntry{{Node: "agg:1", F: 4 * units.Femto}},
		Ress: []spef.ResEntry{
			{A: "dagg:Y", B: "agg:1", Ohms: 60},
			{A: "agg:1", B: "ragg:A", Ohms: 60},
		},
	}); err != nil {
		return nil, err
	}
	slew := sta.Range{Min: 20 * units.Pico, Max: 25 * units.Pico}
	aggWin := interval.NewSet(spec.AggWindow)
	inputs := map[string]*sta.Timing{
		"i_agg": {Rise: aggWin, Fall: aggWin, SlewRise: slew, SlewFall: slew},
		"i_v": {
			SlewRise: sta.Range{Min: 1, Max: -1}, SlewFall: sta.Range{Min: 1, Max: -1},
		},
	}
	return &Generated{Design: d, Paras: para, Inputs: inputs}, nil
}
