package workload

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// LadderSpec parameterizes Ladder, the multi-round convergence workload
// for the joint noise–timing loop.
type LadderSpec struct {
	// Lines is the number of quiet background bus lines (default 64).
	// Their windows are far apart, so they never pad — they exist to give
	// a from-scratch re-analysis per-round work that an incremental one
	// can skip.
	Lines int
	// Steps is the number of ladder rungs, 1–5 (default 5). The loop
	// converges after Steps+1 rounds: the victim captures one more rung
	// per round until the growth dries up.
	Steps int
}

// Ladder rung placement, calibrated for the fixed electrical parameters
// below (INV_X2 drivers, 40 Ω segments, 3 fF ground / 8 fF·0.6^k coupling
// caps, 20 ps input slews, the generic library):
//
//   - The victim switches at input [0, 60] ps, giving a net window of
//     [118.2, 178.2] ps and a worst rise slew of 147 ps.
//   - Rung k couples to the victim with 8·0.6^(k-1) fF, a glitch peak of
//     {0.317, 0.190, 0.114, 0.069, 0.041} V, so each capture pads the
//     victim's late edge to {38.8, 62.0, 75.9, 84.3, 89.3} ps in turn
//     (Δd = slew·ΣV/Vdd), a strictly contracting growth sequence.
//   - A rung's glitch window starts 33.6 ps after its input window. Rung
//     k ≥ 2 is placed so that start falls midway between pad levels k−2
//     and k−1 past the victim's window edge: inside the window only once
//     round k−1's padding has been applied, captured exactly at round k.
//   - Rung 1 is captured immediately (its glitch starts 13 ps before the
//     unpadded edge) and switches for 120 ps instead of 60 ps, so its
//     glitch spans the whole capture region — the max-overlap delay query
//     needs a common instant shared by every captured rung.
//
// Values are input-window placements in picoseconds.
var (
	ladderRungLo    = []float64{131.60, 163.92, 194.93, 213.53, 224.69}
	ladderRungWidth = []float64{120, 60, 60, 60, 60}
)

const (
	ladderVictimWidth = 60 * units.Pico
	ladderSlew        = 20 * units.Pico
	ladderCouple0     = 8 * units.Femto
	ladderDecay       = 0.6
	ladderGround      = 3 * units.Femto
	ladderRes         = 40.0
)

// Ladder generates a workload whose iterative noise–timing analysis takes
// Steps+1 rounds to converge: a victim net "v" plus staggered aggressor
// rungs "a1".."a<Steps>" with geometrically decaying coupling, arranged so
// each round's window padding pulls exactly one more rung's glitch into
// the victim's switching window. The rung coupling caps are listed only in
// the victim's parasitic section (a one-sided extractor emission), so the
// rungs themselves never pad and the growth sequence stays contracting.
// Background lines "b<i>" form a conventionally coupled quiet bus.
func Ladder(spec LadderSpec) (*Generated, error) {
	if spec.Lines == 0 {
		spec.Lines = 64
	}
	if spec.Lines < 2 {
		return nil, fmt.Errorf("workload: ladder needs at least 2 background lines, have %d", spec.Lines)
	}
	if spec.Steps == 0 {
		spec.Steps = len(ladderRungLo)
	}
	if spec.Steps < 1 || spec.Steps > len(ladderRungLo) {
		return nil, fmt.Errorf("workload: ladder steps must be 1–%d, have %d", len(ladderRungLo), spec.Steps)
	}
	d := netlist.New(fmt.Sprintf("ladder%d", spec.Steps))
	para := spef.NewParasitics(d.Name)
	inputs := make(map[string]*sta.Timing)
	slew := sta.Range{Min: ladderSlew, Max: ladderSlew}

	// One driver/receiver stage per net, ladder and background alike.
	stage := func(net string) error {
		drv, rcv := "d_"+net, "r_"+net
		if _, err := d.AddPort("in_"+net, netlist.In); err != nil {
			return err
		}
		if _, err := d.AddInst(drv, "INV_X2"); err != nil {
			return err
		}
		if _, err := d.AddInst(rcv, "INV_X1"); err != nil {
			return err
		}
		for _, c := range []struct {
			inst, pin, net string
			dir            netlist.Dir
		}{
			{drv, "A", "in_" + net, netlist.In}, {drv, "Y", net, netlist.Out},
			{rcv, "A", net, netlist.In}, {rcv, "Y", "q_" + net, netlist.Out},
		} {
			if err := d.Connect(c.inst, c.pin, c.net, c.dir); err != nil {
				return err
			}
		}
		return nil
	}
	window := func(net string, lo, width float64) {
		win := interval.SetOf(lo, lo+width)
		inputs["in_"+net] = &sta.Timing{Rise: win, Fall: win, SlewRise: slew, SlewFall: slew}
	}
	parasitic := func(net string, coupling []spef.CapEntry) error {
		n := &spef.Net{Name: net,
			Conns: []spef.Conn{
				{Pin: "d_" + net + ":Y", Dir: spef.DirOut, Node: "d_" + net + ":Y"},
				{Pin: "r_" + net + ":A", Dir: spef.DirIn, Node: "r_" + net + ":A"},
			},
			Ress: []spef.ResEntry{
				{A: "d_" + net + ":Y", B: net + ":1", Ohms: ladderRes},
				{A: net + ":1", B: "r_" + net + ":A", Ohms: ladderRes},
			},
			Caps: append([]spef.CapEntry{{Node: net + ":1", F: ladderGround}}, coupling...),
		}
		return para.AddNet(n)
	}

	// The ladder cluster.
	rung := func(k int) string { return fmt.Sprintf("a%d", k) }
	var victimCoupling []spef.CapEntry
	couple := ladderCouple0
	for k := 1; k <= spec.Steps; k++ {
		victimCoupling = append(victimCoupling, spef.CapEntry{
			Node: "v:1", Other: rung(k) + ":1", F: couple,
		})
		couple *= ladderDecay
	}
	if err := stage("v"); err != nil {
		return nil, err
	}
	window("v", 0, ladderVictimWidth)
	if err := parasitic("v", victimCoupling); err != nil {
		return nil, err
	}
	for k := 1; k <= spec.Steps; k++ {
		if err := stage(rung(k)); err != nil {
			return nil, err
		}
		window(rung(k), ladderRungLo[k-1]*units.Pico, ladderRungWidth[k-1]*units.Pico)
		if err := parasitic(rung(k), nil); err != nil {
			return nil, err
		}
	}

	// The quiet background bus: conventional symmetric neighbour coupling,
	// windows 1 ns apart so nothing ever aligns.
	line := func(i int) string { return fmt.Sprintf("b%d", i) }
	for i := 0; i < spec.Lines; i++ {
		if err := stage(line(i)); err != nil {
			return nil, err
		}
		window(line(i), float64(i)*units.Nano, 100*units.Pico)
		var coupling []spef.CapEntry
		for _, j := range []int{i - 1, i + 1} {
			if j < 0 || j >= spec.Lines {
				continue
			}
			coupling = append(coupling, spef.CapEntry{
				Node: line(i) + ":1", Other: line(j) + ":1", F: 2 * units.Femto,
			})
		}
		if err := parasitic(line(i), coupling); err != nil {
			return nil, err
		}
	}
	return &Generated{Design: d, Paras: para, Inputs: inputs}, nil
}
