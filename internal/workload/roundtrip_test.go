package workload

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/vlog"
)

// Every generator family at test size: the corpus for pinning the
// streaming loaders against workload-generated fixtures, not just the
// hand-written testdata the parser packages use.
func roundTripFixtures(t *testing.T) map[string]*Generated {
	t.Helper()
	out := make(map[string]*Generated)
	add := func(name string, g *Generated, err error) {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = g
	}
	g, err := Bus(BusSpec{Bits: 8, Segs: 2, WindowSep: 60 * units.Pico, WindowWidth: 80 * units.Pico})
	add("bus", g, err)
	g, err = Fabric(FabricSpec{Width: 6, Levels: 4, Seed: 3})
	add("fabric", g, err)
	g, err = Chain(ChainSpec{Depth: 5})
	add("chain", g, err)
	g, err = Ladder(LadderSpec{Lines: 8, Steps: 3})
	add("ladder", g, err)
	g, err = Scale(ScaleSpec{Nets: 64})
	add("scale", g, err)
	return out
}

// TestGeneratedDesignsRoundTripStreamingLoaders writes every generated
// fixture through the Verilog/SPEF/input-timing writers and parses it
// back through the streaming loaders, requiring a lossless round trip:
// the reparsed design must serialize identically (netlist text pins
// names, IDs, and connection order) and re-writing must reproduce the
// original bytes. This is the workload-fixture leg of the loader
// equivalence bar; the parser packages pin streaming ≡ reference on
// their own corpora.
func TestGeneratedDesignsRoundTripStreamingLoaders(t *testing.T) {
	for name, g := range roundTripFixtures(t) {
		t.Run(name, func(t *testing.T) {
			var vb bytes.Buffer
			if err := vlog.Write(&vb, g.Design); err != nil {
				t.Fatal(err)
			}
			d2, err := vlog.Parse(bytes.NewReader(vb.Bytes()), liberty.Generic())
			if err != nil {
				t.Fatalf("vlog reparse: %v", err)
			}
			if d2.NumNets() != g.Design.NumNets() || d2.NumInsts() != g.Design.NumInsts() ||
				d2.NumConns() != g.Design.NumConns() || d2.NumPorts() != g.Design.NumPorts() {
				t.Fatalf("counts drifted: nets %d/%d insts %d/%d conns %d/%d ports %d/%d",
					d2.NumNets(), g.Design.NumNets(), d2.NumInsts(), g.Design.NumInsts(),
					d2.NumConns(), g.Design.NumConns(), d2.NumPorts(), g.Design.NumPorts())
			}
			var n1, n2 bytes.Buffer
			if err := netlist.Write(&n1, g.Design); err != nil {
				t.Fatal(err)
			}
			if err := netlist.Write(&n2, d2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(n1.Bytes(), n2.Bytes()) {
				t.Fatal("reparsed design serializes differently")
			}
			var vb2 bytes.Buffer
			if err := vlog.Write(&vb2, d2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(vb.Bytes(), vb2.Bytes()) {
				t.Fatal("verilog round trip not byte-identical")
			}

			var sb bytes.Buffer
			if err := spef.Write(&sb, g.Paras); err != nil {
				t.Fatal(err)
			}
			p2, err := spef.Parse(bytes.NewReader(sb.Bytes()))
			if err != nil {
				t.Fatalf("spef reparse: %v", err)
			}
			var sb2 bytes.Buffer
			if err := spef.Write(&sb2, p2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb.Bytes(), sb2.Bytes()) {
				t.Fatal("spef round trip not byte-identical")
			}

			var wb bytes.Buffer
			if err := sta.WriteInputTiming(&wb, g.Inputs); err != nil {
				t.Fatal(err)
			}
			in2, err := sta.ParseInputTiming(bytes.NewReader(wb.Bytes()))
			if err != nil {
				t.Fatalf("input timing reparse: %v", err)
			}
			var wb2 bytes.Buffer
			if err := sta.WriteInputTiming(&wb2, in2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wb.Bytes(), wb2.Bytes()) {
				t.Fatal("input timing round trip not byte-identical")
			}
		})
	}
}

// TestScaleLadderSmoke pins the capacity generator's contract: exact
// realized net count, analyzability end to end, and the minimum-size
// error.
func TestScaleLadderSmoke(t *testing.T) {
	const nets = 200
	g, err := Scale(ScaleSpec{Nets: nets})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Design.NumNets(); got != nets {
		t.Fatalf("realized %d nets, want %d", got, nets)
	}
	bd, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AnalyzeCtx(context.Background(), bd, core.Options{
		Mode: core.ModeNoiseWindows, STA: g.STAOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nets) != nets {
		t.Fatalf("analyzed %d nets, want %d", len(res.Nets), nets)
	}
	if _, err := Scale(ScaleSpec{Nets: 4}); err == nil {
		t.Fatal("want error below the 8-net minimum")
	}
}
