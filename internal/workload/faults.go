package workload

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RuntimeFaults injects failures into the analysis engine itself, as
// opposed to Defects, which corrupt the *input* databases. They drive
// the fail-soft machinery: a fault fires from inside core's per-victim
// preparation (via Options.PrepareHook), so the engine's isolation and
// degradation reporting can be exercised on otherwise healthy designs.
//
// Each list selects victim nets by exact name; the single entry "*"
// matches every net.
type RuntimeFaults struct {
	// Panic makes preparation of the named nets panic, exercising the
	// engine's recover-and-degrade path.
	Panic []string
	// Error makes preparation of the named nets return a plain error.
	Error []string
	// Sleep delays preparation of the named nets by SleepFor, for
	// deadline and cancellation tests.
	Sleep []string
	// SleepFor is the per-net delay for Sleep faults (default 10ms).
	SleepFor time.Duration
}

// Any reports whether at least one fault is configured.
func (f RuntimeFaults) Any() bool {
	return len(f.Panic) > 0 || len(f.Error) > 0 || len(f.Sleep) > 0
}

// Victims returns the sorted union of all named victim nets ("*"
// included verbatim when present).
func (f RuntimeFaults) Victims() []string {
	seen := make(map[string]bool)
	for _, l := range [][]string{f.Panic, f.Error, f.Sleep} {
		for _, n := range l {
			seen[n] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func matches(list []string, net string) bool {
	for _, n := range list {
		if n == "*" || n == net {
			return true
		}
	}
	return false
}

// Hook returns a function suitable for core's Options.PrepareHook: it
// panics, errors, or sleeps when called for a selected net and is a
// no-op otherwise. A nil receiver-equivalent (no faults) returns nil so
// the engine takes its zero-overhead path.
func (f RuntimeFaults) Hook() func(net string) error {
	if !f.Any() {
		return nil
	}
	sleepFor := f.SleepFor
	if sleepFor <= 0 {
		sleepFor = 10 * time.Millisecond
	}
	return func(net string) error {
		if matches(f.Sleep, net) {
			time.Sleep(sleepFor)
		}
		if matches(f.Panic, net) {
			panic(fmt.Sprintf("workload: injected panic on net %s", net))
		}
		if matches(f.Error, net) {
			return fmt.Errorf("workload: injected error on net %s", net)
		}
		return nil
	}
}

// ParseRuntimeFaults parses a comma-separated fault spec of
// kind:net entries, e.g. "panic:b1,error:b2,sleep:*". Kinds are panic,
// error, and sleep; the net "*" selects every net.
func ParseRuntimeFaults(spec string) (RuntimeFaults, error) {
	var f RuntimeFaults
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		kind, net, ok := strings.Cut(item, ":")
		if !ok || net == "" {
			return RuntimeFaults{}, fmt.Errorf("workload: bad fault %q (want kind:net, e.g. panic:b1)", item)
		}
		switch kind {
		case "panic":
			f.Panic = append(f.Panic, net)
		case "error":
			f.Error = append(f.Error, net)
		case "sleep":
			f.Sleep = append(f.Sleep, net)
		default:
			return RuntimeFaults{}, fmt.Errorf("workload: unknown fault kind %q (want panic|error|sleep)", kind)
		}
	}
	return f, nil
}
