package workload

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// StoreFaults injects failures into the durable session store's write
// path, the way RuntimeFaults injects them into the analysis engine. The
// store calls the hook methods at its syscall boundaries; a matching rule
// fires once (or, with count "*", every time) and simulates the disk
// failing underneath the daemon:
//
//	torn        the write persists only a prefix of the frame and then
//	            "crashes" (returns an error) — the on-disk state is
//	            exactly what a power cut mid-append leaves behind
//	enospc      the write fails before any byte lands (no space)
//	syncerr     fsync fails after the write (data may or may not be
//	            durable — the store must treat the operation as failed)
//	crashrename the temp file is fully written and synced but the rename
//	            never happens — a crash between temp and rename
//
// Operations the rules select on: "append" (journal frame append),
// "write" (atomic snapshot/manifest write), or "*" for both.
//
// The struct is safe for concurrent use; the store may be called from
// many request goroutines.
type StoreFaults struct {
	mu    sync.Mutex
	rules []storeFaultRule
}

type storeFaultRule struct {
	kind   string // torn | enospc | syncerr | crashrename
	op     string // append | write | *
	at     int    // fire on the at-th matching call (1-based); 0 = every call
	seen   int
	fired  bool
	always bool
}

// InjectedFault marks a simulated storage failure: the store must treat
// the operation as failed, and a chaos test then reopens the directory
// as if the process had died at that instant.
type InjectedFault struct {
	Kind string
	Op   string
}

func (e *InjectedFault) Error() string {
	return fmt.Sprintf("workload: injected %s fault on store %s", e.Kind, e.Op)
}

// ParseStoreFaults parses a comma-separated spec of kind:op[:n] rules,
// e.g. "torn:append:2,crashrename:write,enospc:*". Kinds are torn,
// enospc, syncerr, crashrename; ops are append, write, or *; n selects
// the n-th matching operation (default 1), and n "*" fires every time.
// An empty spec returns nil (no faults).
func ParseStoreFaults(spec string) (*StoreFaults, error) {
	var rules []storeFaultRule
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		parts := strings.Split(item, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("workload: bad store fault %q (want kind:op[:n], e.g. torn:append:2)", item)
		}
		r := storeFaultRule{kind: parts[0], op: parts[1], at: 1}
		switch r.kind {
		case "torn", "enospc", "syncerr", "crashrename":
		default:
			return nil, fmt.Errorf("workload: unknown store fault kind %q (want torn|enospc|syncerr|crashrename)", r.kind)
		}
		switch r.op {
		case "append", "write", "*":
		default:
			return nil, fmt.Errorf("workload: unknown store fault op %q (want append|write|*)", r.op)
		}
		if len(parts) == 3 {
			if parts[2] == "*" {
				r.always, r.at = true, 0
			} else {
				n, err := strconv.Atoi(parts[2])
				if err != nil || n < 1 {
					return nil, fmt.Errorf("workload: bad store fault count %q (want a positive integer or *)", parts[2])
				}
				r.at = n
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, nil
	}
	return &StoreFaults{rules: rules}, nil
}

// match finds the first armed rule of one of the given kinds for op and
// consumes it.
func (f *StoreFaults) match(op string, kinds ...string) string {
	if f == nil {
		return ""
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.rules {
		r := &f.rules[i]
		if r.op != "*" && r.op != op {
			continue
		}
		ok := false
		for _, k := range kinds {
			if r.kind == k {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		r.seen++
		if r.always {
			return r.kind
		}
		if !r.fired && r.seen == r.at {
			r.fired = true
			return r.kind
		}
	}
	return ""
}

// BeforeWrite fires before the bytes of an append or atomic write land.
// It returns how many bytes to actually write (len(data) normally, a
// strict prefix for a torn write) and an error for faults that fail the
// operation. A torn write returns both: the prefix lands AND the
// operation errors, reproducing a crash mid-write.
func (f *StoreFaults) BeforeWrite(op string, size int) (int, error) {
	switch f.match(op, "torn", "enospc") {
	case "torn":
		return size / 2, &InjectedFault{Kind: "torn", Op: op}
	case "enospc":
		return 0, &InjectedFault{Kind: "enospc", Op: op}
	}
	return size, nil
}

// BeforeSync fires before fsync of a journal or freshly written file.
func (f *StoreFaults) BeforeSync(op string) error {
	if f.match(op, "syncerr") != "" {
		return &InjectedFault{Kind: "syncerr", Op: op}
	}
	return nil
}

// BeforeRename fires between an atomic write's temp file landing and its
// rename into place; an error leaves the temp file stranded exactly as a
// crash would.
func (f *StoreFaults) BeforeRename(op string) error {
	if f.match(op, "crashrename") != "" {
		return &InjectedFault{Kind: "crashrename", Op: op}
	}
	return nil
}
