package workload

import (
	"fmt"

	"repro/internal/interval"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// StarSpec parameterizes the minimal crosstalk arrangement: one victim net
// "v" attacked by N aggressors "a0..a(N-1)", each with its own switching
// window. Used by the alignment-sweep and combination experiments where
// full control over individual windows matters.
type StarSpec struct {
	// Windows gives each aggressor's switching window; its length sets
	// the aggressor count (≥ 1).
	Windows []interval.Window
	// CoupleC is the per-aggressor coupling capacitance (default 3 fF).
	CoupleC float64
	// GroundC is the victim's grounded wire capacitance (default 6 fF).
	GroundC float64
	// VictimDriver is the victim's driving cell (default INV_X1: a weak
	// holder, large glitches).
	VictimDriver string
	// Slew is the aggressor edge rate at the driver (default 20 ps).
	Slew float64
}

func (s *StarSpec) fill() error {
	if len(s.Windows) == 0 {
		return fmt.Errorf("workload: star needs at least one aggressor window")
	}
	if s.CoupleC == 0 {
		s.CoupleC = 3 * units.Femto
	}
	if s.GroundC == 0 {
		s.GroundC = 6 * units.Femto
	}
	if s.VictimDriver == "" {
		s.VictimDriver = "INV_X1"
	}
	if s.Slew == 0 {
		s.Slew = 20 * units.Pico
	}
	return nil
}

// Star generates the star workload. The victim's own input is quiet, so
// all noise on "v" is aggressor-induced.
func Star(spec StarSpec) (*Generated, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	d := netlist.New(fmt.Sprintf("star%d", len(spec.Windows)))
	para := spef.NewParasitics(d.Name)
	inputs := make(map[string]*sta.Timing)

	addLine := func(name, driver string) error {
		if _, err := d.AddPort("i_"+name, netlist.In); err != nil {
			return err
		}
		if _, err := d.AddInst("d"+name, driver); err != nil {
			return err
		}
		if _, err := d.AddInst("r"+name, "INV_X1"); err != nil {
			return err
		}
		if _, err := d.AddPort("o_"+name, netlist.Out); err != nil {
			return err
		}
		for _, c := range []struct {
			inst, pin, net string
			dir            netlist.Dir
		}{
			{"d" + name, "A", "i_" + name, netlist.In},
			{"d" + name, "Y", name, netlist.Out},
			{"r" + name, "A", name, netlist.In},
			{"r" + name, "Y", "o_" + name, netlist.Out},
		} {
			if err := d.Connect(c.inst, c.pin, c.net, c.dir); err != nil {
				return err
			}
		}
		return nil
	}
	if err := addLine("v", spec.VictimDriver); err != nil {
		return nil, err
	}
	vcaps := []spef.CapEntry{{Node: "v:1", F: spec.GroundC}}
	slew := sta.Range{Min: spec.Slew, Max: spec.Slew}
	for i, w := range spec.Windows {
		name := fmt.Sprintf("a%d", i)
		if err := addLine(name, "INV_X2"); err != nil {
			return nil, err
		}
		vcaps = append(vcaps, spef.CapEntry{Node: "v:1", Other: name + ":1", F: spec.CoupleC})
		if err := para.AddNet(&spef.Net{
			Name: name,
			Conns: []spef.Conn{
				{Pin: "d" + name + ":Y", Dir: spef.DirOut, Node: "d" + name + ":Y"},
				{Pin: "r" + name + ":A", Dir: spef.DirIn, Node: "r" + name + ":A"},
			},
			Caps: []spef.CapEntry{
				{Node: name + ":1", F: 3 * units.Femto},
				{Node: name + ":1", Other: "v:1", F: spec.CoupleC},
			},
			Ress: []spef.ResEntry{
				{A: "d" + name + ":Y", B: name + ":1", Ohms: 40},
				{A: name + ":1", B: "r" + name + ":A", Ohms: 40},
			},
		}); err != nil {
			return nil, err
		}
		ws := interval.NewSet(w)
		inputs["i_"+name] = &sta.Timing{Rise: ws, Fall: ws, SlewRise: slew, SlewFall: slew}
	}
	if err := para.AddNet(&spef.Net{
		Name: "v",
		Conns: []spef.Conn{
			{Pin: "dv:Y", Dir: spef.DirOut, Node: "dv:Y"},
			{Pin: "rv:A", Dir: spef.DirIn, Node: "rv:A"},
		},
		Caps: vcaps,
		Ress: []spef.ResEntry{
			{A: "dv:Y", B: "v:1", Ohms: 40},
			{A: "v:1", B: "rv:A", Ohms: 40},
		},
	}); err != nil {
		return nil, err
	}
	inputs["i_v"] = &sta.Timing{
		SlewRise: sta.Range{Min: 1, Max: -1}, SlewFall: sta.Range{Min: 1, Max: -1},
	}
	return &Generated{Design: d, Paras: para, Inputs: inputs}, nil
}
