package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/units"
)

func TestBusGeneratesValidDesign(t *testing.T) {
	g, err := Bus(BusSpec{Bits: 4, Segs: 2, WindowSep: 50 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	// 4 lines × (driver + receiver + output buffer).
	if got := g.Design.NumInsts(); got != 12 {
		t.Fatalf("insts = %d", got)
	}
	if got := g.Paras.NumNets(); got != 4 {
		t.Fatalf("parasitic nets = %d", got)
	}
	if len(g.Inputs) != 4 {
		t.Fatalf("inputs = %d", len(g.Inputs))
	}
	if _, err := g.Bind(liberty.Generic()); err != nil {
		t.Fatal(err)
	}
}

func TestBusCouplingTopology(t *testing.T) {
	g, err := Bus(BusSpec{Bits: 4, Segs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Edge line couples one way, middle lines both ways.
	b0 := g.Paras.Net("b0")
	b1 := g.Paras.Net("b1")
	m0 := b0.CouplingByNet()
	m1 := b1.CouplingByNet()
	if len(m0) != 1 || m0["b1"] == 0 {
		t.Fatalf("b0 couplings = %v", m0)
	}
	if len(m1) != 2 || m1["b0"] == 0 || m1["b2"] == 0 {
		t.Fatalf("b1 couplings = %v", m1)
	}
	// Reciprocity: b0→b1 equals b1→b0.
	if m0["b1"] != m1["b0"] {
		t.Fatalf("asymmetric coupling: %g vs %g", m0["b1"], m1["b0"])
	}
}

func TestBusWindowsStagger(t *testing.T) {
	g, err := Bus(BusSpec{Bits: 3, WindowSep: 100 * units.Pico, WindowWidth: 40 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	w0 := g.Inputs["in0"].Rise
	w2 := g.Inputs["in2"].Rise
	if !w0.Equal(interval.SetOf(0, 40*units.Pico)) {
		t.Fatalf("w0 = %v", w0)
	}
	if !w2.Equal(interval.SetOf(200*units.Pico, 240*units.Pico)) {
		t.Fatalf("w2 = %v", w2)
	}
}

func TestBusRandomWindowsDeterministic(t *testing.T) {
	a, err := Bus(BusSpec{Bits: 4, RandomWindows: true, WindowSep: 100 * units.Pico, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bus(BusSpec{Bits: 4, RandomWindows: true, WindowSep: 100 * units.Pico, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Inputs {
		if !a.Inputs[k].Rise.Equal(b.Inputs[k].Rise) {
			t.Fatalf("seeded windows differ for %s", k)
		}
	}
	c, err := Bus(BusSpec{Bits: 4, RandomWindows: true, WindowSep: 100 * units.Pico, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k := range a.Inputs {
		if !a.Inputs[k].Rise.Equal(c.Inputs[k].Rise) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical windows")
	}
}

func TestBusSpecValidation(t *testing.T) {
	if _, err := Bus(BusSpec{Bits: 1}); err == nil {
		t.Fatal("1-bit bus accepted")
	}
}

func TestBusEndToEndAnalysis(t *testing.T) {
	g, err := Bus(BusSpec{Bits: 8, Segs: 2, WindowSep: 500 * units.Pico, WindowWidth: 60 * units.Pico})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	resA, err := core.Analyze(b, core.Options{Mode: core.ModeAllAggressors, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	resC, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	mid := MiddleBusNet(8)
	pA := resA.NoiseOf(mid).WorstPeak()
	pC := resC.NoiseOf(mid).WorstPeak()
	if pA <= 0 || pC <= 0 {
		t.Fatalf("peaks A=%g C=%g", pA, pC)
	}
	if pC > pA {
		t.Fatalf("windowed analysis noisier than pessimistic: %g > %g", pC, pA)
	}
	// With 500 ps separation the two neighbours of the middle line can
	// never align; the windowed peak must be strictly smaller.
	if pC > 0.75*pA {
		t.Fatalf("expected clear pessimism reduction: A=%g C=%g", pA, pC)
	}
}

func TestFabricGeneratesValidDesign(t *testing.T) {
	g, err := Fabric(FabricSpec{Width: 6, Levels: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Victims == 0 || res.Stats.AggressorPairs == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if !res.Stats.Converged {
		t.Fatal("fabric analysis did not converge")
	}
}

func TestFabricDeterministicBySeed(t *testing.T) {
	a, err := Fabric(FabricSpec{Width: 5, Levels: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fabric(FabricSpec{Width: 5, Levels: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if a.Design.NumInsts() != b.Design.NumInsts() || a.Design.NumNets() != b.Design.NumNets() {
		t.Fatal("same seed produced different structure")
	}
	for _, inst := range a.Design.Insts() {
		other := b.Design.FindInst(inst.Name)
		if other == nil || other.Cell != inst.Cell {
			t.Fatalf("instance %s differs", inst.Name)
		}
	}
}

func TestFabricSpecValidation(t *testing.T) {
	if _, err := Fabric(FabricSpec{Width: 1, Levels: 1}); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := Fabric(FabricSpec{Width: 3, Levels: 0}); err == nil {
		t.Fatal("0 levels accepted")
	}
}

func TestChainPropagatesGlitch(t *testing.T) {
	g, err := Chain(ChainSpec{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		t.Fatal(err)
	}
	// v0 is attacked directly.
	v0 := res.NoiseOf("v0").WorstPeak()
	if v0 <= 0.3 {
		t.Fatalf("v0 peak = %g, want strong glitch", v0)
	}
	// The first stage carries an attenuated copy; deeper stages only get
	// weaker (typically dying out once the glitch falls below the
	// propagation threshold — that extinction is the correct physics).
	v1 := res.NoiseOf("v1").WorstPeak()
	if v1 <= 0 || v1 >= v0 {
		t.Fatalf("v1 peak %g, want in (0, %g)", v1, v0)
	}
	prev := v1
	for _, net := range []string{"v2", "v3"} {
		p := res.NoiseOf(net).WorstPeak()
		if p > prev {
			t.Fatalf("%s peak %g grew from %g", net, p, prev)
		}
		prev = p
	}
	// Windows widen (delay spread) and shift later down the chain.
	w0 := res.NoiseOf("v0").Comb[core.KindLow].Window
	var w1 interval.Window
	n1 := res.NoiseOf("v1")
	for _, k := range core.Kinds {
		if n1.Comb[k].Peak > 0 {
			w1 = n1.Comb[k].Window
		}
	}
	if w1.IsEmpty() {
		t.Fatal("v1 carries no windowed noise")
	}
	if !(w1.Lo > w0.Lo) {
		t.Fatalf("v1 window %v not delayed after v0 %v", w1, w0)
	}
}

func TestChainSpecValidation(t *testing.T) {
	if _, err := Chain(ChainSpec{Depth: 0}); err == nil {
		t.Fatal("0-depth chain accepted")
	}
}

func TestBusShielding(t *testing.T) {
	// Full shielding (every line) eliminates all coupling; the grounded
	// replacement keeps total net capacitance unchanged.
	open, err := Bus(BusSpec{Bits: 4, Segs: 2})
	if err != nil {
		t.Fatal(err)
	}
	closed, err := Bus(BusSpec{Bits: 4, Segs: 2, ShieldEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		name := busNet(i)
		if got := closed.Paras.Net(name).CouplingCap(); got != 0 {
			t.Fatalf("%s still couples %g with full shielding", name, got)
		}
		oc := open.Paras.Net(name)
		cc := closed.Paras.Net(name)
		totOpen := oc.GroundCap() + oc.CouplingCap()
		totClosed := cc.GroundCap() + cc.CouplingCap()
		if !units.ApproxEqual(totOpen, totClosed, 1e-12) {
			t.Fatalf("%s total cap changed: %g vs %g", name, totOpen, totClosed)
		}
	}
}

func TestBusPartialShielding(t *testing.T) {
	// ShieldEvery=2 on 4 bits: shields after lines b1 and b3, so the
	// b1|b2 gap is shielded while b0|b1 and b2|b3 still couple.
	g, err := Bus(BusSpec{Bits: 4, Segs: 1, ShieldEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	m1 := g.Paras.Net("b1").CouplingByNet()
	if _, has := m1["b2"]; has {
		t.Fatalf("b1-b2 not shielded: %v", m1)
	}
	if _, has := m1["b0"]; !has {
		t.Fatalf("b0-b1 wrongly shielded: %v", m1)
	}
	m2 := g.Paras.Net("b2").CouplingByNet()
	if _, has := m2["b3"]; !has {
		t.Fatalf("b2-b3 wrongly shielded: %v", m2)
	}
}

func TestShieldingReducesNoise(t *testing.T) {
	run := func(every int) float64 {
		g, err := Bus(BusSpec{Bits: 8, Segs: 2, CoupleC: 6 * units.Femto, ShieldEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		b, err := g.Bind(liberty.Generic())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalNoise()
	}
	unshielded := run(0)
	half := run(2)
	full := run(1)
	if !(full < half && half < unshielded) {
		t.Fatalf("shielding not monotone: none=%g every2=%g every1=%g", unshielded, half, full)
	}
	if full != 0 {
		t.Fatalf("fully shielded bus still has %g noise", full)
	}
}

func TestDifferentialGeneratesValidDesign(t *testing.T) {
	g, err := Differential(DifferentialSpec{Pairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Design.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Bind(liberty.Generic()); err != nil {
		t.Fatal(err)
	}
	// Victim sees 4 aggressor couplings.
	v := g.Paras.Net("v")
	if got := len(v.CouplingByNet()); got != 4 {
		t.Fatalf("victim couplings = %d", got)
	}
	// Each branch section reciprocates.
	for _, n := range []string{"p0", "n0", "p1", "n1"} {
		if g.Paras.Net(n).CouplingByNet()["v"] == 0 {
			t.Fatalf("branch %s does not couple back to v", n)
		}
	}
}

func TestDifferentialRejectsEmpty(t *testing.T) {
	if _, err := Differential(DifferentialSpec{}); err == nil {
		t.Fatal("0-pair spec accepted")
	}
}
