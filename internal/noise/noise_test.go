package noise

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bind"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/units"
)

// genericCell resolves a cell from the generic library, failing the test
// when it is missing.
func genericCell(t *testing.T, name string) *liberty.Cell {
	t.Helper()
	c, err := liberty.Generic().ResolveCell("", name)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func baseParams() Params {
	return Params{
		HoldRes: 3000,
		WireRes: 200,
		CoupleC: 4 * units.Femto,
		VictimC: 20 * units.Femto,
		AggSlew: 40 * units.Pico,
		Vdd:     1.2,
	}
}

func TestParamsValidate(t *testing.T) {
	p := baseParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := p
	bad.HoldRes = 0
	if bad.Validate() == nil {
		t.Error("zero hold resistance accepted")
	}
	bad = p
	bad.CoupleC = p.VictimC * 2
	if bad.Validate() == nil {
		t.Error("coupling above victim cap accepted")
	}
	bad = p
	bad.AggSlew = -1
	if bad.Validate() == nil {
		t.Error("negative slew accepted")
	}
}

func TestPeakLimits(t *testing.T) {
	p := baseParams()
	// Fast-edge limit: charge sharing Vdd·Cx/Cv.
	p.AggSlew = 0
	chargeShare := p.Vdd * p.CoupleC / p.VictimC
	if got := p.Peak(); math.Abs(got-chargeShare) > 1e-12 {
		t.Fatalf("fast-edge peak = %g, want %g", got, chargeShare)
	}
	// Slow edge: peak well below charge sharing.
	p.AggSlew = 100 * p.Tau()
	if got := p.Peak(); got > 0.05*chargeShare {
		t.Fatalf("slow-edge peak = %g, want << %g", got, chargeShare)
	}
}

func TestPeakMonotoneInSlew(t *testing.T) {
	p := baseParams()
	prev := math.Inf(1)
	for _, s := range []float64{1e-12, 1e-11, 5e-11, 2e-10, 1e-9} {
		p.AggSlew = s
		pk := p.Peak()
		if pk > prev+1e-15 {
			t.Fatalf("peak increased with slower edge at %g", s)
		}
		prev = pk
	}
}

func TestDevganBoundDominatesPeak(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := Params{
			HoldRes: 100 + r.Float64()*10000,
			WireRes: r.Float64() * 1000,
			VictimC: (1 + r.Float64()*50) * units.Femto,
			AggSlew: r.Float64() * 500 * units.Pico,
			Vdd:     1.2,
		}
		p.CoupleC = p.VictimC * r.Float64()
		return p.DevganBound() >= p.Peak()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPeakVsGoldenSimulation(t *testing.T) {
	// The dominant-pole model against the MNA simulator on a single
	// aggressor cluster. The model lumps the victim while the simulator
	// places the coupling behind the aggressor's drive resistance, so we
	// allow a modest conservative-side tolerance but demand the shape.
	ctx := &Context{
		Victim:  "v",
		HoldRes: 3000,
		VictimC: 20 * units.Femto,
		Couplings: []Coupling{
			{Aggressor: "a", CoupleC: 4 * units.Femto},
		},
	}
	slew := 40 * units.Pico
	p := ctx.ParamsFor(&ctx.Couplings[0], slew, 1.2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	analytic := p.Peak()
	m, err := SimulateCluster(ctx, []ClusterAggressor{
		{Coupling: &ctx.Couplings[0], Slew: slew, Start: 0, Rise: true},
	}, 1, 1.2) // near-ideal aggressor driver for a clean comparison
	if err != nil {
		t.Fatal(err)
	}
	if m.Peak <= 0 {
		t.Fatalf("simulated peak = %g", m.Peak)
	}
	if units.RelErr(analytic, m.Peak, 1e-3) > 0.15 {
		t.Fatalf("analytic %g vs simulated %g: error too large", analytic, m.Peak)
	}
	// The analytical model is meant to be conservative (≥ golden).
	if analytic < m.Peak*0.98 {
		t.Fatalf("analytic %g below simulated %g", analytic, m.Peak)
	}
}

func TestTemplateMetrics(t *testing.T) {
	p := baseParams()
	m := p.Metrics()
	if math.Abs(m.Peak-p.Peak()) > 1e-12 {
		t.Fatalf("template peak %g != model %g", m.Peak, p.Peak())
	}
	if m.Width <= 0 || m.Area <= 0 {
		t.Fatalf("metrics = %+v", m)
	}
	// Width scales with tau: doubling resistance roughly doubles width.
	p2 := p
	p2.HoldRes *= 2
	if w2 := p2.Metrics().Width; w2 <= m.Width {
		t.Fatalf("width %g did not grow with tau (was %g)", w2, m.Width)
	}
}

func TestFilter(t *testing.T) {
	ctx := &Context{
		VictimC: 100 * units.Femto,
		Couplings: []Coupling{
			{Aggressor: "big", CoupleC: 20 * units.Femto},
			{Aggressor: "mid", CoupleC: 5 * units.Femto},
			{Aggressor: "small", CoupleC: 1 * units.Femto},
		},
	}
	kept, dropped := ctx.Filter(0.04)
	if len(kept) != 2 {
		t.Fatalf("kept = %v", kept)
	}
	if math.Abs(dropped-1*units.Femto) > 1e-21 {
		t.Fatalf("dropped = %g", dropped)
	}
	// Zero threshold keeps everything.
	kept, dropped = ctx.Filter(0)
	if len(kept) != 3 || dropped != 0 {
		t.Fatalf("zero threshold: kept %d dropped %g", len(kept), dropped)
	}
}

func TestContextHelpers(t *testing.T) {
	ctx := &Context{
		Couplings: []Coupling{
			{Aggressor: "a", CoupleC: 1e-15},
			{Aggressor: "b", CoupleC: 2e-15},
		},
	}
	if got := ctx.TotalCoupling(); math.Abs(got-3e-15) > 1e-24 {
		t.Fatalf("TotalCoupling = %g", got)
	}
	if ctx.CouplingTo("b") == nil || ctx.CouplingTo("zz") != nil {
		t.Fatal("CouplingTo lookup broken")
	}
}

const busSpef = `*SPEF "x"
*DESIGN "bus"
*D_NET v 8.0e-15
*CONN
*I dv:Y O
*I rv:A I
*CAP
1 v:1 2.0e-15
2 v:1 a0:1 3.0e-15
3 v:2 a1:1 1.0e-15
4 v:2 2.0e-15
*RES
1 dv:Y v:1 100
2 v:1 v:2 150
3 v:2 rv:A 50
*END
*D_NET a0 4.0e-15
*CONN
*I da0:Y O
*I ra0:A I
*CAP
1 a0:1 4.0e-15
*RES
1 da0:Y a0:1 120
2 a0:1 ra0:A 60
*END
*D_NET a1 4.0e-15
*CONN
*I da1:Y O
*I ra1:A I
*CAP
1 a1:1 4.0e-15
*RES
1 da1:Y a1:1 120
2 a1:1 ra1:A 60
*END
`

func buildBusDesign(t testing.TB) *bind.Design {
	t.Helper()
	d := netlist.New("bus")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	nets := []string{"v", "a0", "a1"}
	for _, n := range nets {
		_, err := d.AddPort("i_"+n, netlist.In)
		must(err)
		_, err = d.AddInst("d"+n, "INV_X1")
		must(err)
		_, err = d.AddInst("r"+n, "INV_X1")
		must(err)
		must(d.Connect("d"+n, "A", "i_"+n, netlist.In))
		must(d.Connect("d"+n, "Y", n, netlist.Out))
		must(d.Connect("r"+n, "A", n, netlist.In))
		must(d.Connect("r"+n, "Y", "o_"+n, netlist.Out))
	}
	p, err := spef.Parse(strings.NewReader(busSpef))
	must(err)
	b, err := bind.New(d, liberty.Generic(), p)
	must(err)
	return b
}

func TestBuildContextFromDesign(t *testing.T) {
	b := buildBusDesign(t)
	ctx, err := BuildContext(b, b.Net.FindNet("v"))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.HoldRes != genericCell(t, "INV_X1").HoldRes {
		t.Fatalf("HoldRes = %g", ctx.HoldRes)
	}
	if len(ctx.Couplings) != 2 {
		t.Fatalf("couplings = %+v", ctx.Couplings)
	}
	// Sorted by aggressor name.
	if ctx.Couplings[0].Aggressor != "a0" || ctx.Couplings[1].Aggressor != "a1" {
		t.Fatalf("order = %+v", ctx.Couplings)
	}
	if math.Abs(ctx.Couplings[0].CoupleC-3e-15) > 1e-24 {
		t.Fatalf("a0 coupling = %g", ctx.Couplings[0].CoupleC)
	}
	// a0 couples at v:1 (100 Ω from driver), a1 at v:2 (250 Ω).
	if math.Abs(ctx.Couplings[0].WireRes-100) > 1e-9 {
		t.Fatalf("a0 wire res = %g", ctx.Couplings[0].WireRes)
	}
	if math.Abs(ctx.Couplings[1].WireRes-250) > 1e-9 {
		t.Fatalf("a1 wire res = %g", ctx.Couplings[1].WireRes)
	}
	if ctx.Couplings[0].AggWireDelay <= 0 {
		t.Fatal("aggressor wire delay missing")
	}
	if len(ctx.Receivers) != 1 {
		t.Fatalf("receivers = %d", len(ctx.Receivers))
	}
	// Victim cap: wire 4fF + coupling 4fF + receiver pin cap.
	pinCap := genericCell(t, "INV_X1").Pin("A").Cap
	want := 4e-15 + 4e-15 + pinCap
	if math.Abs(ctx.VictimC-want) > 1e-22 {
		t.Fatalf("VictimC = %g, want %g", ctx.VictimC, want)
	}
}

func TestTwoAggressorSuperposition(t *testing.T) {
	// Simultaneous aggressors superpose approximately linearly in the
	// golden simulation.
	ctx := &Context{
		Victim:  "v",
		HoldRes: 3000,
		VictimC: 30 * units.Femto,
		Couplings: []Coupling{
			{Aggressor: "a", CoupleC: 3 * units.Femto},
			{Aggressor: "b", CoupleC: 3 * units.Femto},
		},
	}
	slew := 40 * units.Pico
	one, err := SimulateCluster(ctx, []ClusterAggressor{
		{Coupling: &ctx.Couplings[0], Slew: slew, Rise: true},
	}, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	both, err := SimulateCluster(ctx, []ClusterAggressor{
		{Coupling: &ctx.Couplings[0], Slew: slew, Rise: true},
		{Coupling: &ctx.Couplings[1], Slew: slew, Rise: true},
	}, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if units.RelErr(both.Peak, 2*one.Peak, 1e-3) > 0.05 {
		t.Fatalf("superposition: both %g vs 2x one %g", both.Peak, 2*one.Peak)
	}
	// Misaligned aggressors produce a smaller combined peak.
	apart, err := SimulateCluster(ctx, []ClusterAggressor{
		{Coupling: &ctx.Couplings[0], Slew: slew, Rise: true},
		{Coupling: &ctx.Couplings[1], Slew: slew, Start: 500 * units.Pico, Rise: true},
	}, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if !(apart.Peak < both.Peak*0.7) {
		t.Fatalf("misaligned peak %g not much below aligned %g", apart.Peak, both.Peak)
	}
}

func TestBuildClusterRejectsOverCoupling(t *testing.T) {
	ctx := &Context{
		HoldRes: 1000,
		VictimC: 1 * units.Femto,
		Couplings: []Coupling{
			{Aggressor: "a", CoupleC: 2 * units.Femto},
		},
	}
	_, err := BuildCluster(ctx, []ClusterAggressor{
		{Coupling: &ctx.Couplings[0], Slew: 1e-11, Rise: true},
	}, 100, 1.2)
	if err == nil {
		t.Fatal("over-coupled cluster accepted")
	}
}

func TestFallingAggressorNegativeGlitch(t *testing.T) {
	ctx := &Context{
		Victim:  "v",
		HoldRes: 3000,
		VictimC: 20 * units.Femto,
		Couplings: []Coupling{
			{Aggressor: "a", CoupleC: 4 * units.Femto},
		},
	}
	m, err := SimulateCluster(ctx, []ClusterAggressor{
		{Coupling: &ctx.Couplings[0], Slew: 40 * units.Pico, Rise: false},
	}, 1, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Peak >= 0 {
		t.Fatalf("falling aggressor produced non-negative peak %g", m.Peak)
	}
}

func TestClosedFormWidthMatchesTemplate(t *testing.T) {
	// The closed form must agree with the sampled template's measured
	// width to within PWL interpolation error across the regime sweep.
	for _, rh := range []float64{500, 3000, 10000} {
		for _, slew := range []float64{5e-12, 20e-12, 80e-12, 300e-12} {
			p := Params{
				HoldRes: rh,
				CoupleC: 3 * units.Femto,
				VictimC: 15 * units.Femto,
				AggSlew: slew,
				Vdd:     1.2,
			}
			closed := p.Width()
			sampled := p.Metrics().Width
			// 5%: the template's fixed 10-point rise undersamples very
			// fast initial charging when τ << slew; the closed form is
			// the exact value.
			if units.RelErr(closed, sampled, 1e-13) > 0.05 {
				t.Errorf("rh=%g slew=%g: closed %g vs sampled %g", rh, slew, closed, sampled)
			}
		}
	}
}

func TestWidthMonotoneInSlew(t *testing.T) {
	p := baseParams()
	prev := 0.0
	for _, s := range []float64{1e-12, 1e-11, 5e-11, 2e-10} {
		p.AggSlew = s
		w := p.Width()
		if w <= prev {
			t.Fatalf("width not increasing with slew at %g", s)
		}
		prev = w
	}
}
