// Package noise implements the electrical crosstalk models of static noise
// analysis: given a quiet victim net and a switching aggressor coupled to it
// through extracted capacitance, compute the glitch (peak, width, template
// waveform) injected at the victim's receivers.
//
// The model is the classical dominant-pole charge-sharing analysis. The
// quiet victim is held by its driver through the holding resistance R_h;
// wire resistance R_w separates the driver from the coupling site; the
// total victim capacitance is C_v and the coupling capacitance to the
// aggressor is C_x. For an aggressor edge of transition time t_r and swing
// Vdd, with τ = (R_h+R_w)(C_v) the victim response peaks at
//
//	V_peak = Vdd · (C_x·R/t_r) · (1 − e^{−t_r/τ}),  R = R_h + R_w
//
// which interpolates between the fast-edge charge-sharing limit
// Vdd·C_x/C_v (t_r → 0) and the slow-edge resistive limit Vdd·C_x·R/t_r.
// The package also provides Devgan's strict upper bound Vdd·C_x·R/t_r for
// conservative screening, and assembles golden ckt circuits so the model
// can be validated against transient simulation.
package noise

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bind"
	"repro/internal/ckt"
	"repro/internal/netlist"
	"repro/internal/units"
	"repro/internal/waveform"
)

// Params are the reduced electrical parameters of one victim/aggressor
// coupling.
type Params struct {
	HoldRes float64 // victim driver holding resistance, ohms
	WireRes float64 // victim wire resistance driver→coupling site, ohms
	CoupleC float64 // coupling capacitance to this aggressor, farads
	VictimC float64 // total victim capacitance (wire+pins+coupling), farads
	AggSlew float64 // aggressor transition time at the coupling site, s
	Vdd     float64 // supply swing, volts
}

// Validate rejects unphysical parameters.
func (p Params) Validate() error {
	if p.HoldRes <= 0 || p.VictimC <= 0 || p.Vdd <= 0 {
		return fmt.Errorf("noise: non-positive holding resistance, victim cap, or vdd")
	}
	if p.WireRes < 0 || p.CoupleC < 0 || p.AggSlew < 0 {
		return fmt.Errorf("noise: negative wire resistance, coupling cap, or slew")
	}
	if p.CoupleC > p.VictimC {
		return fmt.Errorf("noise: coupling cap %g exceeds total victim cap %g", p.CoupleC, p.VictimC)
	}
	return nil
}

// Tau returns the victim time constant (R_h+R_w)·C_v.
func (p Params) Tau() float64 {
	return (p.HoldRes + p.WireRes) * p.VictimC
}

// Peak returns the dominant-pole glitch peak magnitude in volts.
func (p Params) Peak() float64 {
	r := p.HoldRes + p.WireRes
	tau := p.Tau()
	if p.AggSlew <= 0 {
		// Instantaneous edge: pure charge sharing.
		return p.Vdd * p.CoupleC / p.VictimC
	}
	return p.Vdd * (p.CoupleC * r / p.AggSlew) * (1 - math.Exp(-p.AggSlew/tau))
}

// DevganBound returns the strict upper bound Vdd·C_x·R/t_r. For very fast
// edges the bound exceeds the charge-sharing limit and is clamped there.
func (p Params) DevganBound() float64 {
	if p.AggSlew <= 0 {
		return p.Vdd * p.CoupleC / p.VictimC
	}
	b := p.Vdd * p.CoupleC * (p.HoldRes + p.WireRes) / p.AggSlew
	return math.Min(b, p.Vdd*p.CoupleC/p.VictimC)
}

// Template returns the glitch template waveform starting at t0. For the
// dominant-pole model the response to a ramp aggressor edge is exact:
//
//	v(t) = k·R·C_x·(1 − e^{−t/τ})          during the edge (0 ≤ t ≤ t_r)
//	v(t) = v(t_r)·e^{−(t−t_r)/τ}           after it
//
// sampled into a PWL dense enough that measured peak and width match the
// closed form (and the MNA golden simulation) to within interpolation
// error.
func (p Params) Template(t0 float64) waveform.PWL {
	tau := p.Tau()
	tr := p.AggSlew
	peak := p.Peak()
	if tr <= 0 {
		tr = 1e-15
	}
	if tau <= 0 {
		tau = 1e-15
	}
	sat := 1 - math.Exp(-tr/tau)
	pts := []waveform.Point{{T: t0, V: 0}}
	const nRise = 10
	for i := 1; i <= nRise; i++ {
		dt := tr * float64(i) / nRise
		pts = append(pts, waveform.Point{T: t0 + dt, V: peak * (1 - math.Exp(-dt/tau)) / sat})
	}
	const nFall, tail = 12, 4.6
	for i := 1; i <= nFall; i++ {
		dt := tail * tau * float64(i) / nFall
		pts = append(pts, waveform.Point{T: t0 + tr + dt, V: peak * math.Exp(-dt/tau)})
	}
	pts = append(pts, waveform.Point{T: t0 + tr + tail*tau*1.05, V: 0})
	return waveform.MustNew(pts...)
}

// Width returns the half-peak width of the glitch in closed form. For the
// exact single-pole response the waveform crosses half the peak at
//
//	t_up  = −τ·ln(1 − sat/2),  sat = 1 − e^{−t_r/τ}   (during the rise)
//	t_dn  = t_r + τ·ln 2                              (during the decay)
//
// so the width is t_dn − t_up. This is what Template's sampled waveform
// measures, without allocating it — the analysis hot path uses this form.
func (p Params) Width() float64 {
	tau := p.Tau()
	tr := p.AggSlew
	if tr <= 0 {
		tr = 1e-15
	}
	if tau <= 0 {
		tau = 1e-15
	}
	sat := 1 - math.Exp(-tr/tau)
	tUp := -tau * math.Log(1-sat/2)
	return tr + tau*math.Ln2 - tUp
}

// Metrics measures the glitch template: peak (signed positive), half-peak
// width, and area. Width() gives the width without building the waveform.
func (p Params) Metrics() waveform.GlitchMetrics {
	return waveform.MeasureGlitch(p.Template(0))
}

// Coupling summarizes one aggressor of a victim net.
type Coupling struct {
	Aggressor string  // aggressor net name
	CoupleC   float64 // total coupling capacitance to the victim, farads
	// WireRes is the victim-side wire resistance from the victim driver
	// to the (capacitance-weighted) coupling site.
	WireRes float64
	// AggWireDelay is the aggressor-side Elmore delay from the aggressor
	// driver to its coupling site: the aggressor's edge arrives at the
	// coupling capacitance this much after it leaves the driver.
	AggWireDelay float64
}

// Context is everything the analytical model needs about one victim net.
type Context struct {
	Victim    string
	HoldRes   float64
	VictimC   float64 // total cap incl. coupling
	Couplings []Coupling
	// Receivers are the victim's load connections (where glitches are
	// checked against immunity curves).
	Receivers []*netlist.Conn
	// byAgg indexes Couplings by aggressor net name; BuildContext fills it
	// so CouplingTo is a lookup instead of a scan (repair loops call it
	// per victim-aggressor pair). Hand-built contexts may leave it nil.
	byAgg map[string]int
}

// TotalCoupling sums coupling capacitance over all aggressors.
func (c *Context) TotalCoupling() float64 {
	var s float64
	for _, x := range c.Couplings {
		s += x.CoupleC
	}
	return s
}

// CouplingTo finds a coupling entry by aggressor net name.
func (c *Context) CouplingTo(net string) *Coupling {
	if c.byAgg != nil {
		if i, ok := c.byAgg[net]; ok {
			return &c.Couplings[i]
		}
		return nil
	}
	for i := range c.Couplings {
		if c.Couplings[i].Aggressor == net {
			return &c.Couplings[i]
		}
	}
	return nil
}

// BuildContext derives a victim's noise context from the bound design:
// holding resistance from the driver cell, victim capacitance and coupling
// groups from the RC network, wire resistances from the tree analysis.
func BuildContext(b *bind.Design, victim *netlist.Net) (*Context, error) {
	nw, err := b.Network(victim.Name)
	if err != nil {
		return nil, err
	}
	a, err := b.Analysis(victim.Name)
	if err != nil {
		return nil, err
	}
	ctx := &Context{
		Victim:    victim.Name,
		HoldRes:   b.HoldRes(victim),
		VictimC:   nw.TotalCap(),
		Receivers: victim.Loads(),
	}
	// Group couplings by aggressor net with cap-weighted victim-side wire
	// resistance and aggressor-side wire delay.
	type accum struct {
		c, rw float64
	}
	groups := make(map[string]*accum)
	for _, x := range nw.CouplingsView() {
		g := groups[x.OtherNet]
		if g == nil {
			g = &accum{}
			groups[x.OtherNet] = g
		}
		r, err := a.ResTo(x.Node)
		if err != nil {
			return nil, err
		}
		g.c += x.F
		g.rw += x.F * r
	}
	names := make([]string, 0, len(groups))
	for n := range groups {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := groups[n]
		cpl := Coupling{Aggressor: n, CoupleC: g.c}
		if g.c > 0 {
			cpl.WireRes = g.rw / g.c
		}
		// Aggressor-side wire delay to its coupling site: use the
		// aggressor's max Elmore as a conservative bound when the exact
		// node isn't resolvable on the aggressor network.
		if aggA, err := b.Analysis(n); err == nil {
			cpl.AggWireDelay = aggA.MaxElmore()
		}
		ctx.Couplings = append(ctx.Couplings, cpl)
	}
	ctx.byAgg = make(map[string]int, len(ctx.Couplings))
	for i := range ctx.Couplings {
		ctx.byAgg[ctx.Couplings[i].Aggressor] = i
	}
	return ctx, nil
}

// ParamsFor assembles Params for one aggressor of the context.
func (c *Context) ParamsFor(cpl *Coupling, aggSlew, vdd float64) Params {
	return Params{
		HoldRes: c.HoldRes,
		WireRes: cpl.WireRes,
		CoupleC: cpl.CoupleC,
		VictimC: c.VictimC,
		AggSlew: aggSlew,
		Vdd:     vdd,
	}
}

// Filter drops aggressors whose coupling ratio C_x/C_v is below threshold,
// returning the kept couplings and the total dropped capacitance. The
// dropped capacitance can be re-injected as a virtual aggressor so the
// filter stays conservative.
func (c *Context) Filter(threshold float64) (kept []Coupling, droppedCap float64) {
	for _, x := range c.Couplings {
		if c.VictimC > 0 && x.CoupleC/c.VictimC >= threshold {
			kept = append(kept, x)
		} else {
			droppedCap += x.CoupleC
		}
	}
	return kept, droppedCap
}

// ClusterAggressor describes one aggressor's drive for golden simulation.
type ClusterAggressor struct {
	Coupling *Coupling
	Slew     float64 // edge transition time, seconds
	Start    float64 // edge start time, seconds
	Rise     bool    // rising edge (injects an upward victim glitch)
}

// BuildCluster assembles a ckt.Circuit of one victim and its switching
// aggressors for golden transient validation: the victim is a lumped C_v
// held through R_h+R_w to ground, each aggressor a Thévenin ramp source
// behind its drive resistance coupled through C_x. The victim node is named
// "victim". Quiet-low victims are modelled (rail symmetry makes the
// quiet-high case identical up to reflection).
func BuildCluster(ctx *Context, aggs []ClusterAggressor, aggDriveRes, vdd float64) (*ckt.Circuit, error) {
	c := ckt.New()
	groundedC := ctx.VictimC
	for _, a := range aggs {
		groundedC -= a.Coupling.CoupleC
	}
	if groundedC < 0 {
		return nil, fmt.Errorf("noise: coupling exceeds victim cap in cluster")
	}
	if err := c.AddR("victim", "0", ctx.HoldRes+avgWireRes(aggs)); err != nil {
		return nil, err
	}
	if groundedC > 0 {
		if err := c.AddC("victim", "0", groundedC); err != nil {
			return nil, err
		}
	}
	for i, a := range aggs {
		src := fmt.Sprintf("asrc%d", i)
		node := fmt.Sprintf("anode%d", i)
		v0, v1 := 0.0, vdd
		if !a.Rise {
			v0, v1 = vdd, 0
		}
		if err := c.AddV(src, src, waveform.SatRamp(a.Start, a.Slew, v0, v1)); err != nil {
			return nil, err
		}
		if err := c.AddR(src, node, aggDriveRes); err != nil {
			return nil, err
		}
		if err := c.AddC("victim", node, a.Coupling.CoupleC); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func avgWireRes(aggs []ClusterAggressor) float64 {
	if len(aggs) == 0 {
		return 0
	}
	var rw, cw float64
	for _, a := range aggs {
		rw += a.Coupling.WireRes * a.Coupling.CoupleC
		cw += a.Coupling.CoupleC
	}
	if cw == 0 {
		return 0
	}
	return rw / cw
}

// SimulateCluster runs the golden transient and returns the victim glitch
// metrics. The horizon extends past the last aggressor edge by several
// victim time constants.
func SimulateCluster(ctx *Context, aggs []ClusterAggressor, aggDriveRes, vdd float64) (waveform.GlitchMetrics, error) {
	c, err := BuildCluster(ctx, aggs, aggDriveRes, vdd)
	if err != nil {
		return waveform.GlitchMetrics{}, err
	}
	var tEnd float64
	for _, a := range aggs {
		if e := a.Start + a.Slew; e > tEnd {
			tEnd = e
		}
	}
	tau := (ctx.HoldRes + avgWireRes(aggs)) * ctx.VictimC
	horizon := tEnd + 6*tau + 10*units.Pico
	step := horizon / 4000
	res, err := c.Tran(step, horizon, []string{"victim"})
	if err != nil {
		return waveform.GlitchMetrics{}, err
	}
	w, err := res.Waveform("victim")
	if err != nil {
		return waveform.GlitchMetrics{}, err
	}
	return waveform.MeasureGlitch(w), nil
}
