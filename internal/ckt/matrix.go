package ckt

import (
	"fmt"
	"math"
)

// dense is a square dense matrix in row-major storage. Circuit clusters in
// noise analysis are small (tens to a few hundred nodes), where dense LU
// with partial pivoting is simpler and faster than sparse machinery.
type dense struct {
	n int
	a []float64
}

func newDense(n int) *dense {
	return &dense{n: n, a: make([]float64, n*n)}
}

func (m *dense) at(i, j int) float64     { return m.a[i*m.n+j] }
func (m *dense) set(i, j int, v float64) { m.a[i*m.n+j] = v }
func (m *dense) add(i, j int, v float64) { m.a[i*m.n+j] += v }

func (m *dense) clone() *dense {
	c := newDense(m.n)
	copy(c.a, m.a)
	return c
}

// lu is an LU factorization with partial pivoting (Doolittle, in place).
type lu struct {
	m    *dense
	perm []int
}

// factor computes the LU decomposition of a copy of m. It returns an error
// when the matrix is numerically singular.
func factor(m *dense) (*lu, error) {
	f := &lu{m: m.clone(), perm: make([]int, m.n)}
	a, n := f.m.a, m.n
	for i := range f.perm {
		f.perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, best := k, math.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best < 1e-300 {
			return nil, fmt.Errorf("ckt: singular matrix at pivot %d", k)
		}
		if p != k {
			f.perm[k], f.perm[p] = f.perm[p], f.perm[k]
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
		}
		inv := 1 / a[k*n+k]
		for i := k + 1; i < n; i++ {
			l := a[i*n+k] * inv
			a[i*n+k] = l
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= l * a[k*n+j]
			}
		}
	}
	return f, nil
}

// solve computes x with PAx = Pb, overwriting and returning a new slice.
func (f *lu) solve(b []float64) []float64 {
	n := f.m.n
	a := f.m.a
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a[i*n+j] * x[j]
		}
		x[i] = s / a[i*n+i]
	}
	return x
}

// mulAdd computes y = A·x + y0 into a fresh slice.
func (m *dense) mulAdd(x, y0 []float64) []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		s := y0[i]
		row := m.a[i*m.n : (i+1)*m.n]
		for j, v := range x {
			s += row[j] * v
		}
		out[i] = s
	}
	return out
}
