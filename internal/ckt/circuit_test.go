package ckt

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/waveform"
)

func TestLUSolveIdentity(t *testing.T) {
	m := newDense(3)
	for i := 0; i < 3; i++ {
		m.set(i, i, 1)
	}
	f, err := factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x := f.solve([]float64{1, 2, 3})
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(x[i]-want) > 1e-12 {
			t.Fatalf("x = %v", x)
		}
	}
}

func TestLUSolveGeneral(t *testing.T) {
	// A = [[2,1],[1,3]], b = [5,10] -> x = [1,3].
	m := newDense(2)
	m.set(0, 0, 2)
	m.set(0, 1, 1)
	m.set(1, 0, 1)
	m.set(1, 1, 3)
	f, err := factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x := f.solve([]float64{5, 10})
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	m := newDense(2)
	m.set(0, 0, 0)
	m.set(0, 1, 1)
	m.set(1, 0, 1)
	m.set(1, 1, 0)
	f, err := factor(m)
	if err != nil {
		t.Fatal(err)
	}
	x := f.solve([]float64{2, 3})
	if math.Abs(x[0]-3) > 1e-12 || math.Abs(x[1]-2) > 1e-12 {
		t.Fatalf("x = %v", x)
	}
}

func TestLUSingular(t *testing.T) {
	m := newDense(2)
	m.set(0, 0, 1)
	m.set(0, 1, 1)
	m.set(1, 0, 2)
	m.set(1, 1, 2)
	if _, err := factor(m); err == nil {
		t.Fatal("singular matrix factored")
	}
}

func TestResistorDividerDC(t *testing.T) {
	c := New()
	if err := c.AddV("vin", "a", waveform.Constant(1.0)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("a", "mid", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("mid", "0", 1000); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(1e-12, 10e-12, []string{"mid"})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.V("mid") {
		if math.Abs(v-0.5) > 1e-6 {
			t.Fatalf("divider voltage = %g, want 0.5", v)
		}
	}
}

func TestRCStepResponse(t *testing.T) {
	// R=1k, C=1pF: tau = 1ns. Step at t=0 via fast ramp.
	c := New()
	step := waveform.SatRamp(0, 1e-15, 0, 1.0)
	if err := c.AddV("vin", "in", step); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("in", "out", 1000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("out", "0", 1e-12); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(5e-12, 5e-9, []string{"out"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform("out")
	if err != nil {
		t.Fatal(err)
	}
	tau := 1e-9
	for _, tt := range []float64{0.5e-9, 1e-9, 2e-9, 4e-9} {
		want := 1 - math.Exp(-tt/tau)
		got := w.Eval(tt)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("v(%g) = %g, want %g", tt, got, want)
		}
	}
}

func TestCouplingGlitchVsClosedForm(t *testing.T) {
	// Victim node v held through Rh to ground; coupling Cx to aggressor
	// ramp, grounded Cg. During a ramp of slope k the victim follows
	//   v(t) = k·Rh·Cx·(1 − e^{−t/τ}),  τ = Rh·(Cg+Cx).
	rh := 2000.0
	cx := 5 * units.Femto
	cg := 15 * units.Femto
	slew := 50 * units.Pico
	vdd := 1.2
	k := vdd / slew
	tau := rh * (cg + cx)

	c := New()
	if err := c.AddV("agg", "a", waveform.SatRamp(0, slew, 0, vdd)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("v", "0", rh); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("v", "a", cx); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("v", "0", cg); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(0.1*units.Pico, 200*units.Pico, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	w, err := res.Waveform("v")
	if err != nil {
		t.Fatal(err)
	}
	// Compare during the ramp.
	for _, tt := range []float64{10 * units.Pico, 25 * units.Pico, 45 * units.Pico} {
		want := k * rh * cx * (1 - math.Exp(-tt/tau))
		got := w.Eval(tt)
		if units.RelErr(got, want, 1e-3) > 0.02 {
			t.Fatalf("glitch v(%g) = %g, want %g", tt, got, want)
		}
	}
	// Peak occurs at end of ramp.
	_, peak := w.Peak()
	wantPeak := k * rh * cx * (1 - math.Exp(-slew/tau))
	if units.RelErr(peak, wantPeak, 1e-3) > 0.02 {
		t.Fatalf("peak = %g, want %g", peak, wantPeak)
	}
}

func TestEnergyDecaysAfterGlitch(t *testing.T) {
	// After the aggressor settles, the victim voltage must decay
	// monotonically toward zero (passive RC).
	c := New()
	if err := c.AddV("agg", "a", waveform.SatRamp(0, 10e-12, 0, 1.2)); err != nil {
		t.Fatal(err)
	}
	if err := c.AddR("v", "0", 5000); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("v", "a", 4e-15); err != nil {
		t.Fatal(err)
	}
	if err := c.AddC("v", "0", 10e-15); err != nil {
		t.Fatal(err)
	}
	res, err := c.Tran(0.5e-12, 500e-12, []string{"v"})
	if err != nil {
		t.Fatal(err)
	}
	vs := res.V("v")
	// Find the peak index, then check non-increase afterward.
	peak := 0
	for i, v := range vs {
		if v > vs[peak] {
			peak = i
		}
	}
	for i := peak + 1; i < len(vs); i++ {
		if vs[i] > vs[i-1]+1e-9 {
			t.Fatalf("victim voltage rose after peak at step %d", i)
		}
	}
	if vs[len(vs)-1] > 0.01*vs[peak] {
		t.Fatalf("glitch did not decay: final %g vs peak %g", vs[len(vs)-1], vs[peak])
	}
}

func TestTranErrors(t *testing.T) {
	c := New()
	if err := c.AddV("v", "a", waveform.Constant(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tran(-1, 1, nil); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := c.Tran(1e-12, 1e-9, []string{"ghost"}); err == nil {
		t.Fatal("unknown probe accepted")
	}
}

func TestElementValidation(t *testing.T) {
	c := New()
	if err := c.AddR("a", "b", 0); err == nil {
		t.Fatal("zero resistance accepted")
	}
	if err := c.AddC("a", "b", -1); err == nil {
		t.Fatal("negative capacitance accepted")
	}
	if err := c.AddV("v", "0", waveform.Constant(1)); err == nil {
		t.Fatal("grounded source accepted")
	}
}

func TestGroundAliases(t *testing.T) {
	c := New()
	if c.Node("0") != 0 || c.Node("") != 0 || c.Node("gnd") != 0 {
		t.Fatal("ground aliases broken")
	}
	if c.Node("x") == 0 {
		t.Fatal("regular node mapped to ground")
	}
}

func TestResultWaveformUnknownProbe(t *testing.T) {
	r := &Result{volts: map[string][]float64{}}
	if _, err := r.Waveform("x"); err == nil {
		t.Fatal("unknown probe waveform accepted")
	}
}

func BenchmarkTranCluster(b *testing.B) {
	// 8-net coupled cluster: aggressors ramping into one victim ladder.
	build := func() *Circuit {
		c := New()
		if err := c.AddR("v0", "0", 3000); err != nil {
			b.Fatal(err)
		}
		prev := "v0"
		for i := 0; i < 8; i++ {
			node := "v" + string(rune('1'+i))
			if err := c.AddR(prev, node, 100); err != nil {
				b.Fatal(err)
			}
			if err := c.AddC(node, "0", 2e-15); err != nil {
				b.Fatal(err)
			}
			prev = node
		}
		for i := 0; i < 4; i++ {
			an := "a" + string(rune('0'+i))
			if err := c.AddV("src"+an, an, waveform.SatRamp(float64(i)*20e-12, 30e-12, 0, 1.2)); err != nil {
				b.Fatal(err)
			}
			if err := c.AddC("v4", an, 1.5e-15); err != nil {
				b.Fatal(err)
			}
		}
		return c
	}
	c := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Tran(1e-12, 300e-12, []string{"v4"}); err != nil {
			b.Fatal(err)
		}
	}
}
