// Package ckt is a small linear transient circuit simulator: resistors,
// grounded and floating (coupling) capacitors, and piecewise-linear
// independent voltage sources, solved by modified nodal analysis with
// trapezoidal integration.
//
// It is the repository's "SPICE substrate": the golden reference the
// analytical crosstalk models are validated against in the accuracy
// experiments. Crosstalk clusters are linear by construction here (drivers
// are modelled as Thévenin sources), so a linear solver reproduces exactly
// the physics the noise model approximates.
package ckt

import (
	"fmt"

	"repro/internal/waveform"
)

// Ground names accepted by Node.
const groundName = "0"

type resistor struct {
	a, b int
	ohms float64
}
type capacitor struct {
	a, b   int
	farads float64
}
type vsource struct {
	name string
	plus int
	wave waveform.PWL
}

// Circuit is a netlist of linear elements. Node 0 is ground; the names
// "0", "" and "gnd" all refer to it.
type Circuit struct {
	names []string
	idx   map[string]int
	rs    []resistor
	cs    []capacitor
	vs    []vsource
	// Gmin is a small conductance added from every node to ground to keep
	// the MNA matrix nonsingular for capacitor-only nodes. Defaults to
	// 1e-12 S; the voltage error it introduces is negligible at on-chip
	// impedance levels.
	Gmin float64
}

// New returns an empty circuit.
func New() *Circuit {
	c := &Circuit{idx: make(map[string]int), Gmin: 1e-12}
	c.names = []string{groundName}
	c.idx[groundName] = 0
	c.idx[""] = 0
	c.idx["gnd"] = 0
	return c
}

// Node interns a node name and returns its index (ground is 0).
func (c *Circuit) Node(name string) int {
	if i, ok := c.idx[name]; ok {
		return i
	}
	i := len(c.names)
	c.names = append(c.names, name)
	c.idx[name] = i
	return i
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.names) }

// AddR adds a resistor between two nodes.
func (c *Circuit) AddR(a, b string, ohms float64) error {
	if ohms <= 0 {
		return fmt.Errorf("ckt: non-positive resistance %g between %q and %q", ohms, a, b)
	}
	c.rs = append(c.rs, resistor{c.Node(a), c.Node(b), ohms})
	return nil
}

// AddC adds a capacitor between two nodes (b may be ground).
func (c *Circuit) AddC(a, b string, farads float64) error {
	if farads < 0 {
		return fmt.Errorf("ckt: negative capacitance %g between %q and %q", farads, a, b)
	}
	c.cs = append(c.cs, capacitor{c.Node(a), c.Node(b), farads})
	return nil
}

// AddV adds an independent voltage source from node plus to ground with
// the given waveform. (Grounded sources suffice for Thévenin driver
// models.)
func (c *Circuit) AddV(name, plus string, wave waveform.PWL) error {
	p := c.Node(plus)
	if p == 0 {
		return fmt.Errorf("ckt: voltage source %q shorted to ground", name)
	}
	c.vs = append(c.vs, vsource{name: name, plus: p, wave: wave})
	return nil
}

// Result holds sampled node voltages from a transient run.
type Result struct {
	Times []float64
	names []string
	volts map[string][]float64
}

// V returns the sampled voltages of a probed node.
func (r *Result) V(node string) []float64 { return r.volts[node] }

// Waveform converts a probed node's samples into a PWL waveform.
func (r *Result) Waveform(node string) (waveform.PWL, error) {
	vs, ok := r.volts[node]
	if !ok {
		return waveform.PWL{}, fmt.Errorf("ckt: node %q was not probed", node)
	}
	pts := make([]waveform.Point, len(vs))
	for i, v := range vs {
		pts[i] = waveform.Point{T: r.Times[i], V: v}
	}
	return waveform.New(pts...)
}

// Tran runs a transient analysis from t=0 to tstop with fixed step h,
// probing the named nodes. The initial condition is the DC operating point
// with capacitors open (sources at their t=0 values).
//
// The MNA unknown vector is [v_1..v_N, i_src1..i_srcM]; trapezoidal
// integration gives the constant-coefficient update
//
//	(G + 2C/h)·x_{k+1} = (2C/h − G)·x_k + b_k + b_{k+1}
//
// which is factored once and back-substituted per step.
func (c *Circuit) Tran(h, tstop float64, probes []string) (*Result, error) {
	if h <= 0 || tstop <= 0 {
		return nil, fmt.Errorf("ckt: bad step %g or stop %g", h, tstop)
	}
	for _, p := range probes {
		if _, ok := c.idx[p]; !ok {
			return nil, fmt.Errorf("ckt: probe of unknown node %q", p)
		}
	}
	nn := len(c.names) - 1 // non-ground nodes
	nv := len(c.vs)
	dim := nn + nv

	g := newDense(dim)
	cm := newDense(dim)
	// Stamp resistors and Gmin into G.
	stamp := func(m *dense, a, b int, val float64) {
		if a > 0 {
			m.add(a-1, a-1, val)
		}
		if b > 0 {
			m.add(b-1, b-1, val)
		}
		if a > 0 && b > 0 {
			m.add(a-1, b-1, -val)
			m.add(b-1, a-1, -val)
		}
	}
	for _, r := range c.rs {
		stamp(g, r.a, r.b, 1/r.ohms)
	}
	for i := 0; i < nn; i++ {
		g.add(i, i, c.Gmin)
	}
	for _, cap := range c.cs {
		stamp(cm, cap.a, cap.b, cap.farads)
	}
	// Voltage source branch rows/cols.
	for k, v := range c.vs {
		row := nn + k
		g.add(v.plus-1, row, 1)
		g.add(row, v.plus-1, 1)
	}

	bAt := func(t float64) []float64 {
		b := make([]float64, dim)
		for k, v := range c.vs {
			b[nn+k] = v.wave.Eval(t)
		}
		return b
	}

	// DC operating point: G·x = b(0).
	gf, err := factor(g)
	if err != nil {
		return nil, fmt.Errorf("ckt: DC solve: %w", err)
	}
	x := gf.solve(bAt(0))

	// Transient matrices.
	lhs := g.clone()
	rhsM := newDense(dim)
	for i := 0; i < dim*dim; i++ {
		lhs.a[i] += 2 / h * cm.a[i]
		rhsM.a[i] = 2/h*cm.a[i] - g.a[i]
	}
	lf, err := factor(lhs)
	if err != nil {
		return nil, fmt.Errorf("ckt: transient factor: %w", err)
	}

	steps := int(tstop/h + 0.5)
	res := &Result{
		Times: make([]float64, 0, steps+1),
		names: probes,
		volts: make(map[string][]float64, len(probes)),
	}
	record := func(t float64, x []float64) {
		res.Times = append(res.Times, t)
		for _, p := range probes {
			i := c.idx[p]
			var v float64
			if i > 0 {
				v = x[i-1]
			}
			res.volts[p] = append(res.volts[p], v)
		}
	}
	record(0, x)
	bPrev := bAt(0)
	for k := 1; k <= steps; k++ {
		t := float64(k) * h
		bNow := bAt(t)
		rhs := rhsM.mulAdd(x, addVec(bPrev, bNow))
		x = lf.solve(rhs)
		record(t, x)
		bPrev = bNow
	}
	return res, nil
}

func addVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}
