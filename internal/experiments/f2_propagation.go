package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// F2Propagation regenerates the propagation figure: a strong glitch is
// injected on the head of a gate chain and the per-stage peak, width, and
// noise window are reported. Expected shape: monotone peak attenuation
// (extinction once below the transfer threshold), width growth by the
// per-stage delay spread, and windows marching later by one gate delay per
// stage — exactly the bookkeeping that lets downstream combination stay
// windowed instead of pessimistic.
func F2Propagation(cfg Config) ([]*report.Table, error) {
	depth := 8
	if cfg.Quick {
		depth = 4
	}
	t := report.NewTable(
		fmt.Sprintf("F2: noise propagation down a %d-stage inverter chain", depth),
		"stage", "net", "peak", "width", "window", "state")

	g, err := workload.Chain(workload.ChainSpec{
		Depth:   depth,
		CoupleC: 10 * units.Femto,
		GroundC: 1 * units.Femto,
	})
	if err != nil {
		return nil, err
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		return nil, err
	}
	res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
	if err != nil {
		return nil, err
	}
	for s := 0; s <= depth; s++ {
		net := fmt.Sprintf("v%d", s)
		if s == depth {
			net = "out"
		}
		nn := res.NoiseOf(net)
		if nn == nil {
			continue
		}
		// Pick the active kind (polarity alternates down the inverter
		// chain).
		var comb core.Combined
		state := "-"
		for _, k := range core.Kinds {
			if nn.Comb[k].Peak > comb.Peak {
				comb = nn.Comb[k]
				state = k.String()
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", s),
			net,
			report.SI(comb.Peak, "V"),
			report.SI(comb.Width, "s"),
			comb.Window.String(),
			state,
		)
	}
	return []*report.Table{t}, nil
}
