package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// A1Widening is the ablation for the occupancy policy (DESIGN.md design
// choice): the sound tent default versus classical peak alignment versus
// the coarse ±width/2 plateau. Expected shape: all three agree when
// windows fully overlap or are far apart; in the marginal band (stagger
// comparable to the glitch width) peak < tent < widen, with tent tracking
// the partial-overlap physics the Monte Carlo experiment (T11) samples.
func A1Widening(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"A1 (ablation): occupancy policies — tent (default) vs peak vs widen",
		"stagger", "peak(tent)", "peak(peak-align)", "peak(widened)", "ordering-ok")

	staggers := []float64{0, 100, 200, 300, 500, 800} // ps between adjacent windows
	if cfg.Quick {
		staggers = []float64{0, 300, 800}
	}
	lib := liberty.Generic()
	for _, sepPS := range staggers {
		sep := sepPS * units.Pico
		g, err := workload.Bus(workload.BusSpec{
			Bits: 8, Segs: 2,
			CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
			WindowSep: sep, WindowWidth: 80 * units.Pico,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		mid := workload.MiddleBusNet(8)
		run := func(occ core.Occupancy) (core.Combined, error) {
			res, err := core.Analyze(b, core.Options{
				Mode:      core.ModeNoiseWindows,
				Occupancy: occ,
				STA:       g.STAOptions(),
			})
			if err != nil {
				return core.Combined{}, err
			}
			return res.NoiseOf(mid).Comb[core.KindLow], nil
		}
		tent, err := run(core.OccupancyTent)
		if err != nil {
			return nil, err
		}
		peak, err := run(core.OccupancyPeak)
		if err != nil {
			return nil, err
		}
		wide, err := run(core.OccupancyWiden)
		if err != nil {
			return nil, err
		}
		ok := peak.Peak <= tent.Peak+1e-12 && tent.Peak <= wide.Peak+1e-12
		t.AddRow(
			report.SI(sep, "s"),
			report.SI(tent.Peak, "V"),
			report.SI(peak.Peak, "V"),
			report.SI(wide.Peak, "V"),
			fmt.Sprintf("%v", ok),
		)
	}
	return []*report.Table{t}, nil
}
