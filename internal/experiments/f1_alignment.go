package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// F1Alignment regenerates the motivating figure: two aggressors attack one
// victim, and the second aggressor's switching window slides away from the
// first in steps. The pessimistic analysis reports the two-aggressor sum
// at every offset; the windowed analysis tracks the true achievable peak.
// Expected shape: the all-aggressors series is flat; the windowed series
// stays at the full sum while the noise windows overlap, then ramps down
// linearly across the tail band (one glitch's peak riding the other's
// receding triangular tail — the sound tent occupancy) and settles at the
// single-aggressor value once the glitches can no longer touch.
func F1Alignment(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"F1: combined peak vs aggressor window offset (two aggressors)",
		"offset", "peak-all-aggr", "peak-noise-win", "members", "overlap")

	offsets := []float64{0, 20, 40, 60, 80, 100, 130, 160, 200, 300, 500, 1000} // ps
	if cfg.Quick {
		offsets = []float64{0, 60, 200, 1000}
	}
	const width = 40 * units.Pico
	lib := liberty.Generic()
	for _, offPS := range offsets {
		off := offPS * units.Pico
		w0 := interval.New(0, width)
		w1 := interval.New(off, off+width) //snavet:nanguard off enumerates a literal table of finite picosecond offsets
		g, err := workload.Star(workload.StarSpec{
			Windows: []interval.Window{w0, w1},
			CoupleC: 4 * units.Femto, GroundC: 8 * units.Femto,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		resA, err := core.Analyze(b, core.Options{Mode: core.ModeAllAggressors, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		resC, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		combA := resA.NoiseOf("v").Comb[core.KindLow]
		combC := resC.NoiseOf("v").Comb[core.KindLow]
		t.AddRow(
			report.SI(off, "s"),
			report.SI(combA.Peak, "V"),
			report.SI(combC.Peak, "V"),
			fmt.Sprintf("%d", len(combC.Members)),
			fmt.Sprintf("%v", len(combC.Members) > 1),
		)
	}
	return []*report.Table{t}, nil
}
