package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// A2Multiphase is the ablation for set-valued switching windows. Every bus
// line switches in two phases separated by PhaseGap; lines are staggered
// inside each phase. A hull-based tool (core.Options.HullWindows) smears
// each aggressor's window across the whole gap, so every pair of aggressors
// appears to overlap; the set-valued analysis keeps the phases separate.
// Expected shape: set-valued and hull results coincide at zero/small gaps,
// then the hull analysis stays pessimistic (near the all-aggressors level)
// as the gap grows while the set-valued result keeps the staggered
// reduction. Hull is always conservative relative to sets.
func A2Multiphase(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"A2 (ablation): set-valued vs hull switching windows, two-phase bus",
		"phase-gap", "noise(all-aggr)", "noise(hull)", "noise(sets)", "hull/sets")

	gaps := []float64{0, 500, 2000, 10000} // ps
	if cfg.Quick {
		gaps = []float64{0, 10000}
	}
	lib := liberty.Generic()
	for _, gapPS := range gaps {
		gap := gapPS * units.Pico
		g, err := workload.Bus(workload.BusSpec{
			Bits: 16, Segs: 2,
			CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
			WindowSep: 250 * units.Pico, WindowWidth: 80 * units.Pico,
			PhaseGap: gap,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		run := func(mode core.Mode, hull bool) (float64, error) {
			res, err := core.Analyze(b, core.Options{
				Mode:        mode,
				HullWindows: hull,
				STA:         g.STAOptions(),
			})
			if err != nil {
				return 0, err
			}
			return res.TotalNoise(), nil
		}
		nA, err := run(core.ModeAllAggressors, false)
		if err != nil {
			return nil, err
		}
		nHull, err := run(core.ModeNoiseWindows, true)
		if err != nil {
			return nil, err
		}
		nSet, err := run(core.ModeNoiseWindows, false)
		if err != nil {
			return nil, err
		}
		ratio := 1.0
		if nSet > 0 {
			ratio = nHull / nSet
		}
		t.AddRow(
			report.SI(gap, "s"),
			report.SI(nA, "V"),
			report.SI(nHull, "V"),
			report.SI(nSet, "V"),
			fmt.Sprintf("%.2f", ratio),
		)
	}
	return []*report.Table{t}, nil
}
