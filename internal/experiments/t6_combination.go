package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T6Combination characterizes the windowed combination itself: with N
// aggressors whose windows are scattered over an increasing span, how many
// glitches can actually align (combination cardinality) and how much of
// the pessimistic sum survives. Expected shape: as the span grows relative
// to the window width, the aligned subset shrinks from N toward 1 and the
// noise ratio follows.
func T6Combination(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T6: windowed combination statistics — scatter span vs aligned subset",
		"aggressors", "span", "members-aligned", "noise-ratio(C/A)", "combined-window")

	n := 8
	spans := []float64{0, 50, 150, 400, 1000, 4000} // picoseconds
	if cfg.Quick {
		n = 4
		spans = []float64{0, 150, 4000}
	}
	const width = 60 * units.Pico
	rng := rand.New(rand.NewSource(42))
	for _, spanPS := range spans {
		span := spanPS * units.Pico
		windows := make([]interval.Window, n)
		for i := range windows {
			lo := 0.0
			if span > 0 {
				lo = rng.Float64() * span
			}
			windows[i] = interval.New(lo, lo+width) //snavet:nanguard lo is rng.Float64() in [0,1) scaled by a finite constant span
		}
		g, err := workload.Star(workload.StarSpec{Windows: windows, CoupleC: 2 * units.Femto, GroundC: 20 * units.Femto})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(liberty.Generic())
		if err != nil {
			return nil, err
		}
		resC, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		resA, err := core.Analyze(b, core.Options{Mode: core.ModeAllAggressors, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		combC := resC.NoiseOf("v").Comb[core.KindLow]
		combA := resA.NoiseOf("v").Comb[core.KindLow]
		ratio := 0.0
		if combA.Peak > 0 {
			ratio = combC.Peak / combA.Peak
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			report.SI(span, "s"),
			fmt.Sprintf("%d/%d", len(combC.Members), n),
			fmt.Sprintf("%.2f", ratio),
			combC.Window.String(),
		)
	}
	return []*report.Table{t}, nil
}
