package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T9Correlation measures logic-correlation filtering on complementary
// aggressor pairs: each pair is one input fanned into a true and an
// inverted branch, both coupled to a quiet victim, all switching in the
// same window — so timing windows alone cannot separate them, but logic
// says the two branches of a pair never make the same edge together.
// Expected shape: without correlation the combination counts all 2·N
// branches; with correlation it caps at N (one branch per pair), halving
// the reported peak, with timing untouched.
func T9Correlation(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T9: logic correlation — complementary aggressor pairs",
		"pairs", "branches", "peak(no-corr)", "members", "peak(corr)", "members(corr)", "reduction")

	pairCounts := []int{1, 2, 4, 8}
	if cfg.Quick {
		pairCounts = []int{1, 3}
	}
	lib := liberty.Generic()
	for _, pairs := range pairCounts {
		g, err := workload.Differential(workload.DifferentialSpec{
			Pairs:   pairs,
			CoupleC: 3 * units.Femto,
			GroundC: 4 * units.Femto,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		run := func(corr bool) (core.Combined, error) {
			res, err := core.Analyze(b, core.Options{
				Mode:             core.ModeNoiseWindows,
				LogicCorrelation: corr,
				STA:              g.STAOptions(),
			})
			if err != nil {
				return core.Combined{}, err
			}
			return res.NoiseOf("v").Comb[core.KindLow], nil
		}
		plain, err := run(false)
		if err != nil {
			return nil, err
		}
		corr, err := run(true)
		if err != nil {
			return nil, err
		}
		reduction := "-"
		if plain.Peak > 0 {
			reduction = report.Percent(1 - corr.Peak/plain.Peak)
		}
		t.AddRow(
			fmt.Sprintf("%d", pairs),
			fmt.Sprintf("%d", 2*pairs),
			report.SI(plain.Peak, "V"),
			memberSummary(plain.Members),
			report.SI(corr.Peak, "V"),
			memberSummary(corr.Members),
			reduction,
		)
	}
	return []*report.Table{t}, nil
}

func memberSummary(members []string) string {
	if len(members) <= 4 {
		return strings.Join(members, "+")
	}
	return fmt.Sprintf("%d members", len(members))
}
