package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T4Convergence measures the propagation fixpoint iteration: how many
// passes windowed noise analysis needs on deep fabrics with reconvergence
// and on strongly coupled buses whose glitches propagate several stages.
// Expected shape: convergence in a handful of passes (sub-unity noise
// transfer gain makes propagation a contraction), insensitive to design
// size.
func T4Convergence(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T4: propagation fixpoint convergence",
		"design", "nets", "couplings", "propagated-events", "iterations", "converged")

	type gen struct {
		name string
		g    *workload.Generated
	}
	var gens []gen

	fabSpecs := []workload.FabricSpec{
		{Width: 10, Levels: 6, CoupleC: 6 * units.Femto, CouplingDensity: 3, GroundC: 1 * units.Femto, Seed: 5},
		{Width: 16, Levels: 12, CoupleC: 6 * units.Femto, CouplingDensity: 3, GroundC: 1 * units.Femto, Seed: 6},
		{Width: 24, Levels: 16, CoupleC: 6 * units.Femto, CouplingDensity: 3, GroundC: 1 * units.Femto, Seed: 7},
	}
	if cfg.Quick {
		fabSpecs = fabSpecs[:1]
	}
	for _, fs := range fabSpecs {
		g, err := workload.Fabric(fs)
		if err != nil {
			return nil, err
		}
		gens = append(gens, gen{fmt.Sprintf("fabric%dx%d", fs.Width, fs.Levels), g})
	}
	depths := []int{4, 8, 16}
	if cfg.Quick {
		depths = []int{4}
	}
	for _, depth := range depths {
		g, err := workload.Chain(workload.ChainSpec{Depth: depth, CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto})
		if err != nil {
			return nil, err
		}
		gens = append(gens, gen{fmt.Sprintf("chain%d", depth), g})
	}

	lib := liberty.Generic()
	for _, ge := range gens {
		b, err := ge.g.Bind(lib)
		if err != nil {
			return nil, err
		}
		res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: ge.g.STAOptions()})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			ge.name,
			fmt.Sprintf("%d", b.Net.NumNets()),
			fmt.Sprintf("%d", res.Stats.AggressorPairs),
			fmt.Sprintf("%d", res.Stats.Propagated),
			fmt.Sprintf("%d", res.Stats.Iterations),
			fmt.Sprintf("%v", res.Stats.Converged),
		)
	}
	return []*report.Table{t}, nil
}
