package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"A1", "A2", "A3", "F1", "F2", "F3", "T1", "T10", "T11", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("T99", Config{Quick: true}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestAllQuick(t *testing.T) {
	tables, err := All(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) < len(Index) {
		t.Fatalf("tables = %d, want at least %d", len(tables), len(Index))
	}
	for _, tb := range tables {
		if tb.Title == "" || len(tb.Columns) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("empty table: %+v", tb)
		}
	}
}

func TestT1ModeOrdering(t *testing.T) {
	tables, err := T1Pessimism(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, c := range tb.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("no column %q", name)
		return -1
	}
	vi, mi, di := col("violations"), col("mode"), col("design")
	// Group rows by design; the classical row (emitted first) bounds the
	// windowed rows.
	byDesign := map[string][]int{}
	order := map[string][]string{}
	for _, row := range tb.Rows {
		n, err := strconv.Atoi(row[vi])
		if err != nil {
			t.Fatalf("violations cell %q", row[vi])
		}
		byDesign[row[di]] = append(byDesign[row[di]], n)
		order[row[di]] = append(order[row[di]], row[mi])
	}
	for design, vs := range byDesign {
		for i := 1; i < len(vs); i++ {
			if vs[i] > vs[0] {
				t.Errorf("%s: windowed violations %v exceed classical (modes %v)", design, vs, order[design])
			}
		}
	}
}

func TestT2ModelConservative(t *testing.T) {
	tables, err := T2Accuracy(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	ci := -1
	for i, c := range tb.Columns {
		if c == "conservative" {
			ci = i
		}
	}
	for _, row := range tb.Rows {
		if row[ci] != "true" {
			t.Errorf("non-conservative row: %v", row)
		}
	}
}

func TestF1WindowedCollapsesAtLargeOffset(t *testing.T) {
	tables, err := F1Alignment(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var mi int
	for i, c := range tb.Columns {
		if c == "members" {
			mi = i
		}
	}
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if first[mi] != "2" {
		t.Errorf("zero offset members = %s, want 2", first[mi])
	}
	if last[mi] != "1" {
		t.Errorf("far offset members = %s, want 1", last[mi])
	}
}

func TestF2PeaksAttenuate(t *testing.T) {
	tables, err := F2Propagation(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var pi int
	for i, c := range tb.Columns {
		if c == "peak" {
			pi = i
		}
	}
	// First stage must be the strongest.
	if len(tb.Rows) < 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if !strings.Contains(tb.Rows[0][pi], "V") {
		t.Fatalf("peak cell %q", tb.Rows[0][pi])
	}
}

func TestT4Converges(t *testing.T) {
	tables, err := T4Convergence(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var ci int
	for i, c := range tb.Columns {
		if c == "converged" {
			ci = i
		}
	}
	for _, row := range tb.Rows {
		if row[ci] != "true" {
			t.Errorf("non-converged run: %v", row)
		}
	}
}

func TestT5FilteringConservative(t *testing.T) {
	tables, err := T5Filtering(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var ci int
	for i, c := range tb.Columns {
		if c == "conservative" {
			ci = i
		}
	}
	for i, row := range tb.Rows {
		if i == 0 {
			continue // baseline row
		}
		if row[ci] != "true" {
			t.Errorf("filtering lost noise: %v", row)
		}
	}
}

func TestT7WindowedBoundedByClassical(t *testing.T) {
	tables, err := T7DeltaDelay(Config{Quick: false})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var ai, ci int
	for i, c := range tb.Columns {
		switch c {
		case "delta(all-aggr)":
			ai = i
		case "delta(noise-win)":
			ci = i
		}
	}
	sawEqual, sawZero := false, false
	for _, row := range tb.Rows {
		if row[ai] == row[ci] {
			sawEqual = true
		}
		if row[ci] == "0s" {
			sawZero = true
		}
	}
	if !sawEqual {
		t.Error("no offset where windowed delta matches classical (overlap band missing)")
	}
	if !sawZero {
		t.Error("no offset where windowed delta vanishes (separation missing)")
	}
}

func TestT6RatioShrinksWithSpan(t *testing.T) {
	tables, err := T6Combination(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	var ri int
	for i, c := range tb.Columns {
		if c == "noise-ratio(C/A)" {
			ri = i
		}
	}
	first, err1 := strconv.ParseFloat(tb.Rows[0][ri], 64)
	last, err2 := strconv.ParseFloat(tb.Rows[len(tb.Rows)-1][ri], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("ratio cells: %v %v", err1, err2)
	}
	if !(last < first) {
		t.Errorf("ratio did not shrink: first %g last %g", first, last)
	}
	if first < 0.95 {
		t.Errorf("zero-span ratio = %g, want ~1", first)
	}
}
