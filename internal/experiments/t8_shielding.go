package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T8Shielding sweeps shield insertion density on a staggered bus and
// reports how the two pessimism-reduction levers — timing information
// (noise windows) and physical repair (shields) — trade off. Expected
// shape: shields monotonically cut noise in both modes; at every density
// the windowed analysis reports less noise than the classical one, so a
// noise budget is met with fewer shields — the practical payoff of
// removing false pessimism before spending routing resources.
func T8Shielding(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T8: shield insertion vs analysis policy",
		"shield-every", "shields", "mode", "violations", "total-noise", "worst-victim")

	bits := 24
	densities := []int{0, 8, 4, 2, 1}
	if cfg.Quick {
		bits = 12
		densities = []int{0, 4, 1}
	}
	lib := liberty.Generic()
	for _, every := range densities {
		g, err := workload.Bus(workload.BusSpec{
			Bits: bits, Segs: 2,
			CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
			WindowSep: 250 * units.Pico, WindowWidth: 80 * units.Pico,
			ShieldEvery: every,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		shields := 0
		if every > 0 {
			shields = (bits - 1) / every
		}
		for _, mode := range []core.Mode{core.ModeAllAggressors, core.ModeNoiseWindows} {
			res, err := core.Analyze(b, core.Options{Mode: mode, STA: g.STAOptions()})
			if err != nil {
				return nil, err
			}
			worst := 0.0
			for _, nn := range res.Nets {
				if p := nn.WorstPeak(); p > worst {
					worst = p
				}
			}
			t.AddRow(
				fmt.Sprintf("%d", every),
				fmt.Sprintf("%d", shields),
				mode.String(),
				fmt.Sprintf("%d", len(res.Violations)),
				report.SI(res.TotalNoise(), "V"),
				report.SI(worst, "V"),
			)
		}
	}
	return []*report.Table{t}, nil
}
