// Package experiments regenerates every table and figure of the
// (reconstructed) evaluation. Each experiment returns report tables whose
// rows are the series the paper plots; cmd/noisebench prints them and the
// root bench_test.go wraps them as testing.B benchmarks.
//
// The experiment IDs, workloads, and expected result shapes are indexed in
// DESIGN.md §4 and the measured outcomes are recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/report"
)

// Config scales experiments between test-suite speed and full fidelity.
type Config struct {
	// Quick shrinks sweeps so the whole suite runs in seconds (used by
	// unit tests); the full runs back EXPERIMENTS.md.
	Quick bool
	// Ctx cancels a sweep between experiments (nil = background). Long
	// full-fidelity runs check it so noisebench -timeout can stop a
	// stuck sweep instead of hanging CI.
	Ctx context.Context
}

// Context returns the configured context, defaulting to background.
func (c Config) Context() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// Runner is one experiment's entry point.
type Runner func(Config) ([]*report.Table, error)

// Index maps experiment IDs (as used by `noisebench -run`) to runners.
var Index = map[string]Runner{
	"A1":  A1Widening,
	"A2":  A2Multiphase,
	"A3":  A3Corners,
	"T1":  T1Pessimism,
	"T2":  T2Accuracy,
	"T3":  T3Runtime,
	"T4":  T4Convergence,
	"T5":  T5Filtering,
	"T6":  T6Combination,
	"T7":  T7DeltaDelay,
	"T8":  T8Shielding,
	"T9":  T9Correlation,
	"T10": T10Iteration,
	"T11": T11MonteCarlo,
	"F1":  F1Alignment,
	"F2":  F2Propagation,
	"F3":  F3Waveform,
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(Index))
	for id := range Index {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) ([]*report.Table, error) {
	r, ok := Index[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	if err := cfg.Context().Err(); err != nil {
		return nil, err
	}
	return r(cfg)
}

// All executes every experiment in ID order, stopping at the first
// cancellation or failure.
func All(cfg Config) ([]*report.Table, error) {
	var out []*report.Table
	for _, id := range IDs() {
		if err := cfg.Context().Err(); err != nil {
			return nil, err
		}
		ts, err := Run(id, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}
