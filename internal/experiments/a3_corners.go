package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// A3Corners sweeps process corners (library scaling plus OCV derates) over
// one bus and reports noise and violations per corner under the windowed
// policy. Expected shape: the slow corner is the noise-critical one —
// weaker holding drivers (higher R_h) grow every glitch even though its
// slower aggressor edges push the other way — and derates only widen
// windows, so the same corner ordering holds for violations. The fast
// corner gains margin on both axes.
func A3Corners(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"A3 (ablation): process corners — library scaling × OCV derates",
		"corner", "vdd", "mode", "violations", "total-noise", "worst-victim", "worst-slack")

	type corner struct {
		name                    string
		delayK, resK, vddK      float64
		earlyDerate, lateDerate float64
	}
	corners := []corner{
		{"fast", 0.85, 0.8, 1.1, 1, 1},
		{"typical", 1, 1, 1, 1, 1},
		{"slow", 1.2, 1.3, 0.9, 1, 1},
		{"slow+ocv", 1.2, 1.3, 0.9, 0.92, 1.08},
	}
	if cfg.Quick {
		corners = []corner{corners[1], corners[2]}
	}

	g, err := workload.Bus(workload.BusSpec{
		Bits: 16, Segs: 2,
		CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
		WindowSep: 250 * units.Pico, WindowWidth: 80 * units.Pico,
		Driver: "INV_X1",
	})
	if err != nil {
		return nil, err
	}
	base := liberty.Generic()
	for _, c := range corners {
		lib := base
		if c.name != "typical" {
			lib = liberty.Scale(base, c.name, c.delayK, c.resK, c.vddK)
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		staOpts := sta.Options{
			InputTiming: g.Inputs,
			EarlyDerate: c.earlyDerate,
			LateDerate:  c.lateDerate,
		}
		res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: staOpts})
		if err != nil {
			return nil, err
		}
		worst := 0.0
		for _, nn := range res.Nets {
			if p := nn.WorstPeak(); p > worst {
				worst = p
			}
		}
		slack := "-"
		if len(res.Slacks) > 0 {
			slack = report.SI(res.WorstSlack(), "V")
		}
		t.AddRow(
			c.name,
			fmt.Sprintf("%.2f", lib.Vdd),
			core.ModeNoiseWindows.String(),
			fmt.Sprintf("%d", len(res.Violations)),
			report.SI(res.TotalNoise(), "V"),
			report.SI(worst, "V"),
			slack,
		)
	}
	return []*report.Table{t}, nil
}
