package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T1Pessimism reproduces the paper's headline table: the number of noise
// violations and the aggregate noise reported under the three combination
// policies, across coupled buses (staggered windows) and random logic
// fabrics. Expected shape: both windowed analyses remove a large fraction
// of the classical pessimism whenever windows are staggered; the sound
// noise-window analysis (tent occupancy) sits at or slightly above the
// classical timing-window baseline, which is optimistic against partial
// tail overlap (see T11/A1).
func T1Pessimism(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T1: pessimism reduction — violations and total noise by combination policy",
		"design", "nets", "couplings", "mode", "violations", "total-noise", "worst-victim", "vs-all-aggr")

	sizes := []int{16, 32, 64}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	lib := liberty.Generic()
	modes := []core.Mode{core.ModeAllAggressors, core.ModeTimingWindows, core.ModeNoiseWindows}

	for _, bits := range sizes {
		g, err := workload.Bus(workload.BusSpec{
			Bits: bits, Segs: 2,
			CoupleC: 8 * units.Femto, GroundC: 1 * units.Femto,
			// 250 ps stagger: a victim's two aggressors switch 500 ps
			// apart, comfortably beyond the ~300 ps noise-window span
			// set by the (slow) aggressor slew into the coupled load.
			WindowSep: 250 * units.Pico, WindowWidth: 80 * units.Pico,
		})
		if err != nil {
			return nil, err
		}
		if err := runT1Design(t, g, lib, fmt.Sprintf("bus%d", bits), modes); err != nil {
			return nil, err
		}
	}

	fabrics := []workload.FabricSpec{
		{Width: 12, Levels: 8, CoupleC: 5 * units.Femto, CouplingDensity: 2.5, GroundC: 1.5 * units.Femto, Seed: 1},
		{Width: 20, Levels: 12, CoupleC: 5 * units.Femto, CouplingDensity: 2.5, GroundC: 1.5 * units.Femto, Seed: 2},
	}
	if cfg.Quick {
		fabrics = fabrics[:1]
		fabrics[0].Width, fabrics[0].Levels = 8, 5
	}
	for _, fs := range fabrics {
		g, err := workload.Fabric(fs)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("fabric%dx%d", fs.Width, fs.Levels)
		if err := runT1Design(t, g, lib, name, modes); err != nil {
			return nil, err
		}
	}
	return []*report.Table{t}, nil
}

func runT1Design(t *report.Table, g *workload.Generated, lib *liberty.Library, name string, modes []core.Mode) error {
	b, err := g.Bind(lib)
	if err != nil {
		return err
	}
	var baseViol int
	var baseNoise float64
	for i, mode := range modes {
		res, err := core.Analyze(b, core.Options{Mode: mode, STA: g.STAOptions()})
		if err != nil {
			return err
		}
		worst := 0.0
		for _, nn := range res.Nets {
			if p := nn.WorstPeak(); p > worst {
				worst = p
			}
		}
		nViol := len(res.Violations)
		noise := res.TotalNoise()
		reduction := "-"
		if i == 0 {
			baseViol, baseNoise = nViol, noise
		} else if baseViol > 0 {
			reduction = fmt.Sprintf("-%d viol, %s noise",
				baseViol-nViol, report.Percent(1-noise/baseNoise))
		} else if baseNoise > 0 {
			reduction = report.Percent(1-noise/baseNoise) + " noise"
		}
		t.AddRow(
			name,
			fmt.Sprintf("%d", b.Net.NumNets()),
			fmt.Sprintf("%d", res.Stats.AggressorPairs),
			mode.String(),
			fmt.Sprintf("%d", nViol),
			report.SI(noise, "V"),
			report.SI(worst, "V"),
			reduction,
		)
	}
	return nil
}
