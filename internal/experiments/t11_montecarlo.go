package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T11MonteCarlo measures how tight the windowed bound is: aggressor edge
// times are sampled uniformly inside their switching windows, the combined
// glitch at the victim is evaluated for each sample (triangular templates,
// the same shapes the analyzer reasons about), and the empirical maximum
// and quantiles are compared against the windowed and classical static
// bounds. Expected shape: windowed bound ≥ empirical max ≥ p99 ≫ median
// (alignment is rare under random arrival), and the windowed bound is far
// tighter than the classical one whenever the windows stagger.
func T11MonteCarlo(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T11: Monte Carlo alignment sampling vs static bounds",
		"stagger", "samples", "median", "p99", "max-sampled", "windowed-bound", "classical-bound", "sound")

	staggers := []float64{0, 100, 300} // ps
	samples := 20000
	if cfg.Quick {
		staggers = []float64{0, 300}
		samples = 2000
	}
	lib := liberty.Generic()
	rng := rand.New(rand.NewSource(99))
	const nAgg = 4
	for _, sepPS := range staggers {
		sep := sepPS * units.Pico
		windows := make([]interval.Window, nAgg)
		for i := range windows {
			lo := float64(i) * sep
			windows[i] = interval.New(lo, lo+60*units.Pico) //snavet:nanguard lo is i*sep over a literal table of finite stagger values
		}
		g, err := workload.Star(workload.StarSpec{
			Windows: windows,
			CoupleC: 3 * units.Femto,
			GroundC: 10 * units.Femto,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		resC, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		resA, err := core.Analyze(b, core.Options{Mode: core.ModeAllAggressors, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		nn := resC.NoiseOf("v")
		events := nn.Events[core.KindLow]
		if len(events) != nAgg {
			return nil, fmt.Errorf("experiments: expected %d events, have %d", nAgg, len(events))
		}

		// Sample: each glitch's peak instant uniform in its noise window;
		// the sample's combined peak is the max over time of the summed
		// triangular templates.
		peaks := make([]float64, samples)
		for s := 0; s < samples; s++ {
			var best float64
			// Evaluate the sum at each glitch's sampled peak instant —
			// for triangle sums the maximum lies at one of the peaks.
			times := make([]float64, len(events))
			for i, e := range events {
				times[i] = e.Window.Lo + rng.Float64()*e.Window.Length()
			}
			for _, t0 := range times {
				var sum float64
				for i, e := range events {
					d := t0 - times[i]
					if d < 0 {
						d = -d
					}
					if d < e.Width {
						sum += e.Peak * (1 - d/e.Width)
					}
				}
				if sum > best {
					best = sum
				}
			}
			peaks[s] = best
		}
		sort.Float64s(peaks)
		bound := nn.Comb[core.KindLow].Peak
		classical := resA.NoiseOf("v").Comb[core.KindLow].Peak
		maxSampled := peaks[len(peaks)-1]
		t.AddRow(
			report.SI(sep, "s"),
			fmt.Sprintf("%d", samples),
			report.SI(peaks[len(peaks)/2], "V"),
			report.SI(peaks[len(peaks)*99/100], "V"),
			report.SI(maxSampled, "V"),
			report.SI(bound, "V"),
			report.SI(classical, "V"),
			fmt.Sprintf("%v", bound >= maxSampled-1e-9),
		)
	}
	return []*report.Table{t}, nil
}
