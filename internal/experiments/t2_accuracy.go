package experiments

import (
	"fmt"

	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/units"
)

// T2Accuracy validates the analytical glitch model against the transient
// MNA simulator over coupling-ratio and slew sweeps. Expected shape: the
// model tracks the golden peak within ~10–20 % and errs on the conservative
// (high) side; the Devgan bound is always an upper bound and is loose for
// fast edges.
func T2Accuracy(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T2: glitch model accuracy vs transient simulation",
		"Cx/Cv", "slew", "model-peak", "golden-peak", "rel-err", "devgan-bound", "conservative")

	ratios := []float64{0.05, 0.1, 0.2, 0.3, 0.45}
	slews := []float64{10, 20, 50, 100, 200} // picoseconds
	if cfg.Quick {
		ratios = []float64{0.1, 0.3}
		slews = []float64{20, 100}
	}

	const (
		victimC = 20 * units.Femto
		holdRes = 3000.0
		vdd     = 1.2
	)
	for _, ratio := range ratios {
		cx := ratio * victimC
		for _, slewPS := range slews {
			slew := slewPS * units.Pico
			ctx := &noise.Context{
				Victim:    "v",
				HoldRes:   holdRes,
				VictimC:   victimC,
				Couplings: []noise.Coupling{{Aggressor: "a", CoupleC: cx}},
			}
			p := ctx.ParamsFor(&ctx.Couplings[0], slew, vdd)
			if err := p.Validate(); err != nil {
				return nil, err
			}
			model := p.Peak()
			golden, err := noise.SimulateCluster(ctx, []noise.ClusterAggressor{
				{Coupling: &ctx.Couplings[0], Slew: slew, Rise: true},
			}, 1, vdd)
			if err != nil {
				return nil, err
			}
			relErr := units.RelErr(model, golden.Peak, 1e-3)
			t.AddRow(
				fmt.Sprintf("%.2f", ratio),
				report.SI(slew, "s"),
				report.SI(model, "V"),
				report.SI(golden.Peak, "V"),
				report.Percent(relErr),
				report.SI(p.DevganBound(), "V"),
				fmt.Sprintf("%v", model >= golden.Peak*0.98),
			)
		}
	}

	// Width accuracy on a second table: the immunity check depends on
	// width as well as peak.
	tw := report.NewTable(
		"T2b: glitch width accuracy vs transient simulation",
		"Cx/Cv", "slew", "model-width", "golden-width", "rel-err")
	for _, ratio := range ratios {
		cx := ratio * victimC
		for _, slewPS := range slews {
			slew := slewPS * units.Pico
			ctx := &noise.Context{
				Victim:    "v",
				HoldRes:   holdRes,
				VictimC:   victimC,
				Couplings: []noise.Coupling{{Aggressor: "a", CoupleC: cx}},
			}
			p := ctx.ParamsFor(&ctx.Couplings[0], slew, vdd)
			m := p.Metrics()
			golden, err := noise.SimulateCluster(ctx, []noise.ClusterAggressor{
				{Coupling: &ctx.Couplings[0], Slew: slew, Rise: true},
			}, 1, vdd)
			if err != nil {
				return nil, err
			}
			tw.AddRow(
				fmt.Sprintf("%.2f", ratio),
				report.SI(slew, "s"),
				report.SI(m.Width, "s"),
				report.SI(golden.Width, "s"),
				report.Percent(units.RelErr(m.Width, golden.Width, 1e-13)),
			)
		}
	}
	return []*report.Table{t, tw}, nil
}
