package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T3Runtime measures analysis wall time and scaling across design sizes
// for all three modes, plus the parallel preparation path. Expected shape:
// near-linear growth in the number of couplings, window bookkeeping adding
// a modest constant factor over the all-aggressors baseline (the windowed
// scan-line is O(n log n) in the events per victim). The workers column is
// reported honestly: with closed-form glitch metrics the per-victim
// preparation is light on these workloads, so the pool's scheduling
// overhead roughly cancels its gain — it exists for designs whose contexts
// are expensive (very high coupling counts per victim).
func T3Runtime(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T3: runtime scaling by design size and mode",
		"design", "nets", "couplings", "mode", "workers", "runtime", "per-coupling")

	sizes := []int{16, 32, 64, 128}
	if cfg.Quick {
		sizes = []int{8, 16}
	}
	lib := liberty.Generic()
	for _, bits := range sizes {
		g, err := workload.Bus(workload.BusSpec{
			Bits: bits, Segs: 2,
			WindowSep: 60 * units.Pico, WindowWidth: 80 * units.Pico,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		type variant struct {
			mode    core.Mode
			workers int
		}
		variants := []variant{
			{core.ModeAllAggressors, 1},
			{core.ModeTimingWindows, 1},
			{core.ModeNoiseWindows, 1},
			{core.ModeNoiseWindows, 4},
		}
		for _, v := range variants {
			opts := core.Options{Mode: v.mode, Workers: v.workers, STA: g.STAOptions()}
			// Warm once (bind caches RC analyses), then time.
			if _, err := core.Analyze(b, opts); err != nil {
				return nil, err
			}
			reps := 3
			start := time.Now()
			var pairs int
			for r := 0; r < reps; r++ {
				res, err := core.Analyze(b, opts)
				if err != nil {
					return nil, err
				}
				pairs = res.Stats.AggressorPairs
			}
			el := time.Since(start) / time.Duration(reps)
			per := time.Duration(0)
			if pairs > 0 {
				per = el / time.Duration(pairs)
			}
			t.AddRow(
				fmt.Sprintf("bus%d", bits),
				fmt.Sprintf("%d", b.Net.NumNets()),
				fmt.Sprintf("%d", pairs),
				v.mode.String(),
				fmt.Sprintf("%d", v.workers),
				el.String(),
				per.String(),
			)
		}
	}
	return []*report.Table{t}, nil
}
