package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// T10Iteration runs the joint noise–timing loop: crosstalk delta-delays
// widen switching windows, wider windows change the noise picture, and the
// outer iteration repeats until the per-net window padding stops growing.
// Expected shape: convergence in a small number of rounds on every design,
// with padding bounded by the worst single-edge push-out and the final
// noise slightly above the first round's (wider windows can only add
// overlap).
func T10Iteration(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T10: noise–timing iteration to fixpoint",
		"design", "rounds", "converged", "max-padding", "worst-delta", "noise-r1-vs-final")

	type gen struct {
		name string
		g    *workload.Generated
	}
	var gens []gen
	busBits := []int{8, 16, 32}
	if cfg.Quick {
		busBits = []int{8}
	}
	for _, bits := range busBits {
		g, err := workload.Bus(workload.BusSpec{
			Bits: bits, Segs: 2,
			CoupleC: 6 * units.Femto, GroundC: 2 * units.Femto,
			WindowSep: 40 * units.Pico, WindowWidth: 80 * units.Pico,
		})
		if err != nil {
			return nil, err
		}
		gens = append(gens, gen{fmt.Sprintf("bus%d", bits), g})
	}
	if !cfg.Quick {
		g, err := workload.Fabric(workload.FabricSpec{
			Width: 12, Levels: 8,
			CoupleC: 5 * units.Femto, CouplingDensity: 2.5, Seed: 4,
		})
		if err != nil {
			return nil, err
		}
		gens = append(gens, gen{"fabric12x8", g})
	}

	lib := liberty.Generic()
	for _, ge := range gens {
		b, err := ge.g.Bind(lib)
		if err != nil {
			return nil, err
		}
		opts := core.Options{Mode: core.ModeNoiseWindows, STA: sta.Options{InputTiming: ge.g.Inputs}}
		first, err := core.Analyze(b, opts)
		if err != nil {
			return nil, err
		}
		iter, err := core.AnalyzeIterative(b, opts, 0)
		if err != nil {
			return nil, err
		}
		ratio := 1.0
		if first.TotalNoise() > 0 {
			ratio = iter.Noise.TotalNoise() / first.TotalNoise()
		}
		t.AddRow(
			ge.name,
			fmt.Sprintf("%d", iter.Rounds),
			fmt.Sprintf("%v", iter.Converged),
			report.SI(iter.MaxPadding(), "s"),
			report.SI(iter.Delay.WorstDelta(), "s"),
			fmt.Sprintf("%.3f", ratio),
		)
	}
	return []*report.Table{t}, nil
}
