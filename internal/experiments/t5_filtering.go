package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/workload"
)

// T5Filtering sweeps the aggressor coupling-ratio filter threshold on a
// bus and reports kept couplings, the worst victim peak (with the filtered
// capacitance lumped into the virtual aggressor), the error that lumping
// introduces relative to the unfiltered run, and the runtime. Expected
// shape: runtime falls with the threshold while the virtual-aggressor
// lumping keeps the peak error small and strictly conservative (peak never
// drops below the unfiltered value).
func T5Filtering(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T5: aggressor filtering threshold sweep (virtual lumping on)",
		"threshold", "kept", "filtered", "worst-victim", "peak-err", "conservative", "runtime")

	// A fabric's random coupling sprinkle gives nets anywhere from zero
	// to many aggressors with widely varying C_x/C_v ratios, so the
	// threshold sweep actually separates strong from weak couplings
	// (a uniform bus would filter all-or-nothing).
	spec := workload.FabricSpec{
		Width: 20, Levels: 12,
		CoupleC: 4 * units.Femto, CouplingDensity: 3,
		GroundC: 2 * units.Femto, Seed: 9,
	}
	if cfg.Quick {
		spec.Width, spec.Levels = 10, 6
	}
	g, err := workload.Fabric(spec)
	if err != nil {
		return nil, err
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		return nil, err
	}

	thresholds := []float64{0, 0.02, 0.05, 0.1, 0.2, 0.5}
	if cfg.Quick {
		thresholds = []float64{0, 0.1, 0.5}
	}
	var basePeak float64
	for i, th := range thresholds {
		opts := core.Options{Mode: core.ModeNoiseWindows, FilterThreshold: th, STA: g.STAOptions()}
		if _, err := core.Analyze(b, opts); err != nil { // warm caches
			return nil, err
		}
		start := time.Now()
		res, err := core.Analyze(b, opts)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		worst := 0.0
		for _, nn := range res.Nets {
			if p := nn.WorstPeak(); p > worst {
				worst = p
			}
		}
		errStr, conservative := "-", "-"
		if i == 0 {
			basePeak = worst
		} else if basePeak > 0 {
			errStr = report.Percent(units.RelErr(worst, basePeak, 1e-3))
			conservative = fmt.Sprintf("%v", worst >= basePeak-1e-9)
		}
		t.AddRow(
			fmt.Sprintf("%.2f", th),
			fmt.Sprintf("%d", res.Stats.AggressorPairs-res.Stats.Filtered),
			fmt.Sprintf("%d", res.Stats.Filtered),
			report.SI(worst, "V"),
			errStr,
			conservative,
			el.String(),
		)
	}
	return []*report.Table{t}, nil
}
