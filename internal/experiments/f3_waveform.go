package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/units"
	"repro/internal/waveform"
	"repro/internal/workload"
)

// F3Waveform validates the combined-glitch waveform reconstruction
// (core.NetNoise.CombinedWaveform, triangular member templates summed at
// the alignment instant) against the MNA golden simulation of the same
// aligned cluster. Expected shape: the reconstructed peak matches the
// analytical combined peak, stays conservative (at or above golden), and
// the half-peak width tracks the golden width within the template's
// fidelity (tens of percent — the triangle is a reporting shape, not a
// solver).
func F3Waveform(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"F3: combined-waveform reconstruction vs golden simulation",
		"aggressors", "recon-peak", "golden-peak", "peak-err", "recon-width", "golden-width", "conservative")

	counts := []int{1, 2, 3, 4}
	if cfg.Quick {
		counts = []int{1, 3}
	}
	lib := liberty.Generic()
	for _, n := range counts {
		windows := make([]interval.Window, n)
		for i := range windows {
			windows[i] = interval.New(0, 60*units.Pico)
		}
		g, err := workload.Star(workload.StarSpec{
			Windows: windows,
			CoupleC: 3 * units.Femto,
			GroundC: 12 * units.Femto,
		})
		if err != nil {
			return nil, err
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		res, err := core.Analyze(b, core.Options{Mode: core.ModeNoiseWindows, STA: g.STAOptions()})
		if err != nil {
			return nil, err
		}
		nn := res.NoiseOf("v")
		recon := waveform.MeasureGlitch(nn.CombinedWaveform(core.KindLow))

		// Golden: the same cluster with every aggressor's rising edge
		// aligned, using the STA slews the analysis saw.
		ctx, err := noise.BuildContext(b, b.Net.FindNet("v"))
		if err != nil {
			return nil, err
		}
		var aggs []noise.ClusterAggressor
		for i := range ctx.Couplings {
			slew := res.STA.TimingOfNet(ctx.Couplings[i].Aggressor).SlewRise.Min
			if math.IsInf(slew, 0) || slew <= 0 {
				return nil, fmt.Errorf("experiments: no slew for %s", ctx.Couplings[i].Aggressor)
			}
			aggs = append(aggs, noise.ClusterAggressor{
				Coupling: &ctx.Couplings[i],
				Slew:     slew,
				Rise:     true,
			})
		}
		drive := b.DriveRes(b.Net.FindNet(ctx.Couplings[0].Aggressor))
		golden, err := noise.SimulateCluster(ctx, aggs, drive, lib.Vdd)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			report.SI(recon.Peak, "V"),
			report.SI(golden.Peak, "V"),
			report.Percent(units.RelErr(recon.Peak, golden.Peak, 1e-3)),
			report.SI(recon.Width, "s"),
			report.SI(golden.Width, "s"),
			fmt.Sprintf("%v", recon.Peak >= golden.Peak*0.98),
		)
	}
	return []*report.Table{t}, nil
}
