package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/report"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// T7DeltaDelay applies the window machinery to the companion SI analysis:
// crosstalk-induced delay change on switching victims. The victim's own
// switching window is the anchor; opposing aggressors only disturb the
// edge when their noise windows overlap it. Expected shape: the classical
// estimate is flat across the sweep, while the windowed delta is nonzero
// only in the offset band where the aggressors' noise windows (their input
// windows plus driver delay and edge time) actually cross the victim's
// post-driver switching window — and there it equals the classical value.
func T7DeltaDelay(cfg Config) ([]*report.Table, error) {
	t := report.NewTable(
		"T7: crosstalk delta-delay — aggressor offset vs estimated push-out",
		"agg-offset", "delta(all-aggr)", "delta(noise-win)", "members", "victim-window")

	offsets := []float64{0, 100, 200, 400, 800, 2000} // ps
	if cfg.Quick {
		offsets = []float64{0, 400, 2000}
	}
	lib := liberty.Generic()
	for _, offPS := range offsets {
		off := offPS * units.Pico
		g, err := workload.Star(workload.StarSpec{
			Windows: []interval.Window{
				interval.New(off, off+60*units.Pico), //snavet:nanguard off enumerates a literal table of finite picosecond offsets
				interval.New(off, off+60*units.Pico), //snavet:nanguard off enumerates a literal table of finite picosecond offsets
			},
			CoupleC: 4 * units.Femto,
			GroundC: 8 * units.Femto,
		})
		if err != nil {
			return nil, err
		}
		// The victim switches at t≈0 regardless of the aggressors.
		slew := sta.Range{Min: 20 * units.Pico, Max: 25 * units.Pico}
		g.Inputs["i_v"] = &sta.Timing{
			Rise:     interval.SetOf(0, 60*units.Pico),
			Fall:     interval.SetOf(0, 60*units.Pico),
			SlewRise: slew,
			SlewFall: slew,
		}
		b, err := g.Bind(lib)
		if err != nil {
			return nil, err
		}
		run := func(mode core.Mode) (*core.DelayImpact, error) {
			res, err := core.AnalyzeDelay(b, core.Options{Mode: mode, STA: g.STAOptions()})
			if err != nil {
				return nil, err
			}
			return res.ImpactOn("v", true), nil
		}
		imA, err := run(core.ModeAllAggressors)
		if err != nil {
			return nil, err
		}
		imC, err := run(core.ModeNoiseWindows)
		if err != nil {
			return nil, err
		}
		deltaA, deltaC := 0.0, 0.0
		members := 0
		win := "-"
		if imA != nil {
			deltaA = imA.Delta
			win = imA.VictimWindow.String()
		}
		if imC != nil {
			deltaC = imC.Delta
			members = len(imC.Members)
		}
		t.AddRow(
			report.SI(off, "s"),
			report.SI(deltaA, "s"),
			report.SI(deltaC, "s"),
			fmt.Sprintf("%d", members),
			win,
		)
	}
	return []*report.Table{t}, nil
}
