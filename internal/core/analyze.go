package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/noise"
	"repro/internal/sta"
	"repro/internal/units"
)

// Options tunes an analysis run.
type Options struct {
	// Mode selects the combination policy (default ModeNoiseWindows).
	Mode Mode
	// Vdd overrides the library supply voltage when non-zero.
	Vdd float64
	// FilterThreshold drops couplings with C_x/C_v below it; the dropped
	// capacitance is lumped into a virtual always-on aggressor unless
	// DisableVirtual is set. Zero keeps every aggressor.
	FilterThreshold float64
	// DisableVirtual turns off the conservative lumping of filtered
	// couplings.
	DisableVirtual bool
	// NoPropagation disables noise propagation through gates (coupled
	// noise only).
	NoPropagation bool
	// MaxIter bounds the propagation fixpoint iteration (default 16).
	MaxIter int
	// Workers sets the number of goroutines used for the per-victim
	// context and coupled-event construction (the dominant cost on big
	// designs). 0 or 1 runs serially; results are identical either way
	// because victims are independent at that stage.
	Workers int
	// DefaultAggSlew is the aggressor edge rate assumed when timing gives
	// none (default 20 ps).
	DefaultAggSlew float64
	// HullWindows collapses set-valued (multi-phase) switching windows to
	// their single-window hull before deriving noise windows — the
	// approximation a tool without set support is forced into. Kept as
	// an ablation knob (experiment A2).
	HullWindows bool
	// LogicCorrelation enables mutual-exclusion filtering: aggressors
	// whose transitions are logically contradictory (both depending on
	// the same single primary input with opposite polarity, e.g. a
	// signal and its complement) are never combined. The combination
	// becomes a constrained maximum-overlap query.
	LogicCorrelation bool
	// Occupancy selects the combination semantics: OccupancyTent
	// (default, sound against partial waveform overlap), OccupancyPeak
	// (classical peak-window alignment), or OccupancyWiden (coarse
	// conservative plateau). Experiment A1 quantifies the three; T11
	// demonstrates why tent is the default.
	Occupancy Occupancy
	// FailSoft keeps the run alive when a single victim cannot be
	// analyzed: the failure is recorded as a Diag and the victim gets the
	// conservative full-rail fallback (combined noise pinned at Vdd over
	// an infinite window) instead of aborting the whole analysis. Off by
	// default: the historical fail-fast behaviour returns the first error.
	FailSoft bool
	// PrepareHook, when non-nil, runs at the start of every victim's
	// preparation. It exists for runtime fault injection in robustness
	// tests (see workload.RuntimeFaults): a hook may return an error,
	// panic, or block to simulate a malformed or pathological victim. Not
	// consulted on any other path.
	PrepareHook func(net string) error
	// RoundBudget bounds each round's wall clock in AnalyzeIterative;
	// a round exceeding it stops the loop with a Diverging diagnostic.
	// Zero means no budget.
	RoundBudget time.Duration
	// STA configures the underlying timing run.
	STA sta.Options
}

func (o *Options) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 16
	}
	if o.DefaultAggSlew <= 0 {
		o.DefaultAggSlew = 20 * units.Pico
	}
}

// analyzer carries per-run state.
type analyzer struct {
	b      *bind.Design
	opts   Options
	vdd    float64
	staRes *sta.Result
	ctxs   map[string]*noise.Context
	// coupled events are timing-dependent but iteration-invariant.
	coupled map[string]*[2][]Event
	// corr maps nets to their primary-input dependence for logic
	// correlation (nil when the option is off).
	corr  map[string]sourceMap
	stats Stats
	// degraded marks nets substituted with the full-rail fallback; diags
	// records why. Both are written serially (commit or fixpoint loop).
	degraded map[string]bool
	diags    []Diag
}

// newAnalyzer runs the shared setup — timing, victim ordering, context and
// coupled-event construction — used by both Analyze and AnalyzeDelay.
func newAnalyzer(ctx context.Context, b *bind.Design, opts Options) (*analyzer, []*netlist.Net, error) {
	opts.fill()
	a := &analyzer{
		b:        b,
		opts:     opts,
		vdd:      opts.Vdd,
		ctxs:     make(map[string]*noise.Context),
		coupled:  make(map[string]*[2][]Event),
		degraded: make(map[string]bool),
	}
	if a.vdd <= 0 {
		a.vdd = b.Lib.Vdd
	}
	staRes, err := sta.RunCtx(ctx, b, opts.STA)
	if err != nil {
		return nil, nil, err
	}
	a.staRes = staRes
	if opts.LogicCorrelation {
		a.corr = buildCorrelations(b)
	}

	order := a.victimOrder()
	if err := a.prepareAll(ctx, order); err != nil {
		return nil, nil, err
	}
	return a, order, nil
}

// safePrepare runs prepareNet with panics converted into errors, so one
// malformed victim (a corrupt RC tree, an unphysical parameter, an
// injected fault) surfaces as a per-net failure instead of crashing the
// whole engine.
func (a *analyzer) safePrepare(net *netlist.Net) (p *preparedNet, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: panic preparing net %s: %v", net.Name, r)
		}
	}()
	if h := a.opts.PrepareHook; h != nil {
		if err := h(net.Name); err != nil {
			return nil, err
		}
	}
	return a.prepareNet(net)
}

// prepareAll builds every victim's context and coupled events, optionally
// across Options.Workers goroutines. Victims are independent here, so the
// parallel and serial paths produce identical results. Cancellation is
// checked between victims; under fail-soft a per-net failure degrades
// that net, under fail-fast it stops the remaining workers promptly so an
// early error on a huge design does not keep preparing doomed work.
func (a *analyzer) prepareAll(ctx context.Context, order []*netlist.Net) error {
	workers := a.opts.Workers
	if workers <= 1 || len(order) < 2 {
		for _, net := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			p, err := a.safePrepare(net)
			if err != nil {
				if !a.opts.FailSoft {
					return err
				}
				a.degradeNet(net.Name, StagePrepare, err)
				continue
			}
			a.commitPrepared(net, p)
		}
		return nil
	}
	if workers > len(order) {
		workers = len(order)
	}
	prepared := make([]*preparedNet, len(order))
	errs := make([]error, len(order))
	var stop atomic.Bool
	var wg sync.WaitGroup
	var next int64 = -1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(order) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				p, err := a.safePrepare(order[i])
				if err != nil {
					errs[i] = err
					// Fail-soft keeps the other victims coming; fail-fast
					// drains the queue so the run aborts promptly.
					if !a.opts.FailSoft {
						stop.Store(true)
						return
					}
					continue
				}
				prepared[i] = p
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Commit serially in victim order so maps, stats, and diagnostics are
	// deterministic regardless of worker scheduling.
	for i, net := range order {
		if errs[i] != nil {
			if !a.opts.FailSoft {
				return errs[i]
			}
			a.degradeNet(net.Name, StagePrepare, errs[i])
			continue
		}
		if prepared[i] == nil {
			// Only reachable when a fail-fast stop drained the queue, and
			// then the error above has already returned.
			return fmt.Errorf("core: net %s was not prepared", net.Name)
		}
		a.commitPrepared(net, prepared[i])
	}
	return nil
}

// degradedWidth is the glitch width assumed for the full-rail fallback: a
// wide glitch, because immunity allowances only shrink with width, so the
// substituted bound stays conservative for any receiver.
const degradedWidth = 1 * units.Nano

// fullRailEvent is the conservative fallback glitch for a victim the
// engine could not analyze: the full supply rail, achievable at any time.
func (a *analyzer) fullRailEvent() Event {
	return Event{Peak: a.vdd, Width: degradedWidth, Window: interval.Infinite(), Source: "degraded"}
}

// fullRailComb is the combined form of the fallback, used when a net
// degrades after preparation (evaluate stage).
func (a *analyzer) fullRailComb() Combined {
	e := a.fullRailEvent()
	return Combined{
		Peak:         e.Peak,
		Width:        e.Width,
		Window:       e.Window,
		At:           0,
		Members:      []string{e.Source},
		MemberEvents: []Event{e},
	}
}

// degradeNet substitutes the conservative fallback for one victim and
// records the diagnostic. The net's receivers are not individually
// checked (its noise context may not exist); the Diag plus the full-rail
// bound mark the whole net as failing, which downstream propagation and
// the exit-code policy treat conservatively.
func (a *analyzer) degradeNet(net, stage string, err error) {
	if a.degraded[net] {
		return
	}
	a.degraded[net] = true
	a.diags = append(a.diags, Diag{Net: net, Stage: stage, Err: err, Degraded: true})
	e := a.fullRailEvent()
	a.ctxs[net] = nil
	a.coupled[net] = &[2][]Event{{e}, {e}}
}

// preparedNet is the output of the per-victim preparation stage.
type preparedNet struct {
	ctx      *noise.Context
	events   [2][]Event
	pairs    int
	filtered int
}

// commitPrepared stores one victim's preparation into the analyzer state
// (serially, so maps and stats need no locks).
func (a *analyzer) commitPrepared(net *netlist.Net, p *preparedNet) {
	a.ctxs[net.Name] = p.ctx
	a.coupled[net.Name] = &p.events
	a.stats.AggressorPairs += p.pairs
	a.stats.Filtered += p.filtered
}

// Analyze runs static noise analysis over the whole design.
func Analyze(b *bind.Design, opts Options) (*Result, error) {
	return AnalyzeCtx(context.Background(), b, opts)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the context is
// checked during victim preparation and between propagation passes, and
// its error is returned as soon as it fires. A cancelled run returns no
// partial result — partial results come from fail-soft degradation
// (Options.FailSoft), not from cancellation.
func AnalyzeCtx(ctx context.Context, b *bind.Design, opts Options) (*Result, error) {
	a, order, err := newAnalyzer(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	opts = a.opts

	res := &Result{
		Mode: opts.Mode,
		Nets: make(map[string]*NetNoise, len(order)),
		STA:  a.staRes,
	}
	for _, net := range order {
		res.Nets[net.Name] = &NetNoise{Net: net.Name}
	}

	// Propagation fixpoint: each pass recomputes every net's event list
	// (coupled events are cached; propagated events derive from the
	// current fanin combinations) and its windowed combination.
	converged := false
	iterations := 0
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		iterations++
		a.stats.Propagated = 0
		changed := false
		for ni, net := range order {
			if ni&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			nn := res.Nets[net.Name]
			netChanged, err := a.safeEval(net, nn, res)
			if err != nil {
				if !opts.FailSoft {
					return nil, err
				}
				// Pin the net at the fallback; its events are replaced so
				// later passes (and delay analysis) see the same bound.
				a.degradeNet(net.Name, StageEvaluate, err)
				fallback := a.fullRailComb()
				nn.Events = *a.coupled[net.Name]
				nn.Comb = [2]Combined{fallback, fallback}
				changed = true
				continue
			}
			changed = changed || netChanged
		}
		if !changed {
			converged = true
			break
		}
		if opts.NoPropagation {
			// Without propagation one pass is exact.
			converged = true
			break
		}
	}
	a.stats.Iterations = iterations
	a.stats.Converged = converged
	a.stats.Victims = len(order)
	a.stats.DegradedNets = len(a.diags)
	res.Stats = a.stats

	a.checkViolations(res)
	sortDiags(a.diags)
	res.Diags = a.diags
	return res, nil
}

// safeEval recomputes one net's event list and windowed combination for
// the current pass, converting panics into errors so fail-soft runs can
// degrade the victim instead of crashing. Degraded nets keep their pinned
// fallback combination and report no change.
func (a *analyzer) safeEval(net *netlist.Net, nn *NetNoise, res *Result) (changed bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: panic evaluating net %s: %v", net.Name, r)
		}
	}()
	if a.degraded[net.Name] {
		// Pin the fallback once (a prepare-stage degradation reaches the
		// fixpoint loop before any combination was stored); afterwards the
		// net is inert.
		if nn.Comb[KindLow].Peak != a.vdd {
			fallback := a.fullRailComb()
			nn.Events = *a.coupled[net.Name]
			nn.Comb = [2]Combined{fallback, fallback}
			return true, nil
		}
		return false, nil
	}
	events := a.buildEvents(net, res)
	var comb [2]Combined
	for _, k := range Kinds {
		comb[k] = combineConstrained(events[k], a.vdd, a.conflictFunc(events[k], k), a.occupancy())
	}
	changed = !combEqual(comb[KindLow], nn.Comb[KindLow], 1e-7) ||
		!combEqual(comb[KindHigh], nn.Comb[KindHigh], 1e-7)
	nn.Events = events
	nn.Comb = comb
	return changed, nil
}

// occupancy resolves the effective combination policy: the baselines keep
// the classical peak semantics (that is what they are baselines of); only
// the paper's noise-window mode uses the configured occupancy.
func (a *analyzer) occupancy() Occupancy {
	if a.opts.Mode != ModeNoiseWindows {
		return OccupancyPeak
	}
	return a.opts.Occupancy
}

// victimOrder returns the analyzable nets in propagation-friendly order:
// port-driven nets first, then by driving instance level (feedback last).
func (a *analyzer) victimOrder() []*netlist.Net {
	a.b.Net.Levelize()
	nets := a.b.Net.Nets()
	out := make([]*netlist.Net, 0, len(nets))
	for _, n := range nets {
		if n.Driver() == nil {
			continue // unconnected; Validate would have flagged real designs
		}
		out = append(out, n)
	}
	level := func(n *netlist.Net) int {
		drv := n.Driver()
		if drv.Inst == nil {
			return -1
		}
		if drv.Inst.Level < 0 {
			return 1 << 30 // feedback: last
		}
		return drv.Inst.Level
	}
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := level(out[i]), level(out[j])
		if li != lj {
			return li < lj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// prepareNet builds the noise context and the coupled (plus virtual)
// events for one victim. It only reads shared state, so prepareAll may run
// it concurrently for different victims.
func (a *analyzer) prepareNet(net *netlist.Net) (*preparedNet, error) {
	ctx, err := noise.BuildContext(a.b, net)
	if err != nil {
		return nil, err
	}
	kept, dropped := ctx.Filter(a.opts.FilterThreshold)
	out := &preparedNet{
		ctx:      ctx,
		pairs:    len(ctx.Couplings),
		filtered: len(ctx.Couplings) - len(kept),
	}

	var events [2][]Event
	for i := range kept {
		cpl := &kept[i]
		aggT := a.staRes.TimingOfNet(cpl.Aggressor)
		for _, k := range Kinds {
			rise := k == KindLow // rising aggressor endangers a low victim
			var winSet interval.Set
			slew := a.opts.DefaultAggSlew
			switch a.opts.Mode {
			case ModeAllAggressors:
				winSet = interval.InfiniteSet()
				if s := aggT.Slew(rise); s.Min <= s.Max {
					slew = s.Min
				}
			default: // timing- and noise-window modes use real windows
				winSet = aggT.Window(rise)
				if winSet.IsEmpty() {
					continue // this aggressor can never make that edge
				}
				if s := aggT.Slew(rise); s.Min <= s.Max {
					slew = s.Min
				}
			}
			if a.opts.HullWindows && !winSet.IsEmpty() {
				winSet = interval.NewSet(winSet.Hull())
			}
			p := ctx.ParamsFor(cpl, slew, a.vdd)
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("core: net %s aggressor %s: %w", net.Name, cpl.Aggressor, err)
			}
			peak, width := p.Peak(), p.Width()
			if peak <= 0 {
				continue
			}
			// One event per disjoint switching opportunity. The shift
			// and widening can make neighbouring fragments overlap, so
			// the shifted windows are re-normalized into a Set first —
			// its members never overlap, so at any alignment instant at
			// most one event contributes and the aggressor is never
			// double-counted.
			shifted := make([]interval.Window, 0, winSet.Len())
			for _, win := range winSet.Windows() {
				shifted = append(shifted, a.eventWindow(win, cpl.AggWireDelay, slew))
			}
			for _, win := range interval.NewSet(shifted...).Windows() {
				events[k] = append(events[k], Event{
					Peak:   peak,
					Width:  width,
					Window: win,
					Source: cpl.Aggressor,
				})
			}
		}
	}
	if dropped > 0 && !a.opts.DisableVirtual {
		p := noise.Params{
			HoldRes: ctx.HoldRes,
			CoupleC: dropped,
			VictimC: ctx.VictimC,
			AggSlew: a.opts.DefaultAggSlew,
			Vdd:     a.vdd,
		}
		if peak := p.Peak(); peak > 0 {
			for _, k := range Kinds {
				events[k] = append(events[k], Event{
					Peak:   peak,
					Width:  p.Width(),
					Window: interval.Infinite(),
					Source: "virtual",
				})
			}
		}
	}
	out.events = events
	return out, nil
}

// eventWindow turns an aggressor switching window into the glitch's noise
// window: the edge reaches the coupling site after the aggressor wire
// delay and the peak lands at the end of the edge (up to one slew later).
// Waveform extent around the peak is the combination policy's concern
// (Options.Occupancy), not the window's.
func (a *analyzer) eventWindow(aggWin interval.Window, wireDelay, slew float64) interval.Window {
	if aggWin.IsInfinite() {
		return aggWin
	}
	return aggWin.ShiftRange(wireDelay, wireDelay+slew)
}

// buildEvents assembles the full event list for a net in the current
// iteration: cached coupled events plus freshly derived propagated events.
func (a *analyzer) buildEvents(net *netlist.Net, res *Result) [2][]Event {
	var events [2][]Event
	if c := a.coupled[net.Name]; c != nil {
		events[KindLow] = append([]Event(nil), c[KindLow]...)
		events[KindHigh] = append([]Event(nil), c[KindHigh]...)
	}
	if a.opts.NoPropagation {
		return events
	}
	drv := net.Driver()
	if drv == nil || drv.Inst == nil {
		return events
	}
	cell := a.b.Cell(drv.Inst)
	load, err := a.b.LoadCapOf(net.Name)
	if err != nil {
		return events
	}
	for _, arc := range cell.ArcsTo(drv.Pin) {
		if arc.Transfer == nil {
			continue // cell blocks noise through this arc
		}
		ic := drv.Inst.Conns[arc.From]
		if ic == nil {
			continue
		}
		inNoise := res.Nets[ic.Net.Name]
		if inNoise == nil {
			continue
		}
		for _, inKind := range Kinds {
			comb := inNoise.Comb[inKind]
			if comb.Peak <= 0 {
				continue
			}
			outPeak := arc.Transfer.OutputPeak(comb.Peak, comb.Width)
			if outPeak <= 0 {
				continue
			}
			// Gate delay range for the glitch, using its width as the
			// effective input transition time.
			d1 := arc.DelayRise.Eval(comb.Width, load)
			d2 := arc.DelayFall.Eval(comb.Width, load)
			dMin, dMax := math.Min(d1, d2), math.Max(d1, d2)
			outWidth := comb.Width + (dMax - dMin)
			var win interval.Window
			if a.opts.Mode == ModeNoiseWindows {
				win = comb.Window.ShiftRange(dMin, dMax)
			} else {
				// Baselines carry no window information for
				// propagated noise: it may appear any time.
				win = interval.Infinite()
			}
			for _, outKind := range propagateKind(arc.Unate, inKind) {
				a.stats.Propagated++
				events[outKind] = append(events[outKind], Event{
					Peak:   outPeak,
					Width:  outWidth,
					Window: win,
					Source: "prop:" + ic.Net.Name,
				})
			}
		}
	}
	return events
}

// propagateKind maps a glitch's victim-state kind through an arc's
// unateness. An upward glitch on a low input of an inverter (negative
// unate) appears as a downward glitch on its high output, and so on.
func propagateKind(u liberty.Unateness, in Kind) []Kind {
	other := KindHigh
	if in == KindHigh {
		other = KindLow
	}
	switch u {
	case liberty.PositiveUnate:
		return []Kind{in}
	case liberty.NegativeUnate:
		return []Kind{other}
	default:
		return []Kind{in, other}
	}
}

// checkViolations evaluates every receiver's immunity curve against its
// net's combined noise and records failures sorted by slack.
func (a *analyzer) checkViolations(res *Result) {
	for _, netName := range sortedNetNames(res.Nets) {
		nn := res.Nets[netName]
		ctx := a.ctxs[netName]
		if ctx == nil {
			continue
		}
		for _, rcv := range ctx.Receivers {
			var pin *liberty.Pin
			if rcv.Inst != nil {
				pin = a.b.Cell(rcv.Inst).Pin(rcv.Pin)
			}
			curve := a.b.Lib.Immunity(pin)
			if curve == nil {
				continue
			}
			for _, k := range Kinds {
				comb := nn.Comb[k]
				if comb.Peak <= 0 {
					continue
				}
				limit := curve.MaxPeak(comb.Width)
				slack := limit - comb.Peak
				res.Slacks = append(res.Slacks, ReceiverSlack{
					Net:      netName,
					Receiver: rcv.Name(),
					Kind:     k,
					Peak:     comb.Peak,
					Limit:    limit,
					Slack:    slack,
				})
				if slack < 0 {
					res.Violations = append(res.Violations, Violation{
						Net:      netName,
						Receiver: rcv.Name(),
						Kind:     k,
						Peak:     comb.Peak,
						Width:    comb.Width,
						Limit:    limit,
						Slack:    slack,
						At:       comb.At,
						Members:  comb.Members,
					})
				}
			}
		}
	}
	sort.Slice(res.Violations, func(i, j int) bool {
		if res.Violations[i].Slack != res.Violations[j].Slack {
			return res.Violations[i].Slack < res.Violations[j].Slack
		}
		return res.Violations[i].Net < res.Violations[j].Net
	})
	sort.Slice(res.Slacks, func(i, j int) bool {
		if res.Slacks[i].Slack != res.Slacks[j].Slack {
			return res.Slacks[i].Slack < res.Slacks[j].Slack
		}
		return res.Slacks[i].Net < res.Slacks[j].Net
	})
}

func sortedNetNames(m map[string]*NetNoise) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
