package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/noise"
	"repro/internal/sta"
	"repro/internal/units"
)

// Options tunes an analysis run.
type Options struct {
	// Mode selects the combination policy (default ModeNoiseWindows).
	Mode Mode
	// Vdd overrides the library supply voltage when non-zero.
	Vdd float64
	// FilterThreshold drops couplings with C_x/C_v below it; the dropped
	// capacitance is lumped into a virtual always-on aggressor unless
	// DisableVirtual is set. Zero keeps every aggressor.
	FilterThreshold float64
	// DisableVirtual turns off the conservative lumping of filtered
	// couplings.
	DisableVirtual bool
	// NoPropagation disables noise propagation through gates (coupled
	// noise only).
	NoPropagation bool
	// MaxIter bounds the propagation fixpoint iteration (default 16).
	MaxIter int
	// Workers sets the number of goroutines used for the per-victim
	// context and coupled-event construction and for the propagation
	// fixpoint's level wavefronts (the dominant costs on big designs).
	// 0 or 1 runs serially; results are identical either way — victims
	// are independent during preparation, and within one level wavefront
	// no net's events depend on another's combination.
	Workers int
	// DefaultAggSlew is the aggressor edge rate assumed when timing gives
	// none (default 20 ps).
	DefaultAggSlew float64
	// HullWindows collapses set-valued (multi-phase) switching windows to
	// their single-window hull before deriving noise windows — the
	// approximation a tool without set support is forced into. Kept as
	// an ablation knob (experiment A2).
	HullWindows bool
	// LogicCorrelation enables mutual-exclusion filtering: aggressors
	// whose transitions are logically contradictory (both depending on
	// the same single primary input with opposite polarity, e.g. a
	// signal and its complement) are never combined. The combination
	// becomes a constrained maximum-overlap query.
	LogicCorrelation bool
	// Occupancy selects the combination semantics: OccupancyTent
	// (default, sound against partial waveform overlap), OccupancyPeak
	// (classical peak-window alignment), or OccupancyWiden (coarse
	// conservative plateau). Experiment A1 quantifies the three; T11
	// demonstrates why tent is the default.
	Occupancy Occupancy
	// FailSoft keeps the run alive when a single victim cannot be
	// analyzed: the failure is recorded as a Diag and the victim gets the
	// conservative full-rail fallback (combined noise pinned at Vdd over
	// an infinite window) instead of aborting the whole analysis. Off by
	// default: the historical fail-fast behaviour returns the first error.
	FailSoft bool
	// PrepareHook, when non-nil, runs at the start of every victim's
	// preparation. It exists for runtime fault injection in robustness
	// tests (see workload.RuntimeFaults): a hook may return an error,
	// panic, or block to simulate a malformed or pathological victim. Not
	// consulted on any other path.
	PrepareHook func(net string) error
	// RoundBudget bounds each round's wall clock in AnalyzeIterative;
	// a round exceeding it stops the loop with a Diverging diagnostic.
	// Zero means no budget.
	RoundBudget time.Duration
	// STA configures the underlying timing run.
	STA sta.Options
}

func (o *Options) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 16
	}
	if o.DefaultAggSlew <= 0 {
		o.DefaultAggSlew = 20 * units.Pico
	}
}

// wave is one level of the propagation schedule: the contiguous run
// a.order[lo:hi] of nets whose drivers share a levelization level. Every
// fanin of a wave's nets lives in a strictly earlier wave, so the nets of
// one wave never read each other's combinations and may be evaluated
// concurrently. The feedback wave (cyclic nets) is the exception — its
// nets can read each other within a pass, so it keeps the serial
// Gauss–Seidel order.
type wave struct {
	lo, hi int
	serial bool
}

// prepCount remembers one victim's preparation statistics so re-preparing
// it in a later iterative round replaces its contribution instead of
// double-counting it.
type prepCount struct {
	pairs, filtered int
}

// analyzer carries per-run state. Under AnalyzeIterative one analyzer
// persists across rounds and is shared between the noise and delay passes:
// the timing result is updated in place, contexts and coupled events are
// re-prepared only for dirty victims, and committed combinations carry
// over for everything else.
type analyzer struct {
	b      *bind.Design
	opts   Options
	vdd    float64
	staRes *sta.Result
	// order is the victim evaluation order (victimOrder); orderIdx maps a
	// net name back to its position; waves partitions order into level
	// wavefronts; namesSorted caches the alphabetical net order used by
	// the violation check, and sortedPos the matching order positions.
	order       []*netlist.Net
	orderIdx    map[string]int
	waves       []wave
	namesSorted []string
	sortedPos   []int
	// Per-victim state lives in dense slices indexed by evaluation-order
	// position, not name-keyed maps: at millions of nets the per-entry
	// map overhead (hashing, bucket churn) dominated steady-state
	// allocations and lookups on the fixpoint hot path.
	ctxs []*noise.Context
	// coupled events are timing-dependent but iteration-invariant within
	// a round. A nil entry means the victim is not prepared (shards
	// prepare only the nets they own).
	coupled    []*[2][]Event
	prepCounts []prepCount
	// propCount tracks the propagated events each net's latest evaluation
	// built; propTotal is their running sum, so Stats.Propagated reflects
	// the final pass without a per-pass recount even when an incremental
	// round skips clean nets.
	propCount []int
	propTotal int
	// impacts holds the latest delta-delay impacts per net (0–2 entries),
	// by order position (nil until the first delay pass); assembleDelay
	// flattens and sorts them into a DelayResult.
	impacts [][]DelayImpact
	// corr maps nets to their primary-input dependence for logic
	// correlation (nil when the option is off).
	corr  map[string]sourceMap
	stats Stats
	// degraded marks nets substituted with the full-rail fallback; diags
	// records why. Both are written serially (commit or fixpoint loop).
	degraded []bool
	diags    []Diag
	// Reusable buffers: the serial-path combiner scratch, per-worker
	// combiner scratch for parallel waves, and the wave work/result
	// arrays.
	scratch  combiner
	wscratch []combiner
	todo     []int
	evals    []netEval
	evalErrs []error
	// Incremental indexes, built lazily on the first dirty-set query.
	aggIndex map[string][]string
	fanout   map[string][]string
	// delayItems/delayIdx are the serial delay pass's per-net scratch.
	delayItems []interval.Weighted
	delayIdx   []int
}

// newAnalyzer runs the shared setup — timing, victim ordering, context and
// coupled-event construction — used by Analyze, AnalyzeDelay, and the
// iterative engine.
func newAnalyzer(ctx context.Context, b *bind.Design, opts Options) (*analyzer, error) {
	a, err := newAnalyzerBase(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	if err := a.prepareAll(ctx, a.order); err != nil {
		return nil, err
	}
	return a, nil
}

// newAnalyzerBase builds everything up to (but not including) victim
// preparation: timing, victim ordering, and the wave schedule. The sharded
// engine uses it directly so each shard prepares only the victims it owns.
func newAnalyzerBase(ctx context.Context, b *bind.Design, opts Options) (*analyzer, error) {
	opts.fill()
	a := &analyzer{
		b:    b,
		opts: opts,
		vdd:  opts.Vdd,
	}
	if a.vdd <= 0 {
		a.vdd = b.Lib.Vdd
	}
	staRes, err := sta.RunCtx(ctx, b, opts.STA)
	if err != nil {
		return nil, err
	}
	a.staRes = staRes
	if opts.LogicCorrelation {
		a.corr = buildCorrelations(b)
	}

	a.order = a.victimOrder()
	a.orderIdx = make(map[string]int, len(a.order))
	a.namesSorted = make([]string, len(a.order))
	for i, net := range a.order {
		a.orderIdx[net.Name] = i
		a.namesSorted[i] = net.Name
	}
	sort.Strings(a.namesSorted)
	a.sortedPos = make([]int, len(a.namesSorted))
	for i, name := range a.namesSorted {
		a.sortedPos[i] = a.orderIdx[name]
	}
	n := len(a.order)
	a.ctxs = make([]*noise.Context, n)
	a.coupled = make([]*[2][]Event, n)
	a.prepCounts = make([]prepCount, n)
	a.propCount = make([]int, n)
	a.degraded = make([]bool, n)
	a.buildWaves()
	return a, nil
}

// buildWaves groups the level-sorted victim order into contiguous
// same-level runs. Feedback nets (netLevel 1<<30) form a serial wave.
func (a *analyzer) buildWaves() {
	a.waves = a.waves[:0]
	for lo := 0; lo < len(a.order); {
		lvl := netLevel(a.order[lo])
		hi := lo + 1
		for hi < len(a.order) && netLevel(a.order[hi]) == lvl {
			hi++
		}
		a.waves = append(a.waves, wave{lo: lo, hi: hi, serial: lvl == feedbackLevel})
		lo = hi
	}
}

// newResult allocates the Result shell the fixpoint fills in.
func (a *analyzer) newResult() *Result {
	res := &Result{
		Mode: a.opts.Mode,
		Nets: make(map[string]*NetNoise, len(a.order)),
		STA:  a.staRes,
		byID: make([]*NetNoise, a.b.Net.NumNets()),
	}
	for _, net := range a.order {
		nn := &NetNoise{Net: net.Name}
		res.Nets[net.Name] = nn
		res.byID[net.ID()] = nn
	}
	return res
}

// finishNoise finalizes a Result after the fixpoint: statistics, the
// violation sweep, and the sorted diagnostics.
func (a *analyzer) finishNoise(res *Result) {
	a.stats.Propagated = a.propTotal
	a.stats.Victims = len(a.order)
	a.stats.DegradedNets = len(a.diags)
	res.Stats = a.stats
	a.checkViolations(res)
	sortDiags(a.diags)
	res.Diags = a.diags
}

// safePrepare runs prepareNet with panics converted into errors, so one
// malformed victim (a corrupt RC tree, an unphysical parameter, an
// injected fault) surfaces as a per-net failure instead of crashing the
// whole engine.
func (a *analyzer) safePrepare(net *netlist.Net) (p *preparedNet, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: panic preparing net %s: %v", net.Name, r)
		}
	}()
	if h := a.opts.PrepareHook; h != nil {
		if err := h(net.Name); err != nil {
			return nil, err
		}
	}
	return a.prepareNet(net)
}

// prepareAll builds every victim's context and coupled events, optionally
// across Options.Workers goroutines. Victims are independent here, so the
// parallel and serial paths produce identical results. Cancellation is
// checked between victims; under fail-soft a per-net failure degrades
// that net, under fail-fast it stops the remaining workers promptly so an
// early error on a huge design does not keep preparing doomed work.
func (a *analyzer) prepareAll(ctx context.Context, order []*netlist.Net) error {
	workers := a.opts.Workers
	if workers <= 1 || len(order) < 2 {
		for _, net := range order {
			if err := ctx.Err(); err != nil {
				return err
			}
			pos := a.orderIdx[net.Name]
			p, err := a.safePrepare(net)
			if err != nil {
				if !a.opts.FailSoft {
					return err
				}
				a.degradeNet(pos, net.Name, StagePrepare, err)
				continue
			}
			a.commitPrepared(pos, p)
		}
		return nil
	}
	if workers > len(order) {
		workers = len(order)
	}
	prepared := make([]*preparedNet, len(order))
	errs := make([]error, len(order))
	var stop atomic.Bool
	var wg sync.WaitGroup
	var next int64 = -1
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(order) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				p, err := a.safePrepare(order[i])
				if err != nil {
					errs[i] = err
					// Fail-soft keeps the other victims coming; fail-fast
					// drains the queue so the run aborts promptly.
					if !a.opts.FailSoft {
						stop.Store(true)
						return
					}
					continue
				}
				prepared[i] = p
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	// Commit serially in victim order so maps, stats, and diagnostics are
	// deterministic regardless of worker scheduling.
	for i, net := range order {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		pos := a.orderIdx[net.Name]
		if errs[i] != nil {
			if !a.opts.FailSoft {
				return errs[i]
			}
			a.degradeNet(pos, net.Name, StagePrepare, errs[i])
			continue
		}
		if prepared[i] == nil {
			// Only reachable when a fail-fast stop drained the queue, and
			// then the error above has already returned.
			return fmt.Errorf("core: net %s was not prepared", net.Name)
		}
		a.commitPrepared(pos, prepared[i])
	}
	return nil
}

// degradedWidth is the glitch width assumed for the full-rail fallback: a
// wide glitch, because immunity allowances only shrink with width, so the
// substituted bound stays conservative for any receiver.
const degradedWidth = 1 * units.Nano

// fullRailEvent is the conservative fallback glitch for a victim the
// engine could not analyze: the full supply rail, achievable at any time.
func (a *analyzer) fullRailEvent() Event {
	return Event{Peak: a.vdd, Width: degradedWidth, Window: interval.Infinite(), Source: "degraded"}
}

// fullRailComb is the combined form of the fallback, used when a net
// degrades after preparation (evaluate stage).
func (a *analyzer) fullRailComb() Combined {
	e := a.fullRailEvent()
	return Combined{
		Peak:         e.Peak,
		Width:        e.Width,
		Window:       e.Window,
		At:           0,
		Members:      []string{e.Source},
		MemberEvents: []Event{e},
	}
}

// degradeNet substitutes the conservative fallback for one victim and
// records the diagnostic. The net's receivers are not individually
// checked (its noise context may not exist); the Diag plus the full-rail
// bound mark the whole net as failing, which downstream propagation and
// the exit-code policy treat conservatively.
func (a *analyzer) degradeNet(pos int, net, stage string, err error) {
	if a.degraded[pos] {
		return
	}
	a.degraded[pos] = true
	a.diags = append(a.diags, Diag{Net: net, Stage: stage, Err: err, Degraded: true})
	e := a.fullRailEvent()
	a.ctxs[pos] = nil
	a.coupled[pos] = &[2][]Event{{e}, {e}}
}

// preparedNet is the output of the per-victim preparation stage.
type preparedNet struct {
	ctx      *noise.Context
	events   [2][]Event
	pairs    int
	filtered int
}

// commitPrepared stores one victim's preparation into the analyzer state
// (serially, so shared slices and stats need no locks). Re-committing a
// victim in a later iterative round replaces its statistics contribution.
func (a *analyzer) commitPrepared(pos int, p *preparedNet) {
	a.ctxs[pos] = p.ctx
	a.coupled[pos] = &p.events
	old := a.prepCounts[pos]
	a.stats.AggressorPairs += p.pairs - old.pairs
	a.stats.Filtered += p.filtered - old.filtered
	a.prepCounts[pos] = prepCount{pairs: p.pairs, filtered: p.filtered}
}

// setPropCount records the propagated-event count of one net's latest
// evaluation, keeping the running total in sync.
func (a *analyzer) setPropCount(pos, n int) {
	a.propTotal += n - a.propCount[pos]
	a.propCount[pos] = n
}

// Analyze runs static noise analysis over the whole design.
func Analyze(b *bind.Design, opts Options) (*Result, error) {
	return AnalyzeCtx(context.Background(), b, opts)
}

// AnalyzeCtx is Analyze with cooperative cancellation: the context is
// checked during victim preparation and between propagation passes, and
// its error is returned as soon as it fires. A cancelled run returns no
// partial result — partial results come from fail-soft degradation
// (Options.FailSoft), not from cancellation.
func AnalyzeCtx(ctx context.Context, b *bind.Design, opts Options) (*Result, error) {
	a, err := newAnalyzer(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	res := a.newResult()
	if err := a.runFixpoint(ctx, res, nil); err != nil {
		return nil, err
	}
	a.finishNoise(res)
	return res, nil
}

// runFixpoint iterates the propagation fixpoint: each pass recomputes
// every (dirty) net's event list (coupled events are cached; propagated
// events derive from the current fanin combinations) and its windowed
// combination, level wavefront by level wavefront. A nil dirty set means
// every net; a non-nil set must be closed under structural fanout, which
// makes the per-pass filter exact — a net outside the set has no fanin
// inside it, so its inputs can never change.
func (a *analyzer) runFixpoint(ctx context.Context, res *Result, dirty map[string]bool) error {
	converged := false
	iterations := 0
	for iter := 0; iter < a.opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		iterations++
		changed := false
		for _, w := range a.waves {
			wc, err := a.evalWave(ctx, res, w, dirty)
			if err != nil {
				return err
			}
			changed = changed || wc
		}
		if !changed {
			converged = true
			break
		}
		if a.opts.NoPropagation {
			// Without propagation one pass is exact.
			converged = true
			break
		}
	}
	a.stats.Iterations = iterations
	a.stats.Converged = converged
	return nil
}

// evalWave evaluates one level wavefront. The serial path is the
// reference; the parallel path computes the same per-net evaluations
// concurrently (safe because a wave's nets only read strictly earlier
// waves) and then commits them serially in victim order, so results,
// statistics, diagnostics, and fail-fast error selection are identical to
// the serial engine.
func (a *analyzer) evalWave(ctx context.Context, res *Result, w wave, dirty map[string]bool) (bool, error) {
	todo := a.todo[:0]
	for i := w.lo; i < w.hi; i++ {
		if dirty == nil || dirty[a.order[i].Name] {
			todo = append(todo, i)
		}
	}
	a.todo = todo
	if len(todo) == 0 {
		return false, nil
	}
	workers := a.opts.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	if w.serial || workers <= 1 {
		changed := false
		for k, oi := range todo {
			if k&0x3f == 0 {
				if err := ctx.Err(); err != nil {
					return changed, err
				}
			}
			net := a.order[oi]
			nn := res.byID[net.ID()]
			ev, err := a.evalNet(oi, net, nn, res, &a.scratch)
			c, cerr := a.commitEval(oi, net, nn, ev, err)
			if cerr != nil {
				return changed, cerr
			}
			changed = changed || c
		}
		return changed, nil
	}

	if len(a.wscratch) < workers {
		a.wscratch = make([]combiner, workers)
	}
	if cap(a.evals) < len(todo) {
		a.evals = make([]netEval, len(todo))
		a.evalErrs = make([]error, len(todo))
	}
	evals := a.evals[:len(todo)]
	errs := a.evalErrs[:len(todo)]
	for i := range evals {
		evals[i] = netEval{}
		errs[i] = nil
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	var next int64 = -1
	for wk := 0; wk < workers; wk++ {
		cb := &a.wscratch[wk]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(todo) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					stop.Store(true)
					return
				}
				oi := todo[i]
				net := a.order[oi]
				evals[i], errs[i] = a.evalNet(oi, net, res.byID[net.ID()], res, cb)
				if errs[i] != nil && !a.opts.FailSoft {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return false, err
	}
	changed := false
	for i, oi := range todo {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return changed, err
			}
		}
		net := a.order[oi]
		if errs[i] == nil && !evals[i].done {
			// Only reachable when a fail-fast stop drained the queue;
			// every item before the stopping error is claimed and
			// completed, so the recorded error is ahead of us.
			for j := i; j < len(todo); j++ {
				if errs[j] != nil {
					return changed, errs[j]
				}
			}
			return changed, fmt.Errorf("core: net %s was not evaluated", net.Name)
		}
		c, cerr := a.commitEval(oi, net, res.byID[net.ID()], evals[i], errs[i])
		if cerr != nil {
			return changed, cerr
		}
		changed = changed || c
	}
	return changed, nil
}

// netEval is one victim's freshly computed pass state, produced by evalNet
// (possibly concurrently) and applied serially by commitEval.
type netEval struct {
	comb       [2]Combined
	propagated int
	changed    bool
	// pin marks a degraded net that has not yet received its fallback
	// combination; skip marks one that has (inert).
	pin, skip bool
	// done distinguishes a computed evaluation from a zero value left by
	// a drained worker queue.
	done bool
}

// evalNet recomputes one net's event list and windowed combination for
// the current pass, converting panics into errors so fail-soft runs can
// degrade the victim instead of crashing. It mutates only nn (the net's
// own record, owned by its worker during a parallel wave) and reads other
// nets' committed combinations from strictly earlier waves; all shared
// analyzer state it touches is immutable during a wave.
func (a *analyzer) evalNet(oi int, net *netlist.Net, nn *NetNoise, res *Result, cb *combiner) (ev netEval, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: panic evaluating net %s: %v", net.Name, r)
		}
	}()
	ev.done = true
	if a.degraded[oi] {
		// Pin the fallback once (a prepare-stage degradation reaches the
		// fixpoint loop before any combination was stored); afterwards the
		// net is inert.
		if nn.Comb[KindLow].Peak != a.vdd {
			ev.pin = true
		} else {
			ev.skip = true
		}
		return ev, nil
	}
	ev.propagated = a.buildEvents(oi, net, nn, res)
	for _, k := range Kinds {
		ev.comb[k] = cb.combineConstrained(nn.Events[k], a.vdd, a.conflictFunc(nn.Events[k], k), a.occupancy())
	}
	ev.changed = !combEqual(ev.comb[KindLow], nn.Comb[KindLow], 1e-7) ||
		!combEqual(ev.comb[KindHigh], nn.Comb[KindHigh], 1e-7)
	return ev, nil
}

// commitEval applies one computed evaluation to the shared state. It runs
// serially in victim order, which keeps stats, degradation bookkeeping,
// and fail-fast error selection deterministic.
func (a *analyzer) commitEval(oi int, net *netlist.Net, nn *NetNoise, ev netEval, evalErr error) (bool, error) {
	if evalErr != nil {
		if !a.opts.FailSoft {
			return false, evalErr
		}
		// Pin the net at the fallback; its events are replaced so later
		// passes (and delay analysis) see the same bound.
		a.degradeNet(oi, net.Name, StageEvaluate, evalErr)
		fallback := a.fullRailComb()
		nn.Events = *a.coupled[oi]
		nn.Comb = [2]Combined{fallback, fallback}
		a.setPropCount(oi, 0)
		return true, nil
	}
	if ev.skip {
		return false, nil
	}
	if ev.pin {
		fallback := a.fullRailComb()
		nn.Events = *a.coupled[oi]
		nn.Comb = [2]Combined{fallback, fallback}
		a.setPropCount(oi, 0)
		return true, nil
	}
	nn.Comb = ev.comb
	a.setPropCount(oi, ev.propagated)
	return ev.changed, nil
}

// occupancy resolves the effective combination policy: the baselines keep
// the classical peak semantics (that is what they are baselines of); only
// the paper's noise-window mode uses the configured occupancy.
func (a *analyzer) occupancy() Occupancy {
	if a.opts.Mode != ModeNoiseWindows {
		return OccupancyPeak
	}
	return a.opts.Occupancy
}

// feedbackLevel is the pseudo-level of nets driven by feedback instances:
// they sort (and wave) after every levelized net.
const feedbackLevel = 1 << 30

// netLevel is the propagation level of a net: its driving instance's
// levelization level, -1 for port-driven nets, feedbackLevel for cyclic
// ones. A net's fanin nets always have strictly smaller levels (ports
// have no fanin), which is what makes same-level wavefronts safe to
// evaluate concurrently.
func netLevel(n *netlist.Net) int {
	drv := n.Driver()
	if drv.Inst == nil {
		return -1
	}
	if drv.Inst.Level < 0 {
		return feedbackLevel
	}
	return drv.Inst.Level
}

// victimOrder returns the analyzable nets in propagation-friendly order:
// port-driven nets first, then by driving instance level (feedback last).
func (a *analyzer) victimOrder() []*netlist.Net {
	return victimOrderOf(a.b)
}

// victimOrderOf is the package-level form of victimOrder, shared with the
// shard planner so partitioning sees exactly the evaluation order and wave
// structure every engine (single-process or shard) will use.
func victimOrderOf(b *bind.Design) []*netlist.Net {
	b.Net.Levelize()
	nets := b.Net.Nets()
	out := make([]*netlist.Net, 0, len(nets))
	for _, n := range nets {
		if n.Driver() == nil {
			continue // unconnected; Validate would have flagged real designs
		}
		out = append(out, n)
	}
	sort.SliceStable(out, func(i, j int) bool {
		li, lj := netLevel(out[i]), netLevel(out[j])
		if li != lj {
			return li < lj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// prepareNet builds the noise context and the coupled (plus virtual)
// events for one victim. It only reads shared state, so prepareAll may run
// it concurrently for different victims.
func (a *analyzer) prepareNet(net *netlist.Net) (*preparedNet, error) {
	ctx, err := noise.BuildContext(a.b, net)
	if err != nil {
		return nil, err
	}
	return a.prepareEvents(net, ctx)
}

// prepareEvents derives the coupled (plus virtual) events for one victim
// from an existing noise context. The context is RC-derived and timing
// independent, so iterative rounds reuse it and only re-derive the events
// (which depend on the aggressors' switching windows).
func (a *analyzer) prepareEvents(net *netlist.Net, ctx *noise.Context) (*preparedNet, error) {
	kept, dropped := ctx.Filter(a.opts.FilterThreshold)
	out := &preparedNet{
		ctx:      ctx,
		pairs:    len(ctx.Couplings),
		filtered: len(ctx.Couplings) - len(kept),
	}

	var events [2][]Event
	for i := range kept {
		cpl := &kept[i]
		aggT := a.staRes.TimingOfNet(cpl.Aggressor)
		for _, k := range Kinds {
			rise := k == KindLow // rising aggressor endangers a low victim
			var winSet interval.Set
			slew := a.opts.DefaultAggSlew
			switch a.opts.Mode {
			case ModeAllAggressors:
				winSet = interval.InfiniteSet()
				if s := aggT.Slew(rise); s.Min <= s.Max {
					slew = s.Min
				}
			default: // timing- and noise-window modes use real windows
				winSet = aggT.Window(rise)
				if winSet.IsEmpty() {
					continue // this aggressor can never make that edge
				}
				if s := aggT.Slew(rise); s.Min <= s.Max {
					slew = s.Min
				}
			}
			if a.opts.HullWindows && !winSet.IsEmpty() {
				winSet = interval.NewSet(winSet.Hull())
			}
			p := ctx.ParamsFor(cpl, slew, a.vdd)
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("core: net %s aggressor %s: %w", net.Name, cpl.Aggressor, err)
			}
			peak, width := p.Peak(), p.Width()
			if peak <= 0 {
				continue
			}
			// One event per disjoint switching opportunity. The shift
			// and widening can make neighbouring fragments overlap, so
			// the shifted windows are re-normalized into a Set first —
			// its members never overlap, so at any alignment instant at
			// most one event contributes and the aggressor is never
			// double-counted.
			shifted := make([]interval.Window, 0, winSet.Len())
			for _, win := range winSet.Windows() {
				shifted = append(shifted, a.eventWindow(win, cpl.AggWireDelay, slew))
			}
			for _, win := range interval.NewSet(shifted...).Windows() {
				events[k] = append(events[k], Event{
					Peak:   peak,
					Width:  width,
					Window: win,
					Source: cpl.Aggressor,
				})
			}
		}
	}
	if dropped > 0 && !a.opts.DisableVirtual {
		p := noise.Params{
			HoldRes: ctx.HoldRes,
			CoupleC: dropped,
			VictimC: ctx.VictimC,
			AggSlew: a.opts.DefaultAggSlew,
			Vdd:     a.vdd,
		}
		if peak := p.Peak(); peak > 0 {
			for _, k := range Kinds {
				events[k] = append(events[k], Event{
					Peak:   peak,
					Width:  p.Width(),
					Window: interval.Infinite(),
					Source: "virtual",
				})
			}
		}
	}
	out.events = events
	return out, nil
}

// eventWindow turns an aggressor switching window into the glitch's noise
// window: the edge reaches the coupling site after the aggressor wire
// delay and the peak lands at the end of the edge (up to one slew later).
// Waveform extent around the peak is the combination policy's concern
// (Options.Occupancy), not the window's.
func (a *analyzer) eventWindow(aggWin interval.Window, wireDelay, slew float64) interval.Window {
	if aggWin.IsInfinite() {
		return aggWin
	}
	return aggWin.ShiftRange(wireDelay, wireDelay+slew)
}

// buildEvents assembles the full event list for a net in the current
// iteration into nn.Events, reusing its backing arrays: cached coupled
// events plus freshly derived propagated events. It returns the number of
// propagated events built.
func (a *analyzer) buildEvents(oi int, net *netlist.Net, nn *NetNoise, res *Result) int {
	events := &nn.Events
	events[KindLow] = events[KindLow][:0]
	events[KindHigh] = events[KindHigh][:0]
	if c := a.coupled[oi]; c != nil {
		events[KindLow] = append(events[KindLow], c[KindLow]...)
		events[KindHigh] = append(events[KindHigh], c[KindHigh]...)
	}
	if a.opts.NoPropagation {
		return 0
	}
	drv := net.Driver()
	if drv == nil || drv.Inst == nil {
		return 0
	}
	cell := a.b.Cell(drv.Inst)
	load, err := a.b.LoadCapOf(net.Name)
	if err != nil {
		return 0
	}
	propagated := 0
	for _, arc := range cell.ArcsTo(drv.Pin) {
		if arc.Transfer == nil {
			continue // cell blocks noise through this arc
		}
		ic := drv.Inst.Conns[arc.From]
		if ic == nil {
			continue
		}
		inNoise := res.byID[ic.Net.ID()]
		if inNoise == nil {
			continue
		}
		for _, inKind := range Kinds {
			comb := inNoise.Comb[inKind]
			if comb.Peak <= 0 {
				continue
			}
			outPeak := arc.Transfer.OutputPeak(comb.Peak, comb.Width)
			if outPeak <= 0 {
				continue
			}
			// Gate delay range for the glitch, using its width as the
			// effective input transition time.
			d1 := arc.DelayRise.Eval(comb.Width, load)
			d2 := arc.DelayFall.Eval(comb.Width, load)
			dMin, dMax := math.Min(d1, d2), math.Max(d1, d2)
			outWidth := comb.Width + (dMax - dMin)
			var win interval.Window
			if a.opts.Mode == ModeNoiseWindows {
				win = comb.Window.ShiftRange(dMin, dMax)
			} else {
				// Baselines carry no window information for
				// propagated noise: it may appear any time.
				win = interval.Infinite()
			}
			for _, outKind := range propagateKind(arc.Unate, inKind) {
				propagated++
				events[outKind] = append(events[outKind], Event{
					Peak:   outPeak,
					Width:  outWidth,
					Window: win,
					Source: "prop:" + ic.Net.Name,
				})
			}
		}
	}
	return propagated
}

// propagateKind maps a glitch's victim-state kind through an arc's
// unateness. An upward glitch on a low input of an inverter (negative
// unate) appears as a downward glitch on its high output, and so on.
func propagateKind(u liberty.Unateness, in Kind) []Kind {
	other := KindHigh
	if in == KindHigh {
		other = KindLow
	}
	switch u {
	case liberty.PositiveUnate:
		return []Kind{in}
	case liberty.NegativeUnate:
		return []Kind{other}
	default:
		return []Kind{in, other}
	}
}

// checkViolations evaluates every receiver's immunity curve against its
// net's combined noise and records failures sorted by slack. Iterative
// rounds call it repeatedly; the result slices are reused.
func (a *analyzer) checkViolations(res *Result) {
	a.gatherChecks(res)
	SortViolations(res.Violations)
	SortSlacks(res.Slacks)
}

// gatherChecks runs the immunity sweep and appends violations and slacks in
// canonical order — alphabetical net, then the net's receiver order, then
// kind — without the final slack sort. The sort comparators are not total
// (ties on Slack and Net are possible across receivers and kinds), so the
// deterministic output of checkViolations depends on this exact pre-sort
// sequence; the shard collector returns it so the coordinator can rebuild
// the identical sequence before applying the identical sort.
func (a *analyzer) gatherChecks(res *Result) {
	res.Violations = res.Violations[:0]
	res.Slacks = res.Slacks[:0]
	for _, oi := range a.sortedPos {
		net := a.order[oi]
		netName := net.Name
		nn := res.byID[net.ID()]
		ctx := a.ctxs[oi]
		if ctx == nil {
			continue
		}
		for _, rcv := range ctx.Receivers {
			var pin *liberty.Pin
			if rcv.Inst != nil {
				pin = a.b.Cell(rcv.Inst).Pin(rcv.Pin)
			}
			curve := a.b.Lib.Immunity(pin)
			if curve == nil {
				continue
			}
			for _, k := range Kinds {
				comb := nn.Comb[k]
				if comb.Peak <= 0 {
					continue
				}
				limit := curve.MaxPeak(comb.Width)
				slack := limit - comb.Peak
				res.Slacks = append(res.Slacks, ReceiverSlack{
					Net:      netName,
					Receiver: rcv.Name(),
					Kind:     k,
					Peak:     comb.Peak,
					Limit:    limit,
					Slack:    slack,
				})
				if slack < 0 {
					res.Violations = append(res.Violations, Violation{
						Net:      netName,
						Receiver: rcv.Name(),
						Kind:     k,
						Peak:     comb.Peak,
						Width:    comb.Width,
						Limit:    limit,
						Slack:    slack,
						At:       comb.At,
						Members:  comb.Members,
					})
				}
			}
		}
	}
}

// SortViolations orders violations by slack (tightest first), then net —
// the exact order checkViolations has always produced. Exported so the
// shard coordinator applies the identical sort to the identical canonical
// sequence, keeping distributed reports byte-identical to single-process
// ones.
func SortViolations(v []Violation) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Slack != v[j].Slack {
			return v[i].Slack < v[j].Slack
		}
		return v[i].Net < v[j].Net
	})
}

// SortSlacks orders receiver slacks tightest first, then by net; see
// SortViolations for why it is exported.
func SortSlacks(s []ReceiverSlack) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Slack != s[j].Slack {
			return s[i].Slack < s[j].Slack
		}
		return s[i].Net < s[j].Net
	})
}
