package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bind"
	"repro/internal/netlist"
	"repro/internal/units"
)

// Sharded analysis support. A shard owns a subset of the victim nets but
// holds the full design: timing, RC networks, and cell models are cheap
// relative to the noise analysis itself, and running full STA everywhere is
// what makes a shard's view of aggressor windows bit-identical to the
// single-process engine's. Only propagated noise crosses shard boundaries —
// a victim's coupled events depend on aggressor *timing* (local everywhere)
// while its propagated events read the committed combinations of its fanin
// nets, which may be owned elsewhere. The coordinator (internal/shard)
// ships exactly those fanin combinations between shards, wave by wave, and
// the resulting global fixpoint is byte-identical to runFixpoint.
//
// ShardEngine deliberately reuses the serial engine's own loops (evalNet,
// commitEval, reprepare, delayPass) rather than re-implementing them: the
// equivalence argument is "same code over the same inputs in the same
// order", not a parallel implementation to keep in sync.

// PaddingTol is the padding-convergence tolerance of the iterative loop
// (0.01 ps), exported so the distributed coordinator grows padding with
// exactly the single-process rule.
const PaddingTol = units.Pico / 100

// DefaultMaxIter resolves Options.MaxIter the way the engine does.
func DefaultMaxIter(maxIter int) int {
	if maxIter <= 0 {
		return 16
	}
	return maxIter
}

// DefaultMaxRounds resolves AnalyzeIterative's maxRounds default.
func DefaultMaxRounds(maxRounds int) int {
	if maxRounds <= 0 {
		return 8
	}
	return maxRounds
}

// EffectiveVdd resolves the supply voltage an analysis of this design will
// use — Options.Vdd when positive, the library supply otherwise. The
// coordinator needs it to synthesize full-rail fallbacks for abandoned
// shards that match what any engine would have produced.
func EffectiveVdd(b *bind.Design, opts Options) float64 {
	if opts.Vdd > 0 {
		return opts.Vdd
	}
	return b.Lib.Vdd
}

// FullRail returns the conservative fallback event and combination for a
// net the engine could not analyze, identical to the engine's internal
// fullRailEvent/fullRailComb. Exported so the coordinator can substitute
// the very same bound for every net of an irrecoverably lost shard.
func FullRail(vdd float64) (Event, Combined) {
	a := analyzer{vdd: vdd}
	return a.fullRailEvent(), a.fullRailComb()
}

// PlanWave is one level wavefront of the evaluation schedule, by net name.
type PlanWave struct {
	// Nets lists the wave's nets in evaluation (victimOrder) order.
	Nets []string
	// Serial marks the feedback wave: its nets read each other within a
	// pass (Gauss–Seidel), so they must all be owned by one shard.
	Serial bool
}

// ShardPlan is the design-global schedule and connectivity the partitioner
// and coordinator work from. It is derived deterministically from the bound
// design alone, so every participant (coordinator, each worker, a restarted
// coordinator) reconstructs the identical plan.
type ShardPlan struct {
	// Order is the global victim evaluation order.
	Order []string
	// Waves partitions Order into level wavefronts.
	Waves []PlanWave
	// Fanin maps each analyzed net to the analyzed nets its propagated
	// events read (its driver's input nets), sorted. A shard must know the
	// committed combinations of every fanin of an owned net before
	// evaluating its wave; fanins it does not own are its imports.
	Fanin map[string][]string
	// Adjacency is the undirected affinity graph the partitioner cuts:
	// coupling neighbours (from the RC networks) plus fanin/fanout edges,
	// sorted and deduplicated per net. Cutting a coupling edge costs
	// nothing at runtime (aggressor timing is local to every shard), but
	// keeping coupled and logically adjacent nets together is what keeps
	// boundary traffic and padding churn low.
	Adjacency map[string][]string
	// Feedback lists the nets of serial waves (empty for acyclic designs).
	Feedback []string
}

// BuildShardPlan derives the evaluation schedule and the affinity graph
// from the bound design. It runs no timing and builds no noise contexts, so
// it is cheap enough for the coordinator to rebuild on every run.
func BuildShardPlan(ctx context.Context, b *bind.Design) (*ShardPlan, error) {
	order := victimOrderOf(b)
	plan := &ShardPlan{
		Order:     make([]string, len(order)),
		Fanin:     make(map[string][]string, len(order)),
		Adjacency: make(map[string][]string, len(order)),
	}
	inOrder := make(map[string]bool, len(order))
	for i, n := range order {
		plan.Order[i] = n.Name
		inOrder[n.Name] = true
	}
	for lo := 0; lo < len(order); {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		lvl := netLevel(order[lo])
		hi := lo + 1
		for hi < len(order) && netLevel(order[hi]) == lvl {
			hi++
		}
		w := PlanWave{Nets: plan.Order[lo:hi], Serial: lvl == feedbackLevel}
		plan.Waves = append(plan.Waves, w)
		if w.Serial {
			plan.Feedback = append(plan.Feedback, w.Nets...)
		}
		lo = hi
	}
	adj := make(map[string]map[string]bool, len(order))
	link := func(a, b string) {
		if a == b || !inOrder[a] || !inOrder[b] {
			return
		}
		if adj[a] == nil {
			adj[a] = make(map[string]bool)
		}
		if adj[b] == nil {
			adj[b] = make(map[string]bool)
		}
		adj[a][b] = true
		adj[b][a] = true
	}
	for i, n := range order {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		// Structural fanin: the driver instance's input nets.
		if drv := n.Driver(); drv != nil && drv.Inst != nil {
			var fanin []string
			seen := make(map[string]bool)
			for _, ic := range drv.Inst.Inputs() {
				if ic.Net == nil || !inOrder[ic.Net.Name] || seen[ic.Net.Name] {
					continue
				}
				seen[ic.Net.Name] = true
				fanin = append(fanin, ic.Net.Name)
				link(n.Name, ic.Net.Name)
			}
			sort.Strings(fanin)
			plan.Fanin[n.Name] = fanin
		}
		// Coupling neighbours from the extracted parasitics.
		if nw, err := b.Network(n.Name); err == nil {
			for _, c := range nw.CouplingsView() {
				if c.OtherNet != "" {
					link(n.Name, c.OtherNet)
				}
			}
		}
	}
	i := 0
	for name, set := range adj {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		i++
		out := make([]string, 0, len(set))
		for other := range set {
			out = append(out, other)
		}
		sort.Strings(out)
		plan.Adjacency[name] = out
	}
	return plan, nil
}

// WaveUpdate is one net's committed combination change from an EvalWave
// call: the coordinator applies it to its authoritative state and forwards
// it to every shard that imports the net.
type WaveUpdate struct {
	Net  string
	Comb [2]Combined
}

// ShardCollect is one shard's final contribution to the merged result.
type ShardCollect struct {
	// Nets holds the owned victims' final noise records.
	Nets map[string]*NetNoise
	// Violations and Slacks are in canonical gather order (see
	// gatherChecks) restricted to owned nets — the coordinator interleaves
	// the shards' sequences by global alphabetical net order and then
	// applies the identical final sorts.
	Violations []Violation
	Slacks     []ReceiverSlack
	// Diags are the shard's fail-soft degradations, sorted.
	Diags []Diag
	// Pairs, Filtered, and Propagated are the shard's additive statistics
	// contributions.
	Pairs, Filtered, Propagated int
}

// ShardEngine runs the per-round noise/delay fixpoint over one partition of
// the victim set. It is driven from outside, one wave at a time: the
// coordinator feeds it the boundary combinations its owned nets read
// (SetComb), asks it to evaluate the owned slice of each wave (EvalWave),
// applies the round's padding growth (ApplyRound), and finally collects the
// shard's slice of the result (Collect, DelayImpacts).
type ShardEngine struct {
	a          *analyzer
	res        *Result
	owned      map[string]bool
	ownedOrder []*netlist.Net
}

// NewShardEngine builds a shard over the full design that prepares and
// evaluates only the owned nets. The padding map seeds the timing run
// (values are copied); an engine rebuilt after a worker loss with the
// cumulative padding is therefore in exactly the state a surviving engine
// reached through incremental updates, by the same rebuild-equivalence
// contract core.Session relies on.
func NewShardEngine(ctx context.Context, b *bind.Design, opts Options, owned []string, padding map[string]float64) (*ShardEngine, error) {
	pad := make(map[string]float64, len(padding))
	for net, p := range padding {
		pad[net] = p
	}
	opts.STA.WindowPadding = pad
	a, err := newAnalyzerBase(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	e := &ShardEngine{a: a, owned: make(map[string]bool, len(owned))}
	for i, name := range owned {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if _, ok := a.orderIdx[name]; !ok {
			return nil, fmt.Errorf("core: shard owns unknown net %s", name)
		}
		e.owned[name] = true
	}
	for _, net := range a.order {
		if e.owned[net.Name] {
			e.ownedOrder = append(e.ownedOrder, net)
		}
	}
	if err := a.prepareAll(ctx, e.ownedOrder); err != nil {
		return nil, err
	}
	e.res = a.newResult()
	return e, nil
}

// NumWaves returns the wave count of the evaluation schedule.
func (e *ShardEngine) NumWaves() int { return len(e.a.waves) }

// Vdd returns the effective supply voltage of the run.
func (e *ShardEngine) Vdd() float64 { return e.a.vdd }

// SetComb installs an externally committed combination for a net — a
// boundary import from another shard, or a restored authoritative value
// after this engine was rebuilt mid-run. It reports whether the net exists.
func (e *ShardEngine) SetComb(net string, comb [2]Combined) bool {
	nn := e.res.Nets[net]
	if nn == nil {
		return false
	}
	nn.Comb = comb
	return true
}

// EvalWave evaluates the owned slice of one wave, in global evaluation
// order, through the serial engine's own evalNet/commitEval pair, and
// returns the nets whose committed combination changed. The loop is the
// serial reference loop of evalWave restricted to owned nets; fail-soft
// degradation, statistics, and the change test are therefore identical.
// On error the updates committed so far are still returned — an aborted
// attempt has already mutated the engine, and the runner must remember
// those commits so a retried dispatch reports them rather than losing
// them (a re-evaluated net compares equal and stays silent).
func (e *ShardEngine) EvalWave(ctx context.Context, wi int) ([]WaveUpdate, error) {
	if wi < 0 || wi >= len(e.a.waves) {
		return nil, fmt.Errorf("core: shard wave %d out of range", wi)
	}
	w := e.a.waves[wi]
	var ups []WaveUpdate
	k := 0
	for i := w.lo; i < w.hi; i++ {
		net := e.a.order[i]
		if !e.owned[net.Name] {
			continue
		}
		if k&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return ups, err
			}
		}
		k++
		nn := e.res.byID[net.ID()]
		ev, err := e.a.evalNet(i, net, nn, e.res, &e.a.scratch)
		c, cerr := e.a.commitEval(i, net, nn, ev, err)
		if cerr != nil {
			return ups, cerr
		}
		if c {
			ups = append(ups, WaveUpdate{Net: net.Name, Comb: nn.Comb})
		}
	}
	return ups, nil
}

// ApplyRound applies one round of padding growth: the changed nets' new
// absolute padding values are written into the timing options, the timing
// annotation is updated in place (full design, exactly as the
// single-process iterative loop does), and every owned victim's coupled
// events are rebuilt. Re-preparing a victim whose aggressor timing did not
// move rebuilds identical events, so the blanket re-prepare is equivalent
// to the single-process dirty-set one; it just trades a little work for
// not needing the aggressor index on the coordinator.
func (e *ShardEngine) ApplyRound(ctx context.Context, changed []string, padding map[string]float64) error {
	for _, net := range changed {
		e.a.opts.STA.WindowPadding[net] = padding[net]
	}
	if _, err := e.a.staRes.UpdatePaddingCtx(ctx, e.a.opts.STA, changed); err != nil {
		return err
	}
	return e.a.reprepare(ctx, e.ownedOrder)
}

// DelayImpacts runs the crosstalk delta-delay pass over the owned victims
// and returns their impacts in evaluation order (the order assembleDelay
// flattens in). The impact sort comparator is total, so the coordinator
// may sort the concatenation of all shards' lists and obtain exactly the
// single-process order.
func (e *ShardEngine) DelayImpacts(ctx context.Context) ([]DelayImpact, error) {
	if err := e.a.delayPass(ctx, e.owned); err != nil {
		return nil, err
	}
	var out []DelayImpact
	for i, net := range e.ownedOrder {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out = append(out, e.a.impacts[e.a.orderIdx[net.Name]]...)
	}
	return out, nil
}

// Collect returns the shard's slice of the final result. Violations and
// slacks come from the canonical gather sweep — degraded and non-owned
// victims have no noise context here, so the sweep yields exactly the
// owned nets' canonical subsequence.
func (e *ShardEngine) Collect(ctx context.Context) (*ShardCollect, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.a.gatherChecks(e.res)
	out := &ShardCollect{
		Nets:       make(map[string]*NetNoise, len(e.ownedOrder)),
		Pairs:      e.a.stats.AggressorPairs,
		Filtered:   e.a.stats.Filtered,
		Propagated: e.a.propTotal,
	}
	for i, net := range e.ownedOrder {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out.Nets[net.Name] = e.res.Nets[net.Name]
	}
	out.Violations = append(out.Violations, e.res.Violations...)
	out.Slacks = append(out.Slacks, e.res.Slacks...)
	sortDiags(e.a.diags)
	out.Diags = append(out.Diags, e.a.diags...)
	return out, nil
}
