package core

import (
	"fmt"
	"math"

	"repro/internal/bind"
	"repro/internal/units"
)

// Noise and timing are mutually dependent: switching windows determine
// which glitches combine, but crosstalk also pushes transitions out
// (delta-delay), which widens the switching windows themselves. The
// signoff flow therefore iterates: analyze with the current windows,
// convert the worst per-net push-out into late-edge window padding, and
// reanalyze until the padding stops growing. Padding only grows (the
// maximum over rounds is kept) and each net's delta is bounded by
// slew·Vdd/Vdd, so the loop converges; non-convergence within the round
// budget is reported rather than hidden.

// IterativeResult is the converged joint noise/timing analysis.
type IterativeResult struct {
	// Noise and Delay are the final round's analyses.
	Noise *Result
	Delay *DelayResult
	// Padding is the final per-net late-edge widening applied, seconds.
	Padding map[string]float64
	// Rounds is the number of analysis rounds run.
	Rounds int
	// Converged reports whether the padding reached a fixpoint within
	// the round budget.
	Converged bool
}

// AnalyzeIterative runs the noise–timing loop. maxRounds bounds the outer
// iteration (default 8 when zero). The tolerance for padding convergence
// is 0.01 ps.
func AnalyzeIterative(b *bind.Design, opts Options, maxRounds int) (*IterativeResult, error) {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	const tol = units.Pico / 100
	padding := make(map[string]float64)
	out := &IterativeResult{Padding: padding}
	for round := 1; round <= maxRounds; round++ {
		out.Rounds = round
		o := opts
		o.STA.WindowPadding = padding
		noiseRes, err := Analyze(b, o)
		if err != nil {
			return nil, fmt.Errorf("core: iterative round %d: %w", round, err)
		}
		delayRes, err := AnalyzeDelay(b, o)
		if err != nil {
			return nil, fmt.Errorf("core: iterative round %d: %w", round, err)
		}
		out.Noise = noiseRes
		out.Delay = delayRes

		grew := false
		for _, im := range delayRes.Impacts {
			if im.Delta > padding[im.Net]+tol {
				padding[im.Net] = im.Delta
				grew = true
			}
		}
		if !grew {
			out.Converged = true
			return out, nil
		}
	}
	return out, nil
}

// MaxPadding returns the largest applied window padding.
func (r *IterativeResult) MaxPadding() float64 {
	var worst float64
	for _, p := range r.Padding {
		worst = math.Max(worst, p)
	}
	return worst
}
