package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/bind"
	"repro/internal/units"
)

// Noise and timing are mutually dependent: switching windows determine
// which glitches combine, but crosstalk also pushes transitions out
// (delta-delay), which widens the switching windows themselves. The
// signoff flow therefore iterates: analyze with the current windows,
// convert the worst per-net push-out into late-edge window padding, and
// reanalyze until the padding stops growing. Padding only grows (the
// maximum over rounds is kept) and each net's delta is bounded by
// slew·Vdd/Vdd, so the loop converges; non-convergence within the round
// budget is reported rather than hidden, and a divergence watchdog stops
// the loop early when the padding growth is not contracting or a round
// blows its wall-clock budget — a run that will not converge should say
// so instead of silently burning rounds.
//
// The loop is incremental: one analyzer persists across rounds, shared
// between the noise and delay passes. Round 1 is a full analysis; each
// later round updates the timing annotation in place for the padded nets'
// cones (sta.Result.UpdatePaddingCtx), derives the analysis dirty sets
// from the timing dirty set (see incremental.go), re-prepares and
// re-evaluates only those, and reuses every other victim's committed
// results. The per-round results are identical to a from-scratch
// re-analysis with the same padding, except for execution statistics
// (Stats.Iterations counts only the incremental passes) and diagnostics
// under fault injection (a hook that fires on clean victims fires only
// for re-prepared ones).

// IterativeResult is the converged joint noise/timing analysis.
type IterativeResult struct {
	// Noise and Delay are the final round's analyses.
	Noise *Result
	Delay *DelayResult
	// Padding is the final per-net late-edge widening applied, seconds.
	Padding map[string]float64
	// Rounds is the number of analysis rounds run.
	Rounds int
	// Converged reports whether the padding reached a fixpoint within
	// the round budget.
	Converged bool
	// Diverging reports that the watchdog cut the loop short (padding
	// growth not contracting, a round over Options.RoundBudget) or that
	// the padding was still growing when the rounds ran out. Always false
	// when Converged.
	Diverging bool
	// DivergeReason explains the watchdog trigger ("" unless Diverging).
	DivergeReason string
}

// AnalyzeIterative runs the noise–timing loop. maxRounds bounds the outer
// iteration (default 8 when zero). The tolerance for padding convergence
// is 0.01 ps.
func AnalyzeIterative(b *bind.Design, opts Options, maxRounds int) (*IterativeResult, error) {
	return AnalyzeIterativeCtx(context.Background(), b, opts, maxRounds)
}

// AnalyzeIterativeCtx is AnalyzeIterative with cooperative cancellation,
// checked between rounds and inside each round's analyses.
func AnalyzeIterativeCtx(ctx context.Context, b *bind.Design, opts Options, maxRounds int) (*IterativeResult, error) {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	const tol = PaddingTol
	padding := make(map[string]float64)
	out := &IterativeResult{Padding: padding}
	// The analyzer and the timing engine alias this map: padding grown
	// after a round is what the next round's incremental update applies.
	opts.STA.WindowPadding = padding
	var (
		a       *analyzer
		res     *Result
		changed []string // nets whose padding grew last round
	)
	// Watchdog state: the largest per-net padding increase of the
	// previous round, and how many consecutive rounds failed to contract.
	prevGrowth := math.Inf(1)
	stalled := 0
	for round := 1; round <= maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		wrap := func(err error) error {
			return fmt.Errorf("core: iterative round %d: %w", round, err)
		}
		if a == nil {
			var err error
			if a, err = newAnalyzer(ctx, b, opts); err != nil {
				return nil, wrap(err)
			}
			res = a.newResult()
			if err := a.runFixpoint(ctx, res, nil); err != nil {
				return nil, wrap(err)
			}
			a.finishNoise(res)
			if err := a.delayPass(ctx, nil); err != nil {
				return nil, wrap(err)
			}
		} else {
			staDirty, err := a.staRes.UpdatePaddingCtx(ctx, a.opts.STA, changed)
			if err != nil {
				return nil, wrap(err)
			}
			reprep, evalDirty, delayDirty := a.dirtyAfterPadding(staDirty)
			if err := a.reprepare(ctx, reprep); err != nil {
				return nil, wrap(err)
			}
			if err := a.runFixpoint(ctx, res, evalDirty); err != nil {
				return nil, wrap(err)
			}
			a.finishNoise(res)
			if err := a.delayPass(ctx, delayDirty); err != nil {
				return nil, wrap(err)
			}
		}
		delayRes := a.assembleDelay()
		out.Rounds = round
		out.Noise = res
		out.Delay = delayRes

		grew := false
		var growth float64
		changed = changed[:0]
		for _, im := range delayRes.Impacts {
			if im.Delta > padding[im.Net]+tol {
				growth = math.Max(growth, im.Delta-padding[im.Net])
				padding[im.Net] = im.Delta
				changed = append(changed, im.Net)
				grew = true
			}
		}
		if !grew {
			out.Converged = true
			return out, nil
		}
		if opts.RoundBudget > 0 {
			if elapsed := time.Since(start); elapsed > opts.RoundBudget {
				out.Diverging = true
				out.DivergeReason = fmt.Sprintf("round %d took %s, over the %s budget",
					round, elapsed.Round(time.Millisecond), opts.RoundBudget)
				return out, nil
			}
		}
		// Contraction check: a healthy loop's padding increments shrink
		// every round (the feedback gain is < 1). Two consecutive rounds
		// of non-shrinking growth mean the loop is chasing its own tail.
		if growth >= prevGrowth-tol {
			stalled++
		} else {
			stalled = 0
		}
		if stalled >= 2 {
			out.Diverging = true
			out.DivergeReason = fmt.Sprintf(
				"padding growth not contracting for %d rounds (latest %.3gps/round)",
				stalled, growth/units.Pico)
			return out, nil
		}
		prevGrowth = growth
	}
	// The budget ran out with padding still growing: the loop did not
	// converge and was still moving — report it as diverging rather than
	// letting a silent Converged=false look like a near-miss.
	out.Diverging = true
	out.DivergeReason = fmt.Sprintf("padding still growing after %d rounds", maxRounds)
	return out, nil
}

// MaxPadding returns the largest applied window padding.
func (r *IterativeResult) MaxPadding() float64 {
	var worst float64
	for _, p := range r.Padding {
		worst = math.Max(worst, p)
	}
	return worst
}
