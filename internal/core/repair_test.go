package core

import (
	"strings"
	"testing"

	"repro/internal/sta"
	"repro/internal/units"
)

func TestSuggestRepairsBasics(t *testing.T) {
	// Two aggressors: the dominant coupling's own contribution exceeds
	// the excess, so a partial coupling cut is a complete fix.
	b := busFixture(t, 2, 8*units.Femto, 1*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if len(res.Violations) == 0 {
		t.Fatal("fixture produced no violations")
	}
	repairs, err := SuggestRepairs(b, res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != len(res.Violations) {
		t.Fatalf("repairs = %d, violations = %d", len(repairs), len(res.Violations))
	}
	r := repairs[0]
	if r.DominantAggressor == "" {
		t.Fatalf("no dominant aggressor: %+v", r)
	}
	if r.CouplingCut <= 0 || r.CouplingCut > 1 {
		t.Fatalf("coupling cut = %g", r.CouplingCut)
	}
	if r.HoldResFactor <= 0 || r.HoldResFactor >= 1 {
		t.Fatalf("hold factor = %g", r.HoldResFactor)
	}
	// The generic library has stronger inverters than the INV_X1 victim
	// driver; some upsizing target should exist unless the needed factor
	// is below the strongest cell.
	desc := r.Describe()
	for _, want := range []string{"net v", "coupling", "mV over"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe() = %q missing %q", desc, want)
		}
	}
}

func TestRepairUpsizeTarget(t *testing.T) {
	// Victim driven by INV_X1 (hold 4.8 kΩ): factors down to 600/4800 =
	// 0.125 are achievable within the INV family (X8).
	b := busFixture(t, 4, 8*units.Femto, 1*units.Femto)
	inputs := staggeredInputs(4, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	repairs, err := SuggestRepairs(b, res, 0)
	if err != nil {
		t.Fatal(err)
	}
	foundUpsize := false
	for _, r := range repairs {
		if r.UpsizeTo != "" {
			foundUpsize = true
			if !strings.HasPrefix(r.UpsizeTo, "INV_X") {
				t.Fatalf("upsize target %q not in the INV family", r.UpsizeTo)
			}
			if r.UpsizeTo == "INV_X1" {
				t.Fatal("suggested the same cell")
			}
		}
	}
	if !foundUpsize {
		t.Log("no upsize target found (needed factor below strongest cell); acceptable")
	}
}

func TestRepairCouplingCutInsufficientAlone(t *testing.T) {
	// Four equal aggressors: the excess exceeds any one coupling's
	// contribution, so the advisor must report that a single cut cannot
	// fix it (CouplingCut == 0) while still naming the dominant source.
	b := busFixture(t, 4, 8*units.Femto, 1*units.Femto)
	inputs := staggeredInputs(4, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	repairs, err := SuggestRepairs(b, res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) == 0 {
		t.Fatal("no repairs")
	}
	r := repairs[0]
	if r.DominantAggressor == "" {
		t.Fatal("dominant aggressor missing")
	}
	if r.CouplingCut != 0 {
		t.Fatalf("cut = %g, want 0 (single cut insufficient)", r.CouplingCut)
	}
}

func TestRepairMarginValidation(t *testing.T) {
	b := busFixture(t, 2, 8*units.Femto, 1*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if _, err := SuggestRepairs(b, res, -0.1); err == nil {
		t.Fatal("negative margin accepted")
	}
	if _, err := SuggestRepairs(b, res, 1.0); err == nil {
		t.Fatal("margin 1 accepted")
	}
}

func TestRepairCleanDesignEmpty(t *testing.T) {
	b := busFixture(t, 2, 1*units.Femto, 30*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if len(res.Violations) != 0 {
		t.Fatal("weakly coupled fixture violated")
	}
	repairs, err := SuggestRepairs(b, res, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(repairs) != 0 {
		t.Fatalf("repairs on clean design: %+v", repairs)
	}
}

func TestHoldRepairBounds(t *testing.T) {
	v := Violation{Peak: 0.8}
	if f := holdRepair(v, 0.9); f != 1 {
		t.Fatalf("already passing factor = %g", f)
	}
	if f := holdRepair(v, 0.4); f != 0.5 {
		t.Fatalf("factor = %g, want 0.5", f)
	}
	if f := holdRepair(v, 0); f != 0 {
		t.Fatalf("zero target factor = %g", f)
	}
	if f := holdRepair(Violation{Peak: 0}, 0.5); f != 1 {
		t.Fatalf("zero peak factor = %g", f)
	}
}
