package core

import (
	"testing"

	"repro/internal/bind"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestPolarityInvert(t *testing.T) {
	if polPos.invert() != polNeg || polNeg.invert() != polPos {
		t.Fatal("single-bit inversion wrong")
	}
	if polBoth.invert() != polBoth {
		t.Fatal("both must stay both")
	}
	if polarity(0).invert() != 0 {
		t.Fatal("empty polarity changed")
	}
}

// corrFixture: in -> BUF b1 -> p ; in -> INV i1 -> n ; p,n -> NAND2 g -> y.
func corrFixture(t *testing.T) *bind.Design {
	t.Helper()
	d := netlist.New("corr")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := d.AddPort("in", netlist.In)
	must(err)
	_, err = d.AddPort("out", netlist.Out)
	must(err)
	for _, g := range []struct{ inst, cell, in, out string }{
		{"b1", "BUF_X1", "in", "p"},
		{"i1", "INV_X1", "in", "n"},
	} {
		_, err = d.AddInst(g.inst, g.cell)
		must(err)
		must(d.Connect(g.inst, "A", g.in, netlist.In))
		must(d.Connect(g.inst, "Y", g.out, netlist.Out))
	}
	_, err = d.AddInst("g", "NAND2_X1")
	must(err)
	must(d.Connect("g", "A", "p", netlist.In))
	must(d.Connect("g", "B", "n", netlist.In))
	must(d.Connect("g", "Y", "out", netlist.Out))
	b, err := bind.New(d, liberty.Generic(), nil)
	must(err)
	return b
}

func TestBuildCorrelationsPolarities(t *testing.T) {
	b := corrFixture(t)
	corr := buildCorrelations(b)
	if got := corr["in"]; len(got) != 1 || got["in"] != polPos {
		t.Fatalf("in sources = %v", got)
	}
	if got := corr["p"]; len(got) != 1 || got["in"] != polPos {
		t.Fatalf("p sources = %v", got)
	}
	if got := corr["n"]; len(got) != 1 || got["in"] != polNeg {
		t.Fatalf("n sources = %v", got)
	}
	// Reconvergence: out sees in through both a double inversion (pos)
	// and a single inversion path (neg) -> both.
	if got := corr["out"]; len(got) != 1 || got["in"] != polBoth {
		t.Fatalf("out sources = %v", got)
	}
}

func TestBuildCorrelationsLoopUnknown(t *testing.T) {
	d := netlist.New("loop")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := d.AddPort("in", netlist.In)
	must(err)
	for _, n := range []string{"g1", "g2"} {
		_, err = d.AddInst(n, "NAND2_X1")
		must(err)
	}
	must(d.Connect("g1", "A", "in", netlist.In))
	must(d.Connect("g1", "B", "q", netlist.In))
	must(d.Connect("g1", "Y", "pp", netlist.Out))
	must(d.Connect("g2", "A", "pp", netlist.In))
	must(d.Connect("g2", "B", "in", netlist.In))
	must(d.Connect("g2", "Y", "q", netlist.Out))
	b, err := bind.New(d, liberty.Generic(), nil)
	must(err)
	corr := buildCorrelations(b)
	if s, ok := corr["pp"]; !ok || s != nil {
		t.Fatalf("loop net pp sources = %v (present=%v), want nil entry", s, ok)
	}
}

func TestExclusiveEdges(t *testing.T) {
	pos := sourceMap{"in": polPos}
	neg := sourceMap{"in": polNeg}
	both := sourceMap{"in": polBoth}
	other := sourceMap{"other": polPos}
	multi := sourceMap{"in": polPos, "x": polPos}

	if !exclusiveEdges(pos, neg, true, true) {
		t.Error("pos-rise vs neg-rise on one source must be exclusive")
	}
	if exclusiveEdges(pos, pos, true, true) {
		t.Error("same polarity same edge must be compatible")
	}
	if !exclusiveEdges(pos, pos, true, false) {
		t.Error("same polarity opposite edges must be exclusive")
	}
	if exclusiveEdges(pos, neg, true, false) {
		t.Error("pos-rise vs neg-fall both need the source to rise")
	}
	if exclusiveEdges(pos, both, true, true) {
		t.Error("both-polarity must never be excluded")
	}
	if exclusiveEdges(pos, other, true, true) {
		t.Error("different sources must be compatible")
	}
	if exclusiveEdges(multi, neg, true, true) {
		t.Error("multi-source nets must not be excluded")
	}
	if exclusiveEdges(nil, neg, true, true) {
		t.Error("unknown sources must not be excluded")
	}
}

func TestCorrelationEndToEnd(t *testing.T) {
	g, err := workload.Differential(workload.DifferentialSpec{Pairs: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	run := func(corr bool) Combined {
		res, err := Analyze(b, Options{
			Mode:             ModeNoiseWindows,
			LogicCorrelation: corr,
			STA:              g.STAOptions(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.NoiseOf("v").Comb[KindLow]
	}
	plain := run(false)
	corr := run(true)
	if len(plain.Members) != 4 {
		t.Fatalf("uncorrelated members = %v", plain.Members)
	}
	if len(corr.Members) != 2 {
		t.Fatalf("correlated members = %v", corr.Members)
	}
	// Exactly one branch per pair survives.
	seen := map[string]bool{}
	for _, m := range corr.Members {
		pair := m[1:] // p0/n0 -> "0"
		if seen[pair] {
			t.Fatalf("both branches of pair %s combined: %v", pair, corr.Members)
		}
		seen[pair] = true
	}
	if corr.Peak >= plain.Peak {
		t.Fatalf("correlation did not reduce peak: %g vs %g", corr.Peak, plain.Peak)
	}
}

func TestCorrelationConservative(t *testing.T) {
	// Correlation must never increase noise, on any workload.
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 0, 60*units.Pico)
	plain := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	corr := analyze(t, b, Options{Mode: ModeNoiseWindows, LogicCorrelation: true, STA: sta.Options{InputTiming: inputs}})
	if corr.TotalNoise() > plain.TotalNoise()+1e-9 {
		t.Fatalf("correlation increased noise: %g vs %g", corr.TotalNoise(), plain.TotalNoise())
	}
	// Independent inputs here: correlation must change nothing.
	if corr.TotalNoise() < plain.TotalNoise()-1e-9 {
		t.Fatalf("correlation removed noise between independent aggressors")
	}
}
