package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sta"
	"repro/internal/units"
)

// hookFailing returns a PrepareHook erroring on the named nets.
func hookFailing(bad ...string) func(string) error {
	return func(net string) error {
		for _, b := range bad {
			if net == b {
				return fmt.Errorf("injected failure on %s", net)
			}
		}
		return nil
	}
}

func TestFailSoftIsolatesInjectedFaults(t *testing.T) {
	b := busFixture(t, 4, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(4, 100*units.Pico, 50*units.Pico)
	// NoPropagation keeps the healthy nets independent of the degraded
	// ones, so their results must match the fault-free run exactly.
	base := Options{Mode: ModeNoiseWindows, NoPropagation: true, STA: sta.Options{InputTiming: inputs}}

	clean := analyze(t, b, base)

	faulty := base
	faulty.FailSoft = true
	faulty.PrepareHook = hookFailing("a1", "a2")
	res, err := Analyze(b, faulty)
	if err != nil {
		t.Fatal(err)
	}

	// Exactly k diags, sorted by net, prepare stage.
	if len(res.Diags) != 2 {
		t.Fatalf("diags = %+v, want 2", res.Diags)
	}
	if res.Diags[0].Net != "a1" || res.Diags[1].Net != "a2" {
		t.Fatalf("diags not sorted by net: %+v", res.Diags)
	}
	for _, d := range res.Diags {
		if d.Stage != StagePrepare || !d.Degraded || d.Err == nil {
			t.Fatalf("bad diag: %+v", d)
		}
		if !strings.Contains(d.Err.Error(), "injected failure") {
			t.Fatalf("diag lost cause: %v", d.Err)
		}
	}
	if res.Stats.DegradedNets != 2 {
		t.Fatalf("Stats.DegradedNets = %d", res.Stats.DegradedNets)
	}

	// Degraded victims carry the conservative full-rail bound: peak
	// pinned at Vdd with an always-on window — never an optimistic zero.
	vdd := b.Lib.Vdd
	for _, name := range []string{"a1", "a2"} {
		nn := res.NoiseOf(name)
		if nn == nil {
			t.Fatalf("degraded net %s missing from result", name)
		}
		for _, k := range Kinds {
			if nn.Comb[k].Peak != vdd {
				t.Fatalf("%s %v peak = %g, want full rail %g", name, k, nn.Comb[k].Peak, vdd)
			}
			if !nn.Comb[k].Window.IsInfinite() {
				t.Fatalf("%s %v window = %v, want infinite", name, k, nn.Comb[k].Window)
			}
		}
	}

	// Every other net is bit-identical to the fault-free run.
	for name, want := range clean.Nets {
		if name == "a1" || name == "a2" {
			continue
		}
		got := res.NoiseOf(name)
		if got == nil {
			t.Fatalf("net %s missing", name)
		}
		for _, k := range Kinds {
			if !combEqual(got.Comb[k], want.Comb[k], 0) {
				t.Fatalf("net %s %v changed: %+v vs %+v", name, k, got.Comb[k], want.Comb[k])
			}
		}
	}
	// Degraded nets report no synthetic per-receiver violations; the
	// Diag plus the full-rail bound is the failure record.
	for _, v := range res.Violations {
		if v.Net == "a1" || v.Net == "a2" {
			t.Fatalf("synthetic violation on degraded net: %+v", v)
		}
	}
}

func TestFailSoftRecoversPanic(t *testing.T) {
	b := busFixture(t, 2, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 100*units.Pico, 50*units.Pico)
	opts := Options{
		Mode:     ModeNoiseWindows,
		FailSoft: true,
		STA:      sta.Options{InputTiming: inputs},
		PrepareHook: func(net string) error {
			if net == "a0" {
				panic("injected panic")
			}
			return nil
		},
	}
	res, err := Analyze(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 || res.Diags[0].Net != "a0" {
		t.Fatalf("diags = %+v", res.Diags)
	}
	if !strings.Contains(res.Diags[0].Err.Error(), "panic") {
		t.Fatalf("panic not named in diag: %v", res.Diags[0].Err)
	}
}

func TestFailFastReturnsFirstError(t *testing.T) {
	b := busFixture(t, 4, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(4, 100*units.Pico, 50*units.Pico)
	opts := Options{
		Mode:        ModeNoiseWindows,
		PrepareHook: hookFailing("a1"),
		STA:         sta.Options{InputTiming: inputs},
	}
	if _, err := Analyze(b, opts); err == nil || !strings.Contains(err.Error(), "a1") {
		t.Fatalf("fail-fast error = %v", err)
	}
}

func TestFailSoftParallelMatchesSerial(t *testing.T) {
	b := busFixture(t, 24, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(24, 100*units.Pico, 50*units.Pico)
	mk := func(workers int) *Result {
		res, err := Analyze(b, Options{
			Mode:        ModeNoiseWindows,
			FailSoft:    true,
			Workers:     workers,
			PrepareHook: hookFailing("a3", "a17"),
			STA:         sta.Options{InputTiming: inputs},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, par := mk(0), mk(8)
	if len(serial.Diags) != 2 || len(par.Diags) != 2 {
		t.Fatalf("diags: serial %d, parallel %d", len(serial.Diags), len(par.Diags))
	}
	for i := range serial.Diags {
		if serial.Diags[i].Net != par.Diags[i].Net || serial.Diags[i].Stage != par.Diags[i].Stage {
			t.Fatalf("diag %d differs: %+v vs %+v", i, serial.Diags[i], par.Diags[i])
		}
	}
	for name, want := range serial.Nets {
		got := par.Nets[name]
		for _, k := range Kinds {
			if !combEqual(got.Comb[k], want.Comb[k], 0) {
				t.Fatalf("net %s %v differs between serial and parallel", name, k)
			}
		}
	}
}

// TestFailFastDrainsWorkersPromptly is the regression test for the
// worker-pool drain: an error on the first victim of a large design must
// stop the remaining preparation work instead of preparing all ~500
// doomed nets to completion.
func TestFailFastDrainsWorkersPromptly(t *testing.T) {
	const n = 500
	b := busFixture(t, n, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(n, 100*units.Pico, 50*units.Pico)
	var calls atomic.Int64
	opts := Options{
		Mode:    ModeNoiseWindows,
		Workers: 8,
		STA:     sta.Options{InputTiming: inputs},
		PrepareHook: func(net string) error {
			calls.Add(1)
			// i_a0 is the first victim in analysis order (port-driven
			// nets sort before instance-driven ones).
			if net == "i_a0" {
				return errors.New("early failure")
			}
			// Make each healthy preparation non-trivial so in-flight
			// work cannot race through the whole queue before the stop
			// flag is observed.
			time.Sleep(100 * time.Microsecond)
			return nil
		},
	}
	if _, err := Analyze(b, opts); err == nil {
		t.Fatal("early failure not reported")
	}
	// With 8 workers only the handful of already-claimed nets may still
	// finish; a full run would prepare all ~1000 nets of the fixture.
	if got := calls.Load(); got > 100 {
		t.Fatalf("prepared %d nets after early failure, want prompt drain", got)
	}
}

func TestAnalyzeCtxCancellation(t *testing.T) {
	b := busFixture(t, 4, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(4, 100*units.Pico, 50*units.Pico)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}
	if _, err := AnalyzeCtx(ctx, b, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeCtx = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeDelayCtx(ctx, b, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeDelayCtx = %v, want context.Canceled", err)
	}
	if _, err := AnalyzeIterativeCtx(ctx, b, opts, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeIterativeCtx = %v, want context.Canceled", err)
	}
}

func TestAnalyzeCtxDeadlinePrompt(t *testing.T) {
	const n = 200
	b := busFixture(t, n, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(n, 100*units.Pico, 50*units.Pico)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	opts := Options{
		Mode:    ModeNoiseWindows,
		Workers: 4,
		STA:     sta.Options{InputTiming: inputs},
		PrepareHook: func(string) error {
			time.Sleep(2 * time.Millisecond)
			return nil
		},
	}
	start := time.Now()
	_, err := AnalyzeCtx(ctx, b, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AnalyzeCtx = %v, want deadline exceeded", err)
	}
	// The engine must notice the deadline within 1s of it firing.
	if elapsed > 1*time.Second {
		t.Fatalf("cancellation took %s", elapsed)
	}
}

func TestFailSoftDelayAnalysis(t *testing.T) {
	b := busFixture(t, 3, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(3, 100*units.Pico, 50*units.Pico)
	res, err := AnalyzeDelay(b, Options{
		Mode:        ModeNoiseWindows,
		FailSoft:    true,
		PrepareHook: hookFailing("a1"),
		STA:         sta.Options{InputTiming: inputs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diags) != 1 || res.Diags[0].Net != "a1" || res.Diags[0].Stage != StagePrepare {
		t.Fatalf("diags = %+v", res.Diags)
	}
}
