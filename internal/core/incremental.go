package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// Dirty-set derivation for the iterative engine. After a round, window
// padding grows on the nets whose delay impact exceeded it; the STA update
// reports the set of nets whose timing annotation was recomputed. From
// that timing dirty set three analysis dirty sets follow:
//
//   - reprep: victims whose coupled events must be rebuilt — any victim
//     with an aggressor whose timing changed (an aggressor's switching
//     window is the only timing input of a coupled event). The noise
//     context itself is RC-derived and timing-independent, so only the
//     events are rebuilt. The coupling filter is also timing-independent,
//     so indexing over all couplings (kept or filtered) is conservative
//     and exact.
//
//   - evalDirty: nets whose fixpoint evaluation can change — the re-
//     prepared victims plus their structural fanout closure (propagated
//     noise flows only along driver arcs). A victim's own timing change
//     does not move its noise (its windows enter only the delay pass and
//     its role as an aggressor), so evalDirty needs no entry for a net
//     whose aggressors all kept their timing. The closure makes the set
//     closed under fanout, which is what lets runFixpoint filter every
//     pass by it exactly.
//
//   - delayDirty: nets whose delta-delay impacts can change — evalDirty
//     (their coupled events moved) plus any analyzed net whose own timing
//     changed (the victim window is the other input of the delay query).

// incrIndexes builds the static indexes the dirty-set derivation needs,
// once per analyzer: victim lists per aggressor name, and the structural
// fanout net graph restricted to analyzed nets.
func (a *analyzer) incrIndexes() {
	if a.aggIndex != nil {
		return
	}
	a.aggIndex = make(map[string][]string)
	for ni, net := range a.order {
		ctx := a.ctxs[ni]
		if ctx == nil {
			continue
		}
		for i := range ctx.Couplings {
			agg := ctx.Couplings[i].Aggressor
			a.aggIndex[agg] = append(a.aggIndex[agg], net.Name)
		}
	}
	a.fanout = make(map[string][]string, len(a.order))
	for _, net := range a.order {
		for _, lc := range net.Loads() {
			if lc.Inst == nil {
				continue
			}
			for _, oc := range lc.Inst.Outputs() {
				if _, ok := a.orderIdx[oc.Net.Name]; ok {
					a.fanout[net.Name] = append(a.fanout[net.Name], oc.Net.Name)
				}
			}
		}
	}
}

// dirtyAfterPadding maps the STA dirty set of a round onto the analysis
// dirty sets: the victims to re-prepare (in evaluation order), the nets to
// re-run the noise fixpoint on, and the nets to re-run delay analysis on.
func (a *analyzer) dirtyAfterPadding(staDirty map[string]bool) (reprep []*netlist.Net, evalDirty, delayDirty map[string]bool) {
	a.incrIndexes()
	reprepSet := make(map[string]bool)
	for agg := range staDirty {
		for _, victim := range a.aggIndex[agg] {
			reprepSet[victim] = true
		}
	}
	for _, net := range a.order {
		if reprepSet[net.Name] {
			reprep = append(reprep, net)
		}
	}
	evalDirty = make(map[string]bool, len(reprepSet))
	queue := make([]string, 0, len(reprepSet))
	for name := range reprepSet {
		evalDirty[name] = true
		queue = append(queue, name)
	}
	// The propagation below only grows a set, so traversal order cannot
	// change the result — but a deterministic worklist keeps the walk
	// reproducible under the serial-identical guarantee, and debuggable.
	sort.Strings(queue)
	if !a.opts.NoPropagation {
		for len(queue) > 0 {
			name := queue[0]
			queue = queue[1:]
			for _, out := range a.fanout[name] {
				if !evalDirty[out] {
					evalDirty[out] = true
					queue = append(queue, out)
				}
			}
		}
	}
	delayDirty = make(map[string]bool, len(evalDirty)+len(staDirty))
	for name := range evalDirty {
		delayDirty[name] = true
	}
	for name := range staDirty {
		if _, ok := a.orderIdx[name]; ok {
			delayDirty[name] = true
		}
	}
	return reprep, evalDirty, delayDirty
}

// safeReprepare rebuilds one victim's coupled events from its cached
// noise context, with the same panic isolation and fault-injection hook as
// the initial preparation. Degraded victims (nil context) are skipped —
// their full-rail fallback stands.
func (a *analyzer) safeReprepare(pos int, net *netlist.Net) (p *preparedNet, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: panic preparing net %s: %v", net.Name, r)
		}
	}()
	if h := a.opts.PrepareHook; h != nil {
		if err := h(net.Name); err != nil {
			return nil, err
		}
	}
	nctx := a.ctxs[pos]
	if nctx == nil {
		return nil, nil
	}
	return a.prepareEvents(net, nctx)
}

// reprepare rebuilds the coupled events of the given victims on the shared
// analyzer, committing serially in evaluation order.
func (a *analyzer) reprepare(ctx context.Context, victims []*netlist.Net) error {
	for i, net := range victims {
		if i&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		pos := a.orderIdx[net.Name]
		p, err := a.safeReprepare(pos, net)
		if err != nil {
			if !a.opts.FailSoft {
				return err
			}
			a.degradeNet(pos, net.Name, StagePrepare, err)
			continue
		}
		if p != nil {
			a.commitPrepared(pos, p)
		}
	}
	return nil
}
