package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/spef"
	"repro/internal/sta"
	"repro/internal/units"
)

// busFixture builds a victim net "v" flanked by n aggressor nets
// "a0..a(n-1)", every net driven by an INV_X1 from its own input port and
// received by an INV_X1. Each aggressor couples cx to the victim; the
// victim carries cg of grounded wire cap.
func busFixture(t testing.TB, n int, cx, cg float64) *bind.Design {
	t.Helper()
	d := netlist.New("bus")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	para := spef.NewParasitics("bus")
	addNet := func(name string, conns []spef.Conn, caps []spef.CapEntry) {
		must(para.AddNet(&spef.Net{Name: name, Conns: conns, Caps: caps,
			Ress: []spef.ResEntry{{A: "d" + name + ":Y", B: name + ":1", Ohms: 50},
				{A: name + ":1", B: "r" + name + ":A", Ohms: 50}}}))
	}
	nets := []string{"v"}
	for i := 0; i < n; i++ {
		nets = append(nets, fmt.Sprintf("a%d", i))
	}
	for _, name := range nets {
		_, err := d.AddPort("i_"+name, netlist.In)
		must(err)
		_, err = d.AddInst("d"+name, "INV_X1")
		must(err)
		_, err = d.AddInst("r"+name, "INV_X1")
		must(err)
		must(d.Connect("d"+name, "A", "i_"+name, netlist.In))
		must(d.Connect("d"+name, "Y", name, netlist.Out))
		must(d.Connect("r"+name, "A", name, netlist.In))
		must(d.Connect("r"+name, "Y", "o_"+name, netlist.Out))
	}
	// Victim parasitics: grounded cg plus cx per aggressor.
	vcaps := []spef.CapEntry{{Node: "v:1", F: cg}}
	for i := 0; i < n; i++ {
		vcaps = append(vcaps, spef.CapEntry{Node: "v:1", Other: fmt.Sprintf("a%d:1", i), F: cx})
	}
	conns := func(name string) []spef.Conn {
		return []spef.Conn{
			{Pin: "d" + name + ":Y", Dir: spef.DirOut, Node: "d" + name + ":Y"},
			{Pin: "r" + name + ":A", Dir: spef.DirIn, Node: "r" + name + ":A"},
		}
	}
	addNet("v", conns("v"), vcaps)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("a%d", i)
		addNet(name, conns(name), []spef.CapEntry{{Node: name + ":1", F: 4 * units.Femto}})
	}
	b, err := bind.New(d, liberty.Generic(), para)
	must(err)
	return b
}

// staggeredInputs gives each aggressor input port a disjoint arrival
// window: aggressor i switches in [i*sep, i*sep + width].
func staggeredInputs(n int, sep, width float64) map[string]*sta.Timing {
	m := make(map[string]*sta.Timing)
	for i := 0; i < n; i++ {
		w := interval.SetOf(float64(i)*sep, float64(i)*sep+width)
		m[fmt.Sprintf("i_a%d", i)] = &sta.Timing{
			Rise:     w,
			Fall:     w,
			SlewRise: sta.Range{Min: 20 * units.Pico, Max: 20 * units.Pico},
			SlewFall: sta.Range{Min: 20 * units.Pico, Max: 20 * units.Pico},
		}
	}
	// The victim input is quiet so its own switching is inert.
	m["i_v"] = &sta.Timing{
		SlewRise: sta.Range{Min: math.Inf(1), Max: math.Inf(-1)},
		SlewFall: sta.Range{Min: math.Inf(1), Max: math.Inf(-1)},
	}
	return m
}

func analyze(t testing.TB, b *bind.Design, opts Options) *Result {
	t.Helper()
	res, err := Analyze(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDisjointWindowsRemovePessimism(t *testing.T) {
	b := busFixture(t, 3, 3*units.Femto, 10*units.Femto)
	// Aggressors far apart: windows can never overlap.
	inputs := staggeredInputs(3, 10000*units.Pico, 50*units.Pico)

	resA := analyze(t, b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}})
	resC := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})

	nA := resA.NoiseOf("v").Comb[KindLow]
	nC := resC.NoiseOf("v").Comb[KindLow]
	if nA.Peak <= 0 || nC.Peak <= 0 {
		t.Fatalf("peaks: A=%g C=%g", nA.Peak, nC.Peak)
	}
	// All-aggressors sums all three; windows allow only one at a time.
	if nC.Peak >= nA.Peak*0.6 {
		t.Fatalf("windowed peak %g not much below pessimistic %g", nC.Peak, nA.Peak)
	}
	if len(nA.Members) != 3 {
		t.Fatalf("A members = %v", nA.Members)
	}
	if len(nC.Members) != 1 {
		t.Fatalf("C members = %v", nC.Members)
	}
	// Roughly: one aggressor's peak vs three.
	if math.Abs(nA.Peak-3*nC.Peak) > 0.05*nA.Peak {
		t.Fatalf("A=%g, C=%g: expected ~3x ratio", nA.Peak, nC.Peak)
	}
}

func TestOverlappingWindowsMatchPessimistic(t *testing.T) {
	b := busFixture(t, 3, 3*units.Femto, 10*units.Femto)
	// All aggressors share one window: timing cannot help.
	inputs := staggeredInputs(3, 0, 100*units.Pico)

	resA := analyze(t, b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}})
	resC := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})

	nA := resA.NoiseOf("v").Comb[KindLow]
	nC := resC.NoiseOf("v").Comb[KindLow]
	if math.Abs(nA.Peak-nC.Peak) > 1e-6 {
		t.Fatalf("fully overlapping windows: A=%g C=%g, want equal", nA.Peak, nC.Peak)
	}
	if len(nC.Members) != 3 {
		t.Fatalf("C members = %v", nC.Members)
	}
}

func TestModeOrderingInvariant(t *testing.T) {
	// For any window arrangement both windowed analyses are bounded by
	// the classical one. C (sound tent occupancy) may slightly exceed B
	// (classical peak alignment, optimistic against partial tail
	// overlap) in the marginal band — that is the T11 soundness finding
	// — so no C-vs-B ordering is asserted.
	for _, sep := range []float64{0, 30 * units.Pico, 200 * units.Pico, 5000 * units.Pico} {
		b := busFixture(t, 4, 2*units.Femto, 12*units.Femto)
		inputs := staggeredInputs(4, sep, 60*units.Pico)
		pA := analyze(t, b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}}).TotalNoise()
		pB := analyze(t, b, Options{Mode: ModeTimingWindows, STA: sta.Options{InputTiming: inputs}}).TotalNoise()
		pC := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}).TotalNoise()
		if !(pC <= pA+1e-9 && pB <= pA+1e-9) {
			t.Fatalf("sep %g: bound violated: C=%g B=%g A=%g", sep, pC, pB, pA)
		}
		// The peak-occupancy variant of C reproduces the strict old
		// ordering against B on coupled-only designs.
		pCpeak := analyze(t, b, Options{Mode: ModeNoiseWindows, Occupancy: OccupancyPeak, STA: sta.Options{InputTiming: inputs}}).TotalNoise()
		if pCpeak > pB+1e-9 {
			t.Fatalf("sep %g: peak-occupancy C=%g above B=%g", sep, pCpeak, pB)
		}
	}
}

func TestQuietAggressorIgnoredInWindowModes(t *testing.T) {
	b := busFixture(t, 2, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	// Silence aggressor 1 completely.
	inputs["i_a1"] = inputs["i_v"]
	resC := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	resA := analyze(t, b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}})
	nC := resC.NoiseOf("v").Comb[KindLow]
	nA := resA.NoiseOf("v").Comb[KindLow]
	for _, m := range nC.Members {
		if m == "a1" {
			t.Fatal("silent aggressor contributed in window mode")
		}
	}
	// The pessimistic mode still assumes a1 can switch.
	found := false
	for _, m := range nA.Members {
		if m == "a1" {
			found = true
		}
	}
	if !found {
		t.Fatal("all-aggressors mode dropped the silent aggressor")
	}
}

func TestPropagationCreatesDownstreamEvents(t *testing.T) {
	// Strong coupling so the victim glitch exceeds the transfer threshold
	// (0.3·Vdd = 0.36 V) and propagates through the receiving inverter.
	b := busFixture(t, 2, 6*units.Femto, 2*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})

	nv := res.NoiseOf("v").Comb[KindLow]
	if nv.Peak < 0.36 {
		t.Fatalf("victim peak %g too small to exercise propagation", nv.Peak)
	}
	// The victim's receiver drives o_v: it must carry a propagated event.
	ov := res.NoiseOf("o_v")
	if ov == nil {
		t.Fatal("o_v not analyzed")
	}
	var prop *Event
	for k := range Kinds {
		for i := range ov.Events[k] {
			if ov.Events[k][i].Source == "prop:v" {
				prop = &ov.Events[k][i]
			}
		}
	}
	if prop == nil {
		t.Fatalf("no propagated event on o_v: %+v", ov.Events)
	}
	// Inverter: low-victim glitch becomes high-side glitch downstream.
	if len(ov.Events[KindHigh]) == 0 {
		t.Fatal("negative-unate propagation missing on high side")
	}
	// Attenuation: propagated peak below source peak.
	if prop.Peak >= nv.Peak {
		t.Fatalf("propagated peak %g not attenuated from %g", prop.Peak, nv.Peak)
	}
	// Window: shifted later than the source window (gate delay).
	if prop.Window.IsInfinite() || prop.Window.Lo <= nv.Window.Lo {
		t.Fatalf("propagated window %v not delayed from %v", prop.Window, nv.Window)
	}
	if !res.Stats.Converged {
		t.Fatal("propagation did not converge")
	}
}

func TestPropagatedWindowsInfiniteInTimingMode(t *testing.T) {
	b := busFixture(t, 2, 6*units.Femto, 2*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeTimingWindows, STA: sta.Options{InputTiming: inputs}})
	ov := res.NoiseOf("o_v")
	found := false
	for k := range Kinds {
		for _, e := range ov.Events[k] {
			if e.Source == "prop:v" {
				found = true
				if !e.Window.IsInfinite() {
					t.Fatalf("timing-window mode propagated event has window %v, want infinite", e.Window)
				}
			}
		}
	}
	if !found {
		t.Fatal("no propagated event found")
	}
}

func TestNoPropagationOption(t *testing.T) {
	b := busFixture(t, 2, 6*units.Femto, 2*units.Femto)
	inputs := staggeredInputs(2, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, NoPropagation: true, STA: sta.Options{InputTiming: inputs}})
	ov := res.NoiseOf("o_v")
	for k := range Kinds {
		for _, e := range ov.Events[k] {
			if e.Source == "prop:v" {
				t.Fatal("propagation event present despite NoPropagation")
			}
		}
	}
	if res.Stats.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Stats.Iterations)
	}
}

func TestViolationsDetectedAndSorted(t *testing.T) {
	// Very strong coupling: combined noise must violate the immunity
	// curve at the victim's receiver.
	b := busFixture(t, 4, 8*units.Femto, 1*units.Femto)
	inputs := staggeredInputs(4, 0, 50*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if len(res.Violations) == 0 {
		t.Fatalf("no violations; victim peak = %g", res.NoiseOf("v").WorstPeak())
	}
	for i := 1; i < len(res.Violations); i++ {
		if res.Violations[i].Slack < res.Violations[i-1].Slack {
			t.Fatal("violations not sorted by slack")
		}
	}
	v := res.Violations[0]
	if v.Slack >= 0 || v.Peak <= v.Limit {
		t.Fatalf("violation fields inconsistent: %+v", v)
	}
	if len(res.ViolationsOn(v.Net)) == 0 {
		t.Fatal("ViolationsOn lost the violation")
	}
	if res.WorstSlack() != v.Slack {
		t.Fatalf("WorstSlack = %g, want %g", res.WorstSlack(), v.Slack)
	}
}

func TestFilterAndVirtualAggressor(t *testing.T) {
	b := busFixture(t, 3, 2*units.Femto, 30*units.Femto)
	inputs := staggeredInputs(3, 0, 50*units.Pico)
	// Threshold above every coupling ratio: all filtered into virtual.
	resV := analyze(t, b, Options{
		Mode: ModeNoiseWindows, FilterThreshold: 0.9,
		STA: sta.Options{InputTiming: inputs},
	})
	nv := resV.NoiseOf("v")
	if len(nv.Events[KindLow]) != 1 || nv.Events[KindLow][0].Source != "virtual" {
		t.Fatalf("events = %+v, want single virtual", nv.Events[KindLow])
	}
	if resV.Stats.Filtered != 3 {
		t.Fatalf("filtered = %d", resV.Stats.Filtered)
	}
	// Virtual lumping keeps the analysis conservative versus dropping.
	resDrop := analyze(t, b, Options{
		Mode: ModeNoiseWindows, FilterThreshold: 0.9, DisableVirtual: true,
		STA: sta.Options{InputTiming: inputs},
	})
	if resDrop.NoiseOf("v").WorstPeak() > resV.NoiseOf("v").WorstPeak() {
		t.Fatal("dropping aggressors produced more noise than lumping them")
	}
}

func TestCombinedWindowIsMemberIntersection(t *testing.T) {
	b := busFixture(t, 2, 3*units.Femto, 10*units.Femto)
	// Partially overlapping windows.
	inputs := staggeredInputs(2, 30*units.Pico, 100*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	comb := res.NoiseOf("v").Comb[KindLow]
	if len(comb.Members) != 2 {
		t.Fatalf("members = %v", comb.Members)
	}
	if comb.Window.IsEmpty() {
		t.Fatal("combined window empty despite overlap")
	}
	if !comb.Window.Contains(comb.At) {
		t.Fatalf("At %g outside combined window %v", comb.At, comb.Window)
	}
	// Intersection is narrower than each member window.
	for k := range res.NoiseOf("v").Events[KindLow] {
		e := res.NoiseOf("v").Events[KindLow][k]
		if !e.Window.ContainsWindow(comb.Window) {
			t.Fatalf("combined window %v not inside member %v", comb.Window, e.Window)
		}
	}
}

func TestCombineHelperEdgeCases(t *testing.T) {
	if c := combine(nil, 1.2); c.Peak != 0 || !math.IsNaN(c.At) {
		t.Fatalf("empty combine = %+v", c)
	}
	// Peak clamps at the rail.
	events := []Event{
		{Peak: 1.0, Width: 1e-11, Window: interval.Infinite(), Source: "a"},
		{Peak: 1.0, Width: 2e-11, Window: interval.Infinite(), Source: "b"},
	}
	c := combine(events, 1.2)
	if c.Peak != 1.2 {
		t.Fatalf("clamped peak = %g", c.Peak)
	}
	if c.Width != 2e-11 {
		t.Fatalf("combined width = %g, want max member width", c.Width)
	}
}

func TestPropagateKindMapping(t *testing.T) {
	if got := propagateKind(liberty.PositiveUnate, KindLow); len(got) != 1 || got[0] != KindLow {
		t.Fatalf("pos/low = %v", got)
	}
	if got := propagateKind(liberty.NegativeUnate, KindLow); len(got) != 1 || got[0] != KindHigh {
		t.Fatalf("neg/low = %v", got)
	}
	if got := propagateKind(liberty.NegativeUnate, KindHigh); len(got) != 1 || got[0] != KindLow {
		t.Fatalf("neg/high = %v", got)
	}
	if got := propagateKind(liberty.NonUnate, KindHigh); len(got) != 2 {
		t.Fatalf("non/high = %v", got)
	}
}

func TestModeAndKindStrings(t *testing.T) {
	if ModeAllAggressors.String() != "all-aggressors" ||
		ModeTimingWindows.String() != "timing-windows" ||
		ModeNoiseWindows.String() != "noise-windows" {
		t.Fatal("mode strings")
	}
	if KindLow.String() != "low" || KindHigh.String() != "high" {
		t.Fatal("kind strings")
	}
}

func BenchmarkAnalyzeBus8(b *testing.B) {
	bd := busFixture(b, 8, 2*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(8, 40*units.Pico, 60*units.Pico)
	opts := Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(bd, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParallelAnalysisMatchesSerial(t *testing.T) {
	b := busFixture(t, 6, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(6, 70*units.Pico, 60*units.Pico)
	serial := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	parallel := analyze(t, b, Options{Mode: ModeNoiseWindows, Workers: 4, STA: sta.Options{InputTiming: inputs}})
	if serial.Stats.AggressorPairs != parallel.Stats.AggressorPairs {
		t.Fatalf("pairs: %d vs %d", serial.Stats.AggressorPairs, parallel.Stats.AggressorPairs)
	}
	if len(serial.Violations) != len(parallel.Violations) {
		t.Fatalf("violations: %d vs %d", len(serial.Violations), len(parallel.Violations))
	}
	for name, sn := range serial.Nets {
		pn := parallel.NoiseOf(name)
		if pn == nil {
			t.Fatalf("parallel run missing net %s", name)
		}
		for _, k := range Kinds {
			if math.Abs(sn.Comb[k].Peak-pn.Comb[k].Peak) > 1e-12 {
				t.Fatalf("net %s kind %v: %g vs %g", name, k, sn.Comb[k].Peak, pn.Comb[k].Peak)
			}
			if len(sn.Events[k]) != len(pn.Events[k]) {
				t.Fatalf("net %s kind %v: event counts differ", name, k)
			}
		}
	}
}

func TestCombinedWaveformReconstruction(t *testing.T) {
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 0, 60*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	nn := res.NoiseOf("v")
	comb := nn.Comb[KindLow]
	if comb.Peak <= 0 || len(comb.MemberEvents) != len(comb.Members) {
		t.Fatalf("combined = %+v", comb)
	}
	w := nn.CombinedWaveform(KindLow)
	tt, v := w.Peak()
	if math.Abs(tt-comb.At) > 1e-15 {
		t.Fatalf("waveform peak at %g, alignment at %g", tt, comb.At)
	}
	// Sum of member peaks equals the (unclamped) combined peak.
	var want float64
	for _, e := range comb.MemberEvents {
		want += e.Peak
	}
	if math.Abs(v-want) > 1e-12 {
		t.Fatalf("waveform peak %g, want %g", v, want)
	}
	// High-side reconstruction is the mirror image.
	if hw := nn.CombinedWaveform(KindHigh); !hw.IsZero() {
		if _, hv := hw.Peak(); hv >= 0 {
			t.Fatalf("high-side waveform peak %g, want negative", hv)
		}
	}
	// A quiet net yields the zero waveform.
	quiet := &NetNoise{}
	if !quiet.CombinedWaveform(KindLow).IsZero() {
		t.Fatal("quiet net waveform not zero")
	}
}

func TestSlacksRecordedAndSorted(t *testing.T) {
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 0, 60*units.Pico)
	res := analyze(t, b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if len(res.Slacks) == 0 {
		t.Fatal("no slacks recorded")
	}
	for i := 1; i < len(res.Slacks); i++ {
		if res.Slacks[i].Slack < res.Slacks[i-1].Slack {
			t.Fatal("slacks not sorted tightest-first")
		}
	}
	// The victim's receiver must be among the tightest.
	tight := res.TightestSlacks(1)
	if len(tight) != 1 || tight[0].Net != "v" {
		t.Fatalf("tightest = %+v", tight)
	}
	if res.WorstSlack() != tight[0].Slack {
		t.Fatal("WorstSlack disagrees with sorted list")
	}
	// Asking for more than exist returns all.
	if got := len(res.TightestSlacks(10000)); got != len(res.Slacks) {
		t.Fatalf("TightestSlacks clamp: %d vs %d", got, len(res.Slacks))
	}
}

func TestOccupancyStrings(t *testing.T) {
	if OccupancyTent.String() != "tent" || OccupancyPeak.String() != "peak" || OccupancyWiden.String() != "widen" {
		t.Fatal("occupancy strings")
	}
}

func TestWorstSlackEmpty(t *testing.T) {
	r := &Result{}
	if !math.IsInf(r.WorstSlack(), 1) {
		t.Fatal("empty WorstSlack not +Inf")
	}
}

func TestContributionPolicies(t *testing.T) {
	e := Event{Peak: 1.0, Width: 10, Window: interval.New(100, 200)}
	// Inside the window every policy gives the full peak.
	for _, occ := range []Occupancy{OccupancyTent, OccupancyPeak, OccupancyWiden} {
		if got := contribution(&e, 150, occ); got != 1.0 {
			t.Fatalf("%v inside = %g", occ, got)
		}
	}
	// 4 away from the edge: tent decays, widen (width/2 = 5) still full,
	// peak zero.
	if got := contribution(&e, 204, OccupancyTent); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("tent tail = %g, want 0.6", got)
	}
	if got := contribution(&e, 204, OccupancyWiden); got != 1.0 {
		t.Fatalf("widen plateau = %g", got)
	}
	if got := contribution(&e, 204, OccupancyPeak); got != 0 {
		t.Fatalf("peak outside = %g", got)
	}
	// Beyond the width every policy is zero.
	for _, occ := range []Occupancy{OccupancyTent, OccupancyPeak, OccupancyWiden} {
		if got := contribution(&e, 211, occ); got != 0 {
			t.Fatalf("%v far = %g", occ, got)
		}
	}
	// Left side symmetric.
	if got := contribution(&e, 96, OccupancyTent); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("tent left tail = %g", got)
	}
	// Degenerate events contribute nothing.
	empty := Event{Peak: 1, Width: 10, Window: interval.Empty()}
	if contribution(&empty, 0, OccupancyTent) != 0 {
		t.Fatal("empty window contributed")
	}
	zeroW := Event{Peak: 1, Width: 0, Window: interval.New(0, 1)}
	if contribution(&zeroW, 2, OccupancyTent) != 0 {
		t.Fatal("zero-width tail contributed")
	}
	if contribution(&zeroW, 0.5, OccupancyTent) != 1 {
		t.Fatal("zero-width in-window lost")
	}
}

func TestSameSourceEventsNeverSum(t *testing.T) {
	// Two phases of one aggressor whose tent tails overlap: the combined
	// peak must be a single contribution, not the sum.
	events := []Event{
		{Peak: 0.4, Width: 100e-12, Window: interval.New(0, 50e-12), Source: "a"},
		{Peak: 0.4, Width: 100e-12, Window: interval.New(120e-12, 170e-12), Source: "a"},
	}
	c := combine(events, 1.2)
	if c.Peak > 0.4+1e-12 {
		t.Fatalf("same-source phases summed: %g", c.Peak)
	}
	// Different sources with the same geometry do partially sum.
	events[1].Source = "b"
	c = combine(events, 1.2)
	if !(c.Peak > 0.4+1e-12) {
		t.Fatalf("distinct sources failed to sum: %g", c.Peak)
	}
}

func TestRepairDescribeVariants(t *testing.T) {
	r := Repair{
		Violation:         Violation{Net: "v", Receiver: "r.A", Kind: KindLow, Slack: -0.1},
		CouplingCut:       1,
		DominantAggressor: "a0",
		HoldResFactor:     0.5,
	}
	d := r.Describe()
	if !strings.Contains(d, "fully shield") {
		t.Fatalf("describe = %q", d)
	}
	if !strings.Contains(d, "strengthen victim holding resistance by 2.0x") {
		t.Fatalf("describe = %q", d)
	}
	r.CouplingCut = 0.5
	r.UpsizeTo = "INV_X4"
	d = r.Describe()
	if !strings.Contains(d, "by 50%") || !strings.Contains(d, "INV_X4") {
		t.Fatalf("describe = %q", d)
	}
}
