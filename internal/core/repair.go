package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/bind"
	"repro/internal/liberty"
	"repro/internal/netlist"
	"repro/internal/noise"
)

// A noise violation admits three classical physical repairs, in increasing
// order of cost: weaken the coupling (spacing or a shield on the worst
// aggressor), strengthen the victim's holding driver (upsizing), or slow
// the aggressor's edge (downsizing / buffering its driver). The advisor
// quantifies the first two for every violation using the same
// dominant-pole model the analysis ran with, so the suggested change is
// exactly the one that brings the combined peak back to the immunity limit
// with the configured margin.

// Repair is one suggested fix for a violation.
type Repair struct {
	Violation Violation
	// CouplingCut is the fraction of the dominant aggressor's coupling
	// capacitance that must be removed (by spacing or shielding) to meet
	// the limit, in (0, 1]. Zero when cutting that one coupling cannot
	// fix the violation alone.
	CouplingCut float64
	// DominantAggressor names the largest contributor to the violation.
	DominantAggressor string
	// HoldResFactor is the factor by which the victim driver's holding
	// resistance must shrink (i.e. the upsizing ratio) to meet the
	// limit; 1 means no change needed, 0 means upsizing alone cannot
	// fix it (e.g. the noise is dominated by propagated glitches).
	HoldResFactor float64
	// UpsizeTo names a library cell that achieves HoldResFactor, if one
	// exists in the same function family.
	UpsizeTo string
}

// Describe renders the repair as a single actionable sentence.
func (r *Repair) Describe() string {
	v := r.Violation
	s := fmt.Sprintf("net %s @ %s (%s, %.0f mV over)", v.Net, v.Receiver, v.Kind, -v.Slack*1e3)
	switch {
	case r.CouplingCut > 0 && r.CouplingCut < 1:
		s += fmt.Sprintf(": cut coupling to %s by %.0f%% (spacing/shield)",
			r.DominantAggressor, r.CouplingCut*100)
	case r.CouplingCut == 1:
		s += fmt.Sprintf(": fully shield against %s", r.DominantAggressor)
	}
	if r.UpsizeTo != "" {
		s += fmt.Sprintf("; or upsize victim driver to %s", r.UpsizeTo)
	} else if r.HoldResFactor > 0 && r.HoldResFactor < 1 {
		s += fmt.Sprintf("; or strengthen victim holding resistance by %.1fx", 1/r.HoldResFactor)
	}
	return s
}

// SuggestRepairs computes a repair per violation of a completed analysis.
// margin is the extra headroom demanded below the immunity limit (e.g.
// 0.05 for 5 %); zero means repair exactly to the limit.
func SuggestRepairs(b *bind.Design, res *Result, margin float64) ([]Repair, error) {
	return SuggestRepairsCtx(context.Background(), b, res, margin)
}

// SuggestRepairsCtx is SuggestRepairs with cooperative cancellation: the
// context is checked once per violation, each of which rebuilds the noise
// context for its net.
func SuggestRepairsCtx(ctx context.Context, b *bind.Design, res *Result, margin float64) ([]Repair, error) {
	if margin < 0 || margin >= 1 {
		return nil, fmt.Errorf("core: repair margin %g out of [0, 1)", margin)
	}
	var out []Repair
	for _, v := range res.Violations {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		net := b.Net.FindNet(v.Net)
		if net == nil {
			return nil, fmt.Errorf("core: violation on unknown net %q", v.Net)
		}
		nctx, err := noise.BuildContext(b, net)
		if err != nil {
			return nil, err
		}
		target := v.Limit * (1 - margin)
		r := Repair{Violation: v}
		r.DominantAggressor, r.CouplingCut = couplingRepair(nctx, v, target)
		r.HoldResFactor = holdRepair(v, target)
		if r.HoldResFactor > 0 && r.HoldResFactor < 1 {
			r.UpsizeTo = upsizePick(b, net, r.HoldResFactor)
		}
		out = append(out, r)
	}
	return out, nil
}

// couplingRepair finds the dominant coupled member of the violating
// combination and the fraction of its coupling cap that must go. Peak is
// linear in C_x to first order, so removing ΔC from the dominant
// aggressor removes (ΔC/C_x)·peak_member from the combined peak.
func couplingRepair(ctx *noise.Context, v Violation, target float64) (string, float64) {
	dominant := ""
	var domC float64
	for _, m := range v.Members {
		if cpl := ctx.CouplingTo(m); cpl != nil && cpl.CoupleC > domC {
			dominant, domC = m, cpl.CoupleC
		}
	}
	if dominant == "" {
		return "", 0
	}
	excess := v.Peak - target
	// The dominant member's own contribution, proportional to its share
	// of the summed coupling among members.
	var memberC float64
	for _, m := range v.Members {
		if cpl := ctx.CouplingTo(m); cpl != nil {
			memberC += cpl.CoupleC
		}
	}
	if memberC <= 0 {
		return dominant, 0
	}
	domPeak := v.Peak * domC / memberC
	if domPeak <= 0 {
		return dominant, 0
	}
	cut := excess / domPeak
	if cut >= 1 {
		// Even removing the whole coupling is not enough by itself.
		if domPeak >= excess {
			return dominant, 1
		}
		return dominant, 0
	}
	return dominant, cut
}

// holdRepair computes the holding-resistance scale factor that brings the
// peak to target. The dominant-pole peak is proportional to R·(1−e^{−t/τ})
// with τ ∝ R; over the practical range it scales sublinearly with R, so
// scaling R by target/peak is conservative (shrinks R at least enough).
func holdRepair(v Violation, target float64) float64 {
	if v.Peak <= 0 {
		return 1
	}
	f := target / v.Peak
	if f >= 1 {
		return 1
	}
	if f <= 0 {
		return 0
	}
	return f
}

// upsizePick searches the victim driver's cell family (same name prefix
// before the "_X" drive suffix) for the weakest drive strength whose
// holding resistance is at most factor times the current one. It returns
// "" for port-driven nets or when no family member is strong enough.
func upsizePick(b *bind.Design, net *netlist.Net, factor float64) string {
	cell, _ := b.DriverCell(net)
	if cell == nil {
		return ""
	}
	family := cell.Name
	if i := strings.LastIndex(family, "_X"); i >= 0 {
		family = family[:i]
	}
	targetHold := cell.HoldRes * factor
	var best *liberty.Cell
	for _, c := range b.Lib.Cells() {
		if c == cell || !strings.HasPrefix(c.Name, family+"_X") {
			continue
		}
		if c.HoldRes > targetHold {
			continue
		}
		if len(c.InputPins()) != len(cell.InputPins()) {
			continue
		}
		// Weakest sufficient candidate: largest holding resistance that
		// still meets the target (smallest area bump).
		if best == nil || c.HoldRes > best.HoldRes {
			best = c
		}
	}
	if best == nil {
		return ""
	}
	return best.Name
}
