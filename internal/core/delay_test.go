package core

import (
	"math"
	"testing"

	"repro/internal/interval"
	"repro/internal/sta"
	"repro/internal/units"
)

func windowAt(lo, width float64) interval.Window {
	return interval.New(lo, lo+width)
}

func TestDelayImpactBasics(t *testing.T) {
	// Victim and aggressors all switch in overlapping windows: opposing
	// edges push the victim's delay out in every mode.
	b := busFixture(t, 2, 4*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 0, 80*units.Pico)
	// Let the victim switch too (same window as the aggressors).
	inputs["i_v"] = inputs["i_a0"]
	res, err := AnalyzeDelay(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	im := res.ImpactOn("v", true)
	if im == nil {
		t.Fatalf("no rise impact on v; impacts = %+v", res.Impacts)
	}
	if im.NoisePeak <= 0 || im.Delta <= 0 {
		t.Fatalf("impact = %+v", im)
	}
	if len(im.Members) == 0 {
		t.Fatal("no members")
	}
	if !im.VictimWindow.Contains(im.At) && a(im.At) {
		t.Fatalf("At %g outside victim window %v", im.At, im.VictimWindow)
	}
	if res.WorstDelta() < im.Delta {
		t.Fatal("WorstDelta below a member impact")
	}
	if res.TotalDelta() < res.WorstDelta() {
		t.Fatal("TotalDelta below WorstDelta")
	}
}

func a(v float64) bool { return !math.IsNaN(v) }

func TestDelayWindowsRemovePessimism(t *testing.T) {
	// The victim switches early; aggressors switch far later. With
	// windows the opposing noise cannot hit the victim edge; without
	// them it always does.
	b := busFixture(t, 2, 4*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 5000*units.Pico, 80*units.Pico)
	// Victim switches at t≈0; aggressors at 5 ns and 10 ns.
	inputs["i_v"] = inputs["i_a0"]
	inputs["i_a0"] = timingAt(5000*units.Pico, 80*units.Pico)
	inputs["i_a1"] = timingAt(10000*units.Pico, 80*units.Pico)

	resA, err := AnalyzeDelay(b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	resC, err := AnalyzeDelay(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	imA := resA.ImpactOn("v", true)
	if imA == nil || imA.Delta <= 0 {
		t.Fatalf("all-aggressors impact missing: %+v", resA.Impacts)
	}
	if imC := resC.ImpactOn("v", true); imC != nil && imC.Delta > delayTol {
		t.Fatalf("windowed analysis kept impossible delay impact: %+v", imC)
	}
}

func timingAt(lo, width float64) *sta.Timing {
	w := interval.NewSet(windowAt(lo, width))
	slew := sta.Range{Min: 20 * units.Pico, Max: 20 * units.Pico}
	return &sta.Timing{Rise: w, Fall: w, SlewRise: slew, SlewFall: slew}
}

func TestDelayModeOrdering(t *testing.T) {
	// Windowed total delay pessimism never exceeds the classical bound.
	for _, sep := range []float64{0, 100 * units.Pico, 2000 * units.Pico} {
		b := busFixture(t, 3, 3*units.Femto, 10*units.Femto)
		inputs := staggeredInputs(3, sep, 80*units.Pico)
		inputs["i_v"] = timingAt(0, 80*units.Pico)
		dA, err := AnalyzeDelay(b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}})
		if err != nil {
			t.Fatal(err)
		}
		dC, err := AnalyzeDelay(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
		if err != nil {
			t.Fatal(err)
		}
		if dC.TotalDelta() > dA.TotalDelta()+delayTol {
			t.Fatalf("sep %g: windowed delta %g exceeds classical %g",
				sep, dC.TotalDelta(), dA.TotalDelta())
		}
	}
}

func TestDelayQuietVictimNoImpact(t *testing.T) {
	// A victim that never switches has no delay to disturb.
	b := busFixture(t, 2, 4*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 0, 80*units.Pico) // i_v quiet by default
	res, err := AnalyzeDelay(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	if im := res.ImpactOn("v", true); im != nil {
		t.Fatalf("quiet victim has impact: %+v", im)
	}
}

func TestDelayImpactsSorted(t *testing.T) {
	b := busFixture(t, 4, 3*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(4, 0, 80*units.Pico)
	inputs["i_v"] = timingAt(0, 80*units.Pico)
	res, err := AnalyzeDelay(b, Options{Mode: ModeAllAggressors, STA: sta.Options{InputTiming: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Impacts); i++ {
		if res.Impacts[i].Delta > res.Impacts[i-1].Delta {
			t.Fatal("impacts not sorted by delta")
		}
	}
	if res.ImpactOn("ghost", true) != nil {
		t.Fatal("impact on unknown net")
	}
}
