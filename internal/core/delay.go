package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/bind"
	"repro/internal/interval"
	"repro/internal/netlist"
	"repro/internal/units"
)

// Crosstalk does not only create glitches on quiet nets — it also changes
// the delay of *switching* nets. An aggressor switching in the opposite
// direction while the victim transitions fights the victim's edge through
// the coupling capacitance (the Miller effect) and pushes the victim's
// delay out. The same window machinery applies: an aggressor can only
// disturb the victim's transition if its noise window overlaps the
// victim's own switching window, so the worst-case delay change is again a
// windowed maximum-overlap query instead of an all-aggressors sum.
//
// The push-out model is first order: the opposing glitch sum Vn stretches
// the victim's transition by
//
//	Δd = slew_victim · Vn / Vdd
//
// which is the standard linearized bump-on-ramp estimate used for
// screening (a signoff tool would re-simulate the worst cluster; the
// golden path for that here is ckt).

// DelayImpact is the crosstalk delay change estimated for one victim
// transition direction.
type DelayImpact struct {
	Net string
	// Rise marks the victim transition direction analyzed.
	Rise bool
	// VictimWindow is the victim's own switching-window set for this
	// edge.
	VictimWindow interval.Set
	// NoisePeak is the worst opposing glitch sum overlapping the victim
	// transition, volts.
	NoisePeak float64
	// Delta is the estimated delay push-out, seconds.
	Delta float64
	// At is an instant achieving the worst overlap (NaN when none).
	At float64
	// Members lists the aggressors that align against this edge.
	Members []string
}

// DelayResult is the design-wide crosstalk delay analysis.
type DelayResult struct {
	Mode Mode
	// Impacts holds per-net, per-direction impacts (only for nets that
	// actually switch and see opposing noise).
	Impacts []DelayImpact
	// Diags lists victims degraded during preparation or delay
	// evaluation (fail-soft runs only), sorted by net name. A degraded
	// victim's fallback events are full-rail and always-on, so its
	// impacts are maximally conservative.
	Diags []Diag
}

// WorstDelta returns the largest estimated push-out.
func (r *DelayResult) WorstDelta() float64 {
	var worst float64
	for _, im := range r.Impacts {
		if im.Delta > worst {
			worst = im.Delta
		}
	}
	return worst
}

// ImpactOn returns the impact for one net and direction, or nil.
func (r *DelayResult) ImpactOn(net string, rise bool) *DelayImpact {
	for i := range r.Impacts {
		if r.Impacts[i].Net == net && r.Impacts[i].Rise == rise {
			return &r.Impacts[i]
		}
	}
	return nil
}

// TotalDelta sums every impact — the aggregate delay-pessimism metric the
// experiments track across modes.
func (r *DelayResult) TotalDelta() float64 {
	var s float64
	for _, im := range r.Impacts {
		s += im.Delta
	}
	return s
}

// AnalyzeDelay estimates crosstalk-induced delay changes for every
// switching net. Mode semantics mirror Analyze: ModeAllAggressors lets
// every opposing aggressor attack every victim edge; the window modes
// require the aggressor's noise window to overlap the victim's switching
// window (peak semantics — the linearized bump-on-ramp model this uses is
// itself first order, so tent tails and logic correlation are not applied
// here). Only coupled (not propagated) noise disturbs delay — a glitch
// arriving through the victim's own driver is already part of its input
// arrival, not an independent disturbance.
func AnalyzeDelay(b *bind.Design, opts Options) (*DelayResult, error) {
	return AnalyzeDelayCtx(context.Background(), b, opts)
}

// AnalyzeDelayCtx is AnalyzeDelay with cooperative cancellation, checked
// during preparation and between victims.
func AnalyzeDelayCtx(ctx context.Context, b *bind.Design, opts Options) (*DelayResult, error) {
	a, err := newAnalyzer(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	if err := a.delayPass(ctx, nil); err != nil {
		return nil, err
	}
	return a.assembleDelay(), nil
}

// delayPass evaluates (or re-evaluates) the delta-delay impacts of the
// dirty victims and stores them per net; a nil dirty set means every
// victim. Iterative rounds call it on the shared analyzer with only the
// round's dirty set.
func (a *analyzer) delayPass(ctx context.Context, dirty map[string]bool) error {
	if a.impacts == nil {
		a.impacts = make([][]DelayImpact, len(a.order))
	}
	for ni, net := range a.order {
		if ni&0x3f == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if dirty != nil && !dirty[net.Name] {
			continue
		}
		ims, err := a.safeDelayNet(ni, net, a.impacts[ni][:0])
		a.impacts[ni] = ims
		if err != nil {
			if !a.opts.FailSoft {
				return err
			}
			a.degradeNet(ni, net.Name, StageDelay, err)
		}
	}
	return nil
}

// assembleDelay flattens the per-net impacts into a sorted DelayResult.
func (a *analyzer) assembleDelay() *DelayResult {
	res := &DelayResult{Mode: a.opts.Mode}
	for ni := range a.order {
		res.Impacts = append(res.Impacts, a.impacts[ni]...)
	}
	SortImpacts(res.Impacts)
	sortDiags(a.diags)
	res.Diags = a.diags
	return res
}

// SortImpacts orders delay impacts by delta (largest first), then net, then
// edge (rise first). The comparator is total — a net contributes at most
// one impact per edge — so sorting a merged multi-shard impact list yields
// exactly the single-process order. Exported for the shard coordinator.
func SortImpacts(ims []DelayImpact) {
	sort.Slice(ims, func(i, j int) bool {
		if ims[i].Delta != ims[j].Delta {
			return ims[i].Delta > ims[j].Delta
		}
		if ims[i].Net != ims[j].Net {
			return ims[i].Net < ims[j].Net
		}
		return ims[i].Rise && !ims[j].Rise
	})
}

// safeDelayNet evaluates one victim's delta-delay impacts with panics
// converted into errors for fail-soft isolation. It appends into ims
// (typically the net's previous slice, truncated) and returns it; on a
// panic the impacts appended so far survive, matching the historical
// partial-append behaviour.
func (a *analyzer) safeDelayNet(ni int, net *netlist.Net, ims []DelayImpact) (out []DelayImpact, err error) {
	out = ims
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: panic in delay analysis of net %s: %v", net.Name, r)
		}
	}()
	events := a.coupled[ni]
	if events == nil {
		return out, nil
	}
	vt := a.staRes.TimingOfNet(net.Name)
	for _, rise := range []bool{true, false} {
		vw := vt.Window(rise)
		if vw.IsEmpty() {
			continue
		}
		// A rising victim is opposed by falling aggressors, whose
		// glitches are the KindHigh events, and vice versa.
		opposing := events[KindHigh]
		if !rise {
			opposing = events[KindLow]
		}
		if len(opposing) == 0 {
			continue
		}
		items := a.delayItems[:0]
		idx := a.delayIdx[:0]
		for i, e := range opposing {
			if e.Peak <= 0 {
				continue
			}
			if a.opts.Mode == ModeAllAggressors {
				items = append(items, interval.Weighted{W: e.Window, Weight: e.Peak})
				idx = append(idx, i)
				continue
			}
			// Clip the glitch window against every phase of the
			// victim's switching set; disjoint pieces cannot both
			// contain an alignment instant, so the aggressor is
			// never double-counted.
			for _, piece := range vw.IntersectWindow(e.Window).Windows() {
				items = append(items, interval.Weighted{W: piece, Weight: e.Peak})
				idx = append(idx, i)
			}
		}
		a.delayItems, a.delayIdx = items, idx
		if len(items) == 0 {
			continue
		}
		comb := interval.MaxOverlapSum(items)
		if comb.Sum <= 0 || math.IsNaN(comb.At) {
			continue
		}
		slew := vt.Slew(rise)
		s := a.opts.DefaultAggSlew
		if slew.Min <= slew.Max {
			s = slew.Max
		}
		noisePeak := math.Min(comb.Sum, a.vdd)
		im := DelayImpact{
			Net:          net.Name,
			Rise:         rise,
			VictimWindow: vw,
			NoisePeak:    noisePeak,
			Delta:        s * noisePeak / a.vdd,
			At:           comb.At,
		}
		for _, ci := range comb.Members {
			im.Members = append(im.Members, opposing[idx[ci]].Source)
		}
		sort.Strings(im.Members)
		out = append(out, im)
	}
	return out, nil
}

// delayTol is the comparison tolerance used by delta-delay tests.
const delayTol = units.Pico / 100
