package core

import (
	"fmt"
	"sort"
)

// Fail-soft degradation: a signoff run over a whole design must not be
// aborted by one malformed victim. When Options.FailSoft is set, a panic
// or error while preparing or evaluating a single net is caught, recorded
// as a Diag, and the victim is substituted with the conservative full-rail
// fallback — its combined noise is pinned at the supply rail over an
// infinite window, so the degradation can hide a violation but never
// invent a pass. Cancellation (context errors) is never degraded: a
// cancelled run returns the context error, not a partial result.

// Degradation stages, recorded in Diag.Stage.
const (
	// StagePrepare covers context and coupled-event construction
	// (prepareNet): RC analysis, parameter validation, fault hooks.
	StagePrepare = "prepare"
	// StageEvaluate covers the per-net windowed combination inside the
	// propagation fixpoint.
	StageEvaluate = "evaluate"
	// StageDelay covers the per-net crosstalk delta-delay evaluation.
	StageDelay = "delay"
	// StageShard marks a victim whose owning shard was lost and could not
	// be reassigned within budget in a distributed run: the coordinator
	// substituted the conservative full-rail fallback for the whole shard.
	StageShard = "shard"
)

// Diag records one net the engine could not analyze and what it did about
// it.
type Diag struct {
	// Net is the victim the failure occurred on.
	Net string
	// Stage names where it failed (StagePrepare, StageEvaluate, StageDelay).
	Stage string
	// Err is the recovered panic or returned error.
	Err error
	// Degraded reports that the conservative full-rail fallback was
	// substituted (always true under fail-soft; a Diag is only recorded
	// at all when the run continued).
	Degraded bool
}

// String renders the diagnostic for logs and reports.
func (d Diag) String() string {
	action := "aborted"
	if d.Degraded {
		action = "degraded to full-rail bound"
	}
	return fmt.Sprintf("net %s: %s failed (%s): %v", d.Net, d.Stage, action, d.Err)
}

// SortDiags orders diagnostics by net name then stage — exported for the
// shard coordinator, which merges per-shard diagnostics (disjoint victim
// sets, so no ties) with its own shard-loss records before reporting.
func SortDiags(diags []Diag) { sortDiags(diags) }

// sortDiags orders diagnostics by net name then stage for deterministic
// reports regardless of worker scheduling.
func sortDiags(diags []Diag) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Net != diags[j].Net {
			return diags[i].Net < diags[j].Net
		}
		return diags[i].Stage < diags[j].Stage
	})
}
