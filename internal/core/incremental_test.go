package core

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bind"
	"repro/internal/liberty"
	"repro/internal/sta"
	"repro/internal/units"
	"repro/internal/workload"
)

// coupledBus binds a small symmetric bus (every line both aggresses and is
// aggressed by its neighbours, as extractors emit it) whose overlapping
// windows produce delay impacts on every line — the joint loop pads nets
// that are aggressors of other victims, which is what drives the
// incremental re-preparation path.
func coupledBus(t testing.TB, bits int) (*bind.Design, sta.Options) {
	t.Helper()
	g, err := workload.Bus(workload.BusSpec{
		Bits: bits, Segs: 2,
		WindowWidth: 80 * units.Pico,
	})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	return bd, g.STAOptions()
}

// f64Same is exact float equality with NaN treated as equal to itself —
// Combined.At is NaN for quiet nets, which breaks reflect.DeepEqual.
func f64Same(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func combSame(a, b Combined) bool {
	if !f64Same(a.Peak, b.Peak) || !f64Same(a.Width, b.Width) || !f64Same(a.At, b.At) {
		return false
	}
	if a.Window != b.Window || len(a.Members) != len(b.Members) || len(a.MemberEvents) != len(b.MemberEvents) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	for i := range a.MemberEvents {
		if a.MemberEvents[i] != b.MemberEvents[i] {
			return false
		}
	}
	return true
}

// requireSameNoise compares two noise results exactly (events,
// combinations, violations, slacks) apart from execution statistics.
func requireSameNoise(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Nets) != len(want.Nets) {
		t.Fatalf("%s: net count %d != %d", label, len(got.Nets), len(want.Nets))
	}
	for name, wn := range want.Nets {
		gn := got.Nets[name]
		if gn == nil {
			t.Fatalf("%s: net %s missing", label, name)
		}
		for _, k := range Kinds {
			if !combSame(gn.Comb[k], wn.Comb[k]) {
				t.Fatalf("%s: net %s kind %v comb differs:\n got %+v\nwant %+v",
					label, name, k, gn.Comb[k], wn.Comb[k])
			}
			if len(gn.Events[k]) != len(wn.Events[k]) {
				t.Fatalf("%s: net %s kind %v has %d events, want %d",
					label, name, k, len(gn.Events[k]), len(wn.Events[k]))
			}
			for i := range wn.Events[k] {
				if gn.Events[k][i] != wn.Events[k][i] {
					t.Fatalf("%s: net %s kind %v event %d differs:\n got %+v\nwant %+v",
						label, name, k, i, gn.Events[k][i], wn.Events[k][i])
				}
			}
		}
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		t.Fatalf("%s: violations differ:\n got %+v\nwant %+v", label, got.Violations, want.Violations)
	}
	if !reflect.DeepEqual(got.Slacks, want.Slacks) {
		t.Fatalf("%s: slacks differ:\n got %+v\nwant %+v", label, got.Slacks, want.Slacks)
	}
	if len(got.Diags) != len(want.Diags) {
		t.Fatalf("%s: diag count %d != %d", label, len(got.Diags), len(want.Diags))
	}
}

func requireSameDelay(t *testing.T, label string, got, want *DelayResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Impacts, want.Impacts) {
		t.Fatalf("%s: delay impacts differ:\n got %+v\nwant %+v", label, got.Impacts, want.Impacts)
	}
}

// TestIterativeIncrementalMatchesScratch is the oracle for the dirty-set
// engine: the final round of the incremental loop must equal a from-scratch
// analysis under the same (final) padding, in every mode.
func TestIterativeIncrementalMatchesScratch(t *testing.T) {
	for _, mode := range []Mode{ModeAllAggressors, ModeTimingWindows, ModeNoiseWindows} {
		t.Run(mode.String(), func(t *testing.T) {
			b, staOpts := coupledBus(t, 8)
			opts := Options{Mode: mode, STA: staOpts}
			iter, err := AnalyzeIterative(b, opts, 0)
			if err != nil {
				t.Fatal(err)
			}
			if iter.Rounds < 2 {
				t.Fatalf("rounds = %d: fixture no longer exercises the incremental path", iter.Rounds)
			}
			if !iter.Converged {
				// The final round must have run under the final padding for
				// the scratch comparison to be apples-to-apples.
				t.Fatalf("loop did not converge (%d rounds, %s)", iter.Rounds, iter.DivergeReason)
			}
			scratch := opts
			scratch.STA.WindowPadding = iter.Padding
			noise, err := Analyze(b, scratch)
			if err != nil {
				t.Fatal(err)
			}
			delay, err := AnalyzeDelay(b, scratch)
			if err != nil {
				t.Fatal(err)
			}
			requireSameNoise(t, "noise", iter.Noise, noise)
			requireSameDelay(t, "delay", iter.Delay, delay)
			// Preparation statistics are delta-maintained across rounds and
			// must match a scratch run; Iterations is an execution metric
			// (incremental rounds converge in fewer passes) and is excluded.
			is, ss := iter.Noise.Stats, noise.Stats
			if is.Victims != ss.Victims || is.AggressorPairs != ss.AggressorPairs ||
				is.Filtered != ss.Filtered || is.Propagated != ss.Propagated ||
				is.Converged != ss.Converged || is.DegradedNets != ss.DegradedNets {
				t.Fatalf("stats differ:\n got %+v\nwant %+v", is, ss)
			}
		})
	}
}

// TestLadderWorkloadConvergence pins the multi-round benchmark fixture:
// the ladder must take Steps+1 rounds to converge (one rung captured per
// round), and its incremental result must equal a from-scratch analysis
// at the final padding. If a model change moves the calibrated rung
// placements out of their capture bands, this fails before the benchmark
// numbers silently lose their meaning.
func TestLadderWorkloadConvergence(t *testing.T) {
	g, err := workload.Ladder(workload.LadderSpec{Lines: 16, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Bind(liberty.Generic())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Mode: ModeNoiseWindows, STA: g.STAOptions()}
	iter, err := AnalyzeIterative(b, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iter.Rounds != 6 || !iter.Converged {
		t.Fatalf("ladder ran %d rounds (conv=%v), want 6 converged — rung placement drifted",
			iter.Rounds, iter.Converged)
	}
	scratch := opts
	scratch.STA.WindowPadding = iter.Padding
	noise, err := Analyze(b, scratch)
	if err != nil {
		t.Fatal(err)
	}
	delay, err := AnalyzeDelay(b, scratch)
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoise(t, "ladder noise", iter.Noise, noise)
	requireSameDelay(t, "ladder delay", iter.Delay, delay)
}

// TestWorkersDeterminism: the parallel wavefront engine must reproduce the
// serial engine exactly, for both the one-shot and the iterative entry
// points, in every mode.
func TestWorkersDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeAllAggressors, ModeTimingWindows, ModeNoiseWindows} {
		t.Run(mode.String(), func(t *testing.T) {
			b := busFixture(t, 8, 4*units.Femto, 8*units.Femto)
			inputs := staggeredInputs(8, 40*units.Pico, 60*units.Pico)
			inputs["i_v"] = timingAt(0, 60*units.Pico)
			mk := func(workers int) Options {
				return Options{
					Mode:             mode,
					Workers:          workers,
					LogicCorrelation: true,
					STA:              sta.Options{InputTiming: inputs},
				}
			}
			serial := analyze(t, b, mk(1))
			parallel := analyze(t, b, mk(8))
			requireSameNoise(t, "analyze", parallel, serial)
			if serial.Stats != parallel.Stats {
				t.Fatalf("stats differ: serial %+v parallel %+v", serial.Stats, parallel.Stats)
			}

			iterS, err := AnalyzeIterative(b, mk(1), 0)
			if err != nil {
				t.Fatal(err)
			}
			iterP, err := AnalyzeIterative(b, mk(8), 0)
			if err != nil {
				t.Fatal(err)
			}
			if iterS.Rounds != iterP.Rounds || iterS.Converged != iterP.Converged {
				t.Fatalf("loop shape differs: serial %d/%v parallel %d/%v",
					iterS.Rounds, iterS.Converged, iterP.Rounds, iterP.Converged)
			}
			if !reflect.DeepEqual(iterS.Padding, iterP.Padding) {
				t.Fatalf("padding differs: %v vs %v", iterS.Padding, iterP.Padding)
			}
			requireSameNoise(t, "iterative", iterP.Noise, iterS.Noise)
			requireSameDelay(t, "iterative", iterP.Delay, iterS.Delay)
		})
	}
}

// TestIncrementalRoundsReuseCleanVictims pins down the point of the
// exercise: a round's dirty set must not include victims outside the
// padded nets' coupling neighbourhood and fanout.
func TestIncrementalRoundsReuseCleanVictims(t *testing.T) {
	b, staOpts := coupledBus(t, 8)
	prepares := make(map[string]int)
	opts := Options{
		Mode: ModeNoiseWindows,
		STA:  staOpts,
		PrepareHook: func(net string) error {
			prepares[net]++
			return nil
		},
	}
	iter, err := AnalyzeIterative(b, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iter.Rounds < 2 {
		t.Fatalf("rounds = %d: fixture no longer exercises the incremental path", iter.Rounds)
	}
	// Round 1 prepares everything once. Later rounds re-prepare only the
	// victims coupled to a padded net; the uncoupled input/output stub
	// nets must stay at one preparation no matter how many rounds ran.
	repreps := 0
	for net, n := range prepares {
		if n < 1 {
			t.Fatalf("net %s never prepared", net)
		}
		if !strings.HasPrefix(net, "b") && n != 1 {
			t.Fatalf("uncoupled net %s prepared %d times, want 1", net, n)
		}
		if n > 1 {
			repreps++
		}
	}
	if repreps == 0 {
		t.Fatal("no victim was ever re-prepared; the incremental path is dead")
	}
	// A line next to a padded line must have been re-prepared.
	for net, pad := range iter.Padding {
		if pad <= 0 || !strings.HasPrefix(net, "b") {
			continue
		}
		var i int
		if _, err := fmt.Sscanf(net, "b%d", &i); err != nil {
			continue
		}
		for _, j := range []int{i - 1, i + 1} {
			p := fmt.Sprintf("b%d", j)
			if prepares[p] > 0 && prepares[p] < 2 {
				t.Fatalf("neighbour %s of padded line %s prepared %d times, want ≥ 2",
					p, net, prepares[p])
			}
		}
	}
}
