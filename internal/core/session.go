package core

import (
	"context"
	"errors"
	"sort"

	"repro/internal/bind"
)

// Session is the exported handle on the persistent incremental analyzer
// that AnalyzeIterative uses internally. A long-running service keeps one
// Session per loaded design: the first (full) analysis builds the timing
// annotation, the noise contexts, and the coupled events once, and every
// later delta re-analysis — new window padding from an ECO, a routing
// iteration, or a what-if sweep — updates only the affected cones through
// the same dirty-set machinery the joint noise–timing loop runs on. The
// incremental results are identical to a from-scratch analysis under the
// same padding (the oracle tests in session_test.go pin this), except for
// execution statistics.
//
// A Session is NOT safe for concurrent use; callers serialize access (the
// server wraps each session in a mutex). A Session whose incremental
// update fails mid-flight is broken — its caches may be inconsistent — and
// every later call returns ErrSessionBroken so the owner knows to rebuild
// it rather than trust stale state.
type Session struct {
	a       *analyzer
	res     *Result
	padding map[string]float64
	broken  error
}

// ErrSessionBroken marks a Session whose last incremental update did not
// run to completion (cancellation, deadline, or an engine error). The
// session's caches may be inconsistent with its timing annotation, so it
// refuses further work; the owner must create a fresh Session.
var ErrSessionBroken = errors.New("core: session broken by failed incremental update")

// NewSession runs the full analysis (noise fixpoint plus the delta-delay
// pass) and returns the persistent handle. Options semantics match
// AnalyzeCtx; any WindowPadding already present in opts.STA seeds the
// session's padding state.
func NewSession(ctx context.Context, b *bind.Design, opts Options) (*Session, error) {
	padding := make(map[string]float64)
	for net, pad := range opts.STA.WindowPadding {
		padding[net] = pad
	}
	// The analyzer and the timing engine alias this map, exactly as the
	// iterative loop does: padding applied later is what the incremental
	// timing update reads.
	opts.STA.WindowPadding = padding
	a, err := newAnalyzer(ctx, b, opts)
	if err != nil {
		return nil, err
	}
	res := a.newResult()
	if err := a.runFixpoint(ctx, res, nil); err != nil {
		return nil, err
	}
	a.finishNoise(res)
	if err := a.delayPass(ctx, nil); err != nil {
		return nil, err
	}
	return &Session{a: a, res: res, padding: padding}, nil
}

// Noise returns the current noise result. The pointer stays valid across
// Reanalyze calls (the result is updated in place, like the iterative
// loop's), so callers that need a stable snapshot must serialize against
// Reanalyze.
func (s *Session) Noise() *Result { return s.res }

// Delay assembles the current crosstalk delta-delay result from the
// per-net impacts of the last (full or incremental) delay pass.
func (s *Session) Delay() *DelayResult { return s.a.assembleDelay() }

// Padding returns a copy of the per-net late-edge window padding currently
// applied to the session's timing annotation.
func (s *Session) Padding() map[string]float64 {
	out := make(map[string]float64, len(s.padding))
	for net, pad := range s.padding {
		out[net] = pad
	}
	return out
}

// Err returns nil for a healthy session and ErrSessionBroken after a
// failed incremental update.
func (s *Session) Err() error { return s.broken }

// Reanalyze applies the given per-net window padding and incrementally
// re-analyzes the affected cones: the timing annotation is updated in
// place for the padded nets' fanout, coupled events are rebuilt only for
// victims with a re-timed aggressor, the noise fixpoint re-runs only on
// the dirty closure, and the delay pass re-evaluates only the impacted
// victims. Padding is max-monotonic — an entry smaller than the current
// padding for that net is ignored — which makes Reanalyze idempotent: a
// retried delta is absorbed without moving the result.
//
// It returns the updated noise result and the number of nets whose padding
// actually changed. If nothing changed the session state is untouched. On
// error the session is broken (see ErrSessionBroken) unless the error
// occurred before any state was touched.
func (s *Session) Reanalyze(ctx context.Context, padding map[string]float64) (*Result, int, error) {
	if s.broken != nil {
		return nil, 0, s.broken
	}
	changed := make([]string, 0, len(padding))
	for net, pad := range padding {
		if pad > s.padding[net] {
			changed = append(changed, net)
		}
	}
	if len(changed) == 0 {
		return s.res, 0, nil
	}
	sort.Strings(changed)
	// Commit the padding, then update. From here on a failure leaves the
	// timing annotation, the event caches, and the committed combinations
	// potentially out of sync, so any error breaks the session.
	for _, net := range changed {
		s.padding[net] = padding[net]
	}
	if err := s.incremental(ctx, changed); err != nil {
		s.broken = ErrSessionBroken
		return nil, len(changed), err
	}
	return s.res, len(changed), nil
}

// incremental is one dirty-set round: the same call sequence as a later
// round of AnalyzeIterativeCtx.
func (s *Session) incremental(ctx context.Context, changed []string) error {
	staDirty, err := s.a.staRes.UpdatePaddingCtx(ctx, s.a.opts.STA, changed)
	if err != nil {
		return err
	}
	reprep, evalDirty, delayDirty := s.a.dirtyAfterPadding(staDirty)
	if err := s.a.reprepare(ctx, reprep); err != nil {
		return err
	}
	if err := s.a.runFixpoint(ctx, s.res, evalDirty); err != nil {
		return err
	}
	s.a.finishNoise(s.res)
	return s.a.delayPass(ctx, delayDirty)
}
