// Package core implements the paper's contribution: static noise analysis
// with noise windows (Tseng & Kariat, DAC 2003).
//
// Classical static noise analysis assumes every aggressor of a victim net
// can switch at any time, aligns all their glitches at one instant, and sums
// the peaks — maximally pessimistic. The noise-window method attaches to
// every glitch the time interval during which its peak can actually occur:
//
//   - A *coupled* glitch inherits its window from the inducing aggressor's
//     STA switching window, shifted by the aggressor's wire delay and edge
//     time and widened by the glitch's own width.
//
//   - A *propagated* glitch (noise passing through a gate from a noisy
//     input to the gate output) inherits the input glitch's window shifted
//     by the gate's [min, max] delay.
//
// Combination is a maximum over alignment instants of the summed glitch
// contributions. By default each glitch contributes its full peak when the
// instant lies in its noise window and a linearly decaying tail outside it
// (the "tent" occupancy — the exact worst case over the analyzer's own
// triangular glitch templates, sound against partial overlap; see
// Occupancy and experiment T11). The analyzer supports three combination
// policies so the pessimism the windows remove is measurable:
//
//	ModeAllAggressors — no timing at all (classical upper bound),
//	ModeTimingWindows — coupled glitches respect switching windows, but
//	                    propagated noise combines unconditionally,
//	ModeNoiseWindows  — full noise-window propagation (the paper).
package core

import (
	"math"
	"sort"

	"repro/internal/interval"
	"repro/internal/sta"
	"repro/internal/units"
)

// Mode selects the combination policy.
type Mode int

const (
	// ModeAllAggressors is the classical no-timing analysis: every
	// aggressor may switch at any time (infinite windows everywhere).
	ModeAllAggressors Mode = iota
	// ModeTimingWindows filters and aligns coupled glitches by the
	// aggressors' switching windows but treats propagated noise as
	// unconstrained — the state of the art the paper improves on.
	ModeTimingWindows
	// ModeNoiseWindows is the paper's method: every glitch, coupled or
	// propagated, carries a noise window, and only window-overlapping
	// glitches combine.
	ModeNoiseWindows
)

// String names the mode for reports.
func (m Mode) String() string {
	switch m {
	case ModeTimingWindows:
		return "timing-windows"
	case ModeNoiseWindows:
		return "noise-windows"
	}
	return "all-aggressors"
}

// Kind is the victim state a glitch endangers.
type Kind int

const (
	// KindLow: victim holds logic 0; rising aggressors inject an upward
	// glitch that can falsely turn on receivers.
	KindLow Kind = iota
	// KindHigh: victim holds logic 1; falling aggressors inject a
	// downward glitch.
	KindHigh
)

// String returns "low" or "high".
func (k Kind) String() string {
	if k == KindHigh {
		return "high"
	}
	return "low"
}

// Kinds lists both victim states for iteration.
var Kinds = [2]Kind{KindLow, KindHigh}

// Event is a single glitch hypothesis on a net: a peak magnitude, the
// glitch's half-peak width, and the noise window during which the peak can
// occur.
type Event struct {
	// Peak is the glitch magnitude in volts (always positive; Kind
	// carries the polarity).
	Peak float64
	// Width is the half-peak width in seconds.
	Width float64
	// Window is the noise window: the interval of possible peak instants.
	Window interval.Window
	// Source describes provenance: an aggressor net name for coupled
	// noise, "prop:<net>" for noise propagated from a fanin net,
	// "virtual" for the lumped filtered-aggressor pedestal.
	Source string
}

// Combined is the worst achievable superposition of a net's events of one
// kind.
type Combined struct {
	// Peak is the maximum summed glitch magnitude (clamped to Vdd).
	Peak float64
	// Width is the widest member glitch's width — the conservative width
	// for the immunity-curve check.
	Width float64
	// Window is the set of instants at which this combination is
	// achievable: the intersection of the member windows.
	Window interval.Window
	// At is one instant achieving the peak (NaN when Peak is 0).
	At float64
	// Members lists the sources that align to produce Peak.
	Members []string
	// MemberEvents holds the aligned events themselves, for waveform
	// reconstruction.
	MemberEvents []Event
}

// NetNoise is the analysis result for one victim net.
type NetNoise struct {
	Net string
	// Events per kind: individual coupled, virtual, and propagated
	// glitches.
	Events [2][]Event
	// Comb per kind: the worst windowed combination.
	Comb [2]Combined
}

// WorstPeak returns the larger combined peak across both kinds.
func (n *NetNoise) WorstPeak() float64 {
	return math.Max(n.Comb[KindLow].Peak, n.Comb[KindHigh].Peak)
}

// Violation is a failed noise check at one receiver input.
type Violation struct {
	Net      string  // victim net
	Receiver string  // receiving pin, "inst.pin" form
	Kind     Kind    // victim state
	Peak     float64 // combined glitch peak, volts
	Width    float64 // combined glitch width, seconds
	Limit    float64 // immunity-curve allowance at that width
	Slack    float64 // Limit − Peak (negative)
	At       float64 // an alignment instant achieving the peak
	Members  []string
}

// ReceiverSlack is the noise margin at one receiver input for one victim
// state — recorded for every checked receiver, passing or failing, so
// reports can show how close the design is to trouble, not only where it
// already failed.
type ReceiverSlack struct {
	Net      string
	Receiver string
	Kind     Kind
	Peak     float64 // combined glitch peak, volts (0 when quiet)
	Limit    float64 // immunity allowance at the combined width
	Slack    float64 // Limit − Peak
}

// Stats summarizes an analysis run.
type Stats struct {
	Victims        int // nets analyzed
	AggressorPairs int // victim-aggressor couplings considered
	Filtered       int // couplings dropped by the threshold filter
	Propagated     int // propagated glitch events created (last pass)
	Iterations     int // propagation passes until fixpoint
	Converged      bool
	// DegradedNets counts victims substituted with the conservative
	// full-rail fallback under fail-soft (equals len(Result.Diags)).
	DegradedNets int
}

// Result is a full-design noise analysis.
type Result struct {
	Mode       Mode
	Nets       map[string]*NetNoise
	Violations []Violation
	// Slacks records the noise margin of every checked receiver/state,
	// sorted tightest first (violations included, negative).
	Slacks []ReceiverSlack
	Stats  Stats
	// Diags lists the victims the engine could not analyze and degraded
	// to the conservative full-rail bound (fail-soft runs only; a
	// fail-fast run aborts on the first such failure instead). Sorted by
	// net name. Degraded nets appear in Nets with Peak pinned at Vdd but
	// carry no per-receiver Violations — the Diag marks the whole net
	// failing.
	Diags []Diag
	// STA is the timing annotation used (switching windows, slews).
	STA *sta.Result
	// byID indexes the analyzed nets' records by netlist ID for the
	// engine's hot loops. Only results built by an analyzer carry it;
	// merged shard results leave it nil and are never fed back into
	// engine loops.
	byID []*NetNoise
}

// NoiseOf returns the noise record for a net (nil if not analyzed).
func (r *Result) NoiseOf(net string) *NetNoise { return r.Nets[net] }

// TotalNoise sums every net's worst combined peak — the aggregate
// pessimism metric the experiments track across modes.
func (r *Result) TotalNoise() float64 {
	var s float64
	for _, n := range r.Nets {
		s += n.WorstPeak()
	}
	return s
}

// ViolationsOn returns the violations for one net.
func (r *Result) ViolationsOn(net string) []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Net == net {
			out = append(out, v)
		}
	}
	return out
}

// WorstSlack returns the smallest noise slack across all checked
// receivers, +Inf when nothing was checked.
func (r *Result) WorstSlack() float64 {
	if len(r.Slacks) == 0 {
		return math.Inf(1)
	}
	return r.Slacks[0].Slack
}

// TightestSlacks returns the n smallest receiver margins.
func (r *Result) TightestSlacks(n int) []ReceiverSlack {
	if n > len(r.Slacks) {
		n = len(r.Slacks)
	}
	return r.Slacks[:n]
}

// Occupancy selects how much of a glitch's waveform extent participates in
// combination — the soundness/tightness axis the Monte Carlo experiment
// (T11) probes.
type Occupancy int

const (
	// OccupancyTent is the default and the sound one: a glitch whose
	// peak window is d away from the alignment instant still contributes
	// its triangular tail, peak·(1 − d/width)⁺. The combined bound is
	// the exact worst case achievable by the analyzer's own glitch
	// templates, so random alignment sampling can never exceed it.
	OccupancyTent Occupancy = iota
	// OccupancyPeak combines only glitches whose peak windows share the
	// alignment instant — the classical windowed-combination semantics.
	// It is tighter but optimistic against partial (tail-under-peak)
	// overlap; kept as the historical baseline and ablation A1.
	OccupancyPeak
	// OccupancyWiden counts a glitch at full peak whenever the instant
	// is within width/2 of its peak window — a coarse conservative
	// over-approximation of the tent (ablation A1).
	OccupancyWiden
)

// String names the policy for reports.
func (o Occupancy) String() string {
	switch o {
	case OccupancyPeak:
		return "peak"
	case OccupancyWiden:
		return "widen"
	}
	return "tent"
}

// combine runs the windowed combination with the default (tent) occupancy.
func combine(events []Event, vdd float64) Combined {
	return combineConstrained(events, vdd, nil, OccupancyTent)
}

// combiner holds the scratch buffers one combination query needs, so the
// fixpoint's hot loop (every net, every pass, every round) does not
// reallocate them. One combiner serves one goroutine; the analyzer keeps
// one per worker.
type combiner struct {
	candidates []float64
	weights    []float64
	active     []int
	members    []int
	seen       map[string]bool
}

// contribution returns how much of event e's peak can appear at instant t
// under the given occupancy policy.
func contribution(e *Event, t float64, occ Occupancy) float64 {
	if e.Window.IsEmpty() || e.Peak <= 0 {
		return 0
	}
	var d float64
	switch {
	case e.Window.Contains(t):
		d = 0
	case t < e.Window.Lo:
		d = e.Window.Lo - t
	default:
		d = t - e.Window.Hi
	}
	switch occ {
	case OccupancyPeak:
		if d == 0 {
			return e.Peak
		}
		return 0
	case OccupancyWiden:
		if d <= e.Width/2 {
			return e.Peak
		}
		return 0
	default: // OccupancyTent
		if d == 0 {
			return e.Peak
		}
		if e.Width <= 0 || d >= e.Width {
			return 0
		}
		return e.Peak * (1 - d/e.Width)
	}
}

// combineConstrained finds the worst achievable superposition of the
// events under the occupancy policy and optional pairwise exclusions. The
// objective max_t Σ_i contribution_i(t) is piecewise linear in t, so the
// maximum lies at a breakpoint: a window edge, or a window edge offset by
// the event's (half-)width. Each candidate instant is evaluated exactly;
// with exclusions the best conflict-free subset at each instant comes from
// an exact branch-and-bound independent-set query.
func combineConstrained(events []Event, vdd float64, conflict func(i, j int) bool, occ Occupancy) Combined {
	var cb combiner
	return cb.combineConstrained(events, vdd, conflict, occ)
}

func (cb *combiner) combineConstrained(events []Event, vdd float64, conflict func(i, j int) bool, occ Occupancy) Combined {
	if len(events) == 0 {
		return Combined{At: math.NaN(), Window: interval.Empty()}
	}
	candidates := cb.candidates[:0]
	addCand := func(t float64) {
		if !math.IsInf(t, 0) && !math.IsNaN(t) {
			candidates = append(candidates, t)
		}
	}
	for i := range events {
		e := &events[i]
		if e.Window.IsEmpty() || e.Peak <= 0 {
			continue
		}
		addCand(e.Window.Lo)
		addCand(e.Window.Hi)
		switch occ {
		case OccupancyWiden:
			addCand(e.Window.Lo - e.Width/2)
			addCand(e.Window.Hi + e.Width/2)
		case OccupancyTent:
			addCand(e.Window.Lo - e.Width)
			addCand(e.Window.Hi + e.Width)
		}
	}
	if len(candidates) == 0 {
		// All contributing windows are infinite (or none contribute):
		// any instant is as good as any other.
		candidates = append(candidates, 0)
	}
	cb.candidates = candidates

	// A net transitions at most once per edge direction per cycle, so two
	// events with the same source — one aggressor's alternative switching
	// phases, or one input glitch reaching the output through parallel
	// arcs — are mutually exclusive and must never sum. Under the peak
	// policy their disjoint windows make that automatic; tails make it
	// explicit.
	dupSources := false
	if cb.seen == nil {
		cb.seen = make(map[string]bool, len(events))
	} else {
		clear(cb.seen)
	}
	seen := cb.seen
	for i := range events {
		if seen[events[i].Source] {
			dupSources = true
			break
		}
		seen[events[i].Source] = true
	}
	fullConflict := conflict
	if dupSources {
		fullConflict = func(i, j int) bool {
			if events[i].Source == events[j].Source {
				return true
			}
			return conflict != nil && conflict(i, j)
		}
	}

	if cap(cb.weights) < len(events) {
		cb.weights = make([]float64, len(events))
	}
	weights := cb.weights[:len(events)]
	var bestSum float64
	bestAt := math.NaN()
	bestMembers := cb.members[:0]
	for _, t := range candidates {
		active := cb.active[:0]
		for i := range events {
			weights[i] = contribution(&events[i], t, occ)
			if weights[i] > 0 {
				active = append(active, i)
			}
		}
		cb.active = active
		if len(active) == 0 {
			continue
		}
		var sum float64
		var members []int
		if fullConflict == nil {
			for _, i := range active {
				sum += weights[i]
			}
			members = active
		} else {
			sum, members = interval.MaxWeightIndependentSet(weights, active, fullConflict)
		}
		if sum > bestSum {
			bestSum = sum
			bestAt = t
			bestMembers = append(bestMembers[:0], members...)
		}
	}
	cb.members = bestMembers
	if math.IsNaN(bestAt) || bestSum <= 0 {
		return Combined{At: math.NaN(), Window: interval.Empty()}
	}
	out := Combined{Peak: math.Min(bestSum, vdd), At: bestAt}
	win := interval.Infinite()
	containing := 0
	for _, idx := range bestMembers {
		e := events[idx]
		out.Members = append(out.Members, e.Source)
		out.MemberEvents = append(out.MemberEvents, e)
		if e.Width > out.Width {
			out.Width = e.Width
		}
		// Only members whose peak can actually sit at the alignment
		// instant constrain the combined window; tail contributors peak
		// elsewhere.
		if e.Window.Contains(bestAt) {
			win = win.Intersect(e.Window)
			containing++
		}
	}
	if containing == 0 {
		win = interval.Point(bestAt)
	}
	sort.Strings(out.Members)
	out.Window = win
	return out
}

// eventsApproxEqualPeak reports whether two combined results agree on peak
// within tolerance — the fixpoint test for the propagation iteration.
func combEqual(a, b Combined, tol float64) bool {
	return math.Abs(a.Peak-b.Peak) <= tol && math.Abs(a.Width-b.Width) <= tol+units.Pico/1000
}
