package core

import (
	"repro/internal/bind"
	"repro/internal/liberty"
	"repro/internal/netlist"
)

// Logic correlation: two aggressors whose transitions are logically
// mutually exclusive can never glitch a victim together, no matter what
// their timing windows say. The classic case is a signal and its
// complement routed side by side — within one switching event of their
// shared source, one rises exactly when the other falls, so their
// same-direction glitches (which is what a single victim state collects)
// can never align.
//
// The analyzer tracks, for every net, the set of primary inputs it depends
// on and the polarity of each dependence (positive, negative, or both when
// reconvergence mixes parities). Under the single-transition-per-cycle
// model, aggressor A making edge dA and aggressor B making edge dB are
// mutually exclusive when both depend on exactly the same single input
// with definite polarities that demand opposite transitions of that input.
// Combination then becomes a maximum-weight overlap query with pairwise
// conflicts (interval.MaxOverlapSumConstrained).

// polarity is a bitmask: bit 0 = positive path exists, bit 1 = negative.
type polarity uint8

const (
	polPos  polarity = 1
	polNeg  polarity = 2
	polBoth polarity = polPos | polNeg
)

// invert flips the parity of every path.
func (p polarity) invert() polarity {
	var out polarity
	if p&polPos != 0 {
		out |= polNeg
	}
	if p&polNeg != 0 {
		out |= polPos
	}
	return out
}

// sourceMap records a net's dependence on primary inputs: port name →
// polarity. A nil map means "unknown" (feedback loops, or nets with no
// computed dependence) and disables correlation for that net.
type sourceMap map[string]polarity

// buildCorrelations computes every net's source map by one pass over the
// levelized netlist. Nets on or downstream of combinational loops get nil
// (no correlation claims are made about them).
func buildCorrelations(b *bind.Design) map[string]sourceMap {
	out := make(map[string]sourceMap, b.Net.NumNets())
	for _, p := range b.Net.Ports() {
		if p.Dir == netlist.In {
			out[p.Name] = sourceMap{p.Name: polPos}
		}
	}
	lev := b.Net.Levelize()
	for _, inst := range lev.Ordered() {
		cell := b.Cell(inst)
		for _, oc := range inst.Outputs() {
			merged := sourceMap{}
			known := true
			for _, arc := range cell.ArcsTo(oc.Pin) {
				ic := inst.Conns[arc.From]
				if ic == nil {
					continue
				}
				in, ok := out[ic.Net.Name]
				if !ok || in == nil {
					known = false
					break
				}
				for port, pol := range in {
					switch arc.Unate {
					case liberty.NegativeUnate:
						pol = pol.invert()
					case liberty.NonUnate:
						pol = polBoth
					}
					merged[port] |= pol
				}
			}
			if !known {
				out[oc.Net.Name] = nil
				continue
			}
			out[oc.Net.Name] = merged
		}
	}
	// Feedback-driven nets stay absent; normalize them to nil entries so
	// lookups distinguish "no info" from "no dependence".
	for _, inst := range lev.Feedback {
		for _, oc := range inst.Outputs() {
			out[oc.Net.Name] = nil
		}
	}
	return out
}

// exclusiveEdges reports whether net A making edge riseA and net B making
// edge riseB are logically mutually exclusive: both depend solely on the
// same input with definite, contradictory polarity requirements.
func exclusiveEdges(sA, sB sourceMap, riseA, riseB bool) bool {
	if len(sA) != 1 || len(sB) != 1 {
		return false
	}
	var portA, portB string
	var polA, polB polarity
	for p, q := range sA {
		portA, polA = p, q
	}
	for p, q := range sB {
		portB, polB = p, q
	}
	if portA != portB || polA == polBoth || polB == polBoth {
		return false
	}
	// The input must rise for net X to rise through a positive path, or
	// fall through a negative one.
	reqA := riseA == (polA == polPos)
	reqB := riseB == (polB == polPos)
	return reqA != reqB
}

// conflictFunc builds the pairwise exclusion test for one victim kind's
// event list. Only coupled events (whose Source is an aggressor net name
// with a known source map) participate; propagated and virtual events are
// never excluded.
func (a *analyzer) conflictFunc(events []Event, k Kind) func(i, j int) bool {
	if a.corr == nil {
		return nil
	}
	rise := k == KindLow // rising aggressors endanger a low victim
	return func(i, j int) bool {
		si, okI := a.corr[events[i].Source]
		sj, okJ := a.corr[events[j].Source]
		if !okI || !okJ || si == nil || sj == nil {
			return false
		}
		return exclusiveEdges(si, sj, rise, rise)
	}
}
