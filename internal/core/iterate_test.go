package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sta"
	"repro/internal/units"
)

func TestIterativeConvergesOnQuietVictims(t *testing.T) {
	// Quiet victim: no switching, no delta-delay, loop converges in one
	// round with zero padding.
	b := busFixture(t, 2, 4*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 0, 60*units.Pico)
	res, err := AnalyzeIterative(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != 1 {
		t.Fatalf("rounds=%d converged=%v", res.Rounds, res.Converged)
	}
	if res.MaxPadding() != 0 {
		t.Fatalf("padding = %g", res.MaxPadding())
	}
	if res.Noise == nil || res.Delay == nil {
		t.Fatal("missing result components")
	}
}

func TestIterativeConvergesWithDeltaFeedback(t *testing.T) {
	// Everything switches together: delta-delays exist, get folded into
	// window padding, and the loop still reaches a fixpoint.
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 0, 60*units.Pico)
	inputs["i_v"] = timingAt(0, 60*units.Pico)
	res, err := AnalyzeIterative(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d rounds (padding %g)", res.Rounds, res.MaxPadding())
	}
	if res.Rounds < 2 {
		t.Fatalf("rounds = %d, want ≥ 2 (delta feedback must trigger a second round)", res.Rounds)
	}
	if res.MaxPadding() <= 0 {
		t.Fatal("no padding despite delay impacts")
	}
	// The victim's window in the final round is wider than in a plain
	// run: padding made the late edge later.
	plain, err := Analyze(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}})
	if err != nil {
		t.Fatal(err)
	}
	wPlain := plain.STA.TimingOfNet("v").Rise.Hull()
	wIter := res.Noise.STA.TimingOfNet("v").Rise.Hull()
	if !(wIter.Hi > wPlain.Hi) {
		t.Fatalf("padded window %v not later than plain %v", wIter, wPlain)
	}
	if wIter.Lo != wPlain.Lo {
		t.Fatalf("padding moved the early edge: %v vs %v", wIter, wPlain)
	}
}

func TestIterativePaddingMonotone(t *testing.T) {
	// Final noise under padded windows can only be ≥ the unpadded run
	// (windows grew, more overlap possible).
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 100*units.Pico, 60*units.Pico)
	inputs["i_v"] = timingAt(0, 60*units.Pico)
	opts := Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}
	iter, err := AnalyzeIterative(b, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(b, opts)
	if err != nil {
		t.Fatal(err)
	}
	if iter.Noise.TotalNoise() < plain.TotalNoise()-1e-9 {
		t.Fatalf("padded analysis lost noise: %g vs %g",
			iter.Noise.TotalNoise(), plain.TotalNoise())
	}
}

func TestIterativeNonConvergenceReportsDiverging(t *testing.T) {
	// The delta-feedback fixture needs at least two rounds to settle;
	// capping at one round leaves the padding still growing when the
	// budget runs out, which must surface as Diverging, never as a
	// silent Converged=false.
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 0, 60*units.Pico)
	inputs["i_v"] = timingAt(0, 60*units.Pico)
	res, err := AnalyzeIterative(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("one round cannot converge this fixture")
	}
	if !res.Diverging || res.DivergeReason == "" {
		t.Fatalf("Diverging=%v reason=%q, want divergence diagnostic", res.Diverging, res.DivergeReason)
	}
	if res.Rounds != 1 || res.MaxPadding() <= 0 {
		t.Fatalf("rounds=%d padding=%g", res.Rounds, res.MaxPadding())
	}
}

func TestIterativeRoundBudgetTripsWatchdog(t *testing.T) {
	// A one-nanosecond budget is blown by any real round; the watchdog
	// must stop after the first growing round and say why.
	b := busFixture(t, 3, 4*units.Femto, 8*units.Femto)
	inputs := staggeredInputs(3, 0, 60*units.Pico)
	inputs["i_v"] = timingAt(0, 60*units.Pico)
	opts := Options{Mode: ModeNoiseWindows, RoundBudget: time.Nanosecond, STA: sta.Options{InputTiming: inputs}}
	res, err := AnalyzeIterative(b, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || !res.Diverging {
		t.Fatalf("converged=%v diverging=%v, want budget trip", res.Converged, res.Diverging)
	}
	if !strings.Contains(res.DivergeReason, "budget") {
		t.Fatalf("reason = %q, want round-budget explanation", res.DivergeReason)
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want watchdog stop after round 1", res.Rounds)
	}
}

func TestIterativeConvergedNeverDiverging(t *testing.T) {
	b := busFixture(t, 2, 4*units.Femto, 10*units.Femto)
	inputs := staggeredInputs(2, 0, 60*units.Pico)
	res, err := AnalyzeIterative(b, Options{Mode: ModeNoiseWindows, STA: sta.Options{InputTiming: inputs}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Diverging || res.DivergeReason != "" {
		t.Fatalf("converged=%v diverging=%v reason=%q", res.Converged, res.Diverging, res.DivergeReason)
	}
}
