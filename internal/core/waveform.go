package core

import (
	"repro/internal/waveform"
)

// CombinedWaveform reconstructs the worst-case superposed glitch of one
// victim state as a piecewise-linear waveform: every member of the winning
// combination contributes a triangular template (its peak and half-peak
// width) centered at the alignment instant, and the templates are summed.
// The reconstruction is for reporting and visualization — the signed
// polarity follows the kind (upward for a low victim, downward for high).
func (n *NetNoise) CombinedWaveform(k Kind) waveform.PWL {
	comb := n.Comb[k]
	if comb.Peak <= 0 || len(comb.MemberEvents) == 0 {
		return waveform.PWL{}
	}
	var sum waveform.PWL
	for _, e := range comb.MemberEvents {
		w := e.Width
		if w <= 0 {
			continue
		}
		tri := waveform.Triangle(comb.At-w, comb.At, comb.At+w, e.Peak)
		sum = sum.Add(tri)
	}
	if k == KindHigh {
		return sum.Negate()
	}
	return sum
}
