package core

import (
	"context"
	"testing"

	"repro/internal/workload"
)

// TestSessionReanalyzeMatchesScratch is the oracle for the exported
// persistent-session API: after any sequence of incremental padding
// deltas, the session's noise and delay results must equal a from-scratch
// analysis under the same accumulated padding.
func TestSessionReanalyzeMatchesScratch(t *testing.T) {
	b, staOpts := coupledBus(t, 8)
	opts := Options{Mode: ModeNoiseWindows, STA: staOpts}
	sess, err := NewSession(context.Background(), b, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Drive the session the way a service would: feed back the delay
	// impacts as padding, twice, like two rounds of the signoff loop.
	for round := 0; round < 2; round++ {
		delta := make(map[string]float64)
		for _, im := range sess.Delay().Impacts {
			if im.Delta > delta[im.Net] {
				delta[im.Net] = im.Delta
			}
		}
		res, changed, err := sess.Reanalyze(context.Background(), delta)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res == nil {
			t.Fatalf("round %d: nil result", round)
		}
		if round == 0 && changed == 0 {
			t.Fatal("first feedback round changed nothing; fixture no longer exercises the incremental path")
		}
	}

	scratch := opts
	scratch.STA.WindowPadding = sess.Padding()
	noise, err := Analyze(b, scratch)
	if err != nil {
		t.Fatal(err)
	}
	delay, err := AnalyzeDelay(b, scratch)
	if err != nil {
		t.Fatal(err)
	}
	requireSameNoise(t, "session noise", sess.Noise(), noise)
	requireSameDelay(t, "session delay", sess.Delay(), delay)
}

// TestSessionReanalyzeIdempotent: re-applying the same padding must be a
// no-op (max-monotonic semantics), which is what makes the server's
// delta-reanalyze endpoint safe to retry.
func TestSessionReanalyzeIdempotent(t *testing.T) {
	b, staOpts := coupledBus(t, 8)
	sess, err := NewSession(context.Background(), b, Options{Mode: ModeNoiseWindows, STA: staOpts})
	if err != nil {
		t.Fatal(err)
	}
	delta := make(map[string]float64)
	for _, im := range sess.Delay().Impacts {
		if im.Delta > delta[im.Net] {
			delta[im.Net] = im.Delta
		}
	}
	if _, changed, err := sess.Reanalyze(context.Background(), delta); err != nil || changed == 0 {
		t.Fatalf("first apply: changed=%d err=%v", changed, err)
	}
	if _, changed, err := sess.Reanalyze(context.Background(), delta); err != nil || changed != 0 {
		t.Fatalf("retried apply: changed=%d err=%v, want 0 nil", changed, err)
	}
	// Smaller padding must be ignored, not shrink the applied state.
	smaller := make(map[string]float64)
	for net, pad := range delta {
		smaller[net] = pad / 2
	}
	if _, changed, err := sess.Reanalyze(context.Background(), smaller); err != nil || changed != 0 {
		t.Fatalf("smaller apply: changed=%d err=%v, want 0 nil", changed, err)
	}
}

// TestSessionBrokenAfterCancelledReanalyze: a cancelled incremental update
// must poison the session rather than leave silently inconsistent caches.
func TestSessionBrokenAfterCancelledReanalyze(t *testing.T) {
	b, staOpts := coupledBus(t, 8)
	sess, err := NewSession(context.Background(), b, Options{Mode: ModeNoiseWindows, STA: staOpts})
	if err != nil {
		t.Fatal(err)
	}
	delta := make(map[string]float64)
	for _, im := range sess.Delay().Impacts {
		if im.Delta > delta[im.Net] {
			delta[im.Net] = im.Delta
		}
	}
	if len(delta) == 0 {
		t.Fatal("fixture produced no delay impacts")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sess.Reanalyze(ctx, delta); err == nil {
		t.Fatal("cancelled reanalyze returned nil error")
	}
	if sess.Err() == nil {
		t.Fatal("session not marked broken after failed update")
	}
	if _, _, err := sess.Reanalyze(context.Background(), delta); err != ErrSessionBroken {
		t.Fatalf("broken session accepted work: err=%v", err)
	}
}

// TestSessionFaultInjection: a session over a design with injected
// per-victim panics must degrade those victims fail-soft and keep the
// rest analyzable — the substrate the server's circuit breaker observes.
func TestSessionFaultInjection(t *testing.T) {
	b, staOpts := coupledBus(t, 8)
	faults := workload.RuntimeFaults{Panic: []string{"b1"}}
	sess, err := NewSession(context.Background(), b, Options{
		Mode:        ModeNoiseWindows,
		STA:         staOpts,
		FailSoft:    true,
		PrepareHook: faults.Hook(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res := sess.Noise()
	if res.Stats.DegradedNets != 1 || len(res.Diags) != 1 || res.Diags[0].Net != "b1" {
		t.Fatalf("expected exactly net b1 degraded, got %+v", res.Diags)
	}
	if got := res.Nets["b1"].Comb[KindLow].Peak; got <= 0 {
		t.Fatalf("degraded net lost its conservative bound: peak %g", got)
	}
}
