package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	a := Intern("alpha")
	b := Intern("beta")
	if a == b {
		t.Fatalf("distinct strings got the same sym %v", a)
	}
	if Intern("alpha") != a {
		t.Fatalf("re-intern changed sym")
	}
	if got := a.String(); got != "alpha" {
		t.Fatalf("String(alpha) = %q", got)
	}
	if InternBytes([]byte("alpha")) != a {
		t.Fatalf("InternBytes disagrees with Intern")
	}
	if sym, ok := Lookup("alpha"); !ok || sym != a {
		t.Fatalf("Lookup(alpha) = %v, %v", sym, ok)
	}
	if _, ok := Lookup("never-interned-aa2c1d"); ok {
		t.Fatalf("Lookup invented a symbol")
	}
	if Canon("alpha") != a.String() {
		t.Fatalf("Canon not canonical")
	}
}

func TestInternConcurrent(t *testing.T) {
	const workers, n = 8, 2000
	var wg sync.WaitGroup
	syms := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			syms[w] = make([]Sym, n)
			for i := 0; i < n; i++ {
				syms[w][i] = Intern(fmt.Sprintf("net_%d", i))
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < n; i++ {
			if syms[w][i] != syms[0][i] {
				t.Fatalf("worker %d got different sym for net_%d", w, i)
			}
		}
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("net_%d", i)
		if got := syms[0][i].String(); got != want {
			t.Fatalf("sym for %q resolves to %q", want, got)
		}
	}
}

func BenchmarkInternHit(b *testing.B) {
	Intern("bench_hot_name")
	buf := []byte("bench_hot_name")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		InternBytes(buf)
	}
}
