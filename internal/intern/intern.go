// Package intern provides a process-wide string interner. Design
// databases at the million-net scale repeat the same identifiers many
// times over (net names appear in the netlist, the parasitics, the
// timing annotation, and every diagnostic); interning stores each
// distinct name once and hands out a dense 32-bit symbol that is cheap
// to hash, compare, and use as a map key or slice index.
//
// The table is sharded for concurrent use: the streaming loaders intern
// from parallel section parsers. Symbols are never freed — the table
// grows monotonically for the life of the process, which is the right
// trade for a batch analysis tool and documented in DESIGN.md §11.
package intern

import (
	"sync"
)

// Sym is a dense handle for an interned string. Two strings are equal
// iff their Syms are equal. The zero Sym is a valid symbol (the first
// string interned on shard 0), so absence must be tracked separately
// (see Lookup).
type Sym uint32

const (
	shardBits = 6
	numShards = 1 << shardBits
	shardMask = numShards - 1
)

type shard struct {
	mu   sync.RWMutex
	syms map[string]Sym
	strs []string
}

var table [numShards]*shard

func init() {
	for i := range table {
		table[i] = &shard{syms: make(map[string]Sym)}
	}
}

// fnv1a is FNV-1a over the bytes of s; only the low bits pick a shard,
// so the cheap 32-bit variant is plenty.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Intern returns the symbol for s, creating it on first use.
func Intern(s string) Sym {
	sh := table[fnv1a(s)&shardMask]
	sh.mu.RLock()
	sym, ok := sh.syms[s]
	sh.mu.RUnlock()
	if ok {
		return sym
	}
	return sh.intern(s)
}

// InternBytes is Intern for a byte slice. On the hit path it performs
// no allocation (the compiler elides the string conversion used only as
// a map key); on the miss path the bytes are copied into a fresh
// canonical string.
func InternBytes(b []byte) Sym {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	sh := table[h&shardMask]
	sh.mu.RLock()
	sym, ok := sh.syms[string(b)]
	sh.mu.RUnlock()
	if ok {
		return sym
	}
	return sh.intern(string(b))
}

func (sh *shard) intern(s string) Sym {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sym, ok := sh.syms[s]; ok {
		return sym
	}
	idx := len(sh.strs)
	sh.strs = append(sh.strs, s)
	sym := Sym(uint32(idx)<<shardBits | fnv1a(s)&shardMask)
	sh.syms[s] = sym
	return sym
}

// Lookup returns the symbol for s without creating one. The second
// result reports whether s has been interned.
func Lookup(s string) (Sym, bool) {
	sh := table[fnv1a(s)&shardMask]
	sh.mu.RLock()
	sym, ok := sh.syms[s]
	sh.mu.RUnlock()
	return sym, ok
}

// String returns the canonical string for sym. It panics on a symbol
// that was never issued.
func (sym Sym) String() string {
	sh := table[sym&shardMask]
	sh.mu.RLock()
	s := sh.strs[sym>>shardBits]
	sh.mu.RUnlock()
	return s
}

// Canon returns the canonical (interned) copy of s, so equal names
// across a design share one backing string.
func Canon(s string) string {
	return Intern(s).String()
}

// Len reports the number of distinct strings interned so far, for
// tests and capacity diagnostics.
func Len() int {
	n := 0
	for _, sh := range table {
		sh.mu.RLock()
		n += len(sh.strs)
		sh.mu.RUnlock()
	}
	return n
}

// Stats reports the table's size: distinct symbols and the bytes held
// by their canonical strings (content plus headers plus the lookup-map
// entries). The server's /metrics endpoint exposes both as gauges so
// operators can watch the monotonic interner alongside the budgeted
// design cache.
func Stats() (syms int, bytes int64) {
	const strHeader = 16 // string header: pointer + length
	for _, sh := range table {
		sh.mu.RLock()
		syms += len(sh.strs)
		for _, s := range sh.strs {
			// Each string appears twice (slice + map key) but shares one
			// backing array; one content count plus two headers plus the
			// map's value and bucket overhead.
			bytes += int64(len(s)) + 2*strHeader + 4 + 16
		}
		sh.mu.RUnlock()
	}
	return syms, bytes
}
