package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("a"), []byte(`{"seq":1}`), {}, bytes.Repeat([]byte{0xab}, 4096)}
	var buf bytes.Buffer
	for _, p := range payloads {
		buf.Write(Frame(p))
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q, want %q", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err == nil || err.Error() != "EOF" {
		t.Fatalf("want io.EOF at clean end, got %v", err)
	}
}

func TestReadFrameTornAndCorrupt(t *testing.T) {
	full := Frame([]byte("payload"))

	// Torn header and torn payload both classify as Torn.
	for _, cut := range []int{3, FrameHeaderLen + 2} {
		var fe *FrameError
		_, err := ReadFrame(bytes.NewReader(full[:cut]))
		if !errors.As(err, &fe) || !fe.Torn {
			t.Fatalf("cut at %d: want torn FrameError, got %v", cut, err)
		}
	}

	// A flipped payload byte is corruption, not a torn tail.
	bad := append([]byte(nil), full...)
	bad[FrameHeaderLen] ^= 0xff
	var fe *FrameError
	_, err := ReadFrame(bytes.NewReader(bad))
	if !errors.As(err, &fe) || fe.Torn {
		t.Fatalf("want non-torn FrameError for CRC mismatch, got %v", err)
	}
}

func TestWriterAppendAndScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	w, err := OpenWriter(path, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	scan, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Frames) != 3 || scan.Torn || scan.Corrupt != "" {
		t.Fatalf("scan = %+v", scan)
	}
	fi, _ := os.Stat(path)
	if scan.GoodOffset != fi.Size() {
		t.Fatalf("GoodOffset %d != file size %d", scan.GoodOffset, fi.Size())
	}
}

// A failed append (torn write) must truncate its partial frame so the
// next append stays replayable — the core journal-before-acknowledge
// guarantee.
func TestWriterTornAppendRepairsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	fail := true
	w, err := OpenWriter(path, Hooks{
		BeforeWrite: func(op string, size int) (int, error) {
			if fail {
				fail = false
				return size / 2, fmt.Errorf("injected torn write")
			}
			return size, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("first")); err == nil {
		t.Fatal("injected torn append unexpectedly succeeded")
	}
	if err := w.Append([]byte("second")); err != nil {
		t.Fatalf("append after tail repair: %v", err)
	}
	w.Close()
	scan, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Frames) != 1 || string(scan.Frames[0]) != "second" || scan.Torn {
		t.Fatalf("scan after repair = %+v", scan)
	}
}

func TestScanTornTailKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	good := Frame([]byte("keep"))
	torn := Frame([]byte("lost"))[:FrameHeaderLen+2]
	if err := os.WriteFile(path, append(append([]byte(nil), good...), torn...), 0o644); err != nil {
		t.Fatal(err)
	}
	scan, err := Scan(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Frames) != 1 || string(scan.Frames[0]) != "keep" || !scan.Torn {
		t.Fatalf("scan = %+v", scan)
	}
	if scan.GoodOffset != int64(len(good)) {
		t.Fatalf("GoodOffset %d, want %d", scan.GoodOffset, len(good))
	}
}

func TestScanMissingFileIsEmpty(t *testing.T) {
	scan, err := Scan(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Frames) != 0 || scan.Torn || scan.Corrupt != "" {
		t.Fatalf("scan = %+v", scan)
	}
}

func TestWriteFileAtomicRenameFaultStrandsTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target")
	err := WriteFileAtomic(path, []byte("data"), Hooks{
		BeforeRename: func(op string) error { return fmt.Errorf("injected crash before rename") },
	})
	if err == nil {
		t.Fatal("injected rename fault unexpectedly succeeded")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("target exists after failed rename: %v", serr)
	}
	if _, serr := os.Stat(path + ".tmp"); serr != nil {
		t.Fatalf("temp file not stranded (the crash signature): %v", serr)
	}
	if err := WriteFileAtomic(path, []byte("data"), Hooks{}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "data" {
		t.Fatalf("read back %q, %v", got, err)
	}
}
