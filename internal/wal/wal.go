// Package wal is the shared write-ahead-log machinery of snad's durable
// subsystems: CRC-framed fsynced appends, torn-tail repair, fail-soft
// scans, and the temp+fsync+rename+dirsync atomic-replace discipline.
// It was extracted from the session store (internal/server) so the jobs
// subsystem (internal/jobs) journals with the exact same crash-safety
// semantics instead of a parallel implementation.
//
// A journal is an append-only sequence of framed payloads. Every frame
// is
//
//	[4 bytes little-endian payload length][4 bytes IEEE CRC32 of payload][payload]
//
// so a reader can detect exactly where a crash mid-append (torn write)
// or later corruption (bit rot, truncation) left the file: a frame
// whose header or payload runs past EOF is a torn tail, and a frame
// whose CRC does not match is corruption. The distinction matters for
// recovery policy — a torn tail is the expected signature of a crash
// and is silently discarded after replaying everything before it, while
// a CRC mismatch in the middle of the file is quarantined with a
// reason.
//
// Payloads are owner-defined (both current owners use JSON record
// objects — a few bytes over a binary encoding, but on-disk journals
// stay inspectable with nothing but cat, worth it at lifecycle-event
// rates).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

const (
	// FrameHeaderLen is the fixed per-frame overhead.
	FrameHeaderLen = 8
	// MaxFramePayload bounds one record. Session create payloads carry
	// whole design databases inline, so the bound is generous; its real
	// job is rejecting the absurd lengths a corrupted header decodes to
	// before a reader tries to allocate them.
	MaxFramePayload = 1 << 30
)

// Frame wraps a payload in the length+CRC header.
func Frame(payload []byte) []byte {
	buf := make([]byte, FrameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[FrameHeaderLen:], payload)
	return buf
}

// FrameError classifies why reading a frame failed.
type FrameError struct {
	// Torn reports the read ran past EOF: a crash mid-append.
	Torn   bool
	Reason string
}

func (e *FrameError) Error() string { return e.Reason }

// ReadFrame reads one frame from r. io.EOF means a clean end exactly at
// a frame boundary; a *FrameError reports a torn tail or corruption.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [FrameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, &FrameError{Torn: true, Reason: fmt.Sprintf("torn frame header: %v", err)}
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFramePayload {
		return nil, &FrameError{Reason: fmt.Sprintf("frame length %d exceeds limit %d (corrupt header)", n, MaxFramePayload)}
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, &FrameError{Torn: true, Reason: fmt.Sprintf("torn frame payload (%d of %d bytes): %v", m, n, err)}
	}
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, &FrameError{Reason: fmt.Sprintf("frame CRC mismatch: stored %08x, computed %08x", want, got)}
	}
	return payload, nil
}

// Hooks is the write-path fault-injection seam. The fields match
// workload.StoreFaults' methods; production journals leave them nil.
type Hooks struct {
	// BeforeWrite may truncate the write to its returned length (torn
	// write) and/or fail it. op is "append" or "write".
	BeforeWrite func(op string, size int) (int, error)
	// BeforeSync may fail the fsync that follows a write.
	BeforeSync func(op string) error
	// BeforeRename may fail between an atomic write's temp file and its
	// rename, stranding the temp file exactly as a crash would.
	BeforeRename func(op string) error
}

// Writer appends framed payloads to an open journal file, fsyncing each
// append so an acknowledged record survives a crash. It tracks the end
// offset of the last good frame: a failed append (torn write, fsync
// error) leaves a partial frame at the tail, and appending after one
// would hide every later record from replay — which stops at the first
// unreadable frame — so the writer truncates back to the good offset
// before the next append. If even the truncate fails, the journal is
// broken and refuses all further appends rather than acknowledging
// records a replay would never see.
type Writer struct {
	f     *os.File
	path  string
	hooks Hooks
	// off is the file offset after the last fully synced frame.
	off int64
	// broken refuses appends after an unrepairable tail.
	broken error
}

// OpenWriter opens (creating if needed) the journal at path for
// appending.
func OpenWriter(path string, hooks Hooks) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, path: path, hooks: hooks, off: fi.Size()}, nil
}

// Path returns the journal's file path.
func (j *Writer) Path() string { return j.path }

// Sync fsyncs the underlying file (used right after creating a fresh
// journal, before a manifest points at it).
func (j *Writer) Sync() error { return j.f.Sync() }

// Append frames, writes, and fsyncs one payload. On failure the partial
// frame is truncated away so the tail stays replayable; the caller
// surfaces the error and the record is never acknowledged.
func (j *Writer) Append(payload []byte) error {
	if j.broken != nil {
		return fmt.Errorf("journal is broken (previous append left an unrepairable tail: %w)", j.broken)
	}
	buf := Frame(payload)
	if err := j.writeFrame(buf); err != nil {
		j.repairTail()
		return err
	}
	j.off += int64(len(buf))
	return nil
}

func (j *Writer) writeFrame(buf []byte) error {
	keep := len(buf)
	var ferr error
	if j.hooks.BeforeWrite != nil {
		keep, ferr = j.hooks.BeforeWrite("append", len(buf))
		if keep > len(buf) {
			keep = len(buf)
		}
	}
	if keep > 0 {
		if _, werr := j.f.Write(buf[:keep]); werr != nil {
			return fmt.Errorf("appending journal record: %w", werr)
		}
	}
	if ferr != nil {
		return fmt.Errorf("appending journal record: %w", ferr)
	}
	if j.hooks.BeforeSync != nil {
		if err := j.hooks.BeforeSync("append"); err != nil {
			return fmt.Errorf("syncing journal: %w", err)
		}
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("syncing journal: %w", err)
	}
	return nil
}

// repairTail truncates a failed append's partial frame so later records
// stay reachable by replay.
func (j *Writer) repairTail() {
	if err := j.f.Truncate(j.off); err != nil {
		j.broken = err
		return
	}
	// Make the truncate durable; an unsynced truncate could resurrect the
	// partial frame after a crash, but everything before off is still
	// intact, so replay would at worst rediscover the torn tail.
	j.f.Sync()
}

// Close releases the journal file (appends are already fsynced).
func (j *Writer) Close() error { return j.f.Close() }

// ScanResult is the result of reading one journal file to its end (or
// to the first unreadable byte).
type ScanResult struct {
	// Frames holds every payload that read back intact, in file order.
	Frames [][]byte
	// Torn reports the file ended in a partial frame (crash mid-append).
	Torn bool
	// Corrupt is the frame-level reason reading stopped before EOF for a
	// non-torn cause (CRC mismatch, absurd length); empty otherwise.
	Corrupt string
	// GoodOffset is the file offset after the last intact frame —
	// truncating to it removes a torn or corrupt tail without losing any
	// readable record.
	GoodOffset int64
}

// Scan reads every readable frame of the journal at path. A missing
// file is an empty journal. Reading never fails the caller's boot:
// every abnormality is reported in the result for the recovery layer to
// quarantine; the returned error is reserved for the file being
// unopenable.
func Scan(path string) (*ScanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &ScanResult{}, nil
		}
		return nil, err
	}
	defer f.Close()
	scan := &ScanResult{}
	for {
		payload, err := ReadFrame(f)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return scan, nil
			}
			var fe *FrameError
			if errors.As(err, &fe) && fe.Torn {
				scan.Torn = true
			} else {
				scan.Corrupt = err.Error()
			}
			return scan, nil
		}
		scan.Frames = append(scan.Frames, payload)
		scan.GoodOffset += int64(FrameHeaderLen + len(payload))
	}
}

// WriteFileAtomic lands data at path through the
// temp+fsync+rename+dirsync discipline, with the fault hooks at each
// stage. A crash at any instant leaves either the old file or the new
// one, never a hybrid; callers sweep stray *.tmp files on boot.
func WriteFileAtomic(path string, data []byte, hooks Hooks) error {
	tmp := path + ".tmp"
	keep := len(data)
	var ferr error
	if hooks.BeforeWrite != nil {
		keep, ferr = hooks.BeforeWrite("write", len(data))
		if keep > len(data) {
			keep = len(data)
		}
	}
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if keep > 0 {
		if _, werr := f.Write(data[:keep]); werr != nil {
			f.Close()
			return werr
		}
	}
	if ferr != nil {
		f.Close()
		return ferr
	}
	if hooks.BeforeSync != nil {
		if err := hooks.BeforeSync("write"); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if hooks.BeforeRename != nil {
		if err := hooks.BeforeRename("write"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a rename or unlink inside it is
// durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
