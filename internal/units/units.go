// Package units defines the physical unit conventions used throughout the
// repository and small helpers for working with them.
//
// All quantities are carried as float64 in base SI units:
//
//	time        seconds   (typical magnitudes: ps = 1e-12)
//	voltage     volts
//	capacitance farads    (typical magnitudes: fF = 1e-15)
//	resistance  ohms
//	current     amperes
//
// The scale constants below exist so that call sites read naturally, e.g.
// 50*units.Pico for a 50 ps slew or 3*units.Femto for a 3 fF coupling cap.
package units

import "math"

// Metric scale factors.
const (
	Femto = 1e-15
	Pico  = 1e-12
	Nano  = 1e-9
	Micro = 1e-6
	Milli = 1e-3
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// Eps is the default absolute tolerance used when comparing times and
// voltages produced by different code paths (analytical model versus
// simulation, for example). It is deliberately loose relative to float64
// precision because the quantities being compared pass through iterative
// solvers.
const Eps = 1e-12

// ApproxEqual reports whether a and b are equal within tol absolutely or
// within tol relatively (whichever is looser). A NaN never compares equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// Clamp returns v limited to the closed range [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RelErr returns |a-b| / max(|b|, floor). It is used by the accuracy
// experiments to compare the analytical noise model against transient
// simulation without blowing up when the reference value is near zero.
func RelErr(a, b, floor float64) float64 {
	den := math.Abs(b)
	if den < floor {
		den = floor
	}
	return math.Abs(a-b) / den
}
