package units

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0, 0) {
		t.Error("exact equality failed")
	}
	if !ApproxEqual(1.0, 1.0+1e-15, 1e-12) {
		t.Error("tiny absolute difference rejected")
	}
	if !ApproxEqual(1e12, 1e12*(1+1e-13), 1e-12) {
		t.Error("tiny relative difference rejected")
	}
	if ApproxEqual(1, 2, 1e-12) {
		t.Error("different values accepted")
	}
	if ApproxEqual(math.NaN(), math.NaN(), 1) {
		t.Error("NaN compared equal")
	}
	if ApproxEqual(1, math.NaN(), 1) {
		t.Error("NaN compared equal to number")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp wrong")
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(1.1, 1.0, 1e-3); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelErr = %g", got)
	}
	// Floor kicks in for near-zero references.
	if got := RelErr(1e-6, 0, 1e-3); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("floored RelErr = %g", got)
	}
}

func TestScaleConstants(t *testing.T) {
	if Pico*1e12 != 1 || Femto*1e15 != 1 || Kilo != 1e3 {
		t.Error("scale constants wrong")
	}
}
