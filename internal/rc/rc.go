// Package rc models per-net distributed RC networks and computes the
// reduced quantities delay and noise analysis consume: Elmore delays,
// second moments, path resistances, total and coupling capacitances, and
// the O'Brien–Savarino π-model of the driving-point admittance.
//
// A Network is built either programmatically or from a spef.Net via
// FromSPEF. Analysis assumes the resistive topology is a tree rooted at the
// driver node (the overwhelmingly common case for extracted signal nets);
// Analyze reports an error for meshes.
package rc

import (
	"fmt"
	"math"

	"repro/internal/spef"
)

// Coupling is a cross-coupling capacitor from a node of this net to a node
// of another net.
type Coupling struct {
	Node      string  // node on this net
	OtherNet  string  // the aggressor/victim partner net
	OtherNode string  // node on the partner net
	F         float64 // farads
}

type edge struct {
	a, b int
	ohms float64
}

// Network is one net's RC parasitics plus attached pin load capacitances.
type Network struct {
	Name  string
	names []string
	// idx maps node name to index, but only once the net outgrows
	// linear scanning: extracted signal nets overwhelmingly have a
	// handful of nodes, and at million-net scale one map per net is the
	// dominant memory and allocation cost of the parasitics database.
	idx  map[string]int
	root int // -1 until set
	res  []edge
	gcap []float64 // grounded wire cap per node
	load []float64 // attached pin load cap per node
	coup []Coupling
}

// smallNodes is the node count up to which lookup stays a linear scan.
const smallNodes = 16

// NewNetwork returns an empty network.
func NewNetwork(name string) *Network {
	return &Network{Name: name, root: -1}
}

// lookup returns the index of a node name, scanning small nets and
// consulting the map on large ones.
func (n *Network) lookup(name string) (int, bool) {
	if n.idx != nil {
		i, ok := n.idx[name]
		return i, ok
	}
	for i, nm := range n.names {
		if nm == name {
			return i, true
		}
	}
	return 0, false
}

// Node interns a node name and returns its index.
func (n *Network) Node(name string) int {
	if i, ok := n.lookup(name); ok {
		return i
	}
	i := len(n.names)
	n.names = append(n.names, name)
	n.gcap = append(n.gcap, 0)
	n.load = append(n.load, 0)
	if n.idx != nil {
		n.idx[name] = i
	} else if len(n.names) > smallNodes {
		n.idx = make(map[string]int, 2*smallNodes)
		for j, nm := range n.names {
			n.idx[nm] = j
		}
	}
	return i
}

// HasNode reports whether the named node exists.
func (n *Network) HasNode(name string) bool {
	_, ok := n.lookup(name)
	return ok
}

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.names) }

// NodeNames returns the node names in index order.
func (n *Network) NodeNames() []string { return append([]string(nil), n.names...) }

// SetRoot marks the driver node. FromSPEF does this automatically from the
// *CONN section.
func (n *Network) SetRoot(name string) {
	n.root = n.Node(name)
}

// Root returns the driver node name, or "" if unset.
func (n *Network) Root() string {
	if n.root < 0 {
		return ""
	}
	return n.names[n.root]
}

// AddRes adds a resistor between two nodes (created on demand).
func (n *Network) AddRes(a, b string, ohms float64) {
	n.res = append(n.res, edge{a: n.Node(a), b: n.Node(b), ohms: ohms})
}

// AddCap adds grounded wire capacitance at a node.
func (n *Network) AddCap(node string, f float64) {
	n.gcap[n.Node(node)] += f
}

// AddLoadCap attaches pin load capacitance (a receiver input) at a node.
// It is kept separate from wire cap so callers can re-bind libraries.
func (n *Network) AddLoadCap(node string, f float64) {
	n.load[n.Node(node)] += f
}

// AddCoupling adds a cross-coupling capacitor at a node.
func (n *Network) AddCoupling(node, otherNet, otherNode string, f float64) {
	n.Node(node)
	n.coup = append(n.coup, Coupling{Node: node, OtherNet: otherNet, OtherNode: otherNode, F: f})
}

// Couplings returns a copy of the coupling capacitors. Hot paths should
// use CouplingsView, which does not allocate.
func (n *Network) Couplings() []Coupling { return append([]Coupling(nil), n.coup...) }

// CouplingsView returns the coupling capacitors without copying. The
// returned slice is owned by the Network and must not be mutated.
func (n *Network) CouplingsView() []Coupling { return n.coup }

// GroundCap returns total grounded wire capacitance.
func (n *Network) GroundCap() float64 {
	var s float64
	for _, c := range n.gcap {
		s += c
	}
	return s
}

// LoadCap returns total attached pin capacitance.
func (n *Network) LoadCap() float64 {
	var s float64
	for _, c := range n.load {
		s += c
	}
	return s
}

// CouplingCap returns total cross-coupling capacitance.
func (n *Network) CouplingCap() float64 {
	var s float64
	for _, c := range n.coup {
		s += c.F
	}
	return s
}

// CouplingTo returns the summed coupling capacitance toward one other net.
// Partner counts per net are small, so this scans rather than caching a
// per-net map.
func (n *Network) CouplingTo(other string) float64 {
	var s float64
	for _, x := range n.coup {
		if x.OtherNet == other {
			s += x.F
		}
	}
	return s
}

// TotalCap is the capacitance a quiet victim's driver must hold: grounded
// wire cap + pin loads + coupling caps (a switching-aggressor boundary
// treats Cx as connected to a source, but for time-constant purposes the
// conservative lumping includes it).
func (n *Network) TotalCap() float64 {
	return n.GroundCap() + n.LoadCap() + n.CouplingCap()
}

// capAt returns the effective grounded cap at node i including coupling
// caps lumped to ground and pin loads.
func (n *Network) capAt(i int) float64 {
	c := n.gcap[i] + n.load[i]
	for _, x := range n.coup {
		if j, ok := n.lookup(x.Node); ok && j == i {
			c += x.F
		}
	}
	return c
}

// FromSPEF builds a Network from parsed SPEF, rooting it at the first
// driver (*CONN direction O) entry. Connection nodes are created even when
// no RC entry references them so single-segment nets still resolve.
func FromSPEF(sn *spef.Net) (*Network, error) {
	n := NewNetwork(sn.Name)
	for _, c := range sn.Conns {
		n.Node(c.Node)
		if c.Dir == spef.DirOut && n.root < 0 {
			n.SetRoot(c.Node)
		}
	}
	for _, r := range sn.Ress {
		n.AddRes(r.A, r.B, r.Ohms)
	}
	for _, c := range sn.Caps {
		if c.Other == "" {
			n.AddCap(c.Node, c.F)
		} else {
			n.AddCoupling(c.Node, spef.NetOfNode(c.Other), c.Other, c.F)
		}
	}
	if n.root < 0 {
		return nil, fmt.Errorf("rc: net %q has no driver connection", sn.Name)
	}
	return n, nil
}

// Analysis holds the tree-derived quantities for one network.
type Analysis struct {
	net *Network
	// per node, by index:
	elmore []float64 // first moment of the step response (Elmore delay)
	m2     []float64 // second moment
	rpath  []float64 // total resistance from root to node
	ctotal float64
}

// Analyze orients the resistive tree from the root and computes Elmore
// delays, second moments, and path resistances to every node. It errors if
// the root is unset, the resistive graph is disconnected from the root, or
// the topology is not a tree.
func (n *Network) Analyze() (*Analysis, error) {
	if n.root < 0 {
		return nil, fmt.Errorf("rc: net %q: root not set", n.Name)
	}
	nn := len(n.names)
	adj := make([][]edge, nn)
	for _, e := range n.res {
		if e.ohms < 0 {
			return nil, fmt.Errorf("rc: net %q: negative resistance", n.Name)
		}
		adj[e.a] = append(adj[e.a], e)
		adj[e.b] = append(adj[e.b], edge{a: e.b, b: e.a, ohms: e.ohms})
	}
	// BFS orientation from root.
	parent := make([]int, nn)
	parentR := make([]float64, nn)
	order := make([]int, 0, nn)
	seen := make([]bool, nn)
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{n.root}
	seen[n.root] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, e := range adj[u] {
			v := e.b
			if v == u {
				continue
			}
			if seen[v] {
				if v != parent[u] {
					return nil, fmt.Errorf("rc: net %q: resistive loop involving node %q", n.Name, n.names[v])
				}
				continue
			}
			seen[v] = true
			parent[v] = u
			parentR[v] = e.ohms
			queue = append(queue, v)
		}
	}
	for i, s := range seen {
		if !s {
			return nil, fmt.Errorf("rc: net %q: node %q unreachable from driver", n.Name, n.names[i])
		}
	}

	a := &Analysis{net: n}
	a.rpath = pathAccumulateConst(order, parent, parentR)
	caps := make([]float64, nn)
	for i := range caps {
		caps[i] = n.capAt(i)
		a.ctotal += caps[i]
	}
	a.elmore = pathAccumulate(order, parent, parentR, caps)
	// Second moments reuse the same accumulation with weights C_j·m1_j.
	w2 := make([]float64, nn)
	for i := range w2 {
		w2[i] = caps[i] * a.elmore[i]
	}
	a.m2 = pathAccumulate(order, parent, parentR, w2)
	return a, nil
}

// pathAccumulate computes, for each node v,
//
//	val(v) = Σ_{edges e on path root→v} R_e · (Σ_{j in subtree below e} w_j)
//
// which is the Elmore form for w = node caps and the second-moment form for
// w = C·m1. order must be a BFS/DFS order from the root (parents precede
// children).
func pathAccumulate(order, parent []int, parentR, w []float64) []float64 {
	nn := len(order)
	sub := append([]float64(nil), w...)
	// Bottom-up subtree sums: reverse BFS order visits children first.
	for i := nn - 1; i >= 1; i-- {
		v := order[i]
		sub[parent[v]] += sub[v]
	}
	val := make([]float64, nn)
	for i := 1; i < nn; i++ {
		v := order[i]
		val[v] = val[parent[v]] + parentR[v]*sub[v]
	}
	return val
}

// pathAccumulateConst computes plain path resistance from root to each
// node.
func pathAccumulateConst(order, parent []int, parentR []float64) []float64 {
	val := make([]float64, len(order))
	for i := 1; i < len(order); i++ {
		v := order[i]
		val[v] = val[parent[v]] + parentR[v]
	}
	return val
}

// ElmoreTo returns the Elmore delay from the driver to the named node.
func (a *Analysis) ElmoreTo(node string) (float64, error) {
	i, ok := a.net.lookup(node)
	if !ok {
		return 0, fmt.Errorf("rc: net %q: unknown node %q", a.net.Name, node)
	}
	return a.elmore[i], nil
}

// M2To returns the second moment of the step response at the named node.
func (a *Analysis) M2To(node string) (float64, error) {
	i, ok := a.net.lookup(node)
	if !ok {
		return 0, fmt.Errorf("rc: net %q: unknown node %q", a.net.Name, node)
	}
	return a.m2[i], nil
}

// ResTo returns the path resistance from the driver to the named node.
func (a *Analysis) ResTo(node string) (float64, error) {
	i, ok := a.net.lookup(node)
	if !ok {
		return 0, fmt.Errorf("rc: net %q: unknown node %q", a.net.Name, node)
	}
	return a.rpath[i], nil
}

// TotalCap returns the total effective grounded capacitance seen in the
// analysis (wire + load + lumped coupling).
func (a *Analysis) TotalCap() float64 { return a.ctotal }

// MaxElmore returns the largest Elmore delay over all nodes — the
// conservative wire-delay number for the net.
func (a *Analysis) MaxElmore() float64 {
	var best float64
	for _, d := range a.elmore {
		if d > best {
			best = d
		}
	}
	return best
}

// SlewDegradation estimates the additional output slew introduced by the
// wire at a node using the PERI-style two-moment metric
// sqrt(2·m2 − m1²)·ln(9) when the discriminant is positive, falling back to
// the Elmore delay otherwise.
func (a *Analysis) SlewDegradation(node string) (float64, error) {
	i, ok := a.net.lookup(node)
	if !ok {
		return 0, fmt.Errorf("rc: net %q: unknown node %q", a.net.Name, node)
	}
	d := 2*a.m2[i] - a.elmore[i]*a.elmore[i]
	if d <= 0 {
		return a.elmore[i], nil
	}
	return math.Sqrt(d) * math.Log(9), nil
}

// Pi returns the O'Brien–Savarino π-model (near cap, resistance, far cap)
// of the driving-point admittance: the three-moment match
//
//	Cfar = y2²/y3, R = −y3²/y2³, Cnear = y1 − Cfar
//
// with y1 = ΣC, y2 = −ΣC·m1, y3 = ΣC·m2. Degenerate nets (no resistance or
// no capacitance) collapse to a single near capacitor.
func (a *Analysis) Pi() (cnear, r, cfar float64) {
	var y1, y2, y3 float64
	for i := range a.elmore {
		c := a.net.capAt(i)
		y1 += c
		y2 -= c * a.elmore[i]
		y3 += c * a.m2[i]
	}
	if y2 == 0 || y3 == 0 {
		return y1, 0, 0
	}
	cfar = y2 * y2 / y3
	r = -y3 * y3 / (y2 * y2 * y2)
	cnear = y1 - cfar
	if cnear < 0 || r < 0 || cfar < 0 {
		// Moment match went unphysical (can happen for exotic cap
		// distributions); fall back to the lumped model.
		return y1, 0, 0
	}
	return cnear, r, cfar
}
