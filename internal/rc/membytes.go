package rc

import "unsafe"

// MemBytes estimates the network's heap footprint in bytes: node name
// strings, the resistor/capacitor arrays at capacity, the coupling
// list including its partner-name strings, and the node index map when
// the net outgrew linear scanning. Deterministic and allocation-free;
// the design cache sums it across nets to price a bound design.
func (n *Network) MemBytes() int64 {
	const (
		ptr       = int64(unsafe.Sizeof(uintptr(0)))
		strHeader = int64(unsafe.Sizeof(""))
	)
	b := int64(unsafe.Sizeof(*n))
	b += int64(cap(n.names)) * strHeader
	for _, nm := range n.names {
		b += int64(len(nm))
	}
	b += int64(cap(n.res)) * int64(unsafe.Sizeof(edge{}))
	b += int64(cap(n.gcap)+cap(n.load)) * 8
	b += int64(cap(n.coup)) * int64(unsafe.Sizeof(Coupling{}))
	for _, c := range n.coup {
		// Coupling node names usually alias n.names entries, but the
		// partner-net strings are this network's only reference.
		b += int64(len(c.OtherNet) + len(c.OtherNode))
	}
	if n.idx != nil {
		// Key strings alias n.names; count headers plus bucket overhead.
		b += int64(len(n.idx)) * (strHeader + 8 + 16)
	}
	return b
}
