package rc

import (
	"math"
	"strings"
	"testing"

	"repro/internal/spef"
)

// ladder builds root -r1- n1 -r2- n2 with caps c1 at n1, c2 at n2.
func ladder(r1, c1, r2, c2 float64) *Network {
	n := NewNetwork("lad")
	n.SetRoot("root")
	n.AddRes("root", "n1", r1)
	n.AddRes("n1", "n2", r2)
	n.AddCap("n1", c1)
	n.AddCap("n2", c2)
	return n
}

func TestElmoreLadder(t *testing.T) {
	// Classic: D(n1) = r1(c1+c2); D(n2) = r1(c1+c2) + r2 c2.
	r1, c1, r2, c2 := 100.0, 1e-15, 200.0, 2e-15
	n := ladder(r1, c1, r2, c2)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	d1, err := a.ElmoreTo("n1")
	if err != nil {
		t.Fatal(err)
	}
	want1 := r1 * (c1 + c2)
	if math.Abs(d1-want1) > 1e-21 {
		t.Fatalf("Elmore(n1) = %g, want %g", d1, want1)
	}
	d2, _ := a.ElmoreTo("n2")
	want2 := want1 + r2*c2
	if math.Abs(d2-want2) > 1e-21 {
		t.Fatalf("Elmore(n2) = %g, want %g", d2, want2)
	}
	if got := a.MaxElmore(); got != d2 {
		t.Fatalf("MaxElmore = %g, want %g", got, d2)
	}
	d0, _ := a.ElmoreTo("root")
	if d0 != 0 {
		t.Fatalf("Elmore(root) = %g", d0)
	}
}

func TestResTo(t *testing.T) {
	n := ladder(100, 1e-15, 200, 2e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := a.ResTo("n2")
	if r != 300 {
		t.Fatalf("ResTo(n2) = %g", r)
	}
	if _, err := a.ResTo("ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestBranchedTreeElmore(t *testing.T) {
	// root -100- a; a -200- b (1fF); a -300- c (2fF); cap at a: 0.5fF.
	n := NewNetwork("tee")
	n.SetRoot("root")
	n.AddRes("root", "a", 100)
	n.AddRes("a", "b", 200)
	n.AddRes("a", "c", 300)
	n.AddCap("a", 0.5e-15)
	n.AddCap("b", 1e-15)
	n.AddCap("c", 2e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// D(b) = 100*(3.5fF) + 200*1fF
	db, _ := a.ElmoreTo("b")
	want := 100*3.5e-15 + 200*1e-15
	if math.Abs(db-want) > 1e-21 {
		t.Fatalf("Elmore(b) = %g, want %g", db, want)
	}
	dc, _ := a.ElmoreTo("c")
	want = 100*3.5e-15 + 300*2e-15
	if math.Abs(dc-want) > 1e-21 {
		t.Fatalf("Elmore(c) = %g, want %g", dc, want)
	}
}

func TestSingleNodeNet(t *testing.T) {
	n := NewNetwork("dot")
	n.SetRoot("p")
	n.AddCap("p", 5e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a.ElmoreTo("p")
	if d != 0 {
		t.Fatalf("Elmore = %g", d)
	}
	if a.TotalCap() != 5e-15 {
		t.Fatalf("TotalCap = %g", a.TotalCap())
	}
}

func TestAnalyzeErrors(t *testing.T) {
	n := NewNetwork("noroot")
	n.AddRes("a", "b", 1)
	if _, err := n.Analyze(); err == nil || !strings.Contains(err.Error(), "root not set") {
		t.Fatalf("err = %v", err)
	}

	loop := NewNetwork("loop")
	loop.SetRoot("a")
	loop.AddRes("a", "b", 1)
	loop.AddRes("b", "c", 1)
	loop.AddRes("c", "a", 1)
	if _, err := loop.Analyze(); err == nil || !strings.Contains(err.Error(), "loop") {
		t.Fatalf("err = %v", err)
	}

	disc := NewNetwork("disc")
	disc.SetRoot("a")
	disc.AddCap("island", 1e-15)
	if _, err := disc.Analyze(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("err = %v", err)
	}

	neg := NewNetwork("neg")
	neg.SetRoot("a")
	neg.AddRes("a", "b", -5)
	if _, err := neg.Analyze(); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("err = %v", err)
	}
}

func TestCapAccounting(t *testing.T) {
	n := NewNetwork("caps")
	n.SetRoot("r")
	n.AddRes("r", "x", 100)
	n.AddCap("x", 3e-15)
	n.AddLoadCap("x", 2e-15)
	n.AddCoupling("x", "agg", "agg:1", 4e-15)
	if got := n.GroundCap(); got != 3e-15 {
		t.Fatalf("GroundCap = %g", got)
	}
	if got := n.LoadCap(); got != 2e-15 {
		t.Fatalf("LoadCap = %g", got)
	}
	if got := n.CouplingCap(); got != 4e-15 {
		t.Fatalf("CouplingCap = %g", got)
	}
	if got := n.TotalCap(); got != 9e-15 {
		t.Fatalf("TotalCap = %g", got)
	}
	if got := n.CouplingTo("agg"); got != 4e-15 {
		t.Fatalf("CouplingTo = %g", got)
	}
	if got := n.CouplingTo("other"); got != 0 {
		t.Fatalf("CouplingTo(other) = %g", got)
	}
	// Coupling counts toward node cap in the analysis.
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := a.ElmoreTo("x")
	if want := 100 * 9e-15; math.Abs(d-want) > 1e-21 {
		t.Fatalf("Elmore with coupling = %g, want %g", d, want)
	}
}

func TestSecondMomentLadder(t *testing.T) {
	// Single RC: m1 = RC, m2 = m1·RC = R²C² (for one cap).
	n := NewNetwork("single")
	n.SetRoot("r")
	n.AddRes("r", "x", 1000)
	n.AddCap("x", 1e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := a.ElmoreTo("x")
	m2, _ := a.M2To("x")
	if math.Abs(m1-1e-12) > 1e-24 {
		t.Fatalf("m1 = %g", m1)
	}
	if math.Abs(m2-1e-24) > 1e-36 {
		t.Fatalf("m2 = %g, want %g", m2, 1e-24)
	}
	if _, err := a.M2To("ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestPiSingleRC(t *testing.T) {
	// One R, one C: the π model must reproduce (0, R, C) or an equivalent
	// exact match: y1=C, y2=-RC², y3=R²C³ → Cfar=C, R=R, Cnear=0.
	n := NewNetwork("pi1")
	n.SetRoot("r")
	n.AddRes("r", "x", 500)
	n.AddCap("x", 2e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	cn, r, cf := a.Pi()
	if math.Abs(cf-2e-15) > 1e-21 || math.Abs(r-500) > 1e-6 || math.Abs(cn) > 1e-21 {
		t.Fatalf("Pi = (%g, %g, %g), want (0, 500, 2e-15)", cn, r, cf)
	}
}

func TestPiPreservesTotalCap(t *testing.T) {
	n := ladder(100, 1e-15, 200, 2e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	cn, r, cf := a.Pi()
	if math.Abs(cn+cf-3e-15) > 1e-21 {
		t.Fatalf("Pi total cap = %g, want 3e-15", cn+cf)
	}
	if r <= 0 || cn < 0 || cf < 0 {
		t.Fatalf("unphysical Pi = (%g, %g, %g)", cn, r, cf)
	}
}

func TestPiDegenerateNoRes(t *testing.T) {
	n := NewNetwork("lump")
	n.SetRoot("p")
	n.AddCap("p", 7e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	cn, r, cf := a.Pi()
	if cn != 7e-15 || r != 0 || cf != 0 {
		t.Fatalf("degenerate Pi = (%g, %g, %g)", cn, r, cf)
	}
}

func TestSlewDegradation(t *testing.T) {
	n := ladder(100, 1e-15, 200, 2e-15)
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.SlewDegradation("n2")
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Fatalf("slew degradation = %g", s)
	}
	if _, err := a.SlewDegradation("ghost"); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestFromSPEF(t *testing.T) {
	src := `*SPEF "x"
*DESIGN "d"
*D_NET v 3.0e-15
*CONN
*I drv:Y O
*I rcv:A I
*CAP
1 v:1 1.0e-15
2 v:1 a:1 2.0e-15
*RES
1 drv:Y v:1 150
2 v:1 rcv:A 50
*END
`
	p, err := spef.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	n, err := FromSPEF(p.Net("v"))
	if err != nil {
		t.Fatal(err)
	}
	if n.Root() != "drv:Y" {
		t.Fatalf("root = %q", n.Root())
	}
	if got := n.CouplingTo("a"); got != 2e-15 {
		t.Fatalf("CouplingTo(a) = %g", got)
	}
	a, err := n.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	d, err := a.ElmoreTo("rcv:A")
	if err != nil {
		t.Fatal(err)
	}
	// Elmore to rcv:A = 150*(3fF) + 50*0 (no cap at rcv:A).
	if want := 150 * 3e-15; math.Abs(d-want) > 1e-21 {
		t.Fatalf("Elmore = %g, want %g", d, want)
	}
}

func TestFromSPEFNoDriver(t *testing.T) {
	sn := &spef.Net{Name: "x", Conns: []spef.Conn{{Pin: "rcv:A", Dir: spef.DirIn, Node: "rcv:A"}}}
	if _, err := FromSPEF(sn); err == nil {
		t.Fatal("driverless net accepted")
	}
}

func TestNodeInterning(t *testing.T) {
	n := NewNetwork("x")
	a := n.Node("a")
	if n.Node("a") != a {
		t.Fatal("re-interning changed index")
	}
	if !n.HasNode("a") || n.HasNode("b") {
		t.Fatal("HasNode wrong")
	}
	if n.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if names := n.NodeNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("NodeNames = %v", names)
	}
}

func BenchmarkAnalyzeLadder64(b *testing.B) {
	n := NewNetwork("bench")
	n.SetRoot(nodeName(0))
	for i := 0; i < 64; i++ {
		n.AddRes(nodeName(i), nodeName(i+1), 10)
		n.AddCap(nodeName(i+1), 0.5e-15)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}
