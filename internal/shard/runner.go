package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// fatalUnlessCtx classifies a runner error: cancellation is transient (the
// coordinator may retry), anything else from the deterministic analysis
// paths would recur on any worker and is fatal to the run.
func fatalUnlessCtx(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &FatalError{Err: err}
}

// BuildEngine constructs a shard engine over the worker's design. A
// bound design is immutable after binding (its levelization and RC
// analysis caches are internally guarded), so a worker hosting several
// shards of one run shares a single design across their engines:
// in-process workers memoize their BuildDesign source, and the snad
// server caches one parsed design per run token. All per-engine mutable
// state (timing, padding, noise) is private to the engine.
type BuildEngine func(ctx context.Context, owned []string, padding map[string]float64) (*core.ShardEngine, error)

// Runner hosts one shard's engine behind the op protocol. It owns the two
// pieces of protocol state that make dispatch retries exact:
//
//   - the eval memo: updates are accumulated per eval Seq across attempts,
//     so a retried dispatch whose predecessor half-ran (or ran fully but
//     lost its response) returns every commit since the wave began;
//
//   - the broken flag: a padding update that dies halfway leaves the
//     timing annotation inconsistent, so the engine refuses further work
//     with ErrEngineBroken until the coordinator re-initializes it.
//
// All methods serialize on one mutex: a shard's ops are inherently ordered
// (the coordinator never overlaps them), the lock just makes stray
// concurrent calls safe.
type Runner struct {
	build BuildEngine

	mu      sync.Mutex
	eng     *core.ShardEngine
	broken  error
	evalSeq int
	// pending accumulates the committed combinations of the current eval
	// Seq; evalDone marks the wave fully evaluated (a duplicate dispatch
	// then replays the response without re-running).
	pending  map[string][2]core.Combined
	evalDone bool
}

// NewRunner returns a runner that builds engines with build.
func NewRunner(build BuildEngine) *Runner {
	return &Runner{build: build}
}

// Init builds (or rebuilds) the engine: owned nets, padding-seeded timing,
// and restored authoritative combinations.
func (r *Runner) Init(ctx context.Context, req *InitRequest) error {
	eng, err := r.build(ctx, req.Owned, padMap(req.Padding))
	if err != nil {
		return fatalUnlessCtx(err)
	}
	for _, nc := range req.Restore {
		eng.SetComb(nc.Net, combsFromWire(nc.Comb))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.eng = eng
	r.broken = nil
	r.evalSeq = 0
	r.pending = nil
	r.evalDone = false
	return nil
}

func (r *Runner) engine() (*core.ShardEngine, error) {
	if r.broken != nil {
		return nil, fmt.Errorf("%w: %v", ErrEngineBroken, r.broken)
	}
	if r.eng == nil {
		return nil, badRequestError("shard: runner has no engine (init not seen)")
	}
	return r.eng, nil
}

// Eval applies the request's boundary combinations and evaluates the wave,
// returning every commit of this Seq (including ones from earlier aborted
// attempts).
func (r *Runner) Eval(ctx context.Context, req *EvalRequest) (*EvalResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng, err := r.engine()
	if err != nil {
		return nil, err
	}
	if req.Seq != r.evalSeq {
		r.evalSeq = req.Seq
		r.pending = make(map[string][2]core.Combined)
		r.evalDone = false
	}
	if r.evalDone {
		return r.evalResponse(), nil
	}
	for _, nc := range req.Boundary {
		eng.SetComb(nc.Net, combsFromWire(nc.Comb))
	}
	if r.pending == nil {
		r.pending = make(map[string][2]core.Combined)
	}
	ups, err := eng.EvalWave(ctx, req.Wave)
	for _, u := range ups {
		r.pending[u.Net] = u.Comb
	}
	if err != nil {
		return nil, fatalUnlessCtx(err)
	}
	r.evalDone = true
	return r.evalResponse(), nil
}

func (r *Runner) evalResponse() *EvalResponse {
	nets := make([]string, 0, len(r.pending))
	for net := range r.pending {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	resp := &EvalResponse{}
	for _, net := range nets {
		resp.Updates = append(resp.Updates, NetComb{Net: net, Comb: combsToWire(r.pending[net])})
	}
	return resp
}

// Round applies one round of padding growth. A failure marks the engine
// broken: the timing update mutates in place and a partial update is not a
// state any single-process run ever visits.
func (r *Runner) Round(ctx context.Context, req *RoundRequest) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng, err := r.engine()
	if err != nil {
		return err
	}
	changed := make([]string, len(req.Changed))
	padding := make(map[string]float64, len(req.Changed))
	for i, e := range req.Changed {
		changed[i] = e.Net
		padding[e.Net] = e.Pad
	}
	if err := eng.ApplyRound(ctx, changed, padding); err != nil {
		r.broken = err
		return fmt.Errorf("%w: %v", ErrEngineBroken, err)
	}
	// A new round invalidates the eval memo (the coordinator also bumps
	// Seq, this is belt and braces).
	r.pending = nil
	r.evalDone = false
	return nil
}

// Delay runs the delta-delay pass over the owned nets.
func (r *Runner) Delay(ctx context.Context, req *DelayRequest) (*DelayResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng, err := r.engine()
	if err != nil {
		return nil, err
	}
	ims, err := eng.DelayImpacts(ctx)
	if err != nil {
		return nil, fatalUnlessCtx(err)
	}
	resp := &DelayResponse{}
	for _, im := range ims {
		resp.Impacts = append(resp.Impacts, impactToWire(im))
	}
	return resp, nil
}

// Collect returns the shard's slice of the final result.
func (r *Runner) Collect(ctx context.Context, req *CollectRequest) (*CollectResponse, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	eng, err := r.engine()
	if err != nil {
		return nil, err
	}
	col, err := eng.Collect(ctx)
	if err != nil {
		return nil, err
	}
	resp := &CollectResponse{
		Pairs:      col.Pairs,
		Filtered:   col.Filtered,
		Propagated: col.Propagated,
	}
	nets := make([]string, 0, len(col.Nets))
	for net := range col.Nets {
		nets = append(nets, net)
	}
	sort.Strings(nets)
	for _, net := range nets {
		resp.Nets = append(resp.Nets, netNoiseToWire(col.Nets[net]))
	}
	for _, v := range col.Violations {
		resp.Violations = append(resp.Violations, violationToWire(v))
	}
	for _, s := range col.Slacks {
		resp.Slacks = append(resp.Slacks, slackToWire(s))
	}
	for _, d := range col.Diags {
		resp.Diags = append(resp.Diags, diagToWire(d))
	}
	return resp, nil
}

// Close drops the engine.
func (r *Runner) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.eng = nil
	r.broken = nil
	r.pending = nil
	r.evalDone = false
}
