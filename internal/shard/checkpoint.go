package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"
)

// Checkpoint is the coordinator's durable round state: everything needed
// to resume the global noise–delay fixpoint after a coordinator restart.
// The analysis state itself is NOT saved — padding-seeded engine rebuilds
// are exactly equivalent to the incremental path (the core.Session rebuild
// contract), so the cumulative padding plus the divergence-watchdog state
// is the whole fixpoint.
type Checkpoint struct {
	// Token identifies the run (sessions use their name).
	Token string `json:"token"`
	// Round is the last fully completed round.
	Round int `json:"round"`
	// Padding is the cumulative per-net window padding after Round.
	Padding []PadEntry `json:"padding,omitempty"`
	// PrevGrowth is the round's largest per-net padding increase; nil
	// encodes the +Inf baseline, which JSON cannot carry.
	PrevGrowth *float64 `json:"prevGrowth,omitempty"`
	// Stalled counts consecutive non-contracting rounds so far.
	Stalled int `json:"stalled,omitempty"`
	// SavedAt is the wall-clock save time (RFC3339), informational only.
	SavedAt string `json:"savedAt,omitempty"`
}

// Checkpointer persists coordinator round state between rounds. A nil
// Checkpointer in Config disables persistence.
type Checkpointer interface {
	// Save durably records cp, replacing any previous checkpoint for its
	// token.
	Save(cp *Checkpoint) error
	// Load returns the checkpoint for token, or (nil, nil) when none
	// exists.
	Load(token string) (*Checkpoint, error)
	// Clear removes the checkpoint for token (no error when absent).
	Clear(token string) error
}

// FileCheckpointer stores one JSON checkpoint file per token under Dir,
// written atomically (temp file, fsync, rename) in the durable-store
// style, so a crash mid-save leaves the previous checkpoint intact.
type FileCheckpointer struct {
	Dir string
}

// ckptFile maps a token to its file, keeping the name filesystem-safe.
func (f *FileCheckpointer) ckptFile(token string) string {
	safe := make([]rune, 0, len(token))
	for _, r := range token {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '_', r == '-':
			safe = append(safe, r)
		default:
			safe = append(safe, '_')
		}
	}
	return filepath.Join(f.Dir, string(safe)+".ckpt.json")
}

// Save implements Checkpointer.
func (f *FileCheckpointer) Save(cp *Checkpoint) error {
	if err := os.MkdirAll(f.Dir, 0o755); err != nil {
		return fmt.Errorf("shard: checkpoint dir: %w", err)
	}
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: marshal checkpoint: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(f.Dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("shard: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: write checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("shard: sync checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("shard: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.ckptFile(cp.Token)); err != nil {
		return fmt.Errorf("shard: publish checkpoint: %w", err)
	}
	return nil
}

// Load implements Checkpointer.
func (f *FileCheckpointer) Load(token string) (*Checkpoint, error) {
	data, err := os.ReadFile(f.ckptFile(token))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: read checkpoint: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("shard: decode checkpoint: %w", err)
	}
	if cp.Token != token || cp.Round < 1 {
		return nil, fmt.Errorf("shard: checkpoint for %q is corrupt (token %q, round %d)", token, cp.Token, cp.Round)
	}
	return cp, nil
}

// Clear implements Checkpointer.
func (f *FileCheckpointer) Clear(token string) error {
	err := os.Remove(f.ckptFile(token))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}

// saveCheckpoint records one completed round, fail-soft: a checkpointing
// failure must not take down a healthy analysis, so it only logs.
func (r *run) saveCheckpoint(round int, prevGrowth float64, stalled int) {
	c := r.cfg.Checkpointer
	if c == nil {
		return
	}
	cp := &Checkpoint{
		Token:   r.cfg.Token,
		Round:   round,
		Padding: padEntries(r.padding),
		Stalled: stalled,
		SavedAt: time.Now().UTC().Format(time.RFC3339Nano),
	}
	if !math.IsInf(prevGrowth, 1) {
		pg := prevGrowth
		cp.PrevGrowth = &pg
	}
	if err := c.Save(cp); err != nil {
		r.cfg.Logf("shard: checkpoint save for round %d failed (continuing): %v", round, err)
	}
}
